// Package greedyroute is a reproduction of Michael Mitzenmacher's "Bounds
// on the Greedy Routing Algorithm for Array Networks" (SPAA 1994; JCSS 53,
// 1996) as a Go library.
//
// The paper studies dynamic greedy routing on an n×n mesh: every node
// generates packets as a Poisson process with rate λ, each packet is routed
// first along its row to the correct column and then along that column to a
// uniformly random destination, and each directed edge is a FIFO queue with
// unit service time. The library provides:
//
//   - the analytic bound ladder for the mean packet delay T — Theorem 7's
//     product-form upper bound, the §4.2 M/D/1 independence approximation,
//     and the lower bounds of Theorems 8, 10, 12 and 14 (see BoundSet);
//   - a deterministic discrete-event simulator of the full model with FIFO
//     and Processor-Sharing disciplines, deterministic and exponential
//     service, parallel replication, and the paper's measurement plane
//     (delay, E[N], E[R], E[R_s], per-edge rates);
//   - the paper's extensions: optimally configured transmission rates
//     (Theorem 15), non-uniform destination distributions, k-dimensional
//     arrays, slotted time, tori, hypercubes and butterflies;
//   - regeneration harnesses for every table and figure in the paper
//     (internal/experiments, cmd/tables, and the root benchmarks).
//
// # Quick start
//
//	m := greedyroute.NewArrayModelAtLoad(8, 0.9)
//	fmt.Printf("upper bound: %.3f\n", m.Bounds().Upper)
//	rs, err := m.Simulate(greedyroute.SimParams{Horizon: 20000, Replicas: 4})
//	if err != nil { ... }
//	fmt.Printf("simulated:   %.3f ± %.3f\n", rs.MeanDelay, rs.DelayCI)
//
// See the examples directory for runnable programs and DESIGN.md for the
// full system inventory.
package greedyroute

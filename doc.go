// Package greedyroute is a reproduction of Michael Mitzenmacher's "Bounds
// on the Greedy Routing Algorithm for Array Networks" (SPAA 1994; JCSS 53,
// 1996) as a Go library.
//
// The paper studies dynamic greedy routing on an n×n mesh: every node
// generates packets as a Poisson process with rate λ, each packet is routed
// first along its row to the correct column and then along that column to a
// uniformly random destination, and each directed edge is a FIFO queue with
// unit service time. The library provides:
//
//   - the analytic bound ladder for the mean packet delay T — Theorem 7's
//     product-form upper bound, the §4.2 M/D/1 independence approximation,
//     and the lower bounds of Theorems 8, 10, 12 and 14 (see BoundSet);
//   - a deterministic discrete-event simulator of the full model with FIFO
//     and Processor-Sharing disciplines, deterministic and exponential
//     service, parallel replication, and the paper's measurement plane
//     (delay, E[N], E[R], E[R_s], per-edge rates);
//   - the paper's extensions: optimally configured transmission rates
//     (Theorem 15), non-uniform destination distributions, k-dimensional
//     arrays, slotted time, tori, hypercubes and butterflies;
//   - a workload layer (internal/workload, cmd/scenario): named traffic
//     patterns, bursty arrival processes, and declarative scenario specs
//     that pair every simulation sweep with its exact analytic traffic
//     view;
//   - regeneration harnesses for every table and figure in the paper
//     (internal/experiments, cmd/tables, and the root benchmarks).
//
// # Quick start
//
//	m := greedyroute.NewArrayModelAtLoad(8, 0.9)
//	fmt.Printf("upper bound: %.3f\n", m.Bounds().Upper)
//	rs, err := m.Simulate(greedyroute.SimParams{Horizon: 20000, Replicas: 4})
//	if err != nil { ... }
//	fmt.Printf("simulated:   %.3f ± %.3f\n", rs.MeanDelay, rs.DelayCI)
//
// # Performance architecture
//
// Every number the paper reports comes from long discrete-event runs, so
// the simulator's steady state is engineered to be allocation-free and
// cache-friendly (measured results in BENCH.md):
//
//   - Implicit routing (internal/routing.Stepper): greedy routes on arrays
//     are fully determined by the (current node, destination) pair, so
//     every deterministic router hands the engine one edge at a time and
//     packets never carry a materialized route slice. The randomized
//     §6 router resolves its coin at generation time into a 1-bit stepper
//     choice. Router.AppendRoute remains the reference implementation and
//     cross-check oracle.
//   - Packet arena (internal/sim): in-flight packets are 24-byte structs
//     in one contiguous slice, addressed by generation-checked int32
//     handles; queues hold handles, not pointers.
//   - Tournament event tree (internal/des.EventTree): every scheduling
//     entity (edge server, source clock) has at most one pending event, so
//     the event queue is a winner tree of 16-byte packed records — the
//     next event is a root read, rescheduling is one branch-free
//     leaf-to-root replay, and the merged arrival clock lives in two
//     scalars outside the tree. A packed 4-ary heap (des.Heap4) and a
//     generic 4-ary EventHeap remain for schedules without the
//     one-event-per-slot structure.
//   - Deterministic worker pool (internal/sim.StreamSweep): sweeps
//     parallelize across (point, replica) tasks with per-task seeds
//     derived only from the point seed and replica index, streaming cells
//     back in input order, so results never depend on worker count.
//   - Sweep-scoped engine reuse (internal/sim.Runner): each pool worker
//     keeps one Runner whose event tree, stations, ring slab, packet arena
//     and per-edge tables are reset — not reallocated — between runs, so
//     the ~34-allocation per-run setup amortizes to ~5 across a sweep.
//     Reuse is semantically invisible: every reused structure resets to a
//     fresh-identical state and Runner.Run is bit-identical to Run for any
//     config sequence (TestRunnerMatchesRun).
//
// All of it preserves the exact (Time, Seq) event order and RNG call
// sequence of the original engine: seeded runs are bit-identical, which
// the golden-value and cross-check tests in internal/sim enforce.
//
// # Two engines
//
// The library ships two independent simulators of the same model, and
// which one to reach for depends on the question:
//
//   - internal/sim is the continuous-time discrete-event engine: Poisson
//     arrivals in continuous time, FIFO/PS/FurthestFirst disciplines,
//     deterministic or exponential service, and the full measurement plane
//     (E[R], E[R_s], occupancy, N-distributions). It also simulates §5.2's
//     slotted model via Config.SlotTau.
//   - internal/stepsim is the synchronous slotted engine, a
//     structure-of-arrays cycle machine for the paper's own slotted model
//     (unit slots, per-slot Poisson batches, one service per edge per
//     slot). Packets are single 64-bit ring entries whose position is
//     implicit in the queue they occupy; greedy array routing reduces to
//     closed-form edge-id arithmetic. It measures delay, E[N] and queue
//     occupancy (Result.MeanActiveEdges, ArrivalSlotFraction), and
//     reaches 256×256 and beyond in seconds — the regime where the
//     paper's asymptotic bounds actually bite. stepsim.Engine is reusable
//     across runs (the slotted mirror of sim.Runner), and
//     stepsim.StreamSweep mirrors the deterministic sweep pool with one
//     engine per worker.
//
// # Sparse slotted execution
//
// Below saturation most sources generate nothing in a given slot and most
// edge queues are empty, so the slotted engine's default execution is
// sparse: per-slot cost proportional to traffic, not to topology size.
// Skip-ahead arrivals replace the per-source-per-slot Poisson draw with
// one geometric gap draw per nonzero batch (xrand.PoissonSkip +
// PoissonPositive on a per-tile timing wheel), and active-edge worklists
// (a two-level bitmap per tile) let the service phase visit only nonempty
// queues, in the ascending-edge order the determinism contract requires.
// Both run on the same per-node keyed RNG streams as the dense body, so
// sparse runs are bit-identical at every shard count; sparse and dense
// agree statistically but not bit-wise (different variate sequences from
// the same streams). Config.Dense selects the dense per-slot body — still
// the better choice on small near-saturation arrays, where nearly every
// source and edge is active each slot and the worklist bookkeeping is
// pure overhead, and the path the PerEngineStream oracle regime always
// uses. Measured effect and the load-dependence of the win (by Little's
// law, busy-edge density ≈ (2/3)·ρ independent of array size, so the
// speedup is largest at genuinely sparse loads): BENCH.md's "Sparse
// engine" section.
//
// The two engines share no simulation code, which is the point: their
// statistical agreement (the `xval` experiment, now up to 128×128) is
// strong evidence that neither misimplements the model. Both are
// deterministic — stepsim runs are additionally pinned bit-for-bit against
// the pre-rewrite pointer implementation, which survives as the test-only
// oracle in internal/stepsim/oracle_test.go — and both are exposed through
// the workload layer (`cmd/scenario run -engine=slotted`,
// `cmd/sweep -engine=slotted`, workload.Bound.SlottedConfigs).
//
// # Sharded execution
//
// A single slotted run can additionally be sharded across cores
// (stepsim.ShardedEngine; Config.Shards; -shards on cmd/sweep and
// cmd/scenario): topology.Partition splits the node-id space into
// contiguous tiles — row bands on 2-D arrays and tori, index ranges on
// k-d arrays, cubes and butterflies — and each tile's goroutine owns the
// ring queues of the edges leaving its nodes, the RNG streams of its
// sources, and its measurement accumulators. Each slot runs the same
// three phases as the serial loop with exactly one synchronization: after
// tile-local arrivals and service, a synchronization point, then
// placement, in which each tile merges its own survivors with the
// boundary-crossing packets other tiles handed it through per-(tile,tile)
// ring-buffered lists (no locks anywhere on the hot path).
//
// The load-bearing property is that the shard count cannot change
// results, which is what makes it a safe runtime knob (the sweep pools
// auto-shard when points×replicas < GOMAXPROCS — sim.SpareFactor — so
// cores never idle at the tail of a sweep). Three invariants deliver
// bit-identical Results at every shard count, each pinned by tests:
// per-node keyed RNG streams (xrand.ReseedSplit(Seed, nodeID), so a
// node's variates are independent of which tile simulates it), canonical
// placement order (per slot, each queue receives arrivals from its own
// source followed by moved packets in ascending served-edge order — the
// handoff merge reconstructs exactly what a serial edge scan produces),
// and exact integer accumulation (delays are whole slots, so per-tile
// (count, Σd, Σd², min, max) merge associatively; stats.WelfordFromInts
// converts once, exactly, at collect time). Config.PerEngineStream keeps
// the pre-sharding single-stream regime for the oracle cross-checks.
//
// Synchronization itself is batched (Config.Lookahead; -lookahead on the
// tools): a packet entering a tile from outside needs at least one slot
// per row to reach any node d rows inside, so only the boundary band —
// nodes within the batch depth of a tile edge, classified once by
// topology.BoundaryDistance — must see its neighbors' packets every
// slot. The interior is safe to speculate. Each tile therefore publishes
// its per-slot handoffs through a small per-tile gate that only the
// tiles it actually feeds wait on, runs up to k consecutive slots, and
// pays the full sense-reversing barrier once per batch; handoff rings
// are 2k deep so a writer never laps an unread slot. The depth is
// clamped to what the tile plan supports (deep tiles allow k=8 and
// beyond; a 2-row tile degenerates to the per-slot schedule) and, like
// the shard count, cannot change results: every depth is
// Float64bits-identical to serial, pinned by the same invariance
// batteries, so lookahead is excluded from sweepd cache keys alongside
// shards. Result.BarrierWaits counts the global barriers a run actually
// paid — shards·⌈slots/k⌉ exactly — and BENCH.md's "Batched barriers"
// tables record the wall-clock return.
//
// # Workload architecture
//
// Traffic is a first-class object (internal/workload). A Pattern binds to
// a topology as a Demand — simultaneously a routing.DestSampler for the
// simulator and an exact distribution P[dst|src] for analytics. Eight
// built-ins cover the classic interconnect patterns: uniform, hot-spot,
// transpose, bit reversal, bit complement, tornado, nearest-neighbor and
// Zipf-over-distance. The demand-matrix → queueing.Traffic bridge solves
// the traffic equations λ = a + λP for exact per-edge rates, the
// bottleneck edge, and the saturation rate λ*, letting declarative
// Scenario specs express load points as fractions of λ* across any
// pattern. sim.ArrivalProcess generalizes the merged Poisson clock to
// MMPP/on-off bursty sources and deterministic periodic injection without
// touching the allocation-free event loop (the process shares the
// out-of-tree merged-clock scalars; the Poisson default path is
// untouched and stays golden-pinned). Simulation runs whose demand is
// exactly known are validated for stability up front: a pattern-implied
// edge utilization at or above 1 is rejected with the saturating edge
// named, instead of silently producing horizon-dependent garbage.
//
// # Variance reduction and adaptive precision
//
// The sweep layer treats replica count as a spend (sim.SweepOpts,
// stepsim.SweepOpts; all opt-in, the fixed-replica path is bit-identical
// to before). Replica r of every sweep point runs the stream
// Split(seed, r) — common random numbers — so ladder contrasts can be
// estimated as paired differences (stats.PairedDiff, measured ~1.6×
// tighter). SweepOpts.TargetCI switches a sweep to sequential stopping:
// each point runs a deterministic batch ladder (MinReps, ×1.5 growth,
// capped at MaxReps) and stops at the first batch boundary where the 95%
// half-width of its estimator of record meets the target; stopping is
// evaluated only on complete replica prefixes, so replicas used is a
// pure function of the results, independent of worker scheduling
// (sim.StreamCellsAdaptive). ControlVariates regresses the per-replica
// arrival count — whose expectation is closed-form under Poisson
// arrivals — out of the delay estimate with a jackknifed coefficient
// (stats.ControlVariate). WarmStart chains engine snapshots along the
// load ladder: both engines capture their complete state into versioned,
// CRC-checked byte strings (EVTSNAP1 / SLOTSNP1) whose resumption is
// bit-exact, and each replica resumes the previous point's steady state
// with a short re-warm instead of the full warmup. Measured on the
// full-length 64×64 hotspot ladder at equal precision: 3.4× end-to-end
// vs the uniform-budget baseline from stopping alone (BENCH.md,
// "Variance reduction"; examples/adaptivesweep reproduces it).
// The control-variate regression also accepts a second control
// (SweepOpts.DelayControl / DelayControlMean): internal/workload can wire
// the analytic M/D/1 delay evaluated at each replica's realized arrival
// rate (Scenario.MD1Control), with its exact expectation computed by
// summing the clamped curve against the arrival count's Poisson pmf so
// the regression stays honest — plugging the mean count into the convex
// curve would bias it by exactly Jensen's gap.
//
// # Serving sweeps
//
// cmd/sweepd wraps the whole stack in a long-running HTTP service
// (internal/serve): POST a declarative scenario spec to /v1/sweeps and
// it is validated (the same analytic stability checks as Bind), queued
// on a bounded priority queue with explicit backpressure (429 +
// Retry-After when full), and executed on the engines' deterministic
// worker pools; GET /v1/sweeps/{id}/events streams every ladder point
// exactly once over SSE (replay-then-live, so late subscribers see the
// full history); DELETE stops the engine pools mid-run through the
// context plumbing both engines thread (Config.Ctx) — a canceled run
// returns no partial measurements and leaks no goroutines. Completed
// result documents land in a content-addressed cache keyed by the
// SHA-256 of (canonical scenario JSON, engine, code version) — the
// engines are bit-deterministic per build, so a resubmitted spec is
// answered instantly with the byte-identical document and "cached": true
// provenance (workload.Scenario.Canonical defines the semantic normal
// form; internal/buildinfo the code identity). cmd/sweepctl is the
// matching client; make sweepd-smoke drives the contract end to end.
//
// See the examples directory for runnable programs and DESIGN.md for the
// full system inventory.
package greedyroute

package greedyroute

import (
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/sim"
)

// ArrayModel is the paper's standard system; see core.ArrayModel.
type ArrayModel = core.ArrayModel

// BoundSet is the full analytic ladder for one (n, λ) point.
type BoundSet = core.BoundSet

// SimParams tunes ArrayModel.Simulate.
type SimParams = core.SimParams

// Result is the measurement set of a single simulation run.
type Result = sim.Result

// ReplicaSet aggregates replicated runs.
type ReplicaSet = sim.ReplicaSet

// NewArrayModel creates a model with an explicit per-node arrival rate λ.
func NewArrayModel(n int, lambda float64) ArrayModel { return core.NewArrayModel(n, lambda) }

// NewArrayModelAtLoad creates a model at network load ρ.
func NewArrayModelAtLoad(n int, rho float64) ArrayModel { return core.NewArrayModelAtLoad(n, rho) }

// UpperBoundT returns Theorem 7's upper bound on the mean delay of the
// standard n×n array at per-node rate λ.
func UpperBoundT(n int, lambda float64) float64 { return bounds.UpperBoundT(n, lambda) }

// MD1ApproxT returns §4.2's M/D/1 independence approximation.
func MD1ApproxT(n int, lambda float64) float64 { return bounds.MD1ApproxT(n, lambda) }

// LowerBoundT returns the strongest non-asymptotic lower bound (the maximum
// of the trivial bound n̄ and Theorems 8 and 12).
func LowerBoundT(n int, lambda float64) float64 { return bounds.BestLowerBound(n, lambda) }

// StabilityLimit returns the largest stable per-node rate of the standard
// array: 4/n for even n, 4n/(n²-1) for odd n.
func StabilityLimit(n int) float64 { return bounds.StabilityLimit(n) }

// OptimalStabilityLimit returns §5.1's improved threshold 6/(n+1) for the
// optimally configured array at the standard budget.
func OptimalStabilityLimit(n int) float64 { return bounds.OptimalStabilityLimit(n) }

// MeanDist returns n̄ = (2/3)(n - 1/n), the mean greedy route length.
func MeanDist(n int) float64 { return bounds.MeanDist(n) }

// LambdaForLoad converts a target load ρ to a per-node rate.
func LambdaForLoad(n int, rho float64) float64 { return bounds.LambdaForLoad(n, rho) }

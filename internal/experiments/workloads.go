package experiments

import (
	"context"
	"repro/internal/sim"
	"repro/internal/workload"
)

// workloadScenario binds a registry scenario shrunk to the experiment
// options: quick mode takes the registry's Quick() form and thins the
// load grid.
func workloadScenario(name string, o Options) (*workload.Bound, error) {
	s, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	s.Seed = o.seed()
	if o.Quick {
		s = s.Quick()
		if len(s.Loads) > 2 {
			s.Loads = []float64{s.Loads[0], s.Loads[len(s.Loads)-1]}
		}
	}
	return s.Bind()
}

// HotSpotLadder runs the hot-spot bound ladder: the hotspot-8x8 scenario
// simulated across its load grid against the pattern-aware analytic
// pipeline — exact bottleneck utilization and the per-queue M/D/1
// estimate — with the analytic saturation rate λ* as the column to watch
// the measured delay diverge toward.
func HotSpotLadder(o Options) ([]Table, error) {
	b, err := workloadScenario("hotspot-8x8", o)
	if err != nil {
		return nil, err
	}
	an := b.Analysis
	t := Table{
		ID:     "hotladder",
		Title:  "Hot-spot bound ladder: simulation vs pattern-aware analytics (hotspot-8x8)",
		Header: []string{"load", "lambda", "lambda*", "rho_max", "T(sim)", "±95%", "T(md1)"},
	}
	sets, err := sim.RunSweep(context.Background(), b.Configs, o.replicas(b.Scenario.Replicas), o.Workers)
	if err != nil {
		return nil, err
	}
	for i, rs := range sets {
		pt := b.Points[i]
		t.AddRow(
			f2(pt.Load), f4(pt.NodeRate), f4(an.LambdaStar),
			f2(an.UtilAt(pt.NodeRate)),
			f3(rs.MeanDelay), f3(rs.DelayCI),
			f3(an.MD1DelayAt(pt.NodeRate)),
		)
	}
	t.AddNote("lambda* = %.4f per node (bottleneck edge %d: %d->%d); loads are fractions of lambda*, so rho_max = load.",
		an.LambdaStar, an.Bottleneck, b.Net.EdgeFrom(an.Bottleneck), b.Net.EdgeTo(an.Bottleneck))
	t.AddNote("expected shape: T(sim) tracks T(md1) at low load and diverges as load -> 1, the sim-measured saturation onset agreeing with the analytic lambda*.")
	return []Table{t}, nil
}

// BurstyDelay compares identical mean-rate uniform traffic under the
// three arrival processes — stationary Poisson, on-off MMPP bursts, and
// deterministic periodic injection — at each load. Burstiness is pure
// added variance at equal throughput, so delays must order
// periodic ≤ Poisson ≤ bursty.
func BurstyDelay(o Options) ([]Table, error) {
	kinds := []workload.ArrivalSpec{
		{Kind: "poisson"},
		{Kind: "bursty", BurstFactor: 4, MeanOn: 10, MeanOff: 30},
		{Kind: "periodic"},
	}
	s, err := workload.ByName("bursty-8x8")
	if err != nil {
		return nil, err
	}
	s.Seed = o.seed()
	if o.Quick {
		s = s.Quick()
		s.Loads = []float64{0.3, 0.7}
	}
	// One flat config list over (kind, load) so a single pool run covers
	// the whole comparison.
	var cfgs []sim.Config
	var bounds []*workload.Bound
	for _, kind := range kinds {
		sk := s
		sk.Arrivals = kind
		b, err := sk.Bind()
		if err != nil {
			return nil, err
		}
		bounds = append(bounds, b)
		cfgs = append(cfgs, b.Configs...)
	}
	// Replica count comes from the bound scenario: Bind has applied the
	// registry defaults (the raw spec leaves Replicas at 0).
	sets, err := sim.RunSweep(context.Background(), cfgs, o.replicas(bounds[0].Scenario.Replicas), o.Workers)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:    "bursty",
		Title: "Bursty vs Poisson vs periodic arrivals at equal mean rate (uniform 8x8)",
		Header: []string{"load", "lambda", "T(poisson)", "±95%", "T(bursty)", "±95%",
			"T(periodic)", "±95%"},
	}
	nLoads := len(s.Loads)
	for i := 0; i < nLoads; i++ {
		pt := bounds[0].Points[i]
		row := []string{f2(pt.Load), f4(pt.NodeRate)}
		for k := range kinds {
			rs := sets[k*nLoads+i]
			row = append(row, f3(rs.MeanDelay), f3(rs.DelayCI))
		}
		t.AddRow(row...)
	}
	t.AddNote("same mean rate per cell; bursty = on-off MMPP at 4x rate in bursts (mean on 10, off 30), periodic = deterministic interarrivals.")
	t.AddNote("expected shape: T(periodic) <= T(poisson) <= T(bursty) at every load, widening with load.")
	return []Table{t}, nil
}

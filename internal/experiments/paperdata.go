package experiments

// Published values transcribed from the paper (JCSS 53, 1996). These are the
// comparison targets; we aim to match their shape, not their exact digits —
// the paper's simulation horizons and seeds are unreported, and its own
// high-load cells are visibly noisy.

// tableICell is one row of the paper's Table I ("Simulation vs M/D/1
// Estimate").
type tableICell struct {
	N        int
	Rho      float64
	PaperSim float64
	PaperEst float64
}

var paperTableI = []tableICell{
	{5, 0.2, 3.545, 3.256}, {5, 0.5, 4.176, 3.722}, {5, 0.8, 6.252, 5.984},
	{5, 0.9, 8.867, 8.970}, {5, 0.95, 12.172, 12.877}, {5, 0.99, 20.333, 21.384},
	{10, 0.2, 6.929, 6.711}, {10, 0.5, 7.748, 7.641}, {10, 0.8, 10.652, 12.183},
	{10, 0.9, 14.718, 18.444}, {10, 0.95, 21.034, 28.014}, {10, 0.99, 63.950, 77.309},
	{15, 0.2, 10.289, 10.123}, {15, 0.5, 11.192, 11.518}, {15, 0.8, 14.563, 18.329},
	{15, 0.9, 19.226, 27.718}, {15, 0.95, 28.867, 41.990}, {15, 0.99, 68.220, 103.312},
	{20, 0.2, 13.649, 13.523}, {20, 0.5, 14.589, 15.383}, {20, 0.8, 18.191, 24.465},
	{20, 0.9, 20.041, 36.983}, {20, 0.95, 31.771, 56.015}, {20, 0.99, 77.283, 141.127},
}

// tableIICell is one row of Table II ("Simulation Measurement of r"),
// r = E[R]/E[N] with R the remaining services over in-flight packets.
type tableIICell struct {
	N      int
	Rho    float64
	PaperR float64
}

var paperTableII = []tableIICell{
	{5, 0.2, 2.568}, {5, 0.5, 2.574}, {5, 0.8, 2.600}, {5, 0.9, 2.610}, {5, 0.99, 2.613},
	{10, 0.2, 4.665}, {10, 0.5, 4.694}, {10, 0.8, 4.746}, {10, 0.9, 4.775}, {10, 0.99, 4.776},
	{15, 0.2, 6.755}, {15, 0.5, 6.796}, {15, 0.8, 6.875}, {15, 0.9, 6.913}, {15, 0.99, 6.924},
	{20, 0.2, 8.841}, {20, 0.5, 8.887}, {20, 0.8, 8.982}, {20, 0.9, 9.041}, {20, 0.99, 9.029},
}

// tableIIICell is one row of Table III ("Simulation Measurement of r_s"),
// measured at rho = 0.99.
type tableIIICell struct {
	N       int
	PaperRs float64
}

var paperTableIII = []tableIIICell{
	{5, 1.875}, {10, 1.250}, {15, 2.106}, {20, 1.230}, {25, 2.209},
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/bounds"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stepsim"
	"repro/internal/topology"
)

// Priority compares FIFO with Leighton's furthest-to-travel-first service
// order, the discipline behind the combinatorial analyses ([8,9], Kahale–
// Leighton [3]) that the paper's queueing-theoretic approach complements.
// The paper's bounds are proved for FIFO; this experiment shows how much
// the service order actually matters for the mean delay.
func Priority(o Options) ([]Table, error) {
	n := 8
	t := Table{
		ID:     "priority",
		Title:  fmt.Sprintf("FIFO vs furthest-first service on the %d×%d array", n, n),
		Header: []string{"rho", "T(FIFO)", "±", "T(furthest-first)", "±", "FF/FIFO"},
	}
	rhos := []float64{0.5, 0.9, 0.95}
	if o.Quick {
		rhos = []float64{0.8}
	}
	for _, rho := range rhos {
		cfg := arrayCfg(n, rho, o)
		fifo, err := sim.RunReplicas(context.Background(), cfg, o.replicas(6), o.Workers)
		if err != nil {
			return nil, err
		}
		ffCfg := cfg
		ffCfg.Discipline = sim.FurthestFirst
		ff, err := sim.RunReplicas(context.Background(), ffCfg, o.replicas(6), o.Workers)
		if err != nil {
			return nil, err
		}
		t.AddRow(f2(rho),
			f3(fifo.MeanDelay), f3(fifo.DelayCI),
			f3(ff.MeanDelay), f3(ff.DelayCI),
			f4(ff.MeanDelay/fifo.MeanDelay))
	}
	t.AddNote("both disciplines are work-conserving, so the number in system barely moves; favoring distant packets shifts delay between packet classes rather than reducing the mean.")
	return []Table{t}, nil
}

// CrossValidate runs the same slotted model through the two independent
// simulator implementations — the event-driven engine (internal/sim with
// SlotTau=1) and the synchronous phase-based engine (internal/stepsim) —
// and reports their agreement. They share no simulation code.
//
// The final full-mode case is a 128×128 array (≈16k nodes, 65k edges):
// the SoA slotted engine makes arrays of this size affordable, so the
// cross-validation now covers a regime where the paper's asymptotic bounds
// actually bite, not just the small arrays of Table I. Its slot budget is
// fixed rather than formula-driven — the event engine is the expensive
// side there.
func CrossValidate(o Options) ([]Table, error) {
	t := Table{
		ID:     "xval",
		Title:  "Engine cross-validation: event-driven vs synchronous slotted simulator",
		Header: []string{"n", "rho", "T(event)", "T(step)", "N(event)", "N(step)", "ΔT%", "ΔN%"},
	}
	cases := []struct {
		n     int
		rho   float64
		slots int // 0 = load-dependent formula
	}{{5, 0.5, 0}, {6, 0.8, 0}, {8, 0.9, 0}}
	if o.Quick {
		cases = cases[:1]
	} else {
		cases = append(cases, struct {
			n     int
			rho   float64
			slots int
		}{128, 0.5, 2000})
	}
	for _, c := range cases {
		slots := c.slots
		if slots == 0 {
			slots = int(20000 * minf(10, 1/(1-c.rho)) * o.horizonScale())
			if slots < 2000 {
				slots = 2000
			}
		}
		a := topology.NewArray2D(c.n)
		lambda := bounds.LambdaTable(c.n, c.rho)
		event, err := sim.Run(sim.Config{
			Net: a, Router: routing.GreedyXY{A: a},
			Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
			NodeRate: lambda,
			Warmup:   float64(slots) / 4, Horizon: float64(slots),
			Seed:    o.seed(),
			SlotTau: 1,
		})
		if err != nil {
			return nil, err
		}
		step, err := stepsim.Run(stepsim.Config{
			Net: a, Router: routing.GreedyXY{A: a},
			Dest:        routing.UniformDest{NumNodes: a.NumNodes()},
			NodeRate:    lambda,
			WarmupSlots: slots / 4, Slots: slots,
			Seed: o.seed() + 1,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(c.n), f2(c.rho),
			f3(event.MeanDelay), f3(step.MeanDelay),
			f3(event.MeanN), f3(step.MeanN),
			f2(100*relDiff(event.MeanDelay, step.MeanDelay)),
			f2(100*relDiff(event.MeanN, step.MeanN)))
	}
	t.AddNote("independent implementations of the same slotted model; percentage gaps are pure Monte Carlo noise and shrink with the horizon.")
	return []Table{t}, nil
}

func relDiff(a, b float64) float64 {
	if a == 0 {
		return b
	}
	d := (a - b) / a
	if d < 0 {
		return -d
	}
	return d
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/bounds"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// arrayCfg builds the standard-model simulation config the tables use:
// greedy routing, uniform destinations, FIFO, deterministic unit service,
// the paper's λ = 4ρ/n table convention, and a load-scaled horizon (heavier
// loads mix more slowly).
func arrayCfg(n int, rho float64, o Options) sim.Config {
	a := topology.NewArray2D(n)
	horizon := 2500 * minf(25, 1/(1-rho)) * o.horizonScale()
	return sim.Config{
		Net:      a,
		Router:   routing.GreedyXY{A: a},
		Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate: bounds.LambdaTable(n, rho),
		Warmup:   horizon / 4,
		Horizon:  horizon,
		Seed:     o.seed(),
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// TableI regenerates Table I: simulated mean delay vs the M/D/1 estimate
// across n and ρ. Columns report our simulation (with CI), the recovered
// paper estimate formula, the textbook M/D/1 estimate, the Theorem 7 upper
// bound, and the published Sim/Est pair.
func TableI(o Options) ([]Table, error) {
	t := Table{
		ID:    "table1",
		Title: "Simulation vs M/D/1 estimate (paper Table I)",
		Header: []string{"n", "rho", "T(sim)", "±95%", "T(est)", "T(md1)",
			"T(upper)", "paperSim", "paperEst"},
	}
	cells := paperTableI
	if o.Quick {
		cells = nil
		for _, c := range paperTableI {
			if c.N == 5 && (c.Rho == 0.2 || c.Rho == 0.8) {
				cells = append(cells, c)
			}
		}
	}
	for _, c := range cells {
		cfg := arrayCfg(c.N, c.Rho, o)
		rs, err := sim.RunReplicas(context.Background(), cfg, o.replicas(6), o.Workers)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprint(c.N), f2(c.Rho),
			f3(rs.MeanDelay), f3(rs.DelayCI),
			f3(bounds.PaperEstimateT(c.N, cfg.NodeRate)),
			f3(bounds.MD1ApproxT(c.N, cfg.NodeRate)),
			f3(bounds.UpperBoundT(c.N, cfg.NodeRate)),
			f3(c.PaperSim), f3(c.PaperEst),
		)
	}
	t.AddNote("λ = 4ρ/n (the paper's table convention); T(est) is the recovered paper formula, T(md1) the textbook per-queue M/D/1 estimate.")
	t.AddNote("expected shape: sim ≈ est at ρ ≤ 0.5; est increasingly overestimates sim at high load (dependence helps performance, §4.2).")
	return []Table{t}, nil
}

// TableII regenerates Table II: r = E[R]/E[N], the mean remaining services
// per in-flight packet, against n̄₂ = 2n/3.
func TableII(o Options) ([]Table, error) {
	t := Table{
		ID:     "table2",
		Title:  "Remaining services per packet, r = E[R]/E[N] (paper Table II)",
		Header: []string{"n", "n̄₂", "rho", "r(sim)", "r(paper)", "r/n̄₂"},
	}
	cells := paperTableII
	if o.Quick {
		cells = nil
		for _, c := range paperTableII {
			if c.N == 5 && (c.Rho == 0.5 || c.Rho == 0.9) {
				cells = append(cells, c)
			}
		}
	}
	for _, c := range cells {
		cfg := arrayCfg(c.N, c.Rho, o)
		rs, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		nbar2 := bounds.MeanDistExcl(c.N)
		t.AddRow(
			fmt.Sprint(c.N), f3(nbar2), f2(c.Rho),
			f3(rs.RPerN), f3(c.PaperR), f3(rs.RPerN/nbar2),
		)
	}
	t.AddNote("the paper observes r < n̄₂ with r/n̄₂ < 0.7 for large n: middle queues hold disproportionately many packets that are mostly almost home.")
	return []Table{t}, nil
}

// TableIII regenerates Table III: r_s = E[R_s]/E[N] at ρ = 0.99, the mean
// remaining *saturated* services per in-flight packet.
func TableIII(o Options) ([]Table, error) {
	t := Table{
		ID:     "table3",
		Title:  "Remaining saturated services per packet at rho=0.99 (paper Table III)",
		Header: []string{"n", "parity", "r_s(sim)", "r_s(paper)", "s̄", "maxCross"},
	}
	cells := paperTableIII
	if o.Quick {
		cells = cells[:2]
	}
	for _, c := range cells {
		cfg := arrayCfg(c.N, 0.99, o)
		a := cfg.Net.(*topology.Array2D)
		cfg.Saturated = bounds.SaturatedEdges(a)
		rs, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		parity := "even"
		if c.N%2 == 1 {
			parity = "odd"
		}
		t.AddRow(
			fmt.Sprint(c.N), parity,
			f3(rs.RsPerN), f3(c.PaperRs),
			f3(bounds.SBar(c.N)), fmt.Sprint(bounds.MaxSaturatedCrossings(c.N)),
		)
	}
	t.AddNote("expected shape: odd n well above even n (odd arrays have twice the saturated edges and up to 4 crossings per route); r_s staying below s̄ is the slack Theorem 14 leaves on the table.")
	return []Table{t}, nil
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/bounds"
	"repro/internal/queueing"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// MiddleOccupancy verifies §4.4's intuition quantitatively: queues in the
// middle of the array hold more packets than peripheral ones. It groups the
// measured per-edge occupancy by Theorem 6 rate index and compares each
// group with the independent M/D/1 and Jackson predictions.
func MiddleOccupancy(o Options) ([]Table, error) {
	n := 8
	rho := 0.9
	if o.Quick {
		n = 6
	}
	cfg := arrayCfg(n, rho, o)
	cfg.TrackEdgeOccupancy = true
	cfg.Horizon *= 2
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	a := cfg.Net.(*topology.Array2D)
	t := Table{
		ID:     "middles",
		Title:  fmt.Sprintf("Per-edge queue lengths by rate index, %d×%d at ρ=%.2f (§4.4)", n, n, rho),
		Header: []string{"index i", "rate λ_e", "occupancy(sim)", "M/D/1 pred", "Jackson pred"},
	}
	groups := make([]stats.Welford, n)
	for e := 0; e < a.NumEdges(); e++ {
		groups[rateIdx(a, e)].Add(res.EdgeOccupancy[e])
	}
	for i := 1; i < n; i++ {
		u := cfg.NodeRate * float64(i*(n-i)) / float64(n)
		md1, _ := queueing.MD1Number(u, 1)
		jack, _ := queueing.MM1Number(u, 1)
		t.AddRow(fmt.Sprint(i), f3(u), f3(groups[i].Mean()), f3(md1), f3(jack))
	}
	t.AddNote("monotone growth toward the middle index confirms §4.4; the simulated occupancies sitting below the M/D/1 prediction at the middle is the dependence effect behind Table I.")
	return []Table{t}, nil
}

// rateIdx mirrors bounds' Theorem 6 rate index for grouping.
func rateIdx(a *topology.Array2D, e int) int {
	r, c, d := a.EdgeInfo(e)
	switch d {
	case topology.Right:
		return c + 1
	case topology.Left:
		return c
	case topology.Down:
		return r + 1
	default:
		return r
	}
}

// Domination checks Theorem 5 at the distribution level: the tail
// probabilities Pr[N > k] of the FIFO system must not exceed those of the
// PS system for any k, not just in expectation.
func Domination(o Options) ([]Table, error) {
	n := 5
	rho := 0.8
	cfg := arrayCfg(n, rho, o)
	cfg.TrackNDist = true
	cfg.Horizon *= 2
	fifo, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	psCfg := cfg
	psCfg.Discipline = sim.PS
	ps, err := sim.Run(psCfg)
	if err != nil {
		return nil, err
	}
	t := Table{
		ID:     "ndist",
		Title:  fmt.Sprintf("Theorem 5 stochastic dominance, %d×%d at ρ=%.2f", n, n, rho),
		Header: []string{"k", "Pr[N_FIFO>k]", "Pr[N_PS>k]", "dominated"},
	}
	span := len(fifo.NDist)
	if len(ps.NDist) > span {
		span = len(ps.NDist)
	}
	step := span / 8
	if step < 1 {
		step = 1
	}
	for k := 0; k < span; k += step {
		pf := fifo.TailProb(k)
		pp := ps.TailProb(k)
		ok := "yes"
		if pf > pp+0.03 {
			ok = "no (beyond noise)"
		}
		t.AddRow(fmt.Sprint(k), f4(pf), f4(pp), ok)
	}
	t.AddNote("Theorem 1/5 asserts N_FIFO(t) ≤st N_PS(t); every FIFO tail should sit at or below the PS tail.")
	return []Table{t}, nil
}

// KLGrowth revisits §4.2's discussion of Kahale–Leighton: at fixed load the
// estimate's excess delay T - n̄ grows linearly in n, while the simulated
// excess stays near-constant — dependence helps more as the array grows.
func KLGrowth(o Options) ([]Table, error) {
	rho := 0.8
	t := Table{
		ID:     "klgrowth",
		Title:  fmt.Sprintf("Excess delay T - n̄ at fixed ρ=%.2f (§4.2, Kahale–Leighton)", rho),
		Header: []string{"n", "n̄", "T(sim)-n̄", "T(est md1)-n̄", "sim/est excess"},
	}
	sizes := []int{5, 10, 15, 20}
	if o.Quick {
		sizes = []int{5, 10}
	}
	for _, n := range sizes {
		cfg := arrayCfg(n, rho, o)
		rs, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		nbar := bounds.MeanDist(n)
		simEx := rs.MeanDelay - nbar
		estEx := bounds.MD1ApproxT(n, cfg.NodeRate) - nbar
		t.AddRow(fmt.Sprint(n), f3(nbar), f3(simEx), f3(estEx), f3(simEx/estEx))
	}
	t.AddNote("the estimate's excess grows ~linearly with n; the simulated excess grows much more slowly (Kahale–Leighton prove it is O(1) for fixed ρ), so the ratio falls with n.")
	return []Table{t}, nil
}

// HotSpot exercises §5.1's variable-rate machinery in the small: slow one
// middle wire down and compare the simulated delay against the product-form
// prediction with the modified service rate (the Theorem 5 variation for
// constant service times keeps it an upper bound).
func HotSpot(o Options) ([]Table, error) {
	n := 6
	rho := 0.6
	a := topology.NewArray2D(n)
	slowRate := 0.7
	// Slow the busiest kind of edge: a middle horizontal one.
	slowEdge, _ := a.EdgeIn(n/2, n/2-1, topology.Right)
	t := Table{
		ID:    "hotspot",
		Title: fmt.Sprintf("One slow wire (φ=%.1f) on the %d×%d array at ρ=%.2f (§5.1)", slowRate, n, n, rho),
		Header: []string{"config", "T(sim det)", "T(sim exp)", "T(Jackson)",
			"hot-edge load"},
	}
	horizon := 6000 * o.horizonScale() / (1 - rho)
	for _, slowed := range []bool{false, true} {
		st := make([]float64, a.NumEdges())
		phi := make([]float64, a.NumEdges())
		for e := range st {
			st[e] = 1
			phi[e] = 1
		}
		name := "uniform wires"
		if slowed {
			st[slowEdge] = 1 / slowRate
			phi[slowEdge] = slowRate
			name = "one slow wire"
		}
		lambda := bounds.LambdaForLoad(n, rho)
		cfg := sim.Config{
			Net: a, Router: routing.GreedyXY{A: a},
			Dest:        routing.UniformDest{NumNodes: a.NumNodes()},
			NodeRate:    lambda,
			Warmup:      horizon / 4,
			Horizon:     horizon,
			Seed:        o.seed(),
			ServiceTime: st,
		}
		det, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		expCfg := cfg
		expCfg.Service = sim.Exponential
		exp, err := sim.RunReplicas(context.Background(), expCfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		rates := bounds.EdgeRates(a, lambda)
		jack, err := bounds.JacksonT(rates, phi, lambda*float64(n*n))
		if err != nil {
			return nil, err
		}
		t.AddRow(name, f3(det.MeanDelay), f3(exp.MeanDelay), f3(jack),
			f3(rates[slowEdge]/phi[slowEdge]))
	}
	t.AddNote("expected: det ≤ exp ≈ Jackson in both rows; slowing one middle wire raises its load by 1/φ and the whole network's delay with it.")
	return []Table{t}, nil
}

// Tandem demonstrates §4.4's tightness example: on a line of queues where
// every packet traverses every edge, the copy-network of Theorem 10 really
// does hold d times the packets of the original system as ρ→1, so the
// factor d cannot be improved in general. With deterministic service the
// original tandem has N = N_MD1(λ) + (d-1)λ exactly (departures from an
// M/D/1 queue are spaced at least one service apart, so downstream queues
// never hold a waiting packet), while the copy system has N̄ = d·N_MD1(λ).
func Tandem(o Options) ([]Table, error) {
	n := 9
	l := topology.NewLinear(n)
	d := n - 1
	t := Table{
		ID:    "tandem",
		Title: fmt.Sprintf("Tandem line of %d queues: Theorem 10 tightness (§4.4)", d),
		Header: []string{"rho", "N(sim)", "N theory", "N̄ copy = d·N_MD1",
			"N̄/N", "→ d"},
	}
	rhos := []float64{0.5, 0.9, 0.99}
	if o.Quick {
		rhos = []float64{0.5, 0.9}
	}
	for _, rho := range rhos {
		horizon := 4000 * minf(25, 1/(1-rho)) * o.horizonScale()
		cfg := sim.Config{
			Net:      topology.Restrict{Network: l, Nodes: []int{0}},
			Router:   routing.LinearRoute{L: l},
			Dest:     routing.FixedDest{Node: n - 1},
			NodeRate: rho,
			Warmup:   horizon / 4, Horizon: horizon,
			Seed: o.seed(),
		}
		rs, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		nmd1, err := queueing.MD1Number(rho, 1)
		if err != nil {
			return nil, err
		}
		theory := nmd1 + float64(d-1)*rho
		copies := float64(d) * nmd1
		t.AddRow(f2(rho), f3(rs.MeanN), f3(theory), f3(copies),
			f3(copies/rs.MeanN), fmt.Sprint(d))
	}
	t.AddNote("as ρ→1 the copy/original ratio approaches d = %d: Theorem 10's factor is essentially best possible in general, which is why Theorem 12 (d̄) and Theorem 14 (s̄) need network structure to do better.", d)
	return []Table{t}, nil
}

// TorusPS probes §6's open problem empirically: Theorem 5's proof fails on
// the torus (it cannot be layered and greedy routing there is not
// Markovian), so there is no *proven* PS upper bound — but does the
// domination still hold in practice? We compare N under FIFO deterministic
// service against PS and against the Jackson evaluation on the torus's
// exact edge rates.
func TorusPS(o Options) ([]Table, error) {
	n := 6
	tor := topology.NewTorus2D(n)
	t := Table{
		ID:     "torusps",
		Title:  fmt.Sprintf("Open problem probe: does PS still dominate FIFO on the %d×%d torus?", n, n),
		Header: []string{"rho", "N(FIFO det)", "N(PS det)", "N(Jackson eval)", "dominated"},
	}
	rhos := []float64{0.5, 0.8}
	if o.Quick {
		rhos = []float64{0.5}
	}
	for _, rho := range rhos {
		lambda := rho / bounds.TorusPlusRate(n, 1)
		horizon := 5000 * minf(15, 1/(1-rho)) * o.horizonScale()
		cfg := sim.Config{
			Net: tor, Router: routing.TorusGreedy{T: tor},
			Dest:     routing.UniformDest{NumNodes: tor.NumNodes()},
			NodeRate: lambda,
			Warmup:   horizon / 4, Horizon: horizon,
			Seed: o.seed(),
		}
		fifo, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		psCfg := cfg
		psCfg.Discipline = sim.PS
		ps, err := sim.RunReplicas(context.Background(), psCfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		// Jackson evaluation on the exact torus rates (per-direction).
		rates := make([]float64, tor.NumEdges())
		ones := make([]float64, tor.NumEdges())
		for e := range rates {
			_, _, d := tor.EdgeInfo(e)
			if d == topology.Right || d == topology.Down {
				rates[e] = bounds.TorusPlusRate(n, lambda)
			} else {
				rates[e] = bounds.TorusMinusRate(n, lambda)
			}
			ones[e] = 1
		}
		jackN, err := queueing.JacksonNumber(rates, ones)
		if err != nil {
			return nil, err
		}
		ok := "yes"
		if fifo.MeanN > ps.MeanN*1.02 {
			ok = "no"
		}
		t.AddRow(f2(rho), f3(fifo.MeanN), f3(ps.MeanN), f3(jackN), ok)
	}
	t.AddNote("empirically the PS (product-form) number still dominates FIFO on the torus — consistent with the conjecture behind §6's open problem, though unproven.")
	return []Table{t}, nil
}

// Rectangular carries the paper's "rectangular arrays are easily handled
// similarly" remark to numbers: bounds and simulation for an nr×nc mesh.
func Rectangular(o Options) ([]Table, error) {
	nr, nc := 4, 8
	a := topology.NewArrayKD(nr, nc)
	t := Table{
		ID:     "rect",
		Title:  fmt.Sprintf("Rectangular %d×%d array (§2.1 remark)", nr, nc),
		Header: []string{"rho", "T(sim)", "Thm12 low", "T(md1)", "T(upper)"},
	}
	rhos := []float64{0.5, 0.9}
	if o.Quick {
		rhos = []float64{0.5}
	}
	for _, rho := range rhos {
		lambda := rho * bounds.RectStabilityLimit(nr, nc)
		horizon := 2500 * minf(15, 1/(1-rho)) * o.horizonScale()
		cfg := sim.Config{
			Net: a, Router: routing.GreedyKD{A: a},
			Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
			NodeRate: lambda,
			Warmup:   horizon / 4, Horizon: horizon,
			Seed: o.seed(),
		}
		rs, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		t.AddRow(f2(rho), f3(rs.MeanDelay),
			f3(bounds.RectThm12LowerBound(nr, nc, lambda)),
			f3(bounds.RectMD1ApproxT(nr, nc, lambda)),
			f3(bounds.RectUpperBoundT(nr, nc, lambda)))
	}
	t.AddNote("n̄ = %.3f; the longer axis saturates first (stability λ < %.4f).",
		bounds.RectMeanDist(nr, nc), bounds.RectStabilityLimit(nr, nc))
	return []Table{t}, nil
}

package experiments

import "fmt"

// All returns every experiment in presentation order: first the paper's
// tables and figures, then the in-text claims and extensions.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: simulation vs M/D/1 estimate", TableI},
		{"table2", "Table II: remaining services per packet (r)", TableII},
		{"table3", "Table III: remaining saturated services (r_s)", TableIII},
		{"fig1", "Figure 1: layering the array (Lemma 2)", Figure1},
		{"fig2", "Figure 2: saturated edges (§4.6)", Figure2},
		{"ladder", "Bound ladder: Thm 7/8/12/14 vs simulation", BoundLadder},
		{"gap", "Gap convergence to 3 (even) / <6 (odd) as ρ→1", GapConvergence},
		{"psdom", "Theorem 5: PS/Jackson dominates FIFO", PSDomination},
		{"rates", "Theorem 6: edge arrival rates", RateValidation},
		{"alloc", "Theorem 15/§5.1: optimal transmission rates", OptimalAllocation},
		{"hypercube", "§4.5: hypercube bounds and improved gap", Hypercube},
		{"butterfly", "§4.5: butterfly bounds", Butterfly},
		{"randomized", "§6: randomized greedy vs standard", RandomizedGreedy},
		{"torus", "§6: greedy routing on the torus", Torus},
		{"nonuniform", "§5.2: distance-biased destinations", NonUniform},
		{"slotted", "§5.2: slotted-time model", Slotted},
		{"kdarray", "§5.2: k-dimensional arrays", KDArray},
		{"lemma3", "Lemma 3: Markov destination walk", Lemma3},
		{"little", "Little's law self-check", LittleCheck},
		{"middles", "§4.4: queue lengths peak in the middle", MiddleOccupancy},
		{"ndist", "Theorem 5 at the distribution level", Domination},
		{"klgrowth", "§4.2: excess delay growth (Kahale–Leighton)", KLGrowth},
		{"hotspot", "§5.1: one slow wire (variable rates)", HotSpot},
		{"rect", "§2.1: rectangular arrays", Rectangular},
		{"tandem", "§4.4: Theorem 10 tightness on the tandem line", Tandem},
		{"torusps", "§6 probe: PS vs FIFO on the torus", TorusPS},
		{"priority", "Leighton's furthest-first service order vs FIFO", Priority},
		{"xval", "engine cross-validation (event vs synchronous)", CrossValidate},
		{"hotladder", "workloads: hot-spot bound ladder vs analytic λ*", HotSpotLadder},
		{"bursty", "workloads: bursty/periodic vs Poisson delay", BurstyDelay},
	}
}

// ByID finds an experiment by its identifier.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Quick: true, Seed: 3} }

// TestAllExperimentsRunQuick smoke-runs every registered experiment in
// quick mode and checks the tables are well formed.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still simulates; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run(quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s: empty table %q", e.ID, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Errorf("%s: row width %d != header width %d", e.ID, len(row), len(tb.Header))
					}
				}
				if !strings.Contains(tb.String(), tb.Title) {
					t.Errorf("%s: render misses title", e.ID)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("table1")
	if err != nil || e.ID != "table1" {
		t.Fatalf("ByID(table1) = %v, %v", e.ID, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{ID: "x", Title: "demo", Header: []string{"a", "longcol"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.AddNote("hello %d", 7)
	s := tb.String()
	for _, want := range []string{"demo", "longcol", "333", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestFloatFormatting(t *testing.T) {
	if f2(1.005) == "" || f3(-1e301) != "-inf" || f4(1e301) != "inf" {
		t.Error("ffmt edge cases")
	}
	nan := func() float64 { var z float64; return z / z }()
	if f2(nan) != "nan" {
		t.Error("nan formatting")
	}
}

// TestGapTableValues pins the analytic gap experiment's convergence:
// the even-n column at ρ=0.9999 must be within 2% of 3.
func TestGapTableValues(t *testing.T) {
	tables, err := GapConvergence(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for _, row := range tb.Rows {
		if row[1] != "even" {
			continue
		}
		v, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 2.94 || v > 3.06 {
			t.Errorf("even-n gap at ρ=0.9999 is %v, want ≈3", v)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.seed() != 1 {
		t.Error("zero seed should default to 1")
	}
	if o.horizonScale() != 1 {
		t.Error("full scale should be 1")
	}
	if (Options{Quick: true}).horizonScale() >= 1 {
		t.Error("quick scale should shrink")
	}
	if o.replicas(6) != 6 || (Options{Quick: true}).replicas(6) != 2 {
		t.Error("replica defaults")
	}
}

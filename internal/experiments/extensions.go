package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bounds"
	"repro/internal/queueing"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// BoundLadder simulates the array across loads and places the measured
// delay inside the paper's full ladder of bounds: trivial n̄, Theorem 8,
// Theorem 12, Theorem 14 (asymptotic), the M/D/1 estimate, and the
// Theorem 7 upper bound. This is the "figure" the paper describes in prose.
func BoundLadder(o Options) ([]Table, error) {
	var out []Table
	ns := []int{8, 9}
	rhos := []float64{0.2, 0.5, 0.8, 0.9, 0.95, 0.99}
	if o.Quick {
		ns = []int{8}
		rhos = []float64{0.5, 0.9}
	}
	for _, n := range ns {
		t := Table{
			ID:    "ladder",
			Title: fmt.Sprintf("Bound ladder for the %d×%d array", n, n),
			Header: []string{"rho", "n̄", "Thm8", "Thm12", "Thm14*", "T(sim)",
				"T(md1)", "T(upper)", "up/sim"},
		}
		for _, rho := range rhos {
			cfg := arrayCfg(n, rho, o)
			rs, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
			if err != nil {
				return nil, err
			}
			l := cfg.NodeRate
			t.AddRow(f2(rho), f3(bounds.MeanDist(n)),
				f3(bounds.STLowerBoundOblivious(n, l)),
				f3(bounds.Thm12LowerBound(n, l)),
				f3(bounds.Thm14LowerBound(n, l)),
				f3(rs.MeanDelay),
				f3(bounds.MD1ApproxT(n, l)),
				f3(bounds.UpperBoundT(n, l)),
				f2(bounds.UpperBoundT(n, l)/rs.MeanDelay))
		}
		t.AddNote("Thm14* is asymptotic (valid as ρ→1). Every other lower bound must sit below T(sim); T(sim) must sit below T(upper).")
		out = append(out, t)
	}
	return out, nil
}

// GapConvergence is analytic: the ratio of Theorem 7's upper bound to
// Theorem 14's lower bound as ρ→1, converging to 3 for even n and < 6 for
// odd n (§4.6).
func GapConvergence(o Options) ([]Table, error) {
	t := Table{
		ID:     "gap",
		Title:  "Upper/lower gap as ρ→1 (Theorem 14, §4.6)",
		Header: []string{"n", "parity", "ρ=0.9", "ρ=0.99", "ρ=0.999", "ρ=0.9999", "limit 2s̄"},
	}
	sizes := []int{6, 10, 20, 5, 9, 15}
	if o.Quick {
		sizes = []int{6, 5}
	}
	for _, n := range sizes {
		parity := "even"
		if n%2 == 1 {
			parity = "odd"
		}
		ratio := func(rho float64) float64 {
			l := bounds.LambdaForLoad(n, rho)
			return bounds.UpperBoundT(n, l) / bounds.Thm14LowerBound(n, l)
		}
		t.AddRow(fmt.Sprint(n), parity,
			f3(ratio(0.9)), f3(ratio(0.99)), f3(ratio(0.999)), f3(ratio(0.9999)),
			f3(bounds.GapLimit(n)))
	}
	t.AddNote("paper: bounds differ by a factor of 3 for even n and at most 6 for odd n near capacity.")
	return []Table{t}, nil
}

// PSDomination checks Theorem 5 empirically: mean packets in system under
// FIFO/deterministic ≤ PS/deterministic ≈ FIFO/exponential (Jackson) ≈ the
// product-form prediction.
func PSDomination(o Options) ([]Table, error) {
	t := Table{
		ID:     "psdom",
		Title:  "Theorem 5: FIFO is dominated by PS = Jackson",
		Header: []string{"n", "rho", "N(FIFO det)", "N(PS det)", "N(FIFO exp)", "N(product form)"},
	}
	cases := []struct {
		n   int
		rho float64
	}{{5, 0.5}, {5, 0.8}, {6, 0.8}}
	if o.Quick {
		cases = cases[:1]
	}
	for _, c := range cases {
		cfg := arrayCfg(c.n, c.rho, o)
		cfg.Horizon *= 2
		psCfg := cfg
		psCfg.Discipline = sim.PS
		expCfg := cfg
		expCfg.Service = sim.Exponential
		rsF, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		rsP, err := sim.RunReplicas(context.Background(), psCfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		rsE, err := sim.RunReplicas(context.Background(), expCfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		a := cfg.Net.(*topology.Array2D)
		rates := bounds.EdgeRates(a, cfg.NodeRate)
		ones := make([]float64, len(rates))
		for i := range ones {
			ones[i] = 1
		}
		pf, err := queueing.JacksonNumber(rates, ones)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(c.n), f2(c.rho),
			f3(rsF.MeanN), f3(rsP.MeanN), f3(rsE.MeanN), f3(pf))
	}
	t.AddNote("expected: first column smallest; the last three agree (PS with unit demands, the Jackson model, and the closed form share one equilibrium).")
	return []Table{t}, nil
}

// RateValidation measures per-edge arrival rates and compares them with
// Theorem 6's closed form.
func RateValidation(o Options) ([]Table, error) {
	t := Table{
		ID:     "rates",
		Title:  "Theorem 6 edge arrival rates vs measurement",
		Header: []string{"n", "rho", "edges", "max rel err", "mean rel err"},
	}
	cases := []struct {
		n   int
		rho float64
	}{{5, 0.5}, {8, 0.8}}
	if o.Quick {
		cases = cases[:1]
	}
	for _, c := range cases {
		cfg := arrayCfg(c.n, c.rho, o)
		cfg.Horizon *= 2
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		a := cfg.Net.(*topology.Array2D)
		want := bounds.EdgeRates(a, cfg.NodeRate)
		maxErr, sumErr := 0.0, 0.0
		for e := range want {
			err := stats.RelErr(res.EdgeRates[e], want[e])
			sumErr += err
			if err > maxErr {
				maxErr = err
			}
		}
		t.AddRow(fmt.Sprint(c.n), f2(c.rho), fmt.Sprint(len(want)),
			f4(maxErr), f4(sumErr/float64(len(want))))
	}
	t.AddNote("errors shrink as 1/√horizon; the closed form is exact (see bounds tests for the enumeration proof).")
	return []Table{t}, nil
}

// OptimalAllocation reproduces §5.1: Theorem 15's allocation under the
// standard budget shifts the stability threshold from 4/n to 6/(n+1) and
// cuts delay near capacity; simulated delays confirm both the closed form
// (exponential service) and the constant-service upper-bound property.
func OptimalAllocation(o Options) ([]Table, error) {
	n := 8
	a := topology.NewArray2D(n)
	t := Table{
		ID:    "alloc",
		Title: fmt.Sprintf("Theorem 15 optimal rates on the %d×%d array, budget D = 4n(n-1) = %.0f", n, n, bounds.StandardBudget(n)),
		Header: []string{"λ/λ_std", "std stable", "opt stable", "T(std JKSN)",
			"T(opt closed)", "T(opt exp sim)", "T(opt det sim)"},
	}
	fracs := []float64{0.5, 0.8, 0.95, 1.1, 1.25}
	if o.Quick {
		fracs = []float64{0.8, 1.1}
	}
	for _, frac := range fracs {
		lambda := frac * bounds.StabilityLimit(n)
		stdT, stdErr := bounds.ArrayStandardT(a, lambda)
		stdCell := f3(stdT)
		if stdErr != nil {
			stdCell = "unstable"
		}
		optT, optErr := bounds.ArrayOptimalT(a, lambda, bounds.StandardBudget(n))
		optCell := f3(optT)
		simExpCell, simDetCell := "-", "-"
		if optErr == nil {
			phi, _, err := bounds.ArrayOptimalAllocation(a, lambda, bounds.StandardBudget(n))
			if err != nil {
				return nil, err
			}
			st := make([]float64, len(phi))
			for i := range phi {
				st[i] = 1 / phi[i]
			}
			// Scale the horizon with the load relative to the *optimal*
			// network's capacity 6/(n+1).
			loadFrac := lambda / bounds.OptimalStabilityLimit(n)
			horizon := 4000 * minf(15, 1/(1-loadFrac)) * o.horizonScale()
			if horizon < 500 {
				horizon = 500
			}
			cfg := sim.Config{
				Net: a, Router: routing.GreedyXY{A: a},
				Dest:        routing.UniformDest{NumNodes: a.NumNodes()},
				NodeRate:    lambda,
				Warmup:      horizon / 4,
				Horizon:     horizon,
				Seed:        o.seed(),
				Service:     sim.Exponential,
				ServiceTime: st,
			}
			rsExp, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
			if err != nil {
				return nil, err
			}
			detCfg := cfg
			detCfg.Service = sim.Deterministic
			rsDet, err := sim.RunReplicas(context.Background(), detCfg, o.replicas(4), o.Workers)
			if err != nil {
				return nil, err
			}
			simExpCell, simDetCell = f3(rsExp.MeanDelay), f3(rsDet.MeanDelay)
		} else {
			optCell = "unstable"
		}
		stdStable, optStable := "yes", "yes"
		if lambda >= bounds.StabilityLimit(n) {
			stdStable = "no"
		}
		if lambda >= bounds.OptimalStabilityLimit(n) {
			optStable = "no"
		}
		t.AddRow(f2(frac), stdStable, optStable, stdCell, optCell, simExpCell, simDetCell)
	}
	t.AddNote("λ_std = 4/n = %.3f; optimal limit 6/(n+1) = %.3f, i.e. 3n/(2(n+1)) = %.3f× the standard.",
		bounds.StabilityLimit(n), bounds.OptimalStabilityLimit(n),
		bounds.OptimalStabilityLimit(n)/bounds.StabilityLimit(n))
	t.AddNote("expected: exp sim matches the closed form; det sim sits at or below it (constant service is bounded above by the Jackson model).")
	return []Table{t}, nil
}

// Hypercube reproduces §4.5: greedy routing on the d-cube with Bernoulli(p)
// destinations, simulated against the cube bounds, plus the improved gap
// 2(dp+1-p) vs the previous 2d.
func Hypercube(o Options) ([]Table, error) {
	d := 7
	ps := []float64{0.1, 0.5, 0.9}
	if o.Quick {
		d = 5
		ps = []float64{0.5}
	}
	h := topology.NewHypercube(d)
	t := Table{
		ID:    "hypercube",
		Title: fmt.Sprintf("Hypercube d=%d with Bernoulli(p) destinations (§4.5)", d),
		Header: []string{"p", "rho", "T(sim)", "Thm12 low", "T(md1)", "T(upper)",
			"gap new 2(dp+1-p)", "gap ST 2d"},
	}
	for _, p := range ps {
		for _, rho := range []float64{0.5, 0.9} {
			lambda := rho / p
			horizon := 3000 * minf(15, 1/(1-rho)) * o.horizonScale()
			cfg := sim.Config{
				Net: h, Router: routing.CubeGreedy{H: h},
				Dest:     routing.BernoulliCubeDest{H: h, P: p},
				NodeRate: lambda,
				Warmup:   horizon / 4, Horizon: horizon,
				Seed: o.seed(),
			}
			rs, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
			if err != nil {
				return nil, err
			}
			t.AddRow(f2(p), f2(rho), f3(rs.MeanDelay),
				f3(bounds.CubeThm12LowerBound(d, p, lambda)),
				f3(bounds.CubeMD1ApproxT(d, p, lambda)),
				f3(bounds.CubeUpperBoundT(d, p, lambda)),
				f2(bounds.CubeGapLimit(d, p)), f2(bounds.CubeSTGapLimit(d)))
		}
	}
	t.AddNote("every edge carries λp; d̄ = 1 + p(d-1); at p=1/2 the new gap is d+1 against the previous 2d.")
	return []Table{t}, nil
}

// Butterfly reproduces §4.5's butterfly comparison: all queues saturate
// together, and the gap matches Stamoulis–Tsitsiklis's 2d.
func Butterfly(o Options) ([]Table, error) {
	d := 5
	if o.Quick {
		d = 3
	}
	b := topology.NewButterfly(d)
	t := Table{
		ID:     "butterfly",
		Title:  fmt.Sprintf("Butterfly with %d levels (§4.5)", d),
		Header: []string{"λ", "rho", "T(sim)", "Thm10 low", "T(md1)", "T(upper)", "gap 2d"},
	}
	lambdas := []float64{1.0, 1.6, 1.9}
	if o.Quick {
		lambdas = []float64{1.0}
	}
	for _, lambda := range lambdas {
		rho := lambda / 2
		horizon := 3000 * minf(15, 1/(1-rho)) * o.horizonScale()
		cfg := sim.Config{
			Net: b, Router: routing.ButterflyRoute{B: b},
			Dest:     routing.ButterflyUniformDest{B: b},
			NodeRate: lambda,
			Warmup:   horizon / 4, Horizon: horizon,
			Seed: o.seed(),
		}
		rs, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		t.AddRow(f2(lambda), f2(rho), f3(rs.MeanDelay),
			f3(bounds.ButterflyThm10LowerBound(d, lambda)),
			f3(bounds.ButterflyMD1ApproxT(d, lambda)),
			f3(bounds.ButterflyUpperBoundT(d, lambda)),
			f2(bounds.ButterflyGapLimit(d)))
	}
	t.AddNote("every packet crosses exactly d edges and every edge carries λ/2, so Theorem 14 cannot improve on Theorem 10 here.")
	return []Table{t}, nil
}

// RandomizedGreedy reproduces §6's observation: choosing row-first or
// column-first at random performs slightly worse than always row-first.
func RandomizedGreedy(o Options) ([]Table, error) {
	n := 8
	a := topology.NewArray2D(n)
	t := Table{
		ID:     "randomized",
		Title:  "Randomized greedy vs standard greedy (§6)",
		Header: []string{"rho", "T(standard)", "±", "T(randomized)", "±", "rand/std"},
	}
	rhos := []float64{0.5, 0.8, 0.9}
	if o.Quick {
		rhos = []float64{0.8}
	}
	for _, rho := range rhos {
		cfg := arrayCfg(n, rho, o)
		cfg.Horizon *= 2
		rsStd, err := sim.RunReplicas(context.Background(), cfg, o.replicas(6), o.Workers)
		if err != nil {
			return nil, err
		}
		randCfg := cfg
		randCfg.Router = routing.RandGreedy{A: a}
		rsRand, err := sim.RunReplicas(context.Background(), randCfg, o.replicas(6), o.Workers)
		if err != nil {
			return nil, err
		}
		t.AddRow(f2(rho),
			f3(rsStd.MeanDelay), f3(rsStd.DelayCI),
			f3(rsRand.MeanDelay), f3(rsRand.DelayCI),
			f4(rsRand.MeanDelay/rsStd.MeanDelay))
	}
	t.AddNote("the paper reports the randomized scheme 'slightly worse'; the Theorem 5 upper bound does not apply to it (routing is not Markovian in edge space), Theorem 10 does.")
	return []Table{t}, nil
}

// Torus simulates greedy routing on the torus (§6's open problem): no upper
// bound exists, but the M/D/1 estimate and Theorem 10 lower bound apply,
// and the torus carries roughly twice the array's load.
func Torus(o Options) ([]Table, error) {
	n := 8
	tor := topology.NewTorus2D(n)
	t := Table{
		ID:     "torus",
		Title:  fmt.Sprintf("Greedy routing on the %d×%d torus (§6)", n, n),
		Header: []string{"λ", "rho(torus)", "T(sim)", "Thm10 low", "T(md1)", "array at same λ"},
	}
	rhos := []float64{0.5, 0.8, 0.9}
	if o.Quick {
		rhos = []float64{0.5}
	}
	for _, rho := range rhos {
		lambda := rho / bounds.TorusPlusRate(n, 1)
		horizon := 3000 * minf(15, 1/(1-rho)) * o.horizonScale()
		cfg := sim.Config{
			Net: tor, Router: routing.TorusGreedy{T: tor},
			Dest:     routing.UniformDest{NumNodes: tor.NumNodes()},
			NodeRate: lambda,
			Warmup:   horizon / 4, Horizon: horizon,
			Seed: o.seed(),
		}
		rs, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		arrayCell := "unstable"
		if lambda < bounds.StabilityLimit(n) {
			acfg := cfg
			aa := topology.NewArray2D(n)
			acfg.Net = aa
			acfg.Router = routing.GreedyXY{A: aa}
			ars, err := sim.RunReplicas(context.Background(), acfg, o.replicas(4), o.Workers)
			if err != nil {
				return nil, err
			}
			arrayCell = f3(ars.MeanDelay)
		}
		t.AddRow(f3(lambda), f2(rho), f3(rs.MeanDelay),
			f3(bounds.TorusThm10LowerBound(n, lambda)),
			f3(bounds.TorusMD1ApproxT(n, lambda)), arrayCell)
	}
	t.AddNote("torus stability limit %.3f vs array %.3f; the torus cannot be layered, so Theorem 7 does not apply — the open problem of §6.",
		bounds.TorusStabilityLimit(n), bounds.StabilityLimit(n))
	return []Table{t}, nil
}

// NonUniform reproduces §5.2's distance-biased destination model: the
// geometric-stopping walk is Markovian, so the Theorem 5 upper bound still
// applies with the exact edge rates computed from the walk's distribution.
func NonUniform(o Options) ([]Table, error) {
	n := 8
	a := topology.NewArray2D(n)
	router := routing.GreedyXY{A: a}
	// Exact destination distribution: product of per-axis walk laws.
	rowDists := make([][]float64, n)
	for k := 0; k < n; k++ {
		rowDists[k] = routing.GeometricAxisDist(n, k)
	}
	dist := func(src, dst int) float64 {
		r1, c1 := a.Coords(src)
		r2, c2 := a.Coords(dst)
		return rowDists[r1][r2] * rowDists[c1][c2]
	}
	rates1 := bounds.ExactEdgeRates(a, router, 1, dist, nil)
	maxRate := 0.0
	for _, r := range rates1 {
		if r > maxRate {
			maxRate = r
		}
	}
	t := Table{
		ID:     "nonuniform",
		Title:  fmt.Sprintf("Geometric (distance-biased) destinations on the %d×%d array (§5.2)", n, n),
		Header: []string{"rho", "n̄(geo)", "T(sim)", "T(md1)", "T(upper)"},
	}
	meanLen := bounds.MeanRouteLen(a, router, dist, nil)
	rhos := []float64{0.5, 0.9}
	if o.Quick {
		rhos = []float64{0.5}
	}
	for _, rho := range rhos {
		lambda := rho / maxRate
		horizon := 3000 * minf(15, 1/(1-rho)) * o.horizonScale()
		cfg := sim.Config{
			Net: a, Router: router,
			Dest:     routing.GeometricArrayDest{A: a},
			NodeRate: lambda,
			Warmup:   horizon / 4, Horizon: horizon,
			Seed: o.seed(),
		}
		rs, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		rates := make([]float64, len(rates1))
		ones := make([]float64, len(rates1))
		for e := range rates {
			rates[e] = lambda * rates1[e]
			ones[e] = 1
		}
		upper, err := bounds.JacksonT(rates, ones, lambda*float64(n*n))
		if err != nil {
			return nil, err
		}
		md1, err := bounds.MD1SystemT(rates, ones, lambda*float64(n*n))
		if err != nil {
			return nil, err
		}
		t.AddRow(f2(rho), f3(meanLen), f3(rs.MeanDelay), f3(md1), f3(upper))
	}
	t.AddNote("destinations are biased toward nearby nodes; n̄ drops from %.3f (uniform) to %.3f, and the stable per-node rate rises to %.3f from %.3f.",
		bounds.MeanDist(n), meanLen, 1/maxRate, bounds.StabilityLimit(n))
	return []Table{t}, nil
}

// Slotted reproduces §5.2's slotted-time claim: batch arrivals at slot
// boundaries change the mean delay by at most the slot length τ.
func Slotted(o Options) ([]Table, error) {
	n := 6
	t := Table{
		ID:     "slotted",
		Title:  "Slotted-time model vs continuous time (§5.2)",
		Header: []string{"rho", "τ", "T(continuous)", "T(slotted)", "|Δ|", "≤ τ?"},
	}
	taus := []float64{0.5, 1, 2}
	if o.Quick {
		taus = []float64{1}
	}
	for _, tau := range taus {
		rho := 0.7
		cfg := arrayCfg(n, rho, o)
		cfg.Horizon *= 2
		cont, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		scfg := cfg
		scfg.SlotTau = tau
		slot, err := sim.RunReplicas(context.Background(), scfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		diff := math.Abs(slot.MeanDelay - cont.MeanDelay)
		ok := "yes"
		if diff > tau {
			ok = "no (noise)"
		}
		t.AddRow(f2(rho), f2(tau), f3(cont.MeanDelay), f3(slot.MeanDelay), f3(diff), ok)
	}
	return []Table{t}, nil
}

// KDArray reproduces §5.2's higher-dimensional extension on a 3-D array.
func KDArray(o Options) ([]Table, error) {
	k, n := 3, 5
	a := topology.NewArrayKD(n, n, n)
	t := Table{
		ID:     "kdarray",
		Title:  fmt.Sprintf("%d-dimensional array, side %d (§5.2)", k, n),
		Header: []string{"rho", "T(sim)", "Thm12 low", "T(md1)", "T(upper)"},
	}
	rhos := []float64{0.5, 0.9}
	if o.Quick {
		rhos = []float64{0.5}
	}
	for _, rho := range rhos {
		lambda := bounds.LambdaForLoad(n, rho)
		horizon := 2500 * minf(15, 1/(1-rho)) * o.horizonScale()
		cfg := sim.Config{
			Net: a, Router: routing.GreedyKD{A: a},
			Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
			NodeRate: lambda,
			Warmup:   horizon / 4, Horizon: horizon,
			Seed: o.seed(),
		}
		rs, err := sim.RunReplicas(context.Background(), cfg, o.replicas(4), o.Workers)
		if err != nil {
			return nil, err
		}
		t.AddRow(f2(rho), f3(rs.MeanDelay),
			f3(bounds.KDThm12LowerBound(k, n, lambda)),
			f3(bounds.KDMD1ApproxT(k, n, lambda)),
			f3(bounds.KDUpperBoundT(k, n, lambda)))
	}
	t.AddNote("per-dimension Theorem 6 rates are unchanged in higher dimensions; n̄ = k(n²-1)/(3n) = %.3f.", bounds.KDMeanDist(k, n))
	return []Table{t}, nil
}

// Lemma3 verifies the destination-walk construction: the Markov chain of
// Lemma 3 lands uniformly on the linear array, which is what makes greedy
// routing with uniform destinations Markovian (Corollary 4).
func Lemma3(o Options) ([]Table, error) {
	t := Table{
		ID:     "lemma3",
		Title:  "Lemma 3 Markov destination walk uniformity",
		Header: []string{"n", "start", "draws", "max |p̂ - 1/n|", "3σ bound"},
	}
	rng := xrand.New(o.seed())
	ns := []int{4, 16, 64}
	draws := 200000
	if o.Quick {
		ns = []int{8}
		draws = 20000
	}
	for _, n := range ns {
		for _, k := range []int{0, n / 2} {
			counts := make([]int, n)
			for i := 0; i < draws; i++ {
				counts[routing.MarkovLinearWalk(n, k, rng)]++
			}
			maxDev := 0.0
			for _, c := range counts {
				if d := math.Abs(float64(c)/float64(draws) - 1/float64(n)); d > maxDev {
					maxDev = d
				}
			}
			sigma := 3 * math.Sqrt(1/float64(n)*(1-1/float64(n))/float64(draws))
			t.AddRow(fmt.Sprint(n), fmt.Sprint(k), fmt.Sprint(draws), f4(maxDev), f4(sigma))
		}
	}
	t.AddNote("every deviation should sit near or below the 3σ binomial bound.")
	return []Table{t}, nil
}

// LittleCheck exercises the simulator's Little's-law self-consistency
// across models, a pure bookkeeping invariant.
func LittleCheck(o Options) ([]Table, error) {
	t := Table{
		ID:     "little",
		Title:  "Little's law self-check (N = Λ·T) across models",
		Header: []string{"model", "N(sim)", "Λ̂·T̂", "rel err"},
	}
	type variant struct {
		name string
		mut  func(*sim.Config)
	}
	variants := []variant{
		{"array FIFO det", func(c *sim.Config) {}},
		{"array FIFO exp", func(c *sim.Config) { c.Service = sim.Exponential }},
		{"array PS det", func(c *sim.Config) { c.Discipline = sim.PS }},
		{"array slotted", func(c *sim.Config) { c.SlotTau = 1 }},
	}
	if o.Quick {
		variants = variants[:2]
	}
	for _, v := range variants {
		cfg := arrayCfg(5, 0.7, o)
		cfg.Horizon *= 2
		v.mut(&cfg)
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		littleN := float64(res.Delivered) / res.Time * res.MeanDelay
		t.AddRow(v.name, f3(res.MeanN), f3(littleN), f4(res.LittleRelErr))
	}
	t.AddNote("small residuals come from boundary censoring (packets in flight at the horizon edges).")
	return []Table{t}, nil
}

package experiments

import (
	"fmt"

	"repro/internal/bounds"
)

// Figure1 regenerates Figure 1 (the Lemma 2 layering of the array): it
// renders the labeled 4×4 array exactly as the paper draws it and verifies
// the strict-increase property exhaustively for a range of sizes.
func Figure1(o Options) ([]Table, error) {
	t := Table{
		ID:     "fig1",
		Title:  "Layering the array (paper Figure 1, Lemma 2)",
		Header: []string{"n", "routes checked", "labels strictly increase"},
	}
	sizes := []int{2, 3, 4, 6, 8, 12}
	if o.Quick {
		sizes = []int{2, 4, 5}
	}
	for _, n := range sizes {
		err := bounds.VerifyLayering(n)
		ok := "yes"
		if err != nil {
			ok = err.Error()
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(n*n*n*n), ok)
	}
	t.AddNote("rendered 4×4 labeling (row edges labeled 1..n-1, column edges n..2n-2):\n%s", bounds.RenderLayering(4))
	return []Table{t}, nil
}

// Figure2 regenerates Figure 2 (saturated edges in even and odd arrays):
// the saturated-edge census, the maximum saturated crossings per greedy
// route, and the maximum expected remaining saturated distance s̄.
func Figure2(o Options) ([]Table, error) {
	t := Table{
		ID:     "fig2",
		Title:  "Saturated edges (paper Figure 2 and §4.6)",
		Header: []string{"n", "parity", "#saturated", "max/route", "s̄", "gap limit 2s̄"},
	}
	sizes := []int{4, 5, 6, 7, 10, 15, 20, 25}
	if o.Quick {
		sizes = []int{4, 5}
	}
	for _, n := range sizes {
		parity := "even"
		if n%2 == 1 {
			parity = "odd"
		}
		t.AddRow(fmt.Sprint(n), parity,
			fmt.Sprint(bounds.NumSaturatedEdges(n)),
			fmt.Sprint(bounds.MaxSaturatedCrossings(n)),
			f4(bounds.SBar(n)), f3(bounds.GapLimit(n)))
	}
	t.AddNote("paper: a route crosses ≤2 saturated edges for even n (s̄ = 3/2, gap 3) and ≤4 for odd n (s̄ < 3, gap < 6).")
	t.AddNote("rendered examples:\n%s\n%s", bounds.RenderSaturated(4), bounds.RenderSaturated(5))
	return []Table{t}, nil
}

// Package experiments regenerates every table and figure in the paper's
// evaluation, plus the in-text quantitative claims (bound orderings, gap
// limits, stability thresholds, extension models). Each experiment compares
// published values with freshly measured ones and renders a plain-text
// table; cmd/tables, the root benchmarks, and EXPERIMENTS.md are all driven
// from this package.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one rendered comparison table.
type Table struct {
	// ID is the experiment identifier (e.g. "table1").
	ID string
	// Title describes the table.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the cell text.
	Rows [][]string
	// Notes holds free-form annotations printed under the table.
	Notes []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if pad := widths[i] - len([]rune(cell)); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(t.Header) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// f2, f3, f4 format floats with fixed precision; inf-aware.
func f2(v float64) string { return ffmt(v, 2) }
func f3(v float64) string { return ffmt(v, 3) }
func f4(v float64) string { return ffmt(v, 4) }

func ffmt(v float64, prec int) string {
	switch {
	case v != v:
		return "nan"
	case v > 1e300:
		return "inf"
	case v < -1e300:
		return "-inf"
	default:
		return fmt.Sprintf("%.*f", prec, v)
	}
}

// Options tunes the experiment runs.
type Options struct {
	// Quick shrinks horizons, replica counts and parameter grids so the
	// whole suite runs in seconds (used by tests and benchmarks). Full runs
	// (Quick=false) target the paper's parameter grid.
	Quick bool
	// Seed is the base random seed (0 means 1).
	Seed uint64
	// Workers bounds simulation goroutines (0 means GOMAXPROCS).
	Workers int
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// horizonScale shortens runs in quick mode.
func (o Options) horizonScale() float64 {
	if o.Quick {
		return 0.05
	}
	return 1
}

func (o Options) replicas(full int) int {
	if o.Quick {
		return 2
	}
	return full
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	// ID is the short name used on the command line.
	ID string
	// Title is a one-line description.
	Title string
	// Run executes the experiment and returns its tables.
	Run func(Options) ([]Table, error)
}

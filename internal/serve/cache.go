package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Cache is the content-addressed result store: an in-memory LRU of result
// documents in front of an on-disk directory keyed by the sweep's content
// address. Results are immutable once written (the key fixes scenario,
// engine and code version, and the engines are bit-deterministic), so
// there is no invalidation — only eviction from the memory tier, behind
// which the disk copy still answers.
type Cache struct {
	dir        string
	maxEntries int

	mu    sync.Mutex
	byKey map[string]*list.Element // of cacheEntry
	order *list.List               // front = most recent

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key string
	doc []byte
}

// NewCache opens (creating if needed) an on-disk store rooted at dir with
// an in-memory LRU of maxEntries documents (minimum 1). An empty dir
// disables the disk tier — the cache is then memory-only, which is what
// tests and throwaway servers want.
func NewCache(dir string, maxEntries int) (*Cache, error) {
	if maxEntries < 1 {
		maxEntries = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache dir: %w", err)
		}
	}
	return &Cache{
		dir:        dir,
		maxEntries: maxEntries,
		byKey:      make(map[string]*list.Element),
		order:      list.New(),
	}, nil
}

// path shards keys into 256 subdirectories so no single directory grows
// unboundedly.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get returns the cached result document, consulting memory then disk (a
// disk hit is promoted into the LRU). The hit/miss counters feed /metrics.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		doc := el.Value.(cacheEntry).doc
		c.mu.Unlock()
		c.hits.Add(1)
		return doc, true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if doc, err := os.ReadFile(c.path(key)); err == nil {
			c.insert(key, doc)
			c.hits.Add(1)
			return doc, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores a result document under its key: written to disk durably —
// temp file fsync'd before the rename and the parent directory fsync'd
// after, so an acknowledged document survives power loss, not just
// process death (concurrent writers of the same key are harmless — both
// write identical bytes) — and inserted into the memory tier.
func (c *Cache) Put(key string, doc []byte) error {
	if c.dir != "" {
		dir := filepath.Dir(c.path(key))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("serve: cache put: %w", err)
		}
		if err := writeFileSync(c.path(key), doc); err != nil {
			return fmt.Errorf("serve: cache put: %w", err)
		}
	}
	c.insert(key, doc)
	return nil
}

func (c *Cache) insert(key string, doc []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(cacheEntry{key: key, doc: doc})
	for c.order.Len() > c.maxEntries {
		el := c.order.Back()
		delete(c.byKey, el.Value.(cacheEntry).key)
		c.order.Remove(el)
	}
}

// Hits and Misses report the lookup counters.
func (c *Cache) Hits() int64   { return c.hits.Load() }
func (c *Cache) Misses() int64 { return c.misses.Load() }

package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// The durable job journal. Every submitted sweep owns one directory under
// <root>/jobs/<id>/ holding:
//
//	job.json       the immutable job record: spec (canonical scenario
//	               JSON), cache key, engine, priority, submit time —
//	               written once via temp-file+rename with file and
//	               directory fsync, so an acknowledged submission
//	               survives power loss.
//	journal.jsonl  the append-only lifecycle log: queued/running
//	               transitions, one record per completed ladder point
//	               (carrying the point's result document verbatim), and
//	               a single terminal done/failed/canceled record. Each
//	               append is fsync'd before the caller proceeds.
//	ckpt.bin       the warm-start chain state: the per-replica engine
//	               snapshots (EVTSNAP1/SLOTSNP1 wire bytes) captured at
//	               the end of the last checkpointed point, replaced
//	               atomically per point.
//	lease          the worker claim file (lease.go).
//	cancel         a marker requesting cancellation; workers poll it
//	               between ladder points.
//	terminal       the exactly-once commit marker: created O_EXCL by
//	               whichever process finishes the job first, so a worker
//	               that lost its lease mid-run can never double-complete
//	               a job another worker already finished.
//
// Replay tolerates a torn final journal record (a crash mid-append): a
// trailing line without a newline, or one that does not parse, is
// ignored, and the next append truncates it away before writing — so
// replaying twice, or replaying then appending, always yields the same
// state.

// Journal record types.
const (
	recQueued   = "queued"   // job is claimable; Retry counts prior crashes
	recRunning  = "running"  // a worker claimed the job (Pid, Token)
	recPoint    = "point"    // ladder point Point completed with Doc
	recDone     = "done"     // terminal: result document in the cache
	recFailed   = "failed"   // terminal: Error, Permanent
	recCanceled = "canceled" // terminal: canceled by the client
)

// Record is one journal line.
type Record struct {
	T string `json:"t"`
	// At is the record's wall-clock time in Unix nanoseconds. On queued
	// records it anchors the retry backoff window.
	At int64 `json:"at,omitempty"`
	// Retry is the crash-requeue count on queued records.
	Retry int `json:"retry,omitempty"`
	// Pid and Token identify the claiming worker on running records.
	Pid   int    `json:"pid,omitempty"`
	Token string `json:"token,omitempty"`
	// Point and Doc carry one completed ladder point (recPoint).
	Point int             `json:"i,omitempty"`
	Doc   json.RawMessage `json:"doc,omitempty"`
	// Error and Permanent classify failures (recFailed).
	Error     string `json:"error,omitempty"`
	Permanent bool   `json:"permanent,omitempty"`
}

// JobRecord is the immutable half of a job, written once at submission.
type JobRecord struct {
	ID       string          `json:"id"`
	Key      string          `json:"key"`
	Engine   string          `json:"engine"`
	Priority int             `json:"priority,omitempty"`
	Scenario json.RawMessage `json:"scenario"`
	// Submitted is the submission wall-clock time in Unix nanoseconds;
	// with Priority it fixes the claim order across workers.
	Submitted int64 `json:"submitted"`
}

// JobState is a job's replayed state: the job record plus everything the
// journal proves happened.
type JobState struct {
	Rec    JobRecord
	Status string
	// Retry is the latest queued record's crash-requeue count.
	Retry int
	// Points holds the completed prefix of ladder-point documents,
	// verbatim journal bytes, indexed by point.
	Points []json.RawMessage
	Error  string
	// LastAt is the At of the latest lifecycle transition (not point)
	// record — the backoff anchor for requeued jobs.
	LastAt int64
	// Pid is the claiming worker of the latest running record.
	Pid int
}

// Terminal reports whether the replayed status is a terminal one.
func (st *JobState) Terminal() bool {
	return st.Status == StatusDone || st.Status == StatusFailed || st.Status == StatusCanceled
}

// ErrAlreadyTerminal is CommitTerminal's exactly-once refusal: another
// process already finished this job.
var ErrAlreadyTerminal = errors.New("serve: job already terminal")

// Journal is the on-disk job store shared by the front-end server and
// every worker process.
type Journal struct {
	root string
}

// OpenJournal opens (creating if needed) the journal rooted at dir.
func OpenJournal(dir string) (*Journal, error) {
	if dir == "" {
		return nil, errors.New("serve: journal needs a directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	return &Journal{root: dir}, nil
}

// Root returns the journal's root directory.
func (jl *Journal) Root() string { return jl.root }

func (jl *Journal) jobsDir() string         { return filepath.Join(jl.root, "jobs") }
func (jl *Journal) JobDir(id string) string { return filepath.Join(jl.jobsDir(), id) }

func (jl *Journal) jobPath(id string) string     { return filepath.Join(jl.JobDir(id), "job.json") }
func (jl *Journal) logPath(id string) string     { return filepath.Join(jl.JobDir(id), "journal.jsonl") }
func (jl *Journal) ckptPath(id string) string    { return filepath.Join(jl.JobDir(id), "ckpt.bin") }
func (jl *Journal) cancelPath(id string) string  { return filepath.Join(jl.JobDir(id), "cancel") }
func (jl *Journal) termPath(id string) string    { return filepath.Join(jl.JobDir(id), "terminal") }
func (jl *Journal) leaseDir(id string) string    { return jl.JobDir(id) }

// Create journals a new job: the immutable record, durably, then the
// initial queued lifecycle record. After Create returns, the job survives
// any crash.
func (jl *Journal) Create(rec JobRecord) error {
	dir := jl.JobDir(rec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: journal create: %w", err)
	}
	if err := syncDir(jl.jobsDir()); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal create: %w", err)
	}
	if err := writeFileSync(jl.jobPath(rec.ID), data); err != nil {
		return err
	}
	return jl.Append(rec.ID, Record{T: recQueued, At: rec.Submitted})
}

// Append adds one record to the job's journal and fsyncs it. A torn
// trailing record from an earlier crash is truncated away first, so the
// log parses cleanly afterwards.
func (jl *Journal) Append(id string, rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	f, err := os.OpenFile(jl.logPath(id), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	defer f.Close()
	end, err := repairTail(f)
	if err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if _, err := f.WriteAt(append(line, '\n'), end); err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	return nil
}

// repairTail returns the offset just past the last complete
// (newline-terminated) record, truncating any torn tail.
func repairTail(f *os.File) (int64, error) {
	data, err := readAll(f)
	if err != nil {
		return 0, err
	}
	end := int64(len(data))
	if end > 0 && data[end-1] != '\n' {
		if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
			end = int64(i + 1)
		} else {
			end = 0
		}
		if err := f.Truncate(end); err != nil {
			return 0, err
		}
	}
	return end, nil
}

func readAll(f *os.File) ([]byte, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data := make([]byte, fi.Size())
	if _, err := f.ReadAt(data, 0); err != nil && len(data) > 0 {
		return nil, err
	}
	return data, nil
}

// Replay reconstructs a job's state from its journal. A torn or
// unparseable trailing record is ignored (replaying twice yields the same
// state); point records are idempotent by index, so a worker that re-ran
// a point after a crash does not duplicate it.
func (jl *Journal) Replay(id string) (*JobState, error) {
	raw, err := os.ReadFile(jl.jobPath(id))
	if err != nil {
		return nil, fmt.Errorf("serve: journal replay %s: %w", id, err)
	}
	st := &JobState{Status: StatusQueued}
	if err := json.Unmarshal(raw, &st.Rec); err != nil {
		return nil, fmt.Errorf("serve: journal replay %s: job record: %w", id, err)
	}
	log, err := os.ReadFile(jl.logPath(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return st, nil
		}
		return nil, fmt.Errorf("serve: journal replay %s: %w", id, err)
	}
	for len(log) > 0 {
		nl := bytes.IndexByte(log, '\n')
		if nl < 0 {
			break // torn tail: ignore
		}
		line := log[:nl]
		log = log[nl+1:]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			break // corrupt record: everything after is untrusted
		}
		switch rec.T {
		case recQueued:
			st.Status = StatusQueued
			st.Retry = rec.Retry
			st.LastAt = rec.At
		case recRunning:
			st.Status = StatusRunning
			st.Pid = rec.Pid
			st.LastAt = rec.At
		case recPoint:
			switch {
			case rec.Point == len(st.Points):
				st.Points = append(st.Points, rec.Doc)
			case rec.Point < len(st.Points):
				st.Points[rec.Point] = rec.Doc
			}
			// A gap (rec.Point > len) cannot be produced by the single
			// lease-holding writer; drop it rather than fabricate holes.
		case recDone:
			st.Status = StatusDone
			st.LastAt = rec.At
		case recFailed:
			st.Status = StatusFailed
			st.Error = rec.Error
			st.LastAt = rec.At
		case recCanceled:
			st.Status = StatusCanceled
			st.Error = rec.Error
			st.LastAt = rec.At
		}
	}
	return st, nil
}

// List returns every journaled job id, ordered by (priority desc,
// submission time asc) — the queue order workers claim in.
func (jl *Journal) List() ([]string, error) {
	ents, err := os.ReadDir(jl.jobsDir())
	if err != nil {
		return nil, fmt.Errorf("serve: journal list: %w", err)
	}
	type meta struct {
		id   string
		prio int
		sub  int64
	}
	var jobs []meta
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(jl.jobPath(e.Name()))
		if err != nil {
			continue // half-created job dir: not yet submitted
		}
		var rec JobRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			continue
		}
		jobs = append(jobs, meta{id: e.Name(), prio: rec.Priority, sub: rec.Submitted})
	}
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].prio != jobs[j].prio {
			return jobs[i].prio > jobs[j].prio
		}
		if jobs[i].sub != jobs[j].sub {
			return jobs[i].sub < jobs[j].sub
		}
		return jobs[i].id < jobs[j].id
	})
	ids := make([]string, len(jobs))
	for i, m := range jobs {
		ids[i] = m.id
	}
	return ids, nil
}

// CommitTerminal appends the terminal record for a job, exactly once
// across all processes: the commit is gated on O_EXCL creation of the
// terminal marker, so of two workers racing to finish one job (a lease
// stolen after a late heartbeat), exactly one wins and the other gets
// ErrAlreadyTerminal and discards its result.
func (jl *Journal) CommitTerminal(id string, rec Record) error {
	f, err := os.OpenFile(jl.termPath(id), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return ErrAlreadyTerminal
		}
		return fmt.Errorf("serve: terminal commit: %w", err)
	}
	f.Close()
	if err := syncDir(jl.JobDir(id)); err != nil {
		return err
	}
	return jl.Append(id, rec)
}

// MarkCancel requests cancellation of a job: workers poll the marker
// between ladder points. Idempotent.
func (jl *Journal) MarkCancel(id string) error {
	f, err := os.OpenFile(jl.cancelPath(id), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("serve: cancel mark: %w", err)
	}
	f.Close()
	return syncDir(jl.JobDir(id))
}

// CancelRequested reports whether the job's cancel marker exists.
func (jl *Journal) CancelRequested(id string) bool {
	_, err := os.Stat(jl.cancelPath(id))
	return err == nil
}

// Checkpoint wire format: magic, the index of the last completed point,
// and the per-replica engine snapshot blobs, CRC-framed so a damaged file
// is rejected rather than resumed from.
const ckptMagic = "SWPCKPT1"

// WriteCheckpoint atomically replaces the job's warm-start chain state:
// the engine snapshots captured at the end of ladder point `point`.
func (jl *Journal) WriteCheckpoint(id string, point int, snaps [][]byte) error {
	var buf bytes.Buffer
	buf.WriteString(ckptMagic)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(point))
	buf.Write(n[:])
	binary.LittleEndian.PutUint32(n[:], uint32(len(snaps)))
	buf.Write(n[:])
	for _, s := range snaps {
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		buf.Write(n[:])
		buf.Write(s)
	}
	binary.LittleEndian.PutUint32(n[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(n[:])
	return writeFileSync(jl.ckptPath(id), buf.Bytes())
}

// ReadCheckpoint loads the job's chain state: the index of the last
// checkpointed point and its snapshots. Any damage (missing file, bad
// magic, bad CRC, truncation) is an error; callers fall back to
// re-running the chain from the start, which is correct because the
// engines are deterministic.
func (jl *Journal) ReadCheckpoint(id string) (point int, snaps [][]byte, err error) {
	data, err := os.ReadFile(jl.ckptPath(id))
	if err != nil {
		return 0, nil, err
	}
	if len(data) < len(ckptMagic)+12 || string(data[:len(ckptMagic)]) != ckptMagic {
		return 0, nil, errors.New("serve: checkpoint: bad header")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, nil, errors.New("serve: checkpoint: CRC mismatch")
	}
	p := body[len(ckptMagic):]
	point = int(binary.LittleEndian.Uint32(p))
	count := int(binary.LittleEndian.Uint32(p[4:]))
	p = p[8:]
	snaps = make([][]byte, 0, count)
	for range count {
		if len(p) < 4 {
			return 0, nil, errors.New("serve: checkpoint: truncated")
		}
		sz := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if len(p) < sz {
			return 0, nil, errors.New("serve: checkpoint: truncated")
		}
		snaps = append(snaps, p[:sz:sz])
		p = p[sz:]
	}
	return point, snaps, nil
}

// writeFileSync writes data to path durably: a temp file in the same
// directory, fsync'd before the rename, and the parent directory fsync'd
// after — so the rename itself survives power loss, not just process
// death.
func writeFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: durable write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: durable write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: durable write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: durable write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: durable write: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making renames and creates within it
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("serve: dir sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("serve: dir sync: %w", err)
	}
	return nil
}

package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// Job leases. A worker claims a job by atomically creating the job
// directory's `lease` file (os.Link from a private claim file — link
// fails if the lease exists, so exactly one claimant wins), then renews
// it by rewriting the heartbeat timestamp in place. A lease whose
// heartbeat is older than its TTL is stale: any worker may steal it by
// renaming it away (rename is the arbiter — of N concurrent stealers
// exactly one succeeds, the rest see ENOENT) and claiming fresh.
//
// The old holder discovers the theft on its next Renew or Release: its
// open file descriptor still points at the renamed-away inode, so an
// os.SameFile comparison against the path fails and the holder gets
// ErrLeaseLost. A holder that loses its lease must treat the job as no
// longer its own — results it computes afterwards are discarded at the
// terminal-commit gate (Journal.CommitTerminal), which is the
// exactly-once backstop even in the pathological window where both
// processes believe they hold the lease.

// ErrLeaseHeld means the lease is held by a live owner (fresh heartbeat).
var ErrLeaseHeld = errors.New("serve: lease held by a live owner")

// ErrLeaseLost means this holder's lease was stolen after its heartbeat
// went stale; the holder must stop treating the job as its own.
var ErrLeaseLost = errors.New("serve: lease lost to another owner")

const leaseName = "lease"

type leaseInfo struct {
	Pid     int    `json:"pid"`
	Token   string `json:"token"`
	Renewed int64  `json:"renewed"` // heartbeat, Unix nanoseconds
}

// Lease is a held claim on one job directory.
type Lease struct {
	path  string
	f     *os.File
	Token string
	TTL   time.Duration
}

// AcquireLease claims dir's lease: immediately if unclaimed, by stealing
// if the existing lease's heartbeat is older than ttl, and ErrLeaseHeld
// otherwise.
func AcquireLease(dir string, ttl time.Duration) (*Lease, error) {
	token := newToken()
	path := filepath.Join(dir, leaseName)
	for attempt := 0; attempt < 2; attempt++ {
		l, err := linkLease(path, token, ttl)
		if err == nil {
			return l, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, err
		}
		info, ok := readLease(path)
		if ok && time.Since(time.Unix(0, info.Renewed)) < ttl {
			return nil, ErrLeaseHeld
		}
		// Stale (or vanished mid-read): steal. Rename serializes the
		// stealers; losers see ENOENT and treat the lease as held — the
		// winner is about to re-create it.
		stale := path + ".stale-" + token
		if err := os.Rename(path, stale); err != nil {
			return nil, ErrLeaseHeld
		}
		os.Remove(stale)
	}
	return nil, ErrLeaseHeld
}

// linkLease writes a private claim file and links it to the lease path;
// the link fails with fs.ErrExist if someone else holds the lease.
func linkLease(path, token string, ttl time.Duration) (*Lease, error) {
	tmp := path + ".claim-" + token
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: lease claim: %w", err)
	}
	data, _ := json.Marshal(leaseInfo{Pid: os.Getpid(), Token: token, Renewed: time.Now().UnixNano()})
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("serve: lease claim: %w", err)
	}
	err = os.Link(tmp, path)
	os.Remove(tmp)
	if err != nil {
		f.Close()
		if errors.Is(err, fs.ErrExist) {
			return nil, fs.ErrExist
		}
		return nil, fmt.Errorf("serve: lease claim: %w", err)
	}
	return &Lease{path: path, f: f, Token: token, TTL: ttl}, nil
}

// Renew refreshes the heartbeat and verifies the lease is still this
// holder's: if the path no longer names the held inode (stolen after a
// stale heartbeat), Renew returns ErrLeaseLost.
func (l *Lease) Renew() error {
	data, _ := json.Marshal(leaseInfo{Pid: os.Getpid(), Token: l.Token, Renewed: time.Now().UnixNano()})
	// A single pwrite of the same length as the previous record (pid and
	// token are fixed, the nanosecond timestamp has a fixed digit count),
	// so concurrent readers never observe a torn record.
	if _, err := l.f.WriteAt(data, 0); err != nil {
		return fmt.Errorf("serve: lease renew: %w", err)
	}
	if err := l.f.Truncate(int64(len(data))); err != nil {
		return fmt.Errorf("serve: lease renew: %w", err)
	}
	ffi, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("serve: lease renew: %w", err)
	}
	pfi, err := os.Stat(l.path)
	if err != nil || !os.SameFile(ffi, pfi) {
		return ErrLeaseLost
	}
	return nil
}

// Release gives the lease up cleanly (removing the file so the next
// claimant needs no TTL wait). Releasing a lost lease is a no-op error.
func (l *Lease) Release() error {
	defer l.f.Close()
	ffi, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("serve: lease release: %w", err)
	}
	pfi, err := os.Stat(l.path)
	if err != nil || !os.SameFile(ffi, pfi) {
		return ErrLeaseLost
	}
	if err := os.Remove(l.path); err != nil {
		return fmt.Errorf("serve: lease release: %w", err)
	}
	return nil
}

// readLease parses a lease file; ok is false when it is missing or
// unreadable (a vanished or torn file reads as stale, which is safe: the
// terminal-commit gate catches the pathological double-claim).
func readLease(path string) (leaseInfo, bool) {
	var info leaseInfo
	data, err := os.ReadFile(path)
	if err != nil || json.Unmarshal(data, &info) != nil {
		return info, false
	}
	return info, true
}

// leaseFresh reports whether dir's lease exists with a heartbeat younger
// than ttl — i.e. a live worker owns the job.
func leaseFresh(dir string, ttl time.Duration) bool {
	info, ok := readLease(filepath.Join(dir, leaseName))
	return ok && time.Since(time.Unix(0, info.Renewed)) < ttl
}

func newToken() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to pid+time; tokens only need to distinguish
		// concurrent claimants.
		return fmt.Sprintf("p%d-%d", os.Getpid(), time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestJobTimeout: a sweep that outlives JobTimeout must finish failed —
// not canceled — with a timeout reason, bump the timed-out metric, and
// leave the server healthy for the next job.
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{JobTimeout: 50 * time.Millisecond})
	_, sr, _ := postSweep(t, ts, longSubmit(1))
	if sr.Cached {
		t.Fatal("long sweep answered from cache")
	}
	d := waitStatus(t, ts, sr.ID, StatusFailed)
	if !strings.Contains(d.Error, "timeout") {
		t.Fatalf("failure reason %q does not mention the timeout", d.Error)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "sweepd_jobs_timed_out_total 1") {
		t.Errorf("metrics missing the timed-out counter:\n%s", body)
	}

	// The worker survives: a quick sweep after the timeout still finishes.
	_, sr2, _ := postSweep(t, ts, smallSubmit())
	if !sr2.Cached {
		waitStatus(t, ts, sr2.ID, StatusDone)
	}
}

// TestNoTimeoutByDefault: the zero config never arms a timer — a normal
// sweep completes untouched.
func TestNoTimeoutByDefault(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, sr, _ := postSweep(t, ts, smallSubmit())
	if !sr.Cached {
		waitStatus(t, ts, sr.ID, StatusDone)
	}
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
)

// The leased worker. Any number of `sweepd --worker` processes (plus the
// front-end's own in-process workers) share one journal directory and one
// content-addressed cache; they coordinate through the filesystem alone:
//
//   - claim: the job directory's lease file, acquired atomically
//     (lease.go), heartbeaten every TTL/3 while the job runs;
//   - progress: one fsync'd journal record per completed ladder point,
//     plus the warm-start checkpoint, so a crashed job resumes from its
//     last completed point;
//   - recovery: a running job whose lease heartbeat is older than the TTL
//     is an orphan — any scanner steals the lease and requeues it with a
//     bumped retry count and exponential backoff, or fails it permanently
//     once MaxRetries crash-requeues are exhausted;
//   - exactly-once: the terminal journal record is gated on O_EXCL
//     creation of the terminal marker, so even if a GC-paused worker's
//     lease is stolen and both finish the job, one commit wins and the
//     loser discards its (bit-identical, by determinism) result.

// WorkerMetrics counts worker-side events, shared across the in-process
// worker pool so /metrics can report fleet totals.
type WorkerMetrics struct {
	Completed atomic.Int64 // jobs whose done record this worker committed
	Failed    atomic.Int64 // permanent failures committed (incl. retry exhaustion)
	Canceled  atomic.Int64 // cancel commits
	Requeued  atomic.Int64 // orphaned jobs requeued after a stale lease
	Drains    atomic.Int64 // jobs checkpointed and requeued by a graceful drain
	LeaseLost atomic.Int64 // leases this worker lost mid-run
}

// WorkerConfig configures one worker loop.
type WorkerConfig struct {
	Journal *Journal
	Cache   *Cache
	// Version is this binary's code version; jobs whose cache key was
	// computed under a different version are left for a matching worker.
	Version string
	// SimWorkers bounds each job's simulation goroutines (0 = GOMAXPROCS).
	SimWorkers int
	// LeaseTTL is the staleness horizon: a lease not heartbeaten for this
	// long may be stolen. Default 10s; heartbeats run every LeaseTTL/3.
	LeaseTTL time.Duration
	// Poll is the idle scan interval. Default 250ms.
	Poll time.Duration
	// MaxRetries bounds crash-requeues per job (default 3); the next crash
	// marks the job failed-permanent. Graceful drains do not count.
	MaxRetries int
	// Backoff is the base requeue delay, doubling per retry. Default 1s.
	Backoff time.Duration
	// JobTimeout, when positive, fails any single run exceeding it.
	JobTimeout time.Duration
	// Metrics receives event counts when non-nil.
	Metrics *WorkerMetrics
	// Logf logs worker lifecycle events (default log.Printf).
	Logf func(format string, args ...any)
	// OnRun/OnDone, when set, expose the running job's cancel func to the
	// embedding server so a DELETE can abort mid-point instead of waiting
	// for the next boundary.
	OnRun  func(id string, cancel context.CancelCauseFunc)
	OnDone func(id string)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.Poll <= 0 {
		c.Poll = 250 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Metrics == nil {
		c.Metrics = new(WorkerMetrics)
	}
	return c
}

// Worker drains a shared journal directory.
type Worker struct {
	cfg WorkerConfig
}

// NewWorker builds a worker over a journal and cache.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg.withDefaults()}
}

// Run scans for claimable jobs until ctx is done, then drains: if a job
// is mid-ladder, its current point is finished and checkpointed, the job
// is requeued (retry count unchanged — a drain is not a crash), the lease
// released, and Run returns nil.
func (w *Worker) Run(ctx context.Context) error {
	for {
		ran, err := w.scanOnce(ctx)
		if ctx.Err() != nil {
			return nil
		}
		if err != nil {
			w.cfg.Logf("sweepd: worker scan: %v", err)
		}
		if !ran {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(w.cfg.Poll):
			}
		}
	}
}

// scanOnce walks the queue order once and claims at most one job,
// reporting whether it did any work (ran a job, requeued an orphan, or
// committed a cancel).
func (w *Worker) scanOnce(ctx context.Context) (bool, error) {
	jl := w.cfg.Journal
	ids, err := jl.List()
	if err != nil {
		return false, err
	}
	for _, id := range ids {
		if ctx.Err() != nil {
			return false, nil
		}
		st, err := jl.Replay(id)
		if err != nil || st.Terminal() {
			continue
		}
		now := time.Now()
		switch st.Status {
		case StatusQueued:
			if st.Retry > 0 && now.Before(w.eligibleAt(st)) {
				continue
			}
		case StatusRunning:
			if leaseFresh(jl.leaseDir(id), w.cfg.LeaseTTL) {
				continue
			}
			// Stale heartbeat: orphan candidate.
		default:
			continue
		}
		lease, err := AcquireLease(jl.leaseDir(id), w.cfg.LeaseTTL)
		if err != nil {
			continue // lost the claim race, or the owner is alive after all
		}
		// Re-replay under the lease: the state may have advanced between
		// the lock-free peek and the claim.
		st, err = jl.Replay(id)
		if err != nil || st.Terminal() {
			lease.Release()
			continue
		}
		if jl.CancelRequested(id) {
			if cerr := jl.CommitTerminal(id, Record{T: recCanceled, At: now.UnixNano(), Error: ErrCanceled.Error()}); cerr == nil {
				w.count(&w.cfg.Metrics.Canceled)
				w.cfg.Logf("sweepd: job %s canceled before start", id)
			}
			lease.Release()
			return true, nil
		}
		if st.Status == StatusRunning {
			w.requeueOrphan(id, st)
			lease.Release()
			return true, nil
		}
		if st.Retry > 0 && now.Before(w.eligibleAt(st)) {
			lease.Release()
			continue
		}
		if !w.versionMatch(st) {
			lease.Release()
			continue // another build's job; leave it for a matching worker
		}
		w.runJob(ctx, id, st, lease)
		return true, nil
	}
	return false, nil
}

// eligibleAt is the earliest claim time of a requeued job: its requeue
// time plus Backoff·2^(retry−1).
func (w *Worker) eligibleAt(st *JobState) time.Time {
	shift := st.Retry - 1
	if shift > 16 {
		shift = 16
	}
	return time.Unix(0, st.LastAt).Add(w.cfg.Backoff << shift)
}

// versionMatch reports whether this binary reproduces the job's cache
// key — i.e. it was submitted against the same code version.
func (w *Worker) versionMatch(st *JobState) bool {
	sc, err := workload.ParseScenario(st.Rec.Scenario)
	if err != nil {
		return true // let runJob surface the parse error as a permanent failure
	}
	key, err := Key(sc, st.Rec.Engine, w.cfg.Version)
	return err == nil && key == st.Rec.Key
}

// requeueOrphan handles a running job whose lease went stale: requeue
// with a bumped retry count, or fail permanently past MaxRetries.
func (w *Worker) requeueOrphan(id string, st *JobState) {
	now := time.Now().UnixNano()
	retry := st.Retry + 1
	if retry > w.cfg.MaxRetries {
		msg := fmt.Sprintf("crashed %d times (worker pid %d last); retries exhausted", retry, st.Pid)
		if cerr := w.cfg.Journal.CommitTerminal(id, Record{T: recFailed, At: now, Error: msg, Permanent: true}); cerr == nil {
			w.count(&w.cfg.Metrics.Failed)
			w.cfg.Logf("sweepd: job %s failed permanently: %s", id, msg)
		}
		return
	}
	if err := w.cfg.Journal.Append(id, Record{T: recQueued, At: now, Retry: retry}); err != nil {
		w.cfg.Logf("sweepd: requeue %s: %v", id, err)
		return
	}
	w.count(&w.cfg.Metrics.Requeued)
	w.cfg.Logf("sweepd: job %s orphaned (stale lease, worker pid %d); requeued retry=%d", id, st.Pid, retry)
}

// runJob executes one claimed job to a terminal state, a drain requeue,
// or a lost lease.
func (w *Worker) runJob(parent context.Context, id string, st *JobState, lease *Lease) {
	jl := w.cfg.Journal
	// The job context is deliberately not parented on the scan context: a
	// drain must let the current point finish, not abort it mid-replica.
	jobCtx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	if w.cfg.OnRun != nil {
		w.cfg.OnRun(id, cancel)
		defer w.cfg.OnDone(id)
	}
	if w.cfg.JobTimeout > 0 {
		t := time.AfterFunc(w.cfg.JobTimeout, func() { cancel(ErrJobTimeout) })
		defer t.Stop()
	}

	// Heartbeat until the job settles; a failed renewal means the lease
	// was stolen and this run's results must be discarded.
	hbStop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		tick := time.NewTicker(w.cfg.LeaseTTL / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				if err := lease.Renew(); err != nil {
					w.count(&w.cfg.Metrics.LeaseLost)
					cancel(ErrLeaseLost)
					return
				}
			}
		}
	}()
	stopHB := func() { close(hbStop); hb.Wait() }

	if err := jl.Append(id, Record{T: recRunning, At: time.Now().UnixNano(), Pid: os.Getpid(), Token: lease.Token}); err != nil {
		w.cfg.Logf("sweepd: job %s: %v", id, err)
		stopHB()
		lease.Release()
		return
	}

	rs := resumeState{points: st.Points}
	if pt, snaps, err := jl.ReadCheckpoint(id); err == nil {
		rs.ckptPoint, rs.snaps, rs.haveCkpt = pt, snaps, true
	}

	hooks := execHooks{
		point: func(i int, doc json.RawMessage, snaps [][]byte, rerun bool) error {
			if cause := context.Cause(jobCtx); cause != nil {
				return cause // never append after a lost lease
			}
			if !rerun {
				if err := jl.Append(id, Record{T: recPoint, Point: i, Doc: doc}); err != nil {
					return err
				}
			}
			if len(snaps) > 0 {
				if err := jl.WriteCheckpoint(id, i, snaps); err != nil {
					return err
				}
			}
			return nil
		},
		interrupted: func() error {
			if cause := context.Cause(jobCtx); cause != nil {
				return cause
			}
			if parent.Err() != nil {
				return errDrained
			}
			if jl.CancelRequested(id) {
				return errCancelRequested
			}
			return nil
		},
	}

	doc, err := executeSweep(jobCtx, st.Rec, w.cfg.Version, w.cfg.SimWorkers, rs, hooks)
	stopHB()
	now := time.Now().UnixNano()
	switch {
	case err == nil:
		if perr := w.cfg.Cache.Put(st.Rec.Key, doc); perr != nil {
			w.cfg.Logf("sweepd: job %s: cache put: %v", id, perr)
		}
		if cerr := jl.CommitTerminal(id, Record{T: recDone, At: now}); cerr == nil {
			w.count(&w.cfg.Metrics.Completed)
			w.cfg.Logf("sweepd: job %s done", id)
		} else if !errors.Is(cerr, ErrAlreadyTerminal) {
			w.cfg.Logf("sweepd: job %s: %v", id, cerr)
		}
	case errors.Is(err, errDrained):
		// Graceful drain: the finished prefix is journaled and
		// checkpointed; requeue without charging a retry.
		if rerr := jl.Append(id, Record{T: recQueued, At: now, Retry: st.Retry}); rerr == nil {
			w.count(&w.cfg.Metrics.Drains)
			w.cfg.Logf("sweepd: job %s drained; requeued", id)
		}
	case errors.Is(err, errCancelRequested), errors.Is(err, ErrCanceled):
		if cerr := jl.CommitTerminal(id, Record{T: recCanceled, At: now, Error: ErrCanceled.Error()}); cerr == nil {
			w.count(&w.cfg.Metrics.Canceled)
			w.cfg.Logf("sweepd: job %s canceled", id)
		}
	case errors.Is(err, ErrLeaseLost):
		// The job belongs to whoever stole the lease; discard silently.
		w.cfg.Logf("sweepd: job %s: lease lost; abandoning run", id)
	default:
		// Deterministic failure (validation, engine error, timeout):
		// retrying cannot help, so fail permanently.
		if cerr := jl.CommitTerminal(id, Record{T: recFailed, At: now, Error: err.Error(), Permanent: true}); cerr == nil {
			w.count(&w.cfg.Metrics.Failed)
			w.cfg.Logf("sweepd: job %s failed: %v", id, err)
		}
	}
	lease.Release()
}

func (w *Worker) count(c *atomic.Int64) { c.Add(1) }

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/workload"
)

// Durable-mode HTTP handlers. With Config.JournalDir set, the on-disk
// journal is the single source of truth: submissions are journaled before
// the 202, status is replayed from the journal, SSE tails it, and
// cancellation is a durable marker — so the front end can be restarted
// (or run alongside other front ends and `sweepd --worker` processes over
// the same directory) without losing or duplicating anything.

// sseRetryMillis is the reconnect delay hint sent on every event stream.
const sseRetryMillis = 500

// ssePollInterval is how often the durable SSE tail re-replays the
// journal looking for new points.
const ssePollInterval = 100 * time.Millisecond

// lastEventID parses the Last-Event-ID header as the count of events the
// client already has (event ids are the 1-based event index).
func lastEventID(r *http.Request) int {
	h := strings.TrimSpace(r.Header.Get("Last-Event-ID"))
	if h == "" {
		return 0
	}
	n, err := strconv.Atoi(h)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// seedNextID continues the job-N sequence past every journaled job, so a
// restarted front end never reuses an id.
func (s *Server) seedNextID() {
	ids, err := s.journal.List()
	if err != nil {
		return
	}
	var maxN int64
	for _, id := range ids {
		if n, err := strconv.ParseInt(strings.TrimPrefix(id, "job-"), 10, 64); err == nil && n > maxN {
			maxN = n
		}
	}
	s.nextID.Store(maxN)
}

// durableGauges scans the journal for the live-state gauges: queued and
// running job counts and the number of fresh leases.
func (s *Server) durableGauges() (queued int, running int, leases int) {
	ids, err := s.journal.List()
	if err != nil {
		return 0, 0, 0
	}
	ttl := s.cfg.LeaseTTL
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	for _, id := range ids {
		st, err := s.journal.Replay(id)
		if err != nil || st.Terminal() {
			continue
		}
		switch st.Status {
		case StatusQueued:
			queued++
		case StatusRunning:
			running++
		}
		if leaseFresh(s.journal.leaseDir(id), ttl) {
			leases++
		}
	}
	return queued, running, leases
}

// submitDurable journals a new job and acknowledges it. After the 202 the
// job survives any crash of this process.
func (s *Server) submitDurable(w http.ResponseWriter, sc workload.Scenario, engine, key string, priority int) {
	queued, _, _ := s.durableGauges()
	if queued >= s.cfg.QueueDepth {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, ErrQueueFull.Error())
		return
	}
	cj, err := sc.CanonicalJSON()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	id := fmt.Sprintf("job-%d", s.nextID.Add(1))
	rec := JobRecord{
		ID:        id,
		Key:       key,
		Engine:    engine,
		Priority:  priority,
		Scenario:  cj,
		Submitted: time.Now().UnixNano(),
	}
	if err := s.journal.Create(rec); err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:     id,
		Key:    key,
		Status: StatusQueued,
		Cached: false,
	})
}

// durableDoc renders a replayed job state in the jobDoc shape.
func (s *Server) durableDoc(st *JobState) jobDoc {
	name := ""
	if sc, err := workload.ParseScenario(st.Rec.Scenario); err == nil {
		name = sc.Name
	}
	d := jobDoc{
		ID:        st.Rec.ID,
		Status:    st.Status,
		Engine:    st.Rec.Engine,
		Key:       st.Rec.Key,
		Name:      name,
		Priority:  st.Rec.Priority,
		Retry:     st.Retry,
		Submitted: time.Unix(0, st.Rec.Submitted).UTC().Format(time.RFC3339Nano),
		Points:    len(st.Points),
		Error:     st.Error,
	}
	if st.Status == StatusDone {
		if doc, ok := s.cache.Get(st.Rec.Key); ok {
			d.Result = doc
		}
	}
	return d
}

func (s *Server) replayFor(w http.ResponseWriter, r *http.Request) (*JobState, bool) {
	st, err := s.journal.Replay(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "no such sweep")
		return nil, false
	}
	return st, true
}

func (s *Server) getDurable(w http.ResponseWriter, r *http.Request) {
	st, ok := s.replayFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.durableDoc(st))
}

// registerCancel and unregisterCancel expose in-process workers' running
// jobs to cancelDurable.
func (s *Server) registerCancel(id string, cancel context.CancelCauseFunc) {
	s.mu.Lock()
	s.cancels[id] = cancel
	s.mu.Unlock()
}

func (s *Server) unregisterCancel(id string) {
	s.mu.Lock()
	delete(s.cancels, id)
	s.mu.Unlock()
}

// cancelDurable requests cancellation: the durable marker first (workers
// poll it between points, and it survives restarts, so even a queued job
// no worker has touched yet dies on its next claim), then the fast paths —
// an in-process running job is aborted through its context, and a queued
// job is claimed and committed canceled right here when the lease is free.
func (s *Server) cancelDurable(w http.ResponseWriter, r *http.Request) {
	st, ok := s.replayFor(w, r)
	if !ok {
		return
	}
	id := st.Rec.ID
	if !st.Terminal() {
		if err := s.journal.MarkCancel(id); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.mu.Lock()
		cancel := s.cancels[id]
		s.mu.Unlock()
		if cancel != nil {
			cancel(ErrCanceled)
		}
		if st.Status == StatusQueued {
			ttl := s.cfg.LeaseTTL
			if ttl <= 0 {
				ttl = 10 * time.Second
			}
			if lease, err := AcquireLease(s.journal.leaseDir(id), ttl); err == nil {
				if st2, err := s.journal.Replay(id); err == nil && !st2.Terminal() && st2.Status == StatusQueued {
					s.journal.CommitTerminal(id, Record{T: recCanceled, At: time.Now().UnixNano(), Error: ErrCanceled.Error()})
				}
				lease.Release()
			}
		}
		st, _ = s.journal.Replay(id)
	}
	writeJSON(w, http.StatusOK, s.durableDoc(st))
}

// eventsDurable tails the journal as an SSE stream: journaled points are
// replayed from the client's Last-Event-ID, new points are polled in, and
// the terminal record closes the stream. Event ids are 1-based point
// indexes, with the terminal event at len(points)+1 — stable across
// reconnects and server restarts because they are positions in the
// journal, not in any connection.
func (s *Server) eventsDurable(w http.ResponseWriter, r *http.Request) {
	st, ok := s.replayFor(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "retry: %d\n\n", sseRetryMillis)
	fl.Flush()
	ctx := r.Context()
	sent := lastEventID(r) // number of events the client already has
	id := st.Rec.ID
	for {
		for i := sent; i < len(st.Points); i++ {
			if st.Points[i] == nil {
				break
			}
			fmt.Fprintf(w, "id: %d\nevent: point\ndata: %s\n\n", i+1, st.Points[i])
			sent = i + 1
		}
		fl.Flush()
		if st.Terminal() && sent >= len(st.Points) {
			termID := len(st.Points) + 1
			if sent < termID {
				typ, data := terminalEvent(st)
				fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", termID, typ, data)
				fl.Flush()
			}
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(ssePollInterval):
		}
		next, err := s.journal.Replay(id)
		if err != nil {
			return
		}
		st = next
	}
}

// terminalEvent renders the stream's final frame, mirroring the
// in-memory mode's terminal events.
func terminalEvent(st *JobState) (typ string, data []byte) {
	if st.Status == StatusDone {
		data, _ = json.Marshal(struct {
			Status string `json:"status"`
			Key    string `json:"key"`
			Points int    `json:"points"`
		}{StatusDone, st.Rec.Key, len(st.Points)})
		return "done", data
	}
	data, _ = json.Marshal(struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}{st.Status, st.Error})
	return "error", data
}

package serve

import (
	"testing"

	"repro/internal/workload"
)

// The determinism battery for cache keys. Two halves, matching the two
// failure modes of a content-addressed cache: a key that varies on
// semantically inert presentation (costs hits), and a key that fails to
// vary on a semantic knob (serves wrong results — the dangerous half).

const testVersion = "test-v1"

func baseScenario() workload.Scenario {
	return workload.Scenario{
		Name:     "battery",
		Topology: workload.TopologySpec{Kind: "array", N: 8},
		Pattern:  workload.PatternSpec{Kind: "uniform"},
		Loads:    []float64{0.5, 0.7},
		Horizon:  2000,
		Warmup:   500,
		Replicas: 3,
		Seed:     11,
	}
}

func mustKey(t *testing.T, sc workload.Scenario, engine string) string {
	t.Helper()
	k, err := Key(sc, engine, testVersion)
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	return k
}

// parse round-trips a scenario document through JSON so field order and
// whitespace exercise the decoder exactly as HTTP submissions do.
func parse(t *testing.T, doc string) workload.Scenario {
	t.Helper()
	sc, err := workload.ParseScenario([]byte(doc))
	if err != nil {
		t.Fatalf("ParseScenario(%s): %v", doc, err)
	}
	return sc
}

func TestKeyInvariantToPresentation(t *testing.T) {
	// The same campaign spelled four ways: canonical field order, shuffled
	// field order, extra whitespace, and defaults spelled out explicitly.
	docs := map[string]string{
		"ordered":  `{"name":"p","topology":{"kind":"array","n":6},"pattern":{"kind":"uniform"},"loads":[0.5],"horizon":2000,"seed":7}`,
		"shuffled": `{"seed":7,"loads":[0.5],"horizon":2000,"pattern":{"kind":"uniform"},"topology":{"n":6,"kind":"array"},"name":"p"}`,
		"spaced": `{
			"name": "p",
			"topology": { "kind": "array", "n": 6 },
			"pattern": { "kind": "uniform" },
			"loads": [ 0.5 ],
			"horizon": 2000,
			"seed": 7
		}`,
		// warmup=horizon/4, replicas=4, poisson arrivals and the uniform
		// pattern are all defaults; spelling them changes nothing.
		"defaults": `{"name":"p","topology":{"kind":"array","n":6},"pattern":{"kind":"uniform"},
			"arrivals":{"kind":"poisson"},"loads":[0.5],"horizon":2000,"warmup":500,"replicas":4,"seed":7}`,
	}
	want := ""
	for label, doc := range docs {
		k := mustKey(t, parse(t, doc), EngineEvent)
		if want == "" {
			want = k
			continue
		}
		if k != want {
			t.Errorf("%s: key %s differs from ordered form %s", label, k, want)
		}
	}
}

func TestKeyInvariantToInertKnobs(t *testing.T) {
	base := mustKey(t, baseScenario(), EngineSlotted)
	mutate := map[string]func(*workload.Scenario){
		// Shards only changes wall-clock: the sharded slotted engine is
		// bit-identical at every tile count.
		"shards": func(s *workload.Scenario) { s.Shards = 4 },
		// Lookahead batches barriers but keeps results bit-identical.
		"lookahead": func(s *workload.Scenario) { s.Lookahead = 8 },
		// Description documents a scenario but does not define it.
		"description": func(s *workload.Scenario) { s.Description = "notes" },
		// The adaptive bounds are inert while targetCI is zero.
		"adaptive bounds without targetCI": func(s *workload.Scenario) { s.MinReplicas, s.MaxReplicas = 4, 64 },
		// The re-warm budget is inert without warm starts.
		"rewarmSlots without warmStart": func(s *workload.Scenario) { s.RewarmSlots = 250 },
		// Hotspot parameters are inert on a uniform pattern.
		"foreign pattern params": func(s *workload.Scenario) { s.Pattern.K = 3; s.Pattern.Weight = 0.5 },
		// Burst parameters are inert on poisson arrivals.
		"foreign arrival params": func(s *workload.Scenario) { s.Arrivals.BurstFactor = 8; s.Arrivals.MeanOn = 5 },
	}
	for label, mut := range mutate {
		sc := baseScenario()
		mut(&sc)
		if k := mustKey(t, sc, EngineSlotted); k != base {
			t.Errorf("%s: inert knob changed the key", label)
		}
	}
}

func TestKeyChangesOnSemanticKnobs(t *testing.T) {
	base := mustKey(t, baseScenario(), EngineSlotted)
	keys := map[string]string{"base": base}
	mutate := map[string]func(*workload.Scenario){
		"seed":     func(s *workload.Scenario) { s.Seed = 12 },
		"horizon":  func(s *workload.Scenario) { s.Horizon = 4000 },
		"warmup":   func(s *workload.Scenario) { s.Warmup = 600 },
		"replicas": func(s *workload.Scenario) { s.Replicas = 5 },
		"loads":    func(s *workload.Scenario) { s.Loads = []float64{0.5, 0.8} },
		"topology": func(s *workload.Scenario) { s.Topology.N = 16 },
		"pattern":  func(s *workload.Scenario) { s.Pattern = workload.PatternSpec{Kind: "hotspot"} },
		"router":   func(s *workload.Scenario) { s.Router = "greedy-yx" },
		// Dense flips the slotted engine's variate sequence — same model,
		// different draws, different floats.
		"dense": func(s *workload.Scenario) { s.Dense = true },
		// Adaptive stopping changes the estimator of record.
		"targetCI": func(s *workload.Scenario) { s.TargetCI = 0.05 },
		"controlVariates": func(s *workload.Scenario) {
			s.ControlVariates = true
		},
		"md1Control": func(s *workload.Scenario) {
			s.ControlVariates, s.MD1Control = true, true
		},
		"warmStart":   func(s *workload.Scenario) { s.WarmStart = true },
		"rewarmSlots": func(s *workload.Scenario) { s.WarmStart = true; s.RewarmSlots = 100 },
		"name":        func(s *workload.Scenario) { s.Name = "other" },
	}
	for label, mut := range mutate {
		sc := baseScenario()
		mut(&sc)
		if err := sc.Validate(); err != nil {
			t.Fatalf("%s: mutated scenario invalid: %v", label, err)
		}
		k := mustKey(t, sc, EngineSlotted)
		for prev, pk := range keys {
			if k == pk {
				t.Errorf("%s: semantic knob collided with %s", label, prev)
			}
		}
		keys[label] = k
	}
}

func TestKeyChangesOnEngineAndVersion(t *testing.T) {
	sc := baseScenario()
	event := mustKey(t, sc, EngineEvent)
	slotted := mustKey(t, sc, EngineSlotted)
	if event == slotted {
		t.Error("engine does not affect the key")
	}
	v2, err := Key(sc, EngineEvent, "test-v2")
	if err != nil {
		t.Fatal(err)
	}
	if v2 == event {
		t.Error("code version does not affect the key")
	}
}

func TestKeyRejectsUnknownEngine(t *testing.T) {
	if _, err := Key(baseScenario(), "quantum", testVersion); err == nil {
		t.Error("unknown engine accepted")
	}
}

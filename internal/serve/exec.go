package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/stepsim"
	"repro/internal/workload"
)

// The sweep executor: runs a job's ladder one point at a time so progress
// can be checkpointed between points. Correctness of crash recovery rests
// on two properties the engines already guarantee:
//
//  1. every ladder point's ReplicaSet is a pure function of (scenario,
//     engine, code version) — replica streams derive from the point seed
//     alone and adaptive stopping is evaluated on complete replica
//     prefixes — so re-running a point in a fresh process reproduces it
//     bit-for-bit;
//  2. warm-start chains are Markov in the captured snapshots: point i
//     depends on earlier points only through point i−1's CRC-checked
//     EVTSNAP1/SLOTSNP1 snapshots, so persisting (results, snapshots) at
//     each point boundary makes the whole chain resumable.
//
// A job killed at any moment and resumed therefore yields a final result
// document byte-identical to an uninterrupted run's: completed points are
// replayed verbatim from the journal, re-run points reproduce their
// journaled bytes, and fresh points see exactly the state they would have
// seen. Faults-degraded scenarios reject warm-start at validation, so
// they always take the independent-points path, where whole-point restart
// is trivially exact.

// errDrained is the executor's interruption sentinel for a graceful
// worker drain: the current point was finished and checkpointed, the rest
// of the ladder was not started, and the job should be requeued intact.
var errDrained = errors.New("serve: worker draining")

// errCancelRequested is the interruption sentinel for a client cancel
// observed at a point boundary (the cancel marker); the job finishes
// canceled.
var errCancelRequested = errors.New("serve: cancel requested")

// resumeState is what a resumed execution starts from: the journaled
// completed-point documents and, for warm-start jobs, the chain
// snapshots of the last checkpointed point.
type resumeState struct {
	points    []json.RawMessage // completed prefix, verbatim journal bytes
	ckptPoint int               // index the snapshots were captured after
	snaps     [][]byte          // per-replica snapshot wire blobs
	haveCkpt  bool
}

// execHooks are the executor's side-effect points.
type execHooks struct {
	// point runs after ladder point i completes, with the point's
	// document and (for warm-start jobs) the end-of-point snapshot
	// blobs. rerun marks a point that was already journaled and was
	// re-executed only to rebuild chain state — its document is
	// bit-identical to the journaled one. A non-nil error aborts the
	// job.
	point func(i int, doc json.RawMessage, snaps [][]byte, rerun bool) error
	// interrupted is polled between points; returning errDrained or
	// errCancelRequested stops the ladder with that sentinel.
	interrupted func() error
}

// resultAssembly marshals to exactly the same bytes as ResultDoc — same
// fields, same order — but carries the points as raw messages so a
// resumed job embeds its journaled point documents verbatim.
type resultAssembly struct {
	Name    string            `json:"name"`
	Engine  string            `json:"engine"`
	Version string            `json:"version"`
	Key     string            `json:"key"`
	Points  []json.RawMessage `json:"points"`
}

// executeSweep runs (or resumes) one job and returns the final result
// document. The error is either a sentinel (errDrained,
// errCancelRequested), the job ctx's cancellation cause, or the first
// engine/validation error (deterministic, hence permanent).
func executeSweep(ctx context.Context, rec JobRecord, version string, simWorkers int, st resumeState, h execHooks) ([]byte, error) {
	sc, err := workload.ParseScenario(rec.Scenario)
	if err != nil {
		return nil, err
	}
	b, err := sc.Bind()
	if err != nil {
		return nil, err
	}
	n := len(b.Points)
	points := make([]json.RawMessage, n)
	copied := copy(points, st.points)

	// Pick the start point and decode warm-start chain state. Without
	// warm-start, points are independent: resume right after the
	// journaled prefix. With it, resume from the last checkpointed
	// snapshots, re-running any journaled points past them (crash landed
	// between the point append and the checkpoint write); if the chain
	// state is missing or damaged, restart the whole ladder — the
	// deterministic engines reproduce the journaled prefix exactly.
	start := copied
	var (
		prevEvt  []*sim.Snapshot
		prevSlot []*stepsim.Snapshot
	)
	warm := sc.WarmStart
	if warm && copied > 0 {
		start = 0
		if st.haveCkpt && st.ckptPoint < copied {
			ok := true
			switch rec.Engine {
			case EngineSlotted:
				prevSlot, ok = decodeSlotSnaps(st.snaps)
			default:
				prevEvt, ok = decodeEvtSnaps(st.snaps)
			}
			if ok {
				start = st.ckptPoint + 1
			} else {
				prevEvt, prevSlot = nil, nil
			}
		}
	}

	// runPoint executes ladder point i on the job's engine, threading the
	// warm-start chain through the enclosing prev* variables, and returns
	// the point document plus the encoded end-of-point snapshots.
	var runPoint func(i int) (PointDoc, [][]byte, error)
	switch rec.Engine {
	case EngineSlotted:
		cfgs, cfgErr := b.SlottedConfigs()
		if cfgErr != nil {
			return nil, cfgErr
		}
		opts := b.SlottedSweepOpts(simWorkers)
		runPoint = func(i int) (PointDoc, [][]byte, error) {
			rs, snaps, err := stepsim.RunCellAdaptive(ctx, cfgs[i], opts, prevSlot, warm)
			if err != nil {
				return PointDoc{}, nil, err
			}
			var blobs [][]byte
			if warm {
				prevSlot = snaps
				blobs, err = encodeSnaps(len(snaps), func(j int) ([]byte, error) {
					if snaps[j] == nil {
						return nil, errors.New("nil snapshot")
					}
					return snaps[j].MarshalBinary()
				})
				if err != nil {
					return PointDoc{}, nil, fmt.Errorf("serve: encoding checkpoint: %w", err)
				}
			}
			return pointDoc(i, b, rs.MeanDelay, rs.DelayCI, rs.MeanN, rs.ReplicasUsed), blobs, nil
		}
	default:
		opts := b.SweepOpts(simWorkers)
		runPoint = func(i int) (PointDoc, [][]byte, error) {
			rs, snaps, err := sim.RunCellAdaptive(ctx, b.Configs[i], opts, prevEvt, warm)
			if err != nil {
				return PointDoc{}, nil, err
			}
			var blobs [][]byte
			if warm {
				prevEvt = snaps
				blobs, err = encodeSnaps(len(snaps), func(j int) ([]byte, error) {
					if snaps[j] == nil {
						return nil, errors.New("nil snapshot")
					}
					return snaps[j].MarshalBinary()
				})
				if err != nil {
					return PointDoc{}, nil, fmt.Errorf("serve: encoding checkpoint: %w", err)
				}
			}
			return pointDoc(i, b, rs.MeanDelay, rs.DelayCI, rs.MeanN, rs.ReplicasUsed), blobs, nil
		}
	}

	for i := start; i < n; i++ {
		if h.interrupted != nil {
			if err := h.interrupted(); err != nil {
				return nil, err
			}
		}
		pd, blobs, err := runPoint(i)
		if cause := context.Cause(ctx); cause != nil {
			return nil, cause
		}
		if err != nil {
			return nil, err
		}
		raw, err := json.Marshal(pd)
		if err != nil {
			return nil, err
		}
		points[i] = raw
		if h.point != nil {
			if err := h.point(i, raw, blobs, i < copied); err != nil {
				return nil, err
			}
		}
	}
	return json.Marshal(resultAssembly{
		Name:    b.Scenario.Name,
		Engine:  rec.Engine,
		Version: version,
		Key:     rec.Key,
		Points:  points,
	})
}

func pointDoc(i int, b *workload.Bound, meanDelay, delayCI, meanN float64, reps int) PointDoc {
	return PointDoc{
		Index:     i,
		Load:      b.Points[i].Load,
		NodeRate:  b.Points[i].NodeRate,
		MeanDelay: meanDelay,
		DelayCI:   delayCI,
		MeanN:     meanN,
		Replicas:  reps,
	}
}

func encodeSnaps(n int, marshal func(j int) ([]byte, error)) ([][]byte, error) {
	blobs := make([][]byte, n)
	for j := range n {
		b, err := marshal(j)
		if err != nil {
			return nil, err
		}
		blobs[j] = b
	}
	return blobs, nil
}

func decodeSlotSnaps(blobs [][]byte) ([]*stepsim.Snapshot, bool) {
	snaps := make([]*stepsim.Snapshot, len(blobs))
	for j, b := range blobs {
		sn, err := stepsim.UnmarshalSnapshot(b)
		if err != nil {
			return nil, false
		}
		snaps[j] = sn
	}
	return snaps, true
}

func decodeEvtSnaps(blobs [][]byte) ([]*sim.Snapshot, bool) {
	snaps := make([]*sim.Snapshot, len(blobs))
	for j, b := range blobs {
		sn, err := sim.UnmarshalSnapshot(b)
		if err != nil {
			return nil, false
		}
		snaps[j] = sn
	}
	return snaps, true
}

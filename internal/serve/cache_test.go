package serve

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheMemoryAndDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, baseScenario(), EngineEvent)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	doc := []byte(`{"points":[1,2,3]}`)
	if err := c.Put(key, doc); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, doc) {
		t.Fatalf("memory get: ok=%v doc=%s", ok, got)
	}
	// A fresh cache over the same directory must hit from disk.
	c2, err := NewCache(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, ok = c2.Get(key)
	if !ok || !bytes.Equal(got, doc) {
		t.Fatalf("disk get: ok=%v doc=%s", ok, got)
	}
	if h, m := c2.Hits(), c2.Misses(); h != 1 || m != 0 {
		t.Fatalf("counters after disk hit: hits=%d misses=%d", h, m)
	}
	if h, m := c.Hits(), c.Misses(); h != 1 || m != 1 {
		t.Fatalf("counters on first cache: hits=%d misses=%d", h, m)
	}
}

func TestCacheLRUEvictionKeepsDiskTier(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 3)
	for i := range keys {
		sc := baseScenario()
		sc.Seed = uint64(100 + i)
		keys[i] = mustKey(t, sc, EngineEvent)
		if err := c.Put(keys[i], []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	// keys[0] was evicted from memory but survives on disk.
	got, ok := c.Get(keys[0])
	if !ok || !bytes.Equal(got, []byte(`{"i":0}`)) {
		t.Fatalf("evicted key not served from disk: ok=%v doc=%s", ok, got)
	}
}

func TestCacheMemoryOnly(t *testing.T) {
	c, err := NewCache("", 2)
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, baseScenario(), EngineEvent)
	if err := c.Put(key, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("memory-only cache missed its own put")
	}
}

// Package serve is the sweep service: an HTTP/JSON front end that accepts
// declarative workload.Scenario specs, queues them with explicit
// backpressure, executes them on the deterministic simulation engines,
// streams per-point results live, and memoizes completed result documents
// in a content-addressed cache.
//
// The cache is sound because of a property most simulation services lack:
// both engines are bit-deterministic. A scenario, a seed, an engine and a
// code version fully determine every float in the result document, so the
// SHA-256 of those four inputs is a true content address — a hit can be
// served byte-for-byte without rerunning anything, and provenance is just
// the flag saying which path produced the bytes.
//
// With Config.JournalDir set the service is durable and multi-process.
// Every submission is recorded in an append-only on-disk journal (one
// directory per job: an immutable job record, a JSONL log of lifecycle
// transitions and completed ladder points, and a CRC-checked checkpoint
// of the engine snapshots between points) using fsync'd
// temp-file/rename writes, so a crash at any instant leaves at worst a
// torn tail that replay ignores and the next append repairs. Workers —
// in-process loops or separate `sweepd -worker` processes sharing the
// directory — claim jobs through lease files renewed by heartbeat; a
// lease silent past its TTL is presumed dead and stolen, the job
// requeued with its retry count bumped (exponential backoff, permanent
// failure past MaxRetries) and resumed from the last completed point.
// Because each ladder point is a pure function of (scenario, engine,
// code version) and warm-start chains are carried in the checkpointed
// snapshots, a kill -9'd-then-resumed job's final document is
// byte-identical to an uninterrupted run's. Exactly-once completion is
// enforced structurally: the terminal journal record is gated by an
// O_EXCL marker file, so of any number of racing workers exactly one
// commits. SSE streams carry monotone event ids (journal positions) and
// honor Last-Event-ID replay, so clients resume through crashes of
// either side without losing or duplicating a point.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/workload"
)

// Engine names accepted by the service. The engine is part of the cache
// key: the two engines simulate the same model with different variate
// streams, so their result documents differ.
const (
	EngineEvent   = "event"   // event-driven engine (internal/sim)
	EngineSlotted = "slotted" // synchronous slotted engine (internal/stepsim)
)

// Key computes the content address of a sweep: SHA-256 over the
// scenario's canonical JSON (workload.Scenario.CanonicalJSON — invariant
// to field order, whitespace and spelled-out defaults; the seed rides
// inside it), the engine name, and the code version string. Fields are
// length-prefixed so no concatenation of distinct inputs can collide.
func Key(sc workload.Scenario, engine, version string) (string, error) {
	cj, err := sc.CanonicalJSON()
	if err != nil {
		return "", fmt.Errorf("serve: canonicalizing scenario: %w", err)
	}
	if engine != EngineEvent && engine != EngineSlotted {
		return "", fmt.Errorf("serve: unknown engine %q (want %q or %q)", engine, EngineEvent, EngineSlotted)
	}
	h := sha256.New()
	for _, field := range [][]byte{cj, []byte(engine), []byte(version)} {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(field)))
		h.Write(n[:])
		h.Write(field)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Package serve is the sweep service: an HTTP/JSON front end that accepts
// declarative workload.Scenario specs, queues them with explicit
// backpressure, executes them on the deterministic simulation engines,
// streams per-point results live, and memoizes completed result documents
// in a content-addressed cache.
//
// The cache is sound because of a property most simulation services lack:
// both engines are bit-deterministic. A scenario, a seed, an engine and a
// code version fully determine every float in the result document, so the
// SHA-256 of those four inputs is a true content address — a hit can be
// served byte-for-byte without rerunning anything, and provenance is just
// the flag saying which path produced the bytes.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/workload"
)

// Engine names accepted by the service. The engine is part of the cache
// key: the two engines simulate the same model with different variate
// streams, so their result documents differ.
const (
	EngineEvent   = "event"   // event-driven engine (internal/sim)
	EngineSlotted = "slotted" // synchronous slotted engine (internal/stepsim)
)

// Key computes the content address of a sweep: SHA-256 over the
// scenario's canonical JSON (workload.Scenario.CanonicalJSON — invariant
// to field order, whitespace and spelled-out defaults; the seed rides
// inside it), the engine name, and the code version string. Fields are
// length-prefixed so no concatenation of distinct inputs can collide.
func Key(sc workload.Scenario, engine, version string) (string, error) {
	cj, err := sc.CanonicalJSON()
	if err != nil {
		return "", fmt.Errorf("serve: canonicalizing scenario: %w", err)
	}
	if engine != EngineEvent && engine != EngineSlotted {
		return "", fmt.Errorf("serve: unknown engine %q (want %q or %q)", engine, EngineEvent, EngineSlotted)
	}
	h := sha256.New()
	for _, field := range [][]byte{cj, []byte(engine), []byte(version)} {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(field)))
		h.Write(n[:])
		h.Write(field)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

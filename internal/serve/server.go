package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/sim"
	"repro/internal/stepsim"
	"repro/internal/workload"
)

// Config parameterizes a Server. The zero value is usable: a depth-16
// queue, one sweep at a time, engine pools sized to GOMAXPROCS, a
// memory-only cache, and the build's own version string in cache keys.
type Config struct {
	// QueueDepth bounds the number of queued (not yet running) sweeps;
	// submissions beyond it get 429 + Retry-After (default 16).
	QueueDepth int
	// Workers is how many sweeps run concurrently (default 1: a sweep
	// already parallelizes internally, so job-level concurrency mostly
	// helps many small sweeps).
	Workers int
	// SimWorkers bounds each sweep's engine pool (0 means GOMAXPROCS).
	SimWorkers int
	// CacheDir is the on-disk result store; empty keeps the cache
	// memory-only. CacheEntries bounds the in-memory tier (default 128).
	CacheDir     string
	CacheEntries int
	// Version overrides the code-version component of cache keys; empty
	// uses buildinfo.Version(). Tests pin it to decouple keys from the
	// build environment.
	Version string
	// JobTimeout bounds one sweep's running wall clock (queue wait
	// excluded). A job past it is canceled through the engines' context
	// plumbing — the pools drain, no goroutine is killed mid-replica — and
	// finishes failed with a timeout reason. Zero means no limit.
	JobTimeout time.Duration
	// JournalDir, when set, makes the server durable and multi-process:
	// jobs are journaled on disk (journal.go) before being acknowledged,
	// executed by leased workers (this process's and any number of
	// `sweepd --worker` processes sharing the directory), checkpointed
	// between ladder points, and recovered across crashes and restarts.
	// CacheDir defaults to JournalDir/cache so all processes share the
	// result store. Workers < 0 runs no in-process workers (front-end
	// only; external workers drain the queue).
	JournalDir string
	// LeaseTTL, MaxRetries and Backoff tune durable-mode recovery; see
	// WorkerConfig. Zero values take the worker defaults.
	LeaseTTL   time.Duration
	MaxRetries int
	Backoff    time.Duration
}

// Server is the sweep service. It owns the queue, the cache, the worker
// goroutines, and the HTTP surface; Close drains it.
type Server struct {
	cfg     Config
	version string
	queue   *Queue
	cache   *Cache
	mux     *http.ServeMux

	// journal is non-nil in durable mode; the handlers then treat the
	// on-disk journal, not the in-memory job table, as the source of truth.
	journal  *Journal
	wmetrics *WorkerMetrics

	mu   sync.Mutex
	jobs map[string]*Job
	// cancels maps running durable jobs to their in-process cancel funcs,
	// so a DELETE aborts mid-point instead of waiting for a boundary.
	cancels map[string]context.CancelCauseFunc

	nextID   atomic.Int64
	running  atomic.Int64
	done     atomic.Int64
	failed   atomic.Int64
	timedOut atomic.Int64
	// wallNanos/wallCount accumulate per-job wall time for /metrics.
	wallNanos atomic.Int64
	wallCount atomic.Int64

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	wg         sync.WaitGroup
}

// New builds a Server and starts its workers.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	switch {
	case cfg.Workers == 0:
		cfg.Workers = 1
	case cfg.Workers < 0:
		cfg.Workers = 0 // durable front-end only: external workers drain
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 128
	}
	version := cfg.Version
	if version == "" {
		version = buildinfo.Version()
	}
	if cfg.JournalDir != "" && cfg.CacheDir == "" {
		cfg.CacheDir = filepath.Join(cfg.JournalDir, "cache")
	}
	cache, err := NewCache(cfg.CacheDir, cfg.CacheEntries)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		version:    version,
		queue:      NewQueue(cfg.QueueDepth),
		cache:      cache,
		jobs:       make(map[string]*Job),
		cancels:    make(map[string]context.CancelCauseFunc),
		wmetrics:   new(WorkerMetrics),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if cfg.JournalDir != "" {
		jl, err := OpenJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		s.journal = jl
		s.seedNextID()
		for range cfg.Workers {
			wk := NewWorker(WorkerConfig{
				Journal:    jl,
				Cache:      cache,
				Version:    version,
				SimWorkers: cfg.SimWorkers,
				LeaseTTL:   cfg.LeaseTTL,
				MaxRetries: cfg.MaxRetries,
				Backoff:    cfg.Backoff,
				JobTimeout: cfg.JobTimeout,
				Metrics:    s.wmetrics,
				OnRun:      s.registerCancel,
				OnDone:     s.unregisterCancel,
			})
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				wk.Run(s.baseCtx)
			}()
		}
		return s, nil
	}
	for range cfg.Workers {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close cancels every in-flight job, stops the workers, and waits for
// them. In-flight sweeps abort through the engines' context plumbing.
func (s *Server) Close() {
	s.baseCancel(ErrCanceled)
	s.queue.Close()
	s.mu.Lock()
	for _, j := range s.jobs {
		j.Cancel(ErrCanceled)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Version returns the code-version string used in this server's cache keys.
func (s *Server) Version() string { return s.version }

// SubmitRequest is the body of POST /v1/sweeps.
type SubmitRequest struct {
	// Scenario is a declarative workload.Scenario document; it is
	// validated (including the analytic stability checks) before anything
	// is queued.
	Scenario json.RawMessage `json:"scenario"`
	// Engine picks the executor: "event" (default) or "slotted".
	Engine string `json:"engine,omitempty"`
	// Priority orders the queue: higher pops first, ties are FIFO.
	Priority int `json:"priority,omitempty"`
}

// SubmitResponse is the body of POST /v1/sweeps. A cache hit carries the
// full result document immediately (Cached true, no job); a miss carries
// the new job's ID.
type SubmitResponse struct {
	ID     string          `json:"id,omitempty"`
	Key    string          `json:"key"`
	Status string          `json:"status"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if len(req.Scenario) == 0 {
		httpError(w, http.StatusBadRequest, "request needs a scenario")
		return
	}
	sc, err := workload.ParseScenario(req.Scenario)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	engine := req.Engine
	if engine == "" {
		engine = EngineEvent
	}
	if engine == EngineSlotted {
		// Reject scenarios the slotted engine cannot lower (non-Poisson
		// arrivals, routers without steppers) at submit time, not after
		// queueing.
		b, err := sc.Bind()
		if err == nil {
			_, err = b.SlottedConfigs()
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	canonical := sc.Canonical()
	key, err := Key(canonical, engine, s.version)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if doc, ok := s.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, SubmitResponse{
			Key:    key,
			Status: StatusDone,
			Cached: true,
			Result: doc,
		})
		return
	}
	if s.journal != nil {
		s.submitDurable(w, canonical, engine, key, req.Priority)
		return
	}
	id := fmt.Sprintf("job-%d", s.nextID.Add(1))
	j := newJob(id, key, engine, req.Priority, canonical, s.baseCtx)
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	if err := s.queue.Push(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		if err == ErrQueueFull {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:     id,
		Key:    key,
		Status: StatusQueued,
		Cached: false,
	})
}

func (s *Server) lookup(r *http.Request) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if s.journal != nil {
		s.getDurable(w, r)
		return
	}
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such sweep")
		return
	}
	writeJSON(w, http.StatusOK, j.doc())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if s.journal != nil {
		s.cancelDurable(w, r)
		return
	}
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such sweep")
		return
	}
	j.Cancel(ErrCanceled)
	writeJSON(w, http.StatusOK, j.doc())
}

// handleEvents is the SSE stream: every event the job has already logged
// is replayed in order, then the connection goes live until the job
// reaches a terminal state or the client disconnects. Events carry
// monotone ids (event index + 1), and a reconnecting client that sends
// Last-Event-ID resumes right after the last event it saw — so each sweep
// point is delivered exactly once per logical stream even across dropped
// connections. A `retry:` hint tells EventSource-style clients how fast
// to come back.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.journal != nil {
		s.eventsDurable(w, r)
		return
	}
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no such sweep")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "retry: %d\n\n", sseRetryMillis)
	fl.Flush()
	ctx := r.Context()
	// The event wait parks on the job's condition variable; a client
	// disconnect must kick it awake to observe ctx.
	stop := context.AfterFunc(ctx, j.wake)
	defer stop()
	for i := lastEventID(r); ; i++ {
		ev, ok := j.next(ctx, i)
		if !ok {
			return
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", i+1, ev.Type, ev.Data)
		fl.Flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	queued := s.queue.Len()
	running := s.running.Load()
	if s.journal != nil {
		q, rn, _ := s.durableGauges()
		queued, running = q, int64(rn)
	}
	writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		Version string `json:"version"`
		Queued  int    `json:"queued"`
		Running int64  `json:"running"`
	}{"ok", s.version, queued, running})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	queued := s.queue.Len()
	running := s.running.Load()
	leases := 0
	done, failed := s.done.Load(), s.failed.Load()
	if s.journal != nil {
		q, rn, ls := s.durableGauges()
		queued, running, leases = q, int64(rn), ls
		done += s.wmetrics.Completed.Load()
		failed += s.wmetrics.Failed.Load()
	}
	fmt.Fprintf(w, "# TYPE sweepd_queue_depth gauge\nsweepd_queue_depth %d\n", queued)
	fmt.Fprintf(w, "# TYPE sweepd_running_jobs gauge\nsweepd_running_jobs %d\n", running)
	fmt.Fprintf(w, "# TYPE sweepd_active_leases gauge\nsweepd_active_leases %d\n", leases)
	fmt.Fprintf(w, "# TYPE sweepd_cache_hits_total counter\nsweepd_cache_hits_total %d\n", s.cache.Hits())
	fmt.Fprintf(w, "# TYPE sweepd_cache_misses_total counter\nsweepd_cache_misses_total %d\n", s.cache.Misses())
	fmt.Fprintf(w, "# TYPE sweepd_jobs_completed_total counter\nsweepd_jobs_completed_total %d\n", done)
	fmt.Fprintf(w, "# TYPE sweepd_jobs_failed_total counter\nsweepd_jobs_failed_total %d\n", failed)
	fmt.Fprintf(w, "# TYPE sweepd_jobs_timed_out_total counter\nsweepd_jobs_timed_out_total %d\n", s.timedOut.Load())
	fmt.Fprintf(w, "# TYPE sweepd_jobs_requeued_total counter\nsweepd_jobs_requeued_total %d\n", s.wmetrics.Requeued.Load())
	fmt.Fprintf(w, "# TYPE sweepd_worker_drains_total counter\nsweepd_worker_drains_total %d\n", s.wmetrics.Drains.Load())
	fmt.Fprintf(w, "# TYPE sweepd_leases_lost_total counter\nsweepd_leases_lost_total %d\n", s.wmetrics.LeaseLost.Load())
	fmt.Fprintf(w, "# TYPE sweepd_job_wall_seconds summary\n")
	fmt.Fprintf(w, "sweepd_job_wall_seconds_sum %g\n", float64(s.wallNanos.Load())/1e9)
	fmt.Fprintf(w, "sweepd_job_wall_seconds_count %d\n", s.wallCount.Load())
}

// worker pops jobs and runs them until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		if !j.start() {
			// Canceled while queued; already terminal.
			continue
		}
		s.running.Add(1)
		s.runJob(j)
		s.running.Add(-1)
		d := j.wallTime()
		s.wallNanos.Add(int64(d))
		s.wallCount.Add(1)
	}
}

// PointDoc is one sweep point of the final result document and of the
// SSE "point" events — the shared shape of both engines' cells.
type PointDoc struct {
	Index     int     `json:"index"`
	Load      float64 `json:"load"`
	NodeRate  float64 `json:"nodeRate"`
	MeanDelay float64 `json:"meanDelay"`
	DelayCI   float64 `json:"delayCI"`
	MeanN     float64 `json:"meanN"`
	Replicas  int     `json:"replicas"`
}

// ResultDoc is the final result document: stored verbatim in the cache
// and embedded verbatim in responses, so a cached resubmission returns
// byte-identical result bytes.
type ResultDoc struct {
	Name    string     `json:"name"`
	Engine  string     `json:"engine"`
	Version string     `json:"version"`
	Key     string     `json:"key"`
	Points  []PointDoc `json:"points"`
}

// runJob executes one sweep on the engine it names, streaming each cell
// as an SSE "point" event the moment it converges, then finishing the job
// with the cached result document (or the first error).
func (s *Server) runJob(j *Job) {
	if s.cfg.JobTimeout > 0 {
		timer := time.AfterFunc(s.cfg.JobTimeout, func() { j.Cancel(ErrJobTimeout) })
		defer timer.Stop()
	}
	b, err := j.Scenario.Bind()
	if err != nil {
		s.failed.Add(1)
		j.finish(StatusFailed, nil, err.Error())
		return
	}
	points := make([]PointDoc, len(b.Points))
	var firstErr error
	emit := func(i int, meanDelay, delayCI, meanN float64, reps int, cellErr error) {
		if cellErr != nil {
			if firstErr == nil {
				firstErr = cellErr
			}
			return
		}
		pd := PointDoc{
			Index:     i,
			Load:      b.Points[i].Load,
			NodeRate:  b.Points[i].NodeRate,
			MeanDelay: meanDelay,
			DelayCI:   delayCI,
			MeanN:     meanN,
			Replicas:  reps,
		}
		points[i] = pd
		data, _ := json.Marshal(pd)
		j.append("point", data)
	}
	switch j.Engine {
	case EngineSlotted:
		cfgs, cfgErr := b.SlottedConfigs()
		if cfgErr != nil {
			firstErr = cfgErr
			break
		}
		opts := b.SlottedSweepOpts(s.cfg.SimWorkers)
		stepsim.StreamSweepAdaptive(j.ctx, cfgs, opts, func(i int, rs stepsim.ReplicaSet, err error) {
			emit(i, rs.MeanDelay, rs.DelayCI, rs.MeanN, rs.ReplicasUsed, err)
		})
	default:
		opts := b.SweepOpts(s.cfg.SimWorkers)
		sim.StreamSweepAdaptive(j.ctx, b.Configs, opts, func(i int, rs sim.ReplicaSet, err error) {
			emit(i, rs.MeanDelay, rs.DelayCI, rs.MeanN, rs.ReplicasUsed, err)
		})
	}
	if cause := context.Cause(j.ctx); cause != nil {
		if errors.Is(cause, ErrJobTimeout) {
			s.failed.Add(1)
			s.timedOut.Add(1)
			j.finish(StatusFailed, nil, fmt.Sprintf("timeout: sweep exceeded the %v job limit", s.cfg.JobTimeout))
			return
		}
		j.finish(StatusCanceled, nil, cause.Error())
		return
	}
	if firstErr != nil {
		s.failed.Add(1)
		j.finish(StatusFailed, nil, firstErr.Error())
		return
	}
	doc, err := json.Marshal(ResultDoc{
		Name:    j.Scenario.Name,
		Engine:  j.Engine,
		Version: s.version,
		Key:     j.Key,
		Points:  points,
	})
	if err != nil {
		s.failed.Add(1)
		j.finish(StatusFailed, nil, err.Error())
		return
	}
	// A cache write failure costs future hits, not this job: the sweep
	// itself succeeded.
	_ = s.cache.Put(j.Key, doc)
	s.done.Add(1)
	j.finish(StatusDone, doc, "")
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// smallSubmit is a fast three-point sweep on the slotted engine.
func smallSubmit() []byte {
	return []byte(`{
		"engine": "slotted",
		"scenario": {
			"name": "smoke",
			"topology": {"kind": "array", "n": 4},
			"pattern": {"kind": "uniform"},
			"loads": [0.3, 0.5, 0.6],
			"horizon": 400,
			"warmup": 100,
			"replicas": 2,
			"seed": 9
		}
	}`)
}

// longSubmit is a sweep big enough to still be running when the test
// cancels or crowds it (50M slots; cancellation aborts it in
// milliseconds).
func longSubmit(seed int) []byte {
	return fmt.Appendf(nil, `{
		"engine": "slotted",
		"scenario": {
			"name": "long",
			"topology": {"kind": "array", "n": 8},
			"pattern": {"kind": "uniform"},
			"loads": [0.9],
			"horizon": 50000000,
			"replicas": 1,
			"seed": %d
		}
	}`, seed)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Version == "" {
		cfg.Version = testVersion
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSweep(t *testing.T, ts *httptest.Server, body []byte) (int, SubmitResponse, http.Header) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return resp.StatusCode, sr, resp.Header
}

func getJob(t *testing.T, ts *httptest.Server, id string) jobDoc {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d jobDoc
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	return d
}

func waitStatus(t *testing.T, ts *httptest.Server, id, want string) jobDoc {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		d := getJob(t, ts, id)
		if d.Status == want {
			return d
		}
		if d.Status == StatusFailed && want != StatusFailed {
			t.Fatalf("job %s failed: %s", id, d.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobDoc{}
}

// readSSE consumes the event stream until the server closes it, returning
// the ordered (type, data) frames.
func readSSE(t *testing.T, ts *httptest.Server, id string) []Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	var events []Event
	var cur Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.Type != "" {
				events = append(events, cur)
				cur = Event{}
			}
		}
	}
	return events
}

// checkPoints asserts the stream carries every sweep point exactly once,
// in input order, followed by a single terminal frame.
func checkPoints(t *testing.T, events []Event, wantPoints int, terminal string) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	next := 0
	for _, ev := range events[:len(events)-1] {
		if ev.Type != "point" {
			t.Fatalf("mid-stream event type %q", ev.Type)
		}
		var pd PointDoc
		if err := json.Unmarshal(ev.Data, &pd); err != nil {
			t.Fatalf("bad point data %s: %v", ev.Data, err)
		}
		if pd.Index != next {
			t.Fatalf("point index %d, want %d (duplicate or gap)", pd.Index, next)
		}
		next++
	}
	if next != wantPoints {
		t.Fatalf("streamed %d points, want %d", next, wantPoints)
	}
	if last := events[len(events)-1]; last.Type != terminal {
		t.Fatalf("terminal event %q, want %q", last.Type, terminal)
	}
}

func scrapeMetric(t *testing.T, ts *httptest.Server, name string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if v, ok := strings.CutPrefix(sc.Text(), name+" "); ok {
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return ""
}

// TestSubmitStreamResubmit is the end-to-end contract: submit, stream
// every point exactly once, then resubmit the identical spec and get the
// byte-identical result document from the cache with cached:true
// provenance and the hit counter incremented.
func TestSubmitStreamResubmit(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheDir: t.TempDir()})
	code, sub, _ := postSweep(t, ts, smallSubmit())
	if code != http.StatusAccepted || sub.Cached || sub.ID == "" {
		t.Fatalf("first submit: code=%d resp=%+v", code, sub)
	}
	events := readSSE(t, ts, sub.ID)
	checkPoints(t, events, 3, "done")
	doc := waitStatus(t, ts, sub.ID, StatusDone)
	if len(doc.Result) == 0 {
		t.Fatal("done job has no result document")
	}
	// A late subscriber replays the whole stream: same frames again.
	replay := readSSE(t, ts, sub.ID)
	checkPoints(t, replay, 3, "done")

	code, re, _ := postSweep(t, ts, smallSubmit())
	if code != http.StatusOK {
		t.Fatalf("resubmit: code=%d", code)
	}
	if !re.Cached {
		t.Fatal("resubmit not served from cache")
	}
	if re.Key != sub.Key {
		t.Fatalf("resubmit key %s != original %s", re.Key, sub.Key)
	}
	if !bytes.Equal(re.Result, doc.Result) {
		t.Fatalf("cached result not byte-identical:\n first: %s\ncached: %s", doc.Result, re.Result)
	}
	var rd ResultDoc
	if err := json.Unmarshal(re.Result, &rd); err != nil {
		t.Fatal(err)
	}
	if rd.Version != testVersion || rd.Engine != "slotted" || len(rd.Points) != 3 {
		t.Fatalf("result doc provenance: %+v", rd)
	}
	if got := scrapeMetric(t, ts, "sweepd_cache_hits_total"); got != "1" {
		t.Fatalf("cache hits = %s, want 1", got)
	}
	if got := scrapeMetric(t, ts, "sweepd_jobs_completed_total"); got != "1" {
		t.Fatalf("jobs completed = %s, want 1", got)
	}
}

// TestResubmitDifferentSpelling: a semantically identical spec spelled
// with defaults materialized must hit the same cache entry.
func TestResubmitDifferentSpelling(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, sub, _ := postSweep(t, ts, smallSubmit())
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d", code)
	}
	waitStatus(t, ts, sub.ID, StatusDone)
	respelled := []byte(`{
		"engine": "slotted",
		"scenario": {
			"seed": 9, "replicas": 2, "warmup": 100, "horizon": 400,
			"loads": [0.3, 0.5, 0.6],
			"arrivals": {"kind": "poisson"},
			"pattern": {"kind": "uniform"},
			"topology": {"n": 4, "kind": "array"},
			"description": "same campaign, different spelling",
			"shards": 2,
			"name": "smoke"
		}
	}`)
	code, re, _ := postSweep(t, ts, respelled)
	if code != http.StatusOK || !re.Cached {
		t.Fatalf("respelled submit missed the cache: code=%d cached=%v", code, re.Cached)
	}
}

func TestBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 1, Workers: 1})
	// First long job occupies the worker; second fills the queue; third
	// must shed with 429 + Retry-After.
	code, first, _ := postSweep(t, ts, longSubmit(1))
	if code != http.StatusAccepted {
		t.Fatalf("first: code=%d", code)
	}
	waitStatus(t, ts, first.ID, StatusRunning)
	code, second, _ := postSweep(t, ts, longSubmit(2))
	if code != http.StatusAccepted {
		t.Fatalf("second: code=%d", code)
	}
	code, _, hdr := postSweep(t, ts, longSubmit(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("third: code=%d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Canceling the queued job frees its slot without running it.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+second.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, ts, second.ID, StatusCanceled)
}

// TestDeleteCancelsRunning is the -race cancellation proof at the service
// layer: DELETE on a running job must stop the engine pools (50M-slot run
// aborts in well under the watchdog) and surface a terminal error frame
// to subscribers.
func TestDeleteCancelsRunning(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, sub, _ := postSweep(t, ts, longSubmit(4))
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d", code)
	}
	waitStatus(t, ts, sub.ID, StatusRunning)
	sseDone := make(chan []Event, 1)
	go func() { sseDone <- readSSE(t, ts, sub.ID) }()
	time.Sleep(20 * time.Millisecond)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	d := waitStatus(t, ts, sub.ID, StatusCanceled)
	if d.Error == "" {
		t.Fatal("canceled job carries no cause")
	}
	select {
	case events := <-sseDone:
		if len(events) == 0 || events[len(events)-1].Type != "error" {
			t.Fatalf("canceled stream events: %+v", events)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream did not terminate after cancel")
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := map[string]string{
		"not json":     `{"scenario": nope}`,
		"no scenario":  `{"engine": "event"}`,
		"bad load":     `{"scenario": {"name":"x","topology":{"kind":"array","n":4},"pattern":{"kind":"uniform"},"loads":[1.5]}}`,
		"bad topology": `{"scenario": {"name":"x","topology":{"kind":"mesh9"},"pattern":{"kind":"uniform"},"loads":[0.5]}}`,
		"bad engine":   `{"engine":"quantum","scenario": {"name":"x","topology":{"kind":"array","n":4},"pattern":{"kind":"uniform"},"loads":[0.5]}}`,
		"slotted bursty": `{"engine":"slotted","scenario": {"name":"x","topology":{"kind":"array","n":4},
			"pattern":{"kind":"uniform"},"arrivals":{"kind":"bursty"},"loads":[0.5]}}`,
	}
	for label, body := range cases {
		code, _, _ := postSweep(t, ts, []byte(body))
		if code != http.StatusBadRequest {
			t.Errorf("%s: code=%d, want 400", label, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: code=%d, want 404", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Version != testVersion {
		t.Fatalf("healthz: code=%d body=%+v", resp.StatusCode, h)
	}
}

// TestCachePersistsAcrossServers: a new server over the same cache
// directory (same pinned version) serves the old result without rerunning.
func TestCachePersistsAcrossServers(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{CacheDir: dir, Version: testVersion})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1)
	code, sub, _ := postSweep(t, ts1, smallSubmit())
	if code != http.StatusAccepted {
		t.Fatalf("submit: code=%d", code)
	}
	doc := waitStatus(t, ts1, sub.ID, StatusDone)
	ts1.Close()
	s1.Close()

	_, ts2 := newTestServer(t, Config{CacheDir: dir})
	code, re, _ := postSweep(t, ts2, smallSubmit())
	if code != http.StatusOK || !re.Cached {
		t.Fatalf("restarted server missed disk cache: code=%d cached=%v", code, re.Cached)
	}
	if !bytes.Equal(re.Result, doc.Result) {
		t.Fatal("disk-cached result not byte-identical across server restarts")
	}
}

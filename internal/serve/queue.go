package serve

import (
	"container/heap"
	"errors"
	"sync"
)

// ErrQueueFull is Push's backpressure signal: the queue is at its depth
// bound and the submitter must retry later. The HTTP layer translates it
// to 429 with a Retry-After header — the service sheds load explicitly
// rather than buffering without bound.
var ErrQueueFull = errors.New("sweep queue full")

// Queue is a bounded priority queue of jobs. Higher Priority pops first;
// ties pop in submission order, so equal-priority traffic is FIFO and no
// job starves behind later submissions of its own class.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  qheap
	depth  int
	seq    uint64
	closed bool
}

// NewQueue returns a queue holding at most depth jobs (minimum 1).
func NewQueue(depth int) *Queue {
	if depth < 1 {
		depth = 1
	}
	q := &Queue{depth: depth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a job, or returns ErrQueueFull at the depth bound.
func (q *Queue) Push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errors.New("sweep queue closed")
	}
	if q.items.Len() >= q.depth {
		return ErrQueueFull
	}
	q.seq++
	heap.Push(&q.items, qitem{job: j, seq: q.seq})
	q.cond.Signal()
	return nil
}

// Pop blocks until a job is available and returns it; ok is false once
// the queue is closed and drained.
func (q *Queue) Pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.items.Len() == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.items.Len() == 0 {
		return nil, false
	}
	it := heap.Pop(&q.items).(qitem)
	return it.job, true
}

// Len reports the current depth.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

// Close stops accepting jobs and unblocks poppers once drained.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

type qitem struct {
	job *Job
	seq uint64
}

type qheap []qitem

func (h qheap) Len() int { return len(h) }
func (h qheap) Less(i, j int) bool {
	if h[i].job.Priority != h[j].job.Priority {
		return h[i].job.Priority > h[j].job.Priority
	}
	return h[i].seq < h[j].seq
}
func (h qheap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *qheap) Push(x any)   { *h = append(*h, x.(qitem)) }
func (h *qheap) Pop() (x any) { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }

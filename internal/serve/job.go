package serve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"repro/internal/workload"
)

// Job statuses. A job moves queued → running → one of the terminal
// states; canceled can also be entered directly from queued (the worker
// that later pops it just discards it).
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// ErrCanceled is the cancellation cause installed by DELETE /v1/sweeps/{id}
// and by server shutdown; it propagates through the engines' context
// plumbing and back out of the worker pools.
var ErrCanceled = errors.New("sweep canceled")

// ErrJobTimeout is the cancellation cause installed when a job outlives
// Config.JobTimeout. It rides the same context plumbing as ErrCanceled,
// but the worker classifies it as a failure, not a cancellation: the
// client asked for the sweep and did not get it.
var ErrJobTimeout = errors.New("job exceeded the configured wall-clock timeout")

// Event is one SSE frame of a job's stream: a "point" per converged sweep
// cell (in input order, exactly once each), then a single terminal "done"
// or "error" frame.
type Event struct {
	Type string
	Data []byte
}

// Job is one submitted sweep. The event log is append-only and every
// subscriber replays it from the start before going live, so a client
// that connects after completion still sees every point exactly once.
type Job struct {
	ID       string
	Key      string
	Engine   string
	Priority int
	// Scenario is the canonical form (workload.Scenario.Canonical); the
	// worker binds and runs exactly what the cache key hashes.
	Scenario workload.Scenario

	ctx    context.Context
	cancel context.CancelCauseFunc

	mu        sync.Mutex
	cond      *sync.Cond
	status    string
	events    []Event
	closed    bool
	result    []byte // final result document, verbatim cache bytes
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
}

func newJob(id, key, engine string, prio int, sc workload.Scenario, parent context.Context) *Job {
	ctx, cancel := context.WithCancelCause(parent)
	j := &Job{
		ID:        id,
		Key:       key,
		Engine:    engine,
		Priority:  prio,
		Scenario:  sc,
		ctx:       ctx,
		cancel:    cancel,
		status:    StatusQueued,
		submitted: time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// append publishes one event and wakes every subscriber.
func (j *Job) append(typ string, data []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.events = append(j.events, Event{Type: typ, Data: data})
	j.cond.Broadcast()
}

// next blocks until event i exists, the stream is closed, or ctx is done.
// The second return is false once no event i will ever exist. Callers must
// arrange for wake() on ctx cancellation (context.AfterFunc) — the wait
// itself only watches the condition variable.
func (j *Job) next(ctx context.Context, i int) (Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i >= len(j.events) && !j.closed {
		if ctx.Err() != nil {
			return Event{}, false
		}
		j.cond.Wait()
	}
	if i < len(j.events) {
		return j.events[i], true
	}
	return Event{}, false
}

// wake broadcasts so subscribers re-check their contexts.
func (j *Job) wake() {
	j.mu.Lock()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// start transitions queued → running; false if the job was canceled while
// queued (the caller discards it).
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	return true
}

// finish installs a terminal status, appends the terminal event, and
// closes the stream. result is the final document for StatusDone.
func (j *Job) finish(status string, result []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled {
		return
	}
	j.status = status
	j.finished = time.Now()
	j.result = result
	j.errMsg = errMsg
	switch status {
	case StatusDone:
		data, _ := json.Marshal(struct {
			Status string `json:"status"`
			Key    string `json:"key"`
			Points int    `json:"points"`
		}{StatusDone, j.Key, len(j.events)})
		j.events = append(j.events, Event{Type: "done", Data: data})
	default:
		data, _ := json.Marshal(struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}{status, errMsg})
		j.events = append(j.events, Event{Type: "error", Data: data})
	}
	j.closed = true
	j.cond.Broadcast()
}

// Cancel requests cancellation with the given cause. Queued jobs become
// canceled immediately; running jobs get their context canceled and the
// worker finishes the transition when the pools drain.
func (j *Job) Cancel(cause error) {
	j.cancel(cause)
	j.mu.Lock()
	queued := j.status == StatusQueued
	j.mu.Unlock()
	if queued {
		j.finish(StatusCanceled, nil, cause.Error())
	} else {
		j.wake()
	}
}

// wallTime returns the running duration of a finished job (zero if it
// never started).
func (j *Job) wallTime() time.Duration {
	if j.started.IsZero() || j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started)
}

// jobDoc is the JSON shape of GET /v1/sweeps/{id}.
type jobDoc struct {
	ID        string          `json:"id"`
	Status    string          `json:"status"`
	Engine    string          `json:"engine"`
	Key       string          `json:"key"`
	Name      string          `json:"name"`
	Priority  int             `json:"priority,omitempty"`
	Retry     int             `json:"retry,omitempty"`
	Submitted string          `json:"submitted"`
	Started   string          `json:"started,omitempty"`
	Finished  string          `json:"finished,omitempty"`
	Points    int             `json:"points"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

func (j *Job) doc() jobDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	d := jobDoc{
		ID:        j.ID,
		Status:    j.status,
		Engine:    j.Engine,
		Key:       j.Key,
		Name:      j.Scenario.Name,
		Priority:  j.Priority,
		Submitted: j.submitted.UTC().Format(time.RFC3339Nano),
		Error:     j.errMsg,
		Result:    j.result,
	}
	if !j.started.IsZero() {
		d.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		d.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	for _, ev := range j.events {
		if ev.Type == "point" {
			d.Points++
		}
	}
	return d
}

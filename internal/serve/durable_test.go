package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

// testJobRecord builds a journaled job over a fast 3-point slotted-sized
// ladder (the same shape either engine can run).
func testJobRecord(t *testing.T, id, engine string, warm bool) JobRecord {
	t.Helper()
	warmField := ""
	if warm {
		warmField = `, "warmStart": true`
	}
	spec := fmt.Sprintf(`{
		"name": "crash",
		"topology": {"kind": "array", "n": 4},
		"pattern": {"kind": "uniform"},
		"loads": [0.3, 0.5, 0.6],
		"horizon": 400,
		"warmup": 100,
		"replicas": 2,
		"seed": 9%s
	}`, warmField)
	sc, err := workload.ParseScenario([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	canonical := sc.Canonical()
	key, err := Key(canonical, engine, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	cj, err := canonical.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return JobRecord{ID: id, Key: key, Engine: engine, Scenario: cj, Submitted: time.Now().UnixNano()}
}

// referenceDoc is the uninterrupted run's result document.
func referenceDoc(t *testing.T, rec JobRecord) []byte {
	t.Helper()
	doc, err := executeSweep(context.Background(), rec, testVersion, 0, resumeState{}, execHooks{})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func waitTerminal(t *testing.T, jl *Journal, id string, timeout time.Duration) *JobState {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := jl.Replay(id)
		if err == nil && st.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal within %v", id, timeout)
	return nil
}

// writeStaleLease plants a lease whose heartbeat is an hour old, as a
// kill -9'd worker would leave behind.
func writeStaleLease(t *testing.T, jl *Journal, id string) {
	t.Helper()
	data, _ := json.Marshal(leaseInfo{Pid: 999999, Token: "deadbeef", Renewed: time.Now().Add(-time.Hour).UnixNano()})
	if err := os.WriteFile(filepath.Join(jl.leaseDir(id), leaseName), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJournalTornTailDoubleReplay pins the torn-record contract: a crash
// mid-append leaves a final record without a newline (or half-written);
// replaying ignores it, replaying twice agrees, and the next append
// truncates it away so the log parses cleanly forever after.
func TestJournalTornTailDoubleReplay(t *testing.T) {
	jl, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := testJobRecord(t, "job-1", EngineSlotted, false)
	if err := jl.Create(rec); err != nil {
		t.Fatal(err)
	}
	if err := jl.Append(rec.ID, Record{T: recRunning, At: 1, Pid: 42}); err != nil {
		t.Fatal(err)
	}
	if err := jl.Append(rec.ID, Record{T: recPoint, Point: 0, Doc: json.RawMessage(`{"index":0}`)}); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: a torn record with no trailing newline.
	f, err := os.OpenFile(jl.logPath(rec.ID), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"point","i":1,"doc":{"ind`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st1, err := jl.Replay(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := jl.Replay(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []*JobState{st1, st2} {
		if st.Status != StatusRunning || len(st.Points) != 1 {
			t.Fatalf("torn replay: status %q points %d, want running/1", st.Status, len(st.Points))
		}
	}
	// The next append repairs the tail; the torn bytes must be gone and
	// the new record visible.
	if err := jl.Append(rec.ID, Record{T: recPoint, Point: 1, Doc: json.RawMessage(`{"index":1}`)}); err != nil {
		t.Fatal(err)
	}
	st3, err := jl.Replay(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(st3.Points) != 2 || string(st3.Points[1]) != `{"index":1}` {
		t.Fatalf("after repair: points %d (%s)", len(st3.Points), st3.Points[len(st3.Points)-1])
	}
	raw, _ := os.ReadFile(jl.logPath(rec.ID))
	if bytes.Contains(raw, []byte(`{"ind`+"\n")) || !bytes.HasSuffix(raw, []byte("\n")) {
		t.Fatalf("journal not repaired: %q", raw)
	}
}

// TestLeaseExpiryVsLateHeartbeat pins the recovery race: once a lease's
// heartbeat goes stale another worker may steal it, the old holder's next
// renewal fails, and the terminal-commit gate lets exactly one of them
// complete the job.
func TestLeaseExpiryVsLateHeartbeat(t *testing.T) {
	jl, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := testJobRecord(t, "job-1", EngineSlotted, false)
	if err := jl.Create(rec); err != nil {
		t.Fatal(err)
	}
	dir := jl.leaseDir(rec.ID)
	const ttl = 50 * time.Millisecond
	a, err := AcquireLease(dir, ttl)
	if err != nil {
		t.Fatal(err)
	}
	// While fresh, a second claim must fail.
	if _, err := AcquireLease(dir, ttl); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("fresh lease stolen: %v", err)
	}
	time.Sleep(3 * ttl) // heartbeat goes stale
	b, err := AcquireLease(dir, ttl)
	if err != nil {
		t.Fatalf("stale lease not stealable: %v", err)
	}
	// The late heartbeat discovers the theft.
	if err := a.Renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("late renew = %v, want ErrLeaseLost", err)
	}
	if err := b.Renew(); err != nil {
		t.Fatalf("thief's renew = %v", err)
	}
	// Exactly-once completion: both believe they ran the job; one commit
	// wins.
	if err := jl.CommitTerminal(rec.ID, Record{T: recDone, At: 2}); err != nil {
		t.Fatalf("first terminal commit: %v", err)
	}
	if err := jl.CommitTerminal(rec.ID, Record{T: recDone, At: 3}); !errors.Is(err, ErrAlreadyTerminal) {
		t.Fatalf("second terminal commit = %v, want ErrAlreadyTerminal", err)
	}
	if err := a.Release(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("lost holder's release = %v, want ErrLeaseLost", err)
	}
	if err := b.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashResumeByteIdentity is the crash-safety invariant: a job
// interrupted mid-ladder (simulating kill -9 after its second point, with
// the dead worker's stale lease left behind) and recovered by a fresh
// worker produces a final result document byte-identical to an
// uninterrupted run's — on both engines, with and without warm-start
// chaining, and with the checkpoint lagging the journal.
func TestCrashResumeByteIdentity(t *testing.T) {
	cases := []struct {
		name    string
		engine  string
		warm    bool
		ckptLag bool // drop the final checkpoint write: crash landed between point append and checkpoint
	}{
		{"event-cold", EngineEvent, false, false},
		{"event-warm", EngineEvent, true, false},
		{"slotted-cold", EngineSlotted, false, false},
		{"slotted-warm", EngineSlotted, true, false},
		{"slotted-warm-ckpt-lag", EngineSlotted, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rec := testJobRecord(t, "job-1", tc.engine, tc.warm)
			want := referenceDoc(t, rec)

			jl, err := OpenJournal(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := jl.Create(rec); err != nil {
				t.Fatal(err)
			}
			if err := jl.Append(rec.ID, Record{T: recRunning, At: time.Now().UnixNano(), Pid: 999999}); err != nil {
				t.Fatal(err)
			}
			// Run the job the way a worker would — journal each point,
			// checkpoint the chain — but "crash" after two of three points.
			crash := errors.New("simulated kill -9")
			completed := 0
			_, err = executeSweep(context.Background(), rec, testVersion, 0, resumeState{}, execHooks{
				point: func(i int, doc json.RawMessage, snaps [][]byte, rerun bool) error {
					if err := jl.Append(rec.ID, Record{T: recPoint, Point: i, Doc: doc}); err != nil {
						return err
					}
					if len(snaps) > 0 && !(tc.ckptLag && i == 1) {
						if err := jl.WriteCheckpoint(rec.ID, i, snaps); err != nil {
							return err
						}
					}
					completed++
					return nil
				},
				interrupted: func() error {
					if completed >= 2 {
						return crash
					}
					return nil
				},
			})
			if !errors.Is(err, crash) {
				t.Fatalf("simulated crash not reached: %v", err)
			}
			writeStaleLease(t, jl, rec.ID)

			// A fresh worker must requeue the orphan and resume it.
			cache, err := NewCache("", 8)
			if err != nil {
				t.Fatal(err)
			}
			wm := new(WorkerMetrics)
			w := NewWorker(WorkerConfig{
				Journal:  jl,
				Cache:    cache,
				Version:  testVersion,
				LeaseTTL: 200 * time.Millisecond,
				Poll:     10 * time.Millisecond,
				Backoff:  time.Millisecond,
				Metrics:  wm,
				Logf:     t.Logf,
			})
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() { defer close(done); w.Run(ctx) }()
			st := waitTerminal(t, jl, rec.ID, 30*time.Second)
			cancel()
			<-done

			if st.Status != StatusDone {
				t.Fatalf("recovered job status %q (%s)", st.Status, st.Error)
			}
			if st.Retry != 1 {
				t.Fatalf("recovered job retry = %d, want 1 (one crash-requeue)", st.Retry)
			}
			if wm.Requeued.Load() != 1 {
				t.Fatalf("requeued metric = %d, want 1", wm.Requeued.Load())
			}
			got, ok := cache.Get(rec.Key)
			if !ok {
				t.Fatal("recovered result not in cache")
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("crash-resumed document differs from uninterrupted run\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestTwoWorkersDrainExactlyOnce runs two concurrent workers over one
// shared queue: every job must complete, and complete exactly once (the
// completion counters across both workers sum to the job count).
func TestTwoWorkersDrainExactlyOnce(t *testing.T) {
	jl, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewCache("", 16)
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 6
	recs := make([]JobRecord, jobs)
	for i := range recs {
		spec := fmt.Sprintf(`{
			"name": "drain-%d",
			"topology": {"kind": "array", "n": 4},
			"pattern": {"kind": "uniform"},
			"loads": [0.3, 0.5],
			"horizon": 300,
			"warmup": 50,
			"replicas": 2,
			"seed": %d
		}`, i, 100+i)
		sc, err := workload.ParseScenario([]byte(spec))
		if err != nil {
			t.Fatal(err)
		}
		canonical := sc.Canonical()
		key, err := Key(canonical, EngineSlotted, testVersion)
		if err != nil {
			t.Fatal(err)
		}
		cj, _ := canonical.CanonicalJSON()
		recs[i] = JobRecord{ID: fmt.Sprintf("job-%d", i+1), Key: key, Engine: EngineSlotted, Scenario: cj, Submitted: time.Now().UnixNano()}
		if err := jl.Create(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	mA, mB := new(WorkerMetrics), new(WorkerMetrics)
	mk := func(m *WorkerMetrics) *Worker {
		return NewWorker(WorkerConfig{
			Journal: jl, Cache: cache, Version: testVersion,
			LeaseTTL: 2 * time.Second, Poll: 5 * time.Millisecond,
			Metrics: m, Logf: t.Logf,
		})
	}
	doneA, doneB := make(chan struct{}), make(chan struct{})
	go func() { defer close(doneA); mk(mA).Run(ctx) }()
	go func() { defer close(doneB); mk(mB).Run(ctx) }()
	for _, rec := range recs {
		st := waitTerminal(t, jl, rec.ID, 60*time.Second)
		if st.Status != StatusDone {
			t.Fatalf("job %s: status %q (%s)", rec.ID, st.Status, st.Error)
		}
	}
	cancel()
	<-doneA
	<-doneB
	if total := mA.Completed.Load() + mB.Completed.Load(); total != jobs {
		t.Fatalf("completions across workers = %d, want exactly %d", total, jobs)
	}
	for _, rec := range recs {
		if _, ok := cache.Get(rec.Key); !ok {
			t.Fatalf("job %s: result missing from cache", rec.ID)
		}
	}
}

// TestCancelQueuedAcrossRestart pins the durable DELETE path: a cancel of
// a queued job whose lease is momentarily held only writes the durable
// marker; after a server restart a worker honors the marker and commits
// the job canceled.
func TestCancelQueuedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{JournalDir: dir, Workers: -1})
	_, sr, _ := postSweep(t, ts, smallSubmit())
	if sr.ID == "" {
		t.Fatal("no job id")
	}
	// Hold the lease so DELETE cannot commit the cancel inline.
	hold, err := AcquireLease(s.journal.leaseDir(sr.ID), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+sr.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !s.journal.CancelRequested(sr.ID) {
		t.Fatal("cancel marker not written")
	}
	st, _ := s.journal.Replay(sr.ID)
	if st.Terminal() {
		t.Fatalf("job should still be queued while the lease is held, got %q", st.Status)
	}
	hold.Release()
	s.Close()

	// Restart with a worker; it must claim the job, see the marker, and
	// cancel instead of running.
	s2, _ := newTestServer(t, Config{JournalDir: dir, Workers: 1, LeaseTTL: 200 * time.Millisecond})
	st = waitTerminal(t, s2.journal, sr.ID, 30*time.Second)
	if st.Status != StatusCanceled {
		t.Fatalf("after restart: status %q, want canceled", st.Status)
	}
}

// TestRetryExhaustionFailsPermanent: a job that keeps crashing is
// requeued at most MaxRetries times, then committed failed-permanent.
func TestRetryExhaustionFailsPermanent(t *testing.T) {
	jl, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := testJobRecord(t, "job-1", EngineSlotted, false)
	if err := jl.Create(rec); err != nil {
		t.Fatal(err)
	}
	// The journal says: already crash-requeued 3 times, crashed again.
	if err := jl.Append(rec.ID, Record{T: recQueued, At: time.Now().UnixNano(), Retry: 3}); err != nil {
		t.Fatal(err)
	}
	if err := jl.Append(rec.ID, Record{T: recRunning, At: time.Now().UnixNano(), Pid: 999999}); err != nil {
		t.Fatal(err)
	}
	writeStaleLease(t, jl, rec.ID)
	cache, _ := NewCache("", 4)
	wm := new(WorkerMetrics)
	w := NewWorker(WorkerConfig{Journal: jl, Cache: cache, Version: testVersion, LeaseTTL: 100 * time.Millisecond, MaxRetries: 3, Metrics: wm, Logf: t.Logf})
	ran, err := w.scanOnce(context.Background())
	if err != nil || !ran {
		t.Fatalf("scanOnce = (%v, %v), want (true, nil)", ran, err)
	}
	st, err := jl.Replay(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusFailed || !strings.Contains(st.Error, "retries exhausted") {
		t.Fatalf("status %q error %q, want failed/retries exhausted", st.Status, st.Error)
	}
	if wm.Failed.Load() != 1 || wm.Requeued.Load() != 0 {
		t.Fatalf("metrics failed=%d requeued=%d, want 1/0", wm.Failed.Load(), wm.Requeued.Load())
	}
}

// TestDurableSSEResume: the durable event stream carries monotone ids and
// honors Last-Event-ID, so a reconnecting client sees exactly the events
// it missed — across server restarts, because ids are journal positions.
func TestDurableSSEResume(t *testing.T) {
	s, ts := newTestServer(t, Config{JournalDir: t.TempDir(), Workers: 1})
	_, sr, _ := postSweep(t, ts, smallSubmit())
	waitTerminal(t, s.journal, sr.ID, 60*time.Second)

	// Full stream: three points then done, ids 1..4.
	events, ids := readSSEIDs(t, ts, sr.ID, 0)
	checkPoints(t, events, 3, "done")
	for i, id := range ids {
		if id != i+1 {
			t.Fatalf("event ids = %v, want 1..4", ids)
		}
	}
	// Resume after event 2: only point 3 and the terminal frame.
	events, ids = readSSEIDs(t, ts, sr.ID, 2)
	if len(events) != 2 || events[0].Type != "point" || events[1].Type != "done" {
		t.Fatalf("resumed stream = %d events (%+v), want point+done", len(events), events)
	}
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 4 {
		t.Fatalf("resumed ids = %v, want [3 4]", ids)
	}
	var pd PointDoc
	if err := json.Unmarshal(events[0].Data, &pd); err != nil || pd.Index != 2 {
		t.Fatalf("resumed first point = %s", events[0].Data)
	}

	// The durable metrics surface exists.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, m := range []string{"sweepd_worker_drains_total", "sweepd_active_leases", "sweepd_jobs_requeued_total", "sweepd_queue_depth"} {
		if !strings.Contains(body.String(), m) {
			t.Fatalf("/metrics missing %s", m)
		}
	}
}

// readSSEIDs consumes an event stream (optionally resuming with
// Last-Event-ID) and returns the frames plus their ids.
func readSSEIDs(t *testing.T, ts *httptest.Server, id string, lastEventID int) ([]Event, []int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	var ids []int
	var cur Event
	curID := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &curID)
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.Type != "" {
				events = append(events, cur)
				ids = append(ids, curID)
				cur, curID = Event{}, 0
			}
		}
	}
	return events, ids
}

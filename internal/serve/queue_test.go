package serve

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func testJob(prio int) *Job {
	return newJob(fmt.Sprintf("t-%d", prio), "key", EngineEvent, prio, baseScenario(), context.Background())
}

func TestQueuePriorityAndFIFO(t *testing.T) {
	q := NewQueue(8)
	a := testJob(0)
	b := testJob(5)
	c := testJob(0)
	d := testJob(5)
	for _, j := range []*Job{a, b, c, d} {
		if err := q.Push(j); err != nil {
			t.Fatal(err)
		}
	}
	want := []*Job{b, d, a, c} // priority desc, then submission order
	for i, wj := range want {
		j, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d: queue closed early", i)
		}
		if j != wj {
			t.Fatalf("pop %d: got %s (prio %d), want %s", i, j.ID, j.Priority, wj.ID)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	q := NewQueue(2)
	if err := q.Push(testJob(0)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(testJob(0)); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(testJob(0)); err != ErrQueueFull {
		t.Fatalf("push beyond depth: got %v, want ErrQueueFull", err)
	}
	// Draining one slot readmits.
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if err := q.Push(testJob(0)); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
}

func TestQueueCloseUnblocksPop(t *testing.T) {
	q := NewQueue(2)
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Pop returned a job from an empty closed queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop did not unblock on Close")
	}
}

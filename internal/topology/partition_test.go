package topology

import (
	"testing"
)

func checkCovering(t *testing.T, net Network, ranges []NodeRange) {
	t.Helper()
	next := 0
	for i, r := range ranges {
		if r.Lo != next || r.Hi < r.Lo {
			t.Fatalf("range %d = %+v does not continue cover at %d", i, r, next)
		}
		next = r.Hi
	}
	if next != net.NumNodes() {
		t.Fatalf("ranges cover [0,%d), want [0,%d)", next, net.NumNodes())
	}
}

func TestPartitionRowAligned(t *testing.T) {
	for _, net := range []Network{NewArray2D(8), NewTorus2D(7)} {
		n := 0
		switch a := net.(type) {
		case *Array2D:
			n = a.N()
		case *Torus2D:
			n = a.N()
		}
		for shards := 1; shards <= 2*n; shards++ {
			ranges := Partition(net, shards)
			if len(ranges) != shards {
				t.Fatalf("%s shards=%d: got %d ranges", net.Name(), shards, len(ranges))
			}
			checkCovering(t, net, ranges)
			for i, r := range ranges {
				if r.Lo%n != 0 || r.Hi%n != 0 {
					t.Errorf("%s shards=%d range %d = %+v not row-aligned", net.Name(), shards, i, r)
				}
			}
		}
	}
}

func TestPartitionMoreShardsThanRows(t *testing.T) {
	// 8 shards over a 5-row array: every row lands somewhere, the surplus
	// tiles are empty, and nothing panics.
	a := NewArray2D(5)
	ranges := Partition(a, 8)
	checkCovering(t, a, ranges)
	empty := 0
	for _, r := range ranges {
		if r.Len() == 0 {
			empty++
		}
	}
	if empty != 3 {
		t.Errorf("want 3 empty tiles for 8 shards over 5 rows, got %d", empty)
	}
}

func TestPartitionGenericIndexRanges(t *testing.T) {
	for _, net := range []Network{NewArrayKD(7, 13), NewHypercube(5), NewButterfly(3)} {
		for _, shards := range []int{1, 2, 3, 8} {
			ranges := Partition(net, shards)
			checkCovering(t, net, ranges)
			// Balanced to within one node.
			min, max := net.NumNodes(), 0
			for _, r := range ranges {
				if r.Len() < min {
					min = r.Len()
				}
				if r.Len() > max {
					max = r.Len()
				}
			}
			if max-min > 1 {
				t.Errorf("%s shards=%d: range sizes spread %d..%d", net.Name(), shards, min, max)
			}
		}
	}
}

func TestRangeOf(t *testing.T) {
	a := NewArray2D(6)
	for _, shards := range []int{1, 2, 3, 4, 8} {
		ranges := Partition(a, shards)
		for v := 0; v < a.NumNodes(); v++ {
			i := RangeOf(ranges, v)
			if !ranges[i].Contains(v) {
				t.Fatalf("shards=%d: RangeOf(%d) = %d, range %+v", shards, v, i, ranges[i])
			}
		}
	}
}

func TestCrossEdgesArrayBands(t *testing.T) {
	// A band boundary on an n×n array cuts exactly 2n vertical edges
	// (n Down crossing forward, n Up crossing back); rows never cross.
	a := NewArray2D(6)
	ranges := Partition(a, 3)
	cross := CrossEdges(a, ranges)
	if want := 2 * 6 * 2; len(cross) != want { // 2 interior boundaries
		t.Fatalf("6x6 in 3 bands: %d cross edges, want %d", len(cross), want)
	}
	for _, e := range cross {
		_, _, d := a.EdgeInfo(e)
		if d == Right || d == Left {
			t.Errorf("horizontal edge %d reported as crossing a row band", e)
		}
		if RangeOf(ranges, a.EdgeFrom(e)) == RangeOf(ranges, a.EdgeTo(e)) {
			t.Errorf("edge %d does not actually cross", e)
		}
	}
}

func TestCrossEdgesBruteForceAgreement(t *testing.T) {
	for _, net := range []Network{NewTorus2D(5), NewArrayKD(3, 4), NewHypercube(4)} {
		ranges := Partition(net, 3)
		got := CrossEdges(net, ranges)
		idx := 0
		for e := 0; e < net.NumEdges(); e++ {
			crosses := RangeOf(ranges, net.EdgeFrom(e)) != RangeOf(ranges, net.EdgeTo(e))
			inList := idx < len(got) && got[idx] == e
			if inList {
				idx++
			}
			if crosses != inList {
				t.Fatalf("%s edge %d: crosses=%v inList=%v", net.Name(), e, crosses, inList)
			}
		}
	}
}

func TestPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Partition(0) did not panic")
		}
	}()
	Partition(NewArray2D(4), 0)
}

// TestBoundaryDistanceRowsVsBFS pins the fast path: on the 2-D array and
// torus with row-aligned plans, the row-arithmetic distances must equal
// what the generic multi-source BFS computes — including the torus's
// wraparound cut between the last band and band 0, single-band plans
// (everything BoundaryInf), and more shards than rows.
func TestBoundaryDistanceRowsVsBFS(t *testing.T) {
	nets := []Network{
		NewArray2D(4), NewArray2D(9), NewArray2D(13),
		NewTorus2D(4), NewTorus2D(9), NewTorus2D(13),
	}
	for _, net := range nets {
		for _, shards := range []int{1, 2, 3, 5, 8, 20} {
			ranges := Partition(net, shards)
			rows, width, ok := rowsOf(net)
			if !ok || !rowAligned(ranges, width) {
				t.Fatalf("%s/%d: Partition did not produce a row-aligned plan", net.Name(), shards)
			}
			_, wrap := net.(*Torus2D)
			fast := boundaryDistanceRows(ranges, rows, width, wrap)
			slow := boundaryDistanceBFS(net, ranges)
			for v := range slow {
				if fast[v] != slow[v] {
					t.Fatalf("%s shards=%d node %d: rows=%d bfs=%d", net.Name(), shards, v, fast[v], slow[v])
				}
			}
		}
	}
}

// TestBoundaryDistanceValues spot-checks semantics the equivalence test
// cannot: distance 0 exactly at cross-edge endpoints, BoundaryInf on the
// single-tile plan, and the BFS path on a non-row topology.
func TestBoundaryDistanceValues(t *testing.T) {
	a := NewArray2D(6)
	one := BoundaryDistance(a, Partition(a, 1))
	for v, d := range one {
		if d != BoundaryInf {
			t.Fatalf("single-tile plan: node %d has finite distance %d", v, d)
		}
	}
	two := BoundaryDistance(a, Partition(a, 2))
	for v, d := range two {
		row := v / 6
		want := int32(2 - row)
		if row >= 3 {
			want = int32(row - 3)
		}
		if d != want {
			t.Fatalf("6x6/2: node %d (row %d) distance %d, want %d", v, row, d, want)
		}
	}
	h := NewHypercube(4)
	hd := BoundaryDistance(h, Partition(h, 2))
	for v, d := range hd {
		// Halves of a hypercube differ in the top bit; every node has a
		// neighbor across it, so the whole cube is boundary.
		if d != 0 {
			t.Fatalf("cube: node %d distance %d, want 0", v, d)
		}
	}
}

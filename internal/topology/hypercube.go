package topology

import "fmt"

// Hypercube is the d-dimensional binary cube of §4.5: 2^d nodes labeled by
// d-bit strings, with a pair of directed edges between nodes differing in
// exactly one bit. Greedy routing corrects bits in canonical order, which is
// Markovian and layered, so both the paper's upper and lower bounds apply.
//
// Edge ids are dense in [0, d·2^d): id = dim*2^d + node for the edge that
// leaves node by flipping bit dim.
type Hypercube struct {
	d int
}

// NewHypercube creates a d-dimensional cube, 1 <= d <= 30.
func NewHypercube(d int) *Hypercube {
	if d < 1 || d > 30 {
		panic("topology: Hypercube requires 1 <= d <= 30")
	}
	return &Hypercube{d: d}
}

// D returns the dimension.
func (h *Hypercube) D() int { return h.d }

// Name implements Network.
func (h *Hypercube) Name() string { return fmt.Sprintf("hypercube(%d)", h.d) }

// NumNodes implements Network.
func (h *Hypercube) NumNodes() int { return 1 << h.d }

// NumEdges implements Network.
func (h *Hypercube) NumEdges() int { return h.d << h.d }

// EdgeIn returns the id of the edge leaving node by flipping bit dim.
func (h *Hypercube) EdgeIn(node, dim int) int { return dim<<h.d + node }

// EdgeInfo decodes edge id e into its source node and dimension.
func (h *Hypercube) EdgeInfo(e int) (node, dim int) {
	if e < 0 || e >= h.NumEdges() {
		panic(fmt.Sprintf("topology: edge %d out of range for %s", e, h.Name()))
	}
	return e & (1<<h.d - 1), e >> h.d
}

// EdgeFrom implements Network.
func (h *Hypercube) EdgeFrom(e int) int {
	node, _ := h.EdgeInfo(e)
	return node
}

// EdgeTo implements Network.
func (h *Hypercube) EdgeTo(e int) int {
	node, dim := h.EdgeInfo(e)
	return node ^ (1 << dim)
}

// Distance returns the Hamming distance between two nodes.
func (h *Hypercube) Distance(src, dst int) int {
	x := src ^ dst
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

// Butterfly is the d-level butterfly of §4.5: levels 0..d each containing
// 2^d nodes; a node (l, r) with l < d has a "straight" edge to (l+1, r) and
// a "cross" edge to (l+1, r XOR 2^l). Packets enter at level 0 and exit at
// level d, so every packet crosses exactly d edges, and by symmetry every
// edge carries rate λ/2 — all queues saturate together.
//
// Node ids: id = level*2^d + row. Edge ids are dense in [0, 2d·2^d):
// id = 2*(level*2^d + row) + b with b = 0 straight, b = 1 cross.
type Butterfly struct {
	d int
}

// NewButterfly creates a butterfly with d >= 1 levels of edges.
func NewButterfly(d int) *Butterfly {
	if d < 1 || d > 28 {
		panic("topology: Butterfly requires 1 <= d <= 28")
	}
	return &Butterfly{d: d}
}

// D returns the number of edge levels.
func (b *Butterfly) D() int { return b.d }

// Rows returns the number of rows, 2^d.
func (b *Butterfly) Rows() int { return 1 << b.d }

// Name implements Network.
func (b *Butterfly) Name() string { return fmt.Sprintf("butterfly(%d)", b.d) }

// NumNodes implements Network.
func (b *Butterfly) NumNodes() int { return (b.d + 1) << b.d }

// NumEdges implements Network.
func (b *Butterfly) NumEdges() int { return 2 * b.d << b.d }

// Node returns the node id of (level, row).
func (b *Butterfly) Node(level, row int) int { return level<<b.d + row }

// NodeInfo returns the (level, row) of a node id.
func (b *Butterfly) NodeInfo(node int) (level, row int) {
	return node >> b.d, node & (1<<b.d - 1)
}

// EdgeIn returns the id of the edge leaving (level, row); cross selects the
// bit-flipping edge.
func (b *Butterfly) EdgeIn(level, row int, cross bool) int {
	e := 2 * b.Node(level, row)
	if cross {
		e++
	}
	return e
}

// EdgeInfo decodes edge id e.
func (b *Butterfly) EdgeInfo(e int) (level, row int, cross bool) {
	if e < 0 || e >= b.NumEdges() {
		panic(fmt.Sprintf("topology: edge %d out of range for %s", e, b.Name()))
	}
	level, row = b.NodeInfo(e / 2)
	return level, row, e%2 == 1
}

// EdgeFrom implements Network.
func (b *Butterfly) EdgeFrom(e int) int { return e / 2 }

// EdgeTo implements Network.
func (b *Butterfly) EdgeTo(e int) int {
	level, row, cross := b.EdgeInfo(e)
	if cross {
		row ^= 1 << level
	}
	return b.Node(level+1, row)
}

// SourceNodes implements SourceSet: packets enter only at level 0.
func (b *Butterfly) SourceNodes() []int {
	nodes := make([]int, b.Rows())
	for r := range nodes {
		nodes[r] = b.Node(0, r)
	}
	return nodes
}

// OutputNodes returns the level-d exit nodes.
func (b *Butterfly) OutputNodes() []int {
	nodes := make([]int, b.Rows())
	for r := range nodes {
		nodes[r] = b.Node(b.d, r)
	}
	return nodes
}

package topology

import (
	"testing"
	"testing/quick"
)

// checkDenseEdges verifies that edge ids are dense, decode to valid
// endpoints, and that every EdgeIn-style encoding round-trips.
func checkDenseEdges(t *testing.T, net Network) {
	t.Helper()
	seen := make(map[[2]int]int)
	for e := 0; e < net.NumEdges(); e++ {
		from, to := net.EdgeFrom(e), net.EdgeTo(e)
		if from < 0 || from >= net.NumNodes() || to < 0 || to >= net.NumNodes() {
			t.Fatalf("%s: edge %d has endpoints (%d,%d) out of range", net.Name(), e, from, to)
		}
		if from == to {
			t.Fatalf("%s: edge %d is a self-loop at %d", net.Name(), e, from)
		}
		key := [2]int{from, to}
		if prev, dup := seen[key]; dup {
			t.Fatalf("%s: duplicate edge %d->%d (ids %d and %d)", net.Name(), from, to, prev, e)
		}
		seen[key] = e
	}
}

func TestArray2DEdgeCountAndDensity(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		a := NewArray2D(n)
		if got, want := a.NumEdges(), 4*n*(n-1); got != want {
			t.Errorf("n=%d: NumEdges = %d, want %d", n, got, want)
		}
		if got, want := a.NumNodes(), n*n; got != want {
			t.Errorf("n=%d: NumNodes = %d, want %d", n, got, want)
		}
		checkDenseEdges(t, a)
	}
}

func TestArray2DEdgeRoundTrip(t *testing.T) {
	a := NewArray2D(6)
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			for d := Right; d < numDirs; d++ {
				e, ok := a.EdgeIn(r, c, d)
				wantOK := !(d == Right && c == 5 || d == Left && c == 0 ||
					d == Down && r == 5 || d == Up && r == 0)
				if ok != wantOK {
					t.Fatalf("EdgeIn(%d,%d,%v) ok = %v, want %v", r, c, d, ok, wantOK)
				}
				if !ok {
					continue
				}
				gr, gc, gd := a.EdgeInfo(e)
				if gr != r || gc != c || gd != d {
					t.Fatalf("EdgeInfo(%d) = (%d,%d,%v), want (%d,%d,%v)", e, gr, gc, gd, r, c, d)
				}
				if a.EdgeFrom(e) != a.Node(r, c) {
					t.Fatalf("EdgeFrom mismatch for %d", e)
				}
			}
		}
	}
}

func TestArray2DEdgeToNeighbors(t *testing.T) {
	a := NewArray2D(4)
	e, ok := a.EdgeIn(1, 2, Right)
	if !ok || a.EdgeTo(e) != a.Node(1, 3) {
		t.Error("Right edge target wrong")
	}
	e, ok = a.EdgeIn(1, 2, Left)
	if !ok || a.EdgeTo(e) != a.Node(1, 1) {
		t.Error("Left edge target wrong")
	}
	e, ok = a.EdgeIn(1, 2, Down)
	if !ok || a.EdgeTo(e) != a.Node(2, 2) {
		t.Error("Down edge target wrong")
	}
	e, ok = a.EdgeIn(1, 2, Up)
	if !ok || a.EdgeTo(e) != a.Node(0, 2) {
		t.Error("Up edge target wrong")
	}
}

func TestArray2DLayerLabelRanges(t *testing.T) {
	// Row edges must have labels in [1, n-1]; column edges in [n, 2n-2],
	// which is what makes "rows before columns" a valid layering.
	for _, n := range []int{3, 4, 7} {
		a := NewArray2D(n)
		for e := 0; e < a.NumEdges(); e++ {
			_, _, d := a.EdgeInfo(e)
			l := a.LayerLabel(e)
			if d == Right || d == Left {
				if l < 1 || l > n-1 {
					t.Fatalf("n=%d row edge %d label %d out of [1,%d]", n, e, l, n-1)
				}
			} else if l < n || l > 2*n-2 {
				t.Fatalf("n=%d column edge %d label %d out of [%d,%d]", n, e, l, n, 2*n-2)
			}
		}
	}
}

func TestArray2DLayerLabelPaperTable(t *testing.T) {
	// Spot-check the paper's label table for n=4 in 1-based coordinates:
	// ((i,j),(i,j+1)) -> j, ((i,j+1),(i,j)) -> n-j,
	// ((i,j),(i+1,j)) -> n+i-1, ((i+1,j),(i,j)) -> 2n-i-1.
	a := NewArray2D(4)
	cases := []struct {
		r, c  int // 0-based source
		d     Dir
		label int
	}{
		{0, 0, Right, 1}, // (1,1)->(1,2): j=1
		{0, 2, Right, 3}, // (1,3)->(1,4): j=3
		{0, 1, Left, 3},  // (1,2)->(1,1): n-j = 4-1
		{0, 3, Left, 1},  // (1,4)->(1,3): n-j = 4-3
		{0, 0, Down, 4},  // (1,1)->(2,1): n+i-1 = 4+1-1
		{2, 0, Down, 6},  // (3,1)->(4,1): 4+3-1
		{1, 0, Up, 6},    // (2,1)->(1,1): 2n-i-1 = 8-1-1
		{3, 0, Up, 4},    // (4,1)->(3,1): 8-3-1
	}
	for _, c := range cases {
		e, ok := a.EdgeIn(c.r, c.c, c.d)
		if !ok {
			t.Fatalf("edge (%d,%d,%v) missing", c.r, c.c, c.d)
		}
		if got := a.LayerLabel(e); got != c.label {
			t.Errorf("label (%d,%d,%v) = %d, want %d", c.r, c.c, c.d, got, c.label)
		}
	}
}

func TestArray2DDistance(t *testing.T) {
	a := NewArray2D(5)
	if got := a.Distance(a.Node(0, 0), a.Node(4, 4)); got != 8 {
		t.Errorf("corner distance = %d, want 8", got)
	}
	if got := a.Distance(a.Node(2, 2), a.Node(2, 2)); got != 0 {
		t.Errorf("self distance = %d", got)
	}
}

func TestLinear(t *testing.T) {
	l := NewLinear(5)
	if l.NumEdges() != 8 {
		t.Fatalf("NumEdges = %d, want 8", l.NumEdges())
	}
	checkDenseEdges(t, l)
	for i := 0; i < 4; i++ {
		e := l.EdgeRight(i)
		if l.EdgeFrom(e) != i || l.EdgeTo(e) != i+1 {
			t.Errorf("right edge %d: %d->%d", e, l.EdgeFrom(e), l.EdgeTo(e))
		}
	}
	for i := 1; i < 5; i++ {
		e := l.EdgeLeft(i)
		if l.EdgeFrom(e) != i || l.EdgeTo(e) != i-1 {
			t.Errorf("left edge %d: %d->%d", e, l.EdgeFrom(e), l.EdgeTo(e))
		}
	}
}

func TestTorus2D(t *testing.T) {
	tor := NewTorus2D(4)
	if tor.NumEdges() != 64 {
		t.Fatalf("NumEdges = %d, want 64", tor.NumEdges())
	}
	checkDenseEdges(t, tor)
	// Wraparound targets.
	e := tor.EdgeIn(0, 3, Right)
	if tor.EdgeTo(e) != tor.Node(0, 0) {
		t.Error("right wrap broken")
	}
	e = tor.EdgeIn(0, 0, Up)
	if tor.EdgeTo(e) != tor.Node(3, 0) {
		t.Error("up wrap broken")
	}
	// Every node has out-degree 4.
	deg := make(map[int]int)
	for e := 0; e < tor.NumEdges(); e++ {
		deg[tor.EdgeFrom(e)]++
	}
	for node, d := range deg {
		if d != 4 {
			t.Errorf("node %d out-degree %d", node, d)
		}
	}
}

func TestWrapDist(t *testing.T) {
	plus, minus := WrapDist(1, 3, 5)
	if plus != 2 || minus != 3 {
		t.Errorf("WrapDist(1,3,5) = (%d,%d)", plus, minus)
	}
	plus, minus = WrapDist(3, 1, 5)
	if plus != 3 || minus != 2 {
		t.Errorf("WrapDist(3,1,5) = (%d,%d)", plus, minus)
	}
	plus, minus = WrapDist(2, 2, 5)
	if plus != 0 || minus != 0 {
		t.Errorf("WrapDist(2,2,5) = (%d,%d)", plus, minus)
	}
}

func TestHypercube(t *testing.T) {
	h := NewHypercube(4)
	if h.NumNodes() != 16 || h.NumEdges() != 64 {
		t.Fatalf("sizes: %d nodes, %d edges", h.NumNodes(), h.NumEdges())
	}
	checkDenseEdges(t, h)
	for node := 0; node < h.NumNodes(); node++ {
		for dim := 0; dim < 4; dim++ {
			e := h.EdgeIn(node, dim)
			gn, gd := h.EdgeInfo(e)
			if gn != node || gd != dim {
				t.Fatalf("EdgeInfo(%d) = (%d,%d), want (%d,%d)", e, gn, gd, node, dim)
			}
			if h.EdgeTo(e) != node^(1<<dim) {
				t.Fatalf("EdgeTo(%d) = %d", e, h.EdgeTo(e))
			}
		}
	}
	if h.Distance(0b0000, 0b1011) != 3 {
		t.Error("Hamming distance wrong")
	}
}

func TestButterfly(t *testing.T) {
	b := NewButterfly(3)
	if b.NumNodes() != 32 || b.NumEdges() != 48 {
		t.Fatalf("sizes: %d nodes, %d edges", b.NumNodes(), b.NumEdges())
	}
	checkDenseEdges(t, b)
	// Straight edge keeps the row; cross edge flips bit `level`.
	for level := 0; level < 3; level++ {
		for row := 0; row < b.Rows(); row++ {
			es := b.EdgeIn(level, row, false)
			if b.EdgeTo(es) != b.Node(level+1, row) {
				t.Fatalf("straight edge (%d,%d) wrong target", level, row)
			}
			ec := b.EdgeIn(level, row, true)
			if b.EdgeTo(ec) != b.Node(level+1, row^(1<<level)) {
				t.Fatalf("cross edge (%d,%d) wrong target", level, row)
			}
			gl, gr, gc := b.EdgeInfo(ec)
			if gl != level || gr != row || !gc {
				t.Fatalf("EdgeInfo round-trip failed for (%d,%d,cross)", level, row)
			}
		}
	}
	if len(b.SourceNodes()) != 8 || len(b.OutputNodes()) != 8 {
		t.Error("source/output sets wrong size")
	}
	for _, s := range b.SourceNodes() {
		if l, _ := b.NodeInfo(s); l != 0 {
			t.Errorf("source node %d not at level 0", s)
		}
	}
}

func TestSources(t *testing.T) {
	a := NewArray2D(3)
	if got := Sources(a); len(got) != 9 || got[0] != 0 || got[8] != 8 {
		t.Errorf("array sources = %v", got)
	}
	b := NewButterfly(2)
	if got := Sources(b); len(got) != 4 {
		t.Errorf("butterfly sources = %v", got)
	}
}

func TestArrayKDMatchesArray2D(t *testing.T) {
	// A 2-dimensional ArrayKD must be graph-isomorphic to Array2D under the
	// identity on node ids (same row-major layout).
	n := 5
	a2 := NewArray2D(n)
	ak := NewArrayKD(n, n)
	if ak.NumNodes() != a2.NumNodes() || ak.NumEdges() != a2.NumEdges() {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d edges",
			ak.NumNodes(), a2.NumNodes(), ak.NumEdges(), a2.NumEdges())
	}
	edges2 := make(map[[2]int]bool)
	for e := 0; e < a2.NumEdges(); e++ {
		edges2[[2]int{a2.EdgeFrom(e), a2.EdgeTo(e)}] = true
	}
	for e := 0; e < ak.NumEdges(); e++ {
		key := [2]int{ak.EdgeFrom(e), ak.EdgeTo(e)}
		if !edges2[key] {
			t.Fatalf("ArrayKD edge %v not in Array2D", key)
		}
	}
}

func TestArrayKDEdgeRoundTrip(t *testing.T) {
	a := NewArrayKD(3, 4, 2)
	checkDenseEdges(t, a)
	buf := make([]int, 3)
	for node := 0; node < a.NumNodes(); node++ {
		coords := a.Coords(node, buf)
		if a.Node(coords...) != node {
			t.Fatalf("coords round-trip failed for node %d", node)
		}
		for m := 0; m < a.K(); m++ {
			for _, plus := range []bool{true, false} {
				e, ok := a.EdgeStep(node, m, plus)
				atEdge := plus && coords[m] == a.Size(m)-1 || !plus && coords[m] == 0
				if ok == atEdge {
					t.Fatalf("EdgeStep(%d,%d,%v) ok=%v at coords %v", node, m, plus, ok, coords)
				}
				if !ok {
					continue
				}
				dim, gp, from := a.EdgeInfo(e)
				if dim != m || gp != plus || from != node {
					t.Fatalf("EdgeInfo(%d) = (%d,%v,%d), want (%d,%v,%d)", e, dim, gp, from, m, plus, node)
				}
				to := a.EdgeTo(e)
				if a.Distance(node, to) != 1 {
					t.Fatalf("edge %d does not connect neighbors", e)
				}
			}
		}
	}
}

func TestArrayKDDistanceQuick(t *testing.T) {
	a := NewArrayKD(4, 5, 3)
	f := func(s, d uint16) bool {
		src := int(s) % a.NumNodes()
		dst := int(d) % a.NumNodes()
		cs := a.Coords(src, nil)
		cd := a.Coords(dst, nil)
		want := 0
		for m := range cs {
			want += abs(cs[m] - cd[m])
		}
		return a.Distance(src, dst) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFindEdgeAndValidatePath(t *testing.T) {
	a := NewArray2D(3)
	e, ok := FindEdge(a, a.Node(0, 0), a.Node(0, 1))
	if !ok || a.EdgeFrom(e) != a.Node(0, 0) {
		t.Fatal("FindEdge failed")
	}
	if _, ok := FindEdge(a, a.Node(0, 0), a.Node(2, 2)); ok {
		t.Fatal("FindEdge found a non-edge")
	}
	e2, _ := FindEdge(a, a.Node(0, 1), a.Node(1, 1))
	if err := ValidatePath(a, a.Node(0, 0), a.Node(1, 1), []int{e, e2}); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := ValidatePath(a, a.Node(0, 0), a.Node(1, 1), []int{e2, e}); err == nil {
		t.Error("disconnected path accepted")
	}
	if err := ValidatePath(a, a.Node(0, 0), a.Node(0, 0), nil); err != nil {
		t.Errorf("empty self path rejected: %v", err)
	}
	if err := ValidatePath(a, a.Node(0, 0), a.Node(0, 1), nil); err == nil {
		t.Error("empty non-self path accepted")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"array2d":   func() { NewArray2D(1) },
		"linear":    func() { NewLinear(1) },
		"torus":     func() { NewTorus2D(2) },
		"hypercube": func() { NewHypercube(0) },
		"butterfly": func() { NewButterfly(0) },
		"arraykd":   func() { NewArrayKD(3, 1) },
		"arraykd0":  func() { NewArrayKD() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDirString(t *testing.T) {
	names := map[Dir]string{Right: "right", Left: "left", Down: "down", Up: "up"}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("Dir(%d).String() = %q", int(d), d.String())
		}
	}
}

// Package topology defines the directed-graph network models the paper
// analyzes: the n×n array (mesh) at its center, plus the linear array,
// k-dimensional array, 2-D torus, hypercube, and butterfly used by the
// lower-bound comparisons and extensions (§4.5, §5.2, §6).
//
// Every topology exposes a dense edge indexing (edge ids in [0, NumEdges)),
// which the simulator and the analytic packages use for per-edge state
// arrays, and a dense node indexing (node ids in [0, NumNodes)).
package topology

import "fmt"

// Network is the minimal graph view shared by all topologies. Edge ids and
// node ids are dense, starting at 0. Implementations also provide typed
// coordinate helpers; routing code uses those directly.
type Network interface {
	// Name identifies the topology, e.g. "array2d(8)".
	Name() string
	// NumNodes returns the number of nodes.
	NumNodes() int
	// NumEdges returns the number of directed edges.
	NumEdges() int
	// EdgeFrom returns the source node of edge e.
	EdgeFrom(e int) int
	// EdgeTo returns the destination node of edge e.
	EdgeTo(e int) int
}

// SourceSet optionally restricts where external packets enter a network.
// Topologies where every node is a source (array, torus, cube) do not
// implement it; the butterfly restricts entry to its level-0 nodes.
type SourceSet interface {
	// SourceNodes returns the node ids at which packets may be generated.
	SourceNodes() []int
}

// Sources returns the nodes at which external packets enter net: the
// topology's SourceNodes if it implements SourceSet, else all nodes.
func Sources(net Network) []int {
	if ss, ok := net.(SourceSet); ok {
		return ss.SourceNodes()
	}
	nodes := make([]int, net.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

// Restrict wraps a network so that external packets enter only at the given
// nodes. It is how single-source scenarios (e.g. the tandem line that shows
// Theorem 10's bound is tight) are expressed without changing the graph.
type Restrict struct {
	Network
	Nodes []int
}

// SourceNodes implements SourceSet.
func (r Restrict) SourceNodes() []int { return r.Nodes }

// CheckEdge panics if e is out of range for net. It exists so that routing
// bugs surface at the point of generation rather than as corrupt simulator
// state.
func CheckEdge(net Network, e int) {
	if e < 0 || e >= net.NumEdges() {
		panic(fmt.Sprintf("topology: edge %d out of range [0,%d) for %s", e, net.NumEdges(), net.Name()))
	}
}

// FindEdge scans for the directed edge from->to and reports whether it
// exists. It is O(NumEdges) and intended for tests and validation, not the
// simulation fast path.
func FindEdge(net Network, from, to int) (int, bool) {
	for e := 0; e < net.NumEdges(); e++ {
		if net.EdgeFrom(e) == from && net.EdgeTo(e) == to {
			return e, true
		}
	}
	return 0, false
}

// ValidatePath reports an error if edges is not a contiguous directed path
// in net from src to dst. A nil path is valid only when src == dst.
func ValidatePath(net Network, src, dst int, edges []int) error {
	cur := src
	for i, e := range edges {
		if e < 0 || e >= net.NumEdges() {
			return fmt.Errorf("hop %d: edge %d out of range", i, e)
		}
		if net.EdgeFrom(e) != cur {
			return fmt.Errorf("hop %d: edge %d starts at %d, want %d", i, e, net.EdgeFrom(e), cur)
		}
		cur = net.EdgeTo(e)
	}
	if cur != dst {
		return fmt.Errorf("path ends at node %d, want %d", cur, dst)
	}
	return nil
}

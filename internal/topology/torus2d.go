package topology

import "fmt"

// Torus2D is the n×n toroidal mesh of §6: like Array2D but with wraparound
// edges, so every node has all four outgoing edges. The torus cannot be
// layered (it contains directed rings), so the paper's upper bound does not
// apply; the lower bounds and the simulator do.
//
// Edge ids are dense in [0, 4n²): id = dir*n² + node, with dir ordered
// Right, Left, Down, Up as in Array2D.
type Torus2D struct {
	n    int
	divN fastDiv
}

// NewTorus2D creates an n×n torus. n must be at least 3 so that the two
// neighbors of a node in a ring are distinct.
func NewTorus2D(n int) *Torus2D {
	if n < 3 {
		panic("topology: Torus2D requires n >= 3")
	}
	return &Torus2D{n: n, divN: newFastDiv(n)}
}

// N returns the side length.
func (t *Torus2D) N() int { return t.n }

// Name implements Network.
func (t *Torus2D) Name() string { return fmt.Sprintf("torus2d(%d)", t.n) }

// NumNodes implements Network.
func (t *Torus2D) NumNodes() int { return t.n * t.n }

// NumEdges implements Network.
func (t *Torus2D) NumEdges() int { return 4 * t.n * t.n }

// Node returns the node id of (row, col).
func (t *Torus2D) Node(row, col int) int { return row*t.n + col }

// Coords returns the (row, col) of a node id.
func (t *Torus2D) Coords(node int) (row, col int) { return t.divN.DivMod(node) }

// EdgeIn returns the id of the edge leaving (row, col) in direction d.
// On a torus the edge always exists.
func (t *Torus2D) EdgeIn(row, col int, d Dir) int {
	return int(d)*t.n*t.n + t.Node(row, col)
}

// EdgeInfo decodes edge id e into its direction and source coordinates.
func (t *Torus2D) EdgeInfo(e int) (row, col int, d Dir) {
	nn := t.n * t.n
	if e < 0 || e >= 4*nn {
		panic(fmt.Sprintf("topology: edge %d out of range for %s", e, t.Name()))
	}
	d = Dir(e / nn)
	row, col = t.Coords(e % nn)
	return row, col, d
}

// EdgeFrom implements Network.
func (t *Torus2D) EdgeFrom(e int) int { return e % (t.n * t.n) }

// EdgeTo implements Network.
func (t *Torus2D) EdgeTo(e int) int {
	row, col, d := t.EdgeInfo(e)
	n := t.n
	switch d {
	case Right:
		return t.Node(row, (col+1)%n)
	case Left:
		return t.Node(row, (col+n-1)%n)
	case Down:
		return t.Node((row+1)%n, col)
	default:
		return t.Node((row+n-1)%n, col)
	}
}

// WrapDist returns the directed ring distances (going "plus", i.e. right or
// down, and going "minus") from a to b on a ring of size n.
func WrapDist(a, b, n int) (plus, minus int) {
	plus = ((b-a)%n + n) % n
	return plus, (n - plus) % n
}

package topology

import "fmt"

// ArrayKD is the k-dimensional array of §5.2, generalizing Array2D. Sizes
// may differ per dimension (the paper notes rectangular arrays are handled
// the same way). Nodes are indexed row-major with dimension 0 most
// significant.
//
// Edge ids are dense: for each dimension m there is a "plus" group
// (coord[m] -> coord[m]+1) and a "minus" group, each containing one edge per
// (line, position) pair, where a line fixes every coordinate except m.
type ArrayKD struct {
	sizes   []int
	strides []int
	nodes   int
	groups  []kdGroup
	edges   int

	// divStride[m], divSize[m] and divLine[m] are reciprocal dividers for
	// strides[m], sizes[m] and strides[m]·sizes[m]; Coord, Distance and
	// EdgeStep run on the routing hot path.
	divStride []fastDiv
	divSize   []fastDiv
	divLine   []fastDiv
}

type kdGroup struct {
	dim    int
	plus   bool
	offset int
	count  int
}

// NewArrayKD creates an array with the given per-dimension sizes, each >= 2.
func NewArrayKD(sizes ...int) *ArrayKD {
	if len(sizes) == 0 {
		panic("topology: ArrayKD requires at least one dimension")
	}
	a := &ArrayKD{sizes: append([]int(nil), sizes...)}
	a.nodes = 1
	for _, s := range sizes {
		if s < 2 {
			panic("topology: ArrayKD requires every size >= 2")
		}
		a.nodes *= s
	}
	a.strides = make([]int, len(sizes))
	stride := 1
	for m := len(sizes) - 1; m >= 0; m-- {
		a.strides[m] = stride
		stride *= sizes[m]
	}
	offset := 0
	for m := range sizes {
		count := (sizes[m] - 1) * (a.nodes / sizes[m])
		a.groups = append(a.groups,
			kdGroup{dim: m, plus: true, offset: offset, count: count},
			kdGroup{dim: m, plus: false, offset: offset + count, count: count})
		offset += 2 * count
	}
	a.edges = offset
	a.divStride = make([]fastDiv, len(sizes))
	a.divSize = make([]fastDiv, len(sizes))
	a.divLine = make([]fastDiv, len(sizes))
	for m := range sizes {
		a.divStride[m] = newFastDiv(a.strides[m])
		a.divSize[m] = newFastDiv(sizes[m])
		a.divLine[m] = newFastDiv(a.strides[m] * sizes[m])
	}
	return a
}

// K returns the number of dimensions.
func (a *ArrayKD) K() int { return len(a.sizes) }

// Size returns the extent of dimension m.
func (a *ArrayKD) Size(m int) int { return a.sizes[m] }

// Name implements Network.
func (a *ArrayKD) Name() string { return fmt.Sprintf("arraykd%v", a.sizes) }

// NumNodes implements Network.
func (a *ArrayKD) NumNodes() int { return a.nodes }

// NumEdges implements Network.
func (a *ArrayKD) NumEdges() int { return a.edges }

// Node returns the node id for the given coordinates.
func (a *ArrayKD) Node(coords ...int) int {
	if len(coords) != len(a.sizes) {
		panic("topology: wrong coordinate count")
	}
	id := 0
	for m, c := range coords {
		if c < 0 || c >= a.sizes[m] {
			panic(fmt.Sprintf("topology: coordinate %d out of range for dim %d", c, m))
		}
		id += c * a.strides[m]
	}
	return id
}

// Coord returns node's coordinate in dimension m without materializing the
// full coordinate vector; it is the allocation-free form routing hot paths
// use.
func (a *ArrayKD) Coord(node, m int) int {
	return a.divSize[m].Mod(a.divStride[m].Div(node))
}

// Coords writes the coordinates of node into buf (allocating if nil) and
// returns it.
func (a *ArrayKD) Coords(node int, buf []int) []int {
	if buf == nil {
		buf = make([]int, len(a.sizes))
	}
	for m := range a.sizes {
		buf[m] = node / a.strides[m] % a.sizes[m]
	}
	return buf
}

// lineIndex returns the dense index of node's line in dimension m (the node
// index with coordinate m removed).
func (a *ArrayKD) lineIndex(node, m int) int {
	hi := a.divLine[m].Div(node)   // digits above m, unchanged radix
	lo := a.divStride[m].Mod(node) // digits below m
	return hi*a.strides[m] + lo
}

// EdgeStep returns the edge id leaving node along dimension m in the plus
// (coord+1) or minus direction, and false if it would leave the array.
func (a *ArrayKD) EdgeStep(node, m int, plus bool) (int, bool) {
	c := a.Coord(node, m)
	if plus && c >= a.sizes[m]-1 || !plus && c <= 0 {
		return 0, false
	}
	g := a.groups[2*m]
	if !plus {
		g = a.groups[2*m+1]
	}
	pos := c
	if !plus {
		pos = c - 1 // minus edge from c -> c-1 is stored at position c-1
	}
	return g.offset + a.lineIndex(node, m)*(a.sizes[m]-1) + pos, true
}

// EdgeInfo decodes edge id e into (dim, plus, fromNode).
func (a *ArrayKD) EdgeInfo(e int) (dim int, plus bool, from int) {
	if e < 0 || e >= a.edges {
		panic(fmt.Sprintf("topology: edge %d out of range for %s", e, a.Name()))
	}
	for _, g := range a.groups {
		if e < g.offset+g.count {
			local := e - g.offset
			line := local / (a.sizes[g.dim] - 1)
			pos := local % (a.sizes[g.dim] - 1)
			c := pos
			if !g.plus {
				c = pos + 1
			}
			hi := line / a.strides[g.dim]
			lo := line % a.strides[g.dim]
			from = hi*a.strides[g.dim]*a.sizes[g.dim] + c*a.strides[g.dim] + lo
			return g.dim, g.plus, from
		}
	}
	panic("unreachable")
}

// EdgeFrom implements Network.
func (a *ArrayKD) EdgeFrom(e int) int {
	_, _, from := a.EdgeInfo(e)
	return from
}

// EdgeTo implements Network.
func (a *ArrayKD) EdgeTo(e int) int {
	dim, plus, from := a.EdgeInfo(e)
	if plus {
		return from + a.strides[dim]
	}
	return from - a.strides[dim]
}

// Distance returns the greedy route length (L1 distance) between nodes.
func (a *ArrayKD) Distance(src, dst int) int {
	d := 0
	for m := range a.sizes {
		d += abs(a.Coord(src, m) - a.Coord(dst, m))
	}
	return d
}

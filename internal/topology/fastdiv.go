package topology

import (
	"math"
	"math/bits"
)

// fastDiv computes exact n/d and n%d for 32-bit n without a hardware
// divide, using the Lemire–Kaser reciprocal method: with
// M = ceil(2^64 / d), the quotient is the high word of M·n and the
// remainder is the high word of low(M·n)·d. Topology coordinate math
// (node → row/col decomposition) runs once per routed hop in the
// simulator's hot loop, where the ~25-cycle divide latency is the single
// largest arithmetic cost; two multiplies replace it.
type fastDiv struct {
	m uint64 // ceil(2^64 / d)
	d uint32
}

// newFastDiv prepares a divider for d >= 1.
func newFastDiv(d int) fastDiv {
	if d < 1 {
		panic("topology: fastDiv divisor must be >= 1")
	}
	return fastDiv{m: ^uint64(0)/uint64(d) + 1, d: uint32(d)}
}

// DivMod returns (n/d, n%d) for non-negative n. The reciprocal trick is
// exact for 32-bit operands, which covers every dense node and edge id the
// simulator accepts (its event encoding caps them far lower); larger
// operands — possible in purely analytic uses of huge topologies — fall
// back to the hardware divide, and d == 1 is handled separately because
// its reciprocal 2^64 does not fit the 64-bit word. Both guards are
// perfectly predicted branches in the hot loop.
func (f fastDiv) DivMod(n int) (q, r int) {
	if f.d == 1 {
		return n, 0
	}
	if uint64(n) > math.MaxUint32 {
		return n / int(f.d), n % int(f.d)
	}
	hi, lo := bits.Mul64(f.m, uint64(uint32(n)))
	rhi, _ := bits.Mul64(lo, uint64(f.d))
	return int(uint32(hi)), int(uint32(rhi))
}

// Div returns n/d.
func (f fastDiv) Div(n int) int {
	if f.d == 1 {
		return n
	}
	if uint64(n) > math.MaxUint32 {
		return n / int(f.d)
	}
	hi, _ := bits.Mul64(f.m, uint64(uint32(n)))
	return int(uint32(hi))
}

// Mod returns n%d.
func (f fastDiv) Mod(n int) int {
	_, r := f.DivMod(n)
	return r
}

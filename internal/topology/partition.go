package topology

// This file is the tile-planning layer behind the sharded slotted engine
// (internal/stepsim.ShardedEngine): it splits a network's dense node-id
// space into contiguous ranges, one per worker tile, and enumerates the
// directed edges that cross between ranges — the only traffic the tiles
// ever have to hand off to one another.
//
// The plan is *spatial*, not load-balanced: contiguous node-id ranges are
// row bands on the 2-D array and torus (node id = row·n + col, so a block
// of rows IS a block of ids), and index-range slabs on k-d arrays, cubes
// and butterflies. Row bands minimize the boundary on the paper's core
// topology — a band boundary cuts only the 2n vertical edges between two
// adjacent rows — while index ranges keep every other topology correct
// with whatever boundary its edge structure implies.

// NodeRange is a contiguous block of node ids [Lo, Hi). Ranges may be
// empty (Lo == Hi): a plan with more shards than rows keeps its trailing
// tiles idle rather than failing, so shard counts are a pure performance
// knob that can never change which configurations are runnable.
type NodeRange struct {
	Lo, Hi int
}

// Len returns the number of nodes in the range.
func (r NodeRange) Len() int { return r.Hi - r.Lo }

// Contains reports whether node v lies in the range.
func (r NodeRange) Contains(v int) bool { return v >= r.Lo && v < r.Hi }

// rowsOf returns the row count and width when net's node ids are row-major
// rows of equal width that tiles should not split (the 2-D array and
// torus), or ok = false when plain index ranges are the right plan.
func rowsOf(net Network) (rows, width int, ok bool) {
	switch a := net.(type) {
	case *Array2D:
		return a.N(), a.N(), true
	case *Torus2D:
		return a.N(), a.N(), true
	}
	return 0, 0, false
}

// Partition splits net's nodes into `shards` contiguous NodeRanges that
// cover [0, NumNodes) in order. On the 2-D array and torus the cut points
// are aligned to row boundaries (row-band tiles); every other topology is
// split into plain index ranges. Earlier ranges are never smaller than
// later ones by more than one unit (row or node), and shards beyond the
// unit count yield empty trailing ranges. It panics if shards < 1.
func Partition(net Network, shards int) []NodeRange {
	if shards < 1 {
		panic("topology: Partition requires shards >= 1")
	}
	units, width := net.NumNodes(), 1
	if r, w, ok := rowsOf(net); ok {
		units, width = r, w
	}
	ranges := make([]NodeRange, shards)
	for i := 0; i < shards; i++ {
		ranges[i] = NodeRange{
			Lo: width * (i * units / shards),
			Hi: width * ((i + 1) * units / shards),
		}
	}
	return ranges
}

// RangeOf returns the index of the range containing node v, by binary
// search over the (ordered, covering) ranges Partition returns. Empty
// ranges are skipped. It panics if v lies in no range.
func RangeOf(ranges []NodeRange, v int) int {
	lo, hi := 0, len(ranges)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch r := ranges[mid]; {
		case v < r.Lo:
			hi = mid - 1
		case v >= r.Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	panic("topology: node outside every partition range")
}

// CrossEdges returns the ids of the directed edges whose endpoints lie in
// different ranges — the boundary traffic a tiled execution must hand off.
// The result is ascending. For a row-band plan on an n×n array this is the
// 2n Down/Up edges per interior band boundary; everything else (all Right/
// Left edges, and Down/Up edges interior to a band) stays tile-local.
func CrossEdges(net Network, ranges []NodeRange) []int {
	var cross []int
	for e := 0; e < net.NumEdges(); e++ {
		if RangeOf(ranges, net.EdgeFrom(e)) != RangeOf(ranges, net.EdgeTo(e)) {
			cross = append(cross, e)
		}
	}
	return cross
}

package topology

// This file is the tile-planning layer behind the sharded slotted engine
// (internal/stepsim.ShardedEngine): it splits a network's dense node-id
// space into contiguous ranges, one per worker tile, and enumerates the
// directed edges that cross between ranges — the only traffic the tiles
// ever have to hand off to one another.
//
// The plan is *spatial*, not load-balanced: contiguous node-id ranges are
// row bands on the 2-D array and torus (node id = row·n + col, so a block
// of rows IS a block of ids), and index-range slabs on k-d arrays, cubes
// and butterflies. Row bands minimize the boundary on the paper's core
// topology — a band boundary cuts only the 2n vertical edges between two
// adjacent rows — while index ranges keep every other topology correct
// with whatever boundary its edge structure implies.

// NodeRange is a contiguous block of node ids [Lo, Hi). Ranges may be
// empty (Lo == Hi): a plan with more shards than rows keeps its trailing
// tiles idle rather than failing, so shard counts are a pure performance
// knob that can never change which configurations are runnable.
type NodeRange struct {
	Lo, Hi int
}

// Len returns the number of nodes in the range.
func (r NodeRange) Len() int { return r.Hi - r.Lo }

// Contains reports whether node v lies in the range.
func (r NodeRange) Contains(v int) bool { return v >= r.Lo && v < r.Hi }

// rowsOf returns the row count and width when net's node ids are row-major
// rows of equal width that tiles should not split (the 2-D array and
// torus), or ok = false when plain index ranges are the right plan.
func rowsOf(net Network) (rows, width int, ok bool) {
	switch a := net.(type) {
	case *Array2D:
		return a.N(), a.N(), true
	case *Torus2D:
		return a.N(), a.N(), true
	}
	return 0, 0, false
}

// Partition splits net's nodes into `shards` contiguous NodeRanges that
// cover [0, NumNodes) in order. On the 2-D array and torus the cut points
// are aligned to row boundaries (row-band tiles); every other topology is
// split into plain index ranges. Earlier ranges are never smaller than
// later ones by more than one unit (row or node), and shards beyond the
// unit count yield empty trailing ranges. It panics if shards < 1.
func Partition(net Network, shards int) []NodeRange {
	if shards < 1 {
		panic("topology: Partition requires shards >= 1")
	}
	units, width := net.NumNodes(), 1
	if r, w, ok := rowsOf(net); ok {
		units, width = r, w
	}
	ranges := make([]NodeRange, shards)
	for i := 0; i < shards; i++ {
		ranges[i] = NodeRange{
			Lo: width * (i * units / shards),
			Hi: width * ((i + 1) * units / shards),
		}
	}
	return ranges
}

// RangeOf returns the index of the range containing node v, by binary
// search over the (ordered, covering) ranges Partition returns. Empty
// ranges are skipped. It panics if v lies in no range.
func RangeOf(ranges []NodeRange, v int) int {
	lo, hi := 0, len(ranges)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch r := ranges[mid]; {
		case v < r.Lo:
			hi = mid - 1
		case v >= r.Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	panic("topology: node outside every partition range")
}

// CrossEdges returns the ids of the directed edges whose endpoints lie in
// different ranges — the boundary traffic a tiled execution must hand off.
// The result is ascending. For a row-band plan on an n×n array this is the
// 2n Down/Up edges per interior band boundary; everything else (all Right/
// Left edges, and Down/Up edges interior to a band) stays tile-local.
func CrossEdges(net Network, ranges []NodeRange) []int {
	var cross []int
	for e := 0; e < net.NumEdges(); e++ {
		if RangeOf(ranges, net.EdgeFrom(e)) != RangeOf(ranges, net.EdgeTo(e)) {
			cross = append(cross, e)
		}
	}
	return cross
}

// BoundaryInf is the distance BoundaryDistance reports for a node from
// which no cross edge is reachable — every node of a single-range plan,
// and any component the plan never cuts. It is large enough to exceed any
// real distance and small enough that BoundaryInf+1 cannot overflow int32.
const BoundaryInf = 1 << 30

// BoundaryDistance returns, for every node, its hop distance to the
// nearest node incident to a cross edge of the plan (BoundaryInf when no
// cross edge is reachable). Nodes at distance 0 are the boundary itself —
// the only nodes whose queues a tiled execution can touch from another
// tile — and a node at distance d cannot influence, or be influenced by,
// another tile for d slots of the slotted model, which is what lets a
// lookahead execution run tile interiors ahead of the barrier cadence.
//
// On the 2-D array and torus with row-aligned ranges (what Partition
// produces there) the distance is computed exactly by row arithmetic:
// boundary nodes fill whole rows, horizontal hops never change the row,
// so every node's distance is the (cyclic, on the torus) row distance to
// the nearest cut row. Every other topology — and any hand-built plan
// that splits a row — falls back to a multi-source BFS over the edge
// list, treating each directed edge as traversable both ways (all
// networks here are symmetric digraphs, so this changes nothing).
func BoundaryDistance(net Network, ranges []NodeRange) []int32 {
	if rows, width, ok := rowsOf(net); ok && rowAligned(ranges, width) {
		_, wrap := net.(*Torus2D)
		return boundaryDistanceRows(ranges, rows, width, wrap)
	}
	return boundaryDistanceBFS(net, ranges)
}

// rowAligned reports whether every range starts and ends on a row boundary.
func rowAligned(ranges []NodeRange, width int) bool {
	for _, r := range ranges {
		if r.Lo%width != 0 || r.Hi%width != 0 {
			return false
		}
	}
	return true
}

// boundaryDistanceRows is the exact row-arithmetic path: mark the rows on
// either side of every band cut, then propagate distances along the row
// axis with two relaxation sweeps (repeated once more on the torus, where
// the row axis is a cycle and a sweep must cross the wrap in both
// directions).
func boundaryDistanceRows(ranges []NodeRange, rows, width int, wrap bool) []int32 {
	band := make([]int32, rows)
	for r := 0; r < rows; r++ {
		band[r] = int32(RangeOf(ranges, r*width))
	}
	d := make([]int32, rows)
	for r := range d {
		d[r] = BoundaryInf
	}
	for r := 0; r < rows; r++ {
		r2 := r + 1
		if r2 == rows {
			if !wrap || rows == 1 {
				continue
			}
			r2 = 0
		}
		if band[r] != band[r2] {
			d[r], d[r2] = 0, 0
		}
	}
	passes := 1
	if wrap {
		passes = 2
	}
	for p := 0; p < passes; p++ {
		for r := 0; r < rows; r++ {
			prev := r - 1
			if prev < 0 {
				if !wrap {
					continue
				}
				prev = rows - 1
			}
			if v := d[prev] + 1; v < d[r] {
				d[r] = v
			}
		}
		for r := rows - 1; r >= 0; r-- {
			next := r + 1
			if next == rows {
				if !wrap {
					continue
				}
				next = 0
			}
			if v := d[next] + 1; v < d[r] {
				d[r] = v
			}
		}
	}
	dist := make([]int32, rows*width)
	for r := 0; r < rows; r++ {
		for c := 0; c < width; c++ {
			dist[r*width+c] = d[r]
		}
	}
	return dist
}

// boundaryDistanceBFS is the generic path: multi-source BFS from every
// node incident to a cross edge, over a CSR adjacency built from both
// directions of the edge list. O(nodes + edges) time and space.
func boundaryDistanceBFS(net Network, ranges []NodeRange) []int32 {
	n, m := net.NumNodes(), net.NumEdges()
	deg := make([]int32, n+1)
	for e := 0; e < m; e++ {
		deg[net.EdgeFrom(e)+1]++
		deg[net.EdgeTo(e)+1]++
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	adj := make([]int32, 2*m)
	fill := make([]int32, n)
	for e := 0; e < m; e++ {
		u, v := net.EdgeFrom(e), net.EdgeTo(e)
		adj[deg[u]+fill[u]] = int32(v)
		fill[u]++
		adj[deg[v]+fill[v]] = int32(u)
		fill[v]++
	}
	dist := make([]int32, n)
	for v := range dist {
		dist[v] = BoundaryInf
	}
	queue := make([]int32, 0, n)
	for e := 0; e < m; e++ {
		u, v := net.EdgeFrom(e), net.EdgeTo(e)
		if RangeOf(ranges, u) != RangeOf(ranges, v) {
			if dist[u] != 0 {
				dist[u] = 0
				queue = append(queue, int32(u))
			}
			if dist[v] != 0 {
				dist[v] = 0
				queue = append(queue, int32(v))
			}
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u] + 1
		for _, v := range adj[deg[u]:deg[u+1]] {
			if du < dist[v] {
				dist[v] = du
				queue = append(queue, v)
			}
		}
	}
	return dist
}

package topology

import "fmt"

// Dir is one of the four mesh edge directions.
type Dir int

// The four directions of travel on a mesh. Row index grows downward, matching
// the paper's convention that node (1,1) is the upper-left corner.
const (
	Right Dir = iota
	Left
	Down
	Up
	numDirs
)

// String returns the direction name.
func (d Dir) String() string {
	switch d {
	case Right:
		return "right"
	case Left:
		return "left"
	case Down:
		return "down"
	case Up:
		return "up"
	default:
		return fmt.Sprintf("Dir(%d)", int(d))
	}
}

// Array2D is the paper's n×n array network: nodes at (row, col) with
// 0 <= row, col < n, and two directed edges between each pair of neighbors
// in the same row or column. The paper indexes nodes from 1; this package
// uses 0-based coordinates and converts inside the closed-form formulas.
//
// Edge ids are dense in [0, 4n(n-1)), grouped by direction:
//
//	Right ((r,c)->(r,c+1)): id = r*(n-1) + c            for c in [0, n-1)
//	Left  ((r,c)->(r,c-1)): id = H + r*(n-1) + (c-1)    for c in [1, n)
//	Down  ((r,c)->(r+1,c)): id = 2H + c*(n-1) + r       for r in [0, n-1)
//	Up    ((r,c)->(r-1,c)): id = 3H + c*(n-1) + (r-1)   for r in [1, n)
//
// where H = n(n-1) is the number of edges per direction.
type Array2D struct {
	n    int
	divN fastDiv
}

// NewArray2D creates an n×n array. n must be at least 2.
func NewArray2D(n int) *Array2D {
	if n < 2 {
		panic("topology: Array2D requires n >= 2")
	}
	return &Array2D{n: n, divN: newFastDiv(n)}
}

// N returns the side length.
func (a *Array2D) N() int { return a.n }

// Name implements Network.
func (a *Array2D) Name() string { return fmt.Sprintf("array2d(%d)", a.n) }

// NumNodes implements Network.
func (a *Array2D) NumNodes() int { return a.n * a.n }

// NumEdges implements Network.
func (a *Array2D) NumEdges() int { return 4 * a.n * (a.n - 1) }

// Node returns the node id of (row, col).
func (a *Array2D) Node(row, col int) int { return row*a.n + col }

// Coords returns the (row, col) of a node id.
func (a *Array2D) Coords(node int) (row, col int) { return a.divN.DivMod(node) }

// perDir is the number of edges in each direction group.
func (a *Array2D) perDir() int { return a.n * (a.n - 1) }

// EdgeIn returns the id of the edge leaving (row, col) in direction d, and
// false if no such edge exists (leaving the array).
func (a *Array2D) EdgeIn(row, col int, d Dir) (int, bool) {
	n, h := a.n, a.perDir()
	switch d {
	case Right:
		if col >= n-1 {
			return 0, false
		}
		return row*(n-1) + col, true
	case Left:
		if col <= 0 {
			return 0, false
		}
		return h + row*(n-1) + (col - 1), true
	case Down:
		if row >= n-1 {
			return 0, false
		}
		return 2*h + col*(n-1) + row, true
	case Up:
		if row <= 0 {
			return 0, false
		}
		return 3*h + col*(n-1) + (row - 1), true
	default:
		panic("topology: invalid direction")
	}
}

// EdgeInfo decodes edge id e into its direction and source coordinates.
func (a *Array2D) EdgeInfo(e int) (row, col int, d Dir) {
	n, h := a.n, a.perDir()
	if e < 0 || e >= 4*h {
		panic(fmt.Sprintf("topology: edge %d out of range for %s", e, a.Name()))
	}
	d = Dir(e / h)
	rem := e % h
	switch d {
	case Right:
		return rem / (n - 1), rem % (n - 1), d
	case Left:
		return rem / (n - 1), rem%(n-1) + 1, d
	case Down:
		return rem % (n - 1), rem / (n - 1), d
	default: // Up
		return rem%(n-1) + 1, rem / (n - 1), d
	}
}

// EdgeFrom implements Network.
func (a *Array2D) EdgeFrom(e int) int {
	r, c, _ := a.EdgeInfo(e)
	return a.Node(r, c)
}

// EdgeTo implements Network.
func (a *Array2D) EdgeTo(e int) int {
	r, c, d := a.EdgeInfo(e)
	switch d {
	case Right:
		return a.Node(r, c+1)
	case Left:
		return a.Node(r, c-1)
	case Down:
		return a.Node(r+1, c)
	default:
		return a.Node(r-1, c)
	}
}

// LayerLabel returns the Lemma 2 layering label of edge e, in [1, 2n-2].
// In the paper's 1-based coordinates:
//
//	((i,j),(i,j+1)) -> j        ((i,j+1),(i,j)) -> n-j
//	((i,j),(i+1,j)) -> n+i-1    ((i+1,j),(i,j)) -> 2n-i-1
//
// Under greedy routing the labels along any packet's path are strictly
// increasing, which is what makes the Stamoulis–Tsitsiklis upper bound
// (Theorem 1) applicable to the array.
func (a *Array2D) LayerLabel(e int) int {
	row, col, d := a.EdgeInfo(e)
	n := a.n
	switch d {
	case Right: // 1-based j = col+1
		return col + 1
	case Left: // from 1-based column col+1 to col, so j = col
		return n - col
	case Down: // 1-based i = row+1
		return n + row
	default: // Up: from 1-based row row+1 to row, so i = row
		return 2*n - row - 1
	}
}

// Distance returns the greedy route length |Δrow| + |Δcol| between nodes.
func (a *Array2D) Distance(src, dst int) int {
	r1, c1 := a.Coords(src)
	r2, c2 := a.Coords(dst)
	return abs(r1-r2) + abs(c1-c2)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Linear is a 1-dimensional array of n nodes with directed edges both ways
// between neighbors. It is used by Lemma 3 (the Markov destination walk) and
// as the worst-case example for the Theorem 10/12 lower bounds.
//
// Edge ids: right ((i)->(i+1)): id = i for i in [0, n-1);
// left ((i)->(i-1)): id = (n-1) + (i-1) for i in [1, n).
type Linear struct {
	n int
}

// NewLinear creates a linear array with n >= 2 nodes.
func NewLinear(n int) *Linear {
	if n < 2 {
		panic("topology: Linear requires n >= 2")
	}
	return &Linear{n: n}
}

// N returns the number of nodes.
func (l *Linear) N() int { return l.n }

// Name implements Network.
func (l *Linear) Name() string { return fmt.Sprintf("linear(%d)", l.n) }

// NumNodes implements Network.
func (l *Linear) NumNodes() int { return l.n }

// NumEdges implements Network.
func (l *Linear) NumEdges() int { return 2 * (l.n - 1) }

// EdgeRight returns the id of the edge i -> i+1.
func (l *Linear) EdgeRight(i int) int { return i }

// EdgeLeft returns the id of the edge i -> i-1.
func (l *Linear) EdgeLeft(i int) int { return (l.n - 1) + (i - 1) }

// EdgeFrom implements Network.
func (l *Linear) EdgeFrom(e int) int {
	if e < l.n-1 {
		return e
	}
	return e - (l.n - 1) + 1
}

// EdgeTo implements Network.
func (l *Linear) EdgeTo(e int) int {
	if e < l.n-1 {
		return e + 1
	}
	return e - (l.n - 1)
}

// Package verify implements the misbehaving-router detection experiment:
// flagging lying nodes from end-to-end delay and delivery samples alone,
// without inspecting any router's internal state.
//
// The detector runs one light probe simulation per probe source on the
// degraded network (the same fault.Plan as the run under suspicion — the
// stateless hash selection in internal/fault guarantees the probe runs see
// the identical liar set and failure-prone entities). Each probe run
// restricts packet generation to a single source (topology.Restrict) with
// uniform destinations at a light rate, so queueing delay is near zero and
// the fault-free end-to-end delay of the path source→d is its hop count,
// exactly known from the deterministic stepper. The slotted engine's
// per-destination statistics (stepsim.Config.PerDestStats) then give, for
// every destination, the exact delivered count and mean delay over that
// source's packets.
//
// A path is judged from its per-path likelihood against the honest model:
//
//   - excess = meanDelay − hops. Honest paths at light load have excess
//     near zero (a packet occasionally waits a slot); a path through a
//     delay liar gains the liar's ExtraDelay on every transit, and a path
//     through a misroute liar gains the detour hops. excess > Threshold
//     marks the path bad.
//   - delivered shortfall. A drop liar removes packets without touching
//     delay, so the detector compares each path's delivered count to the
//     exact expectation Rate·Slots/N; a count below half expectation marks
//     the path bad.
//
// Localization uses contradiction pruning over path intersections: a bad
// path implicates every intermediate node (strictly between source and
// destination — a liar damages only packets it forwards, so endpoints are
// never evidence); a clean path (excess ≤ Threshold/2 AND delivered count
// ≥ ¾ of expectation) exonerates its intermediates. A node is a candidate
// suspect when implicated by at least MinBadPaths bad paths and exonerated
// by none. Candidates then pass a parsimony prune (the minimal-hitting-set
// reduction): a candidate whose every bad path also crosses a strictly
// more-implicated candidate is explained by that node and dropped. The
// prune removes the structural false positives of one-sided probing — a
// node whose column segment is reachable only through the liar is
// implicated by exactly the liar's bad paths and can never be exonerated,
// but it also never has evidence of its own. The residual blind spot is
// honest: a liar sitting exactly in another liar's shadow (every one of
// its bad paths through the dominator) is indistinguishable from an
// innocent shadow node; adding probe sources on the far side resolves it.
//
// The false-positive rate is controlled three times over: an honest node
// needs MinBadPaths independently noisy paths through it to be implicated
// at all, on a greedy array every node lies on many probe paths so one
// clean observation clears it, and the parsimony prune discards nodes
// whose evidence is wholly borrowed. Delay liars can never be exonerated
// (every transit adds ExtraDelay > Threshold/2 to the mean), so the
// pruning costs no detection power against them.
//
// # Worked example
//
// The fault-smoke configuration (TestFaultSmoke, `make fault-smoke`): a
// 64×64 array carrying hotspot traffic at ρ = 0.5, degraded by 1% of links
// failing (MTBF 2000, MTTR 40 slots) and 3 seeded delay liars holding
// every forwarded packet 4 extra slots. Probing 6 sources at rate 0.5 for
// 60 000 slots judges tens of thousands of source→destination paths; with
// Threshold 2 every path through a liar shows excess ≥ 4 and is bad, while
// link-failure noise (a ~0.3-hop expected excess per path) stays below
// threshold or is exonerated away, and the report names exactly the 3
// seeded liars.
package verify

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/stepsim"
	"repro/internal/topology"
)

// Config describes one detection experiment.
type Config struct {
	// Net and Router are the network and routing policy under test. The
	// router must be a single deterministic stepper (e.g. greedy-xy): the
	// detector must know each probe path exactly to score it.
	Net    topology.Network
	Router routing.Router
	// Plan is the degradation the network runs under, including the liars
	// to be found. The detector reads only what an operator could: the
	// fault spec it probes under. Plan.Liars is touched only by Score.
	Plan *fault.Plan
	// Sources are the probe source nodes; empty picks an evenly spaced
	// spread of up to 8 nodes. On a greedy array every node is an
	// intermediate of some path from any single source, so even a small
	// spread covers the network many times over.
	Sources []int
	// Rate is the per-slot probe injection rate at each probe source
	// (default 0.5 — light enough that queueing is negligible).
	Rate float64
	// Slots is the measured probe length per source (default 40·N, giving
	// every destination ≈ 20 expected samples at the default rate); Warmup
	// is discarded first (default 200).
	Slots  int
	Warmup int
	// Seed drives the probe traffic (default 1). Independent of the fault
	// seed inside Plan.
	Seed uint64
	// Threshold is the excess-delay cutoff τ in slots (default 2): a path
	// whose mean delay exceeds hops + τ is bad, one below hops + τ/2 (with
	// healthy delivery) exonerates its intermediates.
	Threshold float64
	// MinSamples is the minimum delivered count before a path's mean delay
	// is judged at all (default 5).
	MinSamples int
	// MinBadPaths is how many bad paths must implicate a node before it is
	// suspect (default 2).
	MinBadPaths int
	// Shards is passed to the probe runs (0 = serial; probe runs are light,
	// sharding rarely pays).
	Shards int
}

// Path is one judged probe path.
type Path struct {
	Src, Dst int
	// Hops is the fault-free path length, the delay baseline.
	Hops int
	// Samples is the delivered count; MeanDelay its mean delay (0 when
	// Samples is below MinSamples) and Excess = MeanDelay − Hops.
	Samples   int64
	MeanDelay float64
	Excess    float64
	// Shortfall marks a path judged bad on delivered count.
	Shortfall bool
}

// Report is the detection outcome.
type Report struct {
	// Suspects are the flagged node ids, ascending.
	Suspects []int
	// BadPaths are the paths judged bad (the evidence).
	BadPaths []Path
	// PathsJudged counts paths with enough samples to be judged either way.
	PathsJudged int
	// Implicated[v] counts the bad paths through v; Exonerated[v] reports a
	// clean path through v.
	Implicated []int
	Exonerated []bool
}

// Score compares the report against ground-truth liars (fault.Plan.Liars):
// flagged counts suspects that are real liars, falsePositives suspects
// that are not, and missed liars not flagged.
func (r *Report) Score(liars []int32) (flagged, falsePositives, missed int) {
	truth := make(map[int]bool, len(liars))
	for _, v := range liars {
		truth[int(v)] = true
	}
	for _, v := range r.Suspects {
		if truth[v] {
			flagged++
		} else {
			falsePositives++
		}
	}
	missed = len(liars) - flagged
	return
}

// Detect runs the probe experiments and assembles the report.
func Detect(cfg Config) (*Report, error) {
	n := cfg.Net.NumNodes()
	steppers, choose, ok := routing.Steppers(cfg.Router)
	if !ok || choose != nil || len(steppers) != 1 {
		return nil, fmt.Errorf("verify: detection needs a single deterministic stepper router (e.g. greedy-xy); %T is not one", cfg.Router)
	}
	st := steppers[0]
	if cfg.Plan == nil {
		return nil, fmt.Errorf("verify: Plan is required (bind the fault spec against Net)")
	}
	rate := cfg.Rate
	if rate == 0 {
		rate = 0.5
	}
	slots := cfg.Slots
	if slots == 0 {
		slots = 40 * n
	}
	warmup := cfg.Warmup
	if warmup == 0 {
		warmup = 200
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	tau := cfg.Threshold
	if tau == 0 {
		tau = 2
	}
	minSamples := cfg.MinSamples
	if minSamples == 0 {
		minSamples = 5
	}
	minBad := cfg.MinBadPaths
	if minBad == 0 {
		minBad = 2
	}
	sources := cfg.Sources
	if len(sources) == 0 {
		sources = defaultSources(n)
	}

	rep := &Report{
		Implicated: make([]int, n),
		Exonerated: make([]bool, n),
	}
	// badInter[i] is bad path i's intermediate set, kept for the parsimony
	// prune below.
	var badInter [][]int32
	// Expected delivered per destination under uniform probing: the exact
	// Poisson-thinning mean, known in closed form because the probe source
	// and rate are ours.
	expected := rate * float64(slots) / float64(n)
	var eng stepsim.Engine
	var inter []int32
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("verify: probe source %d out of range [0,%d)", s, n)
		}
		res, err := eng.Run(stepsim.Config{
			Net:          topology.Restrict{Network: cfg.Net, Nodes: []int{s}},
			Router:       cfg.Router,
			Dest:         routing.UniformDest{NumNodes: n},
			NodeRate:     rate,
			WarmupSlots:  warmup,
			Slots:        slots,
			Seed:         seed,
			Shards:       cfg.Shards,
			Faults:       cfg.Plan,
			PerDestStats: true,
		})
		if err != nil {
			return nil, fmt.Errorf("verify: probe from %d: %w", s, err)
		}
		for d := 0; d < n; d++ {
			if d == s {
				continue
			}
			hops := st.RemainingHops(s, d)
			if hops < 2 {
				continue // no intermediates: nothing to localize
			}
			count := res.DestCount[d]
			var mean, excess float64
			haveDelay := count >= int64(minSamples)
			if haveDelay {
				mean = float64(res.DestDelaySum[d]) / float64(count)
				excess = mean - float64(hops)
			}
			shortfall := expected >= 8 && float64(count) < expected/2
			bad := shortfall || (haveDelay && excess > tau)
			clean := haveDelay && excess <= tau/2 && float64(count) >= expected*0.75
			if !bad && !clean {
				// Mid-zone: too noisy to implicate, too suspicious to
				// exonerate. No evidence either way.
				if haveDelay || shortfall {
					rep.PathsJudged++
				}
				continue
			}
			rep.PathsJudged++
			inter = intermediates(st, cfg.Net, s, d, inter[:0])
			if bad {
				rep.BadPaths = append(rep.BadPaths, Path{
					Src: s, Dst: d, Hops: hops, Samples: count,
					MeanDelay: mean, Excess: excess, Shortfall: shortfall,
				})
				badInter = append(badInter, append([]int32(nil), inter...))
				for _, v := range inter {
					rep.Implicated[v]++
				}
			} else {
				for _, v := range inter {
					rep.Exonerated[v] = true
				}
			}
		}
	}
	// Candidates: implicated often enough, never exonerated.
	var cand []int
	isCand := make([]bool, n)
	for v := 0; v < n; v++ {
		if rep.Implicated[v] >= minBad && !rep.Exonerated[v] {
			cand = append(cand, v)
			isCand[v] = true
		}
	}
	// Parsimony prune: index each candidate's bad paths (ascending path
	// ids), then drop any candidate strictly dominated by another — every
	// one of its bad paths also crosses a candidate with more bad paths.
	// The dominated node's evidence is wholly borrowed; the dominator
	// explains it. Domination is tested against the original candidate set
	// (a shadow chain is dominated by the liar at its head directly, so no
	// transitive pass is needed), and equal path sets keep both nodes: the
	// evidence genuinely cannot tell them apart.
	pathsThrough := make(map[int][]int, len(cand))
	for i, in := range badInter {
		for _, v := range in {
			if isCand[v] {
				pathsThrough[int(v)] = append(pathsThrough[int(v)], i)
			}
		}
	}
	for _, v := range cand {
		pv := pathsThrough[v]
		dominated := false
		for _, w := range cand {
			if w != v && len(pathsThrough[w]) > len(pv) && subsetInts(pv, pathsThrough[w]) {
				dominated = true
				break
			}
		}
		if !dominated {
			rep.Suspects = append(rep.Suspects, v)
		}
	}
	sort.Ints(rep.Suspects)
	return rep, nil
}

// subsetInts reports a ⊆ b for ascending int slices.
func subsetInts(a, b []int) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j == len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// intermediates appends the nodes strictly between src and dst on the
// stepper path (endpoints excluded: a liar damages only packets it
// forwards, so a path's endpoints are never evidence about themselves).
func intermediates(st routing.Stepper, net topology.Network, src, dst int, buf []int32) []int32 {
	cur := src
	for {
		edge, done := st.NextEdge(cur, dst)
		if done {
			return buf
		}
		cur = net.EdgeTo(edge)
		if cur != dst {
			buf = append(buf, int32(cur))
		}
	}
}

// defaultSources spreads up to 8 probe sources evenly over the id space,
// at interval midpoints so corners are avoided.
func defaultSources(n int) []int {
	k := 8
	if k > n {
		k = n
	}
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		s := (2*i + 1) * n / (2 * k)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

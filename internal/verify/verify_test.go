package verify

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/stepsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// TestDetectDelayLiars: three explicit delay liars on a 16x16 array must
// be flagged exactly — no misses, no false positives — at the default
// thresholds.
func TestDetectDelayLiars(t *testing.T) {
	a := topology.NewArray2D(16)
	spec := &fault.Spec{
		Misbehave: []fault.Misbehave{
			{Mode: fault.ModeDelay, Nodes: []int{35, 120, 200}, ExtraDelay: 4},
		},
		Seed: 7,
	}
	plan, err := spec.Bind(a)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Detect(Config{
		Net:    a,
		Router: routing.GreedyXY{A: a},
		Plan:   plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	flagged, fps, missed := rep.Score(plan.Liars)
	if flagged != 3 || fps != 0 || missed != 0 {
		t.Fatalf("score: flagged=%d falsePositives=%d missed=%d; suspects=%v liars=%v",
			flagged, fps, missed, rep.Suspects, plan.Liars)
	}
	if rep.PathsJudged == 0 || len(rep.BadPaths) == 0 {
		t.Errorf("no evidence recorded: judged=%d bad=%d", rep.PathsJudged, len(rep.BadPaths))
	}
}

// TestDetectRejectsRandomizedRouter: detection needs an exactly known path
// per pair; a randomized router must be refused.
func TestDetectRejectsRandomizedRouter(t *testing.T) {
	a := topology.NewArray2D(8)
	plan, err := (&fault.Spec{
		Misbehave: []fault.Misbehave{{Mode: fault.ModeDelay, Nodes: []int{9}, ExtraDelay: 4}},
	}).Bind(a)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Detect(Config{Net: a, Router: routing.RandGreedy{A: a}, Plan: plan})
	if err == nil {
		t.Fatal("randomized router accepted")
	}
}

// TestFaultSmoke is the end-to-end degraded-array exercise behind
// `make fault-smoke`: a 64x64 array carrying hotspot traffic at half the
// stability bound while 1% of links fail and recover and three delay
// liars each hold forwarded packets 4 extra slots. The degraded run must
// show recovery activity with sane downtime accounting, and the detection
// experiment must then name exactly the three seeded liars.
func TestFaultSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fault smoke is the long CI exercise")
	}
	sc := workload.Scenario{
		Name:     "fault-smoke",
		Topology: workload.TopologySpec{Kind: "array", N: 64},
		Pattern:  workload.PatternSpec{Kind: "hotspot", K: 1, Weight: 0.2},
		Loads:    []float64{0.5},
		Horizon:  4000,
		Warmup:   500,
		Faults: &fault.Spec{
			LinkMTBF:     2000,
			LinkMTTR:     40,
			LinkFraction: 0.01,
			Misbehave: []fault.Misbehave{
				{Mode: fault.ModeDelay, Count: 3, ExtraDelay: 4},
			},
			Seed: 7,
		},
	}
	b, err := sc.Bind()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Faults.Liars) != 3 {
		t.Fatalf("seeded %d liars, want 3", len(b.Faults.Liars))
	}
	cfgs, err := b.SlottedConfigs()
	if err != nil {
		t.Fatal(err)
	}
	res, err := stepsim.Run(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.DetourHops == 0 {
		t.Error("degraded hotspot run took no detours")
	}
	if res.Delivered == 0 || res.Generated <= res.Delivered {
		t.Errorf("implausible degraded run: generated=%d delivered=%d", res.Generated, res.Delivered)
	}
	// 1% of links at MTTR/(MTBF+MTTR) ≈ 2% down gives an all-links
	// downtime fraction around 2e-4.
	if res.LinkDownFrac <= 0 || res.LinkDownFrac > 0.005 {
		t.Errorf("LinkDownFrac %v outside the plausible band (0, 0.005]", res.LinkDownFrac)
	}

	rep, err := Detect(Config{
		Net:     b.Net,
		Router:  b.Router,
		Plan:    b.Faults,
		Sources: defaultSources(b.Net.NumNodes())[:6],
		Slots:   60000,
	})
	if err != nil {
		t.Fatal(err)
	}
	flagged, fps, missed := rep.Score(b.Faults.Liars)
	if flagged != 3 || fps != 0 || missed != 0 {
		t.Fatalf("detection: flagged=%d falsePositives=%d missed=%d; suspects=%v liars=%v",
			flagged, fps, missed, rep.Suspects, b.Faults.Liars)
	}
}

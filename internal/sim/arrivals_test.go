package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// testPoisson re-expresses the engine's default merged clock through the
// ArrivalProcess hook. Next consumes exactly the variate the default path
// would, so the two paths must produce bit-identical runs.
type testPoisson struct{ rate float64 }

func (p testPoisson) Rate() float64                          { return p.rate }
func (p testPoisson) Next(t float64, rng *xrand.RNG) float64 { return t + rng.Exp(p.rate) }

// TestPoissonArrivalProcessMatchesDefault pins the ArrivalProcess hook to
// the merged-clock fast path: expressing the same Poisson stream through
// the interface must reproduce the default engine bit for bit.
func TestPoissonArrivalProcessMatchesDefault(t *testing.T) {
	cfg := arrayConfig(5, 0.7, 97)
	cfg.Warmup, cfg.Horizon = 200, 1500
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hooked := cfg
	total := cfg.NodeRate * float64(len(topology.Sources(cfg.Net)))
	hooked.NodeRate = 0
	hooked.Arrivals = func() ArrivalProcess { return testPoisson{rate: total} }
	got, err := Run(hooked)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.MeanDelay) != math.Float64bits(want.MeanDelay) ||
		math.Float64bits(got.MeanN) != math.Float64bits(want.MeanN) ||
		got.Generated != want.Generated || got.Delivered != want.Delivered {
		t.Errorf("hooked Poisson diverges from default: %+v vs %+v", got, want)
	}
	for e := range want.EdgeRates {
		if got.EdgeRates[e] != want.EdgeRates[e] {
			t.Fatalf("EdgeRates[%d] diverge", e)
		}
	}
}

// endingStream emits a burst of arrivals and then ends (+Inf), checking
// the engine drains in-flight packets and retires the stream cleanly.
type endingStream struct {
	rate  float64
	until float64
}

func (s *endingStream) Rate() float64 { return s.rate }
func (s *endingStream) Next(t float64, rng *xrand.RNG) float64 {
	next := t + rng.Exp(s.rate)
	if next > s.until {
		return math.Inf(1)
	}
	return next
}

func TestArrivalStreamCanEnd(t *testing.T) {
	cfg := arrayConfig(5, 0.5, 3)
	total := cfg.NodeRate * float64(len(topology.Sources(cfg.Net)))
	cfg.NodeRate = 0
	cfg.Warmup, cfg.Horizon = 0, 2000
	cfg.Arrivals = func() ArrivalProcess { return &endingStream{rate: total, until: 500} }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == 0 {
		t.Fatal("no packets before the stream ended")
	}
	if res.Generated != res.Delivered {
		t.Errorf("stream ended at t=500 but %d of %d packets undelivered by t=2000",
			res.Generated-res.Delivered, res.Generated)
	}
}

func TestArrivalsConfigValidation(t *testing.T) {
	base := arrayConfig(5, 0.5, 1)
	factory := func() ArrivalProcess { return testPoisson{rate: 1} }

	cfg := base
	cfg.Arrivals = factory
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "NodeRate") {
		t.Errorf("nonzero NodeRate with Arrivals accepted: %v", err)
	}
	cfg = base
	cfg.NodeRate = 0
	cfg.Arrivals = factory
	cfg.SlotTau = 1
	if _, err := Run(cfg); err == nil {
		t.Error("Arrivals with SlotTau accepted")
	}
	cfg = base
	cfg.NodeRate = 0
	cfg.Arrivals = factory
	cfg.PerNodeArrivals = true
	if _, err := Run(cfg); err == nil {
		t.Error("Arrivals with PerNodeArrivals accepted")
	}
	cfg = base
	cfg.NodeRate = 0
	cfg.Arrivals = func() ArrivalProcess { return nil }
	if _, err := Run(cfg); err == nil {
		t.Error("nil-returning Arrivals factory accepted")
	}
}

// TestStabilityCheckRejectsSaturation exercises the pattern-implied
// utilization check: a demand-exposing destination sampler pushing an edge
// to ρ >= 1 must be rejected with the saturating edge named, and
// AllowUnstable must bypass the check.
func TestStabilityCheckRejectsSaturation(t *testing.T) {
	l := topology.NewLinear(2)
	cfg := Config{
		Net:      l,
		Router:   routing.LinearRoute{L: l},
		Dest:     routing.PermDest{Perm: []int{1, 0}}, // exposes Prob
		NodeRate: 1.25,
		Horizon:  100,
		Seed:     1,
	}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("saturated config accepted")
	}
	for _, want := range []string{"utilization", "edge 0", "AllowUnstable"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q misses %q", err, want)
		}
	}
	cfg.AllowUnstable = true
	if _, err := Run(cfg); err != nil {
		t.Errorf("AllowUnstable did not bypass the check: %v", err)
	}
	// The same demand under the stability boundary must run.
	cfg.AllowUnstable = false
	cfg.NodeRate = 0.8
	if _, err := Run(cfg); err != nil {
		t.Errorf("stable config rejected: %v", err)
	}
	// Per-edge service times participate: slow service saturates earlier.
	cfg.ServiceTime = []float64{1.5, 1}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "edge 0") {
		t.Errorf("slow-edge saturation not caught: %v", err)
	}
}

// TestStabilityCheckSkipsOpaqueSamplers: samplers without Prob (the
// paper's standard UniformDest) must never pay for or trip the check,
// even at deliberately unstable loads.
func TestStabilityCheckSkipsOpaqueSamplers(t *testing.T) {
	cfg := arrayConfig(4, 0.5, 1)
	cfg.NodeRate = 100 // absurdly unstable, but the demand is opaque
	cfg.Warmup, cfg.Horizon = 0, 2
	if _, err := Run(cfg); err != nil {
		t.Errorf("opaque sampler tripped the stability check: %v", err)
	}
}

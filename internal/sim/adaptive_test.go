package sim

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/bounds"
)

// TestStreamCellsAdaptiveLadder exercises the sequential-stopping pool on
// synthetic tasks: the replica count a cell uses must be the first rung of
// the deterministic ladder whose prefix satisfies stop, independent of the
// worker count, and cells must emit in input order.
func TestStreamCellsAdaptiveLadder(t *testing.T) {
	// Ladder from minReps 2: 2, 3, 4, 6, 9, 13, 19, 28, 42, 63, 64.
	targets := []int{1, 3, 5, 9, 20, 100} // per-cell "converged at" prefix length
	wantUsed := []int{2, 3, 6, 9, 28, 64} // first rung ≥ target (capped at 64)
	for _, workers := range []int{1, 3, 16} {
		used := make([]int, len(targets))
		order := make([]int, 0, len(targets))
		StreamCellsAdaptive(context.Background(), len(targets), 2, 64, workers,
			func() func(cell, rep int) (int, error) {
				return func(cell, rep int) (int, error) { return cell*1000 + rep, nil }
			},
			func(cell int, prefix []int) bool { return len(prefix) >= targets[cell] },
			func(cell int, rs []int, err error) {
				if err != nil {
					t.Fatalf("cell %d: unexpected error %v", cell, err)
				}
				for r, v := range rs {
					if v != cell*1000+r {
						t.Fatalf("cell %d replica %d: got %d", cell, r, v)
					}
				}
				used[cell] = len(rs)
				order = append(order, cell)
			})
		for c := range targets {
			if used[c] != wantUsed[c] {
				t.Errorf("workers=%d cell %d: used %d replicas, want %d", workers, c, used[c], wantUsed[c])
			}
			if order[c] != c {
				t.Errorf("workers=%d: emission order %v not input order", workers, order)
			}
		}
	}
}

// TestStreamCellsAdaptiveError pins error semantics: an errored cell stops
// launching, reports its first error, and does not disturb other cells.
func TestStreamCellsAdaptiveError(t *testing.T) {
	errs := make([]error, 3)
	used := make([]int, 3)
	StreamCellsAdaptive(context.Background(), 3, 2, 16, 4,
		func() func(cell, rep int) (int, error) {
			return func(cell, rep int) (int, error) {
				if cell == 1 && rep == 1 {
					return 0, fmt.Errorf("boom")
				}
				return rep, nil
			}
		},
		func(cell int, prefix []int) bool { return len(prefix) >= 4 },
		func(cell int, rs []int, err error) {
			errs[cell] = err
			used[cell] = len(rs)
		})
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy cells errored: %v %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("errored cell reported no error")
	}
	if used[0] != 4 || used[2] != 4 {
		t.Fatalf("healthy cells used %d/%d replicas, want 4", used[0], used[2])
	}
}

// TestRunSweepAdaptiveMatchesFixed pins that the zero-valued adaptive
// options reproduce the fixed sweep bit-for-bit: the default path is
// untouched by the variance-reduction layer.
func TestRunSweepAdaptiveMatchesFixed(t *testing.T) {
	cfgs := []Config{arrayConfig(5, 0.5, 101), arrayConfig(5, 0.7, 101)}
	want, err := RunSweep(context.Background(), cfgs, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSweepAdaptive(context.Background(), cfgs, SweepOpts{Replicas: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i].MeanDelay) != math.Float64bits(want[i].MeanDelay) ||
			math.Float64bits(got[i].DelayCI) != math.Float64bits(want[i].DelayCI) ||
			math.Float64bits(got[i].MeanN) != math.Float64bits(want[i].MeanN) {
			t.Errorf("point %d: adaptive fixed-mode result differs from RunSweep", i)
		}
		if got[i].ReplicasUsed != 3 || want[i].ReplicasUsed != 3 {
			t.Errorf("point %d: ReplicasUsed %d/%d, want 3", i, got[i].ReplicasUsed, want[i].ReplicasUsed)
		}
	}
}

// TestRunSweepAdaptiveStopsAtTarget checks sequential stopping: a loose
// target stops at MinReps; a tight one spends more replicas and either
// meets the target or reports the capped shortfall honestly.
func TestRunSweepAdaptiveStopsAtTarget(t *testing.T) {
	cfg := arrayConfig(5, 0.6, 7)
	loose, err := RunSweepAdaptive(context.Background(), []Config{cfg}, SweepOpts{TargetCI: 100, MinReps: 3, MaxReps: 24, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if loose[0].ReplicasUsed != 3 {
		t.Errorf("loose target used %d replicas, want MinReps=3", loose[0].ReplicasUsed)
	}
	tight, err := RunSweepAdaptive(context.Background(), []Config{cfg}, SweepOpts{TargetCI: 0.02, MinReps: 3, MaxReps: 24, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tight[0].ReplicasUsed <= 3 && tight[0].DelayCI > 0.02 {
		t.Errorf("tight target: %d replicas with half-width %v", tight[0].ReplicasUsed, tight[0].DelayCI)
	}
	if tight[0].ReplicasUsed < 24 && tight[0].DelayCI > 0.02 {
		t.Errorf("stopped at %d replicas but half-width %v exceeds target", tight[0].ReplicasUsed, tight[0].DelayCI)
	}
}

// TestControlVariateSweep checks the CV estimator of record: it must stay
// consistent with the plain estimate (well within its interval) and reject
// arrival models without a closed-form count.
func TestControlVariateSweep(t *testing.T) {
	cfg := arrayConfig(6, 0.8, 13)
	plain, err := RunSweepAdaptive(context.Background(), []Config{cfg}, SweepOpts{Replicas: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := RunSweepAdaptive(context.Background(), []Config{cfg}, SweepOpts{Replicas: 8, Workers: 4, ControlVariates: true})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(cv[0].MeanDelay - plain[0].MeanDelay); diff > 3*plain[0].DelayCI {
		t.Errorf("CV estimate %v vs plain %v: difference %v outside 3 half-widths (%v)",
			cv[0].MeanDelay, plain[0].MeanDelay, diff, plain[0].DelayCI)
	}
	if cv[0].DelayCI <= 0 || math.IsInf(cv[0].DelayCI, 0) {
		t.Errorf("CV half-width %v not finite positive", cv[0].DelayCI)
	}
	t.Logf("plain hw %.4f, CV hw %.4f (beta-adjusted)", plain[0].DelayCI, cv[0].DelayCI)

	slotted := cfg
	slotted.SlotTau = 1
	if _, err := RunSweepAdaptive(context.Background(), []Config{slotted}, SweepOpts{Replicas: 4, ControlVariates: true}); err == nil {
		t.Error("control variates accepted a slotted arrival model")
	}
}

// TestWarmStartSweepAgreement runs a short ρ-ladder warm-started and cold
// and requires statistical agreement: chaining snapshots must not bias the
// per-point estimates.
func TestWarmStartSweepAgreement(t *testing.T) {
	n := 5
	mk := func(rho float64) Config {
		c := arrayConfig(n, rho, 303)
		c.NodeRate = bounds.LambdaForLoad(n, rho)
		c.Warmup, c.Horizon = 800, 6000
		return c
	}
	cfgs := []Config{mk(0.5), mk(0.6), mk(0.7)}
	cold, err := RunSweepAdaptive(context.Background(), cfgs, SweepOpts{Replicas: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunSweepAdaptive(context.Background(), cfgs, SweepOpts{Replicas: 6, Workers: 4, WarmStart: true, Rewarm: 200})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if warm[i].ReplicasUsed != 6 {
			t.Errorf("point %d: warm sweep used %d replicas, want 6", i, warm[i].ReplicasUsed)
		}
		tol := 4*(cold[i].DelayCI+warm[i].DelayCI) + 0.05*cold[i].MeanDelay
		if diff := math.Abs(warm[i].MeanDelay - cold[i].MeanDelay); diff > tol {
			t.Errorf("point %d: warm %v vs cold %v differ by %v (tol %v)",
				i, warm[i].MeanDelay, cold[i].MeanDelay, diff, tol)
		}
	}
	// The first point has no predecessor: it must be bit-identical to the
	// cold sweep (every replica starts cold with the full warmup).
	if math.Float64bits(warm[0].MeanDelay) != math.Float64bits(cold[0].MeanDelay) {
		t.Errorf("ladder head: warm %v != cold %v", warm[0].MeanDelay, cold[0].MeanDelay)
	}
}

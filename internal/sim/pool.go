package sim

import (
	"runtime"
	"sync"

	"repro/internal/xrand"
)

// This file is the orchestration layer shared by RunReplicas, RunSweep,
// cmd/sweep and the slotted engine's pool (internal/stepsim): one
// deterministic worker pool that parallelizes across sweep points and
// replicas at once. A sweep of 4 points × 4 replicas exposes 16 units of
// work to the pool instead of 4, so it saturates wide machines even when
// the point count is small, and a slow cell no longer serializes the cells
// behind it.
//
// Determinism: replica r of cell c always runs with the stream
// Split(cfgs[c].Seed, r), regardless of worker count or scheduling, so
// sweep results are bit-identical from 1 worker to GOMAXPROCS. Results are
// delivered in input order.

// StreamCells is the engine-agnostic core of the sweep pool: it runs
// `replicas` tasks for each of `cells` cells on up to `workers` goroutines
// (0 means GOMAXPROCS) and calls emit exactly once per cell, in input
// order, as soon as that cell and all earlier cells have finished. newRun
// is invoked once per worker goroutine and returns that worker's task
// function — per-worker state (a reused engine) lives in its closure. err
// is the first-observed per-replica error of the cell (rs is nil when err
// is non-nil). emit runs on the calling goroutine.
//
// Both simulation engines' sweeps (StreamSweep here, stepsim.StreamSweep)
// are thin wrappers over this one implementation, so the reorder-buffer
// and error-selection semantics cannot drift between them.
func StreamCells[R any](cells, replicas, workers int, newRun func() func(cell, rep int) (R, error), emit func(cell int, rs []R, err error)) {
	if cells <= 0 {
		return
	}
	if replicas < 1 {
		replicas = 1
	}
	total := cells * replicas
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	type task struct {
		cell, rep int
	}
	type taskDone struct {
		task
		res R
		err error
	}
	tasks := make(chan task)
	done := make(chan taskDone)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := newRun()
			for tk := range tasks {
				res, err := run(tk.cell, tk.rep)
				done <- taskDone{task: tk, res: res, err: err}
			}
		}()
	}
	go func() {
		for c := 0; c < cells; c++ {
			for r := 0; r < replicas; r++ {
				tasks <- task{cell: c, rep: r}
			}
		}
		close(tasks)
		wg.Wait()
		close(done)
	}()

	// Reorder-buffer collector: cells complete in any order but emit in
	// input order.
	results := make([][]R, cells)
	errs := make([]error, cells)
	remaining := make([]int, cells)
	for i := range results {
		results[i] = make([]R, replicas)
		remaining[i] = replicas
	}
	next := 0
	for d := range done {
		results[d.cell][d.rep] = d.res
		if d.err != nil && errs[d.cell] == nil {
			errs[d.cell] = d.err
		}
		remaining[d.cell]--
		for next < cells && remaining[next] == 0 {
			if errs[next] != nil {
				emit(next, nil, errs[next])
			} else {
				emit(next, results[next], nil)
			}
			results[next] = nil // free replica results as cells stream out
			next++
		}
	}
}

// SpareFactor returns how many intra-run worker goroutines each task of a
// cells×replicas sweep can use without oversubscribing `workers` (0 means
// GOMAXPROCS): the pool parallelizes across tasks first, and only when
// there are fewer tasks than cores is there spare capacity to spend inside
// a run. The slotted sweep pool (internal/stepsim) uses this to trade
// replica-parallelism for intra-run shards at the tail of a sweep — a
// 2-point × 1-replica sweep on an 8-core box gets 4-way sharded runs
// instead of 6 idle cores. The event-driven engine has no intra-run
// parallelism, so its sweeps ignore the factor.
//
// Shard counts chosen this way are machine-dependent, which is safe only
// because the sharded slotted engine's results are bit-identical for
// every shard count; determinism across machines and worker counts is
// preserved.
func SpareFactor(cells, replicas, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if replicas < 1 {
		replicas = 1
	}
	total := cells * replicas
	if total <= 0 || workers <= total {
		return 1
	}
	return workers / total
}

// StreamSweep runs every configuration in cfgs with `replicas` independent
// replicas (minimum 1) on a pool of up to `workers` goroutines (0 means
// GOMAXPROCS). emit is called exactly once per configuration, in input
// order, as soon as that cell and all earlier cells have finished — a long
// sweep prints its first rows while later cells are still running. err is
// the first per-replica error of that cell (rs is zero-valued when err is
// non-nil). emit runs on the calling goroutine.
func StreamSweep(cfgs []Config, replicas, workers int, emit func(i int, rs ReplicaSet, err error)) {
	StreamCells(len(cfgs), replicas, workers,
		func() func(cell, rep int) (Result, error) {
			// One Runner per worker: engine state (tree, stations, arena,
			// tables) is reused across this worker's tasks, amortizing the
			// per-run setup allocations to ~0 over a sweep. Results are
			// bit-identical to fresh Runs.
			var runner Runner
			return func(cell, rep int) (Result, error) {
				rcfg := cfgs[cell]
				// Derive a distinct, scheduling-independent stream per
				// (cell, replica). xrand.Split mixes the index, so
				// sequential seeds do not overlap.
				rcfg.Seed = xrand.Split(rcfg.Seed, uint64(rep)).Uint64()
				return runner.Run(rcfg)
			}
		},
		func(i int, rs []Result, err error) {
			if err != nil {
				emit(i, ReplicaSet{}, err)
			} else {
				emit(i, aggregate(rs), nil)
			}
		})
}

// RunSweep executes every configuration with `replicas` replicas on one
// shared worker pool and returns the aggregated cells in input order. The
// returned error is the first cell error encountered (its cell's ReplicaSet
// is zero-valued; later cells still run).
func RunSweep(cfgs []Config, replicas, workers int) ([]ReplicaSet, error) {
	sets := make([]ReplicaSet, len(cfgs))
	var first error
	StreamSweep(cfgs, replicas, workers, func(i int, rs ReplicaSet, err error) {
		sets[i] = rs
		if err != nil && first == nil {
			first = err
		}
	})
	return sets, first
}

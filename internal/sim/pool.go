package sim

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/xrand"
)

// This file is the orchestration layer shared by RunReplicas, RunSweep,
// cmd/sweep and the slotted engine's pool (internal/stepsim): one
// deterministic worker pool that parallelizes across sweep points and
// replicas at once. A sweep of 4 points × 4 replicas exposes 16 units of
// work to the pool instead of 4, so it saturates wide machines even when
// the point count is small, and a slow cell no longer serializes the cells
// behind it.
//
// Determinism: replica r of cell c always runs with the stream
// Split(cfgs[c].Seed, r), regardless of worker count or scheduling, so
// sweep results are bit-identical from 1 worker to GOMAXPROCS. Results are
// delivered in input order.
//
// Cancellation: every pool entry point takes a context. Once it is
// canceled, workers stop starting tasks and fast-fail the remainder with
// the context's cause; cells whose tasks were skipped finalize with that
// error, so emit still fires exactly once per cell, the reorder buffer
// drains in order, and every goroutine exits before the entry point
// returns — cancellation can never leak a worker. Uncanceled runs are
// unaffected: the poll is pure control flow and never touches a variate
// stream, so results stay bit-identical.

// poolErr reports the cancellation error tasks should fast-fail with, or
// nil while ctx (which may be nil, meaning "never canceled") is live.
func poolErr(ctx context.Context) error {
	if ctx != nil && ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return nil
}

// StreamCells is the engine-agnostic core of the sweep pool: it runs
// `replicas` tasks for each of `cells` cells on up to `workers` goroutines
// (0 means GOMAXPROCS) and calls emit exactly once per cell, in input
// order, as soon as that cell and all earlier cells have finished. newRun
// is invoked once per worker goroutine and returns that worker's task
// function — per-worker state (a reused engine) lives in its closure. err
// is the first-observed per-replica error of the cell (rs is nil when err
// is non-nil). emit runs on the calling goroutine.
//
// Both simulation engines' sweeps (StreamSweep here, stepsim.StreamSweep)
// are thin wrappers over this one implementation, so the reorder-buffer
// and error-selection semantics cannot drift between them.
func StreamCells[R any](ctx context.Context, cells, replicas, workers int, newRun func() func(cell, rep int) (R, error), emit func(cell int, rs []R, err error)) {
	if cells <= 0 {
		return
	}
	if replicas < 1 {
		replicas = 1
	}
	total := cells * replicas
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	type task struct {
		cell, rep int
	}
	type taskDone struct {
		task
		res R
		err error
	}
	tasks := make(chan task)
	done := make(chan taskDone)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := newRun()
			for tk := range tasks {
				var res R
				err := poolErr(ctx)
				if err == nil {
					res, err = run(tk.cell, tk.rep)
				}
				done <- taskDone{task: tk, res: res, err: err}
			}
		}()
	}
	go func() {
		for c := 0; c < cells; c++ {
			for r := 0; r < replicas; r++ {
				tasks <- task{cell: c, rep: r}
			}
		}
		close(tasks)
		wg.Wait()
		close(done)
	}()

	// Reorder-buffer collector: cells complete in any order but emit in
	// input order.
	results := make([][]R, cells)
	errs := make([]error, cells)
	remaining := make([]int, cells)
	for i := range results {
		results[i] = make([]R, replicas)
		remaining[i] = replicas
	}
	next := 0
	for d := range done {
		results[d.cell][d.rep] = d.res
		if d.err != nil && errs[d.cell] == nil {
			errs[d.cell] = d.err
		}
		remaining[d.cell]--
		for next < cells && remaining[next] == 0 {
			if errs[next] != nil {
				emit(next, nil, errs[next])
			} else {
				emit(next, results[next], nil)
			}
			results[next] = nil // free replica results as cells stream out
			next++
		}
	}
}

// StreamCellsAdaptive is the sequential-stopping form of StreamCells:
// instead of a fixed replica count, every cell starts with minReps tasks
// and, whenever a cell's launched batch completes, stop(cell, prefix) is
// asked — on the cell's complete replica prefix — whether the estimate has
// converged. A cell that has not converged launches another batch (half
// again the current count, at least one, capped at maxReps); a converged,
// errored or capped cell is finalized and emitted once all earlier cells
// have been. emit receives exactly the replicas that ran.
//
// Determinism: batch boundaries form a fixed ladder (minReps, then ×1.5
// rounded down until maxReps), stop is evaluated only at those boundaries
// on complete prefixes, and callers derive replica r's stream from r alone
// (Split(seed, r), as StreamSweep does) — so the number of replicas a cell
// uses is a pure function of the cell's results, independent of worker
// count and scheduling. stop must be a pure function of its arguments; it
// may be invoked on any worker goroutine. emit runs on the calling
// goroutine, in input order.
func StreamCellsAdaptive[R any](ctx context.Context, cells, minReps, maxReps, workers int,
	newRun func() func(cell, rep int) (R, error),
	stop func(cell int, prefix []R) bool,
	emit func(cell int, rs []R, err error)) {
	if cells <= 0 {
		return
	}
	if minReps < 1 {
		minReps = 1
	}
	if maxReps < minReps {
		maxReps = minReps
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cells*maxReps {
		workers = cells * maxReps
	}

	type task struct {
		cell, rep int
	}
	type cellState struct {
		results     []R
		launched    int // replicas handed to the pool so far
		outstanding int // launched but not yet finished
		err         error
	}
	type finalCell struct {
		cell int
		rs   []R
		err  error
	}

	// The pool is a mutex-guarded pending queue rather than StreamCells's
	// feeder channel because workers inject new tasks mid-flight: a batch
	// boundary reached inside one worker must wake the others.
	var (
		mu        sync.Mutex
		cond      = sync.NewCond(&mu)
		states    = make([]cellState, cells)
		pending   = make([]task, 0, cells*minReps)
		remaining = cells
		done      bool
		finalized = make(chan finalCell, cells) // one send per cell: never blocks
	)
	for c := 0; c < cells; c++ {
		states[c].results = make([]R, minReps)
		states[c].launched = minReps
		states[c].outstanding = minReps
		for r := 0; r < minReps; r++ {
			pending = append(pending, task{cell: c, rep: r})
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := newRun()
			mu.Lock()
			for {
				for len(pending) == 0 && !done {
					cond.Wait()
				}
				if len(pending) == 0 {
					mu.Unlock()
					return
				}
				tk := pending[0]
				pending = pending[1:]
				mu.Unlock()
				var res R
				err := poolErr(ctx)
				if err == nil {
					res, err = run(tk.cell, tk.rep)
				}
				mu.Lock()
				st := &states[tk.cell]
				st.results[tk.rep] = res
				if err != nil && st.err == nil {
					st.err = err
				}
				if st.outstanding--; st.outstanding > 0 {
					continue
				}
				// Batch boundary: results[:launched] is a complete prefix.
				if st.err == nil && st.launched < maxReps && !stop(tk.cell, st.results[:st.launched]) {
					next := st.launched + max(1, st.launched/2)
					if next > maxReps {
						next = maxReps
					}
					var zero R
					for r := st.launched; r < next; r++ {
						st.results = append(st.results, zero)
						pending = append(pending, task{cell: tk.cell, rep: r})
					}
					st.outstanding = next - st.launched
					st.launched = next
					cond.Broadcast()
					continue
				}
				fc := finalCell{cell: tk.cell, rs: st.results[:st.launched], err: st.err}
				st.results = nil
				if remaining--; remaining == 0 {
					done = true
					cond.Broadcast()
				}
				finalized <- fc
			}
		}()
	}

	// Reorder-buffer collector, as in StreamCells: cells finalize in any
	// order but emit in input order on the calling goroutine.
	resBuf := make([][]R, cells)
	errBuf := make([]error, cells)
	ready := make([]bool, cells)
	next := 0
	for i := 0; i < cells; i++ {
		fc := <-finalized
		resBuf[fc.cell], errBuf[fc.cell], ready[fc.cell] = fc.rs, fc.err, true
		for next < cells && ready[next] {
			if errBuf[next] != nil {
				emit(next, nil, errBuf[next])
			} else {
				emit(next, resBuf[next], nil)
			}
			resBuf[next] = nil
			next++
		}
	}
	wg.Wait()
}

// SpareFactor returns how many intra-run worker goroutines each task of a
// cells×replicas sweep can use without oversubscribing `workers` (0 means
// GOMAXPROCS): the pool parallelizes across tasks first, and only when
// there are fewer tasks than cores is there spare capacity to spend inside
// a run. The slotted sweep pool (internal/stepsim) uses this to trade
// replica-parallelism for intra-run shards at the tail of a sweep — a
// 2-point × 1-replica sweep on an 8-core box gets 4-way sharded runs
// instead of 6 idle cores. The event-driven engine has no intra-run
// parallelism, so its sweeps ignore the factor.
//
// Shard counts chosen this way are machine-dependent, which is safe only
// because the sharded slotted engine's results are bit-identical for
// every shard count; determinism across machines and worker counts is
// preserved.
func SpareFactor(cells, replicas, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if replicas < 1 {
		replicas = 1
	}
	total := cells * replicas
	if total <= 0 || workers <= total {
		return 1
	}
	return workers / total
}

// StreamSweep runs every configuration in cfgs with `replicas` independent
// replicas (minimum 1) on a pool of up to `workers` goroutines (0 means
// GOMAXPROCS). emit is called exactly once per configuration, in input
// order, as soon as that cell and all earlier cells have finished — a long
// sweep prints its first rows while later cells are still running. err is
// the first per-replica error of that cell (rs is zero-valued when err is
// non-nil). emit runs on the calling goroutine.
func StreamSweep(ctx context.Context, cfgs []Config, replicas, workers int, emit func(i int, rs ReplicaSet, err error)) {
	StreamCells(ctx, len(cfgs), replicas, workers,
		func() func(cell, rep int) (Result, error) {
			// One Runner per worker: engine state (tree, stations, arena,
			// tables) is reused across this worker's tasks, amortizing the
			// per-run setup allocations to ~0 over a sweep. Results are
			// bit-identical to fresh Runs.
			var runner Runner
			return func(cell, rep int) (Result, error) {
				rcfg := cfgs[cell]
				// Derive a distinct, scheduling-independent stream per
				// (cell, replica). xrand.Split mixes the index, so
				// sequential seeds do not overlap.
				rcfg.Seed = xrand.Split(rcfg.Seed, uint64(rep)).Uint64()
				if rcfg.Ctx == nil {
					// Thread the pool's context into the engine so an
					// in-flight run aborts promptly, not just queued ones.
					rcfg.Ctx = ctx
				}
				return runner.Run(rcfg)
			}
		},
		func(i int, rs []Result, err error) {
			if err != nil {
				emit(i, ReplicaSet{}, err)
			} else {
				emit(i, aggregate(rs), nil)
			}
		})
}

// RunSweep executes every configuration with `replicas` replicas on one
// shared worker pool and returns the aggregated cells in input order. The
// returned error is the first cell error encountered (its cell's ReplicaSet
// is zero-valued; later cells still run).
func RunSweep(ctx context.Context, cfgs []Config, replicas, workers int) ([]ReplicaSet, error) {
	sets := make([]ReplicaSet, len(cfgs))
	var first error
	StreamSweep(ctx, cfgs, replicas, workers, func(i int, rs ReplicaSet, err error) {
		sets[i] = rs
		if err != nil && first == nil {
			first = err
		}
	})
	return sets, first
}

package sim

import (
	"runtime"
	"sync"

	"repro/internal/xrand"
)

// This file is the orchestration layer shared by RunReplicas, RunSweep and
// cmd/sweep: one deterministic worker pool that parallelizes across sweep
// points and replicas at once. A sweep of 4 points × 4 replicas exposes 16
// units of work to the pool instead of 4, so it saturates wide machines
// even when the point count is small, and a slow cell no longer serializes
// the cells behind it.
//
// Determinism: replica r of cell c always runs with the stream
// Split(cfgs[c].Seed, r), regardless of worker count or scheduling, so
// sweep results are bit-identical from 1 worker to GOMAXPROCS. Results are
// delivered in input order.

// sweepTask is one (cell, replica) simulation.
type sweepTask struct {
	cell, rep int
}

// sweepDone is one finished task.
type sweepDone struct {
	sweepTask
	res Result
	err error
}

// StreamSweep runs every configuration in cfgs with `replicas` independent
// replicas (minimum 1) on a pool of up to `workers` goroutines (0 means
// GOMAXPROCS). emit is called exactly once per configuration, in input
// order, as soon as that cell and all earlier cells have finished — a long
// sweep prints its first rows while later cells are still running. err is
// the first per-replica error of that cell (rs is zero-valued when err is
// non-nil). emit runs on the calling goroutine.
func StreamSweep(cfgs []Config, replicas, workers int, emit func(i int, rs ReplicaSet, err error)) {
	if len(cfgs) == 0 {
		return
	}
	if replicas < 1 {
		replicas = 1
	}
	total := len(cfgs) * replicas
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	tasks := make(chan sweepTask)
	done := make(chan sweepDone)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				rcfg := cfgs[tk.cell]
				// Derive a distinct, scheduling-independent stream per
				// (cell, replica). xrand.Split mixes the index, so
				// sequential seeds do not overlap.
				rcfg.Seed = xrand.Split(rcfg.Seed, uint64(tk.rep)).Uint64()
				res, err := Run(rcfg)
				done <- sweepDone{sweepTask: tk, res: res, err: err}
			}
		}()
	}
	go func() {
		for c := range cfgs {
			for r := 0; r < replicas; r++ {
				tasks <- sweepTask{cell: c, rep: r}
			}
		}
		close(tasks)
		wg.Wait()
		close(done)
	}()

	// Reorder-buffer collector: cells complete in any order but emit in
	// input order.
	results := make([][]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	remaining := make([]int, len(cfgs))
	for i := range results {
		results[i] = make([]Result, replicas)
		remaining[i] = replicas
	}
	next := 0
	for d := range done {
		results[d.cell][d.rep] = d.res
		if d.err != nil && errs[d.cell] == nil {
			errs[d.cell] = d.err
		}
		remaining[d.cell]--
		for next < len(cfgs) && remaining[next] == 0 {
			if errs[next] != nil {
				emit(next, ReplicaSet{}, errs[next])
			} else {
				emit(next, aggregate(results[next]), nil)
			}
			results[next] = nil // free replica results as cells stream out
			next++
		}
	}
}

// RunSweep executes every configuration with `replicas` replicas on one
// shared worker pool and returns the aggregated cells in input order. The
// returned error is the first cell error encountered (its cell's ReplicaSet
// is zero-valued; later cells still run).
func RunSweep(cfgs []Config, replicas, workers int) ([]ReplicaSet, error) {
	sets := make([]ReplicaSet, len(cfgs))
	var first error
	StreamSweep(cfgs, replicas, workers, func(i int, rs ReplicaSet, err error) {
		sets[i] = rs
		if err != nil && first == nil {
			first = err
		}
	})
	return sets, first
}

package sim

import "fmt"

// packet is one in-flight packet, 24 bytes. In stepper mode a packet is just
// its routing state (current node, destination, stepper choice): the route
// itself is recomputed one edge at a time. In the legacy AppendRoute mode
// the materialized route lives in the arena's parallel routes slice and hop
// indexes into it.
type packet struct {
	genTime  float64
	cur      int32
	dst      int32
	hop      int32
	rem      int32 // remaining services charged to rNow (fault runs only)
	rs       int32 // remaining saturated services charged to rsNow (fault runs only)
	gen      uint8
	choice   uint8
	measured bool
}

// Packet handles pack a 24-bit arena index with a 7-bit generation tag. The
// tag is bumped every time a slot is recycled, so a stale handle — one held
// across a release — fails the generation check instead of silently aliasing
// the slot's next occupant.
const (
	arenaIndexBits = 24
	arenaIndexMask = 1<<arenaIndexBits - 1
	arenaGenMask   = 0x7f
)

// arena is an index-based packet pool: packets live in one contiguous slice
// and are addressed by int32 handles. Compared with the seed's
// pointer-freelist it allocates O(log n) times (slice doublings) instead of
// once per distinct in-flight packet, keeps simultaneously live packets
// adjacent in memory, and lets stations queue 4-byte handles instead of
// 8-byte pointers.
//
// The zero value is an empty arena; set legacy before first use to enable
// the parallel route buffers.
type arena struct {
	packets []packet
	routes  [][]int // parallel route buffers; legacy mode only
	free    []int32 // recycled slot indices
	legacy  bool
}

// reset empties the arena for reuse, keeping the packet and free-list
// capacity, and switches it to the given mode. Recycled slots restart at
// generation 0 exactly as in a fresh arena (alloc overwrites each slot with
// a zero packet as it re-extends the slice), so handle sequences are
// indistinguishable from a fresh arena's. Legacy route buffers are dropped
// and regrow on demand.
func (a *arena) reset(legacy bool) {
	a.packets = a.packets[:0]
	for i := range a.routes {
		a.routes[i] = nil
	}
	a.routes = a.routes[:0]
	a.free = a.free[:0]
	a.legacy = legacy
}

// alloc returns a handle and pointer to a zero-hop-initialized packet slot.
// The pointer is valid until the next alloc (which may grow the backing
// slice).
func (a *arena) alloc() (int32, *packet) {
	var idx int32
	if n := len(a.free); n > 0 {
		idx = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		if len(a.packets) > arenaIndexMask {
			panic(fmt.Sprintf("sim: more than %d simultaneously live packets", arenaIndexMask+1))
		}
		a.packets = append(a.packets, packet{})
		if a.legacy {
			a.routes = append(a.routes, nil)
		}
		idx = int32(len(a.packets) - 1)
	}
	p := &a.packets[idx]
	p.hop = 0
	p.rem, p.rs = 0, 0
	return idx | int32(p.gen)<<arenaIndexBits, p
}

// get resolves a handle, panicking on a generation mismatch (a use of a
// handle whose slot has since been recycled).
func (a *arena) get(h int32) *packet {
	p := &a.packets[h&arenaIndexMask]
	if p.gen != uint8(h>>arenaIndexBits)&arenaGenMask {
		panic(fmt.Sprintf("sim: stale packet handle %#x (generation %d, slot at %d)", h, uint8(h>>arenaIndexBits)&arenaGenMask, p.gen))
	}
	return p
}

// route returns the materialized route buffer for h (legacy mode).
func (a *arena) route(h int32) []int { return a.routes[h&arenaIndexMask] }

// setRoute stores the (possibly re-grown) route buffer for h (legacy mode).
func (a *arena) setRoute(h int32, r []int) { a.routes[h&arenaIndexMask] = r }

// release recycles h's slot, bumping its generation tag.
func (a *arena) release(h int32) {
	idx := h & arenaIndexMask
	p := &a.packets[idx]
	if p.gen != uint8(h>>arenaIndexBits)&arenaGenMask {
		panic(fmt.Sprintf("sim: double release of packet handle %#x", h))
	}
	p.gen = (p.gen + 1) & arenaGenMask
	a.free = append(a.free, idx)
}

package sim

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

var errTestCancel = errors.New("test cancel cause")

// TestRunCanceledEngine pins engine-level cancellation: a run whose context
// is already canceled aborts mid-flight and surfaces the cancellation
// cause, not a partial Result.
func TestRunCanceledEngine(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errTestCancel)
	cfg := arrayConfig(8, 0.7, 11)
	cfg.Horizon = 50000 // plenty of events, so the poll must fire
	cfg.Ctx = ctx
	_, err := Run(cfg)
	if !errors.Is(err, errTestCancel) {
		t.Fatalf("canceled run returned %v, want the cancellation cause", err)
	}
}

// TestStreamSweepAdaptiveCanceledBeforeStart pins pool-level fast-fail: a
// sweep launched on an already-canceled context still emits every cell
// exactly once, in input order, each carrying the cancellation cause, and
// leaks no worker goroutines.
func TestStreamSweepAdaptiveCanceledBeforeStart(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errTestCancel)
	cfgs := make([]Config, 6)
	for i := range cfgs {
		cfgs[i] = arrayConfig(5, 0.6, uint64(100+i))
		cfgs[i].Warmup, cfgs[i].Horizon = 100, 1000
	}
	var order []int
	StreamSweepAdaptive(ctx, cfgs, SweepOpts{TargetCI: 1e-9, MinReps: 3, MaxReps: 9, Workers: 4},
		func(i int, rs ReplicaSet, err error) {
			order = append(order, i)
			if !errors.Is(err, errTestCancel) {
				t.Errorf("cell %d: got err %v, want the cancellation cause", i, err)
			}
		})
	for i, c := range order {
		if c != i {
			t.Fatalf("emission order %v is not input order", order)
		}
	}
	if len(order) != len(cfgs) {
		t.Fatalf("emitted %d cells, want %d", len(order), len(cfgs))
	}
	waitGoroutines(t, before)
}

// TestStreamSweepAdaptiveCanceledMidLadder cancels while the ladder is in
// flight (from inside the first cell's emit, which runs on the calling
// goroutine while workers continue): every cell must still emit exactly
// once in order — converged cells normally, interrupted cells with the
// cause — and the pool must drain without leaking goroutines. Run under
// -race this also exercises the engine-level abort path concurrently with
// worker scheduling.
func TestStreamSweepAdaptiveCanceledMidLadder(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	cfgs := make([]Config, 8)
	for i := range cfgs {
		cfgs[i] = arrayConfig(5, 0.6, uint64(200+i))
		cfgs[i].Warmup, cfgs[i].Horizon = 100, 1000
	}
	var order []int
	StreamSweepAdaptive(ctx, cfgs, SweepOpts{TargetCI: 1e-9, MinReps: 3, MaxReps: 9, Workers: 4},
		func(i int, rs ReplicaSet, err error) {
			order = append(order, i)
			if i == 0 {
				cancel(errTestCancel)
			}
			if err != nil && !errors.Is(err, errTestCancel) {
				t.Errorf("cell %d: unexpected error %v", i, err)
			}
		})
	if len(order) != len(cfgs) {
		t.Fatalf("emitted %d cells, want %d", len(order), len(cfgs))
	}
	for i, c := range order {
		if c != i {
			t.Fatalf("emission order %v is not input order", order)
		}
	}
	waitGoroutines(t, before)
}

// waitGoroutines fails the test if the goroutine count stays above the
// pre-sweep baseline (with slack for runtime helpers) after a grace period.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not drain: %d, baseline %d", runtime.NumGoroutine(), baseline)
}

package sim

import (
	"context"
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/queueing"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// oneEdge is a minimal network — two nodes, one edge, packets enter only at
// node 0 — used to validate the engine against single-queue theory.
type oneEdge struct{}

func (oneEdge) Name() string       { return "one-edge" }
func (oneEdge) NumNodes() int      { return 2 }
func (oneEdge) NumEdges() int      { return 1 }
func (oneEdge) EdgeFrom(e int) int { return 0 }
func (oneEdge) EdgeTo(e int) int   { return 1 }
func (oneEdge) SourceNodes() []int { return []int{0} }

// oneEdgeRouter always routes over the single edge.
type oneEdgeRouter struct{}

func (oneEdgeRouter) AppendRoute(buf []int, src, dst int, _ *xrand.RNG) []int {
	return append(buf, 0)
}
func (oneEdgeRouter) MaxRouteLen() int { return 1 }

func singleQueueConfig(lambda float64, disc Discipline, svc ServiceModel, seed uint64) Config {
	return Config{
		Net:        oneEdge{},
		Router:     oneEdgeRouter{},
		Dest:       routing.FixedDest{Node: 1},
		NodeRate:   lambda,
		Warmup:     2000,
		Horizon:    60000,
		Seed:       seed,
		Discipline: disc,
		Service:    svc,
	}
}

func TestSingleQueueMD1(t *testing.T) {
	lambda := 0.7
	res, err := Run(singleQueueConfig(lambda, FIFO, Deterministic, 1))
	if err != nil {
		t.Fatal(err)
	}
	wantT, _ := queueing.MD1Delay(lambda, 1)
	wantN, _ := queueing.MD1Number(lambda, 1)
	if rel(res.MeanDelay, wantT) > 0.03 {
		t.Errorf("M/D/1 delay: sim %v, theory %v", res.MeanDelay, wantT)
	}
	if rel(res.MeanN, wantN) > 0.03 {
		t.Errorf("M/D/1 number: sim %v, theory %v", res.MeanN, wantN)
	}
	if res.LittleRelErr > 0.02 {
		t.Errorf("Little's law self-check failed: %v", res.LittleRelErr)
	}
	// One hop per packet: E[R] == E[N].
	if rel(res.MeanR, res.MeanN) > 1e-9 {
		t.Errorf("R != N on a single queue: %v vs %v", res.MeanR, res.MeanN)
	}
}

func TestSingleQueueMM1(t *testing.T) {
	lambda := 0.7
	cfg := singleQueueConfig(lambda, FIFO, Exponential, 2)
	cfg.Horizon = 250000 // M/M/1 mixes slowly at rho = 0.7
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantT, _ := queueing.MM1Delay(lambda, 1)
	wantN, _ := queueing.MM1Number(lambda, 1)
	if rel(res.MeanDelay, wantT) > 0.04 {
		t.Errorf("M/M/1 delay: sim %v, theory %v", res.MeanDelay, wantT)
	}
	if rel(res.MeanN, wantN) > 0.04 {
		t.Errorf("M/M/1 number: sim %v, theory %v", res.MeanN, wantN)
	}
}

func TestSingleQueuePSMatchesMM1(t *testing.T) {
	// PS with deterministic unit service has the M/M/1 equilibrium
	// distribution (the product-form insensitivity Theorem 5 relies on).
	lambda := 0.7
	res, err := Run(singleQueueConfig(lambda, PS, Deterministic, 3))
	if err != nil {
		t.Fatal(err)
	}
	wantN, _ := queueing.MM1Number(lambda, 1)
	if rel(res.MeanN, wantN) > 0.05 {
		t.Errorf("PS/D/1 number: sim %v, M/M/1 theory %v", res.MeanN, wantN)
	}
}

func TestSingleQueueEdgeRateMeasured(t *testing.T) {
	lambda := 0.4
	res, err := Run(singleQueueConfig(lambda, FIFO, Deterministic, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rel(res.EdgeRates[0], lambda) > 0.03 {
		t.Errorf("measured edge rate %v, want %v", res.EdgeRates[0], lambda)
	}
}

func arrayConfig(n int, rho float64, seed uint64) Config {
	a := topology.NewArray2D(n)
	return Config{
		Net:      a,
		Router:   routing.GreedyXY{A: a},
		Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate: bounds.LambdaForLoad(n, rho),
		Warmup:   500,
		Horizon:  4000,
		Seed:     seed,
	}
}

func TestArrayDeterminism(t *testing.T) {
	a, err := Run(arrayConfig(5, 0.5, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(arrayConfig(5, 0.5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanDelay != b.MeanDelay || a.MeanN != b.MeanN || a.Delivered != b.Delivered {
		t.Error("same seed produced different results")
	}
	c, err := Run(arrayConfig(5, 0.5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanDelay == c.MeanDelay && a.Delivered == c.Delivered {
		t.Error("different seeds produced identical results")
	}
}

func TestArrayBoundsSandwich(t *testing.T) {
	// The paper's main statement: lower bound <= simulated T <= upper
	// bound. Allow small tolerance for simulation noise.
	for _, tc := range []struct {
		n   int
		rho float64
	}{{5, 0.5}, {5, 0.8}, {6, 0.8}, {9, 0.5}} {
		cfg := arrayConfig(tc.n, tc.rho, 11)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lower := bounds.BestLowerBound(tc.n, cfg.NodeRate)
		upper := bounds.UpperBoundT(tc.n, cfg.NodeRate)
		if res.MeanDelay < lower*0.97 {
			t.Errorf("n=%d rho=%v: sim T %v below lower bound %v", tc.n, tc.rho, res.MeanDelay, lower)
		}
		if res.MeanDelay > upper*1.03 {
			t.Errorf("n=%d rho=%v: sim T %v above upper bound %v", tc.n, tc.rho, res.MeanDelay, upper)
		}
		if res.LittleRelErr > 0.03 {
			t.Errorf("n=%d rho=%v: Little self-check %v", tc.n, tc.rho, res.LittleRelErr)
		}
	}
}

func TestArrayEdgeRatesMatchTheorem6(t *testing.T) {
	n := 5
	cfg := arrayConfig(n, 0.5, 13)
	cfg.Horizon = 8000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := cfg.Net.(*topology.Array2D)
	want := bounds.EdgeRates(a, cfg.NodeRate)
	for e := range want {
		if math.Abs(res.EdgeRates[e]-want[e]) > 0.10*want[e]+0.01 {
			r, c, d := a.EdgeInfo(e)
			t.Errorf("edge (%d,%d,%v): measured %v, Theorem 6 %v", r, c, d, res.EdgeRates[e], want[e])
		}
	}
}

func TestArrayTableIShape(t *testing.T) {
	// At low load the M/D/1 estimate is accurate; at high load it
	// overestimates the simulated delay (the paper's central observation
	// about Table I).
	n := 10
	low := arrayConfig(n, 0.2, 17)
	resLow, err := Run(low)
	if err != nil {
		t.Fatal(err)
	}
	est := bounds.MD1ApproxT(n, low.NodeRate)
	if rel(resLow.MeanDelay, est) > 0.08 {
		t.Errorf("rho=0.2: sim %v vs estimate %v should be close", resLow.MeanDelay, est)
	}
	high := arrayConfig(n, 0.95, 19)
	high.Warmup, high.Horizon = 2000, 12000
	resHigh, err := Run(high)
	if err != nil {
		t.Fatal(err)
	}
	estHigh := bounds.MD1ApproxT(n, high.NodeRate)
	if resHigh.MeanDelay > estHigh {
		t.Errorf("rho=0.95: sim %v should fall below estimate %v", resHigh.MeanDelay, estHigh)
	}
}

func TestPSDominatesFIFOAndMatchesJackson(t *testing.T) {
	// Theorem 5: E[N] under PS (== Jackson) upper-bounds E[N] under FIFO
	// with deterministic service; and PS-with-unit-service matches the
	// Jackson product form numerically.
	n := 5
	rho := 0.7
	fifoCfg := arrayConfig(n, rho, 23)
	fifoCfg.Warmup, fifoCfg.Horizon = 1000, 8000
	psCfg := fifoCfg
	psCfg.Discipline = PS
	jackCfg := fifoCfg
	jackCfg.Service = Exponential

	resFIFO, err := Run(fifoCfg)
	if err != nil {
		t.Fatal(err)
	}
	resPS, err := Run(psCfg)
	if err != nil {
		t.Fatal(err)
	}
	resJack, err := Run(jackCfg)
	if err != nil {
		t.Fatal(err)
	}
	a := fifoCfg.Net.(*topology.Array2D)
	rates := bounds.EdgeRates(a, fifoCfg.NodeRate)
	ones := make([]float64, len(rates))
	for i := range ones {
		ones[i] = 1
	}
	jackN, err := queueing.JacksonNumber(rates, ones)
	if err != nil {
		t.Fatal(err)
	}
	if resPS.MeanN < resFIFO.MeanN*0.98 {
		t.Errorf("Theorem 5 violated: PS N %v < FIFO N %v", resPS.MeanN, resFIFO.MeanN)
	}
	if rel(resPS.MeanN, jackN) > 0.10 {
		t.Errorf("PS N %v far from Jackson product form %v", resPS.MeanN, jackN)
	}
	if rel(resJack.MeanN, jackN) > 0.10 {
		t.Errorf("exponential-service N %v far from Jackson product form %v", resJack.MeanN, jackN)
	}
}

func TestRPerNReasonable(t *testing.T) {
	// Table II: r < n̄₂, and roughly 2.57 for n=5 at moderate load.
	n := 5
	cfg := arrayConfig(n, 0.5, 29)
	cfg.Warmup, cfg.Horizon = 1000, 10000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RPerN >= bounds.MeanDistExcl(n) {
		t.Errorf("r = %v should be below n̄₂ = %v", res.RPerN, bounds.MeanDistExcl(n))
	}
	if math.Abs(res.RPerN-2.574) > 0.25 {
		t.Errorf("r = %v, paper reports ~2.574", res.RPerN)
	}
}

func TestRsTracking(t *testing.T) {
	n := 5
	cfg := arrayConfig(n, 0.8, 31)
	a := cfg.Net.(*topology.Array2D)
	cfg.Saturated = bounds.SaturatedEdges(a)
	cfg.Warmup, cfg.Horizon = 1000, 8000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanRs <= 0 || res.MeanRs > res.MeanR {
		t.Errorf("R_s = %v out of (0, R=%v]", res.MeanRs, res.MeanR)
	}
	// r_s can exceed s̄ only by noise; it is bounded by the max saturated
	// crossings per packet.
	if res.RsPerN > float64(bounds.MaxSaturatedCrossings(n)) {
		t.Errorf("r_s = %v exceeds max crossings %d", res.RsPerN, bounds.MaxSaturatedCrossings(n))
	}
}

func TestPerNodeArrivalsMatchMerged(t *testing.T) {
	// Ablation: per-node Poisson clocks and the merged process agree.
	cfg := arrayConfig(5, 0.6, 37)
	cfg.Warmup, cfg.Horizon = 1000, 8000
	merged, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PerNodeArrivals = true
	cfg.Seed = 38
	perNode, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rel(perNode.MeanDelay, merged.MeanDelay) > 0.08 {
		t.Errorf("per-node %v vs merged %v delays diverge", perNode.MeanDelay, merged.MeanDelay)
	}
	if rel(perNode.MeanN, merged.MeanN) > 0.10 {
		t.Errorf("per-node %v vs merged %v N diverge", perNode.MeanN, merged.MeanN)
	}
}

func TestSlottedWithinTauOfContinuous(t *testing.T) {
	// §5.2: the slotted model's delay is within τ of the continuous one.
	cfg := arrayConfig(4, 0.6, 41)
	cfg.Warmup, cfg.Horizon = 1000, 8000
	cont, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SlotTau = 1
	slot, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(slot.MeanDelay - cont.MeanDelay); diff > cfg.SlotTau+0.3 {
		t.Errorf("slotted %v vs continuous %v differ by %v > τ", slot.MeanDelay, cont.MeanDelay, diff)
	}
}

func TestZeroHopPacketsCounted(t *testing.T) {
	// With a fixed destination equal to the only source, every packet has
	// delay zero and the system stays empty.
	cfg := Config{
		Net:      topology.NewArray2D(3),
		Router:   routing.GreedyXY{A: topology.NewArray2D(3)},
		Dest:     routing.FixedDest{Node: 4},
		NodeRate: 0.05,
		Horizon:  1000,
		Seed:     43,
	}
	// All 9 nodes generate; packets from node 4 to node 4 have zero hops.
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay.Min() != 0 {
		t.Errorf("expected some zero-delay packets, min = %v", res.Delay.Min())
	}
	if res.MeanDelay <= 0 {
		t.Errorf("non-trivial packets should have positive delay")
	}
}

func TestRunReplicasDeterministicAcrossWorkers(t *testing.T) {
	cfg := arrayConfig(4, 0.5, 47)
	cfg.Warmup, cfg.Horizon = 200, 1500
	one, err := RunReplicas(context.Background(), cfg, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunReplicas(context.Background(), cfg, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if one.MeanDelay != many.MeanDelay || one.Delay.Count() != many.Delay.Count() {
		t.Error("replica results depend on worker count")
	}
	if len(one.Replicas) != 6 {
		t.Error("wrong replica count")
	}
	if one.DelayCI <= 0 {
		t.Error("no across-replica CI")
	}
	// Replicas must differ from each other (independent streams).
	if one.Replicas[0].MeanDelay == one.Replicas[1].MeanDelay {
		t.Error("replicas identical; streams not split")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := arrayConfig(4, 0.5, 1)
	cfg.Horizon = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero horizon accepted")
	}
	cfg = arrayConfig(4, 0.5, 1)
	cfg.ServiceTime = []float64{1}
	if _, err := Run(cfg); err == nil {
		t.Error("short ServiceTime accepted")
	}
	cfg = arrayConfig(4, 0.5, 1)
	cfg.NodeRate = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative rate accepted")
	}
	cfg = arrayConfig(4, 0.5, 1)
	cfg.SlotTau = 1
	cfg.PerNodeArrivals = true
	if _, err := Run(cfg); err == nil {
		t.Error("ambiguous arrival model accepted")
	}
}

func TestVariableServiceRates(t *testing.T) {
	// Doubling every edge's speed at fixed λ halves the delay of the
	// M/D/1-like single queue; on the array it should cut delay roughly in
	// half too (service times scale, waiting scales with them).
	cfg := arrayConfig(4, 0.5, 53)
	cfg.Warmup, cfg.Horizon = 1000, 6000
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast := cfg
	fast.ServiceTime = make([]float64, cfg.Net.NumEdges())
	for i := range fast.ServiceTime {
		fast.ServiceTime[i] = 0.5
	}
	resFast, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	ratio := slow.MeanDelay / resFast.MeanDelay
	if ratio < 1.8 || ratio > 2.4 {
		t.Errorf("doubling all rates changed delay by %vx, want ~2x", ratio)
	}
}

func tandemConfig(n int, lambda float64, svc ServiceModel, seed uint64) Config {
	l := topology.NewLinear(n)
	return Config{
		Net:      topology.Restrict{Network: l, Nodes: []int{0}},
		Router:   routing.LinearRoute{L: l},
		Dest:     routing.FixedDest{Node: n - 1},
		NodeRate: lambda,
		Warmup:   3000,
		Horizon:  40000,
		Seed:     seed,
		Service:  svc,
	}
}

func TestTandemDeterministicExactTheory(t *testing.T) {
	// Tandem deterministic queues: departures from the first (M/D/1) queue
	// are spaced at least one service time apart, so downstream queues
	// never hold a waiting packet: N = N_MD1(λ) + (d-1)λ exactly, and the
	// delay is T_MD1 + (d-1).
	n := 6
	lambda := 0.8
	res, err := Run(tandemConfig(n, lambda, Deterministic, 83))
	if err != nil {
		t.Fatal(err)
	}
	nmd1, _ := queueing.MD1Number(lambda, 1)
	tmd1, _ := queueing.MD1Delay(lambda, 1)
	d := float64(n - 1)
	wantN := nmd1 + (d-1)*lambda
	wantT := tmd1 + (d - 1)
	if rel(res.MeanN, wantN) > 0.03 {
		t.Errorf("tandem N = %v, theory %v", res.MeanN, wantN)
	}
	if rel(res.MeanDelay, wantT) > 0.03 {
		t.Errorf("tandem T = %v, theory %v", res.MeanDelay, wantT)
	}
}

func TestTandemExponentialBurke(t *testing.T) {
	// Burke's theorem: the output of an M/M/1 queue is Poisson, so an
	// exponential tandem is d independent M/M/1 queues: N = d·λ/(1-λ).
	n := 5
	lambda := 0.6
	cfg := tandemConfig(n, lambda, Exponential, 89)
	cfg.Horizon = 120000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantN := float64(n-1) * lambda / (1 - lambda)
	if rel(res.MeanN, wantN) > 0.05 {
		t.Errorf("exponential tandem N = %v, Burke theory %v", res.MeanN, wantN)
	}
}

func TestRestrictSources(t *testing.T) {
	// With entry restricted to node 0, no packets are generated elsewhere:
	// the first edge carries rate λ and every edge carries the same rate.
	res, err := Run(tandemConfig(4, 0.5, Deterministic, 97))
	if err != nil {
		t.Fatal(err)
	}
	l := topology.NewLinear(4)
	for i := 0; i < 3; i++ {
		e := l.EdgeRight(i)
		if rel(res.EdgeRates[e], 0.5) > 0.05 {
			t.Errorf("edge %d rate %v, want 0.5", e, res.EdgeRates[e])
		}
	}
	for i := 1; i < 4; i++ {
		e := l.EdgeLeft(i)
		if res.EdgeRates[e] != 0 {
			t.Errorf("left edge %d should be unused, rate %v", e, res.EdgeRates[e])
		}
	}
}

func TestFurthestFirstSingleQueueIsWorkConserving(t *testing.T) {
	// On a single queue every packet has one hop left, so furthest-first
	// degenerates to FIFO and must match M/D/1 theory.
	lambda := 0.7
	cfg := singleQueueConfig(lambda, FurthestFirst, Deterministic, 101)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantN, _ := queueing.MD1Number(lambda, 1)
	if rel(res.MeanN, wantN) > 0.03 {
		t.Errorf("furthest-first single queue N = %v, M/D/1 %v", res.MeanN, wantN)
	}
}

func TestFurthestFirstArrayStable(t *testing.T) {
	// The scheduling order does not change stability or the number in
	// system by much; mean N must stay in the FIFO ballpark and Little's
	// law must hold.
	cfg := arrayConfig(5, 0.8, 103)
	cfg.Warmup, cfg.Horizon = 1000, 8000
	fifoRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Discipline = FurthestFirst
	ffRes, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rel(ffRes.MeanN, fifoRes.MeanN) > 0.25 {
		t.Errorf("furthest-first N %v far from FIFO N %v", ffRes.MeanN, fifoRes.MeanN)
	}
	if ffRes.LittleRelErr > 0.03 {
		t.Errorf("Little self-check %v", ffRes.LittleRelErr)
	}
}

func TestNDistMatchesGeometricMM1(t *testing.T) {
	// For a single M/M/1 queue the equilibrium N is geometric:
	// Pr[N=k] = (1-ρ)ρ^k. The exact time-weighted NDist must match.
	lambda := 0.6
	cfg := singleQueueConfig(lambda, FIFO, Exponential, 61)
	cfg.TrackNDist = true
	cfg.Horizon = 150000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NDist == nil {
		t.Fatal("NDist not tracked")
	}
	total := 0.0
	mean := 0.0
	for k, p := range res.NDist {
		total += p
		mean += float64(k) * p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("NDist sums to %v", total)
	}
	if rel(mean, res.MeanN) > 1e-9 {
		t.Errorf("NDist mean %v != MeanN %v", mean, res.MeanN)
	}
	for k := 0; k <= 4; k++ {
		want := (1 - lambda) * math.Pow(lambda, float64(k))
		if math.Abs(res.NDist[k]-want) > 0.02 {
			t.Errorf("Pr[N=%d] = %v, geometric predicts %v", k, res.NDist[k], want)
		}
	}
	// Tail helper consistency.
	if got := res.TailProb(0); math.Abs(got-(1-res.NDist[0])) > 1e-9 {
		t.Errorf("TailProb(0) = %v", got)
	}
}

func TestNDistDominationFIFOvsPS(t *testing.T) {
	// Theorem 5 is a stochastic dominance statement: Pr[N_FIFO > k] should
	// not exceed Pr[N_PS > k] (up to noise) for every k.
	cfg := arrayConfig(5, 0.8, 67)
	cfg.Warmup, cfg.Horizon = 1500, 12000
	cfg.TrackNDist = true
	fifo, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	psCfg := cfg
	psCfg.Discipline = PS
	ps, err := Run(psCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Check dominance at the FIFO distribution's deciles.
	violations := 0
	for k := 0; k < len(fifo.NDist); k += 5 {
		if fifo.TailProb(k) > ps.TailProb(k)+0.05 {
			violations++
		}
	}
	if violations > 0 {
		t.Errorf("%d dominance violations beyond noise", violations)
	}
}

func TestEdgeOccupancyMiddleDominates(t *testing.T) {
	// §4.4: middle queues hold more packets than peripheral ones.
	n := 6
	cfg := arrayConfig(n, 0.9, 71)
	cfg.Warmup, cfg.Horizon = 1500, 10000
	cfg.TrackEdgeOccupancy = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeOccupancy == nil {
		t.Fatal("occupancy not tracked")
	}
	a := cfg.Net.(*topology.Array2D)
	sat := bounds.SaturatedEdges(a)
	var mid, edge stats.Welford
	for e := range res.EdgeOccupancy {
		r, c, d := a.EdgeInfo(e)
		_ = r
		_ = c
		_ = d
		if sat[e] {
			mid.Add(res.EdgeOccupancy[e])
		} else if i := rateIndexForTest(a, e); i == 1 || i == n-1 {
			edge.Add(res.EdgeOccupancy[e])
		}
	}
	if mid.Mean() <= 2*edge.Mean() {
		t.Errorf("middle occupancy %v not clearly above periphery %v", mid.Mean(), edge.Mean())
	}
}

// rateIndexForTest mirrors the Theorem 6 rate index of an edge.
func rateIndexForTest(a *topology.Array2D, e int) int {
	r, c, d := a.EdgeInfo(e)
	switch d {
	case topology.Right:
		return c + 1
	case topology.Left:
		return c
	case topology.Down:
		return r + 1
	default:
		return r
	}
}

func TestSingleQueueOccupancyMatchesMD1(t *testing.T) {
	lambda := 0.7
	cfg := singleQueueConfig(lambda, FIFO, Deterministic, 73)
	cfg.TrackEdgeOccupancy = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantN, _ := queueing.MD1Number(lambda, 1)
	if rel(res.EdgeOccupancy[0], wantN) > 0.05 {
		t.Errorf("occupancy %v, M/D/1 theory %v", res.EdgeOccupancy[0], wantN)
	}
	// With a single queue, occupancy == N.
	if rel(res.EdgeOccupancy[0], res.MeanN) > 1e-9 {
		t.Errorf("occupancy %v != MeanN %v", res.EdgeOccupancy[0], res.MeanN)
	}
}

func TestDelayHistogram(t *testing.T) {
	cfg := arrayConfig(5, 0.7, 79)
	cfg.DelayHistWidth = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DelayHist == nil {
		t.Fatal("histogram not tracked")
	}
	if res.DelayHist.Total() != res.Delivered {
		t.Errorf("histogram count %d != delivered %d", res.DelayHist.Total(), res.Delivered)
	}
	p50 := res.DelayHist.Quantile(0.5)
	p99 := res.DelayHist.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("quantiles disordered: p50=%v p99=%v", p50, p99)
	}
	if res.Delay.Max() > float64(res.DelayHist.Quantile(1))+0.5 {
		t.Errorf("max %v beyond histogram top %v", res.Delay.Max(), res.DelayHist.Quantile(1))
	}
}

func TestParallelHelper(t *testing.T) {
	out := make([]int, 100)
	Parallel(100, 8, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("Parallel skipped index %d", i)
		}
	}
	Parallel(0, 4, func(int) { t.Fatal("should not run") })
}

func rel(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

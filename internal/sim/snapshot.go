package sim

// Steady-state checkpoints for the event-driven engine.
//
// A Snapshot captures the engine's dynamic state at the end of a run — the
// RNG mid-stream, the event tree's pending events as raw (time, seq) key
// words plus its sequence counter, the merged arrival clock's two scalars,
// and every queued packet in FIFO order — and none of its measurement
// state. Unlike the slotted engine, times here are continuous and
// ABSOLUTE: a resumed run continues the captured clock rather than
// restarting at zero (its measurement window is [Time+Warmup,
// Time+Warmup+Horizon]), which sidesteps every floating-point rebasing
// hazard. Restored packets are canonicalized: genTime zeroed and the
// measured flag cleared, exactly the state in-flight warmup packets have
// in an uninterrupted run, so
//
//	X = Run{Warmup: W, Horizon: H₁, Capture: true}
//	Y = Run{Resume: X.Snapshot, Warmup: W₂, Horizon: H₂}
//	U = Run{Warmup: W + H₁ + W₂, Horizon: H₂}
//
// gives math.Float64bits-identical Results for Y and U
// (TestSimSnapshotBitExactContinuation): the RNG stream, the (time, seq)
// event order, and the integer-valued N/R processes all continue exactly.
// The in-system counters are recomputed from the restored packets with
// exact integer arithmetic, so they equal the uninterrupted run's
// incrementally maintained values bit for bit.
//
// Checkpoints cover the engine's fast path: FIFO discipline, stepper
// routing (packets carry no materialized route) and the merged Poisson,
// per-node Poisson or slotted arrival models. PS and FurthestFirst
// stations, custom Arrivals processes and MaterializeRoutes runs are
// rejected at Capture and Resume — their in-flight state (remaining PS
// work, route slices, process internals) is not serializable here.
//
// Resuming at a different NodeRate warm-starts the next point of a
// ρ-ladder: the merged clock's next arrival is redrawn at the new rate
// (memorylessness makes that the exact conditional law) and slotted-model
// batch sizes are drawn per slot anyway. Per-node clocks would need every
// source's event redrawn, which breaks the captured event order, so a
// rate change under PerNodeArrivals is an error.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/routing"
)

// Snapshot is a serializable steady-state checkpoint of an event-driven
// run, produced by Config.Capture and consumed by Config.Resume.
type Snapshot struct {
	// Time is the absolute simulation time of the capture point (the
	// captured run's measurement end); the resumed run continues from it.
	Time float64
	// NodeRate, SlotTau and PerNode record the captured arrival model;
	// TopoName/NumNodes/NumEdges identify the topology. Resume requires
	// the model and topology to match; NodeRate may differ except under
	// PerNode (see the package comment).
	NodeRate float64
	SlotTau  float64
	PerNode  bool
	TopoName string
	NumNodes int
	NumEdges int

	// RNG is the engine stream mid-sequence; Seq the event tree's
	// tie-break counter; NextArrBits/NextArrMeta the merged arrival
	// clock's scalars, verbatim (meta 0 = stream inactive).
	RNG         [4]uint64
	Seq         uint64
	NextArrBits uint64
	NextArrMeta uint64

	// Pending tree events as raw key words (absolute times, captured
	// sequence numbers), one triple per occupied slot.
	EventSlots []int32
	EventTBits []uint64
	EventMeta  []uint64

	// QueueLen[e] is edge e's FIFO length (including in service); the Pkt
	// arrays hold the queued packets edge-major in service order,
	// canonicalized (genTime and measured dropped).
	QueueLen  []int32
	PktCur    []int32
	PktDst    []int32
	PktChoice []uint8
}

// snapshotGate reports whether cfg is on the checkpointable path, with a
// reason when not. It needs the resolved stepper state, so it runs in
// Runner.Run after validation.
func snapshotGate(cfg Config) error {
	switch {
	case cfg.Discipline != FIFO:
		return fmt.Errorf("sim: snapshots support only the FIFO discipline (in-flight PS/priority state is not serialized)")
	case cfg.Arrivals != nil:
		return fmt.Errorf("sim: snapshots do not support custom Arrivals processes (their internal state is not serialized)")
	case cfg.MaterializeRoutes:
		return fmt.Errorf("sim: snapshots require stepper routing (materialized route slices are not serialized)")
	}
	if _, _, ok := routing.Steppers(cfg.Router); !ok {
		return fmt.Errorf("sim: snapshots require a router implementing routing.Stepper; %T does not", cfg.Router)
	}
	return nil
}

// snapshot exports the engine's end-of-run state. The loop has drained
// every event up to the horizon, so all captured state is strictly future.
func (e *engine) snapshot() *Snapshot {
	cfg := e.cfg
	sn := &Snapshot{
		Time:        e.end,
		NodeRate:    cfg.NodeRate,
		SlotTau:     cfg.SlotTau,
		PerNode:     cfg.PerNodeArrivals,
		TopoName:    cfg.Net.Name(),
		NumNodes:    cfg.Net.NumNodes(),
		NumEdges:    cfg.Net.NumEdges(),
		RNG:         e.rng.State(),
		Seq:         e.tree.SeqCounter(),
		NextArrBits: math.Float64bits(e.nextArr),
		NextArrMeta: e.nextArrMeta,
	}
	for slot := 0; slot < e.tree.Slots(); slot++ {
		if tbits, meta, ok := e.tree.SlotKey(slot); ok {
			sn.EventSlots = append(sn.EventSlots, int32(slot))
			sn.EventTBits = append(sn.EventTBits, tbits)
			sn.EventMeta = append(sn.EventMeta, meta)
		}
	}
	sn.QueueLen = make([]int32, sn.NumEdges)
	for ed := range e.fifo {
		st := &e.fifo[ed]
		n := st.Len()
		sn.QueueLen[ed] = int32(n)
		for i := 0; i < n; i++ {
			p := e.arena.get(st.At(i))
			sn.PktCur = append(sn.PktCur, p.cur)
			sn.PktDst = append(sn.PktDst, p.dst)
			sn.PktChoice = append(sn.PktChoice, p.choice)
		}
	}
	return sn
}

// restoreSnapshot fills a freshly prepared engine from sn and shifts its
// measurement window to continue the captured clock. It replaces
// scheduleSources entirely.
func (e *engine) restoreSnapshot(sn *Snapshot) error {
	cfg := e.cfg
	if sn.TopoName != cfg.Net.Name() || sn.NumNodes != cfg.Net.NumNodes() || sn.NumEdges != cfg.Net.NumEdges() {
		return fmt.Errorf("sim: snapshot of %s (%d nodes, %d edges) cannot resume on %s (%d nodes, %d edges)",
			sn.TopoName, sn.NumNodes, sn.NumEdges, cfg.Net.Name(), cfg.Net.NumNodes(), cfg.Net.NumEdges())
	}
	if sn.PerNode != cfg.PerNodeArrivals || sn.SlotTau != cfg.SlotTau {
		return fmt.Errorf("sim: snapshot arrival model (perNode=%v slotTau=%v) does not match the run's (perNode=%v slotTau=%v)",
			sn.PerNode, sn.SlotTau, cfg.PerNodeArrivals, cfg.SlotTau)
	}
	sameRate := cfg.NodeRate == sn.NodeRate
	if !sameRate && cfg.PerNodeArrivals {
		return fmt.Errorf("sim: a NodeRate change under PerNodeArrivals would redraw every source clock; use the merged arrival model for warm-started ladders")
	}
	if len(sn.QueueLen) != sn.NumEdges ||
		len(sn.EventTBits) != len(sn.EventSlots) || len(sn.EventMeta) != len(sn.EventSlots) ||
		len(sn.PktDst) != len(sn.PktCur) || len(sn.PktChoice) != len(sn.PktCur) {
		return fmt.Errorf("sim: snapshot arrays are misaligned")
	}
	var total int
	for _, n := range sn.QueueLen {
		if n < 0 {
			return fmt.Errorf("sim: snapshot has a negative queue length")
		}
		total += int(n)
	}
	if total != len(sn.PktCur) {
		return fmt.Errorf("sim: snapshot queue lengths sum to %d packets but %d are stored", total, len(sn.PktCur))
	}
	if !(sn.Time >= 0) || math.IsInf(sn.Time, 0) || math.IsNaN(sn.Time) {
		return fmt.Errorf("sim: snapshot time %v is invalid", sn.Time)
	}

	// Continue the captured clock: measurement runs [Time+Warmup,
	// Time+Warmup+Horizon] in the captured run's absolute time.
	e.start = sn.Time + cfg.Warmup
	e.end = e.start + cfg.Horizon
	e.rng.Restore(sn.RNG)
	e.tree.RestoreSeqCounter(sn.Seq)
	slots := e.tree.Slots()
	for i, slot := range sn.EventSlots {
		if int(slot) < 0 || int(slot) >= slots {
			return fmt.Errorf("sim: snapshot event slot %d out of range [0, %d)", slot, slots)
		}
		e.tree.RestoreSlot(int(slot), sn.EventTBits[i], sn.EventMeta[i])
	}

	// Queued packets, re-allocated canonically (arena handles are opaque;
	// only queue order and per-packet routing state are observable). The
	// in-system counters are rebuilt with exact integer arithmetic, so
	// they match the uninterrupted run's incrementally maintained values
	// bit for bit.
	k := 0
	for ed := 0; ed < sn.NumEdges; ed++ {
		for i := int32(0); i < sn.QueueLen[ed]; i++ {
			cur, dst, choice := sn.PktCur[k], sn.PktDst[k], sn.PktChoice[k]
			k++
			if int(choice) >= len(e.steppers) {
				return fmt.Errorf("sim: snapshot packet stepper choice %d out of range", choice)
			}
			if cur < 0 || int(cur) >= sn.NumNodes || dst < 0 || int(dst) >= sn.NumNodes {
				return fmt.Errorf("sim: snapshot packet node ids out of range")
			}
			h, p := e.arena.alloc()
			p.genTime = 0
			p.cur = cur
			p.dst = dst
			p.choice = choice
			p.measured = false
			e.fifo[ed].Arrive(h)
			e.nNow++
			st := e.steppers[choice]
			e.rNow += float64(st.RemainingHops(int(cur), int(dst)))
			if cfg.Saturated != nil {
				e.rsNow += float64(e.countSaturatedWalk(st, int(cur), int(dst)))
			}
		}
	}

	// The merged arrival clock. A rate change redraws the next arrival
	// from the restored stream (exponential residuals are memoryless);
	// the slotted clock keeps its next boundary, whose batch sizes are
	// drawn per slot at the new rate anyway.
	e.nextArr = math.Float64frombits(sn.NextArrBits)
	e.nextArrMeta = sn.NextArrMeta
	if cfg.SlotTau == 0 && !cfg.PerNodeArrivals && !sameRate {
		if e.totalRate > 0 {
			e.nextArr = sn.Time + e.rng.Exp(e.totalRate)
			if e.nextArrMeta == 0 {
				e.nextArrMeta = e.tree.ReserveSeq()
			}
		} else {
			e.nextArrMeta = 0
		}
	}
	return nil
}

// Wire format: magic, little-endian fields in struct order, CRC32 (IEEE)
// trailer — the same shape as the slotted engine's.
const simSnapMagic = "EVTSNAP1"

// MarshalBinary encodes the snapshot for on-disk persistence.
func (sn *Snapshot) MarshalBinary() ([]byte, error) {
	if len(sn.EventTBits) != len(sn.EventSlots) || len(sn.EventMeta) != len(sn.EventSlots) ||
		len(sn.PktDst) != len(sn.PktCur) || len(sn.PktChoice) != len(sn.PktCur) {
		return nil, fmt.Errorf("sim: snapshot arrays are misaligned")
	}
	buf := make([]byte, 0, 96+len(sn.TopoName)+20*len(sn.EventSlots)+4*len(sn.QueueLen)+9*len(sn.PktCur))
	buf = append(buf, simSnapMagic...)
	var flags byte
	if sn.PerNode {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sn.Time))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sn.NodeRate))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sn.SlotTau))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.TopoName)))
	buf = append(buf, sn.TopoName...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(sn.NumNodes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(sn.NumEdges))
	for _, w := range sn.RNG {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	buf = binary.LittleEndian.AppendUint64(buf, sn.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, sn.NextArrBits)
	buf = binary.LittleEndian.AppendUint64(buf, sn.NextArrMeta)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.EventSlots)))
	for i := range sn.EventSlots {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(sn.EventSlots[i]))
		buf = binary.LittleEndian.AppendUint64(buf, sn.EventTBits[i])
		buf = binary.LittleEndian.AppendUint64(buf, sn.EventMeta[i])
	}
	if len(sn.QueueLen) != sn.NumEdges {
		return nil, fmt.Errorf("sim: snapshot with %d queue lengths for %d edges", len(sn.QueueLen), sn.NumEdges)
	}
	for _, n := range sn.QueueLen {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.PktCur)))
	for i := range sn.PktCur {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(sn.PktCur[i]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(sn.PktDst[i]))
		buf = append(buf, sn.PktChoice[i])
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// UnmarshalSnapshot decodes a snapshot produced by MarshalBinary,
// rejecting truncated, oversized or corrupted input.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(simSnapMagic)+4 {
		return nil, fmt.Errorf("sim: snapshot truncated (%d bytes)", len(data))
	}
	if string(data[:len(simSnapMagic)]) != simSnapMagic {
		return nil, fmt.Errorf("sim: not an event-engine snapshot (bad magic)")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("sim: snapshot checksum mismatch (corrupted)")
	}
	d := simSnapDecoder{buf: body, off: len(simSnapMagic)}
	sn := &Snapshot{}
	sn.PerNode = d.u8()&1 != 0
	sn.Time = math.Float64frombits(d.u64())
	sn.NodeRate = math.Float64frombits(d.u64())
	sn.SlotTau = math.Float64frombits(d.u64())
	nameLen := int(d.u32())
	if d.err == nil && (nameLen < 0 || nameLen > len(d.buf)-d.off) {
		return nil, fmt.Errorf("sim: snapshot topology name overruns the payload")
	}
	sn.TopoName = string(d.bytes(nameLen))
	sn.NumNodes = int(d.u32())
	sn.NumEdges = int(d.u32())
	for i := range sn.RNG {
		sn.RNG[i] = d.u64()
	}
	sn.Seq = d.u64()
	sn.NextArrBits = d.u64()
	sn.NextArrMeta = d.u64()
	nEv := int(d.u32())
	if d.err == nil && (nEv < 0 || nEv > (len(d.buf)-d.off)/20) {
		return nil, fmt.Errorf("sim: snapshot event count %d overruns the payload", nEv)
	}
	if d.err == nil && (sn.NumEdges < 0 || sn.NumEdges > len(d.buf)) {
		return nil, fmt.Errorf("sim: snapshot edge count %d overruns the payload", sn.NumEdges)
	}
	if d.err != nil {
		return nil, d.err
	}
	if nEv > 0 {
		sn.EventSlots = make([]int32, nEv)
		sn.EventTBits = make([]uint64, nEv)
		sn.EventMeta = make([]uint64, nEv)
		for i := 0; i < nEv; i++ {
			sn.EventSlots[i] = int32(d.u32())
			sn.EventTBits[i] = d.u64()
			sn.EventMeta[i] = d.u64()
		}
	}
	sn.QueueLen = make([]int32, sn.NumEdges)
	for i := range sn.QueueLen {
		sn.QueueLen[i] = int32(d.u32())
	}
	nPkt := int(d.u32())
	if d.err == nil && (nPkt < 0 || nPkt > (len(d.buf)-d.off)/9) {
		return nil, fmt.Errorf("sim: snapshot packet count %d overruns the payload", nPkt)
	}
	if d.err != nil {
		return nil, d.err
	}
	if nPkt > 0 {
		sn.PktCur = make([]int32, nPkt)
		sn.PktDst = make([]int32, nPkt)
		sn.PktChoice = make([]uint8, nPkt)
		for i := 0; i < nPkt; i++ {
			sn.PktCur[i] = int32(d.u32())
			sn.PktDst[i] = int32(d.u32())
			sn.PktChoice[i] = d.u8()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("sim: snapshot has %d trailing bytes", len(d.buf)-d.off)
	}
	return sn, nil
}

// simSnapDecoder reads little-endian fields with sticky short-read errors.
type simSnapDecoder struct {
	buf []byte
	off int
	err error
}

func (d *simSnapDecoder) short() {
	if d.err == nil {
		d.err = fmt.Errorf("sim: snapshot truncated at byte %d", d.off)
	}
}

func (d *simSnapDecoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.short()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *simSnapDecoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.short()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *simSnapDecoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.short()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *simSnapDecoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.short()
		return nil
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v
}

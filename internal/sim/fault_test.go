package sim

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// appendOnlyGreedy wraps GreedyXY behind the bare Router interface so it
// cannot be stepped incrementally — the fault layer must refuse it.
type appendOnlyGreedy struct{ a *topology.Array2D }

func (r appendOnlyGreedy) AppendRoute(buf []int, src, dst int, rng *xrand.RNG) []int {
	return routing.GreedyXY{A: r.a}.AppendRoute(buf, src, dst, rng)
}
func (r appendOnlyGreedy) MaxRouteLen() int { return routing.GreedyXY{A: r.a}.MaxRouteLen() }

func bindFaults(t *testing.T, net topology.Network, spec *fault.Spec) *fault.Plan {
	t.Helper()
	plan, err := spec.Bind(net)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestDESFaultDeterminism: two identical degraded runs must agree to the
// bit on every observable, including the fault counters and downtime
// fractions.
func TestDESFaultDeterminism(t *testing.T) {
	a := topology.NewArray2D(13)
	plan := bindFaults(t, a, &fault.Spec{
		LinkMTBF:     300,
		LinkMTTR:     20,
		LinkFraction: 0.2,
		NodeMTBF:     2000,
		NodeMTTR:     30,
		NodeFraction: 0.05,
		Outages: []fault.Outage{
			{Row0: 3, Col0: 3, Row1: 5, Col1: 5, Start: 500, Duration: 300},
		},
		Misbehave: []fault.Misbehave{
			{Mode: fault.ModeDelay, Nodes: []int{7}, ExtraDelay: 3},
			{Mode: fault.ModeMisroute, Nodes: []int{40}, Prob: 0.3},
			{Mode: fault.ModeDrop, Nodes: []int{100}, Prob: 0.2},
		},
		Seed: 11,
	})
	cfg := Config{
		Net: a, Router: routing.GreedyXY{A: a},
		Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate: 0.1,
		Warmup:   400, Horizon: 3000, Seed: 101,
		Faults: plan,
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(r1.MeanDelay) != math.Float64bits(r2.MeanDelay) ||
		math.Float64bits(r1.MeanN) != math.Float64bits(r2.MeanN) ||
		r1.Delivered != r2.Delivered || r1.Generated != r2.Generated ||
		r1.Dropped != r2.Dropped || r1.DeadEnds != r2.DeadEnds ||
		r1.DetourHops != r2.DetourHops || r1.Misrouted != r2.Misrouted ||
		math.Float64bits(r1.LinkDownFrac) != math.Float64bits(r2.LinkDownFrac) ||
		math.Float64bits(r1.NodeDownFrac) != math.Float64bits(r2.NodeDownFrac) {
		t.Fatalf("repeat run diverged:\n%+v\n%+v", r1, r2)
	}
	// The plan must actually bite.
	if r1.Dropped == 0 || r1.DetourHops == 0 {
		t.Errorf("fault plan inert: Dropped=%d DetourHops=%d", r1.Dropped, r1.DetourHops)
	}
	if r1.DeadEnds > r1.Dropped {
		t.Errorf("DeadEnds %d > Dropped %d", r1.DeadEnds, r1.Dropped)
	}
	if r1.Generated-r1.Delivered-r1.Dropped < 0 {
		t.Errorf("Delivered+Dropped exceed Generated: %+v", r1)
	}
}

// TestDESLinkDownFracStationary: with every link failure-prone the measured
// downtime fraction must approach the two-state Markov stationary value
// MTTR/(MTBF+MTTR) over a long horizon.
func TestDESLinkDownFracStationary(t *testing.T) {
	a := topology.NewArray2D(8)
	const mtbf, mttr = 200.0, 50.0
	plan := bindFaults(t, a, &fault.Spec{
		LinkMTBF: mtbf, LinkMTTR: mttr, LinkFraction: 1, Seed: 3,
	})
	res, err := Run(Config{
		Net: a, Router: routing.GreedyXY{A: a},
		Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate: 0.02,
		Warmup:   100, Horizon: 20000, Seed: 9,
		Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := mttr / (mtbf + mttr) // 0.2
	if res.LinkDownFrac < want*0.85 || res.LinkDownFrac > want*1.15 {
		t.Errorf("LinkDownFrac %v, want within 15%% of %v", res.LinkDownFrac, want)
	}
	if res.NodeDownFrac != 0 {
		t.Errorf("NodeDownFrac %v with no node faults", res.NodeDownFrac)
	}
}

// TestDESFaultValidation sweeps the configurations the fault layer must
// refuse rather than silently misbehave under.
func TestDESFaultValidation(t *testing.T) {
	a := topology.NewArray2D(8)
	plan := bindFaults(t, a, &fault.Spec{LinkMTBF: 100, LinkMTTR: 10, Seed: 1})
	base := Config{
		Net: a, Router: routing.GreedyXY{A: a},
		Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate: 0.1,
		Warmup:   10, Horizon: 100, Seed: 1,
		Faults: plan,
	}
	t.Run("ps discipline", func(t *testing.T) {
		cfg := base
		cfg.Discipline = PS
		if _, err := Run(cfg); err == nil {
			t.Error("PS + faults accepted")
		}
	})
	t.Run("materialized routes", func(t *testing.T) {
		cfg := base
		cfg.MaterializeRoutes = true
		if _, err := Run(cfg); err == nil {
			t.Error("MaterializeRoutes + faults accepted")
		}
	})
	t.Run("saturated tracking", func(t *testing.T) {
		// R_s tracking works on degraded networks since the per-packet
		// remaining-service accounting: the combination must run.
		cfg := base
		cfg.Saturated = make([]bool, a.NumEdges())
		cfg.Saturated[0] = true
		if _, err := Run(cfg); err != nil {
			t.Errorf("Saturated + faults rejected: %v", err)
		}
	})
	t.Run("dims mismatch", func(t *testing.T) {
		small := topology.NewArray2D(4)
		cfg := base
		cfg.Faults = bindFaults(t, small, &fault.Spec{LinkMTBF: 100, LinkMTTR: 10})
		if _, err := Run(cfg); err == nil {
			t.Error("plan bound against another topology accepted")
		}
	})
	t.Run("non-stepper router", func(t *testing.T) {
		cfg := base
		cfg.Router = appendOnlyGreedy{a: a}
		if _, err := Run(cfg); err == nil {
			t.Error("fault layer without a stepper router accepted")
		}
	})
}

// TestDESDropLiarCertain pins the DES adversary path and the counter
// gating: a certain drop liar produces drops but no recovery outcomes.
func TestDESDropLiarCertain(t *testing.T) {
	a := topology.NewArray2D(8)
	plan := bindFaults(t, a, &fault.Spec{
		Misbehave: []fault.Misbehave{{Mode: fault.ModeDrop, Nodes: []int{9}, Prob: 1}},
		Seed:      5,
	})
	res, err := Run(Config{
		Net: a, Router: routing.GreedyXY{A: a},
		Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate: 0.2,
		Warmup:   200, Horizon: 2000, Seed: 42,
		Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("certain drop liar dropped nothing")
	}
	if res.DeadEnds != 0 || res.DetourHops != 0 {
		t.Errorf("liar-only plan produced recovery outcomes: %+v", res)
	}
}

// TestDESFaultFreeUntouched: a nil Faults field must leave the engine on
// the exact fault-free path — this re-runs one of the golden workloads
// with an explicitly nil plan and compares against itself only to assert
// the fault branches never fire (counters stay zero).
func TestDESFaultFreeUntouched(t *testing.T) {
	a := topology.NewArray2D(8)
	res, err := Run(Config{
		Net: a, Router: routing.GreedyXY{A: a},
		Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate: 0.2,
		Warmup:   100, Horizon: 1000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 || res.DeadEnds != 0 || res.DetourHops != 0 || res.Misrouted != 0 ||
		res.LinkDownFrac != 0 || res.NodeDownFrac != 0 {
		t.Errorf("fault observables nonzero on a fault-free run: %+v", res)
	}
}

// TestDESDowntimeUnion is the regression test for the PR 8 known issue:
// node downtime was accounted as Markov downtime plus outage downtime,
// double-counting a node that is Markov-down inside an outage window
// covering it. With the whole array failure-prone, failing almost
// immediately and never repairing, under a full-horizon outage over every
// node, the additive accounting reports a down fraction near 2 — the union
// can never exceed 1.
func TestDESDowntimeUnion(t *testing.T) {
	a := topology.NewArray2D(4)
	plan := bindFaults(t, a, &fault.Spec{
		NodeMTBF:     0.01,
		NodeMTTR:     1e12,
		NodeFraction: 1,
		Outages: []fault.Outage{
			{Row0: 0, Col0: 0, Row1: 3, Col1: 3, Start: 0, Duration: 1e9},
		},
		Seed: 3,
	})
	cfg := Config{
		Net: a, Router: routing.GreedyXY{A: a},
		Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate: 0.05,
		Warmup:   100, Horizon: 1100, Seed: 9,
		Faults: plan,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeDownFrac > 1+1e-9 {
		t.Errorf("NodeDownFrac = %v > 1: Markov and outage downtime double-counted", res.NodeDownFrac)
	}
	if res.NodeDownFrac < 0.99 {
		t.Errorf("NodeDownFrac = %v, want ~1 (every node down the whole window)", res.NodeDownFrac)
	}
}

// TestDESDowntimeOverlappingOutages pins the other face of the union: two
// outages over the same region with overlapping windows charge the merged
// window once, so the fraction matches the analytic value exactly.
func TestDESDowntimeOverlappingOutages(t *testing.T) {
	a := topology.NewArray2D(4)
	plan := bindFaults(t, a, &fault.Spec{
		Outages: []fault.Outage{
			{Row0: 0, Col0: 0, Row1: 1, Col1: 1, Start: 200, Duration: 400},
			{Row0: 0, Col0: 0, Row1: 1, Col1: 1, Start: 400, Duration: 400},
		},
		Seed: 3,
	})
	cfg := Config{
		Net: a, Router: routing.GreedyXY{A: a},
		Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate: 0.05,
		Warmup:   100, Horizon: 1000, Seed: 9,
		Faults: plan,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 nodes down over the merged window [200, 800) of the measurement
	// window [100, 1100), across 16 nodes.
	want := 4.0 * 600.0 / (16.0 * 1000.0)
	if math.Abs(res.NodeDownFrac-want) > 1e-12 {
		t.Errorf("NodeDownFrac = %v, want %v (merged windows)", res.NodeDownFrac, want)
	}
}

// TestDESFaultMeanR pins the E[R]/E[R_s] wiring through the fault path:
// a degraded run must report nonzero remaining-service integrals (they
// were defined-zero before the per-packet accounting), r = E[R]/E[N] must
// be consistent, and E[R_s] must respond to a Saturated mask.
func TestDESFaultMeanR(t *testing.T) {
	a := topology.NewArray2D(8)
	plan := bindFaults(t, a, &fault.Spec{
		LinkMTBF: 200, LinkMTTR: 30, LinkFraction: 0.3,
		Misbehave: []fault.Misbehave{
			{Mode: fault.ModeMisroute, Nodes: []int{27}, Prob: 0.5},
		},
		Seed: 7,
	})
	cfg := Config{
		Net: a, Router: routing.GreedyXY{A: a},
		Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate: 0.2,
		Warmup:   300, Horizon: 3000, Seed: 13,
		Faults: plan,
	}
	cfg.Saturated = make([]bool, a.NumEdges())
	for e := 0; e < a.NumEdges(); e++ {
		cfg.Saturated[e] = true // every hop saturated: E[R_s] must equal E[R]
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanR <= 0 {
		t.Fatalf("MeanR = %v on a degraded run, want > 0", res.MeanR)
	}
	if res.RPerN <= 0 || math.Abs(res.RPerN-res.MeanR/res.MeanN) > 1e-12 {
		t.Errorf("RPerN = %v inconsistent with MeanR/MeanN = %v", res.RPerN, res.MeanR/res.MeanN)
	}
	if math.Float64bits(res.MeanRs) != math.Float64bits(res.MeanR) {
		t.Errorf("all-saturated mask: MeanRs = %v != MeanR = %v", res.MeanRs, res.MeanR)
	}
	// Two identical runs must still agree to the bit with R tracking on.
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res2.MeanR) != math.Float64bits(res.MeanR) ||
		math.Float64bits(res2.MeanRs) != math.Float64bits(res.MeanRs) {
		t.Error("degraded MeanR/MeanRs not deterministic")
	}
}

package sim

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// This file is the variance-reduction sweep surface of the event-driven
// engine: adaptive replica stopping at a target confidence half-width,
// control-variate delay estimation against the analytically known arrival
// count, and snapshot warm-starts that carry steady state from one sweep
// point to the next. The slotted engine's mirror lives in
// internal/stepsim/adaptive.go; both are thin layers over
// StreamCellsAdaptive, so the stopping ladder and determinism guarantees
// cannot drift between engines.

// SweepOpts configures an adaptive sweep. The zero value reproduces a
// plain 1-replica fixed sweep; each knob is independent of the others.
type SweepOpts struct {
	// Replicas is the fixed replica count used when TargetCI is zero
	// (minimum 1). Ignored when TargetCI is set.
	Replicas int
	// Workers bounds the pool's goroutines (0 means GOMAXPROCS).
	Workers int
	// TargetCI, when positive, switches the sweep to sequential stopping:
	// each point runs at least MinReps replicas and stops as soon as the
	// 95% half-width of its delay estimator of record is ≤ TargetCI, up
	// to MaxReps. Points that hit MaxReps are reported with whatever
	// half-width they reached — inspect ReplicaSet.DelayCI.
	TargetCI float64
	// MinReps and MaxReps bound the adaptive replica count. Defaults: 4
	// and 64. MinReps below 3 is raised to 3 when ControlVariates is on
	// (the jackknife needs leave-one-out covariances).
	MinReps, MaxReps int
	// ControlVariates regresses the exactly known arrival count out of
	// the delay estimate: replica r's pair (MeanDelay, Generated) feeds
	// stats.ControlVariate with E[Generated] = NodeRate·sources·Horizon.
	// The reported MeanDelay/DelayCI become the jackknifed estimate and
	// its t-based half-width. Requires Poisson arrivals (Arrivals == nil
	// and SlotTau == 0); other models have no closed-form count.
	ControlVariates bool
	// DelayControl, when non-nil and ControlVariates is on, contributes a
	// second control observation per replica — DelayControl(cfg, result) —
	// with exactly known expectation DelayControlMean(cfg), and the
	// estimator of record becomes the two-control
	// stats.ControlVariateMulti regression. Both hooks receive the point's
	// configuration because a sweep's cells run at different rates, so the
	// control's exact mean is per-cell. The honesty requirement is on the
	// caller: DelayControlMean must be the exact E[DelayControl(cfg, R)]
	// under cfg, not a plug-in approximation (internal/workload derives
	// one by summing the analytic M/D/1 curve against the arrival count's
	// Poisson pmf). Both hooks must be pure: they are called from worker
	// goroutines at stopping decisions.
	DelayControl     func(Config, Result) float64
	DelayControlMean func(Config) float64
	// WarmStart chains engine snapshots across sweep points: replica r of
	// point i resumes from replica r's end-of-run state at point i−1 with
	// Rewarm as its warmup, instead of refilling an empty network from
	// scratch. Points run in input order (the chain is sequential);
	// replicas within a point still run in parallel. Subject to the
	// snapshot gate (FIFO, stepper routing, no custom arrivals); a
	// rate-changing ladder is statistically exact per the Resume
	// contract. Replicas beyond the previous point's count start cold
	// with the full Warmup.
	WarmStart bool
	// Rewarm is the warmup (in time units) for warm-started replicas.
	// Zero is valid for same-rate continuation; rate-changing ladders
	// should re-warm long enough to forget the old operating point.
	Rewarm float64
}

func (o SweepOpts) normalized() SweepOpts {
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.MinReps <= 0 {
		o.MinReps = 4
	}
	if o.ControlVariates && o.MinReps < 3 {
		o.MinReps = 3
	}
	if o.MaxReps <= 0 {
		o.MaxReps = 64
	}
	if o.MaxReps < o.MinReps {
		o.MaxReps = o.MinReps
	}
	if o.TargetCI <= 0 {
		// Fixed-count mode: the "ladder" is a single rung.
		o.MinReps, o.MaxReps = o.Replicas, o.Replicas
	}
	return o
}

// cvMean returns the exact expectation of Result.Generated for cfg, and
// whether the arrival model admits one.
func cvMean(cfg Config) (float64, bool) {
	if cfg.Arrivals != nil || cfg.SlotTau != 0 {
		return 0, false
	}
	return cfg.NodeRate * float64(len(topology.Sources(cfg.Net))) * cfg.Horizon, true
}

// cellEstimate computes the delay estimator of record for a complete
// replica prefix: the control-variate jackknife when enabled (two-control
// regression when extra is non-nil), else the plain across-replica mean
// with its 95% half-width (matching aggregate).
func cellEstimate(prefix []Result, useCV bool, cMean float64, extra func(Result) float64, extraMean float64) (est, hw float64) {
	if useCV {
		y := make([]float64, len(prefix))
		c := make([]float64, len(prefix))
		for i, r := range prefix {
			y[i] = r.MeanDelay
			c[i] = float64(r.Generated)
		}
		if extra == nil {
			e := stats.ControlVariate(y, c, cMean)
			return e.Est, e.HalfWidth
		}
		c2 := make([]float64, len(prefix))
		for i, r := range prefix {
			c2[i] = extra(r)
		}
		e := stats.ControlVariateMulti(y, [][]float64{c, c2}, []float64{cMean, extraMean})
		return e.Est, e.HalfWidth
	}
	var w stats.Welford
	for _, r := range prefix {
		w.Add(r.MeanDelay)
	}
	if w.Count() < 2 {
		return w.Mean(), math.Inf(1)
	}
	return w.Mean(), ci95(w)
}

// finishCell aggregates a completed cell and installs the estimator of
// record. The fixed-path aggregate() is reused verbatim so every other
// field (MeanN, ratios, merged Delay) is identical to a fixed sweep's.
func finishCell(cfg Config, results []Result, opts SweepOpts) (ReplicaSet, error) {
	rs := aggregate(results)
	if opts.ControlVariates {
		cMean, ok := cvMean(cfg)
		if !ok {
			return ReplicaSet{}, fmt.Errorf("sim: control variates need Poisson arrivals with a closed-form count (Arrivals == nil, SlotTau == 0)")
		}
		extra, extraMean := bindControl(cfg, opts)
		rs.MeanDelay, rs.DelayCI = cellEstimate(results, true, cMean, extra, extraMean)
	}
	return rs, nil
}

// stopFor builds the sequential-stopping predicate for one configuration.
func stopFor(cfg Config, opts SweepOpts) func(prefix []Result) bool {
	cMean, cvOK := cvMean(cfg)
	useCV := opts.ControlVariates && cvOK
	if opts.ControlVariates && !cvOK {
		// The cell will error at finishCell; stop immediately so the
		// misconfiguration does not burn replicas first.
		return func([]Result) bool { return true }
	}
	extra, extraMean := bindControl(cfg, opts)
	return func(prefix []Result) bool {
		_, hw := cellEstimate(prefix, useCV, cMean, extra, extraMean)
		return hw <= opts.TargetCI
	}
}

// bindControl closes the per-cell DelayControl hooks over one
// configuration, yielding the plain observable and scalar mean
// cellEstimate consumes (nil when no second control is configured).
func bindControl(cfg Config, opts SweepOpts) (func(Result) float64, float64) {
	if opts.DelayControl == nil {
		return nil, 0
	}
	mean := 0.0
	if opts.DelayControlMean != nil {
		mean = opts.DelayControlMean(cfg)
	}
	return func(r Result) float64 { return opts.DelayControl(cfg, r) }, mean
}

// StreamSweepAdaptive runs every configuration with the adaptive replica
// policy in opts, emitting cells in input order as they converge (emit on
// the calling goroutine, like StreamSweep). Replica r of any point always
// runs the stream Split(point seed, r), so with a shared base seed across
// points the sweep uses common random numbers: per-replica delays at
// adjacent points are positively correlated and stats.PairedDiff gives
// much tighter point-to-point contrasts than the marginal intervals.
func StreamSweepAdaptive(ctx context.Context, cfgs []Config, opts SweepOpts, emit func(i int, rs ReplicaSet, err error)) {
	opts = opts.normalized()
	if opts.WarmStart {
		warmStartSweep(ctx, cfgs, opts, emit)
		return
	}
	StreamCellsAdaptive(ctx, len(cfgs), opts.MinReps, opts.MaxReps, opts.Workers,
		func() func(cell, rep int) (Result, error) {
			var runner Runner
			return func(cell, rep int) (Result, error) {
				rcfg := cfgs[cell]
				rcfg.Seed = xrand.Split(rcfg.Seed, uint64(rep)).Uint64()
				if rcfg.Ctx == nil {
					rcfg.Ctx = ctx
				}
				return runner.Run(rcfg)
			}
		},
		func(cell int, prefix []Result) bool {
			return stopFor(cfgs[cell], opts)(prefix)
		},
		func(i int, rs []Result, err error) {
			if err != nil {
				emit(i, ReplicaSet{}, err)
				return
			}
			set, ferr := finishCell(cfgs[i], rs, opts)
			emit(i, set, ferr)
		})
}

// warmStartSweep is the sequential-chain form of the adaptive sweep:
// point i's replicas resume from point i−1's captured snapshots. A point
// that errors breaks the chain — later points run cold — but still emits
// its error and lets the sweep continue.
func warmStartSweep(ctx context.Context, cfgs []Config, opts SweepOpts, emit func(i int, rs ReplicaSet, err error)) {
	var prevSnaps []*Snapshot
	for i := range cfgs {
		cellRS, snaps, cellErr := RunCellAdaptive(ctx, cfgs[i], opts, prevSnaps, true)
		emit(i, cellRS, cellErr)
		if cellErr != nil {
			prevSnaps = nil
			continue
		}
		prevSnaps = snaps
	}
}

// RunCellAdaptive runs a single sweep point under opts: the same batch
// ladder, stopping rule and Split(seed, r) replica streams as one cell of
// StreamSweepAdaptive, so its ReplicaSet is bit-identical to that cell's.
// prevSnaps, when non-empty, resumes replica r from prevSnaps[r] with
// opts.Rewarm as its warmup — one link of the warm-start chain; capture
// asks every replica for its end-of-run snapshot, returned alongside the
// cell for the next link (all-nil when capture is false).
//
// Because replica streams derive from the point's seed alone and the
// stopping decision is a pure function of the results, a caller that
// persists each point's results (and, for warm-start chains, snapshots)
// can be killed between points and resumed by a fresh process, and the
// completed ladder is identical to an uninterrupted run — the property
// internal/serve's crash-safe sweep jobs checkpoint on.
func RunCellAdaptive(ctx context.Context, cfg Config, opts SweepOpts, prevSnaps []*Snapshot, capture bool) (ReplicaSet, []*Snapshot, error) {
	opts = opts.normalized()
	// Runners are shared across this point's replicas through a pool;
	// reuse is bit-neutral (TestRunnerMatchesRun).
	runners := sync.Pool{New: func() any { return new(Runner) }}
	var (
		cellRS  ReplicaSet
		cellErr error
		snaps   []*Snapshot
	)
	StreamCellsAdaptive(ctx, 1, opts.MinReps, opts.MaxReps, opts.Workers,
		func() func(cell, rep int) (Result, error) {
			return func(_, rep int) (Result, error) {
				rcfg := cfg
				rcfg.Seed = xrand.Split(cfg.Seed, uint64(rep)).Uint64()
				rcfg.Capture = capture
				if rcfg.Ctx == nil {
					rcfg.Ctx = ctx
				}
				if rep < len(prevSnaps) && prevSnaps[rep] != nil {
					rcfg.Resume = prevSnaps[rep]
					rcfg.Warmup = opts.Rewarm
				}
				r := runners.Get().(*Runner)
				res, err := r.Run(rcfg)
				runners.Put(r)
				return res, err
			}
		},
		func(_ int, prefix []Result) bool {
			return stopFor(cfg, opts)(prefix)
		},
		func(_ int, rs []Result, err error) {
			if err != nil {
				cellErr = err
				return
			}
			// Strip the snapshots before aggregation: they are chain
			// state, not part of the reported cell.
			snaps = make([]*Snapshot, len(rs))
			for j := range rs {
				snaps[j] = rs[j].Snapshot
				rs[j].Snapshot = nil
			}
			cellRS, cellErr = finishCell(cfg, rs, opts)
		})
	return cellRS, snaps, cellErr
}

// RunSweepAdaptive executes every configuration under opts and returns the
// aggregated cells in input order; the error is the first cell error (its
// cell is zero-valued; later cells still run).
func RunSweepAdaptive(ctx context.Context, cfgs []Config, opts SweepOpts) ([]ReplicaSet, error) {
	sets := make([]ReplicaSet, len(cfgs))
	var first error
	StreamSweepAdaptive(ctx, cfgs, opts, func(i int, rs ReplicaSet, err error) {
		sets[i] = rs
		if err != nil && first == nil {
			first = err
		}
	})
	return sets, first
}

package sim

// Fault-layer execution for the event-driven engine: the continuous-time
// mirror of internal/stepsim's slotted fault phase.
//
// A run with Config.Faults set simulates the same model on a degraded
// network: links and nodes flip between up and down under per-entity
// two-state Markov processes (exponential dwells with means MTBF up and
// MTTR down — the continuous-time analog of the slotted engine's
// 1+Geometric dwells), scheduled rectangle outages take node regions down
// for fixed windows, and misbehaving routers delay, misroute or drop the
// packets they forward. The fault-free path is untouched: every hook is
// behind an `e.flt == nil` check, no variate stream changes, and the
// existing goldens pin that.
//
// Where the slotted engine advances every owned entity once per slot, the
// event engine advances entities lazily: an entity's dwell stream is only
// consumed when a query (is this edge usable now? when is it next up?)
// reaches past its pending transition, plus one final sweep to the horizon
// at result time. Because each entity's stream is keyed by its id
// (ReseedSplit(faultSeed^salt, entityID)) and advancing to time t yields
// the same state whether reached in one jump or many, the query pattern
// cannot change any dwell sequence — two fault runs with the same seed are
// bit-identical regardless of what the traffic happens to touch.
//
// Failures never interrupt a service in flight (a store-and-forward hop,
// once started, completes); they defer the *next* service start: the
// departure scheduled when an edge takes a new head packet at time t is
// availAt(edge, t) + service + liarExtra, where availAt is the first time
// >= t at which the link's own process, both endpoint nodes and every
// covering outage window are simultaneously up. Routing decisions (greedy,
// misroute, recovery detours) test usability at decision time, exactly as
// the slotted engine tests the current slot's state.
//
// MeanR/MeanRs (remaining-service integrals) are tracked per packet on
// fault runs: detours and misroutes change a packet's remaining hop count
// after injection, so instead of the fault-free decrement-per-service
// invariant each packet carries the charge it holds in the integrals and
// a reroute re-prices it against its new greedy continuation (see
// departFIFOFault). Degraded sweeps therefore report E[R], E[R_s] and the
// r = E[R]/E[N] column alongside the outcome counters.

import (
	"sort"

	"repro/internal/fault"
	"repro/internal/xrand"
)

// markovSet is the lazy per-entity state of one family (links or nodes) of
// two-state Markov processes.
type markovSet struct {
	ids  []int32 // failure-prone entity ids, ascending (from the plan)
	idx  []int32 // entity id -> position in ids, or -1 (nil when empty)
	down []bool
	last []float64 // time of the entity's most recent transition
	next []float64 // time of its pending transition
	rng  []xrand.RNG

	failRate   float64 // 1/MTBF: rate out of the up state
	repairRate float64 // 1/MTTR: rate out of the down state

	// downtime accumulates each completed down interval's overlap with the
	// measurement window; still-open intervals are closed by finish. wins,
	// when non-nil, holds each entity's merged scheduled-outage windows:
	// time a node spends Markov-down inside a window covering it is already
	// charged by the outage term, so integrate subtracts it here and the
	// total is the exact per-entity UNION of the two down processes.
	downtime float64
	wins     [][]ivl
}

// ivl is a half-open time interval [a, b).
type ivl struct {
	a, b float64
}

// mergeIvls sorts intervals by start and coalesces overlaps in place.
func mergeIvls(ws []ivl) []ivl {
	sort.Slice(ws, func(i, j int) bool { return ws[i].a < ws[j].a })
	out := ws[:1]
	for _, w := range ws[1:] {
		if last := &out[len(out)-1]; w.a <= last.b {
			if w.b > last.b {
				last.b = w.b
			}
		} else {
			out = append(out, w)
		}
	}
	return out
}

// integrate charges entity i's down interval [a, b), clipped to the
// measurement window, minus any part already covered by the entity's
// scheduled outage windows.
func (m *markovSet) integrate(i int, a, b, lo, hi float64) {
	d := overlapWin(a, b, lo, hi)
	if m.wins != nil {
		for _, w := range m.wins[i] {
			wa, wb := w.a, w.b
			if wa < a {
				wa = a
			}
			if wb > b {
				wb = b
			}
			d -= overlapWin(wa, wb, lo, hi)
		}
	}
	m.downtime += d
}

func (m *markovSet) seed(ids, idx []int32, salt, seed uint64, mtbf, mttr float64) {
	m.ids, m.idx = ids, idx
	if len(ids) == 0 {
		return
	}
	m.failRate, m.repairRate = 1/mtbf, 1/mttr
	m.down = make([]bool, len(ids))
	m.last = make([]float64, len(ids))
	m.next = make([]float64, len(ids))
	m.rng = make([]xrand.RNG, len(ids))
	for i, id := range ids {
		r := &m.rng[i]
		r.ReseedSplit(seed^salt, uint64(id))
		m.next[i] = r.Exp(m.failRate)
	}
}

// advance consumes entity i's dwell stream up to time t, integrating each
// down interval completed on the way into downtime (clipped to the measure
// window [mStart, mEnd]).
func (m *markovSet) advance(i int, t, mStart, mEnd float64) {
	for m.next[i] <= t {
		at := m.next[i]
		if m.down[i] {
			m.integrate(i, m.last[i], at, mStart, mEnd)
			m.down[i] = false
			m.next[i] = at + m.rng[i].Exp(m.failRate)
		} else {
			m.down[i] = true
			m.next[i] = at + m.rng[i].Exp(m.repairRate)
		}
		m.last[i] = at
	}
}

// upAfter returns the first time >= t at which entity id's own process is
// up (t itself when the id is not failure-prone or already up).
func (m *markovSet) upAfter(id int32, t, mStart, mEnd float64) float64 {
	if m.idx == nil {
		return t
	}
	i := m.idx[id]
	if i < 0 {
		return t
	}
	m.advance(int(i), t, mStart, mEnd)
	if m.down[i] {
		return m.next[i]
	}
	return t
}

// finish advances every entity to the horizon and closes still-open down
// intervals, completing the downtime integral.
func (m *markovSet) finish(end, mStart, mEnd float64) {
	for i := range m.ids {
		m.advance(i, end, mStart, mEnd)
		if m.down[i] {
			m.integrate(i, m.last[i], end, mStart, mEnd)
		}
	}
}

// outageWin is one scheduled outage: its window and a node-membership
// table over the whole network.
type outageWin struct {
	start, end float64
	member     []bool
}

// desFaults is the fault state of one event-driven run.
type desFaults struct {
	plan *fault.Plan
	seed uint64

	// mStart/mEnd bound the measurement window for downtime integration.
	mStart, mEnd float64

	links markovSet
	nodes markovSet
	outs  []outageWin

	// edgeExtra[e] is the extra service time edge e's tail node imposes as
	// a delay liar (nil when no delay liars). transit[e] counts service
	// completions on e that reached a liar node, keying the per-packet
	// adversary coins — the continuous-time stand-in for the slotted
	// engine's (edge, slot) pair.
	edgeExtra []float64
	transit   []uint64

	// Measured outcome counters (see Result).
	dropped, deadEnds, detourHops, misrouted int64
}

// newDESFaults builds the run's fault state. Fault runs pay these setup
// allocations; the fault-free path allocates nothing.
func newDESFaults(p *fault.Plan, start, end float64) *desFaults {
	f := &desFaults{plan: p, seed: p.Spec.Seed, mStart: start, mEnd: end}
	f.links.seed(p.FaultEdges, p.LinkFaultIdx, fault.SaltLinkDwell, f.seed, p.Spec.LinkMTBF, p.Spec.LinkMTTR)
	f.nodes.seed(p.FaultNodes, p.NodeFaultIdx, fault.SaltNodeDwell, f.seed, p.Spec.NodeMTBF, p.Spec.NodeMTTR)
	for i, nodes := range p.OutageNodes {
		o := p.Spec.Outages[i]
		if o.Duration <= 0 {
			continue
		}
		w := outageWin{start: o.Start, end: o.Start + o.Duration,
			member: make([]bool, p.NumNodes)}
		for _, v := range nodes {
			w.member[v] = true
		}
		f.outs = append(f.outs, w)
	}
	if len(f.outs) > 0 {
		// Hand each Markov-prone node its merged outage windows, so the
		// Markov integrator can subtract the already-charged overlap (see
		// markovSet.integrate — this is what makes the downtime a union,
		// not a sum, when a node is Markov-down inside an outage).
		wins := make([][]ivl, len(p.FaultNodes))
		any := false
		for i, v := range p.FaultNodes {
			var ws []ivl
			for j := range f.outs {
				if f.outs[j].member[v] {
					ws = append(ws, ivl{a: f.outs[j].start, b: f.outs[j].end})
				}
			}
			if len(ws) > 1 {
				ws = mergeIvls(ws)
			}
			if ws != nil {
				wins[i] = ws
				any = true
			}
		}
		if any {
			f.nodes.wins = wins
		}
	}
	if p.HasLiars() {
		f.transit = make([]uint64, p.NumEdges)
		for _, v := range p.Liars {
			if p.LiarMode[v] == fault.LiarDelay {
				f.edgeExtra = make([]float64, p.NumEdges)
				for e := 0; e < p.NumEdges; e++ {
					if from := p.From[e]; p.LiarMode[from] == fault.LiarDelay {
						f.edgeExtra[e] = float64(p.LiarDelay[from])
					}
				}
				break
			}
		}
	}
	return f
}

// nodeUpAfter returns the first time >= t at which node v is usable: its
// own Markov process up and no covering outage window active. Each
// iteration strictly advances t past an exponential dwell or a fixed
// window, so the fixed point terminates.
func (f *desFaults) nodeUpAfter(v int32, t float64) float64 {
	for {
		t2 := f.nodes.upAfter(v, t, f.mStart, f.mEnd)
		for changed := true; changed; {
			changed = false
			for i := range f.outs {
				o := &f.outs[i]
				if o.member[v] && t2 >= o.start && t2 < o.end {
					t2 = o.end
					changed = true
				}
			}
		}
		if t2 == t {
			return t
		}
		t = t2
	}
}

// availAt returns the first time >= t at which edge is fully usable: its
// link process and both endpoint nodes up simultaneously.
func (f *desFaults) availAt(edge int, t float64) float64 {
	p := f.plan
	for {
		t2 := f.links.upAfter(int32(edge), t, f.mStart, f.mEnd)
		t2 = f.nodeUpAfter(p.From[edge], t2)
		t2 = f.nodeUpAfter(p.To[edge], t2)
		if t2 == t {
			return t
		}
		t = t2
	}
}

// usable reports whether edge can be routed onto at time t. A packet
// routed onto a currently-usable edge that later goes down simply waits
// (availAt defers the service start), matching the slotted engine's
// queue-holding behavior.
func (f *desFaults) usable(edge int32, t float64) bool {
	return f.availAt(int(edge), t) == t
}

// nodeUp reports whether node v is usable at time t (the source-drop
// check in generate).
func (f *desFaults) nodeUp(v int32, t float64) bool {
	return f.nodeUpAfter(v, t) == t
}

// finish closes the downtime integrals at the horizon. Outage downtime is
// added analytically, but per NODE over its MERGED covering windows —
// overlapping outages charge once — and the Markov integrator has already
// subtracted any Markov-down time falling inside a scheduled window, so
// the node downtime is the exact per-entity union of both down processes.
func (f *desFaults) finish(end float64) {
	f.links.finish(end, f.mStart, f.mEnd)
	f.nodes.finish(end, f.mStart, f.mEnd)
	if len(f.outs) == 0 {
		return
	}
	var buf []ivl
	for v := 0; v < f.plan.NumNodes; v++ {
		buf = buf[:0]
		for i := range f.outs {
			if f.outs[i].member[v] {
				buf = append(buf, ivl{a: f.outs[i].start, b: f.outs[i].end})
			}
		}
		if len(buf) == 0 {
			continue
		}
		for _, w := range mergeIvls(buf) {
			f.nodes.downtime += overlapWin(w.a, w.b, f.mStart, f.mEnd)
		}
	}
}

// overlapWin returns |[a,b) ∩ [lo,hi)|.
func overlapWin(a, b, lo, hi float64) float64 {
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b > a {
		return b - a
	}
	return 0
}

// departAtFault returns the completion time of the next service started on
// edge at time t: service begins when the edge is next fully up and takes
// the sampled service time plus the tail node's delay-liar surcharge.
func (e *engine) departAtFault(edge int, t float64) float64 {
	at := e.flt.availAt(edge, t) + e.serviceTime(edge)
	if x := e.flt.edgeExtra; x != nil {
		at += x[edge]
	}
	return at
}

// enqueueFault places packet h at a specific edge's FIFO station (misroute
// and detour targets are not the greedy next hop, so the caller names the
// edge) with a fault-aware departure time.
func (e *engine) enqueueFault(t float64, h int32, edge int) {
	if e.measuring {
		e.edgeCount[edge]++
	}
	if e.fifo[edge].Arrive(h) {
		e.tree.ScheduleIdle(edge, e.departAtFault(edge, t), evPack(evDeparture, edge))
	}
	if e.edgeOcc != nil {
		e.noteOccupancy(t, edge)
	}
}

// settleR removes packet p's outstanding remaining-service charge (it was
// delivered or dropped) and updates the integrals at time t.
func (e *engine) settleR(t float64, p *packet) {
	e.rNow -= float64(p.rem)
	if e.cfg.Saturated != nil {
		e.rsNow -= float64(p.rs)
	}
	if e.measuring {
		e.rInt.Set(t, e.rNow)
		if e.cfg.Saturated != nil {
			e.rsInt.Set(t, e.rsNow)
		}
	}
}

// repriceR re-charges packet p for a non-greedy forward onto edge e2 (a
// misroute or detour): one service on e2 plus the greedy continuation from
// its head. The greedy forward never calls this — its new charge is the
// old one minus the completed service, handled inline in departFIFOFault.
func (e *engine) repriceR(t float64, p *packet, e2 int) {
	st := e.steppers[p.choice]
	head := int(e.edgeTo[e2])
	rem := int32(1 + st.RemainingHops(head, int(p.dst)))
	e.rNow += float64(rem - p.rem)
	p.rem = rem
	if e.cfg.Saturated != nil {
		rs := int32(e.countSaturatedWalk(st, head, int(p.dst)))
		if e.cfg.Saturated[e2] {
			rs++
		}
		e.rsNow += float64(rs - p.rs)
		p.rs = rs
	}
	if e.measuring {
		e.rInt.Set(t, e.rNow)
		if e.cfg.Saturated != nil {
			e.rsInt.Set(t, e.rsNow)
		}
	}
}

// departFIFOFault is departFIFO's fault-mode twin: the same fused
// complete-advance-enqueue frame, plus the adversary decision point and
// the greedy-with-recovery policy at the node the packet just reached.
// The policy is routing.Recover's, inlined over the plan's CSR adjacency
// exactly as the slotted engine's fltAdvance inlines it, so the two
// engines route identically around the same degraded state.
//
// Remaining-service tracking is per packet here, not decrement-per-service
// as on the fault-free path: each packet carries the charge it holds in
// rNow/rsNow (p.rem, p.rs), the common greedy forward pays the completed
// service down exactly like departFIFO, and the rare reroutes — misroute,
// detour — re-price the packet against its new greedy continuation. E[R_s]
// on a degraded network therefore reads "remaining saturated services
// along the packet's current greedy continuation", the natural extension
// of the fault-free definition.
func (e *engine) departFIFOFault(t float64, edge int) {
	f := e.flt
	finished, _, hasNext := e.fifo[edge].Complete()
	if hasNext {
		e.tree.Schedule(edge, e.departAtFault(edge, t), evPack(evDeparture, edge))
	} else {
		e.tree.Clear(edge)
	}
	if e.edgeOcc != nil {
		e.noteOccupancy(t, edge)
	}
	p := e.arena.get(finished)
	p.cur = e.edgeTo[edge]
	if p.cur == p.dst {
		e.bumpN(t, -1)
		e.settleR(t, p)
		e.recordDelivery(t, p.genTime, p.measured)
		e.arena.release(finished)
		return
	}
	pl := f.plan
	pos := p.cur
	m := p.measured && e.measuring
	if mode := pl.LiarMode[pos]; mode != fault.LiarNone {
		// One coin per forwarding decision at a liar: the (edge, transit
		// count) pair identifies the service event deterministically.
		k := f.transit[edge]
		f.transit[edge]++
		switch mode {
		case fault.LiarDrop:
			if fault.Coin(f.seed, fault.SaltDrop, uint64(edge), k, pl.LiarProb[pos]) {
				e.bumpN(t, -1)
				e.settleR(t, p)
				if m {
					f.dropped++
				}
				e.arena.release(finished)
				return
			}
		case fault.LiarMisroute:
			if fault.Coin(f.seed, fault.SaltMisroute, uint64(edge), k, pl.LiarProb[pos]) {
				if e2 := pl.MisrouteEdge(f.seed, int32(edge), k); e2 >= 0 && f.usable(e2, t) {
					if m {
						f.misrouted++
					}
					e.repriceR(t, p, int(e2))
					e.enqueueFault(t, finished, int(e2))
					return
				}
			}
		}
	}
	st := e.steppers[p.choice]
	next, _ := st.NextEdge(int(pos), int(p.dst))
	if f.usable(int32(next), t) {
		// Greedy forward: the completed service is paid down and the rest
		// of the charge carries over, exactly departFIFO's accounting.
		p.rem--
		e.rNow--
		if e.cfg.Saturated != nil && e.cfg.Saturated[edge] {
			p.rs--
			e.rsNow--
		}
		if e.measuring {
			e.rInt.Set(t, e.rNow)
			if e.cfg.Saturated != nil {
				e.rsInt.Set(t, e.rsNow)
			}
		}
		e.enqueueFault(t, finished, next)
		return
	}
	// Greedy next hop is down: detour via any live out-edge that strictly
	// reduces the remaining hop count (ascending edge ids, so the choice
	// is a pure function of position, destination and the up/down state).
	rem := st.RemainingHops(int(pos), int(p.dst))
	lo, hi := pl.OutStart[pos], pl.OutStart[pos+1]
	for _, e2 := range pl.OutEdges[lo:hi] {
		if int(e2) == next || !f.usable(e2, t) {
			continue
		}
		if st.RemainingHops(int(pl.To[e2]), int(p.dst)) < rem {
			if m {
				f.detourHops++
			}
			e.repriceR(t, p, int(e2))
			e.enqueueFault(t, finished, int(e2))
			return
		}
	}
	// Dead end: no live improving neighbor.
	e.bumpN(t, -1)
	e.settleR(t, p)
	if m {
		f.dropped++
		f.deadEnds++
	}
	e.arena.release(finished)
}

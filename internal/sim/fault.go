package sim

// Fault-layer execution for the event-driven engine: the continuous-time
// mirror of internal/stepsim's slotted fault phase.
//
// A run with Config.Faults set simulates the same model on a degraded
// network: links and nodes flip between up and down under per-entity
// two-state Markov processes (exponential dwells with means MTBF up and
// MTTR down — the continuous-time analog of the slotted engine's
// 1+Geometric dwells), scheduled rectangle outages take node regions down
// for fixed windows, and misbehaving routers delay, misroute or drop the
// packets they forward. The fault-free path is untouched: every hook is
// behind an `e.flt == nil` check, no variate stream changes, and the
// existing goldens pin that.
//
// Where the slotted engine advances every owned entity once per slot, the
// event engine advances entities lazily: an entity's dwell stream is only
// consumed when a query (is this edge usable now? when is it next up?)
// reaches past its pending transition, plus one final sweep to the horizon
// at result time. Because each entity's stream is keyed by its id
// (ReseedSplit(faultSeed^salt, entityID)) and advancing to time t yields
// the same state whether reached in one jump or many, the query pattern
// cannot change any dwell sequence — two fault runs with the same seed are
// bit-identical regardless of what the traffic happens to touch.
//
// Failures never interrupt a service in flight (a store-and-forward hop,
// once started, completes); they defer the *next* service start: the
// departure scheduled when an edge takes a new head packet at time t is
// availAt(edge, t) + service + liarExtra, where availAt is the first time
// >= t at which the link's own process, both endpoint nodes and every
// covering outage window are simultaneously up. Routing decisions (greedy,
// misroute, recovery detours) test usability at decision time, exactly as
// the slotted engine tests the current slot's state.
//
// MeanR/MeanRs (remaining-service integrals) are not tracked on fault
// runs: detours and misroutes change a packet's remaining hop count after
// injection, which breaks the fault-free bookkeeping's invariant that
// remaining work only decreases by completed services. Result.MeanR and
// RPerN read zero; MeanN, delays and the outcome counters remain exact.

import (
	"repro/internal/fault"
	"repro/internal/xrand"
)

// markovSet is the lazy per-entity state of one family (links or nodes) of
// two-state Markov processes.
type markovSet struct {
	ids  []int32 // failure-prone entity ids, ascending (from the plan)
	idx  []int32 // entity id -> position in ids, or -1 (nil when empty)
	down []bool
	last []float64 // time of the entity's most recent transition
	next []float64 // time of its pending transition
	rng  []xrand.RNG

	failRate   float64 // 1/MTBF: rate out of the up state
	repairRate float64 // 1/MTTR: rate out of the down state

	// downtime accumulates each completed down interval's overlap with the
	// measurement window; still-open intervals are closed by finish.
	downtime float64
}

func (m *markovSet) seed(ids, idx []int32, salt, seed uint64, mtbf, mttr float64) {
	m.ids, m.idx = ids, idx
	if len(ids) == 0 {
		return
	}
	m.failRate, m.repairRate = 1/mtbf, 1/mttr
	m.down = make([]bool, len(ids))
	m.last = make([]float64, len(ids))
	m.next = make([]float64, len(ids))
	m.rng = make([]xrand.RNG, len(ids))
	for i, id := range ids {
		r := &m.rng[i]
		r.ReseedSplit(seed^salt, uint64(id))
		m.next[i] = r.Exp(m.failRate)
	}
}

// advance consumes entity i's dwell stream up to time t, integrating each
// down interval completed on the way into downtime (clipped to the measure
// window [mStart, mEnd]).
func (m *markovSet) advance(i int, t, mStart, mEnd float64) {
	for m.next[i] <= t {
		at := m.next[i]
		if m.down[i] {
			m.downtime += overlapWin(m.last[i], at, mStart, mEnd)
			m.down[i] = false
			m.next[i] = at + m.rng[i].Exp(m.failRate)
		} else {
			m.down[i] = true
			m.next[i] = at + m.rng[i].Exp(m.repairRate)
		}
		m.last[i] = at
	}
}

// upAfter returns the first time >= t at which entity id's own process is
// up (t itself when the id is not failure-prone or already up).
func (m *markovSet) upAfter(id int32, t, mStart, mEnd float64) float64 {
	if m.idx == nil {
		return t
	}
	i := m.idx[id]
	if i < 0 {
		return t
	}
	m.advance(int(i), t, mStart, mEnd)
	if m.down[i] {
		return m.next[i]
	}
	return t
}

// finish advances every entity to the horizon and closes still-open down
// intervals, completing the downtime integral.
func (m *markovSet) finish(end, mStart, mEnd float64) {
	for i := range m.ids {
		m.advance(i, end, mStart, mEnd)
		if m.down[i] {
			m.downtime += overlapWin(m.last[i], end, mStart, mEnd)
		}
	}
}

// outageWin is one scheduled outage: its window and a node-membership
// table over the whole network.
type outageWin struct {
	start, end float64
	member     []bool
	count      int
}

// desFaults is the fault state of one event-driven run.
type desFaults struct {
	plan *fault.Plan
	seed uint64

	// mStart/mEnd bound the measurement window for downtime integration.
	mStart, mEnd float64

	links markovSet
	nodes markovSet
	outs  []outageWin

	// edgeExtra[e] is the extra service time edge e's tail node imposes as
	// a delay liar (nil when no delay liars). transit[e] counts service
	// completions on e that reached a liar node, keying the per-packet
	// adversary coins — the continuous-time stand-in for the slotted
	// engine's (edge, slot) pair.
	edgeExtra []float64
	transit   []uint64

	// Measured outcome counters (see Result).
	dropped, deadEnds, detourHops, misrouted int64
}

// newDESFaults builds the run's fault state. Fault runs pay these setup
// allocations; the fault-free path allocates nothing.
func newDESFaults(p *fault.Plan, start, end float64) *desFaults {
	f := &desFaults{plan: p, seed: p.Spec.Seed, mStart: start, mEnd: end}
	f.links.seed(p.FaultEdges, p.LinkFaultIdx, fault.SaltLinkDwell, f.seed, p.Spec.LinkMTBF, p.Spec.LinkMTTR)
	f.nodes.seed(p.FaultNodes, p.NodeFaultIdx, fault.SaltNodeDwell, f.seed, p.Spec.NodeMTBF, p.Spec.NodeMTTR)
	for i, nodes := range p.OutageNodes {
		o := p.Spec.Outages[i]
		if o.Duration <= 0 {
			continue
		}
		w := outageWin{start: o.Start, end: o.Start + o.Duration,
			member: make([]bool, p.NumNodes), count: len(nodes)}
		for _, v := range nodes {
			w.member[v] = true
		}
		f.outs = append(f.outs, w)
	}
	if p.HasLiars() {
		f.transit = make([]uint64, p.NumEdges)
		for _, v := range p.Liars {
			if p.LiarMode[v] == fault.LiarDelay {
				f.edgeExtra = make([]float64, p.NumEdges)
				for e := 0; e < p.NumEdges; e++ {
					if from := p.From[e]; p.LiarMode[from] == fault.LiarDelay {
						f.edgeExtra[e] = float64(p.LiarDelay[from])
					}
				}
				break
			}
		}
	}
	return f
}

// nodeUpAfter returns the first time >= t at which node v is usable: its
// own Markov process up and no covering outage window active. Each
// iteration strictly advances t past an exponential dwell or a fixed
// window, so the fixed point terminates.
func (f *desFaults) nodeUpAfter(v int32, t float64) float64 {
	for {
		t2 := f.nodes.upAfter(v, t, f.mStart, f.mEnd)
		for changed := true; changed; {
			changed = false
			for i := range f.outs {
				o := &f.outs[i]
				if o.member[v] && t2 >= o.start && t2 < o.end {
					t2 = o.end
					changed = true
				}
			}
		}
		if t2 == t {
			return t
		}
		t = t2
	}
}

// availAt returns the first time >= t at which edge is fully usable: its
// link process and both endpoint nodes up simultaneously.
func (f *desFaults) availAt(edge int, t float64) float64 {
	p := f.plan
	for {
		t2 := f.links.upAfter(int32(edge), t, f.mStart, f.mEnd)
		t2 = f.nodeUpAfter(p.From[edge], t2)
		t2 = f.nodeUpAfter(p.To[edge], t2)
		if t2 == t {
			return t
		}
		t = t2
	}
}

// usable reports whether edge can be routed onto at time t. A packet
// routed onto a currently-usable edge that later goes down simply waits
// (availAt defers the service start), matching the slotted engine's
// queue-holding behavior.
func (f *desFaults) usable(edge int32, t float64) bool {
	return f.availAt(int(edge), t) == t
}

// nodeUp reports whether node v is usable at time t (the source-drop
// check in generate).
func (f *desFaults) nodeUp(v int32, t float64) bool {
	return f.nodeUpAfter(v, t) == t
}

// finish closes the downtime integrals at the horizon. Outage downtime is
// added analytically (window overlap x member count); a node that is
// Markov-down inside an outage covering it is counted by both terms —
// the fractions are diagnostics, and the overlap of two rare events is
// negligible at the parameters of interest.
func (f *desFaults) finish(end float64) {
	f.links.finish(end, f.mStart, f.mEnd)
	f.nodes.finish(end, f.mStart, f.mEnd)
	for i := range f.outs {
		o := &f.outs[i]
		f.nodes.downtime += overlapWin(o.start, o.end, f.mStart, f.mEnd) * float64(o.count)
	}
}

// overlapWin returns |[a,b) ∩ [lo,hi)|.
func overlapWin(a, b, lo, hi float64) float64 {
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b > a {
		return b - a
	}
	return 0
}

// departAtFault returns the completion time of the next service started on
// edge at time t: service begins when the edge is next fully up and takes
// the sampled service time plus the tail node's delay-liar surcharge.
func (e *engine) departAtFault(edge int, t float64) float64 {
	at := e.flt.availAt(edge, t) + e.serviceTime(edge)
	if x := e.flt.edgeExtra; x != nil {
		at += x[edge]
	}
	return at
}

// enqueueFault places packet h at a specific edge's FIFO station (misroute
// and detour targets are not the greedy next hop, so the caller names the
// edge) with a fault-aware departure time.
func (e *engine) enqueueFault(t float64, h int32, edge int) {
	if e.measuring {
		e.edgeCount[edge]++
	}
	if e.fifo[edge].Arrive(h) {
		e.tree.ScheduleIdle(edge, e.departAtFault(edge, t), evPack(evDeparture, edge))
	}
	if e.edgeOcc != nil {
		e.noteOccupancy(t, edge)
	}
}

// departFIFOFault is departFIFO's fault-mode twin: the same fused
// complete-advance-enqueue frame, plus the adversary decision point and
// the greedy-with-recovery policy at the node the packet just reached.
// The policy is routing.Recover's, inlined over the plan's CSR adjacency
// exactly as the slotted engine's fltAdvance inlines it, so the two
// engines route identically around the same degraded state.
func (e *engine) departFIFOFault(t float64, edge int) {
	f := e.flt
	finished, _, hasNext := e.fifo[edge].Complete()
	if hasNext {
		e.tree.Schedule(edge, e.departAtFault(edge, t), evPack(evDeparture, edge))
	} else {
		e.tree.Clear(edge)
	}
	if e.edgeOcc != nil {
		e.noteOccupancy(t, edge)
	}
	p := e.arena.get(finished)
	p.cur = e.edgeTo[edge]
	if p.cur == p.dst {
		e.bumpN(t, -1)
		e.recordDelivery(t, p.genTime, p.measured)
		e.arena.release(finished)
		return
	}
	pl := f.plan
	pos := p.cur
	m := p.measured && e.measuring
	if mode := pl.LiarMode[pos]; mode != fault.LiarNone {
		// One coin per forwarding decision at a liar: the (edge, transit
		// count) pair identifies the service event deterministically.
		k := f.transit[edge]
		f.transit[edge]++
		switch mode {
		case fault.LiarDrop:
			if fault.Coin(f.seed, fault.SaltDrop, uint64(edge), k, pl.LiarProb[pos]) {
				e.bumpN(t, -1)
				if m {
					f.dropped++
				}
				e.arena.release(finished)
				return
			}
		case fault.LiarMisroute:
			if fault.Coin(f.seed, fault.SaltMisroute, uint64(edge), k, pl.LiarProb[pos]) {
				if e2 := pl.MisrouteEdge(f.seed, int32(edge), k); e2 >= 0 && f.usable(e2, t) {
					if m {
						f.misrouted++
					}
					e.enqueueFault(t, finished, int(e2))
					return
				}
			}
		}
	}
	st := e.steppers[p.choice]
	next, _ := st.NextEdge(int(pos), int(p.dst))
	if f.usable(int32(next), t) {
		e.enqueueFault(t, finished, next)
		return
	}
	// Greedy next hop is down: detour via any live out-edge that strictly
	// reduces the remaining hop count (ascending edge ids, so the choice
	// is a pure function of position, destination and the up/down state).
	rem := st.RemainingHops(int(pos), int(p.dst))
	lo, hi := pl.OutStart[pos], pl.OutStart[pos+1]
	for _, e2 := range pl.OutEdges[lo:hi] {
		if int(e2) == next || !f.usable(e2, t) {
			continue
		}
		if st.RemainingHops(int(pl.To[e2]), int(p.dst)) < rem {
			if m {
				f.detourHops++
			}
			e.enqueueFault(t, finished, int(e2))
			return
		}
	}
	// Dead end: no live improving neighbor.
	e.bumpN(t, -1)
	if m {
		f.dropped++
		f.deadEnds++
	}
	e.arena.release(finished)
}

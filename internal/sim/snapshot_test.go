package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bounds"
	"repro/internal/routing"
	"repro/internal/topology"
)

// requireSameSimBits asserts two Results are math.Float64bits-identical in
// the core measured quantities.
func requireSameSimBits(t *testing.T, label string, got, want Result) {
	t.Helper()
	if math.Float64bits(got.MeanDelay) != math.Float64bits(want.MeanDelay) {
		t.Errorf("%s: MeanDelay %v != %v", label, got.MeanDelay, want.MeanDelay)
	}
	if math.Float64bits(got.DelayCI) != math.Float64bits(want.DelayCI) {
		t.Errorf("%s: DelayCI %v != %v", label, got.DelayCI, want.DelayCI)
	}
	if math.Float64bits(got.MeanN) != math.Float64bits(want.MeanN) {
		t.Errorf("%s: MeanN %v != %v", label, got.MeanN, want.MeanN)
	}
	if math.Float64bits(got.MeanR) != math.Float64bits(want.MeanR) {
		t.Errorf("%s: MeanR %v != %v", label, got.MeanR, want.MeanR)
	}
	if got.Generated != want.Generated || got.Delivered != want.Delivered {
		t.Errorf("%s: counts (%d, %d) != (%d, %d)", label, got.Generated, got.Delivered, want.Generated, want.Delivered)
	}
	if got.Delay.Count() != want.Delay.Count() ||
		math.Float64bits(got.Delay.Variance()) != math.Float64bits(want.Delay.Variance()) {
		t.Errorf("%s: per-packet Welford statistics diverge", label)
	}
}

// TestSimSnapshotBitExactContinuation is the event-driven engine's
// checkpoint contract: capture at the end of run X, resume as run Y, and
// Y must be Float64bits-identical to the uninterrupted run U whose warmup
// covers X — across arrival models and routers (deterministic and
// randomized).
func TestSimSnapshotBitExactContinuation(t *testing.T) {
	a := topology.NewArray2D(6)
	rate := bounds.LambdaForLoad(6, 0.8)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"merged-greedyxy", Config{
			Net: a, Router: routing.GreedyXY{A: a},
			Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
			NodeRate: rate,
		}},
		{"merged-randgreedy", Config{
			Net: a, Router: routing.RandGreedy{A: a},
			Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
			NodeRate: rate,
		}},
		{"pernode", Config{
			Net: a, Router: routing.GreedyXY{A: a},
			Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
			NodeRate: rate, PerNodeArrivals: true,
		}},
		{"slotted", Config{
			Net: a, Router: routing.GreedyXY{A: a},
			Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
			NodeRate: rate, SlotTau: 1,
		}},
		{"exponential-service", Config{
			Net: a, Router: routing.GreedyXY{A: a},
			Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
			NodeRate: rate, Service: Exponential,
		}},
	}
	const w1, h1, w2, h2 = 300, 1500, 100, 1200
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			uncut := tc.cfg
			uncut.Seed = 11
			uncut.Warmup = w1 + h1 + w2
			uncut.Horizon = h2
			ref, err := Run(uncut)
			if err != nil {
				t.Fatal(err)
			}

			first := tc.cfg
			first.Seed = 11
			first.Warmup, first.Horizon = w1, h1
			first.Capture = true
			res, err := Run(first)
			if err != nil {
				t.Fatal(err)
			}
			if res.Snapshot == nil {
				t.Fatal("Capture run returned no snapshot")
			}
			second := tc.cfg
			second.Seed = 999 // must be ignored: the restored stream continues
			second.Warmup, second.Horizon = w2, h2
			second.Resume = res.Snapshot
			got, err := Run(second)
			if err != nil {
				t.Fatal(err)
			}
			requireSameSimBits(t, tc.name, got, ref)
		})
	}
}

// TestSimSnapshotRunnerReuse pins that a reused Runner resumes identically
// to a throwaway one — the pool's warm-start path reuses per-worker
// Runners.
func TestSimSnapshotRunnerReuse(t *testing.T) {
	cfg := arrayConfig(5, 0.7, 23)
	cfg.Warmup, cfg.Horizon = 200, 1000
	cfg.Capture = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tail := cfg
	tail.Capture = false
	tail.Resume = res.Snapshot
	tail.Warmup, tail.Horizon = 50, 800
	want, err := Run(tail)
	if err != nil {
		t.Fatal(err)
	}
	var r Runner
	if _, err := r.Run(arrayConfig(4, 0.5, 7)); err != nil { // dirty the caches with another shape
		t.Fatal(err)
	}
	got, err := r.Run(tail)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSimBits(t, "runner reuse", got, want)
}

// TestSimSnapshotWireRoundTrip pins the persistence format.
func TestSimSnapshotWireRoundTrip(t *testing.T) {
	cfg := arrayConfig(5, 0.8, 29)
	cfg.Warmup, cfg.Horizon = 200, 1200
	cfg.Capture = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Snapshot.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, res.Snapshot) {
		t.Fatal("decoded snapshot differs from the original")
	}
	tail := cfg
	tail.Capture = false
	tail.Warmup, tail.Horizon = 50, 600
	tail.Resume = res.Snapshot
	want, err := Run(tail)
	if err != nil {
		t.Fatal(err)
	}
	tail.Resume = decoded
	got, err := Run(tail)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSimBits(t, "wire round trip", got, want)
}

// TestSimSnapshotDecodeRejects is the corruption battery for the
// event-engine decode path.
func TestSimSnapshotDecodeRejects(t *testing.T) {
	cfg := arrayConfig(4, 0.7, 31)
	cfg.Warmup, cfg.Horizon = 100, 600
	cfg.Capture = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Snapshot.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSnapshot(data); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	bad := append([]byte("NOTEVSNP"), data[8:]...)
	if _, err := UnmarshalSnapshot(bad); err == nil {
		t.Error("bad magic accepted")
	}
	for _, cut := range []int{0, 5, 8, 12, len(data) / 2, len(data) - 3} {
		if _, err := UnmarshalSnapshot(data[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	for _, off := range []int{9, 30, len(data) / 2, len(data) - 8} {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0x10
		if _, err := UnmarshalSnapshot(corrupt); err == nil {
			t.Errorf("flipped byte at offset %d accepted", off)
		}
	}
}

// TestSimSnapshotGate pins the path restrictions: PS/priority disciplines,
// custom arrival processes and materialized routes cannot checkpoint.
func TestSimSnapshotGate(t *testing.T) {
	base := arrayConfig(4, 0.5, 37)
	base.Warmup, base.Horizon = 50, 300

	ps := base
	ps.Discipline = PS
	ps.Capture = true
	if _, err := Run(ps); err == nil {
		t.Error("PS run accepted Capture")
	}
	mat := base
	mat.MaterializeRoutes = true
	mat.Capture = true
	if _, err := Run(mat); err == nil {
		t.Error("MaterializeRoutes run accepted Capture")
	}

	cap := base
	cap.Capture = true
	res, err := Run(cap)
	if err != nil {
		t.Fatal(err)
	}
	other := arrayConfig(5, 0.5, 37)
	other.Resume = res.Snapshot
	if _, err := Run(other); err == nil {
		t.Error("snapshot restored onto a different topology")
	}
	perNode := base
	perNode.PerNodeArrivals = true
	perNode.Resume = res.Snapshot
	if _, err := Run(perNode); err == nil {
		t.Error("merged-clock snapshot restored under PerNodeArrivals")
	}
	rateChangePerNode := base
	rateChangePerNode.PerNodeArrivals = true
	rateChangePerNode.Capture = true
	resPN, err := Run(rateChangePerNode)
	if err != nil {
		t.Fatal(err)
	}
	warm := rateChangePerNode
	warm.Capture = false
	warm.Resume = resPN.Snapshot
	warm.NodeRate *= 1.1
	warm.AllowUnstable = true
	if _, err := Run(warm); err == nil {
		t.Error("per-node snapshot accepted a rate change")
	}
}

// TestSimSnapshotRateChangeWarmStart is the ρ-ladder warm-start: resume at
// a higher rate with a short re-warm must agree statistically with a cold
// full-warmup run at the new rate.
func TestSimSnapshotRateChangeWarmStart(t *testing.T) {
	n := 6
	cold := arrayConfig(n, 0.8, 41)
	cold.Warmup, cold.Horizon = 1500, 10000

	first := cold
	first.NodeRate = bounds.LambdaForLoad(n, 0.7)
	first.Capture = true
	r1, err := Run(first)
	if err != nil {
		t.Fatal(err)
	}
	warm := cold
	warm.Resume = r1.Snapshot
	warm.Warmup = 200
	got, err := Run(warm)
	if err != nil {
		t.Fatal(err)
	}

	var sum, sumSq float64
	const reps = 4
	for i := 0; i < reps; i++ {
		c := cold
		c.Seed = 200 + uint64(i)
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		sum += r.MeanDelay
		sumSq += r.MeanDelay * r.MeanDelay
	}
	mean := sum / reps
	sd := math.Sqrt(sumSq/reps - mean*mean)
	tol := 6*sd + 0.05*mean
	if math.Abs(got.MeanDelay-mean) > tol {
		t.Errorf("warm-started delay %v vs cold mean %v (sd %v): outside tolerance %v", got.MeanDelay, mean, sd, tol)
	}
}

package sim

import (
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

// goldenCase pins one seeded run. The expected values were recorded from the
// seed engine (materialized-route packets, binary event heap, pointer
// freelist) before the zero-allocation rework landed; the current engine
// (Stepper routing, packet arena, 4-ary packed heap) must reproduce every
// run bit-for-bit. Regenerate with:
//
//	SIM_GOLDEN_PRINT=1 go test ./internal/sim -run TestGoldenDeterminism -v
type goldenCase struct {
	name string
	cfg  func() Config

	meanDelay, meanN, meanR, meanRs uint64 // math.Float64bits
	generated, delivered            int64
}

func goldenArray(n int, rho float64, seed uint64) Config {
	cfg := arrayConfig(n, rho, seed)
	cfg.Warmup, cfg.Horizon = 200, 1500
	return cfg
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name:      "array-fifo-det",
			cfg:       func() Config { return goldenArray(5, 0.7, 11) },
			meanDelay: 0x4014d3301841fe41,
			meanN:     0x4053425308f9cead,
			meanR:     0x40691cf2fdb2e45d,
			meanRs:    0x0,
			generated: 22153, delivered: 22057,
		},
		{
			name: "array-ps",
			cfg: func() Config {
				cfg := goldenArray(5, 0.7, 13)
				cfg.Discipline = PS
				return cfg
			},
			meanDelay: 0x4020d24f5fff1cf7,
			meanN:     0x405ebc3a6c329dc9,
			meanR:     0x407355d334758b91,
			meanRs:    0x0,
			generated: 21778, delivered: 21649,
		},
		{
			name: "array-exponential",
			cfg: func() Config {
				cfg := goldenArray(5, 0.7, 17)
				cfg.Service = Exponential
				return cfg
			},
			meanDelay: 0x40223391e64f83fc,
			meanN:     0x40609e8ff6a6e1bf,
			meanR:     0x407573bb1d56682f,
			meanRs:    0x0,
			generated: 21854, delivered: 21741,
		},
		{
			name: "array-furthest-first",
			cfg: func() Config {
				cfg := goldenArray(5, 0.8, 19)
				cfg.Discipline = FurthestFirst
				return cfg
			},
			meanDelay: 0x401bf4f3148331da,
			meanN:     0x405d6379c66667de,
			meanR:     0x406f600b51bb5000,
			meanRs:    0x0,
			generated: 25072, delivered: 24984,
		},
		{
			name: "array-randomized-greedy",
			cfg: func() Config {
				cfg := goldenArray(6, 0.7, 23)
				a := topology.NewArray2D(6)
				cfg.Net = a
				cfg.Router = routing.RandGreedy{A: a}
				cfg.Dest = routing.UniformDest{NumNodes: a.NumNodes()}
				return cfg
			},
			meanDelay: 0x4017cdba6cfce265,
			meanN:     0x405945cdbaa58864,
			meanR:     0x40730cd2e71b6300,
			meanRs:    0x0,
			generated: 25450, delivered: 25331,
		},
		{
			name: "array-per-node-arrivals",
			cfg: func() Config {
				cfg := goldenArray(5, 0.6, 29)
				cfg.PerNodeArrivals = true
				return cfg
			},
			meanDelay: 0x401261a024173125,
			meanN:     0x404d4bc1861f23b1,
			meanR:     0x406306efa8b527b6,
			meanRs:    0x0,
			generated: 19108, delivered: 19060,
		},
		{
			name: "array-slotted",
			cfg: func() Config {
				cfg := goldenArray(5, 0.6, 31)
				cfg.SlotTau = 1
				return cfg
			},
			meanDelay: 0x4011bb89bcd70af7,
			meanN:     0x404bf65b7a328470,
			meanR:     0x4061fe3ab596de8d,
			meanRs:    0x0,
			generated: 18924, delivered: 18876,
		},
		{
			name: "array-saturated-tracked",
			cfg: func() Config {
				cfg := goldenArray(5, 0.8, 37)
				a := cfg.Net.(*topology.Array2D)
				sat := make([]bool, a.NumEdges())
				for e := range sat {
					if r, c, d := a.EdgeInfo(e); d == topology.Right && r == 2 && c >= 1 && c <= 3 {
						sat[e] = true
					}
				}
				cfg.Saturated = sat
				return cfg
			},
			meanDelay: 0x401ab5bd1ae98b0f,
			meanN:     0x405c17ef7a0d197e,
			meanR:     0x4072447169818dcf,
			meanRs:    0x40218a46a107beb8,
			generated: 25203, delivered: 25110,
		},
		{
			name: "torus-greedy",
			cfg: func() Config {
				tor := topology.NewTorus2D(5)
				cfg := goldenArray(5, 0.5, 41)
				cfg.Net = tor
				cfg.Router = routing.TorusGreedy{T: tor}
				cfg.Dest = routing.UniformDest{NumNodes: tor.NumNodes()}
				cfg.NodeRate = 0.4
				return cfg
			},
			meanDelay: 0x4005ca5c77544937,
			meanN:     0x403b31799148e2c6,
			meanR:     0x404a7c52aa9d636d,
			meanRs:    0x0,
			generated: 14957, delivered: 14936,
		},
		{
			name: "hypercube-bit-fixing",
			cfg: func() Config {
				h := topology.NewHypercube(4)
				cfg := goldenArray(5, 0.5, 43)
				cfg.Net = h
				cfg.Router = routing.CubeGreedy{H: h}
				cfg.Dest = routing.UniformDest{NumNodes: h.NumNodes()}
				cfg.NodeRate = 0.3
				return cfg
			},
			meanDelay: 0x40015be1246e7a55,
			meanN:     0x40249710bb64ae1b,
			meanR:     0x40322e8ff0f84b96,
			meanRs:    0x0,
			generated: 7114, delivered: 7111,
		},
		{
			name: "kd-array",
			cfg: func() Config {
				a := topology.NewArrayKD(4, 4, 4)
				cfg := goldenArray(5, 0.5, 47)
				cfg.Net = a
				cfg.Router = routing.GreedyKD{A: a}
				cfg.Dest = routing.UniformDest{NumNodes: a.NumNodes()}
				cfg.NodeRate = 0.2
				return cfg
			},
			meanDelay: 0x401014248c24e07e,
			meanN:     0x4049f125d0abec43,
			meanR:     0x4061e6d4fc0a897a,
			meanRs:    0x0,
			generated: 19356, delivered: 19312,
		},
		{
			name: "tandem-restricted",
			cfg: func() Config {
				cfg := tandemConfig(6, 0.8, Deterministic, 53)
				cfg.Warmup, cfg.Horizon = 200, 2000
				return cfg
			},
			meanDelay: 0x401b2ff50d580565,
			meanN:     0x4015f56f7d78e4e9,
			meanR:     0x40335e4f4b21e24b,
			meanRs:    0x0,
			generated: 1617, delivered: 1612,
		},
	}
}

// TestStepperEngineMatchesMaterialized cross-checks the two route
// representations: every golden configuration must produce a bit-identical
// Result whether packets walk routing.Stepper incrementally or carry
// materialized AppendRoute slices (Config.MaterializeRoutes).
func TestStepperEngineMatchesMaterialized(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			cfg := gc.cfg()
			cfg.TrackEdgeOccupancy = true
			cfg.TrackNDist = true
			stepped, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.MaterializeRoutes = true
			materialized, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			bitEq := func(field string, a, b float64) {
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Errorf("%s: stepper %v != materialized %v", field, a, b)
				}
			}
			bitEq("MeanDelay", stepped.MeanDelay, materialized.MeanDelay)
			bitEq("DelayCI", stepped.DelayCI, materialized.DelayCI)
			bitEq("MeanN", stepped.MeanN, materialized.MeanN)
			bitEq("MeanR", stepped.MeanR, materialized.MeanR)
			bitEq("MeanRs", stepped.MeanRs, materialized.MeanRs)
			bitEq("MaxN", stepped.MaxN, materialized.MaxN)
			if stepped.Generated != materialized.Generated || stepped.Delivered != materialized.Delivered {
				t.Errorf("counts diverge: %d/%d vs %d/%d",
					stepped.Generated, stepped.Delivered, materialized.Generated, materialized.Delivered)
			}
			for e := range stepped.EdgeRates {
				if stepped.EdgeRates[e] != materialized.EdgeRates[e] {
					t.Fatalf("EdgeRates[%d] diverge", e)
				}
				if stepped.EdgeOccupancy[e] != materialized.EdgeOccupancy[e] {
					t.Fatalf("EdgeOccupancy[%d] diverge", e)
				}
			}
			for k := range stepped.NDist {
				if stepped.NDist[k] != materialized.NDist[k] {
					t.Fatalf("NDist[%d] diverges", k)
				}
			}
		})
	}
}

// TestGoldenDeterminism locks the engine to the seed implementation's exact
// event trajectories: any change to RNG call order, event tie-breaking, or
// measurement bookkeeping shows up as a bit-level mismatch here.
func TestGoldenDeterminism(t *testing.T) {
	print := os.Getenv("SIM_GOLDEN_PRINT") != ""
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			res, err := Run(gc.cfg())
			if err != nil {
				t.Fatal(err)
			}
			if print {
				fmt.Printf("%s:\n\tmeanDelay: %#x,\n\tmeanN:     %#x,\n\tmeanR:     %#x,\n\tmeanRs:    %#x,\n\tgenerated: %d, delivered: %d,\n",
					gc.name,
					math.Float64bits(res.MeanDelay), math.Float64bits(res.MeanN),
					math.Float64bits(res.MeanR), math.Float64bits(res.MeanRs),
					res.Generated, res.Delivered)
				return
			}
			check := func(field string, got float64, want uint64) {
				if math.Float64bits(got) != want {
					t.Errorf("%s: got %v (%#x), want %#x", field, got, math.Float64bits(got), want)
				}
			}
			check("MeanDelay", res.MeanDelay, gc.meanDelay)
			check("MeanN", res.MeanN, gc.meanN)
			check("MeanR", res.MeanR, gc.meanR)
			check("MeanRs", res.MeanRs, gc.meanRs)
			if res.Generated != gc.generated || res.Delivered != gc.delivered {
				t.Errorf("counts: got %d/%d, want %d/%d", res.Generated, res.Delivered, gc.generated, gc.delivered)
			}
		})
	}
}

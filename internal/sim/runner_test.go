package sim

import (
	"math"
	"testing"
)

// TestRunnerMatchesRun drives one Runner through a deliberately hostile
// sequence of configurations — growing and shrinking topologies, switching
// disciplines and service models, toggling route materialization, slotted
// and per-node arrivals, and the optional trackers — and requires every
// result to be bit-identical to a fresh Run of the same config. This is the
// contract that lets the sweep pool reuse engines: state reuse must be
// semantically invisible.
func TestRunnerMatchesRun(t *testing.T) {
	cases := goldenCases()
	// Order the golden configs to maximize shape churn: big/small
	// alternation plus a repeat of the first so the fully-warm path runs.
	order := []int{0, 8, 1, 9, 2, 3, 10, 4, 5, 6, 7, 0}
	var runner Runner
	for _, ci := range order {
		gc := cases[ci]
		t.Run(gc.name, func(t *testing.T) {
			cfg := gc.cfg()
			cfg.TrackEdgeOccupancy = true
			cfg.TrackNDist = true
			cfg.DelayHistWidth = 0.5
			reused, err := runner.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			bitEq := func(field string, a, b float64) {
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Errorf("%s: runner %v != fresh %v", field, a, b)
				}
			}
			bitEq("MeanDelay", reused.MeanDelay, fresh.MeanDelay)
			bitEq("DelayCI", reused.DelayCI, fresh.DelayCI)
			bitEq("MeanN", reused.MeanN, fresh.MeanN)
			bitEq("MeanR", reused.MeanR, fresh.MeanR)
			bitEq("MeanRs", reused.MeanRs, fresh.MeanRs)
			bitEq("MaxN", reused.MaxN, fresh.MaxN)
			bitEq("LittleRelErr", reused.LittleRelErr, fresh.LittleRelErr)
			if reused.Generated != fresh.Generated || reused.Delivered != fresh.Delivered {
				t.Errorf("counts: runner %d/%d != fresh %d/%d",
					reused.Generated, reused.Delivered, fresh.Generated, fresh.Delivered)
			}
			for e := range fresh.EdgeRates {
				if reused.EdgeRates[e] != fresh.EdgeRates[e] {
					t.Fatalf("EdgeRates[%d] diverges", e)
				}
				if reused.EdgeOccupancy[e] != fresh.EdgeOccupancy[e] {
					t.Fatalf("EdgeOccupancy[%d] diverges", e)
				}
			}
			if len(reused.NDist) != len(fresh.NDist) {
				t.Fatalf("NDist length %d != %d", len(reused.NDist), len(fresh.NDist))
			}
			for k := range fresh.NDist {
				if reused.NDist[k] != fresh.NDist[k] {
					t.Fatalf("NDist[%d] diverges", k)
				}
			}
			if reused.DelayHist.Total() != fresh.DelayHist.Total() ||
				reused.DelayHist.Quantile(0.99) != fresh.DelayHist.Quantile(0.99) {
				t.Error("DelayHist diverges")
			}
		})
	}
}

// TestRunnerMatchesRunMaterialized exercises the legacy AppendRoute arena
// path under reuse (it shares the arena with the stepper path but keeps
// per-packet route buffers).
func TestRunnerMatchesRunMaterialized(t *testing.T) {
	var runner Runner
	for i, gc := range goldenCases()[:4] {
		cfg := gc.cfg()
		cfg.MaterializeRoutes = i%2 == 0 // alternate modes through one arena
		reused, err := runner.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(reused.MeanDelay) != math.Float64bits(fresh.MeanDelay) ||
			reused.Delivered != fresh.Delivered {
			t.Errorf("%s (materialize=%v): runner diverges from fresh Run", gc.name, cfg.MaterializeRoutes)
		}
	}
}

// TestRunnerSteadyStateAllocs verifies the reuse contract the sweep pool
// relies on: after a warmup run, repeat runs of the same shape allocate a
// small constant (the engine struct, the per-run histogram-free result
// plumbing), far under the ~34 fresh-run setup allocations.
func TestRunnerSteadyStateAllocs(t *testing.T) {
	cfg := arrayConfig(8, 0.8, 1)
	cfg.Warmup, cfg.Horizon = 50, 400
	var runner Runner
	if _, err := runner.Run(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		cfg.Seed++
		if _, err := runner.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("warm Runner allocates %.0f times per run, want <= 8", allocs)
	}
}

package sim

import (
	"context"
	"math"
	"runtime"
	"sync"

	"repro/internal/stats"
)

// ReplicaSet aggregates independent replications of one configuration.
// Replicas differ only in their derived random streams, so across-replica
// variability gives an honest confidence interval even when a single run's
// batch means are correlated.
type ReplicaSet struct {
	// Replicas holds the individual run results.
	Replicas []Result
	// MeanDelay is the across-replica mean of per-replica mean delays.
	MeanDelay float64
	// DelayCI is the 95% across-replica half-width for MeanDelay.
	DelayCI float64
	// MeanN, MeanR, MeanRs average the per-replica time averages.
	MeanN, MeanR, MeanRs float64
	// RPerN and RsPerN are ratio-of-averages estimates of Table II's r and
	// Table III's r_s.
	RPerN, RsPerN float64
	// Delay merges all per-packet statistics across replicas.
	Delay stats.Welford
	// Fault-layer aggregates: the integer outcome counters sum across
	// replicas, the downtime fractions average. All zero on fault-free
	// sweeps. See Result for the counters' exact meanings.
	Dropped      int64
	DeadEnds     int64
	DetourHops   int64
	Misrouted    int64
	LinkDownFrac float64
	NodeDownFrac float64
	// ReplicasUsed is how many replicas produced this cell. Fixed sweeps
	// always use the requested count; adaptive sweeps (RunSweepAdaptive)
	// stop early once the target half-width is met, so the CSV layer
	// reports this alongside the half-width of record.
	ReplicasUsed int
}

// RunReplicas executes `replicas` independent runs of cfg on up to
// `workers` goroutines (0 means GOMAXPROCS) and aggregates them. It is the
// single-cell form of RunSweep: replica i uses the random stream
// Split(cfg.Seed, i), so results are independent of scheduling and of the
// worker count.
func RunReplicas(ctx context.Context, cfg Config, replicas, workers int) (ReplicaSet, error) {
	sets, err := RunSweep(ctx, []Config{cfg}, replicas, workers)
	if err != nil {
		return ReplicaSet{}, err
	}
	return sets[0], nil
}

func aggregate(results []Result) ReplicaSet {
	rs := ReplicaSet{Replicas: results, ReplicasUsed: len(results)}
	var perReplica stats.Welford
	for _, r := range results {
		perReplica.Add(r.MeanDelay)
		rs.MeanN += r.MeanN
		rs.MeanR += r.MeanR
		rs.MeanRs += r.MeanRs
		rs.Delay.Merge(r.Delay)
		rs.Dropped += r.Dropped
		rs.DeadEnds += r.DeadEnds
		rs.DetourHops += r.DetourHops
		rs.Misrouted += r.Misrouted
		rs.LinkDownFrac += r.LinkDownFrac
		rs.NodeDownFrac += r.NodeDownFrac
	}
	k := float64(len(results))
	rs.MeanDelay = perReplica.Mean()
	rs.MeanN /= k
	rs.MeanR /= k
	rs.MeanRs /= k
	rs.LinkDownFrac /= k
	rs.NodeDownFrac /= k
	if rs.MeanN > 0 {
		rs.RPerN = rs.MeanR / rs.MeanN
		rs.RsPerN = rs.MeanRs / rs.MeanN
	}
	if len(results) >= 2 {
		rs.DelayCI = ci95(perReplica)
	} else {
		rs.DelayCI = results[0].DelayCI
	}
	return rs
}

// ci95 returns the 95% half-width for the mean of a small sample using the
// normal critical value; callers wanting exact t-values should use more
// replicas instead.
func ci95(w stats.Welford) float64 {
	if w.Count() < 2 {
		return 0
	}
	return 1.96 * w.StdDev() / math.Sqrt(float64(w.Count()))
}

// Parallel runs fn(i) for i in [0, n) on up to `workers` goroutines
// (0 means GOMAXPROCS). It is the generic building block for callers whose
// work units are not simulation configs; sweeps should prefer RunSweep /
// StreamSweep, which also parallelize across replicas.
func Parallel(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

package sim

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// ArrivalProcess generalizes the merged Poisson packet source: it is the
// point process of packet-generation instants summed over all source nodes.
// Each firing generates one packet at a uniformly random source, exactly
// like the default merged exponential clock, so swapping the process
// changes only the arrival-time sequence, not the spatial traffic split
// (that is the DestSampler's job).
//
// Implementations live in internal/workload (MMPP/on-off bursty sources,
// deterministic periodic injection); the engine keeps the process in the
// same two out-of-tree scalars as the default clock, so a non-allocating
// Next keeps the steady state allocation-free.
type ArrivalProcess interface {
	// Rate returns the long-run mean arrival rate of the merged stream
	// (packets per unit time summed over all sources). The engine uses it
	// to size measurement batches and the stability check divides it by
	// the source count to recover the effective per-node rate.
	Rate() float64
	// Next returns the absolute time of the first arrival strictly after
	// t, advancing any internal state (burst phase, residual phase clock)
	// using rng. The first call of a run passes t = 0. Returning +Inf
	// ends the stream.
	Next(t float64, rng *xrand.RNG) float64
}

// DemandDist is implemented by destination samplers that can report their
// exact destination distribution (internal/workload demands, and the
// adapters in internal/routing). When a Config's Dest implements it and
// the router is steppable, Run checks the pattern-implied per-edge
// utilizations before simulating and refuses unstable configurations
// unless Config.AllowUnstable is set.
type DemandDist interface {
	// Prob returns P[dst | src], the probability that a packet generated
	// at src is destined for dst. Rows must sum to 1 over dst.
	Prob(src, dst int) float64
}

// perNodeRate returns the effective mean generation rate per source node.
func (c *Config) perNodeRate(arrivals ArrivalProcess, numSources int) float64 {
	if arrivals != nil {
		return arrivals.Rate() / float64(numSources)
	}
	return c.NodeRate
}

// checkStability rejects configurations whose destination distribution and
// router imply a per-edge arrival rate at or above the edge's service
// rate: such a run never reaches steady state and its measured delays are
// horizon artifacts, so failing loudly beats producing garbage. The check
// only fires when the exact demand is knowable — Dest implements
// DemandDist and the router exposes steppers (randomized choice routers
// are averaged uniformly over their steppers, which matches RandGreedy's
// fair coin) — so plain UniformDest configs pay nothing.
func (c *Config) checkStability(arrivals ArrivalProcess) error {
	dist, ok := c.Dest.(DemandDist)
	if !ok {
		return nil
	}
	steppers, _, ok := routing.Steppers(c.Router)
	if !ok {
		return nil
	}
	sources := topology.Sources(c.Net)
	perNode := c.perNodeRate(arrivals, len(sources))
	if perNode == 0 {
		return nil
	}
	rates := impliedEdgeRates(c.Net, steppers, dist, sources, perNode)
	for e, rate := range rates {
		svc := 1.0
		if c.ServiceTime != nil {
			svc = c.ServiceTime[e]
		}
		if util := rate * svc; util >= 1 {
			return fmt.Errorf(
				"sim: unstable config: edge %d (%d->%d) has pattern-implied utilization %.4f >= 1 at per-node rate %.6g; lower the load or set AllowUnstable",
				e, c.Net.EdgeFrom(e), c.Net.EdgeTo(e), util, perNode)
		}
	}
	return nil
}

// impliedEdgeRates walks every (source, destination) pair through the
// router's steppers and accumulates λ_e = Σ perNode·P[dst|src] over the
// edges of each route, averaging uniformly over stepper choices.
func impliedEdgeRates(net topology.Network, steppers []routing.Stepper, dist DemandDist, sources []int, perNode float64) []float64 {
	rates := make([]float64, net.NumEdges())
	for _, src := range sources {
		for dst := 0; dst < net.NumNodes(); dst++ {
			p := dist.Prob(src, dst)
			if p == 0 {
				continue
			}
			w := perNode * p / float64(len(steppers))
			for _, st := range steppers {
				for cur := src; cur != dst; {
					edge, done := st.NextEdge(cur, dst)
					if done {
						break
					}
					rates[edge] += w
					cur = net.EdgeTo(edge)
				}
			}
		}
	}
	return rates
}

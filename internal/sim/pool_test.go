package sim

import (
	"context"
	"math"
	"testing"
)

func sweepConfigs() []Config {
	cfgs := make([]Config, 0, 3)
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		cfg := arrayConfig(4, rho, 71)
		cfg.Warmup, cfg.Horizon = 100, 800
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// TestRunSweepMatchesRunReplicas: the shared pool must produce exactly the
// per-cell aggregates that independent RunReplicas calls produce, because
// per-task seeds depend only on (cell seed, replica index).
func TestRunSweepMatchesRunReplicas(t *testing.T) {
	cfgs := sweepConfigs()
	sets, err := RunSweep(context.Background(), cfgs, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := RunReplicas(context.Background(), cfg, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		if sets[i].MeanDelay != want.MeanDelay || sets[i].MeanN != want.MeanN ||
			sets[i].Delay.Count() != want.Delay.Count() {
			t.Errorf("cell %d: sweep (%v, %v, %d) != replicas (%v, %v, %d)",
				i, sets[i].MeanDelay, sets[i].MeanN, sets[i].Delay.Count(),
				want.MeanDelay, want.MeanN, want.Delay.Count())
		}
	}
}

// TestRunSweepDeterministicAcrossWorkers: worker count must not leak into
// results.
func TestRunSweepDeterministicAcrossWorkers(t *testing.T) {
	cfgs := sweepConfigs()
	one, err := RunSweep(context.Background(), cfgs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunSweep(context.Background(), cfgs, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if one[i].MeanDelay != many[i].MeanDelay || one[i].MeanN != many[i].MeanN {
			t.Errorf("cell %d depends on worker count", i)
		}
	}
}

// TestStreamSweepEmitsInInputOrder: emission order is the input order even
// though cells finish out of order (the high-load cell is slowest).
func TestStreamSweepEmitsInInputOrder(t *testing.T) {
	cfgs := sweepConfigs()
	var order []int
	StreamSweep(context.Background(), cfgs, 2, 6, func(i int, rs ReplicaSet, err error) {
		if err != nil {
			t.Errorf("cell %d: %v", i, err)
		}
		if len(rs.Replicas) != 2 {
			t.Errorf("cell %d: %d replicas", i, len(rs.Replicas))
		}
		if math.IsNaN(rs.MeanDelay) || rs.MeanDelay <= 0 {
			t.Errorf("cell %d: bad MeanDelay %v", i, rs.MeanDelay)
		}
		order = append(order, i)
	})
	if len(order) != len(cfgs) {
		t.Fatalf("emitted %d cells, want %d", len(order), len(cfgs))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("emit order %v, want input order", order)
		}
	}
}

// TestRunSweepReportsPerCellErrors: an invalid cell errors without
// poisoning the valid cells around it.
func TestRunSweepReportsPerCellErrors(t *testing.T) {
	cfgs := sweepConfigs()
	cfgs[1].Horizon = 0 // invalid
	sets, err := RunSweep(context.Background(), cfgs, 2, 4)
	if err == nil {
		t.Fatal("expected an error from the invalid cell")
	}
	if sets[0].MeanDelay <= 0 || sets[2].MeanDelay <= 0 {
		t.Error("valid cells did not run")
	}
	if sets[1].Replicas != nil {
		t.Error("failed cell should be zero-valued")
	}
}

// TestStreamSweepEmpty: no configs, no emissions, no hang.
func TestStreamSweepEmpty(t *testing.T) {
	StreamSweep(context.Background(), nil, 3, 2, func(int, ReplicaSet, error) {
		t.Fatal("emit called for empty sweep")
	})
}

func TestSpareFactor(t *testing.T) {
	cases := []struct {
		cells, replicas, workers, want int
	}{
		{4, 4, 8, 1}, // more tasks than workers: nothing spare
		{4, 2, 8, 1}, // exactly saturated
		{2, 1, 8, 4}, // 2 tasks on 8 workers: 4-way intra-run
		{1, 1, 6, 6}, // single run gets the whole machine
		{3, 1, 8, 2}, // rounds down: 8/3 = 2, never oversubscribes
		{1, 0, 5, 5}, // replicas clamp to 1
		{0, 1, 4, 1}, // empty sweep: factor is inert
		{1, 1, 1, 1}, // single worker: serial
	}
	for _, tc := range cases {
		if got := SpareFactor(tc.cells, tc.replicas, tc.workers); got != tc.want {
			t.Errorf("SpareFactor(%d,%d,%d) = %d, want %d", tc.cells, tc.replicas, tc.workers, got, tc.want)
		}
	}
}

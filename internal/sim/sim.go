// Package sim is the discrete-event simulator for the paper's dynamic
// routing model: packets are generated at network nodes by Poisson
// processes, routed along greedy routes, and queue at each directed edge,
// which serves them FIFO (or Processor-Sharing) with deterministic or
// exponential service times.
//
// The simulator measures exactly the quantities the paper reports:
//
//   - T, the mean packet delay (Table I), with batch-means confidence
//     intervals;
//   - E[N], the time-averaged number of packets in the system;
//   - E[R], the time-averaged total remaining services over all packets in
//     the system, giving Table II's r = E[R]/E[N];
//   - E[R_s], the remaining services at saturated queues only, giving
//     Table III's r_s = E[R_s]/E[N];
//   - per-edge arrival rates, validating Theorem 6.
//
// A single run is strictly sequential and deterministic given its seed;
// parallelism comes from independent replicas and sweep points scheduled on
// a shared worker pool (see pool.go and replicas.go).
//
// # Steady-state performance
//
// The event loop is allocation-free at steady state and organized around
// three structures (see BENCH.md for measurements):
//
//   - routing.Stepper: deterministic routers hand out one edge at a time
//     from the (current, destination) pair, so packets never materialize a
//     route slice (generate falls back to Router.AppendRoute only for
//     routers that do not implement Stepper, or when
//     Config.MaterializeRoutes forces the cross-check path);
//   - a packet arena: packets are 24-byte structs in one contiguous slice,
//     addressed by generation-checked int32 handles (arena.go);
//   - des.EventTree: a tournament tree of 16-byte packed event records
//     (payload packs the event kind and edge/source id into 24 bits) with
//     one slot per edge server and source clock — the next event is a root
//     read and (re)scheduling is one branch-free leaf-to-root replay. The
//     merged arrival clock stays outside the tree entirely, in two scalars
//     ordered against the root via a reserved sequence word.
//
// Loop invariants (total arrival rate, per-edge service means and rates,
// the EdgeTo table) are hoisted out of the loop at Run setup. All of this
// preserves the exact (Time, Seq) event order and RNG call sequence of the
// original materialized-route engine, so seeded results are bit-identical
// across both paths (asserted by TestGoldenDeterminism and
// TestStepperEngineMatchesMaterialized).
package sim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// pollEvery is the event-loop cancellation poll period (a power of two so
// the check compiles to a mask). At ~100ns/event a canceled run stops
// within a few hundred microseconds while the poll itself stays invisible
// in profiles.
const pollEvery = 4096

// Discipline selects the queueing discipline at every edge.
type Discipline int

// Disciplines. FIFO is the paper's standard model; PS is the comparison
// network of Theorem 5, whose equilibrium matches the Jackson model;
// FurthestFirst is Leighton's service order (packets with the furthest
// still to travel served first, non-preemptively), which the paper's
// introduction contrasts with FIFO.
const (
	FIFO Discipline = iota
	PS
	FurthestFirst
)

// ServiceModel selects the service-time distribution at every edge.
type ServiceModel int

// Service models. Deterministic unit service is the standard model;
// Exponential turns the network into the Jackson model of §3.3.
const (
	Deterministic ServiceModel = iota
	Exponential
)

// Config describes one simulation run. Net, Router, Dest and NodeRate are
// required; zero values elsewhere mean defaults.
type Config struct {
	// Net is the network topology.
	Net topology.Network
	// Router generates packet routes. Routers implementing routing.Stepper
	// (all deterministic routers in internal/routing) are walked
	// incrementally; others go through AppendRoute.
	Router routing.Router
	// Dest samples packet destinations.
	Dest routing.DestSampler
	// NodeRate is λ, the Poisson packet-generation rate per source node.
	NodeRate float64
	// Warmup is the simulated time discarded before measurement starts.
	Warmup float64
	// Horizon is the measured simulated time after warmup.
	Horizon float64
	// Seed drives all randomness in the run.
	Seed uint64
	// Discipline selects FIFO (default) or PS servers.
	Discipline Discipline
	// Service selects Deterministic (default) or Exponential service.
	Service ServiceModel
	// ServiceTime optionally gives each edge's mean service time (1/φ_e);
	// nil means unit service everywhere.
	ServiceTime []float64
	// Saturated optionally marks saturated edges to enable R_s tracking.
	Saturated []bool
	// BatchCount sets the number of batches for the delay confidence
	// interval; 0 means 16.
	BatchCount int
	// PerNodeArrivals switches from the merged Poisson source (one
	// exponential clock at rate λ·#sources) to one independent clock per
	// source node. The two are statistically identical; the merged form is
	// the default because it keeps the event heap small.
	PerNodeArrivals bool
	// Arrivals optionally replaces the merged Poisson clock with a custom
	// merged arrival process (bursty MMPP/on-off sources, deterministic
	// periodic injection; see internal/workload). The factory is invoked
	// once per run so parallel replicas never share mutable process state.
	// When set, NodeRate must be zero (the process's Rate() defines the
	// offered load) and each arrival picks a uniform source node, exactly
	// like the merged Poisson stream. Mutually exclusive with SlotTau and
	// PerNodeArrivals.
	Arrivals func() ArrivalProcess
	// AllowUnstable skips the pattern-implied stability check performed
	// when Dest exposes its exact distribution (see DemandDist); set it
	// for experiments that deliberately saturate edges.
	AllowUnstable bool
	// SlotTau, if positive, switches to §5.2's slotted-time model: at each
	// multiple of SlotTau every source receives a Poisson(λ·SlotTau) batch.
	SlotTau float64
	// TrackEdgeOccupancy enables per-edge time-averaged queue lengths
	// (Result.EdgeOccupancy), used to verify §4.4's observation that the
	// middle queues grow largest.
	TrackEdgeOccupancy bool
	// TrackNDist enables the exact time-weighted distribution of the
	// number-in-system process N(t) (Result.NDist), used to check the
	// stochastic dominance of Theorems 1 and 5 at the distribution level
	// rather than just in expectation.
	TrackNDist bool
	// DelayHistWidth, if positive, enables a delay histogram with the given
	// bucket width (Result.DelayHist), for tail quantiles.
	DelayHistWidth float64
	// MaterializeRoutes forces the AppendRoute path even when the router
	// implements routing.Stepper. The two paths consume identical RNG
	// sequences and produce bit-identical results; this switch exists so
	// tests can cross-check them.
	MaterializeRoutes bool
	// Resume, if non-nil, starts the run from a captured steady-state
	// checkpoint instead of an empty network, continuing the captured
	// run's absolute clock: measurement covers [Snapshot.Time+Warmup,
	// Snapshot.Time+Warmup+Horizon], so Warmup becomes the RE-warm budget
	// on top of the inherited state. Seed is ignored — the restored
	// stream continues where it left off. Same-rate resume is bit-exact
	// (restore-and-continue equals an uninterrupted longer run); a
	// NodeRate change warm-starts the next point of a ρ-ladder and is
	// statistically exact on the merged and slotted arrival models (see
	// snapshot.go). Only the FIFO + stepper-routing path supports
	// checkpoints.
	Resume *Snapshot
	// Capture asks the run to export its end-of-run state as
	// Result.Snapshot, for a later Resume. Same path restrictions as
	// Resume.
	Capture bool
	// Ctx, when non-nil, lets a long run be aborted mid-flight: the event
	// loop polls it every few thousand events and Run returns the context's
	// cause as its error. Cancellation is control flow only — it never
	// perturbs the variate stream, so an uncanceled run with a Ctx is
	// bit-identical to one without. Sweep pools thread their own context
	// into every config that leaves Ctx nil (sim.StreamSweep), which is how
	// a canceled sweep stops its in-flight simulations instead of waiting
	// them out.
	Ctx context.Context
	// Faults, when non-nil, degrades the run with the plan's link/node
	// failure processes, scheduled outages and misbehaving routers
	// (internal/fault), and switches routing to greedy-with-recovery:
	// packets detour around down greedy next hops and are dropped —
	// counted in Result, never silently lost — at dead ends. Only the
	// FIFO + stepper-routing fast path supports faults (no PS or
	// FurthestFirst, no MaterializeRoutes, no Resume/Capture). MeanR and
	// MeanRs are tracked per packet on fault runs: detours and misroutes
	// re-evaluate the remaining greedy continuation (see fault.go). The
	// fault-free path is bit-identical with or without this field
	// compiled in; a nil Faults changes nothing.
	Faults *fault.Plan
}

// maxEventID is the largest edge or source index the packed 24-bit event
// payload can carry (3 bits of kind, 21 bits of id); deriving it from the
// packing mask keeps the validation limit and evPack from ever diverging.
const maxEventID = evIDMask

func (c *Config) validate() error {
	switch {
	case c.Net == nil || c.Router == nil || c.Dest == nil:
		return fmt.Errorf("sim: Net, Router and Dest are required")
	case c.NodeRate < 0:
		return fmt.Errorf("sim: negative NodeRate")
	case c.Horizon <= 0:
		return fmt.Errorf("sim: Horizon must be positive")
	case c.Warmup < 0 || c.SlotTau < 0:
		return fmt.Errorf("sim: negative Warmup or SlotTau")
	case c.ServiceTime != nil && len(c.ServiceTime) != c.Net.NumEdges():
		return fmt.Errorf("sim: ServiceTime has %d entries, want %d", len(c.ServiceTime), c.Net.NumEdges())
	case c.Saturated != nil && len(c.Saturated) != c.Net.NumEdges():
		return fmt.Errorf("sim: Saturated has %d entries, want %d", len(c.Saturated), c.Net.NumEdges())
	case c.SlotTau > 0 && c.PerNodeArrivals:
		return fmt.Errorf("sim: SlotTau and PerNodeArrivals are mutually exclusive arrival models")
	case c.Arrivals != nil && (c.SlotTau > 0 || c.PerNodeArrivals):
		return fmt.Errorf("sim: Arrivals is mutually exclusive with SlotTau and PerNodeArrivals")
	case c.Arrivals != nil && c.NodeRate != 0:
		return fmt.Errorf("sim: NodeRate must be zero when Arrivals is set (the process's Rate() defines the load)")
	case c.Net.NumEdges() > maxEventID+1 || c.Net.NumNodes() > maxEventID+1:
		return fmt.Errorf("sim: %s exceeds the %d edge/node event-encoding limit", c.Net.Name(), maxEventID+1)
	case c.Faults != nil && c.Discipline != FIFO:
		return fmt.Errorf("sim: fault layer supports only the FIFO discipline")
	case c.Faults != nil && c.MaterializeRoutes:
		return fmt.Errorf("sim: fault layer requires stepper routing; MaterializeRoutes cannot combine with Faults")
	case c.Faults != nil && (c.Resume != nil || c.Capture):
		return fmt.Errorf("sim: fault processes are not snapshottable; Faults cannot combine with Resume or Capture")
	case c.Faults != nil && (c.Faults.NumNodes != c.Net.NumNodes() || c.Faults.NumEdges != c.Net.NumEdges()):
		return fmt.Errorf("sim: fault plan bound to a %d-node/%d-edge network; config's %s has %d/%d",
			c.Faults.NumNodes, c.Faults.NumEdges, c.Net.Name(), c.Net.NumNodes(), c.Net.NumEdges())
	}
	return nil
}

// Result holds the measurements of one run.
type Result struct {
	// MeanDelay is T̂: the mean time in system over measured packets
	// (including zero-hop packets, as in the paper's model).
	MeanDelay float64
	// DelayCI is the 95% batch-means half-width for MeanDelay.
	DelayCI float64
	// Delay holds the full per-packet delay statistics.
	Delay stats.Welford
	// MeanN is the time-averaged number of packets in the system.
	MeanN float64
	// MeanR is the time-averaged total remaining services E[R].
	MeanR float64
	// MeanRs is the time-averaged remaining saturated services E[R_s]
	// (zero unless Config.Saturated was set).
	MeanRs float64
	// RPerN is Table II's r = E[R]/E[N].
	RPerN float64
	// RsPerN is Table III's r_s = E[R_s]/E[N].
	RsPerN float64
	// Generated and Delivered count measured packets.
	Generated, Delivered int64
	// Time is the measured horizon.
	Time float64
	// EdgeRates is the measured per-edge arrival rate (arrivals/time).
	EdgeRates []float64
	// MaxN is the peak number of packets in the system during measurement.
	MaxN float64
	// LittleRelErr is the relative discrepancy |N - Λ̂·T̂|/N, a self-check
	// of the simulator's bookkeeping (small but nonzero due to boundary
	// censoring).
	LittleRelErr float64
	// EdgeOccupancy is the per-edge time-averaged queue length (including
	// the packet in service); nil unless Config.TrackEdgeOccupancy.
	EdgeOccupancy []float64
	// NDist[k] is the fraction of measured time with exactly k packets in
	// the system; nil unless Config.TrackNDist.
	NDist []float64
	// DelayHist is the per-packet delay histogram; nil unless
	// Config.DelayHistWidth > 0.
	DelayHist *stats.Histogram
	// Fault-layer outcome counters, all zero on fault-free runs (see
	// Config.Faults). Dropped counts measured packets that left the
	// system undelivered: generated at a down source, dropped by a drop
	// liar, or dead-ended with no live improving neighbor. DeadEnds
	// counts the last kind separately (DeadEnds ⊆ Dropped). DetourHops
	// counts recovery detours taken off the greedy route; Misrouted
	// counts adversarial misroutes. Generated − Delivered − Dropped
	// equals the measured packets still in flight at the horizon.
	Dropped, DeadEnds, DetourHops, Misrouted int64
	// LinkDownFrac and NodeDownFrac are the measured fraction of
	// entity-time down, with ALL links/nodes of the network in the
	// denominator (so 1% of links each down 2% of the time reads
	// ≈ 0.0002). Zero on fault-free runs.
	LinkDownFrac, NodeDownFrac float64
	// Snapshot is the end-of-run engine checkpoint, present only when the
	// run was configured with Capture. It feeds Config.Resume.
	Snapshot *Snapshot
}

// TailProb returns Pr[N > k] under the measured NDist (0 when untracked).
func (r *Result) TailProb(k int) float64 {
	total := 0.0
	for i := k + 1; i < len(r.NDist); i++ {
		total += r.NDist[i]
	}
	return total
}

// Event kinds, packed into the top 3 bits of a Heap4 payload; the low 21
// bits carry the edge or source id.
const (
	evArrival     uint32 = iota // merged-source generation (kept out of the heap; see engine.nextArr)
	evNodeArrival               // per-node packet generation (id = source index)
	evSlot                      // slotted-time batch generation
	evDeparture                 // FIFO service completion (id = edge)
	evPSDone                    // PS service completion (id = edge, station-validated)

	evKindShift = 21
	evIDMask    = 1<<evKindShift - 1
)

// evPack packs an event kind and id into a 24-bit heap payload.
func evPack(kind uint32, id int) uint32 {
	return kind<<evKindShift | uint32(id)
}

// engine is the per-run state.
type engine struct {
	cfg     Config
	rng     *xrand.RNG
	tree    *des.EventTree
	fifo    []des.FIFOStation[int32]
	ps      []des.PSStation[int32]
	prio    []des.PriorityStation[int32]
	sources []int
	arena   arena

	// arrivals is the custom merged arrival process (nil on the default
	// Poisson / slotted / per-node paths).
	arrivals ArrivalProcess

	// routing plane: steppers is nil on the legacy AppendRoute path.
	steppers []routing.Stepper
	choose   func(*xrand.RNG) int
	edgeTo   []int32
	fastFIFO bool // FIFO discipline + stepper routing: use departFIFO

	// flt is the fault layer's per-run state (nil on fault-free runs;
	// every fault hook in the engine is behind this check).
	flt *desFaults

	// loop invariants hoisted at setup
	totalRate float64   // NodeRate · #sources
	slotMean  float64   // NodeRate · SlotTau
	svcMean   []float64 // per-edge mean service time
	svcRate   []float64 // per-edge service rate 1/mean (Exponential only)

	// Merged arrival (or slotted batch) stream, kept out of the event
	// tree: there is always exactly one pending generator event, so it
	// lives in two scalars. nextArrMeta is the ReserveSeq tie-break key
	// (0 = stream inactive), which keeps the stream in the exact
	// (Time, Seq) total order of a heap-scheduled formulation.
	nextArr     float64
	nextArrMeta uint64

	// measurement plane
	measuring  bool
	start, end float64
	nInt       stats.TimeWeighted
	rInt       stats.TimeWeighted
	rsInt      stats.TimeWeighted
	nNow       float64
	rNow       float64
	rsNow      float64
	delay      stats.Welford
	batches    *stats.BatchMeans
	edgeCount  []int64
	generated  int64
	delivered  int64

	// optional trackers
	edgeOcc   []stats.TimeWeighted
	nDur      []float64
	nLast     float64
	delayHist *stats.Histogram
}

// bumpN shifts the number-in-system process by delta at time t, keeping the
// mean integrator and (when enabled) the exact time-at-each-level record.
func (e *engine) bumpN(t, delta float64) {
	if e.nDur != nil && e.measuring {
		idx := int(e.nNow)
		for idx >= len(e.nDur) {
			e.nDur = append(e.nDur, 0)
		}
		e.nDur[idx] += t - e.nLast
		e.nLast = t
	}
	e.nNow += delta
	if e.measuring {
		e.nInt.Set(t, e.nNow)
	}
}

// stationLen returns the queue length (including in service) at edge.
func (e *engine) stationLen(edge int) int {
	switch e.cfg.Discipline {
	case PS:
		return e.ps[edge].Len()
	case FurthestFirst:
		return e.prio[edge].Len()
	default:
		return e.fifo[edge].Len()
	}
}

// noteOccupancy records edge's queue length after a change. Callers check
// e.edgeOcc != nil first so the disabled tracker costs no call in the hot
// loop.
func (e *engine) noteOccupancy(t float64, edge int) {
	if e.measuring {
		e.edgeOcc[edge].Set(t, float64(e.stationLen(edge)))
	}
}

// Run executes one simulation and returns its measurements. Sweeps and
// replica sets should prefer a per-worker Runner (StreamSweep's workers use
// one), which produces bit-identical results while amortizing the per-run
// setup allocations to ~0; Run itself is a throwaway Runner.
func Run(cfg Config) (Result, error) {
	var r Runner
	return r.Run(cfg)
}

// scheduleSources seeds the generator events.
func (e *engine) scheduleSources() {
	switch {
	case e.cfg.SlotTau > 0:
		e.nextArr = e.cfg.SlotTau
		e.nextArrMeta = e.tree.ReserveSeq()
	case e.arrivals != nil:
		// The custom process shares the merged clock's two scalars; +Inf
		// (an ended stream) orders after every tree event and the horizon,
		// so the loop retires it without a special case.
		e.nextArr = e.arrivals.Next(0, e.rng)
		e.nextArrMeta = e.tree.ReserveSeq()
	case e.cfg.PerNodeArrivals:
		for i := range e.sources {
			if e.cfg.NodeRate > 0 {
				e.tree.Schedule(e.srcSlot(i), e.rng.Exp(e.cfg.NodeRate), evPack(evNodeArrival, i))
			}
		}
	default:
		if e.totalRate > 0 {
			e.nextArr = e.rng.Exp(e.totalRate)
			e.nextArrMeta = e.tree.ReserveSeq()
		}
	}
}

// srcSlot returns the event-tree slot of source clock i (edge slots come
// first).
func (e *engine) srcSlot(i int) int { return e.cfg.Net.NumEdges() + i }

// loop drains events until the measurement horizon ends, or until the
// config's context is canceled (polled every pollEvery events; the poll is
// pure control flow and never touches the RNG, so uncanceled runs are
// bit-identical with or without a Ctx). It returns false iff canceled.
func (e *engine) loop() bool {
	ctx := e.cfg.Ctx
	var events int
	for {
		if ctx != nil {
			if events++; events&(pollEvery-1) == 0 && ctx.Err() != nil {
				return false
			}
		}
		if e.nextArrMeta != 0 && e.tree.HeadAfter(e.nextArr, e.nextArrMeta) {
			// The generator clock fires before every tree event.
			t := e.nextArr
			if t > e.end {
				return true
			}
			if !e.measuring && t >= e.start {
				e.beginMeasurement()
			}
			switch {
			case e.cfg.SlotTau > 0:
				for _, src := range e.sources {
					for k := e.rng.Poisson(e.slotMean); k > 0; k-- {
						e.generate(t, src)
					}
				}
				e.nextArr = t + e.cfg.SlotTau
			case e.arrivals != nil:
				src := e.sources[e.rng.Intn(len(e.sources))]
				e.generate(t, src)
				e.nextArr = e.arrivals.Next(t, e.rng)
			default:
				src := e.sources[e.rng.Intn(len(e.sources))]
				e.generate(t, src)
				e.nextArr = t + e.rng.Exp(e.totalRate)
			}
			e.nextArrMeta = e.tree.ReserveSeq()
			continue
		}
		t, payload, ok := e.tree.Head()
		if !ok {
			return true
		}
		if t > e.end {
			return true
		}
		if !e.measuring && t >= e.start {
			e.beginMeasurement()
		}
		id := int(payload & evIDMask)
		// Every handler overwrites or clears the head's slot, so the tree
		// never needs an explicit pop.
		switch payload >> evKindShift {
		case evNodeArrival:
			e.generate(t, e.sources[id])
			e.tree.Schedule(e.srcSlot(id), t+e.rng.Exp(e.cfg.NodeRate), payload)
		case evDeparture:
			if e.fastFIFO {
				if e.flt != nil {
					e.departFIFOFault(t, id)
				} else {
					e.departFIFO(t, id)
				}
			} else {
				e.fifoDepart(t, id)
			}
		case evPSDone:
			e.psDepart(t, id)
		}
	}
}

// beginMeasurement resets the measurement plane at the warmup boundary.
func (e *engine) beginMeasurement() {
	e.measuring = true
	e.nInt.StartAt(e.start, e.nNow)
	e.rInt.StartAt(e.start, e.rNow)
	e.rsInt.StartAt(e.start, e.rsNow)
	for i := range e.edgeCount {
		e.edgeCount[i] = 0
	}
	e.generated = 0
	e.delivered = 0
	for i := range e.edgeOcc {
		e.edgeOcc[i].StartAt(e.start, float64(e.stationLen(i)))
	}
	e.nLast = e.start
}

// generate creates a packet at src at time t and injects it.
func (e *engine) generate(t float64, src int) {
	dst := e.cfg.Dest.Sample(src, e.rng)
	if e.measuring {
		e.generated++
	}
	if e.steppers != nil {
		choice := 0
		if e.choose != nil {
			// The randomized router's coin, resolved at generation time;
			// consumes the same variate AppendRoute would.
			choice = e.choose(e.rng)
		}
		st := e.steppers[choice]
		if e.flt != nil && !e.flt.nodeUp(int32(src), t) {
			// Down source: the packet is offered but immediately lost —
			// checked after the destination and coin draws so the variate
			// stream does not depend on the fault state (mirroring the
			// slotted engine's source-drop hook).
			if e.measuring {
				e.flt.dropped++
			}
			return
		}
		rem := st.RemainingHops(src, dst)
		if rem == 0 {
			// Source equals destination: delivered instantly with zero
			// delay, never entering any queue (the paper allows these).
			e.recordDelivery(t, t, e.measuring)
			return
		}
		h, p := e.arena.alloc()
		p.genTime = t
		p.cur = int32(src)
		p.dst = int32(dst)
		p.choice = uint8(choice)
		p.measured = e.measuring
		e.bumpN(t, 1)
		e.rNow += float64(rem)
		if e.flt != nil {
			// Fault runs track remaining services per packet: detours and
			// misroutes re-evaluate the greedy continuation, so each
			// packet remembers what it charged (see departFIFOFault).
			p.rem = int32(rem)
		}
		if e.cfg.Saturated != nil {
			rs := e.countSaturatedWalk(st, src, dst)
			e.rsNow += float64(rs)
			if e.flt != nil {
				p.rs = int32(rs)
			}
		}
		if e.measuring {
			e.rInt.Set(t, e.rNow)
			if e.cfg.Saturated != nil {
				e.rsInt.Set(t, e.rsNow)
			}
		}
		e.enqueue(t, h, p)
		return
	}

	// Legacy path: materialize the route through AppendRoute.
	h, p := e.arena.alloc()
	p.genTime = t
	p.measured = e.measuring
	route := e.cfg.Router.AppendRoute(e.arena.route(h)[:0], src, dst, e.rng)
	e.arena.setRoute(h, route)
	if len(route) == 0 {
		e.recordDelivery(t, t, e.measuring)
		e.arena.release(h)
		return
	}
	e.bumpN(t, 1)
	e.rNow += float64(len(route))
	if e.cfg.Saturated != nil {
		e.rsNow += float64(e.countSaturated(route))
	}
	if e.measuring {
		e.rInt.Set(t, e.rNow)
		if e.cfg.Saturated != nil {
			e.rsInt.Set(t, e.rsNow)
		}
	}
	e.enqueue(t, h, p)
}

// countSaturatedWalk counts saturated edges on the stepper route src→dst.
func (e *engine) countSaturatedWalk(st routing.Stepper, src, dst int) int {
	count := 0
	cur := src
	for {
		edge, done := st.NextEdge(cur, dst)
		if done {
			return count
		}
		if e.cfg.Saturated[edge] {
			count++
		}
		cur = int(e.edgeTo[edge])
	}
}

func (e *engine) countSaturated(route []int) int {
	count := 0
	for _, edge := range route {
		if e.cfg.Saturated[edge] {
			count++
		}
	}
	return count
}

// serviceTime samples the service requirement at edge; means and rates are
// hoisted to per-edge tables at setup.
func (e *engine) serviceTime(edge int) float64 {
	if e.svcRate != nil {
		return e.rng.Exp(e.svcRate[edge])
	}
	return e.svcMean[edge]
}

// nextEdge returns the edge p enters next.
func (e *engine) nextEdge(h int32, p *packet) int {
	if e.steppers != nil {
		edge, _ := e.steppers[p.choice].NextEdge(int(p.cur), int(p.dst))
		return edge
	}
	return e.arena.route(h)[p.hop]
}

// remainingHops returns the hop count left for p, counting the hop p is
// currently queued for (or about to be).
func (e *engine) remainingHops(h int32, p *packet) int {
	if e.steppers != nil {
		return e.steppers[p.choice].RemainingHops(int(p.cur), int(p.dst))
	}
	return len(e.arena.route(h)) - int(p.hop)
}

// enqueue places p at its next edge's station.
func (e *engine) enqueue(t float64, h int32, p *packet) {
	edge := e.nextEdge(h, p)
	if e.measuring {
		e.edgeCount[edge]++
	}
	switch e.cfg.Discipline {
	case PS:
		st := &e.ps[edge]
		st.Arrive(t, h, e.serviceTime(edge))
		e.schedulePS(t, edge)
	case FurthestFirst:
		remaining := float64(e.remainingHops(h, p))
		if e.prio[edge].Arrive(h, remaining) {
			e.tree.ScheduleIdle(edge, t+e.serviceTime(edge), evPack(evDeparture, edge))
		}
	default:
		if e.fifo[edge].Arrive(h) {
			if e.flt != nil {
				// The greedy first hop is taken even when currently down
				// (the queue holds, like the slotted engine's); only the
				// service start defers to the edge's next up time.
				e.tree.ScheduleIdle(edge, e.departAtFault(edge, t), evPack(evDeparture, edge))
			} else {
				e.tree.ScheduleIdle(edge, t+e.serviceTime(edge), evPack(evDeparture, edge))
			}
		}
	}
	if e.edgeOcc != nil {
		e.noteOccupancy(t, edge)
	}
}

// schedulePS replaces edge's completion event with a fresh one reflecting
// the station's current job set; slot replacement means a stale completion
// never exists, so no epoch or claim check is needed.
func (e *engine) schedulePS(t float64, edge int) {
	st := &e.ps[edge]
	if tc, ok := st.NextCompletion(t); ok {
		e.tree.Schedule(edge, tc, evPack(evPSDone, edge))
	} else {
		e.tree.Clear(edge)
	}
}

// departFIFO is the fused FIFO+stepper fast path: fifoDepart, advance and
// enqueue in one frame. Departures dominate the event mix (one per routed
// hop), and the three-deep call chain is too large for the inliner, so the
// fusion saves measurable dispatch overhead. The generic handlers below
// remain the reference semantics; the golden and materialized cross-check
// tests pin both paths to bit-identical results.
func (e *engine) departFIFO(t float64, edge int) {
	finished, _, hasNext := e.fifo[edge].Complete()
	if hasNext {
		e.tree.Schedule(edge, t+e.serviceTime(edge), evPack(evDeparture, edge))
	} else {
		e.tree.Clear(edge)
	}
	if e.edgeOcc != nil {
		e.noteOccupancy(t, edge)
	}
	p := e.arena.get(finished)
	e.rNow--
	if e.cfg.Saturated != nil && e.cfg.Saturated[edge] {
		e.rsNow--
	}
	p.cur = e.edgeTo[edge]
	done := p.cur == p.dst
	if done {
		e.bumpN(t, -1)
	}
	if e.measuring {
		e.rInt.Set(t, e.rNow)
		if e.cfg.Saturated != nil {
			e.rsInt.Set(t, e.rsNow)
		}
	}
	if done {
		e.recordDelivery(t, p.genTime, p.measured)
		e.arena.release(finished)
		return
	}
	next, _ := e.steppers[p.choice].NextEdge(int(p.cur), int(p.dst))
	if e.measuring {
		e.edgeCount[next]++
	}
	if e.fifo[next].Arrive(finished) {
		e.tree.ScheduleIdle(next, t+e.serviceTime(next), evPack(evDeparture, next))
	}
	if e.edgeOcc != nil {
		e.noteOccupancy(t, next)
	}
}

// fifoDepart completes the in-service packet at edge (FIFO or priority).
func (e *engine) fifoDepart(t float64, edge int) {
	var finished int32
	var hasNext bool
	if e.cfg.Discipline == FurthestFirst {
		finished, _, hasNext = e.prio[edge].Complete()
	} else {
		finished, _, hasNext = e.fifo[edge].Complete()
	}
	if hasNext {
		e.tree.Schedule(edge, t+e.serviceTime(edge), evPack(evDeparture, edge))
	} else {
		e.tree.Clear(edge)
	}
	if e.edgeOcc != nil {
		e.noteOccupancy(t, edge)
	}
	e.advance(t, finished, edge)
}

// psDepart completes the least-remaining packet at edge's PS station. The
// fired event is the station's live one by construction: rescheduling
// replaces the slot, so stale completions cannot reach here.
func (e *engine) psDepart(t float64, edge int) {
	st := &e.ps[edge]
	finished := st.CompleteOne(t)
	e.schedulePS(t, edge)
	if e.edgeOcc != nil {
		e.noteOccupancy(t, edge)
	}
	e.advance(t, finished, edge)
}

// advance moves the packet h past its just-completed service at edge.
func (e *engine) advance(t float64, h int32, edge int) {
	p := e.arena.get(h)
	e.rNow--
	if e.cfg.Saturated != nil && e.cfg.Saturated[edge] {
		e.rsNow--
	}
	var done bool
	if e.steppers != nil {
		p.cur = e.edgeTo[edge]
		done = p.cur == p.dst
	} else {
		p.hop++
		done = int(p.hop) == len(e.arena.route(h))
	}
	if done {
		e.bumpN(t, -1)
	}
	if e.measuring {
		e.rInt.Set(t, e.rNow)
		// rsInt integrates an identically-zero process when no edges are
		// marked saturated; skipping it changes nothing but the loop cost.
		if e.cfg.Saturated != nil {
			e.rsInt.Set(t, e.rsNow)
		}
	}
	if done {
		e.recordDelivery(t, p.genTime, p.measured)
		e.arena.release(h)
		return
	}
	e.enqueue(t, h, p)
}

// recordDelivery accounts one delivered packet generated at genTime.
func (e *engine) recordDelivery(t, genTime float64, measured bool) {
	if measured && e.measuring {
		d := t - genTime
		e.delay.Add(d)
		e.batches.Add(d)
		if e.delayHist != nil {
			e.delayHist.Add(d)
		}
		e.delivered++
	}
}

// result assembles the Result at the end of the horizon.
func (e *engine) result() Result {
	r := Result{
		Delay:     e.delay,
		MeanDelay: e.delay.Mean(),
		DelayCI:   e.batches.HalfWidth95(),
		MeanN:     e.nInt.MeanAt(e.end),
		MeanR:     e.rInt.MeanAt(e.end),
		MeanRs:    e.rsInt.MeanAt(e.end),
		Generated: e.generated,
		Delivered: e.delivered,
		Time:      e.end - e.start,
		MaxN:      e.nInt.Max(),
	}
	if r.MeanN > 0 {
		r.RPerN = r.MeanR / r.MeanN
		r.RsPerN = r.MeanRs / r.MeanN
	}
	r.EdgeRates = make([]float64, len(e.edgeCount))
	for i, c := range e.edgeCount {
		r.EdgeRates[i] = float64(c) / r.Time
	}
	if r.MeanN > 0 && r.Time > 0 {
		littleN := float64(r.Delivered) / r.Time * r.MeanDelay
		r.LittleRelErr = math.Abs(littleN-r.MeanN) / r.MeanN
	}
	if e.edgeOcc != nil {
		r.EdgeOccupancy = make([]float64, len(e.edgeOcc))
		for i := range e.edgeOcc {
			r.EdgeOccupancy[i] = e.edgeOcc[i].MeanAt(e.end)
		}
	}
	if e.nDur != nil {
		idx := int(e.nNow)
		for idx >= len(e.nDur) {
			e.nDur = append(e.nDur, 0)
		}
		e.nDur[idx] += e.end - e.nLast
		r.NDist = make([]float64, len(e.nDur))
		for i, d := range e.nDur {
			r.NDist[i] = d / r.Time
		}
	}
	r.DelayHist = e.delayHist
	if e.flt != nil {
		f := e.flt
		f.finish(e.end)
		r.Dropped = f.dropped
		r.DeadEnds = f.deadEnds
		r.DetourHops = f.detourHops
		r.Misrouted = f.misrouted
		if r.Time > 0 {
			r.LinkDownFrac = f.links.downtime / (float64(f.plan.NumEdges) * r.Time)
			r.NodeDownFrac = f.nodes.downtime / (float64(f.plan.NumNodes) * r.Time)
		}
	}
	return r
}

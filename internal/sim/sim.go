// Package sim is the discrete-event simulator for the paper's dynamic
// routing model: packets are generated at network nodes by Poisson
// processes, routed along precomputed greedy routes, and queue at each
// directed edge, which serves them FIFO (or Processor-Sharing) with
// deterministic or exponential service times.
//
// The simulator measures exactly the quantities the paper reports:
//
//   - T, the mean packet delay (Table I), with batch-means confidence
//     intervals;
//   - E[N], the time-averaged number of packets in the system;
//   - E[R], the time-averaged total remaining services over all packets in
//     the system, giving Table II's r = E[R]/E[N];
//   - E[R_s], the remaining services at saturated queues only, giving
//     Table III's r_s = E[R_s]/E[N];
//   - per-edge arrival rates, validating Theorem 6.
//
// A single run is strictly sequential and deterministic given its seed;
// parallelism comes from independent replicas (see replicas.go).
package sim

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Discipline selects the queueing discipline at every edge.
type Discipline int

// Disciplines. FIFO is the paper's standard model; PS is the comparison
// network of Theorem 5, whose equilibrium matches the Jackson model;
// FurthestFirst is Leighton's service order (packets with the furthest
// still to travel served first, non-preemptively), which the paper's
// introduction contrasts with FIFO.
const (
	FIFO Discipline = iota
	PS
	FurthestFirst
)

// ServiceModel selects the service-time distribution at every edge.
type ServiceModel int

// Service models. Deterministic unit service is the standard model;
// Exponential turns the network into the Jackson model of §3.3.
const (
	Deterministic ServiceModel = iota
	Exponential
)

// Config describes one simulation run. Net, Router, Dest and NodeRate are
// required; zero values elsewhere mean defaults.
type Config struct {
	// Net is the network topology.
	Net topology.Network
	// Router generates packet routes.
	Router routing.Router
	// Dest samples packet destinations.
	Dest routing.DestSampler
	// NodeRate is λ, the Poisson packet-generation rate per source node.
	NodeRate float64
	// Warmup is the simulated time discarded before measurement starts.
	Warmup float64
	// Horizon is the measured simulated time after warmup.
	Horizon float64
	// Seed drives all randomness in the run.
	Seed uint64
	// Discipline selects FIFO (default) or PS servers.
	Discipline Discipline
	// Service selects Deterministic (default) or Exponential service.
	Service ServiceModel
	// ServiceTime optionally gives each edge's mean service time (1/φ_e);
	// nil means unit service everywhere.
	ServiceTime []float64
	// Saturated optionally marks saturated edges to enable R_s tracking.
	Saturated []bool
	// BatchCount sets the number of batches for the delay confidence
	// interval; 0 means 16.
	BatchCount int
	// PerNodeArrivals switches from the merged Poisson source (one
	// exponential clock at rate λ·#sources) to one independent clock per
	// source node. The two are statistically identical; the merged form is
	// the default because it keeps the event heap small.
	PerNodeArrivals bool
	// SlotTau, if positive, switches to §5.2's slotted-time model: at each
	// multiple of SlotTau every source receives a Poisson(λ·SlotTau) batch.
	SlotTau float64
	// TrackEdgeOccupancy enables per-edge time-averaged queue lengths
	// (Result.EdgeOccupancy), used to verify §4.4's observation that the
	// middle queues grow largest.
	TrackEdgeOccupancy bool
	// TrackNDist enables the exact time-weighted distribution of the
	// number-in-system process N(t) (Result.NDist), used to check the
	// stochastic dominance of Theorems 1 and 5 at the distribution level
	// rather than just in expectation.
	TrackNDist bool
	// DelayHistWidth, if positive, enables a delay histogram with the given
	// bucket width (Result.DelayHist), for tail quantiles.
	DelayHistWidth float64
}

func (c *Config) validate() error {
	switch {
	case c.Net == nil || c.Router == nil || c.Dest == nil:
		return fmt.Errorf("sim: Net, Router and Dest are required")
	case c.NodeRate < 0:
		return fmt.Errorf("sim: negative NodeRate")
	case c.Horizon <= 0:
		return fmt.Errorf("sim: Horizon must be positive")
	case c.Warmup < 0 || c.SlotTau < 0:
		return fmt.Errorf("sim: negative Warmup or SlotTau")
	case c.ServiceTime != nil && len(c.ServiceTime) != c.Net.NumEdges():
		return fmt.Errorf("sim: ServiceTime has %d entries, want %d", len(c.ServiceTime), c.Net.NumEdges())
	case c.Saturated != nil && len(c.Saturated) != c.Net.NumEdges():
		return fmt.Errorf("sim: Saturated has %d entries, want %d", len(c.Saturated), c.Net.NumEdges())
	case c.SlotTau > 0 && c.PerNodeArrivals:
		return fmt.Errorf("sim: SlotTau and PerNodeArrivals are mutually exclusive arrival models")
	}
	return nil
}

// Result holds the measurements of one run.
type Result struct {
	// MeanDelay is T̂: the mean time in system over measured packets
	// (including zero-hop packets, as in the paper's model).
	MeanDelay float64
	// DelayCI is the 95% batch-means half-width for MeanDelay.
	DelayCI float64
	// Delay holds the full per-packet delay statistics.
	Delay stats.Welford
	// MeanN is the time-averaged number of packets in the system.
	MeanN float64
	// MeanR is the time-averaged total remaining services E[R].
	MeanR float64
	// MeanRs is the time-averaged remaining saturated services E[R_s]
	// (zero unless Config.Saturated was set).
	MeanRs float64
	// RPerN is Table II's r = E[R]/E[N].
	RPerN float64
	// RsPerN is Table III's r_s = E[R_s]/E[N].
	RsPerN float64
	// Generated and Delivered count measured packets.
	Generated, Delivered int64
	// Time is the measured horizon.
	Time float64
	// EdgeRates is the measured per-edge arrival rate (arrivals/time).
	EdgeRates []float64
	// MaxN is the peak number of packets in the system during measurement.
	MaxN float64
	// LittleRelErr is the relative discrepancy |N - Λ̂·T̂|/N, a self-check
	// of the simulator's bookkeeping (small but nonzero due to boundary
	// censoring).
	LittleRelErr float64
	// EdgeOccupancy is the per-edge time-averaged queue length (including
	// the packet in service); nil unless Config.TrackEdgeOccupancy.
	EdgeOccupancy []float64
	// NDist[k] is the fraction of measured time with exactly k packets in
	// the system; nil unless Config.TrackNDist.
	NDist []float64
	// DelayHist is the per-packet delay histogram; nil unless
	// Config.DelayHistWidth > 0.
	DelayHist *stats.Histogram
}

// TailProb returns Pr[N > k] under the measured NDist (0 when untracked).
func (r *Result) TailProb(k int) float64 {
	total := 0.0
	for i := k + 1; i < len(r.NDist); i++ {
		total += r.NDist[i]
	}
	return total
}

// packet is one in-flight packet. Packets and their route buffers are
// recycled through a freelist to keep the steady state allocation-free.
type packet struct {
	genTime  float64
	hop      int
	route    []int
	measured bool
}

// Event kinds.
const (
	evArrival     uint8 = iota // merged-source packet generation
	evNodeArrival              // per-node packet generation (id = source index)
	evSlot                     // slotted-time batch generation
	evDeparture                // FIFO service completion (id = edge)
	evPSDone                   // PS service completion (id = edge, epoch-checked)
)

type ev struct {
	kind  uint8
	id    int32
	epoch uint64
}

// engine is the per-run state.
type engine struct {
	cfg     Config
	rng     *xrand.RNG
	heap    des.EventHeap[ev]
	fifo    []des.FIFOStation[*packet]
	ps      []des.PSStation[*packet]
	prio    []des.PriorityStation[*packet]
	sources []int
	free    []*packet

	// measurement plane
	measuring  bool
	start, end float64
	nInt       stats.TimeWeighted
	rInt       stats.TimeWeighted
	rsInt      stats.TimeWeighted
	nNow       float64
	rNow       float64
	rsNow      float64
	delay      stats.Welford
	batches    *stats.BatchMeans
	edgeCount  []int64
	generated  int64
	delivered  int64

	// optional trackers
	edgeOcc   []stats.TimeWeighted
	nDur      []float64
	nLast     float64
	delayHist *stats.Histogram
}

// bumpN shifts the number-in-system process by delta at time t, keeping the
// mean integrator and (when enabled) the exact time-at-each-level record.
func (e *engine) bumpN(t, delta float64) {
	if e.nDur != nil && e.measuring {
		idx := int(e.nNow)
		for idx >= len(e.nDur) {
			e.nDur = append(e.nDur, 0)
		}
		e.nDur[idx] += t - e.nLast
		e.nLast = t
	}
	e.nNow += delta
	if e.measuring {
		e.nInt.Set(t, e.nNow)
	}
}

// stationLen returns the queue length (including in service) at edge.
func (e *engine) stationLen(edge int) int {
	switch e.cfg.Discipline {
	case PS:
		return e.ps[edge].Len()
	case FurthestFirst:
		return e.prio[edge].Len()
	default:
		return e.fifo[edge].Len()
	}
}

// noteOccupancy records edge's queue length after a change.
func (e *engine) noteOccupancy(t float64, edge int) {
	if e.edgeOcc != nil && e.measuring {
		e.edgeOcc[edge].Set(t, float64(e.stationLen(edge)))
	}
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	e := &engine{
		cfg:       cfg,
		rng:       xrand.New(cfg.Seed),
		sources:   topology.Sources(cfg.Net),
		edgeCount: make([]int64, cfg.Net.NumEdges()),
		start:     cfg.Warmup,
		end:       cfg.Warmup + cfg.Horizon,
	}
	switch cfg.Discipline {
	case PS:
		e.ps = make([]des.PSStation[*packet], cfg.Net.NumEdges())
	case FurthestFirst:
		e.prio = make([]des.PriorityStation[*packet], cfg.Net.NumEdges())
	default:
		e.fifo = make([]des.FIFOStation[*packet], cfg.Net.NumEdges())
	}
	batchCount := cfg.BatchCount
	if batchCount <= 0 {
		batchCount = 16
	}
	expected := cfg.NodeRate * float64(len(e.sources)) * cfg.Horizon
	batchSize := int64(expected) / int64(batchCount)
	if batchSize < 1 {
		batchSize = 1
	}
	e.batches = stats.NewBatchMeans(batchSize)
	if cfg.TrackEdgeOccupancy {
		e.edgeOcc = make([]stats.TimeWeighted, cfg.Net.NumEdges())
	}
	if cfg.TrackNDist {
		e.nDur = make([]float64, 64)
	}
	if cfg.DelayHistWidth > 0 {
		e.delayHist = stats.NewHistogram(cfg.DelayHistWidth, 4096)
	}

	e.scheduleSources()
	e.loop()
	return e.result(), nil
}

// scheduleSources seeds the generator events.
func (e *engine) scheduleSources() {
	totalRate := e.cfg.NodeRate * float64(len(e.sources))
	switch {
	case e.cfg.SlotTau > 0:
		e.heap.Push(e.cfg.SlotTau, ev{kind: evSlot})
	case e.cfg.PerNodeArrivals:
		for i := range e.sources {
			if e.cfg.NodeRate > 0 {
				e.heap.Push(e.rng.Exp(e.cfg.NodeRate), ev{kind: evNodeArrival, id: int32(i)})
			}
		}
	default:
		if totalRate > 0 {
			e.heap.Push(e.rng.Exp(totalRate), ev{kind: evArrival})
		}
	}
}

// loop drains events until the measurement horizon ends.
func (e *engine) loop() {
	for {
		item, ok := e.heap.Pop()
		if !ok {
			break
		}
		t := item.Time
		if t > e.end {
			break
		}
		if !e.measuring && t >= e.start {
			e.beginMeasurement()
		}
		switch item.Payload.kind {
		case evArrival:
			src := e.sources[e.rng.Intn(len(e.sources))]
			e.generate(t, src)
			totalRate := e.cfg.NodeRate * float64(len(e.sources))
			e.heap.Push(t+e.rng.Exp(totalRate), ev{kind: evArrival})
		case evNodeArrival:
			idx := int(item.Payload.id)
			e.generate(t, e.sources[idx])
			e.heap.Push(t+e.rng.Exp(e.cfg.NodeRate), ev{kind: evNodeArrival, id: item.Payload.id})
		case evSlot:
			mean := e.cfg.NodeRate * e.cfg.SlotTau
			for _, src := range e.sources {
				for k := e.rng.Poisson(mean); k > 0; k-- {
					e.generate(t, src)
				}
			}
			e.heap.Push(t+e.cfg.SlotTau, ev{kind: evSlot})
		case evDeparture:
			e.fifoDepart(t, int(item.Payload.id))
		case evPSDone:
			e.psDepart(t, int(item.Payload.id), item.Payload.epoch)
		}
	}
}

// beginMeasurement resets the measurement plane at the warmup boundary.
func (e *engine) beginMeasurement() {
	e.measuring = true
	e.nInt.StartAt(e.start, e.nNow)
	e.rInt.StartAt(e.start, e.rNow)
	e.rsInt.StartAt(e.start, e.rsNow)
	for i := range e.edgeCount {
		e.edgeCount[i] = 0
	}
	e.generated = 0
	e.delivered = 0
	for i := range e.edgeOcc {
		e.edgeOcc[i].StartAt(e.start, float64(e.stationLen(i)))
	}
	e.nLast = e.start
}

// getPacket recycles or allocates a packet.
func (e *engine) getPacket() *packet {
	if n := len(e.free); n > 0 {
		p := e.free[n-1]
		e.free = e.free[:n-1]
		p.hop = 0
		p.route = p.route[:0]
		p.measured = false
		return p
	}
	return &packet{}
}

// generate creates a packet at src at time t and injects it.
func (e *engine) generate(t float64, src int) {
	p := e.getPacket()
	p.genTime = t
	p.measured = e.measuring
	dst := e.cfg.Dest.Sample(src, e.rng)
	p.route = e.cfg.Router.AppendRoute(p.route, src, dst, e.rng)
	if e.measuring {
		e.generated++
	}
	if len(p.route) == 0 {
		// Source equals destination: delivered instantly with zero delay,
		// never entering any queue (the paper allows these packets).
		e.deliver(t, p)
		return
	}
	e.bumpN(t, 1)
	e.rNow += float64(len(p.route))
	if e.cfg.Saturated != nil {
		e.rsNow += float64(e.countSaturated(p.route))
	}
	if e.measuring {
		e.rInt.Set(t, e.rNow)
		e.rsInt.Set(t, e.rsNow)
	}
	e.enqueue(t, p)
}

func (e *engine) countSaturated(route []int) int {
	count := 0
	for _, edge := range route {
		if e.cfg.Saturated[edge] {
			count++
		}
	}
	return count
}

// serviceTime samples the service requirement at edge.
func (e *engine) serviceTime(edge int) float64 {
	mean := 1.0
	if e.cfg.ServiceTime != nil {
		mean = e.cfg.ServiceTime[edge]
	}
	if e.cfg.Service == Exponential {
		return e.rng.Exp(1 / mean)
	}
	return mean
}

// enqueue places p at its current edge's station.
func (e *engine) enqueue(t float64, p *packet) {
	edge := p.route[p.hop]
	if e.measuring {
		e.edgeCount[edge]++
	}
	switch e.cfg.Discipline {
	case PS:
		st := &e.ps[edge]
		st.Arrive(t, p, e.serviceTime(edge))
		e.schedulePS(t, edge)
	case FurthestFirst:
		remaining := float64(len(p.route) - p.hop)
		if e.prio[edge].Arrive(p, remaining) {
			e.heap.Push(t+e.serviceTime(edge), ev{kind: evDeparture, id: int32(edge)})
		}
	default:
		if e.fifo[edge].Arrive(p) {
			e.heap.Push(t+e.serviceTime(edge), ev{kind: evDeparture, id: int32(edge)})
		}
	}
	e.noteOccupancy(t, edge)
}

// schedulePS pushes a fresh completion event for edge's PS station.
func (e *engine) schedulePS(t float64, edge int) {
	st := &e.ps[edge]
	if tc, ok := st.NextCompletion(t); ok {
		e.heap.Push(tc, ev{kind: evPSDone, id: int32(edge), epoch: st.Epoch()})
	}
}

// fifoDepart completes the in-service packet at edge (FIFO or priority).
func (e *engine) fifoDepart(t float64, edge int) {
	var finished *packet
	var hasNext bool
	if e.cfg.Discipline == FurthestFirst {
		finished, _, hasNext = e.prio[edge].Complete()
	} else {
		finished, _, hasNext = e.fifo[edge].Complete()
	}
	if hasNext {
		e.heap.Push(t+e.serviceTime(edge), ev{kind: evDeparture, id: int32(edge)})
	}
	e.noteOccupancy(t, edge)
	e.advance(t, finished, edge)
}

// psDepart completes the least-remaining packet at edge's PS station if the
// event is still valid.
func (e *engine) psDepart(t float64, edge int, epoch uint64) {
	st := &e.ps[edge]
	if st.Epoch() != epoch {
		return // stale event; a newer one is already scheduled
	}
	finished := st.CompleteOne(t)
	e.schedulePS(t, edge)
	e.noteOccupancy(t, edge)
	e.advance(t, finished, edge)
}

// advance moves p past its just-completed service at edge.
func (e *engine) advance(t float64, p *packet, edge int) {
	e.rNow--
	if e.cfg.Saturated != nil && e.cfg.Saturated[edge] {
		e.rsNow--
	}
	p.hop++
	done := p.hop == len(p.route)
	if done {
		e.bumpN(t, -1)
	}
	if e.measuring {
		e.rInt.Set(t, e.rNow)
		e.rsInt.Set(t, e.rsNow)
	}
	if done {
		e.deliver(t, p)
		return
	}
	e.enqueue(t, p)
}

// deliver finishes p's lifetime and records its delay if measured.
func (e *engine) deliver(t float64, p *packet) {
	if p.measured && e.measuring {
		d := t - p.genTime
		e.delay.Add(d)
		e.batches.Add(d)
		if e.delayHist != nil {
			e.delayHist.Add(d)
		}
		e.delivered++
	}
	e.free = append(e.free, p)
}

// result assembles the Result at the end of the horizon.
func (e *engine) result() Result {
	r := Result{
		Delay:     e.delay,
		MeanDelay: e.delay.Mean(),
		DelayCI:   e.batches.HalfWidth95(),
		MeanN:     e.nInt.MeanAt(e.end),
		MeanR:     e.rInt.MeanAt(e.end),
		MeanRs:    e.rsInt.MeanAt(e.end),
		Generated: e.generated,
		Delivered: e.delivered,
		Time:      e.end - e.start,
		MaxN:      e.nInt.Max(),
	}
	if r.MeanN > 0 {
		r.RPerN = r.MeanR / r.MeanN
		r.RsPerN = r.MeanRs / r.MeanN
	}
	r.EdgeRates = make([]float64, len(e.edgeCount))
	for i, c := range e.edgeCount {
		r.EdgeRates[i] = float64(c) / r.Time
	}
	if r.MeanN > 0 && r.Time > 0 {
		littleN := float64(r.Delivered) / r.Time * r.MeanDelay
		r.LittleRelErr = math.Abs(littleN-r.MeanN) / r.MeanN
	}
	if e.edgeOcc != nil {
		r.EdgeOccupancy = make([]float64, len(e.edgeOcc))
		for i := range e.edgeOcc {
			r.EdgeOccupancy[i] = e.edgeOcc[i].MeanAt(e.end)
		}
	}
	if e.nDur != nil {
		idx := int(e.nNow)
		for idx >= len(e.nDur) {
			e.nDur = append(e.nDur, 0)
		}
		e.nDur[idx] += e.end - e.nLast
		r.NDist = make([]float64, len(e.nDur))
		for i, d := range e.nDur {
			r.NDist[i] = d / r.Time
		}
	}
	r.DelayHist = e.delayHist
	return r
}

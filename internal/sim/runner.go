package sim

import (
	"context"
	"fmt"

	"repro/internal/des"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Runner executes simulation runs while reusing the engine's allocation-
// heavy state between them: the RNG, the event tree, the station arrays and
// their ring slab, the packet arena, and every per-edge lookup and counter
// table. A fresh Run performs ~34 setup allocations; a Runner's subsequent
// runs of the same network shape perform almost none, so a sweep that gives
// each worker one Runner (StreamSweep does) amortizes per-run setup to ~0.
//
// Reuse is semantically invisible: every reused structure is reset to a
// state indistinguishable from a freshly allocated one (the RNG is
// reseeded, the tree's sequence counter restarts, stations and the arena
// empty at generation zero), so Runner.Run is bit-identical to Run for any
// sequence of configurations — including sequences that change topology,
// discipline, or tracking options, which simply fall back to fresh
// allocation where shapes differ. TestRunnerMatchesRun pins this.
//
// A Runner is not safe for concurrent use; use one per goroutine.
type Runner struct {
	rng       *xrand.RNG
	tree      *des.EventTree
	fifo      []des.FIFOStation[int32]
	ps        []des.PSStation[int32]
	prio      []des.PriorityStation[int32]
	arena     arena
	batches   *stats.BatchMeans
	sources   []int
	edgeTo    []int32
	svcMean   []float64
	svcRate   []float64
	edgeCount []int64
	edgeOcc   []stats.TimeWeighted
	nDur      []float64
}

// Run executes one simulation with the same semantics and bit-identical
// results as the package-level Run, reusing the Runner's cached state.
func (r *Runner) Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	var arrivals ArrivalProcess
	if cfg.Arrivals != nil {
		if arrivals = cfg.Arrivals(); arrivals == nil {
			return Result{}, fmt.Errorf("sim: Arrivals factory returned nil")
		}
	}
	if !cfg.AllowUnstable {
		if err := cfg.checkStability(arrivals); err != nil {
			return Result{}, err
		}
	}
	if cfg.Capture || cfg.Resume != nil {
		if err := snapshotGate(cfg); err != nil {
			return Result{}, err
		}
	}
	e := r.prepare(cfg, arrivals)
	if cfg.Faults != nil && !e.fastFIFO {
		return Result{}, fmt.Errorf("sim: fault layer requires a router implementing routing.Stepper")
	}
	if cfg.Resume != nil {
		// A restore replaces source scheduling entirely: the captured
		// clock scalars, tree events and packets carry the whole pending
		// future.
		if err := e.restoreSnapshot(cfg.Resume); err != nil {
			return Result{}, err
		}
	} else {
		e.scheduleSources()
	}
	finished := e.loop()
	r.capture(e)
	if !finished {
		// Canceled mid-run: the partial measurements are not a valid
		// Result (the horizon was not reached), so only the error escapes.
		return Result{}, context.Cause(cfg.Ctx)
	}
	res := e.result()
	if cfg.Capture {
		res.Snapshot = e.snapshot()
	}
	return res, nil
}

// appendSources appends net's source nodes to buf (reusing its capacity),
// mirroring topology.Sources without the per-call allocation.
func appendSources(buf []int, net topology.Network) []int {
	if ss, ok := net.(topology.SourceSet); ok {
		return append(buf, ss.SourceNodes()...)
	}
	for i := 0; i < net.NumNodes(); i++ {
		buf = append(buf, i)
	}
	return buf
}

// growF64 returns buf resized to n, reusing its capacity (contents are
// unspecified; callers refill).
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growI32 returns buf resized to n, reusing its capacity.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// prepare assembles the per-run engine, drawing every reusable structure
// from the Runner's caches and resetting it to fresh-equivalent state.
func (r *Runner) prepare(cfg Config, arrivals ArrivalProcess) *engine {
	numEdges := cfg.Net.NumEdges()
	e := &engine{
		cfg:      cfg,
		arrivals: arrivals,
		start:    cfg.Warmup,
		end:      cfg.Warmup + cfg.Horizon,
	}
	if r.rng != nil {
		r.rng.Reseed(cfg.Seed)
		e.rng = r.rng
	} else {
		e.rng = xrand.New(cfg.Seed)
	}
	if r.sources == nil {
		// Pre-size once so the dense-node fill is a single allocation, not
		// a growth ladder (keeps the fresh-run allocation count at the
		// pre-Runner engine's level).
		r.sources = make([]int, 0, cfg.Net.NumNodes())
	}
	e.sources = appendSources(r.sources[:0], cfg.Net)
	if cap(r.edgeCount) >= numEdges {
		e.edgeCount = r.edgeCount[:numEdges]
		for i := range e.edgeCount {
			e.edgeCount[i] = 0
		}
	} else {
		e.edgeCount = make([]int64, numEdges)
	}
	slots := numEdges
	if cfg.PerNodeArrivals {
		slots += len(e.sources) // one clock slot per source, after the edges
	}
	if r.tree != nil {
		r.tree.Reset(slots)
		e.tree = r.tree
	} else {
		e.tree = des.NewEventTree(slots)
	}
	if !cfg.MaterializeRoutes {
		e.steppers, e.choose, _ = routing.Steppers(cfg.Router)
	}
	e.arena = r.arena
	if e.steppers != nil {
		e.arena.reset(false)
		e.edgeTo = growI32(r.edgeTo, numEdges)
		for ed := 0; ed < numEdges; ed++ {
			e.edgeTo[ed] = int32(cfg.Net.EdgeTo(ed))
		}
	} else {
		e.arena.reset(true)
	}
	e.fastFIFO = cfg.Discipline == FIFO && e.steppers != nil
	e.totalRate = cfg.NodeRate * float64(len(e.sources))
	if e.arrivals != nil {
		// Batch sizing and rate bookkeeping use the process's mean rate;
		// the loop never draws from totalRate on this path.
		e.totalRate = e.arrivals.Rate()
	}
	e.slotMean = cfg.NodeRate * cfg.SlotTau
	e.svcMean = growF64(r.svcMean, numEdges)
	for ed := range e.svcMean {
		e.svcMean[ed] = 1
		if cfg.ServiceTime != nil {
			e.svcMean[ed] = cfg.ServiceTime[ed]
		}
	}
	if cfg.Service == Exponential {
		e.svcRate = growF64(r.svcRate, numEdges)
		for ed := range e.svcRate {
			e.svcRate[ed] = 1 / e.svcMean[ed]
		}
	}
	switch cfg.Discipline {
	case PS:
		if len(r.ps) == numEdges {
			for i := range r.ps {
				r.ps[i].Reset()
			}
			e.ps = r.ps
		} else {
			e.ps = make([]des.PSStation[int32], numEdges)
		}
	case FurthestFirst:
		if len(r.prio) == numEdges {
			for i := range r.prio {
				r.prio[i].Reset()
			}
			e.prio = r.prio
		} else {
			e.prio = make([]des.PriorityStation[int32], numEdges)
		}
	default:
		if len(r.fifo) == numEdges {
			for i := range r.fifo {
				r.fifo[i].Reset()
			}
			e.fifo = r.fifo
		} else {
			e.fifo = make([]des.FIFOStation[int32], numEdges)
			// Carve every station's initial ring from one slab: two
			// allocations for all queues instead of a growth ladder per
			// busy edge.
			const ringCap = 16
			slab := make([]int32, numEdges*ringCap)
			for i := range e.fifo {
				e.fifo[i].InitRing(slab[i*ringCap : (i+1)*ringCap : (i+1)*ringCap])
			}
		}
	}
	batchCount := cfg.BatchCount
	if batchCount <= 0 {
		batchCount = 16
	}
	expected := e.totalRate * cfg.Horizon
	batchSize := int64(expected) / int64(batchCount)
	if batchSize < 1 {
		batchSize = 1
	}
	if r.batches != nil {
		r.batches.Reset(batchSize)
		e.batches = r.batches
	} else {
		e.batches = stats.NewBatchMeans(batchSize)
	}
	if cfg.TrackEdgeOccupancy {
		if cap(r.edgeOcc) >= numEdges {
			e.edgeOcc = r.edgeOcc[:numEdges]
			for i := range e.edgeOcc {
				e.edgeOcc[i] = stats.TimeWeighted{}
			}
		} else {
			e.edgeOcc = make([]stats.TimeWeighted, numEdges)
		}
	}
	if cfg.TrackNDist {
		if cap(r.nDur) >= 64 {
			// Reslice to the fresh length exactly: NDist's length (and so
			// the Result) must not depend on an earlier run's growth.
			e.nDur = r.nDur[:64]
			for i := range e.nDur {
				e.nDur[i] = 0
			}
		} else {
			e.nDur = make([]float64, 64)
		}
	}
	if cfg.DelayHistWidth > 0 {
		// The histogram escapes into the Result, so it is never reused.
		e.delayHist = stats.NewHistogram(cfg.DelayHistWidth, 4096)
	}
	if cfg.Faults != nil {
		// Fault state is per-run (dwell streams restart at the fault
		// seed), so it is built fresh rather than cached on the Runner;
		// degraded runs pay the setup allocations, fault-free runs none.
		e.flt = newDESFaults(cfg.Faults, e.start, e.end)
	}
	return e
}

// capture stores the engine's (possibly regrown) structures back on the
// Runner for the next run.
func (r *Runner) capture(e *engine) {
	r.rng = e.rng
	r.tree = e.tree
	r.arena = e.arena
	r.batches = e.batches
	r.sources = e.sources
	r.svcMean = e.svcMean
	r.edgeCount = e.edgeCount
	if e.fifo != nil {
		r.fifo = e.fifo
	}
	if e.ps != nil {
		r.ps = e.ps
	}
	if e.prio != nil {
		r.prio = e.prio
	}
	if e.edgeTo != nil {
		r.edgeTo = e.edgeTo
	}
	if e.svcRate != nil {
		r.svcRate = e.svcRate
	}
	if e.edgeOcc != nil {
		r.edgeOcc = e.edgeOcc
	}
	if e.nDur != nil {
		r.nDur = e.nDur
	}
}

package routing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topology"
	"repro/internal/xrand"
)

// checkAllRoutes validates every (src,dst) route produced by r on net.
func checkAllRoutes(t *testing.T, net topology.Network, r Router, srcs, dsts []int) {
	t.Helper()
	rng := xrand.New(99)
	var buf []int
	for _, s := range srcs {
		for _, d := range dsts {
			buf = r.AppendRoute(buf[:0], s, d, rng)
			if err := topology.ValidatePath(net, s, d, buf); err != nil {
				t.Fatalf("%s: route %d->%d invalid: %v", net.Name(), s, d, err)
			}
			if len(buf) > r.MaxRouteLen() {
				t.Fatalf("%s: route %d->%d has %d hops > MaxRouteLen %d",
					net.Name(), s, d, len(buf), r.MaxRouteLen())
			}
		}
	}
}

func allNodes(net topology.Network) []int {
	nodes := make([]int, net.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

func TestGreedyXYRoutesValid(t *testing.T) {
	a := topology.NewArray2D(5)
	checkAllRoutes(t, a, GreedyXY{a}, allNodes(a), allNodes(a))
}

func TestGreedyXYShape(t *testing.T) {
	// Row-first: all horizontal edges precede all vertical edges, and the
	// route length equals the L1 distance.
	a := topology.NewArray2D(6)
	g := GreedyXY{a}
	var buf []int
	for src := 0; src < a.NumNodes(); src++ {
		for dst := 0; dst < a.NumNodes(); dst++ {
			buf = g.AppendRoute(buf[:0], src, dst, nil)
			if len(buf) != a.Distance(src, dst) {
				t.Fatalf("route %d->%d length %d != distance %d", src, dst, len(buf), a.Distance(src, dst))
			}
			seenVertical := false
			for _, e := range buf {
				_, _, d := a.EdgeInfo(e)
				vertical := d == topology.Down || d == topology.Up
				if seenVertical && !vertical {
					t.Fatalf("route %d->%d has a row edge after a column edge", src, dst)
				}
				seenVertical = seenVertical || vertical
			}
		}
	}
}

func TestLayeringMonotoneAlongGreedyRoutes(t *testing.T) {
	// Lemma 2: the layer labels strictly increase along every greedy route.
	for _, n := range []int{3, 4, 7, 12} {
		a := topology.NewArray2D(n)
		g := GreedyXY{a}
		var buf []int
		for src := 0; src < a.NumNodes(); src++ {
			for dst := 0; dst < a.NumNodes(); dst++ {
				buf = g.AppendRoute(buf[:0], src, dst, nil)
				prev := 0
				for _, e := range buf {
					l := a.LayerLabel(e)
					if l <= prev {
						t.Fatalf("n=%d route %d->%d: label %d after %d", n, src, dst, l, prev)
					}
					prev = l
				}
			}
		}
	}
}

func TestMeanRouteLengthMatchesPaper(t *testing.T) {
	// Enumerating all (src,dst) pairs must give the paper's
	// n̄ = (2/3)(n - 1/n) and n̄₂ = 2n/3 (excluding src == dst pairs).
	for _, n := range []int{2, 3, 5, 10, 15} {
		a := topology.NewArray2D(n)
		total := 0
		for src := 0; src < a.NumNodes(); src++ {
			for dst := 0; dst < a.NumNodes(); dst++ {
				total += a.Distance(src, dst)
			}
		}
		nn := float64(n)
		mean := float64(total) / float64(a.NumNodes()*a.NumNodes())
		want := 2.0 / 3.0 * (nn - 1/nn)
		if math.Abs(mean-want) > 1e-9 {
			t.Errorf("n=%d: n̄ = %v, want %v", n, mean, want)
		}
		mean2 := float64(total) / float64(a.NumNodes()*a.NumNodes()-a.NumNodes())
		want2 := 2 * nn / 3
		if math.Abs(mean2-want2) > 1e-9 {
			t.Errorf("n=%d: n̄₂ = %v, want %v", n, mean2, want2)
		}
	}
}

func TestGreedyYXIsMirror(t *testing.T) {
	a := topology.NewArray2D(5)
	gx := GreedyXY{a}
	gy := GreedyYX{a}
	var bx, by []int
	for src := 0; src < a.NumNodes(); src++ {
		for dst := 0; dst < a.NumNodes(); dst++ {
			bx = gx.AppendRoute(bx[:0], src, dst, nil)
			by = gy.AppendRoute(by[:0], src, dst, nil)
			if len(bx) != len(by) {
				t.Fatalf("route lengths differ for %d->%d", src, dst)
			}
			if err := topology.ValidatePath(a, src, dst, by); err != nil {
				t.Fatalf("YX route invalid: %v", err)
			}
			// Column-first: vertical edges precede horizontal ones.
			seenHoriz := false
			for _, e := range by {
				_, _, d := a.EdgeInfo(e)
				horiz := d == topology.Right || d == topology.Left
				if seenHoriz && !horiz {
					t.Fatalf("YX route %d->%d has a column edge after a row edge", src, dst)
				}
				seenHoriz = seenHoriz || horiz
			}
		}
	}
}

func TestRandGreedyMixes(t *testing.T) {
	a := topology.NewArray2D(5)
	g := RandGreedy{a}
	rng := xrand.New(3)
	src, dst := a.Node(0, 0), a.Node(3, 3)
	rowFirst, colFirst := 0, 0
	var buf []int
	for i := 0; i < 1000; i++ {
		buf = g.AppendRoute(buf[:0], src, dst, rng)
		if err := topology.ValidatePath(a, src, dst, buf); err != nil {
			t.Fatal(err)
		}
		_, _, d := a.EdgeInfo(buf[0])
		if d == topology.Right || d == topology.Left {
			rowFirst++
		} else {
			colFirst++
		}
	}
	if rowFirst < 400 || colFirst < 400 {
		t.Errorf("coin flip unbalanced: %d row-first, %d col-first", rowFirst, colFirst)
	}
}

func TestGreedyKDMatchesGreedyXY(t *testing.T) {
	// On a 2-D array, dimension-order greedy with dim 0 = row must visit the
	// same nodes as... note GreedyKD corrects dim 0 (rows) first, which is
	// the column-first (YX) policy on Array2D; lengths must match L1.
	n := 4
	ak := topology.NewArrayKD(n, n)
	g := GreedyKD{ak}
	var buf []int
	for src := 0; src < ak.NumNodes(); src++ {
		for dst := 0; dst < ak.NumNodes(); dst++ {
			buf = g.AppendRoute(buf[:0], src, dst, nil)
			if err := topology.ValidatePath(ak, src, dst, buf); err != nil {
				t.Fatalf("route %d->%d invalid: %v", src, dst, err)
			}
			if len(buf) != ak.Distance(src, dst) {
				t.Fatalf("route %d->%d not shortest", src, dst)
			}
		}
	}
}

func TestGreedyKD3D(t *testing.T) {
	ak := topology.NewArrayKD(3, 4, 2)
	checkAllRoutes(t, ak, GreedyKD{ak}, allNodes(ak), allNodes(ak))
}

func TestTorusGreedyShortestWay(t *testing.T) {
	for _, n := range []int{4, 5} {
		tor := topology.NewTorus2D(n)
		g := TorusGreedy{tor}
		var buf []int
		for src := 0; src < tor.NumNodes(); src++ {
			for dst := 0; dst < tor.NumNodes(); dst++ {
				buf = g.AppendRoute(buf[:0], src, dst, nil)
				if err := topology.ValidatePath(tor, src, dst, buf); err != nil {
					t.Fatalf("n=%d route %d->%d invalid: %v", n, src, dst, err)
				}
				r1, c1 := tor.Coords(src)
				r2, c2 := tor.Coords(dst)
				hp, hm := topology.WrapDist(c1, c2, n)
				vp, vm := topology.WrapDist(r1, r2, n)
				want := min(hp, hm) + min(vp, vm)
				if len(buf) != want {
					t.Fatalf("n=%d route %d->%d length %d, want %d", n, src, dst, len(buf), want)
				}
			}
		}
	}
}

func TestTorusGreedyTieGoesPlus(t *testing.T) {
	tor := topology.NewTorus2D(4)
	g := TorusGreedy{tor}
	// Distance 2 both ways around a 4-ring: must go right (plus).
	buf := g.AppendRoute(nil, tor.Node(0, 0), tor.Node(0, 2), nil)
	if len(buf) != 2 {
		t.Fatalf("route length %d", len(buf))
	}
	_, _, d := tor.EdgeInfo(buf[0])
	if d != topology.Right {
		t.Errorf("tie broke %v, want right", d)
	}
}

func TestCubeGreedyCanonicalOrder(t *testing.T) {
	h := topology.NewHypercube(5)
	g := CubeGreedy{h}
	var buf []int
	rng := xrand.New(1)
	for trial := 0; trial < 2000; trial++ {
		src := rng.Intn(h.NumNodes())
		dst := rng.Intn(h.NumNodes())
		buf = g.AppendRoute(buf[:0], src, dst, nil)
		if err := topology.ValidatePath(h, src, dst, buf); err != nil {
			t.Fatal(err)
		}
		if len(buf) != h.Distance(src, dst) {
			t.Fatalf("route %d->%d not shortest", src, dst)
		}
		prevDim := -1
		for _, e := range buf {
			_, dim := h.EdgeInfo(e)
			if dim <= prevDim {
				t.Fatalf("dimensions not in canonical order: %d after %d", dim, prevDim)
			}
			prevDim = dim
		}
	}
}

func TestButterflyRoute(t *testing.T) {
	b := topology.NewButterfly(4)
	g := ButterflyRoute{b}
	var buf []int
	for _, src := range b.SourceNodes() {
		for _, dst := range b.OutputNodes() {
			buf = g.AppendRoute(buf[:0], src, dst, nil)
			if len(buf) != b.D() {
				t.Fatalf("route %d->%d has %d hops, want %d", src, dst, len(buf), b.D())
			}
			if err := topology.ValidatePath(b, src, dst, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestButterflyRoutePanicsOnBadEndpoints(t *testing.T) {
	b := topology.NewButterfly(3)
	g := ButterflyRoute{b}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-level-0 source")
		}
	}()
	g.AppendRoute(nil, b.Node(1, 0), b.Node(3, 0), nil)
}

func TestMarkovLinearWalkUniform(t *testing.T) {
	// Lemma 3: the stopping position is uniform for every entry point.
	rng := xrand.New(7)
	const n = 8
	const draws = 40000
	for k := 0; k < n; k++ {
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[MarkovLinearWalk(n, k, rng)]++
		}
		want := float64(draws) / n
		for j, c := range counts {
			if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
				t.Errorf("start %d: position %d count %d, want ~%.0f", k, j, c, want)
			}
		}
	}
}

func TestMarkovArrayDestUniform(t *testing.T) {
	a := topology.NewArray2D(4)
	m := MarkovArrayDest{a}
	rng := xrand.New(8)
	counts := make([]int, a.NumNodes())
	const draws = 160000
	src := a.Node(1, 2)
	for i := 0; i < draws; i++ {
		counts[m.Sample(src, rng)]++
	}
	want := float64(draws) / float64(a.NumNodes())
	for node, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("node %d: count %d, want ~%.0f", node, c, want)
		}
	}
}

func TestGeometricStopWalkBiasedNear(t *testing.T) {
	rng := xrand.New(9)
	const n = 16
	const draws = 50000
	counts := make([]int, n)
	k := 8
	for i := 0; i < draws; i++ {
		counts[GeometricStopWalk(n, k, rng)]++
	}
	if counts[k] < counts[k-3] || counts[k] < counts[k+3] {
		t.Errorf("geometric walk not biased toward start: %v", counts)
	}
	// Still reaches both boundaries occasionally.
	if counts[0] == 0 || counts[n-1] == 0 {
		t.Errorf("boundaries unreachable: %v", counts)
	}
}

func TestGeometricAxisDistMatchesWalk(t *testing.T) {
	rng := xrand.New(21)
	for _, n := range []int{2, 3, 8, 9} {
		for k := 0; k < n; k++ {
			want := GeometricAxisDist(n, k)
			sum := 0.0
			for _, p := range want {
				sum += p
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("n=%d k=%d: distribution sums to %v", n, k, sum)
			}
			const draws = 20000
			counts := make([]int, n)
			for i := 0; i < draws; i++ {
				counts[GeometricStopWalk(n, k, rng)]++
			}
			for j := range counts {
				got := float64(counts[j]) / draws
				tol := 5*math.Sqrt(want[j]*(1-want[j])/draws) + 1e-4
				if math.Abs(got-want[j]) > tol {
					t.Errorf("n=%d k=%d pos=%d: empirical %v, exact %v", n, k, j, got, want[j])
				}
			}
		}
	}
}

func TestGeometricStopWalkRange(t *testing.T) {
	rng := xrand.New(10)
	f := func(rawN, rawK uint8) bool {
		n := int(rawN%20) + 2
		k := int(rawK) % n
		pos := GeometricStopWalk(n, k, rng)
		return pos >= 0 && pos < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBernoulliCubeDestDistance(t *testing.T) {
	h := topology.NewHypercube(10)
	rng := xrand.New(11)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		d := BernoulliCubeDest{h, p}
		const draws = 30000
		sum := 0
		for i := 0; i < draws; i++ {
			sum += h.Distance(3, d.Sample(3, rng))
		}
		mean := float64(sum) / draws
		want := p * float64(h.D())
		if math.Abs(mean-want) > 0.05*float64(h.D()) {
			t.Errorf("p=%v: mean distance %v, want %v", p, mean, want)
		}
	}
}

func TestUniformDestCoversAllNodes(t *testing.T) {
	u := UniformDest{NumNodes: 9}
	rng := xrand.New(12)
	seen := make([]bool, 9)
	for i := 0; i < 1000; i++ {
		seen[u.Sample(0, rng)] = true
	}
	for node, ok := range seen {
		if !ok {
			t.Errorf("node %d never sampled", node)
		}
	}
}

func TestFixedDest(t *testing.T) {
	f := FixedDest{Node: 5}
	if f.Sample(0, nil) != 5 {
		t.Error("FixedDest wrong")
	}
}

func TestButterflyUniformDest(t *testing.T) {
	b := topology.NewButterfly(3)
	d := ButterflyUniformDest{b}
	rng := xrand.New(13)
	for i := 0; i < 100; i++ {
		node := d.Sample(b.Node(0, 0), rng)
		if l, _ := b.NodeInfo(node); l != b.D() {
			t.Fatalf("destination %d not at last level", node)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

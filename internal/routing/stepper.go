package routing

import (
	"math/bits"

	"repro/internal/topology"
	"repro/internal/xrand"
)

// Stepper is the incremental form of a deterministic Router. Greedy routes
// on array-like networks are fully determined by the (current node,
// destination) pair, so a packet does not need to carry a materialized edge
// slice: the simulator stores only (cur, dst) and asks for one edge at a
// time. AppendRoute remains the reference implementation; the two must agree
// edge for edge (asserted by TestStepperMatchesAppendRoute).
//
// Implementations must be safe for concurrent use: NextEdge and
// RemainingHops are pure functions of their arguments.
type Stepper interface {
	// NextEdge returns the next edge of the route from cur to dst, or
	// done = true when cur == dst (no edge).
	NextEdge(cur, dst int) (edge int, done bool)
	// RemainingHops returns the number of edges left on the route from cur
	// to dst; zero exactly when cur == dst.
	RemainingHops(cur, dst int) int
}

// ChoiceRouter is implemented by randomized routers whose per-packet
// randomness collapses to a single generation-time choice among a fixed set
// of deterministic steppers (e.g. RandGreedy's row-first/column-first coin).
// The simulator draws Choose once per packet and stores the index.
type ChoiceRouter interface {
	// Steppers returns the deterministic steppers a packet may follow.
	Steppers() []Stepper
	// Choose samples the stepper index for one packet. It must consume
	// exactly the same rng variates AppendRoute would, so that seeded runs
	// are identical between the incremental and materialized paths.
	Choose(rng *xrand.RNG) int
}

// Steppers returns the incremental steppers for r and a per-packet choice
// function, or ok = false when r supports only AppendRoute. For
// deterministic routers choose is nil and the single stepper applies to
// every packet.
func Steppers(r Router) (steppers []Stepper, choose func(*xrand.RNG) int, ok bool) {
	if cr, isChoice := r.(ChoiceRouter); isChoice {
		return cr.Steppers(), cr.Choose, true
	}
	if s, isStepper := r.(Stepper); isStepper {
		return []Stepper{s}, nil, true
	}
	return nil, nil, false
}

// NextEdge implements Stepper: row edges while the column is wrong, then
// column edges.
func (g GreedyXY) NextEdge(cur, dst int) (int, bool) {
	r1, c1 := g.A.Coords(cur)
	r2, c2 := g.A.Coords(dst)
	return arrayStep(g.A, r1, c1, r2, c2, true)
}

// RemainingHops implements Stepper.
func (g GreedyXY) RemainingHops(cur, dst int) int { return g.A.Distance(cur, dst) }

// NextEdge implements Stepper: column edges while the row is wrong, then row
// edges.
func (g GreedyYX) NextEdge(cur, dst int) (int, bool) {
	r1, c1 := g.A.Coords(cur)
	r2, c2 := g.A.Coords(dst)
	return arrayStep(g.A, r1, c1, r2, c2, false)
}

// RemainingHops implements Stepper.
func (g GreedyYX) RemainingHops(cur, dst int) int { return g.A.Distance(cur, dst) }

// arrayStep picks the next greedy edge on an array; rowFirst selects which
// coordinate is corrected first.
func arrayStep(a *topology.Array2D, r1, c1, r2, c2 int, rowFirst bool) (int, bool) {
	if rowFirst && c1 != c2 {
		return horizontalEdge(a, r1, c1, c2), false
	}
	if r1 != r2 {
		return verticalEdge(a, c1, r1, r2), false
	}
	if c1 != c2 {
		return horizontalEdge(a, r1, c1, c2), false
	}
	return 0, true
}

func horizontalEdge(a *topology.Array2D, r, c1, c2 int) int {
	d := topology.Right
	if c1 > c2 {
		d = topology.Left
	}
	e, _ := a.EdgeIn(r, c1, d)
	return e
}

func verticalEdge(a *topology.Array2D, c, r1, r2 int) int {
	d := topology.Down
	if r1 > r2 {
		d = topology.Up
	}
	e, _ := a.EdgeIn(r1, c, d)
	return e
}

// Steppers implements ChoiceRouter: index 0 is row-first, index 1 is
// column-first, matching the branch order of AppendRoute.
func (g RandGreedy) Steppers() []Stepper {
	return []Stepper{GreedyXY{A: g.A}, GreedyYX{A: g.A}}
}

// Choose implements ChoiceRouter with the same fair coin AppendRoute flips.
func (g RandGreedy) Choose(rng *xrand.RNG) int {
	if rng.Bernoulli(0.5) {
		return 0
	}
	return 1
}

// NextEdge implements Stepper.
func (g LinearRoute) NextEdge(cur, dst int) (int, bool) {
	switch {
	case cur < dst:
		return g.L.EdgeRight(cur), false
	case cur > dst:
		return g.L.EdgeLeft(cur), false
	default:
		return 0, true
	}
}

// RemainingHops implements Stepper.
func (g LinearRoute) RemainingHops(cur, dst int) int { return abs(cur - dst) }

// NextEdge implements Stepper: correct the lowest-index wrong dimension,
// matching AppendRoute's dimension order.
func (g GreedyKD) NextEdge(cur, dst int) (int, bool) {
	a := g.A
	for m := 0; m < a.K(); m++ {
		cs, cd := a.Coord(cur, m), a.Coord(dst, m)
		if cs == cd {
			continue
		}
		e, _ := a.EdgeStep(cur, m, cs < cd)
		return e, false
	}
	return 0, true
}

// RemainingHops implements Stepper.
func (g GreedyKD) RemainingHops(cur, dst int) int { return g.A.Distance(cur, dst) }

// NextEdge implements Stepper: around the column ring the shorter way (ties
// to plus), then the row ring, matching AppendRoute. The shorter way never
// changes mid-route: each step strictly shrinks the chosen direction's
// distance, so the incremental decision is stable.
func (g TorusGreedy) NextEdge(cur, dst int) (int, bool) {
	t := g.T
	n := t.N()
	r1, c1 := t.Coords(cur)
	r2, c2 := t.Coords(dst)
	if c1 != c2 {
		plus, minus := topology.WrapDist(c1, c2, n)
		if plus <= minus {
			return t.EdgeIn(r1, c1, topology.Right), false
		}
		return t.EdgeIn(r1, c1, topology.Left), false
	}
	if r1 != r2 {
		plus, minus := topology.WrapDist(r1, r2, n)
		if plus <= minus {
			return t.EdgeIn(r1, c1, topology.Down), false
		}
		return t.EdgeIn(r1, c1, topology.Up), false
	}
	return 0, true
}

// RemainingHops implements Stepper.
func (g TorusGreedy) RemainingHops(cur, dst int) int {
	t := g.T
	n := t.N()
	r1, c1 := t.Coords(cur)
	r2, c2 := t.Coords(dst)
	cp, cm := topology.WrapDist(c1, c2, n)
	rp, rm := topology.WrapDist(r1, r2, n)
	return min(cp, cm) + min(rp, rm)
}

// NextEdge implements Stepper: fix the lowest differing address bit, the
// canonical order of AppendRoute.
func (g CubeGreedy) NextEdge(cur, dst int) (int, bool) {
	diff := cur ^ dst
	if diff == 0 {
		return 0, true
	}
	return g.H.EdgeIn(cur, bits.TrailingZeros64(uint64(diff))), false
}

// RemainingHops implements Stepper.
func (g CubeGreedy) RemainingHops(cur, dst int) int {
	return bits.OnesCount64(uint64(cur ^ dst))
}

// NextEdge implements Stepper: at level l take the cross edge exactly when
// the current and destination rows differ in bit l. Unlike AppendRoute this
// accepts any intermediate node, not just level-0 sources.
func (g ButterflyRoute) NextEdge(cur, dst int) (int, bool) {
	b := g.B
	level, row := b.NodeInfo(cur)
	if level == b.D() {
		return 0, true
	}
	_, drow := b.NodeInfo(dst)
	cross := (row^drow)&(1<<level) != 0
	return b.EdgeIn(level, row, cross), false
}

// RemainingHops implements Stepper.
func (g ButterflyRoute) RemainingHops(cur, dst int) int {
	level, _ := g.B.NodeInfo(cur)
	return g.B.D() - level
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

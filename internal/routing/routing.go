// Package routing implements the paper's routing disciplines and destination
// distributions. A Router turns a (source, destination) pair into the
// sequence of directed-edge ids the packet will traverse; a DestSampler
// draws a packet's destination.
//
// The central policy is greedy routing on the array (§1.1): a packet first
// moves along its source row to the correct column, then along that column
// to the correct row. Also provided: the randomized row/column-first variant
// (§6), dimension-order greedy for k-dimensional arrays (§5.2), greedy
// shortest-way routing on the torus (§6), canonical-order bit fixing on the
// hypercube (§4.5), and butterfly routing (§4.5).
package routing

import (
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Router generates routes on some fixed network. Implementations must be
// safe for concurrent use by multiple goroutines as long as each goroutine
// passes its own RNG.
type Router interface {
	// AppendRoute appends the directed-edge ids of the path from src to dst
	// onto buf and returns the extended slice. An empty route means
	// src == dst. Deterministic routers ignore rng.
	AppendRoute(buf []int, src, dst int, rng *xrand.RNG) []int
	// MaxRouteLen returns an upper bound on the number of edges in any
	// route, used to preallocate buffers and as the paper's d (Theorem 10).
	MaxRouteLen() int
}

// DestSampler draws packet destinations. Implementations must be safe for
// concurrent use provided each goroutine passes its own RNG.
type DestSampler interface {
	// Sample returns the destination node for a packet generated at src.
	Sample(src int, rng *xrand.RNG) int
}

// UniformDest samples destinations uniformly over [0, NumNodes); this is the
// paper's standard model, where a destination may equal the source.
type UniformDest struct {
	// NumNodes is the size of the node id space.
	NumNodes int
}

// Sample implements DestSampler.
func (u UniformDest) Sample(_ int, rng *xrand.RNG) int { return rng.Intn(u.NumNodes) }

// FixedDest always returns the same destination; used in tests and for
// worst-case single-flow experiments.
type FixedDest struct {
	// Node is the destination returned for every packet.
	Node int
}

// Sample implements DestSampler.
func (f FixedDest) Sample(int, *xrand.RNG) int { return f.Node }

// GreedyXY routes on an Array2D: row edges to the correct column, then
// column edges to the correct row (the paper's greedy algorithm).
type GreedyXY struct {
	A *topology.Array2D
}

// AppendRoute implements Router.
func (g GreedyXY) AppendRoute(buf []int, src, dst int, _ *xrand.RNG) []int {
	return appendRowFirst(buf, g.A, src, dst)
}

// MaxRouteLen implements Router.
func (g GreedyXY) MaxRouteLen() int { return 2 * (g.A.N() - 1) }

// GreedyYX routes column-first: column edges to the correct row, then row
// edges. It is the mirror policy used by the randomized variant.
type GreedyYX struct {
	A *topology.Array2D
}

// AppendRoute implements Router.
func (g GreedyYX) AppendRoute(buf []int, src, dst int, _ *xrand.RNG) []int {
	return appendColFirst(buf, g.A, src, dst)
}

// MaxRouteLen implements Router.
func (g GreedyYX) MaxRouteLen() int { return 2 * (g.A.N() - 1) }

// RandGreedy is §6's randomized greedy: each packet flips a fair coin to
// route row-first or column-first. It is not Markovian in the paper's sense,
// so the upper bound of Theorem 5 does not apply; Theorem 10's lower bound
// does. Simulations (paper and ours) show it slightly worse than GreedyXY.
type RandGreedy struct {
	A *topology.Array2D
}

// AppendRoute implements Router.
func (g RandGreedy) AppendRoute(buf []int, src, dst int, rng *xrand.RNG) []int {
	if rng.Bernoulli(0.5) {
		return appendRowFirst(buf, g.A, src, dst)
	}
	return appendColFirst(buf, g.A, src, dst)
}

// MaxRouteLen implements Router.
func (g RandGreedy) MaxRouteLen() int { return 2 * (g.A.N() - 1) }

func appendRowFirst(buf []int, a *topology.Array2D, src, dst int) []int {
	r1, c1 := a.Coords(src)
	r2, c2 := a.Coords(dst)
	buf = appendRowWalk(buf, a, r1, c1, c2)
	return appendColWalk(buf, a, c2, r1, r2)
}

func appendColFirst(buf []int, a *topology.Array2D, src, dst int) []int {
	r1, c1 := a.Coords(src)
	r2, c2 := a.Coords(dst)
	buf = appendColWalk(buf, a, c1, r1, r2)
	return appendRowWalk(buf, a, r2, c1, c2)
}

// appendRowWalk appends the horizontal edges moving along row r from column
// c1 to column c2.
func appendRowWalk(buf []int, a *topology.Array2D, r, c1, c2 int) []int {
	for c := c1; c < c2; c++ {
		e, _ := a.EdgeIn(r, c, topology.Right)
		buf = append(buf, e)
	}
	for c := c1; c > c2; c-- {
		e, _ := a.EdgeIn(r, c, topology.Left)
		buf = append(buf, e)
	}
	return buf
}

// appendColWalk appends the vertical edges moving along column c from row r1
// to row r2.
func appendColWalk(buf []int, a *topology.Array2D, c, r1, r2 int) []int {
	for r := r1; r < r2; r++ {
		e, _ := a.EdgeIn(r, c, topology.Down)
		buf = append(buf, e)
	}
	for r := r1; r > r2; r-- {
		e, _ := a.EdgeIn(r, c, topology.Up)
		buf = append(buf, e)
	}
	return buf
}

// LinearRoute routes on a Linear array: straight toward the destination.
// With entry restricted to node 0 and a fixed destination at node n-1 this
// is the tandem line of §4.4, where Theorem 10's copy-network bound is
// essentially tight.
type LinearRoute struct {
	L *topology.Linear
}

// AppendRoute implements Router.
func (g LinearRoute) AppendRoute(buf []int, src, dst int, _ *xrand.RNG) []int {
	for i := src; i < dst; i++ {
		buf = append(buf, g.L.EdgeRight(i))
	}
	for i := src; i > dst; i-- {
		buf = append(buf, g.L.EdgeLeft(i))
	}
	return buf
}

// MaxRouteLen implements Router.
func (g LinearRoute) MaxRouteLen() int { return g.L.N() - 1 }

// GreedyKD is dimension-order greedy routing on a k-dimensional array:
// correct dimension 0 first, then dimension 1, and so on (§5.2).
type GreedyKD struct {
	A *topology.ArrayKD
}

// AppendRoute implements Router.
func (g GreedyKD) AppendRoute(buf []int, src, dst int, _ *xrand.RNG) []int {
	a := g.A
	cur := src
	for m := 0; m < a.K(); m++ {
		stride := 1
		for j := m + 1; j < a.K(); j++ {
			stride *= a.Size(j)
		}
		cs := cur / stride % a.Size(m)
		cd := dst / stride % a.Size(m)
		for cs < cd {
			e, _ := a.EdgeStep(cur, m, true)
			buf = append(buf, e)
			cur = a.EdgeTo(e)
			cs++
		}
		for cs > cd {
			e, _ := a.EdgeStep(cur, m, false)
			buf = append(buf, e)
			cur = a.EdgeTo(e)
			cs--
		}
	}
	return buf
}

// MaxRouteLen implements Router.
func (g GreedyKD) MaxRouteLen() int {
	total := 0
	for m := 0; m < g.A.K(); m++ {
		total += g.A.Size(m) - 1
	}
	return total
}

// TorusGreedy routes on a Torus2D row-first, going around each ring the
// shorter way; ties (possible only for even n) go in the plus direction
// (right/down), which is what makes even-n torus edge rates direction-
// asymmetric.
type TorusGreedy struct {
	T *topology.Torus2D
}

// AppendRoute implements Router.
func (g TorusGreedy) AppendRoute(buf []int, src, dst int, _ *xrand.RNG) []int {
	t := g.T
	n := t.N()
	r1, c1 := t.Coords(src)
	r2, c2 := t.Coords(dst)
	buf = appendRingWalk(buf, t, n, r1, c1, c2, true)
	return appendRingWalk(buf, t, n, c2, r1, r2, false)
}

// appendRingWalk appends edges moving around one ring from position p1 to
// p2. horiz selects row movement (fixed row = fixedCoord) versus column
// movement (fixed col = fixedCoord).
func appendRingWalk(buf []int, t *topology.Torus2D, n, fixedCoord, p1, p2 int, horiz bool) []int {
	plus, minus := topology.WrapDist(p1, p2, n)
	dirPlus, dirMinus := topology.Down, topology.Up
	if horiz {
		dirPlus, dirMinus = topology.Right, topology.Left
	}
	cur := p1
	if plus <= minus { // tie goes plus
		for i := 0; i < plus; i++ {
			buf = appendTorusStep(buf, t, fixedCoord, cur, dirPlus, horiz)
			cur = (cur + 1) % n
		}
	} else {
		for i := 0; i < minus; i++ {
			buf = appendTorusStep(buf, t, fixedCoord, cur, dirMinus, horiz)
			cur = (cur + n - 1) % n
		}
	}
	return buf
}

func appendTorusStep(buf []int, t *topology.Torus2D, fixedCoord, cur int, d topology.Dir, horiz bool) []int {
	if horiz {
		return append(buf, t.EdgeIn(fixedCoord, cur, d))
	}
	return append(buf, t.EdgeIn(cur, fixedCoord, d))
}

// MaxRouteLen implements Router.
func (g TorusGreedy) MaxRouteLen() int { return 2 * (g.T.N() / 2) }

// CubeGreedy fixes hypercube address bits in canonical order 0..d-1 (§4.5).
type CubeGreedy struct {
	H *topology.Hypercube
}

// AppendRoute implements Router.
func (g CubeGreedy) AppendRoute(buf []int, src, dst int, _ *xrand.RNG) []int {
	h := g.H
	cur := src
	diff := src ^ dst
	for dim := 0; diff != 0; dim++ {
		if diff&1 != 0 {
			e := h.EdgeIn(cur, dim)
			buf = append(buf, e)
			cur ^= 1 << dim
		}
		diff >>= 1
	}
	return buf
}

// MaxRouteLen implements Router.
func (g CubeGreedy) MaxRouteLen() int { return g.H.D() }

// ButterflyRoute routes from a level-0 node to a level-d node: at level l it
// takes the cross edge exactly when the current row and the destination row
// differ in bit l. Every route has exactly d edges.
type ButterflyRoute struct {
	B *topology.Butterfly
}

// AppendRoute implements Router.
func (g ButterflyRoute) AppendRoute(buf []int, src, dst int, _ *xrand.RNG) []int {
	b := g.B
	level, row := b.NodeInfo(src)
	if level != 0 {
		panic("routing: butterfly source must be at level 0")
	}
	dl, drow := b.NodeInfo(dst)
	if dl != b.D() {
		panic("routing: butterfly destination must be at the last level")
	}
	for l := 0; l < b.D(); l++ {
		cross := (row^drow)&(1<<l) != 0
		buf = append(buf, b.EdgeIn(l, row, cross))
		if cross {
			row ^= 1 << l
		}
	}
	return buf
}

// MaxRouteLen implements Router.
func (g ButterflyRoute) MaxRouteLen() int { return g.B.D() }

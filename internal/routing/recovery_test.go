package routing

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/topology"
)

// recoverFixture binds an empty-but-enabled fault plan against a 4x4 array
// just for its CSR out-edge adjacency, and returns everything Recover
// needs.
func recoverFixture(t *testing.T) (*topology.Array2D, Stepper, *fault.Plan) {
	t.Helper()
	net := topology.NewArray2D(4)
	spec := &fault.Spec{LinkMTBF: 1e12, LinkMTTR: 1, Seed: 1}
	plan, err := spec.Bind(net)
	if err != nil {
		t.Fatal(err)
	}
	steppers, choose, ok := Steppers(GreedyXY{A: net})
	if !ok || choose != nil || len(steppers) != 1 {
		t.Fatal("GreedyXY is not a single deterministic stepper")
	}
	return net, steppers[0], plan
}

func TestRecoverPrimary(t *testing.T) {
	net, st, plan := recoverFixture(t)
	allUp := func(int32) bool { return true }
	edgeTo := func(e int32) int32 { return plan.To[e] }
	cur, dst := net.Node(0, 0), net.Node(3, 3)
	lo, hi := plan.OutEdgeRange(int32(cur))
	edge, out := Recover(st, cur, dst, plan.OutEdges[lo:hi], edgeTo, allUp)
	if out != Primary {
		t.Fatalf("all edges up gave outcome %v, want Primary", out)
	}
	greedy, done := st.NextEdge(cur, dst)
	if done || int32(greedy) != edge {
		t.Fatalf("Primary edge %d != greedy edge %d", edge, greedy)
	}
}

func TestRecoverDetour(t *testing.T) {
	net, st, plan := recoverFixture(t)
	cur, dst := net.Node(0, 0), net.Node(3, 3)
	greedy, _ := st.NextEdge(cur, dst)
	blockGreedy := func(e int32) bool { return e != int32(greedy) }
	edgeTo := func(e int32) int32 { return plan.To[e] }
	lo, hi := plan.OutEdgeRange(int32(cur))
	edge, out := Recover(st, cur, dst, plan.OutEdges[lo:hi], edgeTo, blockGreedy)
	if out != Detour {
		t.Fatalf("blocked greedy edge gave outcome %v, want Detour", out)
	}
	if edge == int32(greedy) || edge < 0 {
		t.Fatalf("detour picked edge %d", edge)
	}
	// Strict monotonicity: the detour must reduce distance by exactly one.
	rem := st.RemainingHops(cur, dst)
	if got := st.RemainingHops(int(plan.To[edge]), dst); got != rem-1 {
		t.Fatalf("detour head at distance %d, want %d", got, rem-1)
	}
}

func TestRecoverDeadEnd(t *testing.T) {
	net, st, plan := recoverFixture(t)
	// Interior node with every improving neighbor blocked: only edges
	// moving away from dst stay usable.
	cur, dst := net.Node(1, 1), net.Node(3, 3)
	rem := st.RemainingHops(cur, dst)
	edgeTo := func(e int32) int32 { return plan.To[e] }
	worseOnly := func(e int32) bool {
		return st.RemainingHops(int(plan.To[e]), dst) >= rem
	}
	lo, hi := plan.OutEdgeRange(int32(cur))
	edge, out := Recover(st, cur, dst, plan.OutEdges[lo:hi], edgeTo, worseOnly)
	if out != DeadEnd || edge != -1 {
		t.Fatalf("got (%d, %v), want (-1, DeadEnd)", edge, out)
	}
}

package routing

// Greedy-with-recovery. On a degraded network the greedy next hop can be
// down; the recovery policy detours via any live out-edge that still makes
// progress (on the 2-D array that is exactly the alternate dimension
// order), and when no live improving neighbor exists the packet hits a
// dead end and is dropped. Recovery is strictly monotone — a detour edge
// must strictly reduce RemainingHops — so recovered routes cannot cycle:
// every hop decreases the distance to the destination by one, exactly as
// the fault-free greedy route does, just possibly along the other
// dimension first.
//
// Both engines call Recover with a usability closure (edge up, endpoints
// up) and a CSR adjacency from the bound fault.Plan. Determinism: the scan
// visits out-edges ascending by edge id, so the detour choice is a pure
// function of (position, destination, usability state) — independent of
// engine, tile grouping, and iteration order.

// Outcome classifies one routing decision on a degraded network.
type Outcome uint8

const (
	// Primary: the greedy stepper's edge was usable and taken.
	Primary Outcome = iota
	// Detour: the greedy edge was blocked; an alternate live improving
	// edge was taken instead.
	Detour
	// DeadEnd: no live out-edge improves on the current position; the
	// packet is dropped (the DEAD_END/DROP outcome of the Result
	// counters).
	DeadEnd
)

// Recover picks the outgoing edge for a packet at cur bound for dst under
// the usability predicate. step is the fault-free greedy stepper;
// outEdges is cur's CSR out-edge run (ascending edge ids) from the bound
// fault plan; edgeTo maps edge id to head node. It returns the chosen
// edge and the outcome; edge is -1 exactly when the outcome is DeadEnd.
// cur == dst must be handled by the caller (a delivered packet never
// routes).
func Recover(step Stepper, cur, dst int, outEdges []int32, edgeTo func(e int32) int32, usable func(e int32) bool) (int32, Outcome) {
	edge, done := step.NextEdge(cur, dst)
	if done {
		panic("routing: Recover called with cur == dst")
	}
	if usable(int32(edge)) {
		return int32(edge), Primary
	}
	// The greedy edge is blocked: scan cur's out-edges ascending for a
	// usable strictly improving alternative. RemainingHops(cur) is one
	// more than the best neighbor's, so "strictly improving" means
	// RemainingHops(head) < RemainingHops(cur).
	rem := step.RemainingHops(cur, dst)
	for _, e := range outEdges {
		if e == int32(edge) || !usable(e) {
			continue
		}
		if step.RemainingHops(int(edgeTo(e)), dst) < rem {
			return e, Detour
		}
	}
	return -1, DeadEnd
}

package routing

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/xrand"
)

// walkStepper follows s from src to dst, checking RemainingHops at every
// intermediate node, and returns the edge sequence.
func walkStepper(t *testing.T, net topology.Network, s Stepper, src, dst int) []int {
	t.Helper()
	var route []int
	cur := src
	for {
		rem := s.RemainingHops(cur, dst)
		edge, done := s.NextEdge(cur, dst)
		if done {
			if rem != 0 {
				t.Fatalf("%s: RemainingHops(%d,%d) = %d at a done node", net.Name(), cur, dst, rem)
			}
			if cur != dst {
				t.Fatalf("%s: walk from %d ended at %d, want %d", net.Name(), src, cur, dst)
			}
			return route
		}
		if rem <= 0 {
			t.Fatalf("%s: RemainingHops(%d,%d) = %d but NextEdge not done", net.Name(), cur, dst, rem)
		}
		next := net.EdgeTo(edge)
		if net.EdgeFrom(edge) != cur {
			t.Fatalf("%s: edge %d leaves %d, walker is at %d", net.Name(), edge, net.EdgeFrom(edge), cur)
		}
		if got := s.RemainingHops(next, dst); got != rem-1 {
			t.Fatalf("%s: RemainingHops %d -> %d across one edge (at node %d)", net.Name(), rem, got, cur)
		}
		route = append(route, edge)
		cur = next
		if len(route) > 10*net.NumEdges()+16 {
			t.Fatalf("%s: walk from %d to %d does not terminate", net.Name(), src, dst)
		}
	}
}

func equalRoutes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStepperMatchesAppendRoute is the cross-check oracle of the
// incremental routing layer: for every deterministic router on every
// topology, the Stepper walk must reproduce AppendRoute's edge sequence
// exactly, for random (src, dst) pairs and for all-pairs on small sizes.
func TestStepperMatchesAppendRoute(t *testing.T) {
	a5 := topology.NewArray2D(5)
	a6 := topology.NewArray2D(6)
	lin := topology.NewLinear(9)
	kd := topology.NewArrayKD(3, 4, 2)
	kd2 := topology.NewArrayKD(5, 5)
	tor5 := topology.NewTorus2D(5)
	tor6 := topology.NewTorus2D(6) // even n: ties go plus
	cube := topology.NewHypercube(5)

	cases := []struct {
		name   string
		net    topology.Network
		router Router
	}{
		{"greedy-xy-5", a5, GreedyXY{A: a5}},
		{"greedy-xy-6", a6, GreedyXY{A: a6}},
		{"greedy-yx-5", a5, GreedyYX{A: a5}},
		{"greedy-yx-6", a6, GreedyYX{A: a6}},
		{"linear", lin, LinearRoute{L: lin}},
		{"kd-3x4x2", kd, GreedyKD{A: kd}},
		{"kd-5x5", kd2, GreedyKD{A: kd2}},
		{"torus-odd", tor5, TorusGreedy{T: tor5}},
		{"torus-even", tor6, TorusGreedy{T: tor6}},
		{"cube", cube, CubeGreedy{H: cube}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, choose, ok := Steppers(tc.router)
			if !ok || len(s) != 1 || choose != nil {
				t.Fatalf("Steppers: want one deterministic stepper, got %d (ok=%v, choose=%v)", len(s), ok, choose != nil)
			}
			n := tc.net.NumNodes()
			check := func(src, dst int) {
				walked := walkStepper(t, tc.net, s[0], src, dst)
				want := tc.router.AppendRoute(nil, src, dst, nil)
				if !equalRoutes(walked, want) {
					t.Fatalf("src=%d dst=%d: stepper %v != AppendRoute %v", src, dst, walked, want)
				}
				if err := topology.ValidatePath(tc.net, src, dst, walked); err != nil {
					t.Fatalf("src=%d dst=%d: %v", src, dst, err)
				}
				if got, want := s[0].RemainingHops(src, dst), len(walked); got != want {
					t.Fatalf("src=%d dst=%d: RemainingHops %d, route length %d", src, dst, got, want)
				}
			}
			if n <= 40 {
				for src := 0; src < n; src++ {
					for dst := 0; dst < n; dst++ {
						check(src, dst)
					}
				}
			} else {
				rng := xrand.New(99)
				for i := 0; i < 2000; i++ {
					check(rng.Intn(n), rng.Intn(n))
				}
			}
		})
	}
}

// TestButterflyStepperMatchesAppendRoute walks the butterfly separately:
// its sources and destinations are restricted to the first and last levels.
func TestButterflyStepperMatchesAppendRoute(t *testing.T) {
	b := topology.NewButterfly(4)
	r := ButterflyRoute{B: b}
	s, choose, ok := Steppers(r)
	if !ok || len(s) != 1 || choose != nil {
		t.Fatal("butterfly should expose one deterministic stepper")
	}
	for _, src := range b.SourceNodes() {
		for _, dst := range b.OutputNodes() {
			walked := walkStepper(t, b, s[0], src, dst)
			want := r.AppendRoute(nil, src, dst, nil)
			if !equalRoutes(walked, want) {
				t.Fatalf("src=%d dst=%d: stepper %v != AppendRoute %v", src, dst, walked, want)
			}
		}
	}
}

// TestRandGreedySteppers checks §6's randomized router: its two steppers
// are exactly the row-first and column-first policies, and Choose consumes
// one fair coin exactly as AppendRoute does.
func TestRandGreedySteppers(t *testing.T) {
	a := topology.NewArray2D(6)
	r := RandGreedy{A: a}
	steppers, choose, ok := Steppers(r)
	if !ok || len(steppers) != 2 || choose == nil {
		t.Fatalf("RandGreedy: want 2 steppers and a choice func")
	}
	n := a.NumNodes()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			xy := walkStepper(t, a, steppers[0], src, dst)
			yx := walkStepper(t, a, steppers[1], src, dst)
			if !equalRoutes(xy, GreedyXY{A: a}.AppendRoute(nil, src, dst, nil)) {
				t.Fatalf("stepper 0 is not row-first at (%d,%d)", src, dst)
			}
			if !equalRoutes(yx, GreedyYX{A: a}.AppendRoute(nil, src, dst, nil)) {
				t.Fatalf("stepper 1 is not column-first at (%d,%d)", src, dst)
			}
		}
	}
	// Choose and AppendRoute consume the same variate: with equal seeds the
	// chosen stepper reproduces AppendRoute's route.
	rng1 := xrand.New(7)
	rng2 := xrand.New(7)
	for i := 0; i < 500; i++ {
		src, dst := rng1.Intn(n), rng1.Intn(n)
		rng2.Intn(n)
		rng2.Intn(n)
		want := r.AppendRoute(nil, src, dst, rng1)
		got := walkStepper(t, a, steppers[choose(rng2)], src, dst)
		if !equalRoutes(got, want) {
			t.Fatalf("iteration %d: choice path %v != AppendRoute %v", i, got, want)
		}
	}
}

// TestSteppersFallback: a router without an incremental form reports !ok.
type appendOnlyRouter struct{}

func (appendOnlyRouter) AppendRoute(buf []int, src, dst int, _ *xrand.RNG) []int { return buf }
func (appendOnlyRouter) MaxRouteLen() int                                        { return 0 }

func TestSteppersFallback(t *testing.T) {
	if _, _, ok := Steppers(appendOnlyRouter{}); ok {
		t.Fatal("append-only router should not report a stepper")
	}
}

package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 1000", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := Split(7, 0)
	b := Split(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams correlated: %d identical draws", same)
	}
	// Same (seed, index) must reproduce.
	c := Split(7, 1)
	d := Split(7, 1)
	for i := 0; i < 100; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("Split not deterministic")
		}
	}
}

func TestReseedSplitMatchesSplit(t *testing.T) {
	var r RNG
	for _, tc := range []struct{ seed, index uint64 }{
		{0, 0}, {1, 0}, {7, 3}, {^uint64(0), 12345}, {42, ^uint64(0)},
	} {
		r.ReseedSplit(tc.seed, tc.index)
		want := Split(tc.seed, tc.index)
		for i := 0; i < 50; i++ {
			if got, w := r.Uint64(), want.Uint64(); got != w {
				t.Fatalf("ReseedSplit(%d,%d) draw %d: %#x != Split %#x", tc.seed, tc.index, i, got, w)
			}
		}
	}
}

// TestReseedSplitKeyedStreams exercises the per-node keyed-stream pattern
// the sharded slotted engine relies on: adjacent indices (node ids) must
// yield decorrelated streams, and in-place reseeding must not allocate.
func TestReseedSplitKeyedStreams(t *testing.T) {
	var a, b RNG
	a.ReseedSplit(9, 1000)
	b.ReseedSplit(9, 1001)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent keyed streams correlated: %d identical draws", same)
	}
	rngs := make([]RNG, 64)
	allocs := testing.AllocsPerRun(10, func() {
		for i := range rngs {
			rngs[i].ReseedSplit(5, uint64(i))
		}
	})
	if allocs != 0 {
		t.Fatalf("ReseedSplit allocates %.0f times per sweep, want 0", allocs)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	f := func(skip uint8) bool {
		for i := 0; i < int(skip); i++ {
			r.Uint64()
		}
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64OpenRange(t *testing.T) {
	r := New(4)
	for i := 0; i < 100000; i++ {
		v := r.Float64Open()
		if v <= 0 || v >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", v)
		}
	}
}

func TestIntnRangeAndUniformity(t *testing.T) {
	r := New(5)
	const n = 7
	const draws = 70000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(6)
	for _, rate := range []float64{0.5, 1, 4} {
		sum := 0.0
		const n = 200000
		for i := 0; i < n; i++ {
			v := r.Exp(rate)
			if v < 0 {
				t.Fatalf("negative exponential variate %v", v)
			}
			sum += v
		}
		mean := sum / n
		want := 1 / rate
		if math.Abs(mean-want) > 0.02*want {
			t.Errorf("Exp(%v) mean = %v, want ~%v", rate, mean, want)
		}
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMoments(t *testing.T) {
	r := New(7)
	for _, mean := range []float64{0.3, 2, 10, 80} {
		const n = 100000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			sum += v
			sumsq += v * v
		}
		m := sum / n
		v := sumsq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.02 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(v-mean) > 0.1*mean+0.05 {
			t.Errorf("Poisson(%v) variance = %v", mean, v)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(9)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	f := func(raw uint8) bool {
		n := int(raw%20) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnLargeBound(t *testing.T) {
	r := New(11)
	const n = 1 << 40
	for i := 0; i < 1000; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(1<<40) out of range: %d", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Exp(1)
	}
	_ = sink
}

func TestReseedMatchesNew(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	r.Reseed(42)
	fresh := New(42)
	for i := 0; i < 100; i++ {
		if r.Uint64() != fresh.Uint64() {
			t.Fatalf("Reseed state diverges from New at draw %d", i)
		}
	}
}

func TestPoissonExpMatchesPoisson(t *testing.T) {
	for _, mean := range []float64{0.05, 0.4, 3, 9.9} {
		a, b := New(5), New(5)
		l := math.Exp(-mean)
		for i := 0; i < 10000; i++ {
			if got, want := a.PoissonExp(l), b.Poisson(mean); got != want {
				t.Fatalf("PoissonExp(exp(-%v)) draw %d = %d, Poisson = %d", mean, i, got, want)
			}
		}
	}
}

// TestPoissonGoldenSequence pins the exact PTRS draw sequence: any change
// to the sampler's variate consumption breaks seeded reproducibility of
// every simulation that draws large-mean batches.
func TestPoissonGoldenSequence(t *testing.T) {
	r := New(99)
	got := make([]int, 0, 16)
	for i := 0; i < 8; i++ {
		got = append(got, r.Poisson(15))
	}
	for i := 0; i < 8; i++ {
		got = append(got, r.Poisson(200))
	}
	want := []int{13, 13, 19, 12, 20, 18, 10, 14, 183, 198, 217, 207, 193, 205, 169, 179}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("draw %d = %d, want %d (full sequence %v)", i, got[i], want[i], got)
		}
	}
}

// poissonPMF returns P[X = k] for X ~ Poisson(mean).
func poissonPMF(mean float64, k int) float64 {
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(mean) - mean - lg)
}

// TestPoissonChiSquared checks the PTRS sampler against the exact pmf with
// a chi-squared test over the central bins (plus pooled tails). The seed is
// fixed, so the test is deterministic; the acceptance threshold is the 99.9%
// quantile-ish bound 1.5·df + 30, generous enough to be stable yet far too
// tight for any systematically wrong sampler to pass.
func TestPoissonChiSquared(t *testing.T) {
	r := New(31)
	for _, mean := range []float64{12, 35, 150} {
		const draws = 200000
		sigma := math.Sqrt(mean)
		lo := int(mean - 5*sigma)
		if lo < 0 {
			lo = 0
		}
		hi := int(mean + 5*sigma)
		counts := make([]int, hi-lo+1)
		var below, above int
		for i := 0; i < draws; i++ {
			k := r.Poisson(mean)
			switch {
			case k < lo:
				below++
			case k > hi:
				above++
			default:
				counts[k-lo]++
			}
		}
		chi2 := 0.0
		df := 0
		pBelow, pAbove := 0.0, 1.0
		for k := 0; k < lo; k++ {
			pBelow += poissonPMF(mean, k)
		}
		for k := lo; k <= hi; k++ {
			p := poissonPMF(mean, k)
			pAbove -= p
			exp := p * draws
			if exp < 5 {
				continue // pool ultra-rare central bins into the tails implicitly
			}
			d := float64(counts[k-lo]) - exp
			chi2 += d * d / exp
			df++
		}
		pAbove -= pBelow
		if exp := pBelow * draws; exp >= 5 {
			d := float64(below) - exp
			chi2 += d * d / exp
			df++
		}
		if exp := pAbove * draws; exp >= 5 {
			d := float64(above) - exp
			chi2 += d * d / exp
			df++
		}
		if limit := 1.5*float64(df) + 30; chi2 > limit {
			t.Errorf("Poisson(%v): chi-squared %0.1f over %d bins exceeds %0.1f", mean, chi2, df, limit)
		}
	}
}

// TestPoissonSkipChiSquared checks the skip-ahead sampler against the
// exact geometric pmf P[S = s] = e^(−mean·s)·(1 − e^(−mean)) with a
// chi-squared test over the leading bins plus a pooled tail, at means
// spanning the slotted engine's regime (deep sub-saturation to
// near-unit batches). Fixed seed, deterministic; the threshold mirrors
// TestPoissonChiSquared's generous-but-damning bound.
func TestPoissonSkipChiSquared(t *testing.T) {
	r := New(41)
	for _, mean := range []float64{0.02, 0.3, 1.5} {
		const draws = 200000
		q := -math.Expm1(-mean)
		// Cover ~99.99% of the mass with explicit bins.
		hi := int(math.Ceil(-math.Log(1e-4) / mean))
		counts := make([]int, hi+1)
		var above int
		for i := 0; i < draws; i++ {
			s := r.PoissonSkip(mean)
			if s > hi {
				above++
			} else {
				counts[s]++
			}
		}
		chi2 := 0.0
		df := 0
		pAbove := 1.0
		for s := 0; s <= hi; s++ {
			p := math.Exp(-mean*float64(s)) * q
			pAbove -= p
			exp := p * draws
			if exp < 5 {
				continue
			}
			d := float64(counts[s]) - exp
			chi2 += d * d / exp
			df++
		}
		if exp := pAbove * draws; exp >= 5 {
			d := float64(above) - exp
			chi2 += d * d / exp
			df++
		}
		if limit := 1.5*float64(df) + 30; chi2 > limit {
			t.Errorf("PoissonSkip(%v): chi-squared %0.1f over %d bins exceeds %0.1f", mean, chi2, df, limit)
		}
	}
}

// TestPoissonPositiveChiSquared checks the zero-truncated sampler against
// the exact pmf P[K = k] = e^(−mean)·mean^k / (k!·(1 − e^(−mean))) for
// k >= 1, across both regimes (inverse-cdf walk below mean 10, PTRS
// rejection above).
func TestPoissonPositiveChiSquared(t *testing.T) {
	r := New(43)
	for _, mean := range []float64{0.1, 2, 9.5, 25} {
		const draws = 200000
		trunc := -math.Expm1(-mean)
		hi := int(mean + 6*math.Sqrt(mean) + 10)
		counts := make([]int, hi+1)
		var above int
		for i := 0; i < draws; i++ {
			k := r.PoissonPositive(mean)
			if k < 1 {
				t.Fatalf("PoissonPositive(%v) returned %d < 1", mean, k)
			}
			if k > hi {
				above++
			} else {
				counts[k]++
			}
		}
		chi2 := 0.0
		df := 0
		pAbove := 1.0
		for k := 1; k <= hi; k++ {
			p := poissonPMF(mean, k) / trunc
			pAbove -= p
			exp := p * draws
			if exp < 5 {
				continue
			}
			d := float64(counts[k]) - exp
			chi2 += d * d / exp
			df++
		}
		if exp := pAbove * draws; exp >= 5 {
			d := float64(above) - exp
			chi2 += d * d / exp
			df++
		}
		if limit := 1.5*float64(df) + 30; chi2 > limit {
			t.Errorf("PoissonPositive(%v): chi-squared %0.1f over %d bins exceeds %0.1f", mean, chi2, df, limit)
		}
	}
}

// TestPoissonPositiveExpMatchesPoissonPositive pins the hoisted-exp form
// to the identical variate stream, mirroring PoissonExp vs Poisson.
func TestPoissonPositiveExpMatchesPoissonPositive(t *testing.T) {
	for _, mean := range []float64{0.05, 0.4, 3, 9.9} {
		a, b := New(5), New(5)
		l := math.Exp(-mean)
		for i := 0; i < 10000; i++ {
			if got, want := a.PoissonPositiveExp(mean, l), b.PoissonPositive(mean); got != want {
				t.Fatalf("PoissonPositiveExp(%v) draw %d = %d, PoissonPositive = %d", mean, i, got, want)
			}
		}
	}
}

// TestSkipBatchPairReconstructsPoissonProcess is the end-to-end law the
// sparse engine rests on: alternating PoissonSkip gaps with
// PoissonPositive batches must reproduce the i.i.d. per-slot Poisson
// process — checked here by reconstructing per-slot batch sums over a
// long horizon and comparing mean and variance (both equal mean for a
// Poisson process) and the zero-slot frequency against e^(−mean).
func TestSkipBatchPairReconstructsPoissonProcess(t *testing.T) {
	r := New(47)
	const (
		mean  = 0.35
		slots = 400000
	)
	var sum, sumSq float64
	zeros := 0
	slot := r.PoissonSkip(mean)
	for s := 0; s < slots; s++ {
		k := 0
		if s == slot {
			k = r.PoissonPositive(mean)
			slot = s + 1 + r.PoissonSkip(mean)
		}
		if k == 0 {
			zeros++
		}
		sum += float64(k)
		sumSq += float64(k) * float64(k)
	}
	m := sum / slots
	v := sumSq/slots - m*m
	if math.Abs(m-mean) > 0.01 {
		t.Errorf("reconstructed mean %v, want %v", m, mean)
	}
	if math.Abs(v-mean) > 0.02 {
		t.Errorf("reconstructed variance %v, want %v", v, mean)
	}
	if p0 := float64(zeros) / slots; math.Abs(p0-math.Exp(-mean)) > 0.01 {
		t.Errorf("zero-slot frequency %v, want %v", p0, math.Exp(-mean))
	}
}

// TestSparseSamplerGoldenSequences pins the exact draw sequences of the
// skip-ahead samplers: any change to their variate consumption breaks
// seeded reproducibility of every sparse slotted run.
func TestSparseSamplerGoldenSequences(t *testing.T) {
	r := New(123)
	var got []int
	for i := 0; i < 8; i++ {
		got = append(got, r.PoissonSkip(0.1))
	}
	for i := 0; i < 8; i++ {
		got = append(got, r.PoissonPositive(0.1))
	}
	for i := 0; i < 4; i++ {
		got = append(got, r.PoissonPositive(40))
	}
	want := []int{16, 0, 7, 20, 10, 0, 9, 4, 1, 1, 1, 1, 1, 1, 1, 1, 37, 40, 38, 32}
	if len(got) != len(want) {
		t.Fatalf("sequence length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("draw %d = %d, want %d (full sequence %v)", i, got[i], want[i], got)
		}
	}
}

func TestPoissonSkipPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PoissonSkip(0) did not panic")
		}
	}()
	New(1).PoissonSkip(0)
}

func TestPoissonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PoissonPositive(0) did not panic")
		}
	}()
	New(1).PoissonPositive(0)
}

// TestPoissonSkipTinyMeanClamped guards the overflow clamp: a mean small
// enough to push the skip past any runnable horizon must return the cap,
// not a garbage int conversion.
func TestPoissonSkipTinyMeanClamped(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		s := r.PoissonSkip(1e-300)
		if s < 0 || s > maxPoissonSkip {
			t.Fatalf("PoissonSkip(1e-300) = %d out of [0, maxPoissonSkip]", s)
		}
	}
}

func BenchmarkPoissonSkip(b *testing.B) {
	r := New(1)
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += r.PoissonSkip(0.01)
	}
	_ = sink
}

func BenchmarkPoissonPositive(b *testing.B) {
	r := New(1)
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += r.PoissonPositive(0.01)
	}
	_ = sink
}

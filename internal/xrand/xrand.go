// Package xrand provides the deterministic random-number substrate used by
// the simulator. It implements xoshiro256** seeded via splitmix64, plus the
// variate generators the queueing model needs (uniform, exponential, Poisson,
// Bernoulli). Every stream is reproducible from a single uint64 seed, and
// streams for parallel replicas are derived with Split so replicas never
// share state.
//
// The package deliberately avoids math/rand so that results are bit-stable
// across Go releases.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// with New. RNG is not safe for concurrent use; derive one per goroutine
// with Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances a splitmix64 state and returns the next output.
// It is the recommended seeding procedure for xoshiro generators.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG {
	var r RNG
	r.Reseed(seed)
	return &r
}

// Reseed resets r to the exact state New(seed) would produce, without
// allocating. Engines that reuse their state across runs (sim.Runner,
// stepsim.Engine) reseed their generator in place.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// xoshiro must not start in the all-zero state; splitmix64 of any seed
	// makes that astronomically unlikely, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s3 = 0x9e3779b97f4a7c15
	}
}

// Split derives an independent child generator from seed and stream index.
// Children with distinct indices have unrelated state, which is what the
// parallel replica runner relies on.
func Split(seed, index uint64) *RNG {
	var r RNG
	r.ReseedSplit(seed, index)
	return &r
}

// ReseedSplit resets r to the exact state Split(seed, index) would produce,
// without allocating. It is the keyed-stream primitive behind the sharded
// slotted engine's per-node generators: stream index v of a run seed is a
// pure function of (seed, v), so an engine that owns one generator per
// source node can reseed millions of them in place at the start of a run —
// and, because every node's draws then depend only on its own stream, the
// run's results cannot depend on how nodes are grouped into worker tiles.
func (r *RNG) ReseedSplit(seed, index uint64) {
	sm := seed
	base := splitmix64(&sm)
	mix := index*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	r.Reseed(base ^ splitmix64(&mix))
}

// State exports the generator's four state words, in order. Together with
// Restore it lets engines checkpoint a stream mid-sequence (the snapshot
// warm-start path): Restore(State()) resumes the exact variate sequence,
// bit for bit, from wherever the stream was.
func (r *RNG) State() [4]uint64 {
	return [4]uint64{r.s0, r.s1, r.s2, r.s3}
}

// Restore sets the generator to a state previously exported with State.
// The all-zero state is not a valid xoshiro state and panics; any state
// State can return is nonzero.
func (r *RNG) Restore(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		panic("xrand: Restore with all-zero state")
	}
	r.s0, r.s1, r.s2, r.s3 = s[0], s[1], s[2], s[3]
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1); it never returns 0, which
// makes it safe to pass to math.Log.
func (r *RNG) Float64Open() float64 {
	for {
		f := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
		if f > 0 && f < 1 {
			return f
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Exp returns an exponentially distributed variate with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp with non-positive rate")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Poisson returns a Poisson-distributed variate with the given mean. Both
// regimes sample the exact distribution:
//
//   - mean < 10: Knuth's product-of-uniforms, whose cost is O(mean)
//     uniform draws — cheap exactly where the slotted batch model lives
//     (per-slot means well under 1);
//   - mean >= 10: Hörmann's PTRS transformed rejection, a constant ~2.3
//     uniforms per variate at any mean. It replaces both the former Knuth
//     range [10, 30) — whose cost climbed linearly toward a throughput
//     cliff just under the old mean=30 crossover — and the former normal
//     approximation above it, which was not exact.
func (r *RNG) Poisson(mean float64) int {
	switch {
	case mean < 0:
		panic("xrand: Poisson with negative mean")
	case mean == 0:
		return 0
	case mean < 10:
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64Open()
			if p <= l {
				return k
			}
			k++
		}
	default:
		return r.poissonPTRS(mean)
	}
}

// PoissonExp returns a Poisson variate by Knuth's method given
// l = math.Exp(-mean), consuming the identical variate stream Poisson(mean)
// would for mean in (0, 10). Batch engines drawing many variates at one
// fixed small mean (the slotted simulator draws one per source per slot)
// hoist the exponential out of the loop this way.
func (r *RNG) PoissonExp(l float64) int {
	k := 0
	p := 1.0
	for {
		p *= r.Float64Open()
		if p <= l {
			return k
		}
		k++
	}
}

// maxPoissonSkip caps PoissonSkip's return value. A skip this large only
// arises for means so small that the next arrival lies astronomically far
// in the future; callers add the skip to a slot counter, and the cap keeps
// that addition far from overflow while still meaning "past any horizon a
// simulation can run". Defined relative to the platform int so the clamp
// is portable (2⁶² on 64-bit, 2³⁰ on 32-bit).
const maxPoissonSkip = math.MaxInt >> 1

// PoissonSkip returns the number of consecutive zero values preceding the
// next nonzero value in an i.i.d. Poisson(mean) sequence: a geometric
// variate on {0, 1, 2, ...} with success probability q = 1 − exp(−mean),
// P[S = s] = (1−q)^s · q. It is the skip-ahead primitive of the sparse
// slotted engine: instead of drawing one Poisson batch per source per slot
// (almost all zero at low load), a source draws where its next nonzero
// batch lands and sleeps until then.
//
// One uniform per call via inversion of the exponential: S = ⌊E⌋ for
// E ~ Exp(mean), which is exact because ln(1−q) = −mean identically —
// P[⌊E⌋ = s] = e^(−mean·s)(1 − e^(−mean)). Pairing PoissonSkip with
// PoissonPositive on the arrival slots reproduces the i.i.d. per-slot
// Poisson process in distribution while consuming RNG only on (and ahead
// of) nonzero slots. It panics if mean <= 0.
func (r *RNG) PoissonSkip(mean float64) int {
	f := r.Exp(mean)
	if f >= maxPoissonSkip {
		return maxPoissonSkip
	}
	return int(f)
}

// Geometric returns a geometric variate on {0, 1, 2, ...}: the number of
// failures before the first success in independent Bernoulli(p) trials,
// P[G = g] = (1−p)^g · p. One uniform per call by inversion, G = ⌊E⌋ for
// E ~ Exp(−ln(1−p)) — the identical construction PoissonSkip uses, so the
// fault layer's discrete up/down dwells (dwell = 1 + Geometric(1/MTBF))
// cost one draw each and are exact. Results are capped like PoissonSkip so
// adding a dwell to a slot counter cannot overflow. p >= 1 returns 0; it
// panics if p <= 0.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 {
		panic("xrand: Geometric with non-positive p")
	}
	if p >= 1 {
		return 0
	}
	f := r.Exp(-math.Log1p(-p))
	if f >= maxPoissonSkip {
		return maxPoissonSkip
	}
	return int(f)
}

// PoissonPositive returns a zero-truncated Poisson variate: K ~
// Poisson(mean) conditioned on K >= 1. It is the batch-size draw on the
// arrival slots that PoissonSkip selects. Below mean 10 it inverts the
// truncated pmf directly (O(1 + mean) expected work, and exactly one
// uniform in the overwhelmingly common K = 1 regime); from mean 10 up it
// rejects zero draws from the PTRS sampler (a zero has probability
// e^(−10) ≈ 5·10⁻⁵ there, so the loop is one iteration in practice). It
// panics if mean <= 0.
func (r *RNG) PoissonPositive(mean float64) int {
	switch {
	case mean <= 0:
		panic("xrand: PoissonPositive with non-positive mean")
	case mean < 10:
		return r.poissonPositiveInv(mean, math.Exp(-mean))
	default:
		for {
			if k := r.poissonPTRS(mean); k > 0 {
				return k
			}
		}
	}
}

// PoissonPositiveExp returns a zero-truncated Poisson variate given
// l = math.Exp(-mean) precomputed, consuming the identical variate stream
// PoissonPositive(mean) would for mean in (0, 10). Batch engines drawing
// at one fixed small mean hoist the exponential exactly as they do for
// PoissonExp.
func (r *RNG) PoissonPositiveExp(mean, l float64) int {
	return r.poissonPositiveInv(mean, l)
}

// poissonPositiveInv inverts the zero-truncated Poisson cdf: u uniform on
// (0, 1−l) walks the pmf terms t_k = l·mean^k/k! from k = 1. The walk is
// capped well past any float64-representable tail mass so accumulated
// rounding in the subtraction can never loop forever.
func (r *RNG) poissonPositiveInv(mean, l float64) int {
	u := r.Float64Open() * (1 - l)
	k := 1
	t := l * mean
	for u > t && k < 200 {
		u -= t
		k++
		t *= mean / float64(k)
	}
	return k
}

// poissonPTRS samples Poisson(mean) by transformed rejection with squeeze
// (Hörmann 1993, "The transformed rejection method for generating Poisson
// random variables", algorithm PTRS). Valid for mean >= 10; exact, and uses
// ~2.3 uniform draws per variate independent of the mean.
func (r *RNG) poissonPTRS(mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)
	for {
		u := r.Float64() - 0.5
		v := r.Float64Open()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMean-mean-lg {
			return int(k)
		}
	}
}

// Norm returns a standard normal variate via the Marsaglia polar method.
func (r *RNG) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniform random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

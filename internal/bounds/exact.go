package bounds

import (
	"repro/internal/queueing"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// DestDist gives the probability that a packet generated at src is destined
// for dst. Implementations must sum to 1 over dst for each src.
type DestDist func(src, dst int) float64

// UniformDist returns the uniform destination distribution over all nodes
// of net (the paper's standard model).
func UniformDist(net topology.Network) DestDist {
	p := 1 / float64(net.NumNodes())
	return func(_, _ int) float64 { return p }
}

// UniformOverDist returns the uniform distribution over the given node set
// (e.g. a butterfly's output level).
func UniformOverDist(nodes []int) DestDist {
	in := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		in[n] = true
	}
	p := 1 / float64(len(nodes))
	return func(_, dst int) float64 {
		if in[dst] {
			return p
		}
		return 0
	}
}

// ExactEdgeRates computes the total packet arrival rate on every edge by
// enumerating all (source, destination) pairs under a deterministic router:
// λ_e = Σ_{s,d : e ∈ route(s,d)} nodeRate·P[d|s]. This is the combinatorial
// computation behind Theorem 6, usable for any topology and destination
// distribution, and it cross-validates both the closed forms and the
// traffic-equation solver.
//
// dests may be nil to consider every node a possible destination.
func ExactEdgeRates(net topology.Network, r routing.Router, nodeRate float64, dist DestDist, dests []int) []float64 {
	rates := make([]float64, net.NumEdges())
	if dests == nil {
		dests = allNodes(net)
	}
	var buf []int
	// Deterministic routers ignore the RNG; pass one anyway so a mistakenly
	// randomized router fails loudly in tests rather than panicking here.
	rng := xrand.New(0)
	for _, src := range topology.Sources(net) {
		for _, dst := range dests {
			w := nodeRate * dist(src, dst)
			if w == 0 {
				continue
			}
			buf = r.AppendRoute(buf[:0], src, dst, rng)
			for _, e := range buf {
				rates[e] += w
			}
		}
	}
	return rates
}

// BuildTraffic constructs the open-network traffic description (external
// rates and routing chain over edges-as-queues) induced by a deterministic
// router and destination distribution. Solving its traffic equations must
// reproduce ExactEdgeRates; the pair is used as a consistency check and to
// expose the Markov-chain view of greedy routing used by Theorems 1 and 12.
func BuildTraffic(net topology.Network, r routing.Router, nodeRate float64, dist DestDist, dests []int) *queueing.Traffic {
	tr := queueing.NewTraffic(net.NumEdges())
	flow := make([]map[int]float64, net.NumEdges())
	through := make([]float64, net.NumEdges())
	if dests == nil {
		dests = allNodes(net)
	}
	var buf []int
	rng := xrand.New(0)
	for _, src := range topology.Sources(net) {
		for _, dst := range dests {
			w := nodeRate * dist(src, dst)
			if w == 0 {
				continue
			}
			buf = r.AppendRoute(buf[:0], src, dst, rng)
			if len(buf) == 0 {
				continue
			}
			tr.External[buf[0]] += w
			for i, e := range buf {
				through[e] += w
				if i+1 < len(buf) {
					if flow[e] == nil {
						flow[e] = make(map[int]float64)
					}
					flow[e][buf[i+1]] += w
				}
			}
		}
	}
	for e, m := range flow {
		for to, f := range m {
			tr.Routes[e] = append(tr.Routes[e], queueing.Transition{To: to, Prob: f / through[e]})
		}
	}
	return tr
}

// MeanRouteLen returns the expected route length under a deterministic
// router and destination distribution (the general n̄).
func MeanRouteLen(net topology.Network, r routing.Router, dist DestDist, dests []int) float64 {
	if dests == nil {
		dests = allNodes(net)
	}
	srcs := topology.Sources(net)
	var buf []int
	rng := xrand.New(0)
	total := 0.0
	for _, src := range srcs {
		for _, dst := range dests {
			w := dist(src, dst)
			if w == 0 {
				continue
			}
			buf = r.AppendRoute(buf[:0], src, dst, rng)
			total += w * float64(len(buf))
		}
	}
	return total / float64(len(srcs))
}

func allNodes(net topology.Network) []int {
	nodes := make([]int, net.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

package bounds

import (
	"fmt"
	"strings"

	"repro/internal/topology"
)

// This file regenerates the paper's two figures as text. Figure 1 shows the
// Lemma 2 layering labels on a small array; Figure 2 marks the saturated
// edges for an even and an odd side length.

// RenderLayering draws the array with each edge annotated by its Lemma 2
// layer label, in the style of Figure 1. Horizontal edges show
// "right/left" labels as a>b pairs between nodes; vertical edges show
// "down/up" pairs. Intended for small n (the paper uses n = 4).
func RenderLayering(n int) string {
	a := topology.NewArray2D(n)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Lemma 2 layering labels for the %d x %d array\n", n, n)
	sb.WriteString("(horizontal: right>/<left, vertical: down v / up ^)\n\n")
	for r := 0; r < n; r++ {
		// Node row with horizontal labels.
		for c := 0; c < n; c++ {
			fmt.Fprintf(&sb, "(%d,%d)", r+1, c+1)
			if c < n-1 {
				er, _ := a.EdgeIn(r, c, topology.Right)
				el, _ := a.EdgeIn(r, c+1, topology.Left)
				fmt.Fprintf(&sb, " %d>/<%d ", a.LayerLabel(er), a.LayerLabel(el))
			}
		}
		sb.WriteByte('\n')
		if r == n-1 {
			break
		}
		// Vertical labels between node rows.
		for c := 0; c < n; c++ {
			ed, _ := a.EdgeIn(r, c, topology.Down)
			eu, _ := a.EdgeIn(r+1, c, topology.Up)
			fmt.Fprintf(&sb, "%dv/%d^", a.LayerLabel(ed), a.LayerLabel(eu))
			if c < n-1 {
				sb.WriteString(strings.Repeat(" ", 6))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// VerifyLayering checks Lemma 2 exhaustively for side n: along every greedy
// route the layer labels must strictly increase. It returns an error
// describing the first violation, or nil.
func VerifyLayering(n int) error {
	a := topology.NewArray2D(n)
	var buf []int
	for src := 0; src < a.NumNodes(); src++ {
		for dst := 0; dst < a.NumNodes(); dst++ {
			buf = greedyRowFirst(a, buf[:0], src, dst)
			prev := 0
			for _, e := range buf {
				l := a.LayerLabel(e)
				if l <= prev {
					return fmt.Errorf("bounds: layering violated on route %d->%d: label %d after %d", src, dst, l, prev)
				}
				prev = l
			}
		}
	}
	return nil
}

// greedyRowFirst regenerates the greedy route locally (row edges then
// column edges) to keep this package independent of internal/routing.
func greedyRowFirst(a *topology.Array2D, buf []int, src, dst int) []int {
	r1, c1 := a.Coords(src)
	r2, c2 := a.Coords(dst)
	for c := c1; c < c2; c++ {
		e, _ := a.EdgeIn(r1, c, topology.Right)
		buf = append(buf, e)
	}
	for c := c1; c > c2; c-- {
		e, _ := a.EdgeIn(r1, c, topology.Left)
		buf = append(buf, e)
	}
	for r := r1; r < r2; r++ {
		e, _ := a.EdgeIn(r, c2, topology.Down)
		buf = append(buf, e)
	}
	for r := r1; r > r2; r-- {
		e, _ := a.EdgeIn(r, c2, topology.Up)
		buf = append(buf, e)
	}
	return buf
}

// RenderSaturated draws the array marking saturated edge positions in the
// style of Figure 2: '=' marks a saturated horizontal pair, '‖' a saturated
// vertical pair, '-' and '|' unsaturated ones.
func RenderSaturated(n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Saturated edges of the %d x %d array (n %s): ", n, n, parity(n))
	fmt.Fprintf(&sb, "%d saturated edges, max %d per greedy route, s̄ = %.4g\n\n",
		NumSaturatedEdges(n), MaxSaturatedCrossings(n), SBar(n))
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			sb.WriteByte('o')
			if c < n-1 {
				if IsSaturatedIndex(n, c+1) { // right edge out of 1-based col c+1
					sb.WriteString("===")
				} else {
					sb.WriteString("---")
				}
			}
		}
		sb.WriteByte('\n')
		if r == n-1 {
			break
		}
		for c := 0; c < n; c++ {
			if IsSaturatedIndex(n, r+1) { // down edge out of 1-based row r+1
				sb.WriteString("‖")
			} else {
				sb.WriteString("|")
			}
			if c < n-1 {
				sb.WriteString("   ")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func parity(n int) string {
	if n%2 == 0 {
		return "even"
	}
	return "odd"
}

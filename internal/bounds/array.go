// Package bounds implements every closed-form quantity in the paper: the
// Theorem 6 edge arrival rates, the Theorem 7 upper bound, the §4.2 M/D/1
// independence approximation, the Theorem 8 Stamoulis–Tsitsiklis lower
// bounds, the Theorem 10/12 copy-network lower bounds (with the maximum
// expected remaining distance d̄ computed exactly), the Theorem 14
// saturated-edge lower bound (with s̄ computed exactly), the Theorem 15
// optimal service-rate allocation, and the corresponding formulas for
// hypercubes, butterflies, k-dimensional arrays and tori.
//
// All functions use 0-based coordinates at the API and the paper's 1-based
// indices inside formulas. T always denotes the expected time a packet
// spends in the system; rates are per unit time; service times are 1 unless
// stated otherwise.
package bounds

import (
	"math"

	"repro/internal/queueing"
	"repro/internal/topology"
)

// MeanDist returns n̄ = (2/3)(n - 1/n), the mean greedy route length with
// destinations uniform over all n² nodes (source == destination allowed).
func MeanDist(n int) float64 {
	nn := float64(n)
	return 2.0 / 3.0 * (nn - 1/nn)
}

// MeanDistExcl returns n̄₂ = 2n/3, the mean route length excluding packets
// whose destination equals their source.
func MeanDistExcl(n int) float64 { return 2 * float64(n) / 3 }

// maxProd returns max_i i(n-i) = ⌊n²/4⌋, the bottleneck rate index.
func maxProd(n int) int { return n * n / 4 }

// Load returns the network load ρ = λ·⌊n²/4⌋/n of the standard (unit
// service) array at per-node arrival rate λ.
func Load(n int, lambda float64) float64 {
	return lambda * float64(maxProd(n)) / float64(n)
}

// LambdaForLoad inverts Load: the per-node rate achieving load ρ. It equals
// 4ρ/n for even n and 4nρ/(n²-1) for odd n.
func LambdaForLoad(n int, rho float64) float64 {
	return rho * float64(n) / float64(maxProd(n))
}

// StabilityLimit returns the largest per-node arrival rate for which the
// standard array is stable: 4/n for even n and 4n/(n²-1) for odd n.
func StabilityLimit(n int) float64 { return LambdaForLoad(n, 1) }

// OptimalStabilityLimit returns §5.1's stability threshold 6/(n+1) for the
// array whose transmission capacity is optimally redistributed under the
// standard budget D = 4n(n-1) with unit costs.
func OptimalStabilityLimit(n int) float64 { return 6 / (float64(n) + 1) }

// rateIndex returns the 1-based index i such that the Theorem 6 rate of
// edge e is (λ/n)·i(n-i).
func rateIndex(a *topology.Array2D, e int) int {
	r, c, d := a.EdgeInfo(e)
	switch d {
	case topology.Right:
		return c + 1
	case topology.Left:
		return c
	case topology.Down:
		return r + 1
	default: // Up
		return r
	}
}

// EdgeRate returns the Theorem 6 total packet arrival rate on edge e of the
// array when every node generates packets at rate lambda with uniform
// destinations.
func EdgeRate(a *topology.Array2D, e int, lambda float64) float64 {
	n := a.N()
	i := rateIndex(a, e)
	return lambda * float64(i*(n-i)) / float64(n)
}

// EdgeRates returns the Theorem 6 rate for every edge, indexed by edge id.
func EdgeRates(a *topology.Array2D, lambda float64) []float64 {
	rates := make([]float64, a.NumEdges())
	for e := range rates {
		rates[e] = EdgeRate(a, e, lambda)
	}
	return rates
}

// md1Number is the M/D/1 number-in-system at load u with unit service:
// u + u²/(2(1-u)). Infinite at u >= 1.
func md1Number(u float64) float64 {
	if u >= 1 {
		return math.Inf(1)
	}
	return u + u*u/(2*(1-u))
}

// mm1Number is the M/M/1 number-in-system at load u: u/(1-u).
func mm1Number(u float64) float64 {
	if u >= 1 {
		return math.Inf(1)
	}
	return u / (1 - u)
}

// sumOverRates evaluates (4/(λn))·Σ_{i=1}^{n-1} f(r_i) with
// r_i = λi(n-i)/n, exploiting that the array has exactly 4n edges of each
// rate index. At λ = 0 the callers' limits all equal n̄, which is returned.
func sumOverRates(n int, lambda float64, f func(u float64) float64) float64 {
	if lambda == 0 {
		return MeanDist(n)
	}
	total := 0.0
	for i := 1; i < n; i++ {
		total += f(lambda * float64(i*(n-i)) / float64(n))
	}
	return 4 / (lambda * float64(n)) * total
}

// UpperBoundT returns Theorem 7's upper bound on the average delay of the
// standard array: the delay of the equivalent Jackson (product-form)
// network, (4/(λn))·Σ_{i=1}^{n-1} r_i/(1-r_i). Infinite when unstable.
func UpperBoundT(n int, lambda float64) float64 {
	return sumOverRates(n, lambda, mm1Number)
}

// MD1ApproxT returns §4.2's independence approximation for the average
// delay: each edge treated as an independent M/D/1 queue,
// (4/(λn))·Σ_{i=1}^{n-1} r_i(2-r_i)/(2(1-r_i)).
func MD1ApproxT(n int, lambda float64) float64 {
	return sumOverRates(n, lambda, md1Number)
}

// LambdaTable returns the per-node arrival rate the paper's tables use for
// a target load ρ: λ = 4ρ/n for every n. (For odd n the true bottleneck
// load is then ρ·(1-1/n²), marginally below ρ; the published tables follow
// the even-n conversion, which we reproduce for comparability.)
func LambdaTable(n int, rho float64) float64 { return 4 * rho / float64(n) }

// PaperEstimateT returns the exact formula behind Table I's "Est" column,
// recovered by matching the published values to better than 0.1%:
//
//	T = (4/(λn)) Σ_{i=1}^{n-1} a_i[(n-a_i)² + n²] / (2n²(n-a_i)),  a_i = λi(n-i).
//
// Per queue this is T_e = (1-u)/2 + 1/(2(1-u)) with u = a_i/n, which equals
// the standard M/D/1 time-in-system (2-u)/(2(1-u)) minus u/2. MD1ApproxT is
// the textbook form; PaperEstimateT is what the paper tabulated. Both share
// the λ→0 limit n̄ and the (1-u)⁻¹ blow-up, and differ by at most
// (1/Λ)Σλ_e·u_e/2 — about 8% at worst in the table's range.
func PaperEstimateT(n int, lambda float64) float64 {
	if lambda == 0 {
		return MeanDist(n)
	}
	nn := float64(n)
	total := 0.0
	for i := 1; i < n; i++ {
		a := lambda * float64(i*(n-i))
		if a >= nn {
			return math.Inf(1)
		}
		total += a * ((nn-a)*(nn-a) + nn*nn) / (2 * nn * nn * (nn - a))
	}
	return 4 / (lambda * nn) * total
}

// STLowerFactor returns Theorem 8's prefactor f: 1/2 for even n and
// 1/2 - 1/n² for odd n.
func STLowerFactor(n int) float64 {
	if n%2 == 0 {
		return 0.5
	}
	return 0.5 - 1/float64(n*n)
}

// STLowerBoundAny returns Theorem 8's lower bound for any routing scheme on
// the array: f·(1 + ρ/(2n(1-ρ))).
func STLowerBoundAny(n int, lambda float64) float64 {
	rho := Load(n, lambda)
	if rho >= 1 {
		return math.Inf(1)
	}
	return STLowerFactor(n) * (1 + rho/(2*float64(n)*(1-rho)))
}

// STLowerBoundOblivious returns Theorem 8's lower bound for oblivious
// routing schemes (greedy is oblivious): f·(1 + ρ/(2(1-ρ))).
func STLowerBoundOblivious(n int, lambda float64) float64 {
	rho := Load(n, lambda)
	if rho >= 1 {
		return math.Inf(1)
	}
	return STLowerFactor(n) * (1 + rho/(2*(1-rho)))
}

// MaxRouteLen returns d = 2(n-1), the paper's maximum number of distinct
// services required by any packet (Theorem 10's d).
func MaxRouteLen(n int) int { return 2 * (n - 1) }

// DBar returns d̄ = n - 1/2, the array's maximum expected remaining distance
// (Definition 11); the maximum is achieved by a packet queued at a corner
// heading along its row, e.g. at node (1,1) headed right.
func DBar(n int) float64 { return float64(n) - 0.5 }

// Thm10LowerBound returns the general copy-network lower bound of
// Theorem 10 combined with Lemma 9 and Little's law:
// T >= T_md1 / d with d = 2(n-1).
func Thm10LowerBound(n int, lambda float64) float64 {
	return MD1ApproxT(n, lambda) / float64(MaxRouteLen(n))
}

// Thm12LowerBound returns the Markovian-network lower bound of Theorem 12:
// T >= T_md1 / d̄ with d̄ = n - 1/2.
func Thm12LowerBound(n int, lambda float64) float64 {
	return MD1ApproxT(n, lambda) / DBar(n)
}

// IsSaturatedIndex reports whether rate index i (1-based) attains the
// maximum edge rate, i.e. i(n-i) = ⌊n²/4⌋.
func IsSaturatedIndex(n, i int) bool { return i*(n-i) == maxProd(n) }

// SaturatedEdges marks the array's saturated edges (λ_e/φ_e = ρ): those
// whose rate index attains ⌊n²/4⌋. For even n these are the 4n edges
// crossing the middle; for odd n the 8n edges at the two middle positions
// (Figure 2). (For n ≤ 3 every edge is saturated.)
func SaturatedEdges(a *topology.Array2D) []bool {
	sat := make([]bool, a.NumEdges())
	for e := range sat {
		sat[e] = IsSaturatedIndex(a.N(), rateIndex(a, e))
	}
	return sat
}

// NumSaturatedEdges returns the count of saturated edges.
func NumSaturatedEdges(n int) int {
	count := 0
	for i := 1; i < n; i++ {
		if IsSaturatedIndex(n, i) {
			count++
		}
	}
	return 4 * n * count
}

// axisSaturated counts the saturated edges crossed when moving along one
// axis from 0-based position from to position to (inclusive of the edge out
// of from). Moving in the plus direction the edge leaving position m has
// rate index m+1; in the minus direction it has rate index m.
func axisSaturated(n, from, to int) int {
	count := 0
	if to > from {
		for m := from; m < to; m++ {
			if IsSaturatedIndex(n, m+1) {
				count++
			}
		}
	} else {
		for m := from; m > to; m-- {
			if IsSaturatedIndex(n, m) {
				count++
			}
		}
	}
	return count
}

// MaxSaturatedCrossings returns the maximum number of saturated edges on
// any greedy route: 2 for even n >= 4, and up to 4 for odd n (Figure 2).
// It is computed by scanning all axis movements, which is exact because a
// greedy route decomposes into one horizontal and one vertical axis walk.
func MaxSaturatedCrossings(n int) int {
	maxAxis := 0
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if c := axisSaturated(n, from, to); c > maxAxis {
				maxAxis = c
			}
		}
	}
	return 2 * maxAxis
}

// ExpectedRemaining returns d_e for every edge: the expected number of
// distinct services a packet queued at e still needs (including e itself),
// under the conditional destination distribution of packets crossing e.
// The paper's Definition 11; max is DBar(n) = n - 1/2.
func ExpectedRemaining(a *topology.Array2D) []float64 {
	n := a.N()
	out := make([]float64, a.NumEdges())
	for e := range out {
		r, c, d := a.EdgeInfo(e)
		switch d {
		case topology.Right:
			// Destination column uniform on [c+1, n); remaining horizontal
			// hops uniform on [1, n-1-c]; plus full-row vertical deviation.
			out[e] = float64(1+(n-1-c))/2 + meanAbsDev(n, r)
		case topology.Left:
			out[e] = float64(1+c)/2 + meanAbsDev(n, r)
		case topology.Down:
			out[e] = float64(1+(n-1-r)) / 2
		default: // Up
			out[e] = float64(1+r) / 2
		}
	}
	return out
}

// meanAbsDev returns E|B - r| for B uniform on [0, n).
func meanAbsDev(n, r int) float64 {
	total := 0
	for b := 0; b < n; b++ {
		if b > r {
			total += b - r
		} else {
			total += r - b
		}
	}
	return float64(total) / float64(n)
}

// ExpectedRemainingSaturated returns s_e for every edge: the expected
// number of remaining services at saturated queues for a packet queued at e
// (Definition 13), under the same conditional destination distribution as
// ExpectedRemaining.
func ExpectedRemainingSaturated(a *topology.Array2D) []float64 {
	n := a.N()
	out := make([]float64, a.NumEdges())
	for e := range out {
		r, c, d := a.EdgeInfo(e)
		switch d {
		case topology.Right:
			out[e] = meanAxisSatRange(n, c, c+1, n-1) + meanAxisSatAll(n, r)
		case topology.Left:
			out[e] = meanAxisSatRange(n, c, 0, c-1) + meanAxisSatAll(n, r)
		case topology.Down:
			out[e] = meanAxisSatRange(n, r, r+1, n-1)
		default: // Up
			out[e] = meanAxisSatRange(n, r, 0, r-1)
		}
	}
	return out
}

// meanAxisSatRange averages axisSaturated(n, from, to) over to uniform in
// [lo, hi].
func meanAxisSatRange(n, from, lo, hi int) float64 {
	total := 0
	for to := lo; to <= hi; to++ {
		total += axisSaturated(n, from, to)
	}
	return float64(total) / float64(hi-lo+1)
}

// meanAxisSatAll averages axisSaturated(n, from, to) over to uniform in
// [0, n).
func meanAxisSatAll(n, from int) float64 {
	return meanAxisSatRange(n, from, 0, n-1)
}

// SBar returns s̄ = max_e s_e, the maximum expected remaining saturated
// distance. It equals 3/2 for even n and is < 3 for odd n (approaching 3 as
// n grows), which is where Theorem 14's constant-factor gap comes from.
func SBar(n int) float64 {
	a := topology.NewArray2D(n)
	sbar := 0.0
	for _, s := range ExpectedRemainingSaturated(a) {
		if s > sbar {
			sbar = s
		}
	}
	return sbar
}

// Thm14LowerBound returns the saturated-edge lower bound of Theorem 14:
// counting only packets' services at saturated queues,
//
//	T >= (#saturated · N_MD1(ρ)) / (λn² · s̄).
//
// The bound is asymptotic — valid as ρ → 1, where unsaturated M/D/1 queues
// stay bounded while saturated ones diverge; at moderate loads it can fall
// below the other lower bounds and BestLowerBound takes the maximum.
func Thm14LowerBound(n int, lambda float64) float64 {
	rho := Load(n, lambda)
	if rho >= 1 {
		return math.Inf(1)
	}
	sat := float64(NumSaturatedEdges(n))
	return sat * md1Number(rho) / (lambda * float64(n*n) * SBar(n))
}

// GapLimit returns 2·s̄, the limiting ratio of Theorem 7's upper bound to
// Theorem 14's lower bound as ρ → 1: exactly 3 for even n, at most 6 for
// odd n.
func GapLimit(n int) float64 { return 2 * SBar(n) }

// BestLowerBound returns the strongest applicable lower bound at the given
// load: the maximum of the trivial bound n̄, both Theorem 8 forms (greedy is
// oblivious), and Theorem 12. Theorem 14 is excluded because it holds only
// asymptotically; use Thm14LowerBound directly for ρ → 1 studies.
func BestLowerBound(n int, lambda float64) float64 {
	best := MeanDist(n)
	for _, v := range []float64{
		STLowerBoundAny(n, lambda),
		STLowerBoundOblivious(n, lambda),
		Thm12LowerBound(n, lambda),
	} {
		if v > best {
			best = v
		}
	}
	return best
}

// JacksonT evaluates the product-form delay (1/Λ)·Σ λ_e/(φ_e-λ_e) for
// arbitrary per-edge rates; it generalizes UpperBoundT to configured
// networks (Theorem 15) and non-uniform destination distributions, where
// the Markovian-routing argument keeps Theorem 5 valid.
func JacksonT(edgeRates, serviceRates []float64, totalArrival float64) (float64, error) {
	num, err := queueing.JacksonNumber(edgeRates, serviceRates)
	if err != nil {
		return math.Inf(1), err
	}
	return queueing.LittleT(num, totalArrival), nil
}

// MD1SystemT evaluates the §4.2 independence approximation for arbitrary
// per-edge rates.
func MD1SystemT(edgeRates, serviceRates []float64, totalArrival float64) (float64, error) {
	num, err := queueing.MD1SystemNumber(edgeRates, serviceRates)
	if err != nil {
		return math.Inf(1), err
	}
	return queueing.LittleT(num, totalArrival), nil
}

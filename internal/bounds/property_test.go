package bounds

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// Property-based tests over random (n, ρ) points: the orderings and
// identities the paper's argument chain depends on must hold everywhere in
// the stable region, not just at the spot-checked values.

func decodeParams(rawN, rawRho uint8) (n int, lambda float64) {
	n = int(rawN%18) + 2                     // n in [2, 19]
	rho := 0.02 + 0.96*float64(rawRho)/255.0 // rho in [0.02, 0.98]
	return n, LambdaForLoad(n, rho)
}

func TestPropertyBoundChain(t *testing.T) {
	f := func(rawN, rawRho uint8) bool {
		n, lambda := decodeParams(rawN, rawRho)
		low := BestLowerBound(n, lambda)
		md := MD1ApproxT(n, lambda)
		up := UpperBoundT(n, lambda)
		pe := PaperEstimateT(n, lambda)
		return low <= md+1e-9 &&
			md <= up+1e-9 &&
			up <= 2*md+1e-9 && // Lemma 9
			pe <= md+1e-9 && // paper's estimate subtracts u/2 per queue
			low >= MeanDist(n)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBoundsMonotoneInLoad(t *testing.T) {
	// All delay quantities are nondecreasing in λ at fixed n.
	f := func(rawN, rawA, rawB uint8) bool {
		n := int(rawN%18) + 2
		la := LambdaForLoad(n, 0.02+0.9*float64(rawA)/255.0)
		lb := LambdaForLoad(n, 0.02+0.9*float64(rawB)/255.0)
		if la > lb {
			la, lb = lb, la
		}
		return UpperBoundT(n, la) <= UpperBoundT(n, lb)+1e-9 &&
			MD1ApproxT(n, la) <= MD1ApproxT(n, lb)+1e-9 &&
			Thm12LowerBound(n, la) <= Thm12LowerBound(n, lb)+1e-9 &&
			STLowerBoundOblivious(n, la) <= STLowerBoundOblivious(n, lb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEdgeRateSymmetries(t *testing.T) {
	// The Theorem 6 rate field has the array's symmetries: reflecting
	// left/right or up/down maps edges to edges of equal rate, and the sum
	// of rates equals n̄·λn².
	f := func(rawN uint8) bool {
		n := int(rawN%10) + 2
		a := topology.NewArray2D(n)
		lambda := 0.1
		sum := 0.0
		for e := 0; e < a.NumEdges(); e++ {
			r, c, d := a.EdgeInfo(e)
			rate := EdgeRate(a, e, lambda)
			sum += rate
			// Mirror horizontally: (r, c, Right) <-> (r, n-1-c, Left).
			var me int
			var ok bool
			switch d {
			case topology.Right:
				me, ok = a.EdgeIn(r, n-1-c, topology.Left)
			case topology.Left:
				me, ok = a.EdgeIn(r, n-1-c, topology.Right)
			case topology.Down:
				me, ok = a.EdgeIn(n-1-r, c, topology.Up)
			default:
				me, ok = a.EdgeIn(n-1-r, c, topology.Down)
			}
			if !ok || math.Abs(EdgeRate(a, me, lambda)-rate) > 1e-12 {
				return false
			}
		}
		want := MeanDist(n) * lambda * float64(n*n)
		return math.Abs(sum-want) < 1e-9*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLoadConversionRoundTrip(t *testing.T) {
	f := func(rawN, rawRho uint8) bool {
		n := int(rawN%30) + 2
		rho := float64(rawRho) / 256.0
		return math.Abs(Load(n, LambdaForLoad(n, rho))-rho) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyRectGeneralizesSquare(t *testing.T) {
	f := func(rawN, rawRho uint8) bool {
		n := int(rawN%12) + 2
		rho := 0.02 + 0.9*float64(rawRho)/255.0
		lambda := LambdaForLoad(n, rho)
		return math.Abs(RectUpperBoundT(n, n, lambda)-UpperBoundT(n, lambda)) < 1e-9 &&
			math.Abs(RectMD1ApproxT(n, n, lambda)-MD1ApproxT(n, lambda)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCubeDBarMatchesEnumeration validates the hypercube's closed-form
// maximum expected remaining distance d̄ = 1 + p(d-1) by brute force: a
// packet queued to cross dimension k has, conditional on that crossing,
// each later dimension still to fix independently with probability p, so
// d_k = 1 + p(d-1-k), maximized at k = 0.
func TestCubeDBarMatchesEnumeration(t *testing.T) {
	for _, d := range []int{2, 4, 6} {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			dbar := 0.0
			for k := 0; k < d; k++ {
				// Enumerate destination masks with bit k set, weighting by
				// the Bernoulli(p) law restricted to that event.
				condSum, condWeight := 0.0, 0.0
				for mask := 0; mask < 1<<d; mask++ {
					if mask&(1<<k) == 0 {
						continue
					}
					w := 1.0
					remaining := 0
					for bit := 0; bit < d; bit++ {
						if mask&(1<<bit) != 0 {
							w *= p
							if bit >= k {
								remaining++
							}
						} else {
							w *= 1 - p
						}
					}
					condSum += w * float64(remaining)
					condWeight += w
				}
				if dk := condSum / condWeight; dk > dbar {
					dbar = dk
				}
			}
			if math.Abs(dbar-CubeDBar(d, p)) > 1e-9 {
				t.Errorf("d=%d p=%v: enumerated d̄ = %v, closed form %v", d, p, dbar, CubeDBar(d, p))
			}
		}
	}
}

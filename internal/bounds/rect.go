package bounds

import "math"

// This file carries the paper's remark that "rectangular arrays are easily
// handled similarly" to its conclusion: the Theorem 6/7 machinery for an
// nr×nc mesh (nr rows of length nc). Horizontal edges see the column-axis
// rates (λ/nc)·j(nc-j); vertical edges see (λ/nr)·i(nr-i); everything else
// follows the square case with the two axes summed separately. These forms
// are validated against exhaustive route enumeration in the tests.

// RectMeanDist returns n̄ for the nr×nc array with uniform destinations:
// (nc²-1)/(3nc) + (nr²-1)/(3nr).
func RectMeanDist(nr, nc int) float64 {
	r, c := float64(nr), float64(nc)
	return (c*c-1)/(3*c) + (r*r-1)/(3*r)
}

// RectLoad returns ρ = λ·max(⌊nc²/4⌋/nc, ⌊nr²/4⌋/nr): the longer axis
// saturates first.
func RectLoad(nr, nc int, lambda float64) float64 {
	h := float64(nc*nc/4) / float64(nc)
	v := float64(nr*nr/4) / float64(nr)
	return lambda * math.Max(h, v)
}

// RectStabilityLimit returns the largest stable per-node rate.
func RectStabilityLimit(nr, nc int) float64 {
	return 1 / (RectLoad(nr, nc, 1))
}

// rectSum evaluates (1/(λ·nr·nc))·Σ_e f(λ_e): for each horizontal index
// j ∈ [1,nc) there are 2nr edges at rate λj(nc-j)/nc, and for each vertical
// index i ∈ [1,nr) there are 2nc edges at rate λi(nr-i)/nr.
func rectSum(nr, nc int, lambda float64, f func(float64) float64) float64 {
	if lambda == 0 {
		return RectMeanDist(nr, nc)
	}
	total := 0.0
	for j := 1; j < nc; j++ {
		total += 2 * float64(nr) * f(lambda*float64(j*(nc-j))/float64(nc))
	}
	for i := 1; i < nr; i++ {
		total += 2 * float64(nc) * f(lambda*float64(i*(nr-i))/float64(nr))
	}
	return total / (lambda * float64(nr*nc))
}

// RectUpperBoundT returns the Theorem 7 upper bound for the nr×nc array.
func RectUpperBoundT(nr, nc int, lambda float64) float64 {
	return rectSum(nr, nc, lambda, mm1Number)
}

// RectMD1ApproxT returns the §4.2 estimate for the nr×nc array.
func RectMD1ApproxT(nr, nc int, lambda float64) float64 {
	return rectSum(nr, nc, lambda, md1Number)
}

// RectDBar returns the maximum expected remaining distance: a corner packet
// heading along its row has nc/2 expected hops left on the row axis plus
// (nr-1)/2 on the column axis — or the transpose, whichever is larger.
func RectDBar(nr, nc int) float64 {
	a := float64(nc)/2 + float64(nr-1)/2
	b := float64(nr)/2 + float64(nc-1)/2
	return math.Max(a, b)
}

// RectThm12LowerBound returns T ≥ T_md1/d̄ for the rectangle.
func RectThm12LowerBound(nr, nc int, lambda float64) float64 {
	return RectMD1ApproxT(nr, nc, lambda) / RectDBar(nr, nc)
}

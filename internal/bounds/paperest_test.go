package bounds

import (
	"math"
	"testing"
)

// TestPaperEstimateReproducesTableIEstColumn checks the recovered estimate
// formula against every published value of Table I's "Est" column. This is
// the strongest available validation that our formula-level reproduction
// matches the paper's computations.
func TestPaperEstimateReproducesTableIEstColumn(t *testing.T) {
	cases := []struct {
		n    int
		rho  float64
		want float64
	}{
		{5, 0.2, 3.256}, {5, 0.5, 3.722}, {5, 0.8, 5.984},
		{5, 0.9, 8.970}, {5, 0.95, 12.877}, {5, 0.99, 21.384},
		{10, 0.2, 6.711}, {10, 0.5, 7.641}, {10, 0.8, 12.183},
		{10, 0.9, 18.444}, {10, 0.95, 28.014}, {10, 0.99, 77.309},
		{15, 0.2, 10.123}, {15, 0.5, 11.518}, {15, 0.8, 18.329},
		{15, 0.9, 27.718}, {15, 0.95, 41.990}, {15, 0.99, 103.312},
		{20, 0.2, 13.523}, {20, 0.5, 15.383}, {20, 0.8, 24.465},
		{20, 0.9, 36.983}, {20, 0.95, 56.015}, {20, 0.99, 141.127},
	}
	for _, c := range cases {
		got := PaperEstimateT(c.n, LambdaTable(c.n, c.rho))
		if math.Abs(got-c.want) > 0.002*c.want+0.001 {
			t.Errorf("n=%d rho=%v: PaperEstimateT = %.4f, published %.3f", c.n, c.rho, got, c.want)
		}
	}
}

func TestPaperEstimateProperties(t *testing.T) {
	// Same λ→0 limit as the other estimates, +Inf at capacity, and below
	// the standard M/D/1 estimate (it subtracts u/2 per queue visit).
	for _, n := range []int{4, 5, 10} {
		if math.Abs(PaperEstimateT(n, 0)-MeanDist(n)) > 1e-12 {
			t.Errorf("n=%d: PaperEstimateT(0) != n̄", n)
		}
		lambda := LambdaTable(n, 0.9)
		if PaperEstimateT(n, lambda) >= MD1ApproxT(n, lambda) {
			t.Errorf("n=%d: paper estimate not below standard M/D/1 estimate", n)
		}
		if !math.IsInf(PaperEstimateT(n, LambdaForLoad(n, 1)), 1) {
			t.Errorf("n=%d: paper estimate finite at capacity", n)
		}
	}
}

func TestLambdaTableConvention(t *testing.T) {
	if math.Abs(LambdaTable(10, 0.5)-0.2) > 1e-12 {
		t.Error("LambdaTable(10, 0.5)")
	}
	// For even n the table convention equals the exact conversion.
	if math.Abs(LambdaTable(8, 0.7)-LambdaForLoad(8, 0.7)) > 1e-12 {
		t.Error("even-n conventions disagree")
	}
	// For odd n it is slightly below the exact conversion.
	if LambdaTable(5, 0.7) >= LambdaForLoad(5, 0.7) {
		t.Error("odd-n table rate should be below the exact rate")
	}
}

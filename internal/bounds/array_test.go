package bounds

import (
	"math"
	"testing"

	"repro/internal/queueing"
	"repro/internal/routing"
	"repro/internal/topology"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanDist(t *testing.T) {
	// n̄ = (2/3)(n - 1/n) and n̄₂ = 2n/3 (checked against enumeration in
	// routing tests; here check the closed forms directly).
	if !almost(MeanDist(5), 2.0/3.0*(5-0.2), 1e-12) {
		t.Error("MeanDist(5)")
	}
	if !almost(MeanDistExcl(10), 20.0/3.0, 1e-12) {
		t.Error("MeanDistExcl(10)")
	}
}

func TestStabilityLimits(t *testing.T) {
	// Even n: 4/n. Odd n: 4n/(n²-1).
	if !almost(StabilityLimit(10), 0.4, 1e-12) {
		t.Errorf("StabilityLimit(10) = %v", StabilityLimit(10))
	}
	if !almost(StabilityLimit(5), 20.0/24.0, 1e-12) {
		t.Errorf("StabilityLimit(5) = %v", StabilityLimit(5))
	}
	// Load and LambdaForLoad are inverses.
	for _, n := range []int{4, 5, 10, 15} {
		for _, rho := range []float64{0.1, 0.5, 0.99} {
			l := LambdaForLoad(n, rho)
			if !almost(Load(n, l), rho, 1e-12) {
				t.Errorf("n=%d rho=%v: Load(LambdaForLoad) = %v", n, rho, Load(n, l))
			}
		}
	}
	// Optimal configuration: 6/(n+1), strictly above the standard limit.
	for _, n := range []int{4, 5, 8, 15, 20} {
		if OptimalStabilityLimit(n) <= StabilityLimit(n) {
			t.Errorf("n=%d: optimal limit %v not above standard %v",
				n, OptimalStabilityLimit(n), StabilityLimit(n))
		}
	}
	if !almost(OptimalStabilityLimit(5), 1, 1e-12) {
		t.Errorf("OptimalStabilityLimit(5) = %v", OptimalStabilityLimit(5))
	}
}

func TestEdgeRatesMatchEnumeration(t *testing.T) {
	// Theorem 6 closed forms must equal brute-force route counting.
	for _, n := range []int{3, 4, 5, 8} {
		a := topology.NewArray2D(n)
		lambda := 0.37
		exact := ExactEdgeRates(a, routing.GreedyXY{A: a}, lambda, UniformDist(a), nil)
		for e := 0; e < a.NumEdges(); e++ {
			want := EdgeRate(a, e, lambda)
			if !almost(exact[e], want, 1e-9) {
				r, c, d := a.EdgeInfo(e)
				t.Fatalf("n=%d edge (%d,%d,%v): enumerated %v, Theorem 6 gives %v",
					n, r, c, d, exact[e], want)
			}
		}
	}
}

func TestEdgeRatesSumToMeanDistTimesArrival(t *testing.T) {
	// Σ_e λ_e = n̄·λn² (each packet contributes one arrival per hop).
	for _, n := range []int{4, 7} {
		a := topology.NewArray2D(n)
		lambda := 0.2
		sum := 0.0
		for _, r := range EdgeRates(a, lambda) {
			sum += r
		}
		want := MeanDist(n) * lambda * float64(n*n)
		if !almost(sum, want, 1e-9) {
			t.Errorf("n=%d: Σλ_e = %v, want %v", n, sum, want)
		}
	}
}

func TestTrafficEquationsReproduceRates(t *testing.T) {
	// The routing-chain view (λ = a + λP) must agree with direct counting.
	a := topology.NewArray2D(5)
	lambda := 0.5
	tr := BuildTraffic(a, routing.GreedyXY{A: a}, lambda, UniformDist(a), nil)
	solved, err := tr.SolveIterative(1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	direct := ExactEdgeRates(a, routing.GreedyXY{A: a}, lambda, UniformDist(a), nil)
	for e := range solved {
		if !almost(solved[e], direct[e], 1e-8) {
			t.Fatalf("edge %d: traffic equations %v vs direct %v", e, solved[e], direct[e])
		}
	}
}

func TestUpperBoundMatchesJacksonEvaluation(t *testing.T) {
	// Theorem 7's closed form must equal the generic product-form formula
	// applied to the Theorem 6 rate vector.
	for _, n := range []int{4, 5, 10} {
		a := topology.NewArray2D(n)
		lambda := 0.8 * StabilityLimit(n)
		rates := EdgeRates(a, lambda)
		phi := make([]float64, len(rates))
		for j := range phi {
			phi[j] = 1
		}
		want, err := JacksonT(rates, phi, lambda*float64(n*n))
		if err != nil {
			t.Fatal(err)
		}
		got := UpperBoundT(n, lambda)
		if !almost(got, want, 1e-9) {
			t.Errorf("n=%d: UpperBoundT = %v, Jackson eval = %v", n, got, want)
		}
	}
}

func TestMD1ApproxMatchesSystemEvaluation(t *testing.T) {
	for _, n := range []int{4, 5, 10} {
		a := topology.NewArray2D(n)
		lambda := 0.9 * StabilityLimit(n)
		rates := EdgeRates(a, lambda)
		phi := make([]float64, len(rates))
		for j := range phi {
			phi[j] = 1
		}
		want, err := MD1SystemT(rates, phi, lambda*float64(n*n))
		if err != nil {
			t.Fatal(err)
		}
		got := MD1ApproxT(n, lambda)
		if !almost(got, want, 1e-9) {
			t.Errorf("n=%d: MD1ApproxT = %v, system eval = %v", n, got, want)
		}
	}
}

func TestBoundOrdering(t *testing.T) {
	// Everywhere in the stable region: every lower bound <= MD1 approx <=
	// upper bound, and upper <= 2×MD1 (Lemma 9).
	for _, n := range []int{4, 5, 10, 15} {
		for _, rho := range []float64{0.05, 0.3, 0.6, 0.9, 0.99} {
			lambda := LambdaForLoad(n, rho)
			up := UpperBoundT(n, lambda)
			md := MD1ApproxT(n, lambda)
			low := BestLowerBound(n, lambda)
			if !(low <= md+1e-9 && md <= up+1e-9) {
				t.Errorf("n=%d rho=%v: ordering violated: low %v, md1 %v, up %v", n, rho, low, md, up)
			}
			if up > 2*md+1e-9 {
				t.Errorf("n=%d rho=%v: Lemma 9 violated: up %v > 2×md1 %v", n, rho, up, md)
			}
			if low < MeanDist(n)-1e-12 {
				t.Errorf("n=%d: lower bound below trivial n̄", n)
			}
		}
	}
}

func TestUpperBoundLowLoadLimit(t *testing.T) {
	// As λ→0 both the upper bound and the approximation approach n̄.
	for _, n := range []int{4, 9} {
		if !almost(UpperBoundT(n, 0), MeanDist(n), 1e-12) {
			t.Errorf("n=%d: UpperBoundT(0) != n̄", n)
		}
		if !almost(MD1ApproxT(n, 0), MeanDist(n), 1e-12) {
			t.Errorf("n=%d: MD1ApproxT(0) != n̄", n)
		}
		tiny := 1e-9
		if !almost(UpperBoundT(n, tiny), MeanDist(n), 1e-6) {
			t.Errorf("n=%d: UpperBoundT(ε) far from n̄", n)
		}
	}
}

func TestUnstableIsInfinite(t *testing.T) {
	n := 6
	lambda := StabilityLimit(n)
	if !math.IsInf(UpperBoundT(n, lambda), 1) {
		t.Error("UpperBoundT at capacity should be +Inf")
	}
	if !math.IsInf(MD1ApproxT(n, lambda*1.01), 1) {
		t.Error("MD1ApproxT above capacity should be +Inf")
	}
	if !math.IsInf(STLowerBoundAny(n, lambda), 1) {
		t.Error("Thm 8 at capacity should be +Inf")
	}
	if !math.IsInf(Thm14LowerBound(n, lambda), 1) {
		t.Error("Thm 14 at capacity should be +Inf")
	}
}

func TestSTLowerFactor(t *testing.T) {
	if STLowerFactor(6) != 0.5 {
		t.Error("even factor")
	}
	if !almost(STLowerFactor(5), 0.5-1.0/25, 1e-12) {
		t.Error("odd factor")
	}
	// Oblivious bound dominates the any-scheme bound (greedy is oblivious).
	for _, rho := range []float64{0.3, 0.9} {
		n := 8
		lambda := LambdaForLoad(n, rho)
		if STLowerBoundOblivious(n, lambda) < STLowerBoundAny(n, lambda) {
			t.Error("oblivious bound weaker than general bound")
		}
	}
}

func TestDBarMatchesEnumeration(t *testing.T) {
	// Definition 11's d̄ = n - 1/2, achieved at a corner heading along the
	// row; the exact per-edge enumeration must agree.
	for _, n := range []int{2, 3, 4, 5, 8, 13} {
		a := topology.NewArray2D(n)
		rem := ExpectedRemaining(a)
		dbar := 0.0
		argmax := -1
		for e, v := range rem {
			if v > dbar {
				dbar, argmax = v, e
			}
		}
		if !almost(dbar, DBar(n), 1e-9) {
			t.Errorf("n=%d: enumerated d̄ = %v, want %v", n, dbar, DBar(n))
		}
		// The maximizer should be a corner-row edge, e.g. (1,1) heading
		// right (paper) — in 0-based terms a horizontal edge at a corner
		// with the full row left to travel.
		r, c, d := a.EdgeInfo(argmax)
		if d != topology.Right && d != topology.Left {
			t.Errorf("n=%d: d̄ achieved on %v edge at (%d,%d), want horizontal", n, d, r, c)
		}
	}
}

func TestExpectedRemainingAllPositive(t *testing.T) {
	a := topology.NewArray2D(6)
	for e, v := range ExpectedRemaining(a) {
		if v < 1 {
			// Every queued packet needs at least its current service.
			t.Fatalf("edge %d: d_e = %v < 1", e, v)
		}
	}
}

func TestSaturatedEdges(t *testing.T) {
	// Even n: 4n saturated edges; odd n >= 5: 8n.
	for _, tc := range []struct{ n, want int }{
		{4, 16}, {6, 24}, {10, 40}, {5, 40}, {7, 56}, {3, 24},
	} {
		if got := NumSaturatedEdges(tc.n); got != tc.want {
			t.Errorf("n=%d: NumSaturatedEdges = %d, want %d", tc.n, got, tc.want)
		}
		a := topology.NewArray2D(tc.n)
		count := 0
		for _, s := range SaturatedEdges(a) {
			if s {
				count++
			}
		}
		if count != tc.want {
			t.Errorf("n=%d: SaturatedEdges marks %d, want %d", tc.n, count, tc.want)
		}
	}
}

func TestMaxSaturatedCrossings(t *testing.T) {
	// Figure 2: at most 2 saturated edges per route for even n, 4 for odd.
	for _, tc := range []struct{ n, want int }{
		{4, 2}, {6, 2}, {10, 2}, {20, 2},
		{5, 4}, {7, 4}, {15, 4}, {3, 4},
	} {
		if got := MaxSaturatedCrossings(tc.n); got != tc.want {
			t.Errorf("n=%d: MaxSaturatedCrossings = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestMaxSaturatedCrossingsMatchesRouteScan(t *testing.T) {
	// The axis decomposition must agree with counting saturated edges on
	// full greedy routes.
	for _, n := range []int{4, 5, 6, 7} {
		a := topology.NewArray2D(n)
		sat := SaturatedEdges(a)
		g := routing.GreedyXY{A: a}
		var buf []int
		maxCount := 0
		for src := 0; src < a.NumNodes(); src++ {
			for dst := 0; dst < a.NumNodes(); dst++ {
				buf = g.AppendRoute(buf[:0], src, dst, nil)
				count := 0
				for _, e := range buf {
					if sat[e] {
						count++
					}
				}
				if count > maxCount {
					maxCount = count
				}
			}
		}
		if maxCount != MaxSaturatedCrossings(n) {
			t.Errorf("n=%d: route scan max %d != axis computation %d",
				n, maxCount, MaxSaturatedCrossings(n))
		}
	}
}

func TestSBar(t *testing.T) {
	// s̄ = 3/2 exactly for even n; < 3 for odd n, approaching 3.
	for _, n := range []int{4, 6, 10, 20} {
		if !almost(SBar(n), 1.5, 1e-9) {
			t.Errorf("n=%d: s̄ = %v, want 1.5", n, SBar(n))
		}
	}
	prev := 0.0
	for _, n := range []int{5, 9, 15, 25, 41} {
		s := SBar(n)
		if s >= 3 {
			t.Errorf("n=%d: s̄ = %v, want < 3", n, s)
		}
		if s < prev {
			t.Errorf("n=%d: odd-n s̄ = %v not increasing toward 3 (prev %v)", n, s, prev)
		}
		prev = s
	}
	if prev < 2.5 {
		t.Errorf("odd-n s̄ should approach 3; at n=41 got %v", prev)
	}
}

func TestGapLimit(t *testing.T) {
	// As ρ→1 the ratio upper/Thm14 must approach 2s̄ = 3 (even), <= 6 (odd).
	for _, n := range []int{6, 10} {
		if !almost(GapLimit(n), 3, 1e-9) {
			t.Errorf("n=%d: GapLimit = %v, want 3", n, GapLimit(n))
		}
	}
	for _, n := range []int{5, 9} {
		if g := GapLimit(n); g >= 6 {
			t.Errorf("n=%d: GapLimit = %v, want < 6", n, g)
		}
	}
	for _, n := range []int{6, 9} {
		ratioAt := func(rho float64) float64 {
			lambda := LambdaForLoad(n, rho)
			return UpperBoundT(n, lambda) / Thm14LowerBound(n, lambda)
		}
		r999 := ratioAt(0.999)
		if math.Abs(r999-GapLimit(n)) > 0.15*GapLimit(n) {
			t.Errorf("n=%d: ratio at rho=0.999 is %v, want near %v", n, r999, GapLimit(n))
		}
		// Convergence: closer at 0.999 than at 0.9.
		if math.Abs(ratioAt(0.9)-GapLimit(n)) < math.Abs(r999-GapLimit(n)) {
			t.Errorf("n=%d: gap ratio not converging to limit", n)
		}
	}
}

func TestThm12TightensThm10(t *testing.T) {
	for _, n := range []int{4, 5, 10} {
		lambda := 0.9 * StabilityLimit(n)
		if Thm12LowerBound(n, lambda) <= Thm10LowerBound(n, lambda) {
			t.Errorf("n=%d: Thm 12 does not improve on Thm 10", n)
		}
		// The improvement factor is d/d̄ = 2(n-1)/(n-1/2) < 2.
		ratio := Thm12LowerBound(n, lambda) / Thm10LowerBound(n, lambda)
		want := float64(MaxRouteLen(n)) / DBar(n)
		if !almost(ratio, want, 1e-9) {
			t.Errorf("n=%d: improvement ratio %v, want %v", n, ratio, want)
		}
	}
}

func TestOptimalAllocationStabilityWindow(t *testing.T) {
	// With the standard budget, Theorem 15's allocation is feasible exactly
	// for lambda < 6/(n+1).
	for _, n := range []int{4, 5, 8, 9} {
		a := topology.NewArray2D(n)
		limit := OptimalStabilityLimit(n)
		if _, dstar, err := ArrayOptimalAllocation(a, 0.99*limit, StandardBudget(n)); err != nil || dstar <= 0 {
			t.Errorf("n=%d: allocation infeasible just below 6/(n+1): %v", n, err)
		}
		if _, _, err := ArrayOptimalAllocation(a, 1.01*limit, StandardBudget(n)); err == nil {
			t.Errorf("n=%d: allocation feasible above 6/(n+1)", n)
		}
	}
}

func TestOptimalBeatsStandardNearCapacity(t *testing.T) {
	// Above the standard stability limit but below 6/(n+1) the optimal
	// network is stable while the standard one is not; below the standard
	// limit the optimal Jackson delay is no worse.
	n := 8
	a := topology.NewArray2D(n)
	lambda := 0.5 * (StabilityLimit(n) + OptimalStabilityLimit(n)) // between limits
	if !math.IsInf(UpperBoundT(n, lambda), 1) {
		t.Fatal("standard array should be unstable here")
	}
	topt, err := ArrayOptimalT(a, lambda, StandardBudget(n))
	if err != nil || math.IsInf(topt, 1) {
		t.Fatalf("optimal array should be stable here: T=%v err=%v", topt, err)
	}
	lambda = 0.9 * StabilityLimit(n)
	topt, err = ArrayOptimalT(a, lambda, StandardBudget(n))
	if err != nil {
		t.Fatal(err)
	}
	tstd, err := ArrayStandardT(a, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if topt > tstd {
		t.Errorf("optimal T %v worse than standard T %v", topt, tstd)
	}
}

func TestOptimalTMatchesJacksonAtOptimum(t *testing.T) {
	n := 6
	a := topology.NewArray2D(n)
	lambda := 0.8 * StabilityLimit(n)
	phi, _, err := ArrayOptimalAllocation(a, lambda, StandardBudget(n))
	if err != nil {
		t.Fatal(err)
	}
	rates := EdgeRates(a, lambda)
	direct, err := JacksonT(rates, phi, lambda*float64(n*n))
	if err != nil {
		t.Fatal(err)
	}
	closed, err := ArrayOptimalT(a, lambda, StandardBudget(n))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(direct, closed, 1e-9) {
		t.Errorf("closed form %v != Jackson at optimum %v", closed, direct)
	}
	// Budget exactly spent.
	spent := 0.0
	for _, p := range phi {
		spent += p
	}
	if !almost(spent, StandardBudget(n), 1e-6) {
		t.Errorf("budget spent %v != %v", spent, StandardBudget(n))
	}
}

func TestVerifyLayering(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8, 12} {
		if err := VerifyLayering(n); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestRenderFigures(t *testing.T) {
	// The renders should mention the right counts and not be empty.
	fig1 := RenderLayering(4)
	if len(fig1) < 50 {
		t.Error("Figure 1 render too short")
	}
	fig2even := RenderSaturated(4)
	fig2odd := RenderSaturated(5)
	if len(fig2even) < 50 || len(fig2odd) < 50 {
		t.Error("Figure 2 render too short")
	}
	if !containsAll(fig2even, "even", "max 2") {
		t.Errorf("even render missing markers:\n%s", fig2even)
	}
	if !containsAll(fig2odd, "odd", "max 4") {
		t.Errorf("odd render missing markers:\n%s", fig2odd)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !contains(s, sub) {
			return false
		}
	}
	return true
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMeanRouteLenGeneral(t *testing.T) {
	a := topology.NewArray2D(6)
	got := MeanRouteLen(a, routing.GreedyXY{A: a}, UniformDist(a), nil)
	if !almost(got, MeanDist(6), 1e-9) {
		t.Errorf("MeanRouteLen = %v, want %v", got, MeanDist(6))
	}
}

func TestJacksonTErrors(t *testing.T) {
	if _, err := JacksonT([]float64{2}, []float64{1}, 1); err == nil {
		t.Error("unstable JacksonT accepted")
	}
	if _, err := MD1SystemT([]float64{2}, []float64{1}, 1); err == nil {
		t.Error("unstable MD1SystemT accepted")
	}
}

// Guard against accidental changes to the queueing package invariants this
// package depends on.
func TestLemma9AtSingleQueue(t *testing.T) {
	for _, u := range []float64{0.1, 0.5, 0.9, 0.99} {
		mm, _ := queueing.MM1Number(u, 1)
		md, _ := queueing.MD1Number(u, 1)
		if mm < md || mm > 2*md {
			t.Errorf("u=%v: Lemma 9 sandwich violated (%v vs %v)", u, mm, md)
		}
	}
}

package bounds

import "math"

// This file holds the paper's bound formulas for the non-array topologies:
// the hypercube and butterfly of §4.5, the k-dimensional array of §5.2, and
// the torus of §6.

// --- Hypercube (dimension d, Bernoulli(p) destination distribution) ---

// CubeMeanDist returns the mean route length d·p on the d-cube when each
// destination bit differs with probability p.
func CubeMeanDist(d int, p float64) float64 { return float64(d) * p }

// CubeEdgeRate returns the arrival rate λ·p carried by every directed cube
// edge (all edges are symmetric).
func CubeEdgeRate(lambda, p float64) float64 { return lambda * p }

// CubeStabilityLimit returns the largest stable per-node arrival rate, 1/p.
func CubeStabilityLimit(p float64) float64 { return 1 / p }

// CubeUpperBoundT returns the Theorem 7 analogue for the cube:
// T ≤ d·p/(1 - λp).
func CubeUpperBoundT(d int, p, lambda float64) float64 {
	u := lambda * p
	if u >= 1 {
		return math.Inf(1)
	}
	if lambda == 0 {
		return CubeMeanDist(d, p)
	}
	return float64(d) * mm1Number(u) / lambda
}

// CubeMD1ApproxT returns the §4.2 independence approximation for the cube:
// T ≈ d·N_MD1(λp)/λ.
func CubeMD1ApproxT(d int, p, lambda float64) float64 {
	if lambda == 0 {
		return CubeMeanDist(d, p)
	}
	return float64(d) * md1Number(lambda*p) / lambda
}

// CubeDBar returns the cube's maximum expected remaining distance
// d̄ = 1 + p(d-1), achieved by a packet queued to cross the first dimension.
func CubeDBar(d int, p float64) float64 { return 1 + p*float64(d-1) }

// CubeThm10LowerBound returns T ≥ T_md1/d (Theorem 10; d services max).
func CubeThm10LowerBound(d int, p, lambda float64) float64 {
	return CubeMD1ApproxT(d, p, lambda) / float64(d)
}

// CubeThm12LowerBound returns T ≥ T_md1/d̄ (Theorem 12, Markovian).
func CubeThm12LowerBound(d int, p, lambda float64) float64 {
	return CubeMD1ApproxT(d, p, lambda) / CubeDBar(d, p)
}

// CubeGapLimit returns the paper's improved limiting upper/lower ratio as
// ρ→1: 2(dp + 1 - p), which is below the Stamoulis–Tsitsiklis factor 2d for
// all p in (0,1), approaches 2 as p → 0, and equals d+1 at p = 1/2.
func CubeGapLimit(d int, p float64) float64 { return 2 * (float64(d)*p + 1 - p) }

// CubeSTGapLimit returns the previous (Stamoulis–Tsitsiklis) limiting
// ratio, 2d, for comparison.
func CubeSTGapLimit(d int) float64 { return 2 * float64(d) }

// --- Butterfly (d levels) ---

// ButterflyMeanDist returns d: every packet crosses exactly d edges.
func ButterflyMeanDist(d int) float64 { return float64(d) }

// ButterflyEdgeRate returns λ/2, carried by every butterfly edge; all
// queues saturate together, which is why Theorem 14 cannot improve on
// Theorem 10 here.
func ButterflyEdgeRate(lambda float64) float64 { return lambda / 2 }

// ButterflyStabilityLimit returns 2, the largest stable per-input rate.
func ButterflyStabilityLimit() float64 { return 2 }

// ButterflyUpperBoundT returns T ≤ 2d/(2-λ) (Jackson form).
func ButterflyUpperBoundT(d int, lambda float64) float64 {
	u := lambda / 2
	if u >= 1 {
		return math.Inf(1)
	}
	if lambda == 0 {
		return float64(d)
	}
	return 2 * float64(d) * mm1Number(u) / lambda
}

// ButterflyMD1ApproxT returns T ≈ 2d·N_MD1(λ/2)/λ.
func ButterflyMD1ApproxT(d int, lambda float64) float64 {
	if lambda == 0 {
		return float64(d)
	}
	return 2 * float64(d) * md1Number(lambda/2) / lambda
}

// ButterflyThm10LowerBound returns T ≥ T_md1/d; with Lemma 9 this puts the
// lower bound within 2d of the upper bound, matching Stamoulis–Tsitsiklis.
func ButterflyThm10LowerBound(d int, lambda float64) float64 {
	return ButterflyMD1ApproxT(d, lambda) / float64(d)
}

// ButterflyGapLimit returns 2d.
func ButterflyGapLimit(d int) float64 { return 2 * float64(d) }

// --- k-dimensional array (§5.2), side n per dimension ---

// KDMeanDist returns k·(n²-1)/(3n), the k-dimensional n̄.
func KDMeanDist(k, n int) float64 {
	nn := float64(n)
	return float64(k) * (nn*nn - 1) / (3 * nn)
}

// KDLoad returns ρ = λ·⌊n²/4⌋/n; the per-dimension Theorem 6 rates carry
// over unchanged because greedy fixes dimensions one at a time.
func KDLoad(n int, lambda float64) float64 { return Load(n, lambda) }

// KDStabilityLimit matches the 2-D threshold: 4/n (even), 4n/(n²-1) (odd).
func KDStabilityLimit(n int) float64 { return StabilityLimit(n) }

// kdSumOverRates evaluates (2k/(λn))·Σ_{i=1}^{n-1} f(r_i): the k-dimensional
// array has 2k·n^{k-1} edges of each rate index and Λ = λn^k.
func kdSumOverRates(k, n int, lambda float64, f func(float64) float64) float64 {
	if lambda == 0 {
		return KDMeanDist(k, n)
	}
	total := 0.0
	for i := 1; i < n; i++ {
		total += f(lambda * float64(i*(n-i)) / float64(n))
	}
	return 2 * float64(k) / (lambda * float64(n)) * total
}

// KDUpperBoundT returns the Theorem 7 analogue for the k-dimensional array.
func KDUpperBoundT(k, n int, lambda float64) float64 {
	return kdSumOverRates(k, n, lambda, mm1Number)
}

// KDMD1ApproxT returns the §4.2 approximation for the k-dimensional array.
func KDMD1ApproxT(k, n int, lambda float64) float64 {
	return kdSumOverRates(k, n, lambda, md1Number)
}

// KDDBar returns the k-dimensional maximum expected remaining distance,
// achieved by a corner packet queued on its first dimension: n/2 expected
// hops remain in that dimension (destination coordinate uniform over the
// other n-1 positions plus the current hop), and each of the k-1 later
// dimensions contributes (n-1)/2 (destination uniform over the full axis,
// current coordinate at the corner). So d̄ = n/2 + (k-1)(n-1)/2, which
// reduces to the paper's n - 1/2 at k = 2.
func KDDBar(k, n int) float64 {
	return float64(n)/2 + float64(k-1)*float64(n-1)/2
}

// KDThm12LowerBound returns T ≥ T_md1/d̄ for the k-dimensional array.
func KDThm12LowerBound(k, n int, lambda float64) float64 {
	return KDMD1ApproxT(k, n, lambda) / KDDBar(k, n)
}

// --- 2-D torus (§6) ---

// TorusMeanDist returns the torus mean route length: n/2 for even n,
// (n²-1)/(2n) for odd n (two axes of E[min ring distance]).
func TorusMeanDist(n int) float64 {
	if n%2 == 0 {
		return float64(n) / 2
	}
	nn := float64(n)
	return (nn*nn - 1) / (2 * nn)
}

// TorusPlusRate returns the arrival rate on every plus-direction (right or
// down) edge under shortest-way greedy routing with ties broken toward
// plus: λ(n+2)/8 for even n, λ(n²-1)/(8n) for odd n.
func TorusPlusRate(n int, lambda float64) float64 {
	if n%2 == 0 {
		return lambda * float64(n+2) / 8
	}
	nn := float64(n)
	return lambda * (nn*nn - 1) / (8 * nn)
}

// TorusMinusRate returns the arrival rate on every minus-direction edge:
// λ(n-2)/8 for even n (ties never go minus), equal to TorusPlusRate for
// odd n (no ties).
func TorusMinusRate(n int, lambda float64) float64 {
	if n%2 == 0 {
		return lambda * float64(n-2) / 8
	}
	return TorusPlusRate(n, lambda)
}

// TorusLoad returns ρ = max edge load = TorusPlusRate.
func TorusLoad(n int, lambda float64) float64 { return TorusPlusRate(n, lambda) }

// TorusStabilityLimit returns the largest stable per-node rate:
// 8/(n+2) for even n, 8n/(n²-1) for odd n — roughly twice the array's.
func TorusStabilityLimit(n int) float64 {
	if n%2 == 0 {
		return 8 / float64(n+2)
	}
	nn := float64(n)
	return 8 * nn / (nn*nn - 1)
}

// TorusMD1ApproxT returns the §4.2 approximation for the torus:
// T ≈ 2(N_MD1(r₊) + N_MD1(r₋))/λ. There is no Theorem 7 upper bound — the
// torus cannot be layered and its greedy routing is not Markovian, which is
// exactly the paper's open problem.
func TorusMD1ApproxT(n int, lambda float64) float64 {
	if lambda == 0 {
		return TorusMeanDist(n)
	}
	rp := TorusPlusRate(n, lambda)
	rm := TorusMinusRate(n, lambda)
	return 2 * (md1Number(rp) + md1Number(rm)) / lambda
}

// TorusMaxRouteLen returns d = 2⌊n/2⌋ for Theorem 10.
func TorusMaxRouteLen(n int) int { return 2 * (n / 2) }

// TorusThm10LowerBound returns T ≥ T_md1/d; Theorem 12 does not apply on
// the torus (non-Markovian routing), Theorem 10 does.
func TorusThm10LowerBound(n int, lambda float64) float64 {
	return TorusMD1ApproxT(n, lambda) / float64(TorusMaxRouteLen(n))
}

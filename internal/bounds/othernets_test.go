package bounds

import (
	"math"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
)

func TestCubeEdgeRateMatchesEnumeration(t *testing.T) {
	// All cube edges carry λp; check against route counting for p = 1/2
	// (uniform destinations), where each bit differs with probability 1/2.
	d := 4
	h := topology.NewHypercube(d)
	lambda := 0.6
	exact := ExactEdgeRates(h, routing.CubeGreedy{H: h}, lambda, UniformDist(h), nil)
	want := CubeEdgeRate(lambda, 0.5)
	for e, r := range exact {
		if !almost(r, want, 1e-9) {
			t.Fatalf("edge %d: rate %v, want %v", e, r, want)
		}
	}
}

func TestCubeBoundsOrderingAndGap(t *testing.T) {
	d := 8
	for _, p := range []float64{0.1, 0.5, 0.9} {
		for _, rho := range []float64{0.3, 0.9, 0.999} {
			lambda := rho / p
			up := CubeUpperBoundT(d, p, lambda)
			md := CubeMD1ApproxT(d, p, lambda)
			l10 := CubeThm10LowerBound(d, p, lambda)
			l12 := CubeThm12LowerBound(d, p, lambda)
			if !(l10 <= l12 && l12 <= md+1e-9 && md <= up+1e-9) {
				t.Errorf("d=%d p=%v rho=%v: ordering violated: %v %v %v %v", d, p, rho, l10, l12, md, up)
			}
		}
		// Gap limit improves on Stamoulis–Tsitsiklis for all p in (0,1).
		if CubeGapLimit(d, p) >= CubeSTGapLimit(d) {
			t.Errorf("p=%v: new gap %v not below 2d", p, CubeGapLimit(d, p))
		}
		// Empirical ratio near capacity approaches the limit.
		lambda := 0.999 / p
		ratio := CubeUpperBoundT(d, p, lambda) / CubeThm12LowerBound(d, p, lambda)
		if math.Abs(ratio-CubeGapLimit(d, p)) > 0.05*CubeGapLimit(d, p) {
			t.Errorf("p=%v: ratio %v, want near %v", p, ratio, CubeGapLimit(d, p))
		}
	}
	// p = 1/2 gives gap d+1 (the paper's "more usual case").
	if !almost(CubeGapLimit(d, 0.5), float64(d+1), 1e-12) {
		t.Errorf("CubeGapLimit(d,1/2) = %v, want %v", CubeGapLimit(d, 0.5), d+1)
	}
}

func TestCubeLowLoadLimits(t *testing.T) {
	if !almost(CubeUpperBoundT(6, 0.3, 0), CubeMeanDist(6, 0.3), 1e-12) {
		t.Error("cube upper bound at λ=0")
	}
	if !almost(CubeMD1ApproxT(6, 0.3, 0), CubeMeanDist(6, 0.3), 1e-12) {
		t.Error("cube approx at λ=0")
	}
	if !math.IsInf(CubeUpperBoundT(6, 0.5, 2.0), 1) {
		t.Error("cube unstable should be +Inf")
	}
	if !almost(CubeStabilityLimit(0.5), 2, 1e-12) {
		t.Error("cube stability limit")
	}
}

func TestButterflyEdgeRateMatchesEnumeration(t *testing.T) {
	d := 4
	b := topology.NewButterfly(d)
	lambda := 0.8
	exact := ExactEdgeRates(b, routing.ButterflyRoute{B: b}, lambda,
		UniformOverDist(b.OutputNodes()), b.OutputNodes())
	want := ButterflyEdgeRate(lambda)
	for e, r := range exact {
		if !almost(r, want, 1e-9) {
			t.Fatalf("edge %d: rate %v, want %v", e, r, want)
		}
	}
}

func TestButterflyBounds(t *testing.T) {
	d := 6
	for _, lambda := range []float64{0.5, 1.5, 1.99} {
		up := ButterflyUpperBoundT(d, lambda)
		md := ButterflyMD1ApproxT(d, lambda)
		low := ButterflyThm10LowerBound(d, lambda)
		if !(low <= md+1e-9 && md <= up+1e-9) {
			t.Errorf("λ=%v: ordering violated: %v %v %v", lambda, low, md, up)
		}
	}
	if !almost(ButterflyUpperBoundT(d, 0), float64(d), 1e-12) {
		t.Error("butterfly upper at λ=0")
	}
	if !math.IsInf(ButterflyUpperBoundT(d, 2), 1) {
		t.Error("butterfly at capacity should be +Inf")
	}
	// Near capacity the ratio approaches 2d.
	ratio := ButterflyUpperBoundT(d, 1.999) / ButterflyThm10LowerBound(d, 1.999)
	if math.Abs(ratio-ButterflyGapLimit(d)) > 0.05*ButterflyGapLimit(d) {
		t.Errorf("butterfly gap ratio %v, want near %v", ratio, ButterflyGapLimit(d))
	}
	if ButterflyStabilityLimit() != 2 {
		t.Error("butterfly stability limit")
	}
}

func TestKDReducesTo2D(t *testing.T) {
	for _, n := range []int{4, 5, 9} {
		lambda := 0.8 * StabilityLimit(n)
		if !almost(KDMeanDist(2, n), MeanDist(n), 1e-12) {
			t.Errorf("n=%d: KDMeanDist(2) != MeanDist", n)
		}
		if !almost(KDUpperBoundT(2, n, lambda), UpperBoundT(n, lambda), 1e-12) {
			t.Errorf("n=%d: KDUpperBoundT(2) != UpperBoundT", n)
		}
		if !almost(KDMD1ApproxT(2, n, lambda), MD1ApproxT(n, lambda), 1e-12) {
			t.Errorf("n=%d: KDMD1ApproxT(2) != MD1ApproxT", n)
		}
		if !almost(KDDBar(2, n), DBar(n), 1e-12) {
			t.Errorf("n=%d: KDDBar(2) != DBar", n)
		}
	}
}

func TestKDEdgeRatesMatchEnumeration(t *testing.T) {
	// The per-dimension Theorem 6 rates carry over to k dimensions: every
	// edge at axis position i carries (λ/n)·i(n-i).
	n, k := 4, 3
	a := topology.NewArrayKD(n, n, n)
	lambda := 0.3
	exact := ExactEdgeRates(a, routing.GreedyKD{A: a}, lambda, UniformDist(a), nil)
	for e, got := range exact {
		dim, plus, from := a.EdgeInfo(e)
		// Axis position of the source in dimension dim.
		stride := 1
		for j := dim + 1; j < k; j++ {
			stride *= n
		}
		c := from / stride % n
		i := c // minus edge from position c has 1-based index c
		if plus {
			i = c + 1
		}
		want := lambda * float64(i*(n-i)) / float64(n)
		if !almost(got, want, 1e-9) {
			t.Fatalf("edge %d (dim %d, plus %v): rate %v, want %v", e, dim, plus, got, want)
		}
	}
}

func TestKDBoundsOrdering(t *testing.T) {
	k, n := 3, 5
	for _, rho := range []float64{0.2, 0.8, 0.99} {
		lambda := LambdaForLoad(n, rho)
		up := KDUpperBoundT(k, n, lambda)
		md := KDMD1ApproxT(k, n, lambda)
		low := KDThm12LowerBound(k, n, lambda)
		if !(low <= md+1e-9 && md <= up+1e-9) {
			t.Errorf("rho=%v: ordering violated: %v %v %v", rho, low, md, up)
		}
	}
	if !almost(KDUpperBoundT(3, 5, 0), KDMeanDist(3, 5), 1e-12) {
		t.Error("KD upper at λ=0")
	}
}

func TestTorusRatesMatchEnumeration(t *testing.T) {
	for _, n := range []int{4, 5, 6, 7} {
		tor := topology.NewTorus2D(n)
		lambda := 0.4
		exact := ExactEdgeRates(tor, routing.TorusGreedy{T: tor}, lambda, UniformDist(tor), nil)
		for e, got := range exact {
			_, _, d := tor.EdgeInfo(e)
			want := TorusMinusRate(n, lambda)
			if d == topology.Right || d == topology.Down {
				want = TorusPlusRate(n, lambda)
			}
			if !almost(got, want, 1e-9) {
				t.Fatalf("n=%d edge %d (%v): rate %v, want %v", n, e, d, got, want)
			}
		}
	}
}

func TestTorusMeanDistMatchesEnumeration(t *testing.T) {
	for _, n := range []int{4, 5, 8, 9} {
		tor := topology.NewTorus2D(n)
		got := MeanRouteLen(tor, routing.TorusGreedy{T: tor}, UniformDist(tor), nil)
		if !almost(got, TorusMeanDist(n), 1e-9) {
			t.Errorf("n=%d: enumerated %v, closed form %v", n, got, TorusMeanDist(n))
		}
	}
}

func TestTorusCarriesMoreThanArray(t *testing.T) {
	// §6 motivation: the torus roughly doubles the stable load. For even n
	// the plus-direction tie-breaking costs a bit: the exact ratio is
	// 2n/(n+2), approaching 2 from below; for odd n it is exactly 2.
	for _, n := range []int{4, 5, 8, 15, 50} {
		ratio := TorusStabilityLimit(n) / StabilityLimit(n)
		want := 2.0
		if n%2 == 0 {
			want = 2 * float64(n) / float64(n+2)
		}
		if !almost(ratio, want, 1e-9) {
			t.Errorf("n=%d: torus/array stability ratio %v, want %v", n, ratio, want)
		}
	}
}

func TestTorusBoundsOrdering(t *testing.T) {
	n := 6
	for _, rho := range []float64{0.2, 0.9} {
		lambda := rho / TorusPlusRate(n, 1)
		md := TorusMD1ApproxT(n, lambda)
		low := TorusThm10LowerBound(n, lambda)
		if low > md {
			t.Errorf("rho=%v: Thm 10 bound above approximation", rho)
		}
		if md < TorusMeanDist(n) {
			t.Errorf("rho=%v: approximation below mean distance", rho)
		}
	}
	if !almost(TorusMD1ApproxT(6, 0), TorusMeanDist(6), 1e-12) {
		t.Error("torus approx at λ=0")
	}
	if TorusMaxRouteLen(7) != 6 || TorusMaxRouteLen(8) != 8 {
		t.Error("torus max route len")
	}
}

func TestUniformOverDist(t *testing.T) {
	dist := UniformOverDist([]int{2, 5})
	if dist(0, 2) != 0.5 || dist(0, 5) != 0.5 || dist(0, 3) != 0 {
		t.Error("UniformOverDist wrong")
	}
}

package bounds

import (
	"repro/internal/queueing"
	"repro/internal/topology"
)

// This file applies Theorem 15's optimal service-rate allocation to the
// array (§5.1): slower wires on the lightly loaded periphery, faster ones
// in the middle, under a fixed linear budget.

// StandardBudget returns the total capacity of the standard array with unit
// costs and unit rates: D = 4n(n-1), one unit per directed edge.
func StandardBudget(n int) float64 { return float64(4 * n * (n - 1)) }

// ArrayOptimalAllocation returns the Theorem 15 service rates for an n×n
// array at per-node rate lambda with unit costs and the given budget, along
// with the leftover budget D* = D - Σλ_e. The allocation is feasible only
// while D* > 0, i.e. while lambda < 6/(n+1) at the standard budget.
func ArrayOptimalAllocation(a *topology.Array2D, lambda, budget float64) (phi []float64, dstar float64, err error) {
	rates := EdgeRates(a, lambda)
	cost := make([]float64, len(rates))
	for j := range cost {
		cost[j] = 1
	}
	return queueing.OptimalAllocation(rates, cost, budget)
}

// ArrayOptimalT returns §5.1's closed-form mean delay of the optimally
// configured array: T = (Σ_e √λ_e)²/(D*·λn²) with unit costs.
func ArrayOptimalT(a *topology.Array2D, lambda, budget float64) (float64, error) {
	rates := EdgeRates(a, lambda)
	cost := make([]float64, len(rates))
	for j := range cost {
		cost[j] = 1
	}
	num, err := queueing.OptimalNumber(rates, cost, budget)
	if err != nil {
		return 0, err
	}
	n := a.N()
	return queueing.LittleT(num, lambda*float64(n*n)), nil
}

// ArrayStandardT returns the Jackson delay of the standard (all rates 1)
// array, i.e. Theorem 7's upper bound, for comparison with ArrayOptimalT.
func ArrayStandardT(a *topology.Array2D, lambda float64) (float64, error) {
	rates := EdgeRates(a, lambda)
	phi := make([]float64, len(rates))
	for j := range phi {
		phi[j] = 1
	}
	n := a.N()
	return JacksonT(rates, phi, lambda*float64(n*n))
}

package bounds

import (
	"math"
	"testing"

	"repro/internal/queueing"
	"repro/internal/routing"
	"repro/internal/topology"
)

func TestRectReducesToSquare(t *testing.T) {
	for _, n := range []int{4, 5, 9} {
		lambda := 0.7 * StabilityLimit(n)
		if !almost(RectMeanDist(n, n), MeanDist(n), 1e-12) {
			t.Errorf("n=%d: RectMeanDist != MeanDist", n)
		}
		if !almost(RectUpperBoundT(n, n, lambda), UpperBoundT(n, lambda), 1e-12) {
			t.Errorf("n=%d: RectUpperBoundT != UpperBoundT", n)
		}
		if !almost(RectMD1ApproxT(n, n, lambda), MD1ApproxT(n, lambda), 1e-12) {
			t.Errorf("n=%d: RectMD1ApproxT != MD1ApproxT", n)
		}
		if !almost(RectDBar(n, n), DBar(n), 1e-12) {
			t.Errorf("n=%d: RectDBar != DBar", n)
		}
		if !almost(RectStabilityLimit(n, n), StabilityLimit(n), 1e-12) {
			t.Errorf("n=%d: RectStabilityLimit != StabilityLimit", n)
		}
	}
}

func TestRectRatesMatchEnumeration(t *testing.T) {
	// The per-axis Theorem 6 rates must match exhaustive enumeration on the
	// rectangular topology (ArrayKD with two unequal sizes; dimension-order
	// greedy corrects rows first, which is the transpose of row-first
	// routing — the rates are identical by symmetry of the construction).
	for _, tc := range []struct{ nr, nc int }{{3, 5}, {4, 6}, {5, 4}} {
		a := topology.NewArrayKD(tc.nr, tc.nc)
		lambda := 0.3
		exact := ExactEdgeRates(a, routing.GreedyKD{A: a}, lambda, UniformDist(a), nil)
		for e, got := range exact {
			dim, plus, from := a.EdgeInfo(e)
			size := a.Size(dim)
			stride := 1
			if dim == 0 {
				stride = a.Size(1)
			}
			c := from / stride % size
			i := c
			if plus {
				i = c + 1
			}
			want := lambda * float64(i*(size-i)) / float64(size)
			if !almost(got, want, 1e-9) {
				t.Fatalf("%dx%d edge %d (dim %d): rate %v, want %v", tc.nr, tc.nc, e, dim, got, want)
			}
		}
	}
}

func TestRectUpperMatchesJacksonOnEnumeratedRates(t *testing.T) {
	nr, nc := 4, 7
	a := topology.NewArrayKD(nr, nc)
	lambda := 0.6 * RectStabilityLimit(nr, nc)
	rates := ExactEdgeRates(a, routing.GreedyKD{A: a}, lambda, UniformDist(a), nil)
	ones := make([]float64, len(rates))
	for i := range ones {
		ones[i] = 1
	}
	n, err := queueing.JacksonNumber(rates, ones)
	if err != nil {
		t.Fatal(err)
	}
	direct := queueing.LittleT(n, lambda*float64(nr*nc))
	closed := RectUpperBoundT(nr, nc, lambda)
	if !almost(direct, closed, 1e-9) {
		t.Errorf("closed form %v != Jackson on enumerated rates %v", closed, direct)
	}
}

func TestRectMeanDistMatchesEnumeration(t *testing.T) {
	nr, nc := 3, 6
	a := topology.NewArrayKD(nr, nc)
	got := MeanRouteLen(a, routing.GreedyKD{A: a}, UniformDist(a), nil)
	if !almost(got, RectMeanDist(nr, nc), 1e-9) {
		t.Errorf("enumerated %v, closed form %v", got, RectMeanDist(nr, nc))
	}
}

func TestRectBoundsOrderingAndStability(t *testing.T) {
	nr, nc := 4, 8
	for _, frac := range []float64{0.3, 0.8, 0.97} {
		lambda := frac * RectStabilityLimit(nr, nc)
		low := RectThm12LowerBound(nr, nc, lambda)
		md := RectMD1ApproxT(nr, nc, lambda)
		up := RectUpperBoundT(nr, nc, lambda)
		if !(low <= md+1e-9 && md <= up+1e-9) {
			t.Errorf("frac=%v: ordering violated: %v %v %v", frac, low, md, up)
		}
	}
	if !math.IsInf(RectUpperBoundT(nr, nc, RectStabilityLimit(nr, nc)), 1) {
		t.Error("rect at capacity should be +Inf")
	}
	// The longer axis saturates first: a 4x8 rect has the 8-axis limit 4/8.
	if !almost(RectStabilityLimit(4, 8), 0.5, 1e-12) {
		t.Errorf("RectStabilityLimit(4,8) = %v", RectStabilityLimit(4, 8))
	}
	// DBar is symmetric and equals the longer-axis corner value.
	if RectDBar(4, 8) != RectDBar(8, 4) {
		t.Error("RectDBar not symmetric")
	}
	if !almost(RectDBar(4, 8), 8.0/2+3.0/2, 1e-12) {
		t.Errorf("RectDBar(4,8) = %v", RectDBar(4, 8))
	}
}

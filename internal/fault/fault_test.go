package fault

import (
	"reflect"
	"testing"

	"repro/internal/topology"
)

// TestSelectFractionDeterministic pins selection rule 1 of the determinism
// contract: the failure-prone set is a pure function of (seed, salt,
// fraction), fraction 1 selects everything, and distinct salts decorrelate
// the families.
func TestSelectFractionDeterministic(t *testing.T) {
	a := selectFraction(42, SaltLinkSelect, 1000, 0.1)
	b := selectFraction(42, SaltLinkSelect, 1000, 0.1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different selections")
	}
	if len(a) < 50 || len(a) > 200 {
		t.Errorf("fraction 0.1 of 1000 selected %d entities; want ~100", len(a))
	}
	all := selectFraction(42, SaltLinkSelect, 100, 1)
	if len(all) != 100 {
		t.Errorf("fraction 1 selected %d of 100", len(all))
	}
	nodes := selectFraction(42, SaltNodeSelect, 1000, 0.1)
	if reflect.DeepEqual(a, nodes) {
		t.Error("link and node salts produced the identical selection")
	}
}

// TestBindCSR checks the plan's out-edge adjacency against the topology:
// every out-edge run is ascending and contains exactly the edges leaving
// the node.
func TestBindCSR(t *testing.T) {
	net := topology.NewArray2D(4)
	spec := &Spec{LinkMTBF: 100, LinkMTTR: 10, Seed: 1}
	p, err := spec.Bind(net)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes != net.NumNodes() || p.NumEdges != net.NumEdges() {
		t.Fatalf("plan dims %d/%d, net %d/%d", p.NumNodes, p.NumEdges, net.NumNodes(), net.NumEdges())
	}
	count := 0
	for v := int32(0); v < int32(p.NumNodes); v++ {
		lo, hi := p.OutEdgeRange(v)
		prev := int32(-1)
		for _, e := range p.OutEdges[lo:hi] {
			if p.From[e] != v {
				t.Fatalf("edge %d in node %d's run has From %d", e, v, p.From[e])
			}
			if e <= prev {
				t.Fatalf("node %d's out-edges not ascending", v)
			}
			prev = e
			count++
		}
	}
	if count != p.NumEdges {
		t.Errorf("CSR covers %d edges, want %d", count, p.NumEdges)
	}
	// MTBF with fraction 0 defaults to all links failure-prone.
	if len(p.FaultEdges) != p.NumEdges {
		t.Errorf("zero fraction selected %d of %d links; want all", len(p.FaultEdges), p.NumEdges)
	}
}

// TestBindLiars pins the adversary tables: explicit node lists verbatim,
// counted groups by hash ranking, first group wins on overlap, and Liars
// sorted ascending.
func TestBindLiars(t *testing.T) {
	net := topology.NewArray2D(8)
	spec := &Spec{
		Misbehave: []Misbehave{
			{Mode: ModeDelay, Nodes: []int{5, 9}, ExtraDelay: 4},
			{Mode: ModeDrop, Count: 3, Prob: 0.5},
		},
		Seed: 7,
	}
	p, err := spec.Bind(net)
	if err != nil {
		t.Fatal(err)
	}
	if p.LiarMode[5] != LiarDelay || p.LiarMode[9] != LiarDelay {
		t.Error("explicit delay liars not marked")
	}
	if p.LiarDelay[5] != 4 {
		t.Errorf("LiarDelay[5] = %d, want 4", p.LiarDelay[5])
	}
	drops := 0
	for v, m := range p.LiarMode {
		if m == LiarDrop {
			drops++
			if p.LiarProb[v] != 0.5 {
				t.Errorf("drop liar %d has prob %v", v, p.LiarProb[v])
			}
		}
	}
	// The counted group may have collided with the explicit nodes (first
	// group wins), so allow a shortfall but never an excess.
	if drops > 3 || drops < 1 {
		t.Errorf("counted drop group marked %d nodes, want 1..3", drops)
	}
	for i := 1; i < len(p.Liars); i++ {
		if p.Liars[i] <= p.Liars[i-1] {
			t.Fatal("Liars not sorted ascending")
		}
	}
	// Same spec, same topology: the same liar set (the property the
	// verification experiment's probe runs rely on).
	p2, err := spec.Bind(net)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Liars, p2.Liars) {
		t.Error("rebinding produced a different liar set")
	}
}

// TestBindOutages pins the rectangle lowering and its bounds check.
func TestBindOutages(t *testing.T) {
	net := topology.NewArray2D(4)
	spec := &Spec{
		Outages: []Outage{{Row0: 1, Col0: 1, Row1: 2, Col1: 2, Start: 10, Duration: 5}},
	}
	p, err := spec.Bind(net)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{
		int32(net.Node(1, 1)), int32(net.Node(1, 2)),
		int32(net.Node(2, 1)), int32(net.Node(2, 2)),
	}
	if len(p.OutageNodes) != 1 || len(p.OutageNodes[0]) != 4 {
		t.Fatalf("outage lowered to %v", p.OutageNodes)
	}
	got := append([]int32(nil), p.OutageNodes[0]...)
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("outage missing node %d", w)
		}
	}
	bad := &Spec{Outages: []Outage{{Row0: 0, Col0: 0, Row1: 9, Col1: 0, Start: 0, Duration: 1}}}
	if _, err := bad.Bind(net); err == nil {
		t.Error("outage rectangle past the array accepted")
	}
	cube := topology.NewHypercube(3)
	if _, err := spec.Bind(cube); err == nil {
		t.Error("outage on a non-2D topology accepted")
	}
}

// TestValidateRejections sweeps the malformed specs.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"mtbf without mttr", Spec{LinkMTBF: 100}},
		{"node mtbf without mttr", Spec{NodeMTBF: 100}},
		{"fraction > 1", Spec{LinkMTBF: 100, LinkMTTR: 1, LinkFraction: 2}},
		{"negative mtbf", Spec{LinkMTBF: -1}},
		{"empty outage", Spec{Outages: []Outage{{Row0: 2, Row1: 1, Duration: 1}}}},
		{"zero-duration outage", Spec{Outages: []Outage{{Duration: 0}}}},
		{"delay without extra", Spec{Misbehave: []Misbehave{{Mode: ModeDelay, Count: 1}}}},
		{"drop without prob", Spec{Misbehave: []Misbehave{{Mode: ModeDrop, Count: 1}}}},
		{"unknown mode", Spec{Misbehave: []Misbehave{{Mode: "teleport", Count: 1}}}},
		{"no nodes selected", Spec{Misbehave: []Misbehave{{Mode: ModeDrop, Prob: 0.5}}}},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err != nil {
		t.Errorf("nil spec rejected: %v", err)
	}
	if nilSpec.Enabled() {
		t.Error("nil spec enabled")
	}
}

// TestMisrouteEdge pins the misroute pick: always an out-edge of the served
// edge's head node, deterministic in (seed, edge, key), and decorrelated
// from the coin (which hashes the un-flipped key).
func TestMisrouteEdge(t *testing.T) {
	net := topology.NewArray2D(4)
	spec := &Spec{Misbehave: []Misbehave{{Mode: ModeMisroute, Count: 1, Prob: 1}}, Seed: 3}
	p, err := spec.Bind(net)
	if err != nil {
		t.Fatal(err)
	}
	for e := int32(0); e < int32(p.NumEdges); e += 7 {
		for k := uint64(0); k < 5; k++ {
			pick := p.MisrouteEdge(p.Spec.Seed, e, k)
			if pick < 0 {
				t.Fatalf("edge %d head has out-edges but pick is -1", e)
			}
			if p.From[pick] != p.To[e] {
				t.Fatalf("misroute pick %d does not leave node %d", pick, p.To[e])
			}
			if pick != p.MisrouteEdge(p.Spec.Seed, e, k) {
				t.Fatal("misroute pick not deterministic")
			}
		}
	}
}

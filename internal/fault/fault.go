// Package fault defines the deterministic failure and adversary processes
// the degraded-array scenarios run under: link/node up–down two-state
// Markov processes, scheduled regional outages on array rectangles, and
// misbehaving-router models (deliberate extra delay, probabilistic
// misrouting, silent drop) assigned to a seeded node subset.
//
// The package is pure description + binding: a Spec is the JSON-facing
// declaration (the `faults` section of a workload.Scenario), and
// Spec.Bind(net) lowers it against a concrete topology into an immutable
// Plan — entity lists, per-node adversary tables, outage node sets, and a
// CSR out-edge adjacency for recovery scans. The engines own all mutable
// fault state; a Plan is shared read-only across replicas and worker tiles.
//
// Determinism contract. Every random choice the fault layer induces is a
// pure function of the fault seed and stable entity identities, never of
// engine internals:
//
//  1. Which entities can fail and which nodes misbehave is decided at Bind
//     time by stateless splitmix-style hashes of (seed, salt, id) — the
//     same set on both engines, at every shard count.
//  2. Up/down dwell sequences are drawn from per-entity keyed streams
//     (xrand.ReseedSplit(seed^salt, id)), disjoint from the arrival
//     streams, so fault-free runs stay bit-identical to pre-fault builds
//     and fault-enabled sharded runs stay shard-invariant.
//  3. Per-packet adversary coin flips (misroute, drop) hash the identity
//     of the service event — (seed, edge, slot) on the slotted engine,
//     (seed, edge, per-edge transit index) on the event engine — so they
//     are independent of tile grouping and iteration order.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Misbehavior modes. A misbehaving node applies its model to every packet
// it forwards (packets transiting the node), never to packets that
// terminate there — a liar cannot hide by damaging only its own mail.
const (
	ModeDelay    = "delay"    // holds every forwarded packet ExtraDelay slots
	ModeMisroute = "misroute" // with probability Prob, forwards out a uniform random out-edge
	ModeDrop     = "drop"     // with probability Prob, silently discards the packet
)

// Misbehave seeds one group of misbehaving routers. Either Nodes pins the
// set explicitly, or Count nodes are chosen by seeded hash ranking over the
// topology's nodes (deterministic, engine- and shard-independent).
type Misbehave struct {
	// Mode is one of ModeDelay, ModeMisroute, ModeDrop.
	Mode string `json:"mode"`
	// Count is how many nodes to select when Nodes is empty.
	Count int `json:"count,omitempty"`
	// Nodes pins the misbehaving set explicitly (node ids).
	Nodes []int `json:"nodes,omitempty"`
	// ExtraDelay is the per-transit extra delay in slots (ModeDelay).
	ExtraDelay int `json:"extra_delay,omitempty"`
	// Prob is the per-packet misbehavior probability (ModeMisroute, ModeDrop).
	Prob float64 `json:"prob,omitempty"`
}

// Outage schedules a regional outage: every node in the inclusive
// coordinate rectangle [Row0,Row1]×[Col0,Col1] of a 2-D array or torus is
// down for [Start, Start+Duration). Times are in engine time units (slots
// on the slotted engine).
type Outage struct {
	Row0 int `json:"row0"`
	Col0 int `json:"col0"`
	Row1 int `json:"row1"`
	Col1 int `json:"col1"`
	// Start is when the outage begins (slots / time units from run start).
	Start float64 `json:"start"`
	// Duration is how long it lasts.
	Duration float64 `json:"duration"`
}

// Spec is the declarative fault model — the `faults` section of a scenario.
// The zero Spec means "no faults" and must never change engine output.
type Spec struct {
	// LinkMTBF/LinkMTTR are the mean up/down dwells (in slots / time
	// units) of the link failure process; LinkFraction in (0,1] selects
	// which links are failure-prone (1 = all). Zero MTBF disables link
	// failures.
	LinkMTBF     float64 `json:"link_mtbf,omitempty"`
	LinkMTTR     float64 `json:"link_mttr,omitempty"`
	LinkFraction float64 `json:"link_fraction,omitempty"`
	// NodeMTBF/NodeMTTR/NodeFraction: the same for whole nodes. A down
	// node blocks every edge incident to it.
	NodeMTBF     float64 `json:"node_mtbf,omitempty"`
	NodeMTTR     float64 `json:"node_mttr,omitempty"`
	NodeFraction float64 `json:"node_fraction,omitempty"`
	// Outages schedules regional outages (2-D array/torus only).
	Outages []Outage `json:"outages,omitempty"`
	// Misbehave seeds misbehaving-router groups.
	Misbehave []Misbehave `json:"misbehave,omitempty"`
	// Seed drives every fault-layer random choice. Independent of the
	// engine seed so the same degradation can be replayed across loads
	// and replicas.
	Seed uint64 `json:"seed,omitempty"`
}

// Enabled reports whether the spec declares any fault process at all.
// A nil or all-zero spec leaves the engines on their fault-free paths.
func (s *Spec) Enabled() bool {
	if s == nil {
		return false
	}
	return s.LinkMTBF > 0 || s.NodeMTBF > 0 || len(s.Outages) > 0 || len(s.Misbehave) > 0
}

// Validate checks the spec's internal consistency (topology-independent
// checks only; Bind adds the topology-dependent ones).
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if s.LinkMTBF < 0 || s.LinkMTTR < 0 || s.NodeMTBF < 0 || s.NodeMTTR < 0 {
		return fmt.Errorf("fault: MTBF/MTTR must be non-negative")
	}
	if s.LinkMTBF > 0 && s.LinkMTTR <= 0 {
		return fmt.Errorf("fault: link_mtbf set but link_mttr is not")
	}
	if s.NodeMTBF > 0 && s.NodeMTTR <= 0 {
		return fmt.Errorf("fault: node_mtbf set but node_mttr is not")
	}
	if s.LinkFraction < 0 || s.LinkFraction > 1 {
		return fmt.Errorf("fault: link_fraction %v outside [0,1]", s.LinkFraction)
	}
	if s.NodeFraction < 0 || s.NodeFraction > 1 {
		return fmt.Errorf("fault: node_fraction %v outside [0,1]", s.NodeFraction)
	}
	for i, o := range s.Outages {
		if o.Row1 < o.Row0 || o.Col1 < o.Col0 {
			return fmt.Errorf("fault: outage %d has an empty rectangle", i)
		}
		if o.Start < 0 || o.Duration <= 0 {
			return fmt.Errorf("fault: outage %d needs start >= 0 and duration > 0", i)
		}
	}
	for i, m := range s.Misbehave {
		switch m.Mode {
		case ModeDelay:
			if m.ExtraDelay <= 0 {
				return fmt.Errorf("fault: misbehave %d (delay) needs extra_delay > 0", i)
			}
		case ModeMisroute, ModeDrop:
			if m.Prob <= 0 || m.Prob > 1 {
				return fmt.Errorf("fault: misbehave %d (%s) needs prob in (0,1]", i, m.Mode)
			}
		default:
			return fmt.Errorf("fault: misbehave %d has unknown mode %q", i, m.Mode)
		}
		if len(m.Nodes) == 0 && m.Count <= 0 {
			return fmt.Errorf("fault: misbehave %d selects no nodes (need count or nodes)", i)
		}
	}
	return nil
}

// Hash salts. Each independent random decision family hashes under its own
// salt so enabling one family never perturbs another's choices.
const (
	SaltLinkSelect = 0x6c696e6b // which links are failure-prone
	SaltNodeSelect = 0x6e6f6465 // which nodes are failure-prone
	SaltLiarRank   = 0x6c696172 // misbehaving-node ranking
	SaltLinkDwell  = 0x6477656c // link up/down dwell streams
	SaltNodeDwell  = 0x6e647765 // node up/down dwell streams
	SaltMisroute   = 0x6d697372 // per-packet misroute coin + edge pick
	SaltDrop       = 0x64726f70 // per-packet drop coin
)

// Hash is the stateless mixing function behind every per-entity and
// per-packet fault decision: a splitmix64-style finalizer over (seed, salt,
// a, b). It is engine-order-free by construction — the same arguments give
// the same 64 bits anywhere.
func Hash(seed uint64, salt uint64, a, b uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z ^= salt * 0xbf58476d1ce4e5b9
	z += a * 0x94d049bb133111eb
	z ^= b + 0x2545f4914f6cdd1d
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Coin reports a Bernoulli(p) draw from Hash's output: true with
// probability p, identical everywhere the same arguments are hashed.
func Coin(seed uint64, salt uint64, a, b uint64, p float64) bool {
	// Top 53 bits as a uniform in [0,1), the same construction as
	// xrand.Float64.
	u := float64(Hash(seed, salt, a, b)>>11) / (1 << 53)
	return u < p
}

// selectFraction returns the ids in [0, n) whose selection hash lands below
// fraction — a deterministic "each entity independently with probability
// fraction" draw. fraction >= 1 selects everything without hashing.
func selectFraction(seed uint64, salt uint64, n int, fraction float64) []int32 {
	ids := make([]int32, 0, int(fraction*float64(n))+1)
	if fraction >= 1 {
		for i := 0; i < n; i++ {
			ids = append(ids, int32(i))
		}
		return ids
	}
	for i := 0; i < n; i++ {
		if Coin(seed, salt, uint64(i), 0, fraction) {
			ids = append(ids, int32(i))
		}
	}
	return ids
}

// rankSelect returns the count ids in [0, n) with the smallest hash values
// under (seed, salt, group) — a deterministic uniform subset of exactly
// count nodes (all of them if count >= n).
func rankSelect(seed uint64, salt uint64, group uint64, n, count int) []int32 {
	if count >= n {
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i)
		}
		return ids
	}
	type ranked struct {
		h  uint64
		id int32
	}
	all := make([]ranked, n)
	for i := 0; i < n; i++ {
		all[i] = ranked{Hash(seed, salt, group, uint64(i)), int32(i)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].h != all[j].h {
			return all[i].h < all[j].h
		}
		return all[i].id < all[j].id
	})
	ids := make([]int32, count)
	for i := range ids {
		ids[i] = all[i].id
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// coords2D unwraps net (through topology.Restrict) to a 2-D array or torus
// and returns its side length, or ok = false.
func coords2D(net topology.Network) (side int, node func(r, c int) int, ok bool) {
	if r, isRestrict := net.(topology.Restrict); isRestrict {
		net = r.Network
	}
	switch a := net.(type) {
	case *topology.Array2D:
		return a.N(), a.Node, true
	case *topology.Torus2D:
		return a.N(), a.Node, true
	}
	return 0, nil, false
}

package fault

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Liar modes in the Plan's per-node table. 0 means honest.
const (
	LiarNone uint8 = iota
	LiarDelay
	LiarMisroute
	LiarDrop
)

// Plan is a Spec bound to a concrete topology: the immutable, shareable
// lowering both engines consume. All slices are read-only after Bind.
type Plan struct {
	Spec Spec // the spec this plan was bound from (validated copy)

	NumNodes, NumEdges int

	// From/To mirror the topology's edge endpoints as flat arrays so the
	// engines' hot loops avoid interface calls.
	From, To []int32

	// OutStart/OutEdges are the CSR out-edge adjacency: node v's out-edges
	// are OutEdges[OutStart[v]:OutStart[v+1]], ascending by edge id. The
	// recovery scan and the misroute pick both walk this.
	OutStart []int32
	OutEdges []int32

	// FaultEdges/FaultNodes are the ascending entity ids subject to the
	// link/node Markov processes. LinkFaultIdx/NodeFaultIdx map an
	// edge/node id to its index in those lists, or -1: engines keep their
	// per-entity dwell state in arrays parallel to the entity lists.
	FaultEdges   []int32
	FaultNodes   []int32
	LinkFaultIdx []int32
	NodeFaultIdx []int32

	// LiarMode/LiarDelay/LiarProb are per-node adversary tables (LiarNone
	// for honest nodes). Liars lists the misbehaving node ids ascending —
	// the ground truth the verification experiment is scored against.
	LiarMode  []uint8
	LiarDelay []int32
	LiarProb  []float64
	Liars     []int32

	// OutageNodes[i] lists the node ids inside Outages[i]'s rectangle,
	// ascending. Outage windows come from Spec.Outages.
	OutageNodes [][]int32
}

// Bind lowers the spec against net. The returned plan is immutable and safe
// to share across replicas and worker tiles.
func (s *Spec) Bind(net topology.Network) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("fault: Bind on a nil spec")
	}
	p := &Plan{
		Spec:     *s,
		NumNodes: net.NumNodes(),
		NumEdges: net.NumEdges(),
	}

	// Flatten endpoints and build the CSR out-adjacency. Edge ids are
	// visited ascending, so each node's OutEdges run is ascending too —
	// the property the deterministic recovery scan relies on.
	p.From = make([]int32, p.NumEdges)
	p.To = make([]int32, p.NumEdges)
	p.OutStart = make([]int32, p.NumNodes+1)
	for e := 0; e < p.NumEdges; e++ {
		from, to := net.EdgeFrom(e), net.EdgeTo(e)
		p.From[e], p.To[e] = int32(from), int32(to)
		p.OutStart[from+1]++
	}
	for v := 0; v < p.NumNodes; v++ {
		p.OutStart[v+1] += p.OutStart[v]
	}
	p.OutEdges = make([]int32, p.NumEdges)
	fill := make([]int32, p.NumNodes)
	copy(fill, p.OutStart[:p.NumNodes])
	for e := 0; e < p.NumEdges; e++ {
		v := p.From[e]
		p.OutEdges[fill[v]] = int32(e)
		fill[v]++
	}

	// Markov entity selection: a stateless per-entity coin under the
	// fault seed, so the failure-prone set is identical on both engines
	// and at every shard count.
	if s.LinkMTBF > 0 {
		frac := s.LinkFraction
		if frac == 0 {
			frac = 1
		}
		p.FaultEdges = selectFraction(s.Seed, SaltLinkSelect, p.NumEdges, frac)
	}
	if s.NodeMTBF > 0 {
		frac := s.NodeFraction
		if frac == 0 {
			frac = 1
		}
		p.FaultNodes = selectFraction(s.Seed, SaltNodeSelect, p.NumNodes, frac)
	}
	p.LinkFaultIdx = invertIndex(p.NumEdges, p.FaultEdges)
	p.NodeFaultIdx = invertIndex(p.NumNodes, p.FaultNodes)

	// Misbehaving routers: explicit node lists verbatim, counted groups by
	// seeded hash ranking. Later groups do not overwrite earlier ones.
	p.LiarMode = make([]uint8, p.NumNodes)
	p.LiarDelay = make([]int32, p.NumNodes)
	p.LiarProb = make([]float64, p.NumNodes)
	for gi, m := range s.Misbehave {
		var nodes []int32
		if len(m.Nodes) > 0 {
			for _, v := range m.Nodes {
				if v < 0 || v >= p.NumNodes {
					return nil, fmt.Errorf("fault: misbehave %d node %d out of range [0,%d)", gi, v, p.NumNodes)
				}
				nodes = append(nodes, int32(v))
			}
		} else {
			nodes = rankSelect(s.Seed, SaltLiarRank, uint64(gi), p.NumNodes, m.Count)
		}
		mode := LiarDelay
		switch m.Mode {
		case ModeMisroute:
			mode = LiarMisroute
		case ModeDrop:
			mode = LiarDrop
		}
		for _, v := range nodes {
			if p.LiarMode[v] != LiarNone {
				continue
			}
			p.LiarMode[v] = mode
			p.LiarDelay[v] = int32(m.ExtraDelay)
			p.LiarProb[v] = m.Prob
			p.Liars = append(p.Liars, v)
		}
	}
	sort.Slice(p.Liars, func(i, j int) bool { return p.Liars[i] < p.Liars[j] })

	// Outage rectangles need 2-D coordinates.
	if len(s.Outages) > 0 {
		side, nodeAt, ok := coords2D(net)
		if !ok {
			return nil, fmt.Errorf("fault: outages need a 2-D array or torus, got %s", net.Name())
		}
		p.OutageNodes = make([][]int32, len(s.Outages))
		for i, o := range s.Outages {
			if o.Row0 < 0 || o.Col0 < 0 || o.Row1 >= side || o.Col1 >= side {
				return nil, fmt.Errorf("fault: outage %d rectangle exceeds the %dx%d array", i, side, side)
			}
			for r := o.Row0; r <= o.Row1; r++ {
				for c := o.Col0; c <= o.Col1; c++ {
					p.OutageNodes[i] = append(p.OutageNodes[i], int32(nodeAt(r, c)))
				}
			}
		}
	}
	return p, nil
}

// invertIndex builds the id -> list-index map (-1 for absent ids).
func invertIndex(n int, ids []int32) []int32 {
	if len(ids) == 0 {
		return nil
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = -1
	}
	for i, id := range ids {
		idx[id] = int32(i)
	}
	return idx
}

// HasMarkov reports whether any up/down Markov process is active.
func (p *Plan) HasMarkov() bool { return len(p.FaultEdges) > 0 || len(p.FaultNodes) > 0 }

// HasLiars reports whether any node misbehaves.
func (p *Plan) HasLiars() bool { return len(p.Liars) > 0 }

// OutEdgeRange returns the CSR bounds of node v's out-edges.
func (p *Plan) OutEdgeRange(v int32) (lo, hi int32) {
	return p.OutStart[v], p.OutStart[v+1]
}

// MisrouteEdge returns the deterministic misroute pick for a packet served
// on edge e at event key k: a uniform choice among the out-edges of e's
// head node, derived from the stateless hash. The event key is bit-flipped
// so the pick decorrelates from the misroute coin, which hashes the same
// (e, k) pair. The caller checks usability and falls back to recovery if
// the pick is blocked.
func (p *Plan) MisrouteEdge(seed uint64, e int32, k uint64) int32 {
	v := p.To[e]
	lo, hi := p.OutStart[v], p.OutStart[v+1]
	if lo == hi {
		return -1
	}
	h := Hash(seed, SaltMisroute, uint64(e), ^k)
	return p.OutEdges[lo+int32(h%uint64(hi-lo))]
}

package workload

import (
	"fmt"

	"repro/internal/fault"
)

// stdLoads is the default load ladder: fractions of λ* spanning light
// traffic to near saturation.
func stdLoads() []float64 { return []float64{0.2, 0.4, 0.6, 0.8, 0.9} }

// Registry returns the named built-in scenarios. Each exercises one
// pattern or arrival process on a reference topology; cmd/scenario lists,
// describes, validates and runs them.
func Registry() []Scenario {
	array8 := TopologySpec{Kind: "array", N: 8}
	torus8 := TopologySpec{Kind: "torus", N: 8}
	return []Scenario{
		{
			Name:        "uniform-8x8",
			Description: "baseline: uniform destinations on the 8x8 array (the paper's standard model)",
			Topology:    array8,
			Pattern:     PatternSpec{Kind: "uniform"},
			Loads:       stdLoads(),
		},
		{
			Name:        "hotspot-8x8",
			Description: "20% of all traffic converges on the central node of the 8x8 array",
			Topology:    array8,
			Pattern:     PatternSpec{Kind: "hotspot", K: 1, Weight: 0.2},
			Loads:       stdLoads(),
		},
		{
			Name:        "hotspot4-8x8",
			Description: "heavier skew: 40% of traffic split over the four central nodes",
			Topology:    array8,
			Pattern:     PatternSpec{Kind: "hotspot", K: 4, Weight: 0.4},
			Loads:       stdLoads(),
		},
		{
			Name:        "transpose-8x8",
			Description: "matrix-transpose permutation (r,c)->(c,r) on the 8x8 array",
			Topology:    array8,
			Pattern:     PatternSpec{Kind: "transpose"},
			Loads:       stdLoads(),
		},
		{
			Name:        "bitrev-8x8",
			Description: "FFT bit-reversal permutation per axis on the 8x8 array",
			Topology:    array8,
			Pattern:     PatternSpec{Kind: "bitrev"},
			Loads:       stdLoads(),
		},
		{
			Name:        "bitcomp-8x8",
			Description: "bit-complement permutation: every route crosses the array center",
			Topology:    array8,
			Pattern:     PatternSpec{Kind: "bitcomp"},
			Loads:       stdLoads(),
		},
		{
			Name:        "tornado-8x8",
			Description: "tornado permutation on the 8x8 torus: maximal one-way ring traffic",
			Topology:    torus8,
			Pattern:     PatternSpec{Kind: "tornado"},
			Loads:       stdLoads(),
		},
		{
			Name:        "neighbor-8x8",
			Description: "nearest-neighbor demand on the 8x8 array: one hop per packet",
			Topology:    array8,
			Pattern:     PatternSpec{Kind: "neighbor"},
			Loads:       stdLoads(),
		},
		{
			Name:        "zipf-8x8",
			Description: "distance-biased demand P[dst] ~ (1+d)^-2 on the 8x8 array (general form of the paper's 5.2 walk)",
			Topology:    array8,
			Pattern:     PatternSpec{Kind: "zipf", S: 2},
			Loads:       stdLoads(),
		},
		{
			Name:        "bursty-8x8",
			Description: "uniform destinations with on-off MMPP sources (4x rate bursts) on the 8x8 array",
			Topology:    array8,
			Pattern:     PatternSpec{Kind: "uniform"},
			Arrivals:    ArrivalSpec{Kind: "bursty", BurstFactor: 4, MeanOn: 10, MeanOff: 30},
			Loads:       []float64{0.2, 0.4, 0.6, 0.8},
		},
		{
			Name:        "periodic-8x8",
			Description: "uniform destinations with deterministic periodic injection on the 8x8 array",
			Topology:    array8,
			Pattern:     PatternSpec{Kind: "uniform"},
			Arrivals:    ArrivalSpec{Kind: "periodic"},
			Loads:       stdLoads(),
		},
		{
			Name:        "degraded-8x8",
			Description: "hotspot traffic while 10% of links fail and recover (MTBF 500, MTTR 25 slots); greedy-with-recovery detours around the holes",
			Topology:    array8,
			Pattern:     PatternSpec{Kind: "hotspot", K: 1, Weight: 0.2},
			Loads:       []float64{0.2, 0.4, 0.6},
			Faults: &fault.Spec{
				LinkMTBF:     500,
				LinkMTTR:     25,
				LinkFraction: 0.1,
				Seed:         7,
			},
		},
		{
			Name:        "liars-8x8",
			Description: "uniform traffic with three delay-liar routers holding every forwarded packet 4 extra slots; feed to the verify experiment to flag them",
			Topology:    array8,
			Pattern:     PatternSpec{Kind: "uniform"},
			Loads:       []float64{0.2, 0.4, 0.6},
			Faults: &fault.Spec{
				Misbehave: []fault.Misbehave{{Mode: fault.ModeDelay, Count: 3, ExtraDelay: 4}},
				Seed:      7,
			},
		},
	}
}

// ByName finds a registered scenario.
func ByName(name string) (Scenario, error) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q (try: scenario list)", name)
}

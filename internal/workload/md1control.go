package workload

// The M/D/1 second control variate. The raw arrival count is a good
// control for the simulated mean delay because delay rises with realized
// traffic, but the relationship is convex — steeply so near saturation —
// and a linear regression on the count leaves that curvature on the
// table. Mapping the count through the analytic M/D/1 delay curve first
// (g(K) = MD1DelayAt(K / (sources·horizon))) gives a control that is
// already shaped like the response, so its correlation with the simulated
// delay is typically higher than the raw count's and the two-control
// regression (stats.ControlVariateMulti) can only tighten the interval
// further.
//
// Honesty is the delicate part. The control's known mean must be the
// exact E[g(K)], and by Jensen's inequality that is NOT g(E[K]): plugging
// the expected count into the curve would bias the adjusted estimator by
// exactly the curvature the control exists to exploit. K is Poisson with
// exactly known mean μ = rate·sources·horizon, so E[g(K)] is computed
// numerically instead — the pmf is summed against g over a ±10σ window in
// log-space (the omitted tails carry < 1e-20 of the mass, far below
// double-precision resolution of the retained terms).

import (
	"math"

	"repro/internal/sim"
	"repro/internal/stepsim"
	"repro/internal/topology"
)

// md1ClampLoad caps the realized load the control curve is evaluated at.
// A replica whose count fluctuates to or past saturation would map to an
// infinite control value and wreck the regression; clamping the curve
// makes g bounded while staying the identity everywhere a stable scenario
// actually operates (loads are validated < 1). The same clamped g is used
// in the exact-mean sum, so the control stays honest.
const md1ClampLoad = 0.999

// md1Curve returns the bounded control curve g(count) for a run with the
// given source count and measured horizon (slots and time units coincide
// under the τ = 1 convention).
func (a *Analysis) md1Curve(numSources int, horizon float64) func(float64) float64 {
	denom := float64(numSources) * horizon
	capRate := md1ClampLoad * a.LambdaStar
	return func(count float64) float64 {
		rate := count / denom
		if rate > capRate {
			rate = capRate
		}
		return a.MD1DelayAt(rate)
	}
}

// poissonMean returns E[g(K)] for K ~ Poisson(mu), summing the pmf
// against g over mu ± 10σ in log-space. g must be bounded on the window.
func poissonMean(mu float64, g func(float64) float64) float64 {
	if mu <= 0 {
		return g(0)
	}
	sigma := math.Sqrt(mu)
	lo := int(math.Max(0, math.Floor(mu-10*sigma)))
	// The +25 floor matters only at small μ, where ±10σ is a narrow
	// absolute window and polynomially-weighted tails (as in the E[K²]
	// check) still carry mass above double-precision resolution.
	hi := int(math.Ceil(mu+10*sigma)) + 25
	logMu := math.Log(mu)
	sum := 0.0
	for k := lo; k <= hi; k++ {
		lg, _ := math.Lgamma(float64(k) + 1)
		logP := float64(k)*logMu - mu - lg
		sum += math.Exp(logP) * g(float64(k))
	}
	return sum
}

// SweepOpts lowers the bound scenario's replication policy for the
// event-driven engine, wiring the M/D/1 second control when the scenario
// asks for it. It extends Scenario.SweepOpts, which cannot offer the
// control because the curve needs the bound analysis.
func (b *Bound) SweepOpts(workers int) sim.SweepOpts {
	opts := b.Scenario.SweepOpts(workers)
	if b.Scenario.MD1Control {
		a := b.Analysis
		numSources := len(topology.Sources(b.Net))
		opts.DelayControl = func(cfg sim.Config, r sim.Result) float64 {
			return a.md1Curve(numSources, cfg.Horizon)(float64(r.Generated))
		}
		opts.DelayControlMean = func(cfg sim.Config) float64 {
			mu := cfg.NodeRate * float64(numSources) * cfg.Horizon
			return poissonMean(mu, a.md1Curve(numSources, cfg.Horizon))
		}
	}
	return opts
}

// SlottedSweepOpts is SweepOpts for the slotted engine, with the same
// M/D/1 control wiring (slots play the role of the horizon under τ = 1).
func (b *Bound) SlottedSweepOpts(workers int) stepsim.SweepOpts {
	opts := b.Scenario.SlottedSweepOpts(workers)
	if b.Scenario.MD1Control {
		a := b.Analysis
		numSources := len(topology.Sources(b.Net))
		opts.DelayControl = func(cfg stepsim.Config, r stepsim.Result) float64 {
			return a.md1Curve(numSources, float64(cfg.Slots))(float64(r.Generated))
		}
		opts.DelayControlMean = func(cfg stepsim.Config) float64 {
			mu := cfg.NodeRate * float64(numSources) * float64(cfg.Slots)
			return poissonMean(mu, a.md1Curve(numSources, float64(cfg.Slots)))
		}
	}
	return opts
}

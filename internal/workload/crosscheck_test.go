package workload

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestAnalysisMatchesCombinatorialRates cross-validates the two analytic
// pipelines for every pattern: the demand-matrix → queueing.Traffic →
// traffic-equation path (Analyze) must reproduce the direct combinatorial
// route enumeration (bounds.ExactEdgeRates) to solver precision.
func TestAnalysisMatchesCombinatorialRates(t *testing.T) {
	cases := []struct {
		net    topology.Network
		router routing.Router
	}{
		{topology.NewArray2D(4), routing.GreedyXY{A: topology.NewArray2D(4)}},
		{topology.NewTorus2D(5), routing.TorusGreedy{T: topology.NewTorus2D(5)}},
	}
	for _, c := range cases {
		for name, d := range bindAll(t, c.net) {
			an, err := Analyze(c.net, c.router, d, nil)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, c.net.Name(), err)
			}
			exact := bounds.ExactEdgeRates(c.net, c.router, 1, d.Prob, nil)
			for e := range exact {
				if math.Abs(an.EdgeRates[e]-exact[e]) > 1e-8 {
					t.Fatalf("%s on %s: edge %d traffic-equation rate %v != combinatorial %v",
						name, c.net.Name(), e, an.EdgeRates[e], exact[e])
				}
			}
			if an.LambdaStar <= 0 || math.IsInf(an.LambdaStar, 1) {
				t.Errorf("%s on %s: bad lambda* %v", name, c.net.Name(), an.LambdaStar)
			}
		}
	}
}

// TestUniformAnalysisMatchesClosedForm pins the pipeline to the paper's
// closed-form array edge rates (Theorem 6).
func TestUniformAnalysisMatchesClosedForm(t *testing.T) {
	a := topology.NewArray2D(5)
	d, err := Uniform{}.Bind(a)
	if err != nil {
		t.Fatal(err)
	}
	an, err := Analyze(a, routing.GreedyXY{A: a}, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	closed := bounds.EdgeRates(a, 1)
	for e := range closed {
		if math.Abs(an.EdgeRates[e]-closed[e]) > 1e-9 {
			t.Fatalf("edge %d: pipeline %v != closed form %v", e, an.EdgeRates[e], closed[e])
		}
	}
	if want := bounds.StabilityLimit(5); math.Abs(an.LambdaStar-want) > 1e-9 {
		t.Errorf("lambda* = %v, want closed form %v", an.LambdaStar, want)
	}
}

// TestEmpiricalEdgeRatesMatchAnalysis is the simulation leg of the
// cross-check: for each pattern the per-edge arrival rates measured by a
// seeded run must match the analytic λ_e within sampling tolerance.
func TestEmpiricalEdgeRatesMatchAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates every pattern; skipped with -short")
	}
	type tc struct {
		net    topology.Network
		router routing.Router
	}
	a4 := topology.NewArray2D(4)
	t5 := topology.NewTorus2D(5)
	cases := []tc{
		{a4, routing.GreedyXY{A: a4}},
		{t5, routing.TorusGreedy{T: t5}},
	}
	for _, c := range cases {
		for name, d := range bindAll(t, c.net) {
			an, err := Analyze(c.net, c.router, d, nil)
			if err != nil {
				t.Fatal(err)
			}
			perNode := 0.5 * an.LambdaStar
			res, err := sim.Run(sim.Config{
				Net:      c.net,
				Router:   c.router,
				Dest:     d,
				NodeRate: perNode,
				Warmup:   500,
				Horizon:  10000,
				Seed:     11,
			})
			if err != nil {
				t.Fatalf("%s on %s: %v", name, c.net.Name(), err)
			}
			totalWant, totalGot := 0.0, 0.0
			for e, rate := range an.EdgeRates {
				want := rate * perNode
				got := res.EdgeRates[e]
				totalWant += want
				totalGot += got
				// Edge arrival streams are positively correlated through the
				// queues (over-dispersed relative to Poisson), so the bound
				// is several nominal sigmas wide; skip edges whose expected
				// count over the horizon is too small for any tight bound.
				if want*res.Time < 400 {
					continue
				}
				if math.Abs(got-want)/want > 0.15 {
					t.Errorf("%s on %s: edge %d measured rate %v vs analytic %v",
						name, c.net.Name(), e, got, want)
				}
			}
			if totalWant > 0 && math.Abs(totalGot-totalWant)/totalWant > 0.03 {
				t.Errorf("%s on %s: total edge traffic %v vs analytic %v",
					name, c.net.Name(), totalGot, totalWant)
			}
		}
	}
}

package workload

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/xrand"
)

// Poisson is the stationary merged Poisson stream at TotalRate — the
// engine's default clock expressed through the sim.ArrivalProcess hook, so
// the two paths can be cross-checked statistically.
type Poisson struct {
	// TotalRate is the merged arrival rate (per-node λ times #sources).
	TotalRate float64
}

// New returns a fresh process; Poisson is stateless, so it returns the
// value itself.
func (p Poisson) New() sim.ArrivalProcess { return p }

// Rate implements sim.ArrivalProcess.
func (p Poisson) Rate() float64 { return p.TotalRate }

// Next implements sim.ArrivalProcess.
func (p Poisson) Next(t float64, rng *xrand.RNG) float64 { return t + rng.Exp(p.TotalRate) }

// MMPP2 is a two-phase Markov-modulated Poisson process: arrivals are
// Poisson at Rate0 while the modulating chain is in phase 0 and Rate1 in
// phase 1, with exponential phase sojourns of means Sojourn0 and Sojourn1.
// Rate0 = 0 gives the classic on-off (interrupted Poisson) bursty source.
// The modulating phase starts from its stationary distribution, so the
// stream is stationary from t = 0.
type MMPP2 struct {
	// Rate0, Rate1 are the merged arrival rates in each phase.
	Rate0, Rate1 float64
	// Sojourn0, Sojourn1 are the mean phase durations; both must be
	// positive.
	Sojourn0, Sojourn1 float64
}

// Validate checks the parameters describe a proper MMPP.
func (m MMPP2) Validate() error {
	switch {
	case m.Rate0 < 0 || m.Rate1 < 0:
		return fmt.Errorf("workload: negative MMPP phase rate")
	case m.Sojourn0 <= 0 || m.Sojourn1 <= 0:
		return fmt.Errorf("workload: MMPP phase sojourns must be positive")
	case m.Rate0 == 0 && m.Rate1 == 0:
		return fmt.Errorf("workload: MMPP with both phase rates zero generates nothing")
	}
	return nil
}

// Rate returns the long-run mean rate Σ π_i·Rate_i under the stationary
// phase distribution π_i ∝ Sojourn_i.
func (m MMPP2) Rate() float64 {
	total := m.Sojourn0 + m.Sojourn1
	return (m.Rate0*m.Sojourn0 + m.Rate1*m.Sojourn1) / total
}

// New implements the process factory for sim.Config.Arrivals. It panics
// on invalid parameters (a rateless or zero-sojourn chain would hang the
// event loop); use Validate, OnOff or ArrivalSpec for checked
// construction.
func (m MMPP2) New() sim.ArrivalProcess {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return &mmpp2Proc{p: m}
}

// OnOff builds the on-off source with the given mean merged rate: silent
// for exponential off-periods of mean meanOff, Poisson at burstFactor
// times the mean rate during on-periods of mean meanOn. burstFactor must
// satisfy 1 < burstFactor ≤ (meanOn+meanOff)/meanOn so the on-rate
// reproduces meanRate exactly.
func OnOff(meanRate, burstFactor, meanOn, meanOff float64) (MMPP2, error) {
	if meanRate <= 0 || meanOn <= 0 || meanOff <= 0 {
		return MMPP2{}, fmt.Errorf("workload: on-off rate and sojourns must be positive")
	}
	maxFactor := (meanOn + meanOff) / meanOn
	if burstFactor <= 1 || burstFactor > maxFactor {
		return MMPP2{}, fmt.Errorf("workload: burst factor %v outside (1, %v]", burstFactor, maxFactor)
	}
	on := burstFactor * meanRate
	// Rate0 keeps the long-run mean exactly meanRate; it is zero when
	// burstFactor hits its maximum (the pure on-off source).
	off := meanRate*(meanOn+meanOff)/meanOff - on*meanOn/meanOff
	if off < 0 {
		off = 0
	}
	m := MMPP2{Rate0: off, Rate1: on, Sojourn0: meanOff, Sojourn1: meanOn}
	return m, m.Validate()
}

// mmpp2Proc is the per-run mutable state of an MMPP2.
type mmpp2Proc struct {
	p        MMPP2
	phase    int
	switchAt float64
	started  bool
}

// Rate implements sim.ArrivalProcess.
func (m *mmpp2Proc) Rate() float64 { return m.p.Rate() }

// Next implements sim.ArrivalProcess. Because within-phase arrivals are
// Poisson, a candidate interarrival that overshoots the phase switch can
// be discarded memorylessly and redrawn in the next phase.
func (m *mmpp2Proc) Next(t float64, rng *xrand.RNG) float64 {
	if !m.started {
		m.started = true
		pi1 := m.p.Sojourn1 / (m.p.Sojourn0 + m.p.Sojourn1)
		if rng.Bernoulli(pi1) {
			m.phase = 1
		}
		m.switchAt = t + rng.Exp(1/m.sojourn())
	}
	for {
		if rate := m.rate(); rate > 0 {
			if next := t + rng.Exp(rate); next <= m.switchAt {
				return next
			}
		}
		t = m.switchAt
		m.phase ^= 1
		m.switchAt = t + rng.Exp(1/m.sojourn())
	}
}

func (m *mmpp2Proc) rate() float64 {
	if m.phase == 0 {
		return m.p.Rate0
	}
	return m.p.Rate1
}

func (m *mmpp2Proc) sojourn() float64 {
	if m.phase == 0 {
		return m.p.Sojourn0
	}
	return m.p.Sojourn1
}

// Periodic injects one packet every Interval time units, starting at
// Interval — the deterministic, zero-variance extreme of the arrival
// spectrum (each arrival still picks a uniform source).
type Periodic struct {
	// Interval is the fixed interarrival time of the merged stream.
	Interval float64
}

// Validate checks the interval is usable.
func (p Periodic) Validate() error {
	if p.Interval <= 0 || math.IsInf(p.Interval, 1) {
		return fmt.Errorf("workload: periodic interval must be positive and finite")
	}
	return nil
}

// New returns a fresh process; Periodic is stateless. It panics on an
// invalid interval (a zero interval would freeze simulated time).
func (p Periodic) New() sim.ArrivalProcess {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// Rate implements sim.ArrivalProcess.
func (p Periodic) Rate() float64 { return 1 / p.Interval }

// Next implements sim.ArrivalProcess; it consumes no randomness.
func (p Periodic) Next(t float64, _ *xrand.RNG) float64 { return t + p.Interval }

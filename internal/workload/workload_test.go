package workload

import (
	"math"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// bindAll returns every built-in pattern bound to net (skipping patterns
// the topology does not support).
func bindAll(t *testing.T, net topology.Network) map[string]*Demand {
	t.Helper()
	out := map[string]*Demand{}
	for _, p := range Patterns() {
		d, err := p.Bind(net)
		if err != nil {
			continue
		}
		out[p.Name()] = d
	}
	return out
}

func TestPatternRowsSumToOne(t *testing.T) {
	nets := []topology.Network{
		topology.NewArray2D(4),
		topology.NewTorus2D(5),
		topology.NewHypercube(3),
	}
	for _, net := range nets {
		for name, d := range bindAll(t, net) {
			for src := 0; src < net.NumNodes(); src++ {
				sum := 0.0
				for dst := 0; dst < net.NumNodes(); dst++ {
					p := d.Prob(src, dst)
					if p < 0 {
						t.Fatalf("%s on %s: negative P[%d|%d]", name, net.Name(), dst, src)
					}
					sum += p
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Errorf("%s on %s: row %d sums to %v", name, net.Name(), src, sum)
				}
			}
		}
	}
}

// TestSamplerMatchesProb checks each pattern's sampler empirically follows
// its declared distribution.
func TestSamplerMatchesProb(t *testing.T) {
	net := topology.NewArray2D(4)
	const draws = 40000
	for name, d := range bindAll(t, net) {
		rng := xrand.New(7)
		for _, src := range []int{0, 5, 15} {
			counts := make([]int, net.NumNodes())
			for i := 0; i < draws; i++ {
				counts[d.Sample(src, rng)]++
			}
			for dst, c := range counts {
				want := d.Prob(src, dst)
				got := float64(c) / draws
				// Absolute tolerance sized for draws=40k multinomial noise.
				if math.Abs(got-want) > 0.01 {
					t.Errorf("%s: P[%d|%d] empirical %v vs exact %v", name, dst, src, got, want)
				}
			}
		}
	}
}

func TestPermutationShapes(t *testing.T) {
	a := topology.NewArray2D(4)
	tr, err := Transpose{}.Bind(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Sample(a.Node(1, 3), nil); got != a.Node(3, 1) {
		t.Errorf("transpose(1,3) = %d, want node (3,1)", got)
	}
	bc, err := BitComplement{}.Bind(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := bc.Sample(a.Node(0, 1), nil); got != a.Node(3, 2) {
		t.Errorf("bitcomp(0,1) = %d, want node (3,2)", got)
	}
	br, err := BitReversal{}.Bind(a)
	if err != nil {
		t.Fatal(err)
	}
	// 4 = 2 bits per axis: row 1 (01) -> 2 (10); col 2 -> 1.
	if got := br.Sample(a.Node(1, 2), nil); got != a.Node(2, 1) {
		t.Errorf("bitrev(1,2) = %d, want node (2,1)", got)
	}
	if _, err := (BitReversal{}).Bind(topology.NewArray2D(5)); err == nil {
		t.Error("bitrev accepted a non-power-of-two grid")
	}
	tor := topology.NewTorus2D(5)
	tn, err := Tornado{}.Bind(tor)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(5/2)-1 = 2 columns around the row ring.
	if got := tn.Sample(tor.Node(2, 4), nil); got != tor.Node(2, 1) {
		t.Errorf("tornado(2,4) = %d, want node (2,1)", got)
	}
	if _, err := (Tornado{}).Bind(a); err == nil {
		t.Error("tornado accepted the array")
	}
	h := topology.NewHypercube(4)
	hr, err := BitReversal{}.Bind(h)
	if err != nil {
		t.Fatal(err)
	}
	if got := hr.Sample(0b0011, nil); got != 0b1100 {
		t.Errorf("cube bitrev(0011) = %04b, want 1100", got)
	}
}

func TestHotSpotCenters(t *testing.T) {
	a := topology.NewArray2D(4)
	d, err := HotSpot{K: 1, Weight: 0.5}.Bind(a)
	if err != nil {
		t.Fatal(err)
	}
	// The geometric center of an even grid falls between nodes; the four
	// nearest tie and the lowest id wins.
	center := a.Node(1, 1)
	want := 0.5 + 0.5/16
	if got := d.Prob(0, center); math.Abs(got-want) > 1e-12 {
		t.Errorf("hotspot center mass %v, want %v", got, want)
	}
	if got := d.Prob(0, 0); math.Abs(got-0.5/16) > 1e-12 {
		t.Errorf("hotspot cold mass %v, want %v", got, 0.5/16)
	}
	if _, err := (HotSpot{K: 1, Weight: 1.5}).Bind(a); err == nil {
		t.Error("hotspot accepted weight > 1")
	}
	if _, err := (HotSpot{Hot: []int{99}, Weight: 0.2}).Bind(a); err == nil {
		t.Error("hotspot accepted an out-of-range hot node")
	}
	// k = 4 on an even grid must pick the symmetric 2x2 center block.
	a8 := topology.NewArray2D(8)
	got := centerNodes(a8, 4)
	want4 := []int{a8.Node(3, 3), a8.Node(3, 4), a8.Node(4, 3), a8.Node(4, 4)}
	for i, w := range want4 {
		if got[i] != w {
			t.Fatalf("centerNodes(8x8, 4) = %v, want %v", got, want4)
		}
	}
}

func TestNeighborOneHop(t *testing.T) {
	a := topology.NewArray2D(4)
	d, err := NearestNeighbor{}.Bind(a)
	if err != nil {
		t.Fatal(err)
	}
	// A corner has out-degree 2, an interior node 4.
	if got := d.Prob(a.Node(0, 0), a.Node(0, 1)); got != 0.5 {
		t.Errorf("corner neighbor mass %v, want 0.5", got)
	}
	if got := d.Prob(a.Node(1, 1), a.Node(1, 2)); got != 0.25 {
		t.Errorf("interior neighbor mass %v, want 0.25", got)
	}
	if got := d.Prob(a.Node(0, 0), a.Node(3, 3)); got != 0 {
		t.Errorf("non-neighbor mass %v, want 0", got)
	}
	an, err := Analyze(a, routing.GreedyXY{A: a}, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.MeanHops-1) > 1e-12 {
		t.Errorf("neighbor mean hops %v, want 1", an.MeanHops)
	}
}

func TestZipfLocality(t *testing.T) {
	a := topology.NewArray2D(4)
	d, err := ZipfDistance{S: 2}.Bind(a)
	if err != nil {
		t.Fatal(err)
	}
	src := a.Node(1, 1)
	if d.Prob(src, a.Node(1, 2)) <= d.Prob(src, a.Node(3, 3)) {
		t.Error("zipf should prefer near destinations")
	}
	flat, err := ZipfDistance{}.Bind(a)
	if err != nil {
		t.Fatal(err)
	}
	if p := flat.Prob(src, 0); math.Abs(p-1.0/16) > 1e-12 {
		t.Errorf("zipf s=0 should be uniform, got %v", p)
	}
}

// Package workload makes traffic a first-class, composable object. The
// paper's tables assume uniform random destinations and stationary Poisson
// sources, but its bounds (Theorems 6–8, 12) are stated for general
// per-edge arrival rates λ_e — and the interesting regimes are the
// non-uniform ones a production mesh actually sees: hot-spots, structured
// permutations (transpose, bit reversal, bit complement, tornado), local
// and distance-biased demand, and bursty sources.
//
// The package has three layers:
//
//   - Pattern: a named traffic pattern. Bind specializes it to a concrete
//     topology, yielding a Demand that is simultaneously a
//     routing.DestSampler (drives the simulator) and an exact distribution
//     P[dst|src] (drives the analytic pipeline and the simulator's
//     stability check).
//   - Analysis (analysis.go): a Demand plus a router lowered through the
//     demand-matrix → queueing.Traffic bridge to exact per-edge rates λ_e,
//     utilizations, the bottleneck edge, and the analytic saturation rate
//     λ* — all before a single packet is simulated.
//   - Scenario (scenario.go): a declarative spec — topology, router,
//     pattern, arrival process, load points, replicas — that validates and
//     lowers to []sim.Config for sim.StreamSweep. A registry of named
//     scenarios (registry.go) backs cmd/scenario.
//
// Arrival processes (arrivals.go) generalize the engine's merged Poisson
// clock to MMPP/on-off bursty sources and deterministic periodic
// injection via sim.ArrivalProcess.
package workload

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Pattern is a topology-independent description of where traffic wants to
// go. Bind specializes it to a network or reports that the network lacks
// the structure the pattern needs (e.g. tornado off the torus).
type Pattern interface {
	// Name is the pattern's registry identifier, e.g. "hotspot".
	Name() string
	// Bind specializes the pattern to net.
	Bind(net topology.Network) (*Demand, error)
}

// Demand is a pattern bound to a concrete network: an exact destination
// distribution P[dst|src] plus a sampler drawing from it. It implements
// routing.DestSampler and sim.DemandDist, so one value serves both the
// simulator and the analytic pipeline.
type Demand struct {
	pattern string
	net     topology.Network
	sampler routing.DestSampler
	prob    func(src, dst int) float64
}

// Pattern returns the name of the pattern this demand was bound from.
func (d *Demand) Pattern() string { return d.pattern }

// Network returns the bound topology.
func (d *Demand) Network() topology.Network { return d.net }

// Sample implements routing.DestSampler.
func (d *Demand) Sample(src int, rng *xrand.RNG) int { return d.sampler.Sample(src, rng) }

// Prob implements sim.DemandDist: the probability a packet generated at
// src is destined for dst. Rows sum to 1 over dst for every source.
func (d *Demand) Prob(src, dst int) float64 { return d.prob(src, dst) }

// grid is the common square-coordinate view of Array2D and Torus2D, which
// is all the structure most patterns need.
type grid struct {
	n      int
	torus  bool
	node   func(r, c int) int
	coords func(node int) (r, c int)
}

func gridOf(net topology.Network) (*grid, bool) {
	switch t := net.(type) {
	case *topology.Array2D:
		return &grid{n: t.N(), node: t.Node, coords: t.Coords}, true
	case *topology.Torus2D:
		return &grid{n: t.N(), torus: true, node: t.Node, coords: t.Coords}, true
	}
	return nil, false
}

// distFunc returns the hop-count distance metric of net: the closed form
// for the known topologies, breadth-first search otherwise (bind-time
// only, never on the sampling path).
func distFunc(net topology.Network) func(src, dst int) int {
	switch t := net.(type) {
	case *topology.Array2D:
		return t.Distance
	case *topology.Torus2D:
		n := t.N()
		return func(src, dst int) int {
			r1, c1 := t.Coords(src)
			r2, c2 := t.Coords(dst)
			pr, mr := topology.WrapDist(r1, r2, n)
			pc, mc := topology.WrapDist(c1, c2, n)
			return min(pr, mr) + min(pc, mc)
		}
	case *topology.Linear:
		return func(src, dst int) int { return absInt(src - dst) }
	case *topology.Hypercube:
		return func(src, dst int) int { return bits.OnesCount(uint(src ^ dst)) }
	default:
		return bfsDist(net)
	}
}

// bfsDist precomputes all-pairs BFS distances over the directed edges.
func bfsDist(net topology.Network) func(src, dst int) int {
	nn := net.NumNodes()
	adj := make([][]int, nn)
	for e := 0; e < net.NumEdges(); e++ {
		from := net.EdgeFrom(e)
		adj[from] = append(adj[from], net.EdgeTo(e))
	}
	dist := make([]int, nn*nn)
	queue := make([]int, 0, nn)
	for src := 0; src < nn; src++ {
		row := dist[src*nn : (src+1)*nn]
		for i := range row {
			row[i] = -1
		}
		row[src] = 0
		queue = append(queue[:0], src)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range adj[cur] {
				if row[next] == -1 {
					row[next] = row[cur] + 1
					queue = append(queue, next)
				}
			}
		}
	}
	return func(src, dst int) int { return dist[src*nn+dst] }
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// permDemand wraps a permutation as a Demand.
func permDemand(name string, net topology.Network, perm []int) *Demand {
	p := routing.PermDest{Perm: perm}
	return &Demand{pattern: name, net: net, sampler: p, prob: p.Prob}
}

// Uniform is the paper's standard model: destinations uniform over all
// nodes (a destination may equal the source).
type Uniform struct{}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Bind implements Pattern.
func (Uniform) Bind(net topology.Network) (*Demand, error) {
	nn := net.NumNodes()
	p := 1 / float64(nn)
	return &Demand{
		pattern: "uniform",
		net:     net,
		sampler: routing.UniformDest{NumNodes: nn},
		prob:    func(_, _ int) float64 { return p },
	}, nil
}

// HotSpot sends a fixed fraction of every node's traffic to a small hot
// destination set and spreads the rest uniformly — the classic hot-spot
// pattern of shared-memory and service meshes.
type HotSpot struct {
	// Hot explicitly lists the hot destinations. When empty, the K nodes
	// closest to the network center (ties broken by node id) are used.
	Hot []int
	// K is the hot-set size when Hot is empty; 0 means 1.
	K int
	// Weight in (0, 1] is the fraction of traffic aimed at the hot set,
	// split uniformly among its members; the remaining 1−Weight is
	// uniform over all nodes (so hot nodes receive both components).
	Weight float64
}

// Name implements Pattern.
func (HotSpot) Name() string { return "hotspot" }

// Bind implements Pattern.
func (h HotSpot) Bind(net topology.Network) (*Demand, error) {
	if h.Weight <= 0 || h.Weight > 1 {
		return nil, fmt.Errorf("workload: hotspot weight %v outside (0, 1]", h.Weight)
	}
	nn := net.NumNodes()
	hot := append([]int(nil), h.Hot...)
	if len(hot) == 0 {
		k := h.K
		if k <= 0 {
			k = 1
		}
		if k > nn {
			return nil, fmt.Errorf("workload: hotspot k=%d exceeds %d nodes", k, nn)
		}
		hot = centerNodes(net, k)
	}
	for _, node := range hot {
		if node < 0 || node >= nn {
			return nil, fmt.Errorf("workload: hot node %d outside [0,%d)", node, nn)
		}
	}
	s := hotSpotDest{hot: hot, weight: h.Weight, numNodes: nn}
	return &Demand{pattern: "hotspot", net: net, sampler: s, prob: s.prob}, nil
}

// centerNodes returns the k nodes closest to the network's center,
// deterministically tie-broken by id. On grids the reference point is the
// geometric center ((n−1)/2, (n−1)/2) — which for even n falls between
// nodes, so k = 4 yields the symmetric 2×2 center block rather than one
// node plus an arbitrary subset of its neighbors. Elsewhere the hop
// distance to node N/2 is used.
func centerNodes(net topology.Network, k int) []int {
	var key func(id int) int
	if g, ok := gridOf(net); ok {
		key = func(id int) int {
			r, c := g.coords(id)
			// Doubled coordinates keep the half-integer center exact.
			return absInt(2*r-(g.n-1)) + absInt(2*c-(g.n-1))
		}
	} else {
		center := net.NumNodes() / 2
		dist := distFunc(net)
		key = func(id int) int { return dist(id, center) }
	}
	ids := make([]int, net.NumNodes())
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		ka, kb := key(ids[a]), key(ids[b])
		if ka != kb {
			return ka < kb
		}
		return ids[a] < ids[b]
	})
	return ids[:k]
}

type hotSpotDest struct {
	hot      []int
	weight   float64
	numNodes int
}

// Sample implements routing.DestSampler.
func (h hotSpotDest) Sample(_ int, rng *xrand.RNG) int {
	if rng.Bernoulli(h.weight) {
		if len(h.hot) == 1 {
			return h.hot[0]
		}
		return h.hot[rng.Intn(len(h.hot))]
	}
	return rng.Intn(h.numNodes)
}

func (h hotSpotDest) prob(_, dst int) float64 {
	p := (1 - h.weight) / float64(h.numNodes)
	for _, node := range h.hot {
		if node == dst {
			p += h.weight / float64(len(h.hot))
			break
		}
	}
	return p
}

// Transpose is the matrix-transpose permutation on a square grid:
// (r, c) → (c, r). Diagonal nodes talk to themselves.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Bind implements Pattern.
func (Transpose) Bind(net topology.Network) (*Demand, error) {
	g, ok := gridOf(net)
	if !ok {
		return nil, fmt.Errorf("workload: transpose needs a square grid, got %s", net.Name())
	}
	perm := make([]int, net.NumNodes())
	for node := range perm {
		r, c := g.coords(node)
		perm[node] = g.node(c, r)
	}
	return permDemand("transpose", net, perm), nil
}

// BitReversal is the FFT permutation: each coordinate's bits reversed on a
// power-of-two grid, the whole address reversed on the hypercube.
type BitReversal struct{}

// Name implements Pattern.
func (BitReversal) Name() string { return "bitrev" }

// Bind implements Pattern.
func (BitReversal) Bind(net topology.Network) (*Demand, error) {
	if h, ok := net.(*topology.Hypercube); ok {
		perm := make([]int, net.NumNodes())
		for node := range perm {
			perm[node] = reverseBits(node, h.D())
		}
		return permDemand("bitrev", net, perm), nil
	}
	g, ok := gridOf(net)
	if !ok || bits.OnesCount(uint(g.n)) != 1 {
		return nil, fmt.Errorf("workload: bitrev needs a power-of-two grid or hypercube, got %s", net.Name())
	}
	width := bits.TrailingZeros(uint(g.n))
	perm := make([]int, net.NumNodes())
	for node := range perm {
		r, c := g.coords(node)
		perm[node] = g.node(reverseBits(r, width), reverseBits(c, width))
	}
	return permDemand("bitrev", net, perm), nil
}

func reverseBits(v, width int) int {
	out := 0
	for i := 0; i < width; i++ {
		out = out<<1 | (v>>i)&1
	}
	return out
}

// BitComplement mirrors every coordinate across the grid center
// ((r, c) → (n−1−r, n−1−c)), or complements the hypercube address. On the
// array it drives every route through the middle, the worst case the
// paper's saturated-edge analysis (§4.6) is about.
type BitComplement struct{}

// Name implements Pattern.
func (BitComplement) Name() string { return "bitcomp" }

// Bind implements Pattern.
func (BitComplement) Bind(net topology.Network) (*Demand, error) {
	if h, ok := net.(*topology.Hypercube); ok {
		mask := h.NumNodes() - 1
		perm := make([]int, net.NumNodes())
		for node := range perm {
			perm[node] = node ^ mask
		}
		return permDemand("bitcomp", net, perm), nil
	}
	g, ok := gridOf(net)
	if !ok {
		return nil, fmt.Errorf("workload: bitcomp needs a square grid or hypercube, got %s", net.Name())
	}
	perm := make([]int, net.NumNodes())
	for node := range perm {
		r, c := g.coords(node)
		perm[node] = g.node(g.n-1-r, g.n-1-c)
	}
	return permDemand("bitcomp", net, perm), nil
}

// Tornado shifts every node ⌈n/2⌉−1 columns around its row ring — the
// adversarial torus pattern that defeats shortest-way locality (every
// packet travels the maximal shorter-way distance in one direction).
type Tornado struct{}

// Name implements Pattern.
func (Tornado) Name() string { return "tornado" }

// Bind implements Pattern.
func (Tornado) Bind(net topology.Network) (*Demand, error) {
	g, ok := gridOf(net)
	if !ok || !g.torus {
		return nil, fmt.Errorf("workload: tornado needs a torus, got %s", net.Name())
	}
	shift := (g.n+1)/2 - 1
	perm := make([]int, net.NumNodes())
	for node := range perm {
		r, c := g.coords(node)
		perm[node] = g.node(r, (c+shift)%g.n)
	}
	return permDemand("tornado", net, perm), nil
}

// NearestNeighbor sends every packet to a uniformly chosen out-neighbor of
// its source: maximal locality, one hop per packet.
type NearestNeighbor struct{}

// Name implements Pattern.
func (NearestNeighbor) Name() string { return "neighbor" }

// Bind implements Pattern.
func (NearestNeighbor) Bind(net topology.Network) (*Demand, error) {
	nn := net.NumNodes()
	adj := make([][]int, nn)
	for e := 0; e < net.NumEdges(); e++ {
		from := net.EdgeFrom(e)
		adj[from] = append(adj[from], net.EdgeTo(e))
	}
	for _, src := range topology.Sources(net) {
		if len(adj[src]) == 0 {
			return nil, fmt.Errorf("workload: neighbor pattern: source %d has no out-edges on %s", src, net.Name())
		}
		sort.Ints(adj[src]) // deterministic order independent of edge ids
	}
	s := neighborDest{adj: adj}
	return &Demand{pattern: "neighbor", net: net, sampler: s, prob: s.prob}, nil
}

type neighborDest struct {
	adj [][]int
}

// Sample implements routing.DestSampler.
func (n neighborDest) Sample(src int, rng *xrand.RNG) int {
	nb := n.adj[src]
	return nb[rng.Intn(len(nb))]
}

func (n neighborDest) prob(src, dst int) float64 {
	nb := n.adj[src]
	for _, v := range nb {
		if v == dst {
			return 1 / float64(len(nb))
		}
	}
	return 0
}

// ZipfDistance draws destinations with probability ∝ (1+d(src,dst))^−S,
// where d is the hop-count distance — a tunable locality dial between
// uniform (S = 0) and nearest-neighbor-like (large S) demand. The walk of
// §5.2 is the paper's own instance of this family; this one works on any
// topology with a distance metric.
type ZipfDistance struct {
	// S ≥ 0 is the decay exponent.
	S float64
}

// Name implements Pattern.
func (ZipfDistance) Name() string { return "zipf" }

// Bind implements Pattern.
func (z ZipfDistance) Bind(net topology.Network) (*Demand, error) {
	if z.S < 0 {
		return nil, fmt.Errorf("workload: zipf exponent %v must be >= 0", z.S)
	}
	nn := net.NumNodes()
	dist := distFunc(net)
	pmf := make([]float64, nn*nn)
	for src := 0; src < nn; src++ {
		for dst := 0; dst < nn; dst++ {
			d := dist(src, dst)
			if d < 0 {
				continue // unreachable (e.g. butterfly interior): zero mass
			}
			pmf[src*nn+dst] = math.Pow(1+float64(d), -z.S)
		}
	}
	w, err := routing.NewWeightedDest(nn, pmf)
	if err != nil {
		return nil, err
	}
	return &Demand{pattern: "zipf", net: net, sampler: w, prob: w.Prob}, nil
}

// Patterns lists the built-in patterns with their default parameters, in
// registry order.
func Patterns() []Pattern {
	return []Pattern{
		Uniform{},
		HotSpot{K: 1, Weight: 0.2},
		Transpose{},
		BitReversal{},
		BitComplement{},
		Tornado{},
		NearestNeighbor{},
		ZipfDistance{S: 2},
	}
}

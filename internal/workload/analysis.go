package workload

import (
	"fmt"
	"math"

	"repro/internal/queueing"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Analysis is the exact traffic view of (demand, router) on a network,
// computed before any packet is simulated. All rate quantities are stored
// at a per-node generation rate of 1 and scale linearly, so one Analysis
// answers every load point of a sweep.
type Analysis struct {
	// EdgeRates[e] is λ_e at per-node rate 1, from the traffic equations.
	EdgeRates []float64
	// Util[e] is ρ_e = λ_e·s_e at per-node rate 1.
	Util []float64
	// Bottleneck is the edge with the largest utilization and UtilPerRate
	// its utilization at per-node rate 1, so at per-node rate λ the
	// saturating edge runs at λ·UtilPerRate.
	Bottleneck  int
	UtilPerRate float64
	// LambdaStar is the analytic saturation rate λ* = 1/UtilPerRate: the
	// per-node generation rate at which the bottleneck edge reaches
	// utilization 1 (Theorem 6's stability boundary for this demand).
	LambdaStar float64
	// MeanHops is the expected route length n̄ under the demand.
	MeanHops float64

	svcMean    []float64
	numSources int
}

// Analyze lowers a Demand through the demand-matrix → queueing.Traffic
// bridge: every (source, destination) pair is walked through the router's
// steppers (randomized choice routers average uniformly, matching
// RandGreedy's fair coin) into an open-network Traffic whose traffic
// equations λ = a + λP are then solved exactly. svcMean optionally gives
// per-edge mean service times (nil = unit service).
func Analyze(net topology.Network, router routing.Router, demand *Demand, svcMean []float64) (*Analysis, error) {
	steppers, _, ok := routing.Steppers(router)
	if !ok {
		return nil, fmt.Errorf("workload: router %T exposes no steppers; cannot analyze exactly", router)
	}
	if svcMean != nil && len(svcMean) != net.NumEdges() {
		return nil, fmt.Errorf("workload: svcMean has %d entries, want %d", len(svcMean), net.NumEdges())
	}
	sources := topology.Sources(net)
	tr, meanHops := buildTraffic(net, steppers, demand, sources)
	lambda, err := solveTraffic(tr)
	if err != nil {
		return nil, err
	}
	util, err := queueing.Utilizations(lambda, svcMean)
	if err != nil {
		return nil, err
	}
	bottleneck, maxUtil := queueing.Bottleneck(util)
	a := &Analysis{
		EdgeRates:   lambda,
		Util:        util,
		Bottleneck:  bottleneck,
		UtilPerRate: maxUtil,
		LambdaStar:  math.Inf(1),
		MeanHops:    meanHops,
		svcMean:     svcMean,
		numSources:  len(sources),
	}
	if maxUtil > 0 {
		a.LambdaStar = 1 / maxUtil
	}
	return a, nil
}

// buildTraffic constructs the open-network traffic description induced by
// the demand matrix at per-node rate 1: external arrivals enter at each
// route's first edge and the routing chain's transition probabilities are
// flow-weighted over all (src, dst, choice) triples. It also returns the
// demand's mean route length.
func buildTraffic(net topology.Network, steppers []routing.Stepper, demand *Demand, sources []int) (*queueing.Traffic, float64) {
	numEdges := net.NumEdges()
	tr := queueing.NewTraffic(numEdges)
	flow := make([]map[int]float64, numEdges)
	through := make([]float64, numEdges)
	totalHops := 0.0
	for _, src := range sources {
		for dst := 0; dst < net.NumNodes(); dst++ {
			p := demand.Prob(src, dst)
			if p == 0 {
				continue
			}
			w := p / float64(len(steppers))
			for _, st := range steppers {
				prev := -1
				for cur := src; ; {
					edge, done := st.NextEdge(cur, dst)
					if done {
						break
					}
					totalHops += w
					through[edge] += w
					if prev == -1 {
						tr.External[edge] += w
					} else {
						if flow[prev] == nil {
							flow[prev] = make(map[int]float64)
						}
						flow[prev][edge] += w
					}
					prev = edge
					cur = net.EdgeTo(edge)
				}
			}
		}
	}
	for e, m := range flow {
		for to, f := range m {
			tr.Routes[e] = append(tr.Routes[e], queueing.Transition{To: to, Prob: f / through[e]})
		}
	}
	return tr, totalHops / float64(len(sources))
}

// solveTraffic solves the traffic equations, using the exact dense solver
// for small networks and the fixed-point iteration beyond it.
func solveTraffic(tr *queueing.Traffic) ([]float64, error) {
	if len(tr.External) <= 1024 {
		return tr.SolveDense()
	}
	return tr.SolveIterative(1e-12, 100000)
}

// UtilAt returns the bottleneck utilization at per-node rate perNode.
func (a *Analysis) UtilAt(perNode float64) float64 { return perNode * a.UtilPerRate }

// MD1DelayAt returns the per-queue M/D/1 (or M/G/1 with the configured
// deterministic means) independence estimate of the mean packet delay at
// per-node rate perNode: T = Σ_e L_e / Λ by Little's law, +Inf at or
// beyond saturation. It is the pattern-aware generalization of §4.2's
// estimate, exact per queue but ignoring inter-queue dependence.
func (a *Analysis) MD1DelayAt(perNode float64) float64 {
	if a.UtilAt(perNode) >= 1 {
		return math.Inf(1)
	}
	totalArrival := perNode * float64(a.numSources)
	if totalArrival == 0 {
		return 0
	}
	totalN := 0.0
	for e, rate := range a.EdgeRates {
		s := 1.0
		if a.svcMean != nil {
			s = a.svcMean[e]
		}
		n, err := queueing.MD1Number(rate*perNode, s)
		if err != nil {
			return math.Inf(1)
		}
		totalN += n
	}
	return totalN / totalArrival
}

package workload

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stepsim"
	"repro/internal/xrand"
)

func TestRegistryScenariosBind(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Registry() {
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Description == "" {
			t.Errorf("scenario %q has no description", s.Name)
		}
		b, err := s.Bind()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(b.Configs) != len(s.Loads) || len(b.Points) != len(s.Loads) {
			t.Fatalf("%s: %d configs for %d loads", s.Name, len(b.Configs), len(s.Loads))
		}
		for i, pt := range b.Points {
			if want := s.Loads[i] * b.Analysis.LambdaStar; math.Abs(pt.NodeRate-want) > 1e-12 {
				t.Errorf("%s point %d: rate %v, want %v", s.Name, i, pt.NodeRate, want)
			}
			cfg := b.Configs[i]
			if cfg.Arrivals != nil {
				if cfg.NodeRate != 0 {
					t.Errorf("%s point %d: both NodeRate and Arrivals set", s.Name, i)
				}
				merged := pt.NodeRate * float64(len(topologySources(b)))
				if got := cfg.Arrivals().Rate(); math.Abs(got-merged)/merged > 1e-9 {
					t.Errorf("%s point %d: arrival rate %v, want %v", s.Name, i, got, merged)
				}
			} else if cfg.NodeRate != pt.NodeRate {
				t.Errorf("%s point %d: config rate %v != point rate %v", s.Name, i, cfg.NodeRate, pt.NodeRate)
			}
		}
	}
}

func topologySources(b *Bound) []int {
	nodes := make([]int, b.Net.NumNodes())
	for i := range nodes {
		nodes[i] = i
	}
	return nodes
}

func TestScenarioValidation(t *testing.T) {
	base := func() Scenario {
		s, err := ByName("hotspot-8x8")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := base()
	s.Loads = []float64{1.2}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "lambda*") {
		t.Errorf("overload load accepted: %v", err)
	}
	s = base()
	s.Name = ""
	if err := s.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	s = base()
	s.Pattern.Kind = "tornado" // needs a torus
	if err := s.Validate(); err == nil {
		t.Error("tornado on the array accepted")
	}
	s = base()
	s.Arrivals = ArrivalSpec{Kind: "warp"}
	if err := s.Validate(); err == nil {
		t.Error("unknown arrival kind accepted")
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Error("unknown scenario name accepted")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	s, err := ByName("bursty-8x8")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || back.Pattern.Kind != s.Pattern.Kind || back.Arrivals.Kind != s.Arrivals.Kind {
		t.Errorf("round trip mutated the scenario: %+v vs %+v", back, s)
	}
	if _, err := ParseScenario([]byte(`{"name":"x"`)); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ParseScenario([]byte(`{"name":"x","topology":{"kind":"array","n":4},"pattern":{"kind":"uniform"},"loads":[]}`)); err == nil {
		t.Error("empty load list accepted")
	}
}

// TestQuickScenarioRuns end-to-end: a shrunk registry scenario must
// simulate cleanly and produce finite delays at every load point.
func TestQuickScenarioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates; skipped with -short")
	}
	for _, name := range []string{"hotspot-8x8", "bursty-8x8"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Quick().Bind()
		if err != nil {
			t.Fatal(err)
		}
		sets, err := sim.RunSweep(context.Background(), b.Configs, b.Scenario.Replicas, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, rs := range sets {
			if rs.MeanDelay < b.Analysis.MeanHops*0.5 || math.IsInf(rs.MeanDelay, 0) || math.IsNaN(rs.MeanDelay) {
				t.Errorf("%s load %v: implausible delay %v", name, b.Points[i].Load, rs.MeanDelay)
			}
		}
	}
}

// TestArrivalProcessRates checks each process's long-run empirical rate
// against its declared Rate().
func TestArrivalProcessRates(t *testing.T) {
	procs := []struct {
		name string
		make func() sim.ArrivalProcess
	}{
		{"poisson", Poisson{TotalRate: 2}.New},
		{"periodic", Periodic{Interval: 0.5}.New},
		{"mmpp", MMPP2{Rate0: 0.5, Rate1: 6, Sojourn0: 20, Sojourn1: 5}.New},
	}
	for _, p := range procs {
		proc := p.make()
		rng := xrand.New(5)
		// MMPP counts are heavily over-dispersed (index of dispersion ~25
		// for these parameters), so the horizon is long enough to make 2%
		// a multi-sigma bound.
		const horizon = 1e6
		count := 0
		for t0 := proc.Next(0, rng); t0 < horizon; t0 = proc.Next(t0, rng) {
			count++
		}
		got := float64(count) / horizon
		want := proc.Rate()
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("%s: empirical rate %v vs declared %v", p.name, got, want)
		}
	}
}

func TestOnOffParameters(t *testing.T) {
	m, err := OnOff(2, 4, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rate0 != 0 {
		t.Errorf("maximal burst factor should silence the off phase, got rate0 %v", m.Rate0)
	}
	if math.Abs(m.Rate()-2) > 1e-12 {
		t.Errorf("on-off mean rate %v, want 2", m.Rate())
	}
	if _, err := OnOff(2, 5, 10, 30); err == nil {
		t.Error("burst factor above (on+off)/on accepted")
	}
	if _, err := OnOff(2, 1, 10, 30); err == nil {
		t.Error("burst factor 1 accepted")
	}
	if err := (MMPP2{Rate0: 0, Rate1: 0, Sojourn0: 1, Sojourn1: 1}).Validate(); err == nil {
		t.Error("silent MMPP accepted")
	}
	// New must refuse parameters that would hang the event loop rather
	// than hand the engine a process that never produces an arrival.
	mustPanic(t, "MMPP2.New", func() { MMPP2{Sojourn0: 1, Sojourn1: 1}.New() })
	mustPanic(t, "Periodic.New", func() { Periodic{}.New() })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic on invalid parameters", name)
		}
	}()
	fn()
}

// TestBurstyRunsDeterministic pins the custom-arrivals path to seeded
// reproducibility: two runs of the same bursty config must agree bitwise.
func TestBurstyRunsDeterministic(t *testing.T) {
	s, err := ByName("bursty-8x8")
	if err != nil {
		t.Fatal(err)
	}
	s = s.Quick()
	s.Loads = s.Loads[:1]
	b, err := s.Bind()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sim.Run(b.Configs[0])
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(b.Configs[0])
	if err != nil {
		t.Fatal(err)
	}
	if r1.MeanDelay != r2.MeanDelay || r1.Generated != r2.Generated || r1.MeanN != r2.MeanN {
		t.Errorf("bursty runs diverge: %+v vs %+v", r1, r2)
	}
}

func TestSlottedConfigs(t *testing.T) {
	s, err := ByName("uniform-8x8")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Bind()
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := b.SlottedConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != len(b.Configs) {
		t.Fatalf("got %d slotted configs, want %d", len(cfgs), len(b.Configs))
	}
	for i, cfg := range cfgs {
		if cfg.NodeRate != b.Points[i].NodeRate {
			t.Errorf("point %d: NodeRate %v != %v", i, cfg.NodeRate, b.Points[i].NodeRate)
		}
		if cfg.Slots != int(b.Scenario.Horizon+0.5) || cfg.WarmupSlots != int(b.Scenario.Warmup+0.5) {
			t.Errorf("point %d: slots %d/%d do not round from horizon %v/%v",
				i, cfg.Slots, cfg.WarmupSlots, b.Scenario.Horizon, b.Scenario.Warmup)
		}
		if cfg.Net != b.Net || cfg.Dest == nil {
			t.Errorf("point %d: topology or demand not threaded through", i)
		}
	}
	// One quick run end to end: the demand sampler and router must be
	// directly usable by the slotted engine.
	cfgs[0].WarmupSlots, cfgs[0].Slots = 50, 400
	res, err := stepsim.Run(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 || res.MeanDelay <= 0 {
		t.Error("slotted run from a bound scenario produced no traffic")
	}
}

func TestSlottedConfigsPlumbShards(t *testing.T) {
	s, err := ByName("uniform-8x8")
	if err != nil {
		t.Fatal(err)
	}
	s.Shards = 3
	b, err := s.Bind()
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := b.SlottedConfigs()
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		if cfg.Shards != 3 {
			t.Errorf("point %d: Shards %d, want 3", i, cfg.Shards)
		}
	}
	s.Shards = -1
	if err := s.Validate(); err == nil {
		t.Error("negative shards validated")
	}
}

func TestSlottedConfigsRejectsNonPoisson(t *testing.T) {
	s, err := ByName("bursty-8x8")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Bind()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.SlottedConfigs(); err == nil {
		t.Error("bursty scenario lowered onto the slotted engine without error")
	}
}

// TestSlottedConfigsCarryDense pins the Scenario.Dense passthrough: the
// knob must reach every lowered stepsim.Config.
func TestSlottedConfigsCarryDense(t *testing.T) {
	s, err := ByName("uniform-8x8")
	if err != nil {
		t.Fatal(err)
	}
	s.Dense = true
	b, err := s.Bind()
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := b.SlottedConfigs()
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		if !cfg.Dense {
			t.Errorf("config %d lost the Dense knob", i)
		}
	}
	// And a JSON round trip preserves it.
	s2, err := ParseScenario([]byte(`{"name":"d","topology":{"kind":"array","n":4},"pattern":{"kind":"uniform"},"loads":[0.5],"dense":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Dense {
		t.Error("JSON dense field not decoded")
	}
}

// TestScenarioVarianceReductionKnobs covers the opt-in adaptive fields:
// JSON round-trip, lowering to both engines' SweepOpts, and rejection of
// inconsistent or model-incompatible combinations.
func TestScenarioVarianceReductionKnobs(t *testing.T) {
	src := `{
		"name": "vr", "topology": {"kind": "array", "n": 6},
		"pattern": {"kind": "uniform"}, "loads": [0.5, 0.7],
		"targetCI": 0.05, "minReplicas": 3, "maxReplicas": 20,
		"controlVariates": true, "warmStart": true, "rewarmSlots": 250
	}`
	s, err := ParseScenario([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	so := s.SweepOpts(4)
	if so.TargetCI != 0.05 || so.MinReps != 3 || so.MaxReps != 20 ||
		!so.ControlVariates || !so.WarmStart || so.Rewarm != 250 || so.Workers != 4 {
		t.Errorf("sim opts lowered wrong: %+v", so)
	}
	sso := s.SlottedSweepOpts(2)
	if sso.TargetCI != 0.05 || sso.MinReps != 3 || sso.MaxReps != 20 ||
		!sso.ControlVariates || !sso.WarmStart || sso.RewarmSlots != 250 || sso.Workers != 2 {
		t.Errorf("slotted opts lowered wrong: %+v", sso)
	}
	// The knobs are omitempty: a default scenario round-trips without them.
	plain := s
	plain.TargetCI, plain.MinReplicas, plain.MaxReplicas = 0, 0, 0
	plain.ControlVariates, plain.WarmStart, plain.RewarmSlots = false, false, 0
	data, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"targetCI", "minReplicas", "maxReplicas", "controlVariates", "warmStart", "rewarmSlots"} {
		if strings.Contains(string(data), field) {
			t.Errorf("zero-valued %s serialized: %s", field, data)
		}
	}

	bad := s
	bad.TargetCI = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative targetCI accepted")
	}
	bad = s
	bad.MinReplicas, bad.MaxReplicas = 10, 4
	if err := bad.Validate(); err == nil {
		t.Error("maxReplicas < minReplicas accepted")
	}
	bad = s
	bad.Arrivals.Kind = "bursty"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "Poisson") {
		t.Errorf("control variates with bursty arrivals accepted: %v", err)
	}
}

// TestScenarioAdaptiveSweepEndToEnd drives a bound scenario through both
// engines' adaptive pools — the path cmd/scenario uses.
func TestScenarioAdaptiveSweepEndToEnd(t *testing.T) {
	s, err := ParseScenario([]byte(`{
		"name": "vr-e2e", "topology": {"kind": "array", "n": 5},
		"pattern": {"kind": "uniform"}, "loads": [0.4, 0.6],
		"horizon": 1200, "warmup": 300, "seed": 9,
		"targetCI": 0.2, "minReplicas": 3, "maxReplicas": 12,
		"controlVariates": true}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Bind()
	if err != nil {
		t.Fatal(err)
	}
	sets, err := sim.RunSweepAdaptive(context.Background(), b.Configs, s.SweepOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, rs := range sets {
		if rs.ReplicasUsed < 3 || rs.ReplicasUsed > 12 {
			t.Errorf("event point %d: %d replicas outside [3, 12]", i, rs.ReplicasUsed)
		}
		if rs.ReplicasUsed < 12 && rs.DelayCI > 0.2 {
			t.Errorf("event point %d: stopped early with half-width %v", i, rs.DelayCI)
		}
	}
	scfgs, err := b.SlottedConfigs()
	if err != nil {
		t.Fatal(err)
	}
	ssets, err := stepsim.RunSweepAdaptive(context.Background(), scfgs, s.SlottedSweepOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, rs := range ssets {
		if rs.ReplicasUsed < 3 || rs.ReplicasUsed > 12 {
			t.Errorf("slotted point %d: %d replicas outside [3, 12]", i, rs.ReplicasUsed)
		}
	}
}

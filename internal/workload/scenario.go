package workload

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/stepsim"
	"repro/internal/topology"
)

// TopologySpec names a network declaratively.
type TopologySpec struct {
	// Kind is one of array | torus | linear | kd | cube.
	Kind string `json:"kind"`
	// N is the side length (array, torus, linear, kd).
	N int `json:"n,omitempty"`
	// K is the dimension count (kd).
	K int `json:"k,omitempty"`
	// D is the dimension (cube).
	D int `json:"d,omitempty"`
}

// Build constructs the network.
func (t TopologySpec) Build() (topology.Network, error) {
	switch t.Kind {
	case "array":
		if t.N < 2 {
			return nil, fmt.Errorf("workload: array needs n >= 2, got %d", t.N)
		}
		return topology.NewArray2D(t.N), nil
	case "torus":
		if t.N < 3 {
			return nil, fmt.Errorf("workload: torus needs n >= 3, got %d", t.N)
		}
		return topology.NewTorus2D(t.N), nil
	case "linear":
		if t.N < 2 {
			return nil, fmt.Errorf("workload: linear needs n >= 2, got %d", t.N)
		}
		return topology.NewLinear(t.N), nil
	case "kd":
		if t.N < 2 || t.K < 1 {
			return nil, fmt.Errorf("workload: kd needs n >= 2 and k >= 1, got n=%d k=%d", t.N, t.K)
		}
		sizes := make([]int, t.K)
		for i := range sizes {
			sizes[i] = t.N
		}
		return topology.NewArrayKD(sizes...), nil
	case "cube":
		if t.D < 1 {
			return nil, fmt.Errorf("workload: cube needs d >= 1, got %d", t.D)
		}
		return topology.NewHypercube(t.D), nil
	default:
		return nil, fmt.Errorf("workload: unknown topology kind %q", t.Kind)
	}
}

// buildRouter resolves a router name against a network; "" picks the
// canonical greedy router of the topology.
func buildRouter(name string, net topology.Network) (routing.Router, error) {
	switch t := net.(type) {
	case *topology.Array2D:
		switch name {
		case "", "greedy-xy":
			return routing.GreedyXY{A: t}, nil
		case "greedy-yx":
			return routing.GreedyYX{A: t}, nil
		case "rand-greedy":
			return routing.RandGreedy{A: t}, nil
		}
	case *topology.Torus2D:
		switch name {
		case "", "torus-greedy":
			return routing.TorusGreedy{T: t}, nil
		}
	case *topology.Linear:
		switch name {
		case "", "linear":
			return routing.LinearRoute{L: t}, nil
		}
	case *topology.ArrayKD:
		switch name {
		case "", "greedy-kd":
			return routing.GreedyKD{A: t}, nil
		}
	case *topology.Hypercube:
		switch name {
		case "", "cube-greedy":
			return routing.CubeGreedy{H: t}, nil
		}
	}
	return nil, fmt.Errorf("workload: router %q unavailable on %s", name, net.Name())
}

// PatternSpec names a traffic pattern declaratively.
type PatternSpec struct {
	// Kind is one of uniform | hotspot | transpose | bitrev | bitcomp |
	// tornado | neighbor | zipf.
	Kind string `json:"kind"`
	// K is the hot-set size (hotspot; default 1).
	K int `json:"k,omitempty"`
	// Weight is the hot traffic fraction (hotspot; default 0.2).
	Weight float64 `json:"weight,omitempty"`
	// Hot explicitly lists hot destinations (hotspot).
	Hot []int `json:"hot,omitempty"`
	// S is the decay exponent (zipf; default 2).
	S float64 `json:"s,omitempty"`
}

// Pattern resolves the spec to a Pattern value.
func (p PatternSpec) Pattern() (Pattern, error) {
	switch p.Kind {
	case "", "uniform":
		return Uniform{}, nil
	case "hotspot":
		h := HotSpot{Hot: p.Hot, K: p.K, Weight: p.Weight}
		if h.Weight == 0 {
			h.Weight = 0.2
		}
		return h, nil
	case "transpose":
		return Transpose{}, nil
	case "bitrev":
		return BitReversal{}, nil
	case "bitcomp":
		return BitComplement{}, nil
	case "tornado":
		return Tornado{}, nil
	case "neighbor":
		return NearestNeighbor{}, nil
	case "zipf":
		z := ZipfDistance{S: p.S}
		if z.S == 0 {
			z.S = 2
		}
		return z, nil
	default:
		return nil, fmt.Errorf("workload: unknown pattern kind %q", p.Kind)
	}
}

// String renders the spec compactly for tables and descriptions.
func (p PatternSpec) String() string {
	switch p.Kind {
	case "", "uniform":
		return "uniform"
	case "hotspot":
		k, w := p.K, p.Weight
		if len(p.Hot) > 0 {
			k = len(p.Hot)
		} else if k == 0 {
			k = 1
		}
		if w == 0 {
			w = 0.2
		}
		return fmt.Sprintf("hotspot(k=%d,w=%.2f)", k, w)
	case "zipf":
		s := p.S
		if s == 0 {
			s = 2
		}
		return fmt.Sprintf("zipf(s=%.1f)", s)
	default:
		return p.Kind
	}
}

// ArrivalSpec names an arrival process declaratively. The process is
// parameterized by its mean rate at Bind time, so one spec serves every
// load point.
type ArrivalSpec struct {
	// Kind is one of poisson (default) | bursty | periodic.
	Kind string `json:"kind,omitempty"`
	// BurstFactor is the on-phase rate multiplier (bursty; default 4).
	BurstFactor float64 `json:"burstFactor,omitempty"`
	// MeanOn and MeanOff are the mean burst and gap durations (bursty;
	// defaults 10 and 30).
	MeanOn  float64 `json:"meanOn,omitempty"`
	MeanOff float64 `json:"meanOff,omitempty"`
}

func (a ArrivalSpec) withDefaults() ArrivalSpec {
	if a.Kind == "" {
		a.Kind = "poisson"
	}
	if a.BurstFactor == 0 {
		a.BurstFactor = 4
	}
	if a.MeanOn == 0 {
		a.MeanOn = 10
	}
	if a.MeanOff == 0 {
		a.MeanOff = 30
	}
	return a
}

// factory returns the sim.Config.Arrivals factory for the given mean
// merged rate. Poisson returns nil: the engine's built-in merged clock is
// the same process on its allocation-free fast path.
func (a ArrivalSpec) factory(meanRate float64) (func() sim.ArrivalProcess, error) {
	a = a.withDefaults()
	switch a.Kind {
	case "poisson":
		return nil, nil
	case "bursty":
		m, err := OnOff(meanRate, a.BurstFactor, a.MeanOn, a.MeanOff)
		if err != nil {
			return nil, err
		}
		return m.New, nil
	case "periodic":
		p := Periodic{Interval: 1 / meanRate}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return p.New, nil
	default:
		return nil, fmt.Errorf("workload: unknown arrival kind %q", a.Kind)
	}
}

// String renders the spec compactly.
func (a ArrivalSpec) String() string {
	a = a.withDefaults()
	switch a.Kind {
	case "bursty":
		return fmt.Sprintf("bursty(x%.1f,on=%g,off=%g)", a.BurstFactor, a.MeanOn, a.MeanOff)
	default:
		return a.Kind
	}
}

// Scenario is a declarative, JSON-serializable simulation campaign:
// topology, router, traffic pattern, arrival process, load points and
// replication. Load points are fractions of the pattern's analytic
// saturation rate λ*, so the same scenario shape transfers across
// topologies and patterns.
type Scenario struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Topology    TopologySpec `json:"topology"`
	// Router names the routing policy; "" picks the topology's canonical
	// greedy router.
	Router   string      `json:"router,omitempty"`
	Pattern  PatternSpec `json:"pattern"`
	Arrivals ArrivalSpec `json:"arrivals,omitempty"`
	// Loads are fractions of λ* in (0, 1), one simulated point each.
	Loads []float64 `json:"loads"`
	// Horizon is the measured time per run (default 4000); Warmup
	// defaults to Horizon/4.
	Horizon float64 `json:"horizon,omitempty"`
	Warmup  float64 `json:"warmup,omitempty"`
	// Replicas per load point (default 4) and the base Seed (default 1).
	Replicas int    `json:"replicas,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	// Shards is the intra-run tile parallelism of the slotted engine
	// (stepsim.Config.Shards): 0 lets the sweep pool spend spare cores
	// inside runs automatically, 1 forces serial runs, N > 1 forces N
	// tiles. The slotted engine's results are bit-identical at every
	// value, so the knob only changes wall-clock. The event-driven engine
	// has no intra-run parallelism and ignores it.
	Shards int `json:"shards,omitempty"`
	// Lookahead is the slotted engine's batched-barrier depth
	// (stepsim.Config.Lookahead): tiles run up to k consecutive slots
	// between global barriers, clamped to what the tile plan supports.
	// Results are bit-identical at every depth — like Shards this is a
	// wall-clock knob, never a semantic one — and the event-driven
	// engine ignores it.
	Lookahead int `json:"lookahead,omitempty"`
	// Dense selects the slotted engine's dense per-slot execution
	// (stepsim.Config.Dense) instead of its default sparse path. The two
	// paths simulate the identical model with different variate
	// sequences, so this is an A/B wall-clock knob, not a semantic one;
	// the event-driven engine ignores it.
	Dense bool `json:"dense,omitempty"`
	// TargetCI, when positive, switches the scenario's sweeps to adaptive
	// replica stopping: each load point runs between MinReplicas and
	// MaxReplicas replicas (defaults 4 and 64) and stops as soon as the
	// 95% half-width of its delay estimate is ≤ TargetCI. Replicas is
	// then ignored. Zero keeps the fixed-replica default path.
	TargetCI    float64 `json:"targetCI,omitempty"`
	MinReplicas int     `json:"minReplicas,omitempty"`
	MaxReplicas int     `json:"maxReplicas,omitempty"`
	// ControlVariates regresses the exactly known per-replica arrival
	// count out of the delay estimate (stats.ControlVariate); requires
	// Poisson arrivals, which are the only kind with a closed-form count.
	ControlVariates bool `json:"controlVariates,omitempty"`
	// MD1Control adds the analytic M/D/1 delay estimate, evaluated at each
	// replica's realized arrival rate, as a second control variate
	// alongside the raw count (stats.ControlVariateMulti). Its exact mean
	// is computed by summing the M/D/1 curve against the arrival count's
	// Poisson pmf, so the regression stays honest. Requires
	// ControlVariates.
	MD1Control bool `json:"md1Control,omitempty"`
	// WarmStart chains engine snapshots along the load ladder: each
	// point's replicas resume from the previous point's captured steady
	// state with RewarmSlots of re-warm (slots for the slotted engine,
	// the same number as time units for the event engine's τ = 1
	// convention) instead of the full Warmup. Poisson arrivals only.
	WarmStart   bool `json:"warmStart,omitempty"`
	RewarmSlots int  `json:"rewarmSlots,omitempty"`
	// Faults declares the degraded-array layer (internal/fault): link and
	// node up–down failure processes, scheduled regional outages, and
	// misbehaving routers that delay, misroute or drop the packets they
	// forward. Nil or all-zero leaves both engines on their fault-free
	// paths bit-identically; an enabled spec switches routing to
	// greedy-with-recovery and surfaces drop/detour/downtime counters in
	// the sweep results. Incompatible with warmStart: fault processes are
	// not snapshottable.
	Faults *fault.Spec `json:"faults,omitempty"`
}

// ParseScenario decodes and validates a JSON scenario.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("workload: bad scenario JSON: %w", err)
	}
	return s, s.Validate()
}

func (s Scenario) withDefaults() Scenario {
	if s.Horizon == 0 {
		s.Horizon = 4000
	}
	if s.Warmup == 0 {
		s.Warmup = s.Horizon / 4
	}
	if s.Replicas == 0 {
		s.Replicas = 4
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Quick returns a copy shrunk for smoke runs: 5% of the horizon and two
// replicas, mirroring experiments.Options.Quick.
func (s Scenario) Quick() Scenario {
	s = s.withDefaults()
	s.Horizon *= 0.05
	s.Warmup *= 0.05
	s.Replicas = 2
	return s
}

// Validate checks the scenario is well-formed, including that the
// pattern, router and arrival process all bind to the topology. It is
// exactly Bind with the result discarded, so validation and lowering can
// never disagree.
func (s Scenario) Validate() error {
	_, err := s.Bind()
	return err
}

// checkFields rejects malformed scalar fields before anything is built.
func (s Scenario) checkFields() error {
	if s.Name == "" {
		return fmt.Errorf("workload: scenario needs a name")
	}
	if len(s.Loads) == 0 {
		return fmt.Errorf("workload: scenario %q has no load points", s.Name)
	}
	for _, l := range s.Loads {
		if !(l > 0 && l < 1) {
			return fmt.Errorf("workload: scenario %q load %v outside (0, 1); loads are fractions of lambda*", s.Name, l)
		}
	}
	if s.Horizon < 0 || s.Warmup < 0 {
		return fmt.Errorf("workload: scenario %q has negative horizon or warmup", s.Name)
	}
	if s.Replicas < 0 {
		return fmt.Errorf("workload: scenario %q has negative replicas", s.Name)
	}
	if s.Shards < 0 {
		return fmt.Errorf("workload: scenario %q has negative shards", s.Name)
	}
	if s.Lookahead < 0 {
		return fmt.Errorf("workload: scenario %q has negative lookahead", s.Name)
	}
	if s.TargetCI < 0 || s.MinReplicas < 0 || s.MaxReplicas < 0 || s.RewarmSlots < 0 {
		return fmt.Errorf("workload: scenario %q has a negative variance-reduction knob", s.Name)
	}
	if s.MinReplicas > 0 && s.MaxReplicas > 0 && s.MaxReplicas < s.MinReplicas {
		return fmt.Errorf("workload: scenario %q has maxReplicas %d < minReplicas %d", s.Name, s.MaxReplicas, s.MinReplicas)
	}
	if s.MD1Control && !s.ControlVariates {
		return fmt.Errorf("workload: scenario %q sets md1Control without controlVariates; the M/D/1 curve is a second control, not a standalone estimator", s.Name)
	}
	if kind := s.Arrivals.withDefaults().Kind; kind != "poisson" && (s.ControlVariates || s.WarmStart) {
		return fmt.Errorf("workload: scenario %q uses %s arrivals; control variates and warm starts need Poisson arrivals (closed-form counts and snapshottable engines)", s.Name, kind)
	}
	if err := s.Faults.Validate(); err != nil {
		return fmt.Errorf("workload: scenario %q: %w", s.Name, err)
	}
	if s.Faults.Enabled() && s.WarmStart {
		return fmt.Errorf("workload: scenario %q combines faults with warmStart; fault processes are not snapshottable", s.Name)
	}
	return nil
}

// Point is one lowered load point.
type Point struct {
	// Load is the fraction of λ* and NodeRate the resulting per-node
	// generation rate.
	Load     float64
	NodeRate float64
}

// Bound is a scenario lowered onto a concrete network: the bound demand,
// its exact analysis, and one sim.Config per load point, ready for
// sim.StreamSweep.
type Bound struct {
	Scenario Scenario
	Net      topology.Network
	Router   routing.Router
	Demand   *Demand
	Analysis *Analysis
	// Faults is the scenario's fault spec lowered against Net (nil when
	// the scenario declares none); every config below shares it.
	Faults  *fault.Plan
	Points  []Point
	Configs []sim.Config
}

// Bind validates and lowers the scenario. Every config shares the base
// seed (common random numbers across load points; replicas split their
// streams inside the sweep pool).
func (s Scenario) Bind() (*Bound, error) {
	if err := s.checkFields(); err != nil {
		return nil, err
	}
	s = s.withDefaults()
	net, err := s.Topology.Build()
	if err != nil {
		return nil, err
	}
	router, err := buildRouter(s.Router, net)
	if err != nil {
		return nil, err
	}
	pat, err := s.Pattern.Pattern()
	if err != nil {
		return nil, err
	}
	demand, err := pat.Bind(net)
	if err != nil {
		return nil, err
	}
	analysis, err := Analyze(net, router, demand, nil)
	if err != nil {
		return nil, err
	}
	if math.IsInf(analysis.LambdaStar, 1) {
		return nil, fmt.Errorf("workload: scenario %q generates no edge traffic; nothing to simulate", s.Name)
	}
	numSources := len(topology.Sources(net))
	b := &Bound{
		Scenario: s,
		Net:      net,
		Router:   router,
		Demand:   demand,
		Analysis: analysis,
	}
	if s.Faults.Enabled() {
		// One plan for every load point and both engines: the degradation
		// is a property of the network, not of the traffic level.
		b.Faults, err = s.Faults.Bind(net)
		if err != nil {
			return nil, err
		}
	}
	for _, load := range s.Loads {
		perNode := load * analysis.LambdaStar
		cfg := sim.Config{
			Net:     net,
			Router:  router,
			Dest:    demand,
			Warmup:  s.Warmup,
			Horizon: s.Horizon,
			Seed:    s.Seed,
			// The analysis above already proved every edge utilization is
			// load < 1 via the same demand and steppers, so the engine's
			// per-run route re-enumeration would be pure redundancy across
			// replicas; callers who raise rates on a bound config after
			// the fact forfeit the check.
			AllowUnstable: true,
			Faults:        b.Faults,
		}
		factory, err := s.Arrivals.factory(perNode * float64(numSources))
		if err != nil {
			return nil, err
		}
		if factory != nil {
			cfg.Arrivals = factory
		} else {
			cfg.NodeRate = perNode
		}
		b.Points = append(b.Points, Point{Load: load, NodeRate: perNode})
		b.Configs = append(b.Configs, cfg)
	}
	return b, nil
}

// SlottedConfigs lowers the bound scenario onto the synchronous slotted
// engine (internal/stepsim): one stepsim.Config per load point, with the
// per-node rate reinterpreted as the per-slot Poisson batch mean (τ = 1, so
// a load point means the same offered traffic as the event engine's
// SlotTau = 1 mode) and the horizon/warmup rounded to whole slots. Only
// Poisson arrivals have a slotted counterpart: bursty and periodic
// scenarios are rejected, as are routers without an incremental stepper
// form (none of the built-ins are).
func (b *Bound) SlottedConfigs() ([]stepsim.Config, error) {
	s := b.Scenario.withDefaults()
	if kind := s.Arrivals.withDefaults().Kind; kind != "poisson" {
		return nil, fmt.Errorf("workload: scenario %q uses %s arrivals; the slotted engine models only per-slot Poisson batches", s.Name, kind)
	}
	if _, _, ok := routing.Steppers(b.Router); !ok {
		return nil, fmt.Errorf("workload: scenario %q router %T has no incremental stepper form required by the slotted engine", s.Name, b.Router)
	}
	slots := int(s.Horizon + 0.5)
	warmup := int(s.Warmup + 0.5)
	if slots <= 0 {
		return nil, fmt.Errorf("workload: scenario %q horizon %v rounds to zero slots", s.Name, s.Horizon)
	}
	cfgs := make([]stepsim.Config, 0, len(b.Points))
	for _, pt := range b.Points {
		cfgs = append(cfgs, stepsim.Config{
			Net:         b.Net,
			Router:      b.Router,
			Dest:        b.Demand,
			NodeRate:    pt.NodeRate,
			WarmupSlots: warmup,
			Slots:       slots,
			Seed:        s.Seed,
			// Shards = 0 stays 0 here: the sweep pool resolves it to the
			// spare-core factor at run time (stepsim.StreamSweep).
			Shards:    s.Shards,
			Lookahead: s.Lookahead,
			Dense:     s.Dense,
			Faults:    b.Faults,
		})
	}
	return cfgs, nil
}

// SweepOpts lowers the scenario's replication policy for the event-driven
// engine's sweep pool (sim.RunSweepAdaptive). workers bounds the pool's
// goroutines (0 means GOMAXPROCS).
func (s Scenario) SweepOpts(workers int) sim.SweepOpts {
	s = s.withDefaults()
	return sim.SweepOpts{
		Replicas:        s.Replicas,
		Workers:         workers,
		TargetCI:        s.TargetCI,
		MinReps:         s.MinReplicas,
		MaxReps:         s.MaxReplicas,
		ControlVariates: s.ControlVariates,
		WarmStart:       s.WarmStart,
		Rewarm:          float64(s.RewarmSlots),
	}
}

// SlottedSweepOpts is SweepOpts for the slotted engine
// (stepsim.RunSweepAdaptive).
func (s Scenario) SlottedSweepOpts(workers int) stepsim.SweepOpts {
	s = s.withDefaults()
	return stepsim.SweepOpts{
		Replicas:        s.Replicas,
		Workers:         workers,
		TargetCI:        s.TargetCI,
		MinReps:         s.MinReplicas,
		MaxReps:         s.MaxReplicas,
		ControlVariates: s.ControlVariates,
		WarmStart:       s.WarmStart,
		RewarmSlots:     s.RewarmSlots,
	}
}

package workload

import (
	"context"
	"math"
	"os"
	"strconv"
	"testing"

	"repro/internal/stats"
	"repro/internal/stepsim"
	"repro/internal/topology"
)

func TestPoissonMeanExact(t *testing.T) {
	// Identity and square have closed-form Poisson expectations: E[K] = μ
	// and E[K²] = μ + μ² — the numeric pmf sum must reproduce both.
	for _, mu := range []float64{0.5, 3, 40, 1e4} {
		if got := poissonMean(mu, func(x float64) float64 { return x }); math.Abs(got-mu) > 1e-9*mu {
			t.Errorf("mu=%g: E[K] = %g", mu, got)
		}
		want := mu + mu*mu
		if got := poissonMean(mu, func(x float64) float64 { return x * x }); math.Abs(got-want) > 1e-9*want {
			t.Errorf("mu=%g: E[K^2] = %g, want %g", mu, got, want)
		}
	}
	if got := poissonMean(0, func(x float64) float64 { return x + 7 }); got != 7 {
		t.Errorf("mu=0: got %g, want g(0)", got)
	}
}

func TestMD1CurveJensenGap(t *testing.T) {
	// The M/D/1 delay curve is convex in the rate, so the exact mean
	// E[g(K)] must exceed the plug-in g(E[K]) — the bias the numeric sum
	// exists to avoid. Evaluated near saturation where curvature is large.
	sc := Scenario{
		Name:     "jensen",
		Topology: TopologySpec{Kind: "array", N: 8},
		Pattern:  PatternSpec{Kind: "uniform"},
		Loads:    []float64{0.95},
	}
	b, err := sc.Bind()
	if err != nil {
		t.Fatal(err)
	}
	numSources := len(topology.Sources(b.Net))
	slots := 2000.0
	g := b.Analysis.md1Curve(numSources, slots)
	mu := b.Points[0].NodeRate * float64(numSources) * slots
	exact := poissonMean(mu, g)
	plugin := g(mu)
	if !(exact > plugin) {
		t.Fatalf("Jensen gap missing: E[g(K)] = %.9f <= g(E[K]) = %.9f", exact, plugin)
	}
	if (exact-plugin)/plugin > 0.5 {
		t.Fatalf("Jensen gap implausibly large: E[g(K)] = %g vs g(E[K]) = %g", exact, plugin)
	}
	// The clamp keeps the curve finite even past saturation.
	if v := g(10 * mu); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("clamped curve not finite at 10x saturation: %g", v)
	}
}

// envInt reads an integer knob for the measurement rig below.
func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestMD1ControlLadder is both a regression test and the measurement rig
// behind BENCH.md's M/D/1-control table. At test size (16×16) it checks
// the two-control machinery end to end: finite intervals, an estimate
// consistent with the plain mean, and the measured delay↔control
// correlations logged per point. At full size, run it as
//
//	MD1_N=64 MD1_SLOTS=4000 MD1_WARMUP=1000 MD1_REPS=24 \
//	  go test ./internal/workload/ -run MD1ControlLadder -v
//
// to reproduce the 64×64 hotspot ladder measurement.
func TestMD1ControlLadder(t *testing.T) {
	n := envInt("MD1_N", 16)
	slots := envInt("MD1_SLOTS", 1000)
	warmup := envInt("MD1_WARMUP", 250)
	reps := envInt("MD1_REPS", 12)
	loads := []float64{0.5, 0.7, 0.8, 0.9, 0.95}
	sc := Scenario{
		Name:     "md1-ladder",
		Topology: TopologySpec{Kind: "array", N: n},
		Pattern:  PatternSpec{Kind: "hotspot"},
		Loads:    loads,
		Horizon:  float64(slots),
		Warmup:   float64(warmup),
		Replicas: reps,
		Seed:     42,
	}
	b, err := sc.Bind()
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := b.SlottedConfigs()
	if err != nil {
		t.Fatal(err)
	}
	numSources := len(topology.Sources(b.Net))
	sets, err := stepsim.RunSweep(context.Background(), cfgs, reps, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d×%d hotspot, %d slots (%d warmup), %d replicas/point", n, n, slots, warmup, reps)
	t.Logf("%-6s %-9s %-9s %-10s %-10s %-10s %-10s", "load", "corr(cnt)", "corr(md1)", "hw_plain", "hw_cv1", "hw_cv2", "est_cv2")
	for i, rs := range sets {
		cfg := cfgs[i]
		y := make([]float64, reps)
		c1 := make([]float64, reps)
		c2 := make([]float64, reps)
		g := b.Analysis.md1Curve(numSources, float64(cfg.Slots))
		for r, res := range rs.Replicas {
			y[r] = res.MeanDelay
			c1[r] = float64(res.Generated)
			c2[r] = g(c1[r])
		}
		mu := cfg.NodeRate * float64(numSources) * float64(cfg.Slots)
		gMean := poissonMean(mu, g)
		e1 := stats.ControlVariate(y, c1, mu)
		e2 := stats.ControlVariateMulti(y, [][]float64{c1, c2}, []float64{mu, gMean})
		var w stats.Welford
		for _, v := range y {
			w.Add(v)
		}
		hwPlain := 1.96 * w.StdDev() / math.Sqrt(float64(reps))
		t.Logf("%-6.2f %-9.3f %-9.3f %-10.5f %-10.5f %-10.5f %-10.4f",
			loads[i], corr(y, c1), corr(y, c2), hwPlain, e1.HalfWidth, e2.HalfWidth, e2.Est)
		if math.IsNaN(e2.Est) || math.IsInf(e2.HalfWidth, 0) {
			t.Errorf("load %.2f: degenerate two-control estimate %g ± %g", loads[i], e2.Est, e2.HalfWidth)
		}
		// The control-variate estimator is unbiased; it must sit within a
		// few plain half-widths of the plain mean.
		if math.Abs(e2.Est-w.Mean()) > 5*math.Max(hwPlain, 1e-9) {
			t.Errorf("load %.2f: two-control estimate %.5f far from plain mean %.5f (hw %.5f)",
				loads[i], e2.Est, w.Mean(), hwPlain)
		}
	}
}

// corr is the sample Pearson correlation.
func corr(a, b []float64) float64 {
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var sab, saa, sbb float64
	for i := range a {
		sab += (a[i] - ma) * (b[i] - mb)
		saa += (a[i] - ma) * (a[i] - ma)
		sbb += (b[i] - mb) * (b[i] - mb)
	}
	if saa == 0 || sbb == 0 {
		return math.NaN()
	}
	return sab / math.Sqrt(saa*sbb)
}

package workload

// Canonical scenario form: a semantic normal form under which two scenario
// documents that describe the same simulation campaign — whatever their
// field order, whitespace, or reliance on defaults — marshal to the same
// bytes. The sweep service (internal/serve) hashes this form into its
// content-addressed cache keys, so the normalization rules here decide
// when a resubmitted spec may be answered from cache. The rules are
// conservative in one direction only: two scenarios with the same
// canonical form MUST be guaranteed to produce bit-identical results on a
// given engine and code version. Missing a normalization merely costs a
// cache hit; inventing one that isn't semantics-preserving would serve
// wrong results.

import (
	"encoding/json"

	"repro/internal/fault"
)

// Canonical returns the scenario with every semantically inert degree of
// freedom collapsed:
//
//   - defaulted fields are materialized (horizon, warmup, replicas, seed,
//     and the nested pattern/arrival defaults), so an absent field and an
//     explicitly spelled default are the same scenario;
//   - fields other knobs make irrelevant are zeroed: the adaptive bounds
//     when targetCI is off, the fixed replica count when it is on, the
//     re-warm budget without warmStart, pattern parameters foreign to the
//     pattern kind;
//   - shards is zeroed unconditionally — the sharded slotted engine is
//     bit-identical at every tile count, so it is a wall-clock knob, never
//     a semantic one;
//   - the free-text description is dropped: it documents a scenario but
//     does not define it.
//
// The name is kept: it is part of the result document a caller gets back.
// Dense, engine choice and seed all stay significant — they change the
// variate streams or the estimator, hence the results.
func (s Scenario) Canonical() Scenario {
	s = s.withDefaults()
	s.Description = ""
	s.Shards = 0
	// Lookahead is zeroed with Shards and for the same reason: batched
	// barriers are bit-identical at every depth, so the knob is
	// wall-clock-only and must not split the cache.
	s.Lookahead = 0
	s.Pattern = s.Pattern.canonical()
	s.Arrivals = s.Arrivals.canonical()
	if s.TargetCI > 0 {
		// Adaptive stopping: the fixed count is ignored; the bounds get
		// their documented defaults so spelling them out changes nothing.
		s.Replicas = 0
		if s.MinReplicas == 0 {
			s.MinReplicas = 4
		}
		if s.MaxReplicas == 0 {
			s.MaxReplicas = 64
		}
	} else {
		s.MinReplicas, s.MaxReplicas = 0, 0
	}
	if !s.WarmStart {
		s.RewarmSlots = 0
	}
	s.Faults = canonicalFaults(s.Faults)
	return s
}

// canonicalFaults collapses the fault spec: a spec that declares no fault
// process at all is the nil spec (both leave the engines on the identical
// fault-free path), the defaulted selection fractions are materialized
// (Bind treats 0 as 1), parameters a disabled family or foreign mode would
// ignore are zeroed, and an explicit node list makes the count inert.
func canonicalFaults(f *fault.Spec) *fault.Spec {
	if !f.Enabled() {
		return nil
	}
	c := *f
	if c.LinkMTBF > 0 {
		if c.LinkFraction == 0 {
			c.LinkFraction = 1
		}
	} else {
		c.LinkMTTR, c.LinkFraction = 0, 0
	}
	if c.NodeMTBF > 0 {
		if c.NodeFraction == 0 {
			c.NodeFraction = 1
		}
	} else {
		c.NodeMTTR, c.NodeFraction = 0, 0
	}
	if len(c.Misbehave) > 0 {
		ms := make([]fault.Misbehave, len(c.Misbehave))
		copy(ms, c.Misbehave)
		for i := range ms {
			switch ms[i].Mode {
			case fault.ModeDelay:
				ms[i].Prob = 0
			case fault.ModeMisroute, fault.ModeDrop:
				ms[i].ExtraDelay = 0
			}
			if len(ms[i].Nodes) > 0 {
				ms[i].Count = 0
			}
		}
		c.Misbehave = ms
	}
	return &c
}

// canonical collapses the pattern spec: the kind is spelled explicitly,
// parameters of other kinds are zeroed, and defaulted parameters are
// materialized (mirroring what PatternSpec.Pattern builds).
func (p PatternSpec) canonical() PatternSpec {
	out := PatternSpec{Kind: p.Kind}
	switch p.Kind {
	case "", "uniform":
		out.Kind = "uniform"
	case "hotspot":
		out.Hot = p.Hot
		if len(p.Hot) == 0 {
			out.K = p.K
			if out.K == 0 {
				out.K = 1
			}
		}
		out.Weight = p.Weight
		if out.Weight == 0 {
			out.Weight = 0.2
		}
	case "zipf":
		out.S = p.S
		if out.S == 0 {
			out.S = 2
		}
	}
	return out
}

// canonical collapses the arrival spec: the kind is spelled explicitly
// and the burst parameters exist only for bursty arrivals, where their
// defaults are materialized; for poisson and periodic they are inert and
// zeroed.
func (a ArrivalSpec) canonical() ArrivalSpec {
	a = a.withDefaults()
	if a.Kind != "bursty" {
		a.BurstFactor, a.MeanOn, a.MeanOff = 0, 0, 0
	}
	return a
}

// CanonicalJSON marshals the canonical form with encoding/json's
// deterministic struct-field ordering: equal canonical scenarios yield
// byte-equal documents, which is what cache keys hash.
func (s Scenario) CanonicalJSON() ([]byte, error) {
	return json.Marshal(s.Canonical())
}

package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bounds"
	"repro/internal/sim"
)

func TestModelConstructionAndLoad(t *testing.T) {
	m := NewArrayModelAtLoad(8, 0.8)
	if math.Abs(m.Load()-0.8) > 1e-12 {
		t.Errorf("Load = %v", m.Load())
	}
	if !m.Stable() {
		t.Error("should be stable at rho=0.8")
	}
	hot := NewArrayModelAtLoad(8, 1.0)
	if hot.Stable() {
		t.Error("should be unstable at rho=1")
	}
	if m.Topology().N() != 8 {
		t.Error("topology side mismatch")
	}
}

func TestModelPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"small n":  func() { NewArrayModel(1, 0.1) },
		"negative": func() { NewArrayModel(4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBoundSetOrdering(t *testing.T) {
	m := NewArrayModelAtLoad(6, 0.9)
	b := m.Bounds()
	if !(b.MeanDist <= b.Best && b.Best <= b.MD1Estimate && b.MD1Estimate <= b.Upper) {
		t.Errorf("bound ordering violated: %+v", b)
	}
	if b.Thm12 <= b.Thm10 {
		t.Error("Thm 12 should beat Thm 10")
	}
	if math.Abs(b.GapLimit-3) > 1e-9 {
		t.Errorf("even-n gap limit %v", b.GapLimit)
	}
	if b.PaperEstimate >= b.MD1Estimate {
		t.Error("paper estimate should be below textbook estimate")
	}
}

func TestSimulateDefaultsAndDeterminism(t *testing.T) {
	m := NewArrayModelAtLoad(5, 0.6)
	p := SimParams{Horizon: 800, Replicas: 2, Seed: 5}
	a, err := m.Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanDelay != b.MeanDelay {
		t.Error("Simulate not deterministic for equal params")
	}
	if len(a.Replicas) != 2 {
		t.Error("replica count ignored")
	}
}

func TestConfigReflectsParams(t *testing.T) {
	m := NewArrayModelAtLoad(5, 0.5)
	cfg := m.Config(SimParams{TrackSaturated: true, Randomized: true, Discipline: sim.PS, Service: sim.Exponential})
	if cfg.Saturated == nil {
		t.Error("saturated tracking missing")
	}
	if cfg.Discipline != sim.PS || cfg.Service != sim.Exponential {
		t.Error("discipline/service not forwarded")
	}
	if cfg.Warmup <= 0 || cfg.Horizon <= 0 || cfg.Seed == 0 {
		t.Error("defaults not applied")
	}
	count := 0
	for _, s := range cfg.Saturated {
		if s {
			count++
		}
	}
	if count != bounds.NumSaturatedEdges(5) {
		t.Error("wrong saturated census")
	}
}

func TestReportContainsLadder(t *testing.T) {
	m := NewArrayModelAtLoad(4, 0.5)
	rep, err := m.Report(SimParams{Horizon: 600, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"upper bound", "Thm 12", "simulated delay", "4x4"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

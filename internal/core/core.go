// Package core is the high-level facade over the paper's machinery: it ties
// together the array topology, greedy routing, the analytic bounds, and the
// discrete-event simulator behind a small Model API. Commands, examples and
// the public greedyroute package build on it.
package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bounds"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ArrayModel is the paper's standard system: an n×n array with per-node
// Poisson arrivals at rate Lambda, uniform destinations, greedy row-first
// routing, and FIFO unit-service edges.
type ArrayModel struct {
	// N is the side length (N >= 2).
	N int
	// Lambda is the per-node packet generation rate.
	Lambda float64
}

// NewArrayModel creates a model with an explicit per-node rate.
func NewArrayModel(n int, lambda float64) ArrayModel {
	if n < 2 {
		panic("core: ArrayModel requires n >= 2")
	}
	if lambda < 0 {
		panic("core: negative arrival rate")
	}
	return ArrayModel{N: n, Lambda: lambda}
}

// NewArrayModelAtLoad creates a model at network load ρ (using the exact
// conversion λ = ρn/⌊n²/4⌋).
func NewArrayModelAtLoad(n int, rho float64) ArrayModel {
	return NewArrayModel(n, bounds.LambdaForLoad(n, rho))
}

// Load returns ρ = λ·⌊n²/4⌋/n.
func (m ArrayModel) Load() float64 { return bounds.Load(m.N, m.Lambda) }

// Stable reports whether the standard configuration has an equilibrium
// (ρ < 1).
func (m ArrayModel) Stable() bool { return m.Load() < 1 }

// Topology returns the underlying array.
func (m ArrayModel) Topology() *topology.Array2D { return topology.NewArray2D(m.N) }

// BoundSet collects every analytic quantity the paper derives for one
// (n, λ) point. All delays are mean time in system.
type BoundSet struct {
	// MeanDist is n̄, the trivial lower bound.
	MeanDist float64
	// STAny is Theorem 8's lower bound for any routing scheme.
	STAny float64
	// STOblivious is Theorem 8's lower bound for oblivious schemes.
	STOblivious float64
	// Thm10 is the general copy-network lower bound (T_md1 / 2(n-1)).
	Thm10 float64
	// Thm12 is the Markovian lower bound (T_md1 / (n-1/2)).
	Thm12 float64
	// Thm14 is the saturated-edge lower bound (asymptotic, ρ→1).
	Thm14 float64
	// Best is the strongest non-asymptotic lower bound.
	Best float64
	// MD1Estimate is §4.2's independence approximation.
	MD1Estimate float64
	// PaperEstimate is the exact formula behind Table I's Est column.
	PaperEstimate float64
	// Upper is Theorem 7's upper bound (the Jackson/PS delay).
	Upper float64
	// GapLimit is 2s̄, the ρ→1 upper/lower ratio (3 even, <6 odd).
	GapLimit float64
}

// Bounds evaluates the full analytic ladder for the model.
func (m ArrayModel) Bounds() BoundSet {
	return BoundSet{
		MeanDist:      bounds.MeanDist(m.N),
		STAny:         bounds.STLowerBoundAny(m.N, m.Lambda),
		STOblivious:   bounds.STLowerBoundOblivious(m.N, m.Lambda),
		Thm10:         bounds.Thm10LowerBound(m.N, m.Lambda),
		Thm12:         bounds.Thm12LowerBound(m.N, m.Lambda),
		Thm14:         bounds.Thm14LowerBound(m.N, m.Lambda),
		Best:          bounds.BestLowerBound(m.N, m.Lambda),
		MD1Estimate:   bounds.MD1ApproxT(m.N, m.Lambda),
		PaperEstimate: bounds.PaperEstimateT(m.N, m.Lambda),
		Upper:         bounds.UpperBoundT(m.N, m.Lambda),
		GapLimit:      bounds.GapLimit(m.N),
	}
}

// SimParams tunes Simulate. Zero values mean sensible defaults.
type SimParams struct {
	// Horizon is the measured simulation time (default 5000).
	Horizon float64
	// Warmup is the discarded prefix (default Horizon/4).
	Warmup float64
	// Seed drives all randomness (default 1).
	Seed uint64
	// Replicas is the number of independent runs (default 4).
	Replicas int
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// TrackSaturated enables Table III's R_s measurement.
	TrackSaturated bool
	// Randomized switches to §6's randomized greedy routing.
	Randomized bool
	// Discipline selects FIFO (default) or PS servers.
	Discipline sim.Discipline
	// Service selects Deterministic (default) or Exponential service.
	Service sim.ServiceModel
}

func (p SimParams) withDefaults() SimParams {
	if p.Horizon <= 0 {
		p.Horizon = 5000
	}
	if p.Warmup <= 0 {
		p.Warmup = p.Horizon / 4
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Replicas <= 0 {
		p.Replicas = 4
	}
	return p
}

// Config materializes the sim.Config for the model.
func (m ArrayModel) Config(p SimParams) sim.Config {
	p = p.withDefaults()
	a := m.Topology()
	var router routing.Router = routing.GreedyXY{A: a}
	if p.Randomized {
		router = routing.RandGreedy{A: a}
	}
	cfg := sim.Config{
		Net:        a,
		Router:     router,
		Dest:       routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate:   m.Lambda,
		Warmup:     p.Warmup,
		Horizon:    p.Horizon,
		Seed:       p.Seed,
		Discipline: p.Discipline,
		Service:    p.Service,
	}
	if p.TrackSaturated {
		cfg.Saturated = bounds.SaturatedEdges(a)
	}
	return cfg
}

// Simulate runs replicated simulations of the model.
func (m ArrayModel) Simulate(p SimParams) (sim.ReplicaSet, error) {
	p = p.withDefaults()
	return sim.RunReplicas(context.Background(), m.Config(p), p.Replicas, p.Workers)
}

// Report simulates the model and renders a comparison of the measured delay
// against the full bound ladder.
func (m ArrayModel) Report(p SimParams) (string, error) {
	b := m.Bounds()
	rs, err := m.Simulate(p)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "greedy routing on the %dx%d array, λ=%.4f (ρ=%.3f)\n", m.N, m.N, m.Lambda, m.Load())
	fmt.Fprintf(&sb, "  mean distance n̄:          %8.3f\n", b.MeanDist)
	fmt.Fprintf(&sb, "  lower bound (Thm 8):      %8.3f\n", b.STOblivious)
	fmt.Fprintf(&sb, "  lower bound (Thm 12):     %8.3f\n", b.Thm12)
	fmt.Fprintf(&sb, "  simulated delay T:        %8.3f ± %.3f (95%%)\n", rs.MeanDelay, rs.DelayCI)
	fmt.Fprintf(&sb, "  M/D/1 estimate (§4.2):    %8.3f\n", b.MD1Estimate)
	fmt.Fprintf(&sb, "  paper Table I estimate:   %8.3f\n", b.PaperEstimate)
	fmt.Fprintf(&sb, "  upper bound (Thm 7):      %8.3f\n", b.Upper)
	fmt.Fprintf(&sb, "  mean packets in system N: %8.3f (Little check: %.2f%%)\n",
		rs.MeanN, 100*avgLittleErr(rs))
	return sb.String(), nil
}

func avgLittleErr(rs sim.ReplicaSet) float64 {
	total := 0.0
	for _, r := range rs.Replicas {
		total += r.LittleRelErr
	}
	return total / float64(len(rs.Replicas))
}

package des

import (
	"fmt"
	"math"
	"math/bits"
)

// infKey is the sentinel for an empty slot. Its tbits (all ones, a NaN
// pattern) order after every real time and its meta after every real
// sequence word, so empty slots lose every tournament.
var infKey = event16{tbits: ^uint64(0), meta: ^uint64(0)}

// minKey returns the smaller of two event keys with pure mask arithmetic —
// no data-dependent branch, so tournament replays never mispredict.
func minKey(a, b event16) event16 {
	_, borrow := bits.Sub64(b.meta, a.meta, 0)
	_, borrow = bits.Sub64(b.tbits, a.tbits, borrow)
	m := uint64(0) - borrow // all-ones when b < a
	return event16{
		tbits: b.tbits&m | a.tbits&^m,
		meta:  b.meta&m | a.meta&^m,
	}
}

// EventTree is the simulator's event queue: a tournament (winner) tree
// over a fixed set of event slots, one per scheduling entity. It exploits
// the structural fact that in a queueing network every entity — an edge
// server (FIFO, priority or PS) or a per-node arrival clock — has at most
// ONE pending event at a time:
//
//   - Head (the next event) is a root read: O(1), no sift;
//   - Schedule overwrites a slot and replays one leaf-to-root path of
//     log2(slots) branch-free minKey merges — several times cheaper than a
//     heap pop+push at simulation sizes;
//   - rescheduling an entity (a PS station whose job set changed) replaces
//     its slot in place, so stale events never exist and need no epoch or
//     claim checks.
//
// The tree stores only 16-byte keys: the winner's identity travels inside
// the key itself, because the caller's 24-bit payload (which encodes the
// entity id) is part of the packed meta word.
//
// Events order by (time, seq) exactly as in EventHeap and Heap4: Schedule
// draws from a monotone sequence counter, so ties in time break by
// schedule order and seeded runs are reproducible bit for bit — including
// against an equivalent heap-based schedule, because the (Time, Seq) total
// order fully determines the processing sequence. ReserveSeq lets a
// side-channel stream (the merged arrival clock) join that total order;
// compare its reserved word against HeadAfter.
//
// Times must be non-negative and finite; payloads are 24-bit as in Heap4.
//
// The tree is binary: a replay touches one 16-byte sibling per level,
// which measures faster than wider fan-outs (a 4-ary variant re-reads
// whole sibling groups and loses ~40% on the reschedule microbenchmark).
type EventTree struct {
	keys   []event16 // 1-based binary tree; leaves at [leaves, leaves+slots)
	leaves int
	slots  int
	seq    uint64
}

// NewEventTree creates a tree with the given number of slots, all empty.
func NewEventTree(slots int) *EventTree {
	if slots < 1 {
		panic("des: EventTree needs at least one slot")
	}
	leaves := 1
	for leaves < slots {
		leaves *= 2
	}
	t := &EventTree{
		keys:   make([]event16, 2*leaves),
		leaves: leaves,
		slots:  slots,
	}
	for i := range t.keys {
		t.keys[i] = infKey
	}
	return t
}

// Slots returns the slot count.
func (t *EventTree) Slots() int { return t.slots }

// Reset empties the tree, restarts its sequence counter, and resizes it to
// the given slot count, reusing the key array whenever the rounded-up leaf
// count is unchanged. After Reset the tree is indistinguishable from
// NewEventTree(slots); engines that persist across runs (sim.Runner) reset
// their tree instead of reallocating it.
func (t *EventTree) Reset(slots int) {
	if slots < 1 {
		panic("des: EventTree needs at least one slot")
	}
	leaves := 1
	for leaves < slots {
		leaves *= 2
	}
	if leaves != t.leaves {
		t.keys = make([]event16, 2*leaves)
		t.leaves = leaves
	}
	t.slots = slots
	t.seq = 0
	for i := range t.keys {
		t.keys[i] = infKey
	}
}

// nextSeq draws the next tie-break sequence word.
func (t *EventTree) nextSeq() uint64 {
	t.seq++
	if t.seq >= 1<<(64-heap4SeqShift) {
		panic("des: EventTree sequence overflow")
	}
	return t.seq << heap4SeqShift
}

// ReserveSeq consumes and returns one sequence word without scheduling,
// so a side-channel event stream can participate in the (time, seq) total
// order (see HeadAfter).
func (t *EventTree) ReserveSeq() uint64 { return t.nextSeq() }

// Schedule sets slot's pending event to (at, payload), replacing any
// previous one, and assigns the next sequence word.
func (t *EventTree) Schedule(slot int, at float64, payload uint32) {
	if payload > MaxHeap4Payload {
		panic(fmt.Sprintf("des: EventTree payload %d exceeds %d", payload, MaxHeap4Payload))
	}
	if !(at >= 0) || math.IsInf(at, 1) {
		panic(fmt.Sprintf("des: EventTree time %v is negative, infinite or NaN", at))
	}
	// at+0 normalizes -0.0, whose bit pattern orders after every positive
	// time under the integer comparison.
	t.replay(slot, event16{tbits: math.Float64bits(at + 0), meta: t.nextSeq() | uint64(payload)})
}

// ScheduleIdle is Schedule for a slot that is likely NOT the current root
// winner (e.g. an idle server starting service while other events are
// imminent): its replay stops at the first ancestor whose stored winner is
// unaffected, which for a far-future event is one or two levels. Semantics
// are identical to Schedule; only the constant factor differs. Do not use
// it for the slot that just fired — that replay changes every ancestor, and
// the early-exit test would be a mispredicted branch at every level.
func (t *EventTree) ScheduleIdle(slot int, at float64, payload uint32) {
	if payload > MaxHeap4Payload {
		panic(fmt.Sprintf("des: EventTree payload %d exceeds %d", payload, MaxHeap4Payload))
	}
	if !(at >= 0) || math.IsInf(at, 1) {
		panic(fmt.Sprintf("des: EventTree time %v is negative, infinite or NaN", at))
	}
	key := event16{tbits: math.Float64bits(at + 0), meta: t.nextSeq() | uint64(payload)}
	keys := t.keys
	i := t.leaves + slot
	keys[i] = key
	for i > 1 {
		key = minKey(key, keys[i^1])
		i >>= 1
		if keys[i] == key {
			return // subtree winner unchanged; ancestors already correct
		}
		keys[i] = key
	}
}

// Clear empties slot's pending event. It consumes no sequence word,
// matching a heap formulation in which "no next event" pushes nothing.
func (t *EventTree) Clear(slot int) { t.replay(slot, infKey) }

// replay writes key at slot's leaf and replays the path to the root. The
// path is replayed unconditionally: the common replay is for the slot that
// just fired (the previous root winner), whose path changes at every
// level, so an early-exit test would be a mispredicted branch exactly
// where it matters.
func (t *EventTree) replay(slot int, key event16) {
	keys := t.keys
	i := t.leaves + slot
	keys[i] = key
	for i > 1 {
		key = minKey(key, keys[i^1])
		i >>= 1
		keys[i] = key
	}
}

// Head returns the earliest pending event without removing it; ok is false
// when every slot is empty. The caller processes it and then either
// Schedules its slot again or Clears it (the entity id needed for that is
// part of the payload).
func (t *EventTree) Head() (at float64, payload uint32, ok bool) {
	k := t.keys[1]
	if k == infKey {
		return 0, 0, false
	}
	return math.Float64frombits(k.tbits), uint32(k.meta & MaxHeap4Payload), true
}

// HeadAfter reports whether the earliest pending event orders strictly
// after the (at, meta) key — vacuously true when the tree is empty.
func (t *EventTree) HeadAfter(at float64, meta uint64) bool {
	return event16{tbits: math.Float64bits(at + 0), meta: meta}.before(t.keys[1])
}

// The four accessors below exist for engine checkpoints (sim.Snapshot):
// a restored tree must reproduce the captured one's (time, seq) total
// order EXACTLY, so slots round-trip as raw key words — re-scheduling
// through Schedule would assign fresh sequence numbers and could reorder
// same-time events across the checkpoint boundary.

// SeqCounter returns the tie-break sequence counter's current value.
func (t *EventTree) SeqCounter() uint64 { return t.seq }

// RestoreSeqCounter sets the sequence counter, so sequence words drawn
// after a restore continue exactly where the captured tree stopped.
func (t *EventTree) RestoreSeqCounter(seq uint64) {
	if seq >= 1<<(64-heap4SeqShift) {
		panic("des: RestoreSeqCounter past the sequence limit")
	}
	t.seq = seq
}

// SlotKey exports slot's pending event as its raw key words; ok is false
// for an empty slot.
func (t *EventTree) SlotKey(slot int) (tbits, meta uint64, ok bool) {
	k := t.keys[t.leaves+slot]
	if k == infKey {
		return 0, 0, false
	}
	return k.tbits, k.meta, true
}

// RestoreSlot re-installs a key exported by SlotKey, preserving its
// captured sequence word. It does not advance the sequence counter.
func (t *EventTree) RestoreSlot(slot int, tbits, meta uint64) {
	t.replay(slot, event16{tbits: tbits, meta: meta})
}

package des

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestHeapOrdersByTime(t *testing.T) {
	var h EventHeap[int]
	times := []float64{5, 1, 3, 2, 4, 0.5, 3.5}
	for i, tm := range times {
		h.Push(tm, i)
	}
	var got []float64
	for {
		ev, ok := h.Pop()
		if !ok {
			break
		}
		got = append(got, ev.Time)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("pop order not sorted: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("lost events: %d of %d", len(got), len(times))
	}
}

func TestHeapTieBreaksFIFO(t *testing.T) {
	var h EventHeap[int]
	for i := 0; i < 10; i++ {
		h.Push(7, i)
	}
	for i := 0; i < 10; i++ {
		ev, ok := h.Pop()
		if !ok || ev.Payload != i {
			t.Fatalf("tie order: got %d at position %d", ev.Payload, i)
		}
	}
}

func TestHeapEmpty(t *testing.T) {
	var h EventHeap[string]
	if _, ok := h.Pop(); ok {
		t.Fatal("pop on empty succeeded")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	h.Push(1, "a")
	if ev, ok := h.Peek(); !ok || ev.Payload != "a" {
		t.Fatal("peek wrong")
	}
	if h.Len() != 1 {
		t.Fatal("len wrong")
	}
}

func TestHeapRandomOrderProperty(t *testing.T) {
	rng := xrand.New(5)
	f := func(count uint8) bool {
		var h EventHeap[int]
		n := int(count%100) + 1
		for i := 0; i < n; i++ {
			h.Push(rng.Float64()*100, i)
		}
		prev := math.Inf(-1)
		for {
			ev, ok := h.Pop()
			if !ok {
				break
			}
			if ev.Time < prev {
				return false
			}
			prev = ev.Time
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFIFOStationSemantics(t *testing.T) {
	var s FIFOStation[int]
	if !s.Arrive(1) {
		t.Fatal("first arrival should start service")
	}
	if s.Arrive(2) || s.Arrive(3) {
		t.Fatal("arrivals to busy server should not start service")
	}
	if s.Len() != 3 || !s.Busy() {
		t.Fatalf("len=%d busy=%v", s.Len(), s.Busy())
	}
	if head, ok := s.Head(); !ok || head != 1 {
		t.Fatal("head should be first arrival")
	}
	fin, next, hasNext := s.Complete()
	if fin != 1 || next != 2 || !hasNext {
		t.Fatalf("complete: fin=%d next=%d has=%v", fin, next, hasNext)
	}
	fin, next, hasNext = s.Complete()
	if fin != 2 || next != 3 || !hasNext {
		t.Fatalf("complete2: fin=%d next=%d has=%v", fin, next, hasNext)
	}
	fin, _, hasNext = s.Complete()
	if fin != 3 || hasNext {
		t.Fatalf("complete3: fin=%d has=%v", fin, hasNext)
	}
	if s.Busy() || s.Len() != 0 {
		t.Fatal("station should be idle and empty")
	}
}

func TestFIFOStationRingGrowth(t *testing.T) {
	// Interleave arrivals and completions so head wraps, then grow.
	var s FIFOStation[int]
	next := 0
	arrive := func(k int) {
		for i := 0; i < k; i++ {
			s.Arrive(next)
			next++
		}
	}
	expect := 0
	complete := func(k int) {
		for i := 0; i < k; i++ {
			fin, _, _ := s.Complete()
			if fin != expect {
				t.Fatalf("FIFO order broken: got %d want %d", fin, expect)
			}
			expect++
		}
	}
	arrive(3)
	complete(2)
	arrive(6) // forces growth with wrapped head
	complete(5)
	arrive(20)
	complete(22)
	if s.Len() != 0 {
		t.Fatal("not drained")
	}
}

func TestFIFOCompleteOnIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var s FIFOStation[int]
	s.Complete()
}

func TestPriorityStationOrdering(t *testing.T) {
	var s PriorityStation[string]
	if !s.Arrive("first", 1) {
		t.Fatal("first arrival should start service")
	}
	// While "first" is in service, higher-priority work arrives; it must
	// wait (non-preemptive) but be served before lower-priority work.
	s.Arrive("low", 1)
	s.Arrive("high", 9)
	s.Arrive("mid", 5)
	if s.Len() != 4 || !s.Busy() {
		t.Fatalf("len=%d busy=%v", s.Len(), s.Busy())
	}
	if head, ok := s.Head(); !ok || head != "first" {
		t.Fatalf("in-service = %q, want first", head)
	}
	var order []string
	fin, _, has := s.Complete()
	order = append(order, fin)
	for has {
		fin, _, has = s.Complete()
		order = append(order, fin)
	}
	want := []string{"first", "high", "mid", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
	if s.Busy() || s.Len() != 0 {
		t.Fatal("station should be idle")
	}
}

func TestPriorityStationFIFOTieBreak(t *testing.T) {
	var s PriorityStation[int]
	s.Arrive(0, 1) // in service
	for i := 1; i <= 5; i++ {
		s.Arrive(i, 7) // equal priorities
	}
	expect := 0
	fin, _, has := s.Complete()
	for {
		if fin != expect {
			t.Fatalf("got %d, want %d", fin, expect)
		}
		expect++
		if !has {
			break
		}
		fin, _, has = s.Complete()
	}
	if expect != 6 {
		t.Fatalf("served %d jobs, want 6", expect)
	}
}

func TestPriorityStationRandomizedHeapProperty(t *testing.T) {
	rng := xrand.New(17)
	f := func(count uint8) bool {
		var s PriorityStation[float64]
		n := int(count%50) + 2
		s.Arrive(-1, 0) // in service, drained first
		for i := 1; i < n; i++ {
			p := rng.Float64()
			s.Arrive(p, p)
		}
		fin, _, has := s.Complete() // the in-service job
		if fin != -1 {
			return false
		}
		prev := math.Inf(1)
		for has {
			fin, _, has = s.Complete()
			if fin > prev {
				return false
			}
			prev = fin
		}
		return s.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPriorityCompleteOnIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var s PriorityStation[int]
	s.Complete()
}

func TestPSStationTextbookScenario(t *testing.T) {
	// Job A (work 1) arrives at t=0; job B (work 1) arrives at t=0.5.
	// A finishes at 1.5, B at 2.0 — the classic PS timeline.
	var s PSStation[string]
	s.Arrive(0, "A", 1)
	tc, ok := s.NextCompletion(0)
	if !ok || math.Abs(tc-1) > 1e-12 {
		t.Fatalf("solo completion at %v, want 1", tc)
	}
	s.Arrive(0.5, "B", 1)
	tc, ok = s.NextCompletion(0.5)
	if !ok || math.Abs(tc-1.5) > 1e-12 {
		t.Fatalf("shared completion at %v, want 1.5", tc)
	}
	if got := s.CompleteOne(1.5); got != "A" {
		t.Fatalf("first completion %q, want A", got)
	}
	tc, ok = s.NextCompletion(1.5)
	if !ok || math.Abs(tc-2.0) > 1e-12 {
		t.Fatalf("B completion at %v, want 2.0", tc)
	}
	if got := s.CompleteOne(2.0); got != "B" {
		t.Fatalf("second completion %q, want B", got)
	}
	if s.Len() != 0 {
		t.Fatal("station not empty")
	}
}

func TestPSStationEpochBumps(t *testing.T) {
	var s PSStation[int]
	e0 := s.Epoch()
	s.Arrive(0, 1, 1)
	if s.Epoch() == e0 {
		t.Fatal("arrival did not bump epoch")
	}
	e1 := s.Epoch()
	s.CompleteOne(1)
	if s.Epoch() == e1 {
		t.Fatal("completion did not bump epoch")
	}
}

func TestPSStationWorkConservation(t *testing.T) {
	// Total completion time of k simultaneous unit jobs equals k (server
	// works at rate 1 whenever nonempty), regardless of sharing.
	var s PSStation[int]
	const k = 5
	for i := 0; i < k; i++ {
		s.Arrive(0, i, 1)
	}
	now := 0.0
	for i := 0; i < k; i++ {
		tc, ok := s.NextCompletion(now)
		if !ok {
			t.Fatal("no completion")
		}
		now = tc
		s.CompleteOne(now)
	}
	if math.Abs(now-k) > 1e-9 {
		t.Fatalf("drain time %v, want %d", now, k)
	}
}

func TestPSEmptyStation(t *testing.T) {
	var s PSStation[int]
	if _, ok := s.NextCompletion(0); ok {
		t.Fatal("empty station has a completion")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CompleteOne on empty should panic")
		}
	}()
	s.CompleteOne(0)
}

// Package des provides the discrete-event-simulation core used by the
// network simulator: a deterministic event heap and FIFO and
// Processor-Sharing (PS) stations. The engine is sequential — event
// causality in a single queueing network does not parallelize — and the
// simulator gets its parallelism from running independent replicas on
// separate goroutines (see internal/sim).
package des

// Event is a scheduled occurrence: a time plus an opaque payload. Ties in
// time break by insertion order (Seq), which keeps runs deterministic.
type Event[T any] struct {
	Time    float64
	Seq     uint64
	Payload T
}

// EventHeap is a binary min-heap of events ordered by (Time, Seq). The zero
// value is an empty heap ready for use.
type EventHeap[T any] struct {
	items []Event[T]
	seq   uint64
}

// Len returns the number of pending events.
func (h *EventHeap[T]) Len() int { return len(h.items) }

// Push schedules payload at time t.
func (h *EventHeap[T]) Push(t float64, payload T) {
	h.seq++
	h.items = append(h.items, Event[T]{Time: t, Seq: h.seq, Payload: payload})
	h.up(len(h.items) - 1)
}

// Pop removes and returns the earliest event. ok is false if the heap is
// empty.
func (h *EventHeap[T]) Pop() (ev Event[T], ok bool) {
	if len(h.items) == 0 {
		return ev, false
	}
	ev = h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return ev, true
}

// Peek returns the earliest event without removing it.
func (h *EventHeap[T]) Peek() (ev Event[T], ok bool) {
	if len(h.items) == 0 {
		return ev, false
	}
	return h.items[0], true
}

func (h *EventHeap[T]) less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Seq < b.Seq
}

func (h *EventHeap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *EventHeap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// Package des provides the discrete-event-simulation core used by the
// network simulator: deterministic event heaps and FIFO, Priority and
// Processor-Sharing (PS) stations. The engine is sequential — event
// causality in a single queueing network does not parallelize — and the
// simulator gets its parallelism from running independent replicas on
// separate goroutines (see internal/sim).
package des

// Event is a scheduled occurrence: a time plus an opaque payload. Ties in
// time break by insertion order (Seq), which keeps runs deterministic.
type Event[T any] struct {
	Time    float64
	Seq     uint64
	Payload T
}

// EventHeap is a 4-ary min-heap of events ordered by (Time, Seq). The zero
// value is an empty heap ready for use.
//
// The 4-ary layout halves the tree depth of a binary heap and keeps the
// four children of a node on at most two cache lines, which is what makes
// Pop's sift-down — the dominant heap cost in a simulation loop, where
// every Push is soon followed by a Pop — measurably cheaper. Because
// (Time, Seq) is a strict total order, the pop sequence is identical to the
// binary heap's, so seeded simulations reproduce bit-for-bit across the
// layout change.
type EventHeap[T any] struct {
	items []Event[T]
	seq   uint64
}

// heapArity is the fan-out of EventHeap and Heap4.
const heapArity = 4

// Len returns the number of pending events.
func (h *EventHeap[T]) Len() int { return len(h.items) }

// Push schedules payload at time t.
func (h *EventHeap[T]) Push(t float64, payload T) {
	h.seq++
	h.items = append(h.items, Event[T]{Time: t, Seq: h.seq, Payload: payload})
	h.up(len(h.items) - 1)
}

// Pop removes and returns the earliest event. ok is false if the heap is
// empty.
func (h *EventHeap[T]) Pop() (ev Event[T], ok bool) {
	if len(h.items) == 0 {
		return ev, false
	}
	ev = h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	// Clear the vacated slot so pointer-bearing payloads do not stay live
	// in the backing array after they leave the heap.
	h.items[last] = Event[T]{}
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return ev, true
}

// Peek returns the earliest event without removing it.
func (h *EventHeap[T]) Peek() (ev Event[T], ok bool) {
	if len(h.items) == 0 {
		return ev, false
	}
	return h.items[0], true
}

func (h *EventHeap[T]) less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.Seq < b.Seq
}

func (h *EventHeap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *EventHeap[T]) down(i int) {
	n := len(h.items)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		smallest := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.less(c, smallest) {
				smallest = c
			}
		}
		if !h.less(smallest, i) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

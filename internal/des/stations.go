package des

// FIFOStation is a single-server queue with first-in-first-out service.
// It tracks only queue membership and busyness; the caller owns the clock
// and schedules completion events. The zero value is an idle, empty station.
//
// The queue is a growable ring buffer so that steady-state operation does
// not allocate. Its capacity is kept a power of two so index wrap-around is
// a mask, not a hardware divide — push/pop run once per routed hop.
type FIFOStation[J any] struct {
	buf        []J
	head, size int
	busy       bool
}

// InitRing seeds an empty, never-used station with a caller-provided ring
// buffer; len(buf) must be a positive power of two. A simulator warming
// thousands of stations carves them all from one slab, so steady-state ring
// growth (the dominant allocation source once packets live in an arena)
// almost never happens.
func (s *FIFOStation[J]) InitRing(buf []J) {
	if s.size != 0 || s.buf != nil {
		panic("des: InitRing on a used FIFO station")
	}
	if len(buf) == 0 || len(buf)&(len(buf)-1) != 0 {
		panic("des: InitRing buffer length must be a positive power of two")
	}
	s.buf = buf
}

// Reset empties the station for reuse, keeping its (possibly grown) ring
// buffer. Leftover buffer contents are not zeroed, so J should be a value
// type (the simulator queues int32 handles); a pointer-typed J would keep
// stale references alive until overwritten.
func (s *FIFOStation[J]) Reset() {
	s.head, s.size = 0, 0
	s.busy = false
}

// Arrive enqueues job j and reports whether the server was idle, in which
// case the caller must start service for j now (j became the in-service
// job).
func (s *FIFOStation[J]) Arrive(j J) (startService bool) {
	s.push(j)
	if s.busy {
		return false
	}
	s.busy = true
	return true
}

// Complete removes the in-service job (the queue head) and returns the next
// job to serve, if any. The caller must schedule the returned job's
// completion. If the queue empties, the station goes idle.
func (s *FIFOStation[J]) Complete() (finished J, next J, hasNext bool) {
	if !s.busy || s.size == 0 {
		panic("des: Complete on idle FIFO station")
	}
	finished = s.pop()
	if s.size == 0 {
		s.busy = false
		var zero J
		return finished, zero, false
	}
	return finished, s.buf[s.head], true
}

// Head returns the in-service job without removing it.
func (s *FIFOStation[J]) Head() (j J, ok bool) {
	if s.size == 0 {
		var zero J
		return zero, false
	}
	return s.buf[s.head], true
}

// Len returns the number of jobs at the station, including the one in
// service.
func (s *FIFOStation[J]) Len() int { return s.size }

// At returns the i-th queued job in FIFO order (0 is the in-service job).
// It exists for engine checkpoints, which must serialize queue contents in
// service order; i must be in [0, Len()).
func (s *FIFOStation[J]) At(i int) J {
	if i < 0 || i >= s.size {
		panic("des: FIFOStation.At out of range")
	}
	return s.buf[(s.head+i)&(len(s.buf)-1)]
}

// Busy reports whether a job is in service.
func (s *FIFOStation[J]) Busy() bool { return s.busy }

func (s *FIFOStation[J]) push(j J) {
	if s.size == len(s.buf) {
		// Doubling from a power-of-two floor keeps capacity a power of two.
		grown := make([]J, max(4, 2*len(s.buf)))
		for i := 0; i < s.size; i++ {
			grown[i] = s.buf[(s.head+i)%len(s.buf)]
		}
		s.buf = grown
		s.head = 0
	}
	s.buf[(s.head+s.size)&(len(s.buf)-1)] = j
	s.size++
}

func (s *FIFOStation[J]) pop() J {
	j := s.buf[s.head]
	var zero J
	s.buf[s.head] = zero
	s.head = (s.head + 1) & (len(s.buf) - 1)
	s.size--
	return j
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PriorityStation is a non-preemptive single server that always serves the
// queued job with the highest priority (ties broken FIFO). It implements
// Leighton's furthest-to-travel-first service order, which the paper's
// introduction contrasts with FIFO service. The zero value is an idle,
// empty station.
type PriorityStation[J any] struct {
	heap      []prioJob[J]
	seq       uint64
	serving   bool
	inService J
}

type prioJob[J any] struct {
	payload  J
	priority float64
	seq      uint64
}

// Reset empties the station for reuse, keeping its heap storage (payloads
// are zeroed so no stale references survive).
func (s *PriorityStation[J]) Reset() {
	for i := range s.heap {
		s.heap[i] = prioJob[J]{}
	}
	s.heap = s.heap[:0]
	s.seq = 0
	s.serving = false
	var zero J
	s.inService = zero
}

// Arrive enqueues j with the given priority and reports whether the server
// was idle, in which case j entered service and the caller must schedule
// its completion. The in-service job is held outside the queue: a later,
// higher-priority arrival waits (service is non-preemptive).
func (s *PriorityStation[J]) Arrive(j J, priority float64) (startService bool) {
	if !s.serving {
		s.serving = true
		s.inService = j
		return true
	}
	s.seq++
	s.heap = append(s.heap, prioJob[J]{payload: j, priority: priority, seq: s.seq})
	s.up(len(s.heap) - 1)
	return false
}

// Complete finishes the in-service job and promotes the highest-priority
// waiting job (ties FIFO), which the caller must schedule.
func (s *PriorityStation[J]) Complete() (finished J, next J, hasNext bool) {
	if !s.serving {
		panic("des: Complete on idle priority station")
	}
	finished = s.inService
	var zero J
	s.inService = zero
	if len(s.heap) == 0 {
		s.serving = false
		return finished, zero, false
	}
	s.inService = s.pop()
	return finished, s.inService, true
}

// Head returns the in-service job.
func (s *PriorityStation[J]) Head() (j J, ok bool) {
	if !s.serving {
		var zero J
		return zero, false
	}
	return s.inService, true
}

// Len returns the number of jobs at the station, including the one in
// service.
func (s *PriorityStation[J]) Len() int {
	n := len(s.heap)
	if s.serving {
		n++
	}
	return n
}

// Busy reports whether a job is in service.
func (s *PriorityStation[J]) Busy() bool { return s.serving }

func (s *PriorityStation[J]) less(i, j int) bool {
	a, b := &s.heap[i], &s.heap[j]
	if a.priority != b.priority {
		return a.priority > b.priority // max-heap on priority
	}
	return a.seq < b.seq // FIFO among equals
}

func (s *PriorityStation[J]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *PriorityStation[J]) pop() J {
	j := s.heap[0].payload
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	var zero prioJob[J]
	s.heap[last] = zero
	s.heap = s.heap[:last]
	// sift down
	i := 0
	n := len(s.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		best := left
		if right := left + 1; right < n && s.less(right, left) {
			best = right
		}
		if !s.less(best, i) {
			break
		}
		s.heap[i], s.heap[best] = s.heap[best], s.heap[i]
		i = best
	}
	return j
}

// PSStation is an egalitarian Processor-Sharing server: all present jobs
// receive service simultaneously at rate 1/k when k jobs are present. It is
// the discipline of Theorem 5's comparison network Q̄. The zero value is an
// empty station.
//
// The caller drives time: Arrive and CompleteOne advance the internal work
// accounting to the supplied clock value, and NextCompletion tells the
// caller when to schedule the next completion event. Because arrivals
// change completion times, scheduled events are validated with Epoch:
// events carrying a stale epoch must be discarded.
type PSStation[J any] struct {
	jobs  []psJob[J]
	last  float64
	epoch uint64
}

type psJob[J any] struct {
	payload   J
	remaining float64
}

// Reset empties the station for reuse, keeping its job storage (payloads
// are zeroed so no stale references survive).
func (s *PSStation[J]) Reset() {
	for i := range s.jobs {
		s.jobs[i] = psJob[J]{}
	}
	s.jobs = s.jobs[:0]
	s.last = 0
	s.epoch = 0
}

// Epoch returns the current scheduling epoch; it changes whenever the set
// of jobs changes. Heap-based schedules stamp completion events with it to
// detect staleness; the simulator's EventTree does not need it, because
// rescheduling overwrites the station's single event slot in place and a
// stale completion can never fire.
func (s *PSStation[J]) Epoch() uint64 { return s.epoch }

// Len returns the number of jobs in service.
func (s *PSStation[J]) Len() int { return len(s.jobs) }

// advance applies shared service between s.last and now.
func (s *PSStation[J]) advance(now float64) {
	if len(s.jobs) > 0 && now > s.last {
		share := (now - s.last) / float64(len(s.jobs))
		for i := range s.jobs {
			s.jobs[i].remaining -= share
		}
	}
	s.last = now
}

// Arrive adds a job needing `work` units of service at time now.
func (s *PSStation[J]) Arrive(now float64, j J, work float64) {
	s.advance(now)
	s.jobs = append(s.jobs, psJob[J]{payload: j, remaining: work})
	s.epoch++
}

// NextCompletion returns the time at which the job with the least remaining
// work will finish if no further arrivals occur, and false if the station
// is empty.
func (s *PSStation[J]) NextCompletion(now float64) (float64, bool) {
	if len(s.jobs) == 0 {
		return 0, false
	}
	s.advance(now)
	minRem := s.jobs[0].remaining
	for _, j := range s.jobs[1:] {
		if j.remaining < minRem {
			minRem = j.remaining
		}
	}
	if minRem < 0 {
		minRem = 0
	}
	return now + minRem*float64(len(s.jobs)), true
}

// CompleteOne removes the job with the least remaining work at time now and
// returns it. The caller should have arrived here via a valid (non-stale)
// completion event, so the minimum remaining work is ~0; any numerical
// residue is absorbed.
func (s *PSStation[J]) CompleteOne(now float64) J {
	if len(s.jobs) == 0 {
		panic("des: CompleteOne on empty PS station")
	}
	s.advance(now)
	minIdx := 0
	for i := range s.jobs {
		if s.jobs[i].remaining < s.jobs[minIdx].remaining {
			minIdx = i
		}
	}
	j := s.jobs[minIdx].payload
	last := len(s.jobs) - 1
	s.jobs[minIdx] = s.jobs[last]
	var zero psJob[J]
	s.jobs[last] = zero
	s.jobs = s.jobs[:last]
	s.epoch++
	return j
}

package des

import (
	"fmt"
	"math"
	"math/bits"
)

// Heap4 payload packing limits. A payload is an opaque 24-bit value chosen
// by the caller (the simulator packs an event kind and an edge/source id
// into it); the remaining 40 bits of the tie-break word hold the insertion
// sequence.
const (
	// MaxHeap4Payload is the largest payload Push accepts.
	MaxHeap4Payload = 1<<24 - 1
	heap4SeqShift   = 24
)

// event16 is one Heap4 record: exactly 16 bytes, four per 64-byte cache
// line. tbits is math.Float64bits of the event time — event times are
// non-negative, so the IEEE-754 bit patterns order exactly like the floats
// and the heap can compare them as integers. meta packs
// (seq << 24) | payload, so comparing meta alone breaks time ties by
// insertion order — the same (Time, Seq) total order EventHeap uses.
// Together (tbits, meta) compare lexicographically with two carry-chained
// integer subtractions and no branches (see before).
type event16 struct {
	tbits uint64
	meta  uint64
}

// before reports whether a orders strictly before b, branch-free: the
// lexicographic (tbits, meta) comparison is the borrow bit of the 128-bit
// subtraction (a.tbits:a.meta) - (b.tbits:b.meta). Event keys are unique
// (meta embeds a distinct sequence number), so strict/non-strict coincide.
// bits.Sub64 compiles to two SBB instructions; the data-dependent branch a
// float comparison chain would cost — mispredicted roughly half the time on
// heap-ordered data — is the single largest cost in a DES loop.
func (a event16) before(b event16) bool {
	_, borrow := bits.Sub64(a.meta, b.meta, 0)
	_, borrow = bits.Sub64(a.tbits, b.tbits, borrow)
	return borrow != 0
}

// minPair returns the smaller of two (index, event) pairs with pure mask
// arithmetic — no data-dependent branch, so the sift-down tournament in Pop
// never mispredicts. The two leaf-level minPair calls per heap level are
// independent and pipeline side by side.
func minPair(ia int, a event16, ib int, b event16) (int, event16) {
	_, borrow := bits.Sub64(b.meta, a.meta, 0)
	_, borrow = bits.Sub64(b.tbits, a.tbits, borrow)
	m := uint64(0) - borrow // all-ones when b < a
	return int(uint64(ib)&m | uint64(ia)&^m), event16{
		tbits: b.tbits&m | a.tbits&^m,
		meta:  b.meta&m | a.meta&^m,
	}
}

// Heap4 is the simulation hot path's event queue: a 4-ary min-heap of
// 16-byte (time, seq|payload) records with branch-free comparisons.
// Compared with EventHeap it removes the generic payload (and its padding)
// from every record, halving the bytes moved per sift, and never
// mispredicts on key order.
//
// Capacity: 2^40 insertions per heap (≈10^12 events) before the packed
// sequence would overflow into the payload bits, and 2^24 distinct payload
// values. Push panics beyond either limit; the simulator validates its
// network size against MaxHeap4Payload up front. Times must be
// non-negative (simulation clocks are); Push panics otherwise.
//
// The zero value is an empty heap ready for use.
type Heap4 struct {
	items []event16
	seq   uint64
}

// Len returns the number of pending events.
func (h *Heap4) Len() int { return len(h.items) }

// Push schedules payload at time t.
func (h *Heap4) Push(t float64, payload uint32) {
	h.items = append(h.items, h.record(t, payload))
	// Sift up inline; Push is one of the two hottest calls in the
	// simulator and the compiler will not inline a call chain through a
	// method with a loop.
	items := h.items
	i := len(items) - 1
	moving := items[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		p := items[parent]
		if p.before(moving) {
			break
		}
		items[i] = p
		i = parent
	}
	items[i] = moving
}

// record validates (t, payload) and assigns the next sequence number.
func (h *Heap4) record(t float64, payload uint32) event16 {
	if payload > MaxHeap4Payload {
		panic(fmt.Sprintf("des: Heap4 payload %d exceeds %d", payload, MaxHeap4Payload))
	}
	if !(t >= 0) {
		panic(fmt.Sprintf("des: Heap4 time %v is negative or NaN", t))
	}
	h.seq++
	if h.seq >= 1<<(64-heap4SeqShift) {
		panic("des: Heap4 sequence overflow")
	}
	// t+0 normalizes -0.0 to +0.0, whose bit pattern would otherwise
	// integer-compare after every positive time.
	return event16{tbits: math.Float64bits(t + 0), meta: h.seq<<heap4SeqShift | uint64(payload)}
}

// ReserveSeq consumes and returns one sequence number without pushing an
// event. Callers that keep a side channel of known-next events (the
// simulator's merged arrival stream) reserve a number at the moment they
// would have pushed, so that comparing their reserved value against
// PeekMeta reproduces exactly the (Time, Seq) tie-break order of a pure
// heap schedule.
func (h *Heap4) ReserveSeq() uint64 {
	h.seq++
	if h.seq >= 1<<(64-heap4SeqShift) {
		panic("des: Heap4 sequence overflow")
	}
	return h.seq << heap4SeqShift
}

// Pop removes and returns the earliest event's time and payload. ok is
// false if the heap is empty.
func (h *Heap4) Pop() (t float64, payload uint32, ok bool) {
	n := len(h.items)
	if n == 0 {
		return 0, 0, false
	}
	top := h.items[0]
	last := n - 1
	moving := h.items[last]
	h.items[last] = event16{} // keep vacated slots zeroed
	h.items = h.items[:last]
	if last > 0 {
		// Sift moving down from the root using hole semantics: the hole
		// follows the smallest child until moving fits. Full levels run a
		// branchless 2+1 tournament over the four children; only the final
		// "does moving fit here" test branches, and it mispredicts at most
		// once per pop (at the level where the descent stops).
		items := h.items
		i := 0
		for {
			first := heapArity*i + 1
			if first+heapArity <= last {
				ch := items[first : first+heapArity : first+heapArity]
				ia, a := minPair(first, ch[0], first+1, ch[1])
				ib, b := minPair(first+2, ch[2], first+3, ch[3])
				smallest, sm := minPair(ia, a, ib, b)
				if moving.before(sm) {
					break
				}
				items[i] = sm
				i = smallest
				continue
			}
			if first >= last {
				break
			}
			// Partial bottom level: plain scan over the 1–3 children.
			smallest := first
			sm := items[first]
			for c := first + 1; c < last; c++ {
				if e := items[c]; e.before(sm) {
					smallest, sm = c, e
				}
			}
			if moving.before(sm) {
				break
			}
			items[i] = sm
			i = smallest
		}
		items[i] = moving
	}
	return math.Float64frombits(top.tbits), uint32(top.meta & MaxHeap4Payload), true
}

// PeekTime returns the earliest event's time without removing it.
func (h *Heap4) PeekTime() (t float64, ok bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	return math.Float64frombits(h.items[0].tbits), true
}

// TopAfter reports whether the heap's earliest event orders strictly after
// the (t, meta) key — vacuously true when the heap is empty. The simulator
// uses it to interleave a side-channel event stream (the merged arrival
// clock, whose meta comes from ReserveSeq) with heap events in exactly the
// (Time, Seq) order a pure heap schedule would produce.
func (h *Heap4) TopAfter(t float64, meta uint64) bool {
	if len(h.items) == 0 {
		return true
	}
	return event16{tbits: math.Float64bits(t + 0), meta: meta}.before(h.items[0])
}

package des

import (
	"math"
	"sort"
	"testing"

	"repro/internal/xrand"
)

// oracleEvent mirrors one scheduled event for the sort-based oracle.
type oracleEvent struct {
	time    float64
	seq     uint64
	payload uint32
}

func oracleLess(a, b oracleEvent) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// TestHeap4AgainstSortOracle fuzzes interleaved pushes and pops and checks
// every pop against a fully sorted oracle of the same schedule, including
// deliberate time collisions that exercise the packed seq tie-break.
func TestHeap4AgainstSortOracle(t *testing.T) {
	rng := xrand.New(11)
	for round := 0; round < 50; round++ {
		var h Heap4
		var pending []oracleEvent
		seq := uint64(0)
		push := func() {
			tm := rng.Float64() * 100
			if rng.Bernoulli(0.3) && len(pending) > 0 {
				// Force a tie with an already-scheduled time.
				tm = pending[rng.Intn(len(pending))].time
			}
			payload := uint32(rng.Intn(1 << 24))
			seq++
			h.Push(tm, payload)
			pending = append(pending, oracleEvent{time: tm, seq: seq, payload: payload})
		}
		popCheck := func() {
			tm, payload, ok := h.Pop()
			if len(pending) == 0 {
				if ok {
					t.Fatal("pop on empty heap returned an event")
				}
				return
			}
			if !ok {
				t.Fatal("pop lost an event")
			}
			best := 0
			for i := range pending {
				if oracleLess(pending[i], pending[best]) {
					best = i
				}
			}
			want := pending[best]
			pending = append(pending[:best], pending[best+1:]...)
			if tm != want.time || payload != want.payload {
				t.Fatalf("pop = (%v, %d), oracle (%v, %d)", tm, payload, want.time, want.payload)
			}
		}
		ops := 200 + rng.Intn(200)
		for i := 0; i < ops; i++ {
			if rng.Bernoulli(0.6) {
				push()
			} else {
				popCheck()
			}
		}
		// Drain and compare against the oracle's full sort.
		rest := append([]oracleEvent(nil), pending...)
		sort.Slice(rest, func(i, j int) bool { return oracleLess(rest[i], rest[j]) })
		for _, want := range rest {
			tm, payload, ok := h.Pop()
			if !ok || tm != want.time || payload != want.payload {
				t.Fatalf("drain: got (%v,%d,%v), want (%v,%d)", tm, payload, ok, want.time, want.payload)
			}
		}
		if h.Len() != 0 {
			t.Fatal("heap not empty after drain")
		}
	}
}

// TestHeap4MatchesEventHeap runs one interleaved schedule through both
// implementations; their pop sequences must be identical because both
// order by the same (Time, Seq) key.
func TestHeap4MatchesEventHeap(t *testing.T) {
	rng := xrand.New(13)
	var h4 Heap4
	var hg EventHeap[uint32]
	for i := 0; i < 5000; i++ {
		if rng.Bernoulli(0.55) {
			tm := float64(rng.Intn(64)) // coarse times: many exact ties
			p := uint32(i)
			h4.Push(tm, p)
			hg.Push(tm, p)
		} else {
			t4, p4, ok4 := h4.Pop()
			evg, okg := hg.Pop()
			if ok4 != okg {
				t.Fatalf("op %d: emptiness diverged", i)
			}
			if ok4 && (t4 != evg.Time || p4 != evg.Payload) {
				t.Fatalf("op %d: Heap4 (%v,%d) != EventHeap (%v,%d)", i, t4, p4, evg.Time, evg.Payload)
			}
		}
	}
}

// TestHeap4PayloadLimit verifies the 24-bit payload guard.
func TestHeap4PayloadLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized payload")
		}
	}()
	var h Heap4
	h.Push(1, MaxHeap4Payload+1)
}

// TestHeap4ClearsVacatedSlots checks that popped records do not linger in
// the backing array (the retention fix also applied to EventHeap.Pop).
func TestHeap4ClearsVacatedSlots(t *testing.T) {
	var h Heap4
	for i := 0; i < 16; i++ {
		h.Push(float64(i), uint32(i))
	}
	for i := 0; i < 16; i++ {
		h.Pop()
	}
	for i, it := range h.items[:cap(h.items)] {
		if it != (event16{}) {
			t.Fatalf("slot %d retains %+v after drain", i, it)
		}
	}
}

// TestEventHeapClearsVacatedSlot is the EventHeap.Pop retention fix: the
// vacated last slot must be zeroed so pointer payloads can be collected.
func TestEventHeapClearsVacatedSlot(t *testing.T) {
	var h EventHeap[*int]
	x := new(int)
	h.Push(1, x)
	h.Push(2, x)
	h.Pop()
	items := h.items[:cap(h.items)]
	if items[1].Payload != nil {
		t.Fatal("vacated slot still holds the payload pointer")
	}
	h.Pop()
	if items[0].Payload != nil {
		t.Fatal("slot 0 still holds the payload pointer after drain")
	}
}

// TestEventTreeAgainstOracle fuzzes Schedule/Clear over a fixed slot set
// and checks Head against a brute-force minimum of the live slot map.
func TestEventTreeAgainstOracle(t *testing.T) {
	rng := xrand.New(17)
	for _, slots := range []int{1, 2, 3, 7, 8, 64, 100} {
		tree := NewEventTree(slots)
		type live struct {
			time    float64
			seq     uint64
			payload uint32
			ok      bool
		}
		oracle := make([]live, slots)
		seq := uint64(0)
		for op := 0; op < 4000; op++ {
			slot := rng.Intn(slots)
			if rng.Bernoulli(0.8) {
				tm := rng.Float64() * 50
				if rng.Bernoulli(0.25) {
					tm = float64(rng.Intn(8)) // frequent exact ties
				}
				payload := uint32(rng.Intn(1 << 24))
				seq++
				tree.Schedule(slot, tm, payload)
				oracle[slot] = live{time: tm, seq: seq, payload: payload, ok: true}
			} else {
				tree.Clear(slot)
				oracle[slot] = live{}
			}
			best, any := 0, false
			for i := range oracle {
				if !oracle[i].ok {
					continue
				}
				if !any || oracle[i].time < oracle[best].time ||
					(oracle[i].time == oracle[best].time && oracle[i].seq < oracle[best].seq) {
					best, any = i, true
				}
			}
			at, payload, ok := tree.Head()
			if ok != any {
				t.Fatalf("slots=%d op=%d: Head ok=%v, oracle %v", slots, op, ok, any)
			}
			if any && (at != oracle[best].time || payload != oracle[best].payload) {
				t.Fatalf("slots=%d op=%d: Head (%v,%d), oracle slot %d (%v,%d)",
					slots, op, at, payload, best, oracle[best].time, oracle[best].payload)
			}
		}
	}
}

// TestEventTreeHeadAfter pins the side-channel ordering used by the
// simulator's merged arrival clock.
func TestEventTreeHeadAfter(t *testing.T) {
	tree := NewEventTree(4)
	if !tree.HeadAfter(5, tree.ReserveSeq()) {
		t.Fatal("empty tree must order after any key")
	}
	arrMeta := tree.ReserveSeq()
	tree.Schedule(2, 7, 9) // later seq than arrMeta
	if !tree.HeadAfter(5, arrMeta) {
		t.Fatal("arrival at t=5 must precede event at t=7")
	}
	if !tree.HeadAfter(7, arrMeta) {
		t.Fatal("tie at t=7 must break toward the earlier sequence word")
	}
	if tree.HeadAfter(8, tree.ReserveSeq()) {
		t.Fatal("arrival at t=8 must come after the t=7 event")
	}
}

// TestEventTreeSentinelRejectsBadTimes ensures NaN/negative/inf schedule
// times fail fast instead of corrupting the order.
func TestEventTreeSentinelRejectsBadTimes(t *testing.T) {
	for _, bad := range []float64{-1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Schedule(%v) did not panic", bad)
				}
			}()
			NewEventTree(2).Schedule(0, bad, 0)
		}()
	}
}

package stepsim

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/topology"
)

// requireSameFaultBits extends requireSameBits to the fault-layer
// observables: the exact-integer outcome counters and the downtime
// fractions must also be shard-invariant.
func requireSameFaultBits(t *testing.T, label string, got, want Result) {
	t.Helper()
	requireSameBits(t, label, got, want)
	if got.Dropped != want.Dropped {
		t.Errorf("%s: Dropped %d != %d", label, got.Dropped, want.Dropped)
	}
	if got.DeadEnds != want.DeadEnds {
		t.Errorf("%s: DeadEnds %d != %d", label, got.DeadEnds, want.DeadEnds)
	}
	if got.DetourHops != want.DetourHops {
		t.Errorf("%s: DetourHops %d != %d", label, got.DetourHops, want.DetourHops)
	}
	if got.Misrouted != want.Misrouted {
		t.Errorf("%s: Misrouted %d != %d", label, got.Misrouted, want.Misrouted)
	}
	if math.Float64bits(got.LinkDownFrac) != math.Float64bits(want.LinkDownFrac) {
		t.Errorf("%s: LinkDownFrac %v != %v", label, got.LinkDownFrac, want.LinkDownFrac)
	}
	if math.Float64bits(got.NodeDownFrac) != math.Float64bits(want.NodeDownFrac) {
		t.Errorf("%s: NodeDownFrac %v != %v", label, got.NodeDownFrac, want.NodeDownFrac)
	}
}

// fullFaultPlan binds a plan exercising every fault family at once: link
// and node Markov processes, a regional outage mid-run, and all three
// misbehavior modes on explicit nodes.
func fullFaultPlan(t *testing.T, net topology.Network) *fault.Plan {
	t.Helper()
	spec := &fault.Spec{
		LinkMTBF:     300,
		LinkMTTR:     20,
		LinkFraction: 0.2,
		NodeMTBF:     2000,
		NodeMTTR:     30,
		NodeFraction: 0.05,
		Outages: []fault.Outage{
			{Row0: 3, Col0: 3, Row1: 5, Col1: 5, Start: 500, Duration: 300},
		},
		Misbehave: []fault.Misbehave{
			{Mode: fault.ModeDelay, Nodes: []int{7}, ExtraDelay: 3},
			{Mode: fault.ModeMisroute, Nodes: []int{40}, Prob: 0.3},
			{Mode: fault.ModeDrop, Nodes: []int{100}, Prob: 0.2},
		},
		Seed: 11,
	}
	plan, err := spec.Bind(net)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestShardInvarianceFaults extends the determinism contract to degraded
// runs: with every fault family live at once, results must stay
// Float64bits-identical between the serial Engine and the sharded engine
// at shards ∈ {1, 2, 3, 8}, in both the sparse and dense bodies.
func TestShardInvarianceFaults(t *testing.T) {
	a := topology.NewArray2D(13)
	plan := fullFaultPlan(t, a)
	base := Config{
		Net: a, Router: routing.GreedyXY{A: a},
		Dest:        routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate:    0.1,
		WarmupSlots: 400, Slots: 3000, Seed: 101,
		Faults: plan,
	}
	for _, mode := range []struct {
		name  string
		dense bool
	}{{"sparse", false}, {"dense", true}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := base
			cfg.Dense = mode.dense
			if testing.Short() {
				cfg.WarmupSlots /= 10
				cfg.Slots /= 10
			}
			var eng Engine
			ref, err := eng.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The plan must have actually produced degraded behavior, or
			// the invariance assertion is vacuous.
			if ref.Dropped == 0 || ref.DetourHops == 0 {
				t.Fatalf("fault plan inert: Dropped=%d DetourHops=%d", ref.Dropped, ref.DetourHops)
			}
			if ref.LinkDownFrac <= 0 || ref.NodeDownFrac <= 0 {
				t.Fatalf("no downtime recorded: link=%v node=%v", ref.LinkDownFrac, ref.NodeDownFrac)
			}
			var sh ShardedEngine
			for _, shards := range []int{1, 2, 3, 8} {
				scfg := cfg
				scfg.Shards = shards
				got, err := sh.Run(scfg)
				if err != nil {
					t.Fatal(err)
				}
				requireSameFaultBits(t, mode.name, got, ref)
			}
		})
	}
}

// TestFaultHooksNeutral pins the stronger form of non-perturbation: a
// bound plan whose only content is an outage scheduled past the horizon
// runs the fault hooks on every slot yet must stay bit-identical to the
// nil-Faults run.
func TestFaultHooksNeutral(t *testing.T) {
	a := topology.NewArray2D(8)
	spec := &fault.Spec{
		Outages: []fault.Outage{{Row0: 0, Col0: 0, Row1: 1, Col1: 1, Start: 1e9, Duration: 10}},
	}
	plan, err := spec.Bind(a)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Net: a, Router: routing.GreedyXY{A: a},
		Dest:        routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate:    0.2,
		WarmupSlots: 200, Slots: 2000, Seed: 42,
	}
	for _, mode := range []struct {
		name  string
		dense bool
	}{{"sparse", false}, {"dense", true}} {
		t.Run(mode.name, func(t *testing.T) {
			c := cfg
			c.Dense = mode.dense
			ref, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			c.Faults = plan
			got, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			requireSameFaultBits(t, mode.name, got, ref)
			if got.Dropped != 0 || got.DetourHops != 0 || got.Misrouted != 0 {
				t.Errorf("inert plan produced fault outcomes: %+v", got)
			}
		})
	}
}

// TestFaultCounters checks the exact-integer accounting identities on a
// degraded run: drops partition into their causes, dead ends are a subset
// of drops, and offered − delivered − dropped is the in-flight remainder
// (non-negative).
func TestFaultCounters(t *testing.T) {
	a := topology.NewArray2D(13)
	plan := fullFaultPlan(t, a)
	res, err := Run(Config{
		Net: a, Router: routing.GreedyXY{A: a},
		Dest:        routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate:    0.1,
		WarmupSlots: 400, Slots: 3000, Seed: 101,
		Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadEnds > res.Dropped {
		t.Errorf("DeadEnds %d > Dropped %d", res.DeadEnds, res.Dropped)
	}
	inFlight := res.Generated - res.Delivered - res.Dropped
	if inFlight < 0 {
		t.Errorf("Delivered + Dropped exceed Generated: %d + %d > %d",
			res.Delivered, res.Dropped, res.Generated)
	}
	if res.LinkDownFrac < 0 || res.LinkDownFrac > 1 || res.NodeDownFrac < 0 || res.NodeDownFrac > 1 {
		t.Errorf("downtime fractions out of range: link=%v node=%v", res.LinkDownFrac, res.NodeDownFrac)
	}
	// Markov sanity: with the 20% failure-prone links at MTBF 300 / MTTR 20
	// the all-links downtime fraction is about 0.2 · 20/320 ≈ 0.0125; allow
	// a generous band around it.
	if res.LinkDownFrac < 0.002 || res.LinkDownFrac > 0.05 {
		t.Errorf("LinkDownFrac %v far from the Markov stationary estimate 0.0125", res.LinkDownFrac)
	}
}

// TestFaultDropLiarCertain pins the adversary path: a drop liar with
// probability 1 on a forced-transit node removes every measured packet it
// forwards.
func TestFaultDropLiarCertain(t *testing.T) {
	a := topology.NewArray2D(8)
	// Node 9 = (1,1): greedy-xy paths from row 1 pass through it often.
	spec := &fault.Spec{
		Misbehave: []fault.Misbehave{{Mode: fault.ModeDrop, Nodes: []int{9}, Prob: 1}},
		Seed:      5,
	}
	plan, err := spec.Bind(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Net: a, Router: routing.GreedyXY{A: a},
		Dest:        routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate:    0.2,
		WarmupSlots: 200, Slots: 2000, Seed: 42,
		Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("certain drop liar dropped nothing")
	}
	if res.DeadEnds != 0 || res.DetourHops != 0 {
		t.Errorf("liar-only plan produced recovery outcomes: deadEnds=%d detours=%d",
			res.DeadEnds, res.DetourHops)
	}
}

package stepsim

import (
	"context"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// This file is the slotted mirror of internal/sim's sweep surface. The
// worker pool, in-order reorder buffer and error selection are the SAME
// implementation (sim.StreamCells), so the two engines' sweep semantics
// cannot drift; the seed derivation also matches — replica r of cell c
// runs the stream Split(cfgs[c].Seed, r) — so a slotted sweep is
// bit-identical from 1 worker to GOMAXPROCS and its replica streams line
// up with the event engine's for matched comparisons. Each worker owns one
// Engine and resets it per task, so the per-run setup (ring slab, tables,
// scratch) amortizes to ~0 allocations across a sweep.
//
// Sweeps with fewer tasks than cores trade the missing task-parallelism
// for intra-run sharding: configurations that leave Shards at 0 inherit
// sim.SpareFactor(points, replicas, workers) tiles per run, so a short
// sweep (or the tail of a long one) no longer leaves cores idle. The
// sharded engine's results are bit-identical at every shard count, so this
// machine-dependent choice never changes what a sweep computes — only how
// fast. Configurations that set Shards explicitly are left alone.

// ReplicaSet aggregates independent replications of one slotted
// configuration, mirroring sim.ReplicaSet for the fields the slotted model
// measures.
type ReplicaSet struct {
	// Replicas holds the individual run results.
	Replicas []Result
	// MeanDelay is the across-replica mean of per-replica mean delays.
	MeanDelay float64
	// DelayCI is the 95% across-replica half-width for MeanDelay.
	DelayCI float64
	// MeanN averages the per-replica per-slot averages.
	MeanN float64
	// Delivered sums measured packets over all replicas.
	Delivered int64
	// Delay merges all per-packet statistics across replicas.
	Delay stats.Welford
	// MeanActiveEdges and ArrivalSlotFraction average the per-replica
	// occupancy instrumentation (Result.MeanActiveEdges /
	// ArrivalSlotFraction), which is what explains sparse-vs-dense
	// wall-clock per sweep point: the sparse engine's phase costs scale
	// with these, not with the topology.
	MeanActiveEdges     float64
	ArrivalSlotFraction float64
	// Fault-layer aggregates: the integer outcome counters sum across
	// replicas, the downtime fractions average. All zero on fault-free
	// sweeps.
	Dropped      int64
	DeadEnds     int64
	DetourHops   int64
	Misrouted    int64
	LinkDownFrac float64
	NodeDownFrac float64
	// ReplicasUsed is how many replicas produced this cell; adaptive
	// sweeps (RunSweepAdaptive) stop early once the target half-width is
	// met, so this varies per point there.
	ReplicasUsed int
}

// StreamSweep runs every configuration in cfgs with `replicas` independent
// replicas (minimum 1) on a pool of up to `workers` goroutines (0 means
// GOMAXPROCS). emit is called exactly once per configuration, in input
// order, as soon as that cell and all earlier cells have finished. err is
// the first per-replica error of that cell (rs is zero-valued when err is
// non-nil). emit runs on the calling goroutine.
func StreamSweep(ctx context.Context, cfgs []Config, replicas, workers int, emit func(i int, rs ReplicaSet, err error)) {
	// Clamp to the engine's tile limit: auto-sharding is a perf knob and
	// must never make a configuration unrunnable, whatever the worker
	// count requested.
	spare := min(sim.SpareFactor(len(cfgs), replicas, workers), maxShards)
	sim.StreamCells(ctx, len(cfgs), replicas, workers,
		func() func(cell, rep int) (Result, error) {
			var eng Engine // reused across this worker's tasks
			return func(cell, rep int) (Result, error) {
				rcfg := cfgs[cell]
				rcfg.Seed = xrand.Split(rcfg.Seed, uint64(rep)).Uint64()
				if rcfg.Shards == 0 && !rcfg.PerEngineStream {
					// Spend otherwise-idle cores inside the run; results
					// are shard-count independent, so this is perf-only.
					rcfg.Shards = spare
				}
				if rcfg.Ctx == nil {
					// Thread the pool's context into the engine so an
					// in-flight run aborts promptly, not just queued ones.
					rcfg.Ctx = ctx
				}
				return eng.Run(rcfg)
			}
		},
		func(i int, rs []Result, err error) {
			if err != nil {
				emit(i, ReplicaSet{}, err)
			} else {
				emit(i, aggregate(rs), nil)
			}
		})
}

// RunSweep executes every configuration with `replicas` replicas on one
// shared worker pool and returns the aggregated cells in input order. The
// returned error is the first cell error encountered.
func RunSweep(ctx context.Context, cfgs []Config, replicas, workers int) ([]ReplicaSet, error) {
	sets := make([]ReplicaSet, len(cfgs))
	var first error
	StreamSweep(ctx, cfgs, replicas, workers, func(i int, rs ReplicaSet, err error) {
		sets[i] = rs
		if err != nil && first == nil {
			first = err
		}
	})
	return sets, first
}

// RunReplicas executes `replicas` independent runs of cfg and aggregates
// them; replica i uses the stream Split(cfg.Seed, i).
func RunReplicas(ctx context.Context, cfg Config, replicas, workers int) (ReplicaSet, error) {
	sets, err := RunSweep(ctx, []Config{cfg}, replicas, workers)
	if err != nil {
		return ReplicaSet{}, err
	}
	return sets[0], nil
}

func aggregate(results []Result) ReplicaSet {
	rs := ReplicaSet{Replicas: results, ReplicasUsed: len(results)}
	var perReplica stats.Welford
	for _, r := range results {
		perReplica.Add(r.MeanDelay)
		rs.MeanN += r.MeanN
		rs.Delivered += r.Delivered
		rs.Delay.Merge(r.Delay)
		rs.MeanActiveEdges += r.MeanActiveEdges
		rs.ArrivalSlotFraction += r.ArrivalSlotFraction
		rs.Dropped += r.Dropped
		rs.DeadEnds += r.DeadEnds
		rs.DetourHops += r.DetourHops
		rs.Misrouted += r.Misrouted
		rs.LinkDownFrac += r.LinkDownFrac
		rs.NodeDownFrac += r.NodeDownFrac
	}
	rs.MeanDelay = perReplica.Mean()
	rs.MeanN /= float64(len(results))
	rs.MeanActiveEdges /= float64(len(results))
	rs.ArrivalSlotFraction /= float64(len(results))
	rs.LinkDownFrac /= float64(len(results))
	rs.NodeDownFrac /= float64(len(results))
	if perReplica.Count() >= 2 {
		rs.DelayCI = 1.96 * perReplica.StdDev() / math.Sqrt(float64(perReplica.Count()))
	}
	return rs
}

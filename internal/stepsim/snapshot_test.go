package stepsim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bounds"
	"repro/internal/routing"
	"repro/internal/topology"
)

// torusCfg is a generic-path (non-fast) configuration: torus keys are node
// ids and routing goes through the stepper interface, so it exercises the
// snapshot's generic key format.
func torusCfg(n int, rate float64, seed uint64) Config {
	tor := topology.NewTorus2D(n)
	return Config{
		Net:         tor,
		Router:      routing.TorusGreedy{T: tor},
		Dest:        routing.UniformDest{NumNodes: tor.NumNodes()},
		NodeRate:    rate,
		WarmupSlots: 200,
		Slots:       1200,
		Seed:        31,
	}
}

// TestSnapshotBitExactContinuation is the determinism contract of the
// checkpoint layer: capture at the end of run X, resume as run Y, and Y's
// Result must be math.Float64bits-identical to the uninterrupted run U
// whose warmup covers X entirely — on both execution paths, on fast and
// generic key formats, and regardless of the shard counts used on either
// side of the checkpoint.
func TestSnapshotBitExactContinuation(t *testing.T) {
	base := []struct {
		name string
		cfg  Config
	}{
		{"array7-fast", arrayCfg(7, 0.85, 41)},
		{"torus5-generic", torusCfg(5, 0.15, 43)},
	}
	for _, mode := range []struct {
		name  string
		dense bool
	}{{"sparse", false}, {"dense", true}} {
		for _, tc := range base {
			t.Run(tc.name+"/"+mode.name, func(t *testing.T) {
				cfg := tc.cfg
				cfg.Dense = mode.dense
				cfg.WarmupSlots, cfg.Slots = 150, 700

				const rewarm, tail = 60, 500
				uncut := cfg
				uncut.WarmupSlots = cfg.WarmupSlots + cfg.Slots + rewarm
				uncut.Slots = tail
				ref, err := Run(uncut)
				if err != nil {
					t.Fatal(err)
				}

				for _, capShards := range []int{1, 3} {
					first := cfg
					first.Shards = capShards
					first.Capture = true
					res, err := Run(first)
					if err != nil {
						t.Fatal(err)
					}
					if res.Snapshot == nil {
						t.Fatal("Capture run returned no snapshot")
					}
					for _, resShards := range []int{1, 2, 8} {
						second := cfg
						second.Shards = resShards
						second.Resume = res.Snapshot
						second.WarmupSlots = rewarm
						second.Slots = tail
						got, err := Run(second)
						if err != nil {
							t.Fatal(err)
						}
						requireSameBits(t, tc.name, got, ref)
					}
				}
			})
		}
	}
}

// TestSnapshotChainedResume pins that a resumed run's own Capture is a
// valid checkpoint: X → Y → Z must equal the uninterrupted run, which is
// what a warm-started ρ-ladder does point after point.
func TestSnapshotChainedResume(t *testing.T) {
	cfg := arrayCfg(6, 0.8, 47)
	cfg.WarmupSlots, cfg.Slots = 100, 400

	uncut := cfg
	uncut.WarmupSlots = 100 + 400 + 400
	uncut.Slots = 300
	ref, err := Run(uncut)
	if err != nil {
		t.Fatal(err)
	}

	first := cfg
	first.Capture = true
	r1, err := Run(first)
	if err != nil {
		t.Fatal(err)
	}
	second := cfg
	second.Resume = r1.Snapshot
	second.WarmupSlots, second.Slots = 0, 400
	second.Capture = true
	r2, err := Run(second)
	if err != nil {
		t.Fatal(err)
	}
	third := cfg
	third.Resume = r2.Snapshot
	third.WarmupSlots, third.Slots = 0, 300
	r3, err := Run(third)
	if err != nil {
		t.Fatal(err)
	}
	requireSameBits(t, "chained resume", r3, ref)
}

// TestSnapshotWireRoundTrip pins the persistence format: encode, decode,
// and the decoded snapshot must be structurally identical to the original
// AND resume to the same bits.
func TestSnapshotWireRoundTrip(t *testing.T) {
	for _, dense := range []bool{false, true} {
		cfg := arrayCfg(6, 0.85, 53)
		cfg.Dense = dense
		cfg.WarmupSlots, cfg.Slots = 150, 500
		cfg.Capture = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := res.Snapshot.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := UnmarshalSnapshot(data)
		if err != nil {
			t.Fatalf("dense=%v: decode failed: %v", dense, err)
		}
		if !reflect.DeepEqual(decoded, res.Snapshot) {
			t.Fatalf("dense=%v: decoded snapshot differs from the original", dense)
		}

		tail := cfg
		tail.Capture = false
		tail.WarmupSlots, tail.Slots = 0, 300
		tail.Resume = res.Snapshot
		want, err := Run(tail)
		if err != nil {
			t.Fatal(err)
		}
		tail.Resume = decoded
		got, err := Run(tail)
		if err != nil {
			t.Fatal(err)
		}
		requireSameBits(t, "wire round trip", got, want)
	}
}

// TestSnapshotDecodeRejects is the corruption battery: bad magic, a flipped
// payload byte, every truncation length, and trailing garbage must all
// return errors — never panic, never a silently wrong snapshot.
func TestSnapshotDecodeRejects(t *testing.T) {
	cfg := arrayCfg(5, 0.7, 59)
	cfg.WarmupSlots, cfg.Slots = 80, 300
	cfg.Capture = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Snapshot.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSnapshot(data); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	bad := append([]byte("NOTASNAP"), data[8:]...)
	if _, err := UnmarshalSnapshot(bad); err == nil {
		t.Error("bad magic accepted")
	}
	for _, cut := range []int{0, 1, 7, 8, 9, len(data) / 2, len(data) - 5, len(data) - 1} {
		if _, err := UnmarshalSnapshot(data[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	for _, off := range []int{8, 20, len(data) / 3, len(data) - 10} {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0x40
		if _, err := UnmarshalSnapshot(corrupt); err == nil {
			t.Errorf("flipped byte at offset %d accepted", off)
		}
	}
	if _, err := UnmarshalSnapshot(append(append([]byte(nil), data...), 0xEE)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// TestSnapshotResumeRejectsMismatch pins the compatibility checks: a
// checkpoint must refuse to restore onto a different topology, the other
// execution path, or the legacy single-stream regime.
func TestSnapshotResumeRejectsMismatch(t *testing.T) {
	cfg := arrayCfg(5, 0.7, 61)
	cfg.WarmupSlots, cfg.Slots = 80, 300
	cfg.Capture = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Snapshot

	other := arrayCfg(6, 0.7, 61)
	other.Resume = snap
	if _, err := Run(other); err == nil {
		t.Error("snapshot restored onto a different topology")
	}
	wrongMode := cfg
	wrongMode.Capture = false
	wrongMode.Dense = true
	wrongMode.Resume = snap
	if _, err := Run(wrongMode); err == nil {
		t.Error("sparse snapshot restored onto the dense path")
	}
	legacy := cfg
	legacy.Capture = false
	legacy.PerEngineStream = true
	legacy.Dense = true
	legacy.Resume = snap
	if _, err := Run(legacy); err == nil {
		t.Error("PerEngineStream accepted a Resume")
	}
	legacy.Resume = nil
	legacy.Capture = true
	if _, err := Run(legacy); err == nil {
		t.Error("PerEngineStream accepted a Capture")
	}
}

// TestSnapshotRateChangeWarmStart is the ρ-ladder warm-start path: resume
// a checkpoint at a DIFFERENT arrival rate. Not bit-exact by design, but
// the redrawn arrivals must be statistically faithful: a warm-started run
// with a short re-warm must agree with a cold full-warmup run at the new
// rate to well within the cold run's own replica scatter.
func TestSnapshotRateChangeWarmStart(t *testing.T) {
	n := 8
	lo, hi := bounds.LambdaTable(n, 0.70), bounds.LambdaTable(n, 0.80)
	cold := arrayCfg(n, 0.80, 67)
	cold.WarmupSlots, cold.Slots = 2000, 12000

	first := cold
	first.NodeRate = lo
	first.WarmupSlots = 2000
	first.Slots = 12000
	first.Capture = true
	r1, err := Run(first)
	if err != nil {
		t.Fatal(err)
	}

	warm := cold
	warm.NodeRate = hi
	warm.Resume = r1.Snapshot
	warm.WarmupSlots = 300 // short re-warm from the ρ=0.70 steady state
	got, err := Run(warm)
	if err != nil {
		t.Fatal(err)
	}

	// Reference scatter: a few cold replicas at ρ=0.80.
	var sum, sumSq float64
	const reps = 4
	for i := 0; i < reps; i++ {
		c := cold
		c.Seed = 100 + uint64(i)
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		sum += r.MeanDelay
		sumSq += r.MeanDelay * r.MeanDelay
	}
	mean := sum / reps
	sd := math.Sqrt(sumSq/reps - mean*mean)
	tol := 6*sd + 0.05*mean
	if math.Abs(got.MeanDelay-mean) > tol {
		t.Errorf("warm-started delay %v vs cold mean %v (sd %v): outside tolerance %v", got.MeanDelay, mean, sd, tol)
	}
	if got.Generated == 0 || got.Delivered == 0 {
		t.Error("warm-started run generated no traffic")
	}
}

// TestGeneratedMatchesExpectation pins the control variable: Generated
// counts every measured-slot packet (zero-hop included), its mean is
// NodeRate·sources·Slots, and both execution paths agree with the analytic
// expectation to within normal Poisson fluctuation.
func TestGeneratedMatchesExpectation(t *testing.T) {
	for _, dense := range []bool{false, true} {
		cfg := arrayCfg(8, 0.6, 71)
		cfg.Dense = dense
		cfg.WarmupSlots, cfg.Slots = 200, 5000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := cfg.NodeRate * float64(cfg.Net.NumNodes()) * float64(cfg.Slots)
		// Generated ~ Poisson(want): 5σ band.
		if diff := math.Abs(float64(res.Generated) - want); diff > 5*math.Sqrt(want) {
			t.Errorf("dense=%v: Generated %d vs expectation %.0f (diff %.0f)", dense, res.Generated, want, diff)
		}
	}
}

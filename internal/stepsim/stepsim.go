// Package stepsim is a second, independent implementation of the paper's
// slotted-time model (§5.2): time advances in unit slots; at the start of
// each slot every source receives a Poisson(λτ) batch of new packets; each
// edge serves exactly one queued packet per slot (FIFO); and a packet that
// completes a hop becomes eligible for service at its next edge in the
// following slot.
//
// Its purpose is cross-validation: the event-driven engine in internal/sim,
// configured with SlotTau = 1 and deterministic unit service, simulates the
// same stochastic system through an entirely different mechanism (event
// heap vs. synchronous phases). The two implementations share no simulation
// code, so statistical agreement between them is strong evidence that
// neither misimplements the model. The agreement is asserted in tests and
// reported by the `xval` experiment.
package stepsim

import (
	"fmt"

	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Config describes one slotted run. All fields mirror internal/sim's Config
// where they overlap; times are measured in slots.
type Config struct {
	// Net is the network topology.
	Net topology.Network
	// Router generates packet routes.
	Router routing.Router
	// Dest samples packet destinations.
	Dest routing.DestSampler
	// NodeRate is λ: each source receives a Poisson(NodeRate) batch per slot.
	NodeRate float64
	// WarmupSlots are discarded before measurement.
	WarmupSlots int
	// Slots is the number of measured slots.
	Slots int
	// Seed drives all randomness.
	Seed uint64
}

// Result holds the measurements of one slotted run.
type Result struct {
	// MeanDelay is the mean packet delay in slots (zero-hop packets count
	// with delay 0, as in the paper's model).
	MeanDelay float64
	// Delay holds full per-packet statistics.
	Delay stats.Welford
	// MeanN is the per-slot average number of packets in the system,
	// sampled during the service phase (after arrivals, before
	// departures), which matches the continuous-time time average: a
	// packet with delay d slots is present in exactly d samples, so
	// MeanN = Λ·MeanDelay as Little's law requires.
	MeanN float64
	// Delivered counts measured packets.
	Delivered int64
}

type packet struct {
	genSlot  int
	hop      int
	route    []int
	measured bool
}

// Run executes the synchronous simulation.
func Run(cfg Config) (Result, error) {
	if cfg.Net == nil || cfg.Router == nil || cfg.Dest == nil {
		return Result{}, fmt.Errorf("stepsim: Net, Router and Dest are required")
	}
	if cfg.Slots <= 0 || cfg.WarmupSlots < 0 || cfg.NodeRate < 0 {
		return Result{}, fmt.Errorf("stepsim: invalid slot counts or rate")
	}
	rng := xrand.New(cfg.Seed)
	sources := topology.Sources(cfg.Net)
	queues := make([][]*packet, cfg.Net.NumEdges())
	var free []*packet

	getPacket := func() *packet {
		if n := len(free); n > 0 {
			p := free[n-1]
			free = free[:n-1]
			p.hop = 0
			p.route = p.route[:0]
			return p
		}
		return &packet{}
	}

	var res Result
	var nSum float64
	inSystem := 0
	total := cfg.WarmupSlots + cfg.Slots
	moved := make([]*packet, 0, 256)
	for slot := 0; slot < total; slot++ {
		measuring := slot >= cfg.WarmupSlots
		// Phase 1: batch arrivals at every source.
		for _, src := range sources {
			for k := rng.Poisson(cfg.NodeRate); k > 0; k-- {
				p := getPacket()
				p.genSlot = slot
				p.measured = measuring
				dst := cfg.Dest.Sample(src, rng)
				p.route = cfg.Router.AppendRoute(p.route, src, dst, rng)
				if len(p.route) == 0 {
					if measuring {
						res.Delay.Add(0)
						res.Delivered++
					}
					free = append(free, p)
					continue
				}
				queues[p.route[0]] = append(queues[p.route[0]], p)
				inSystem++
			}
		}
		// Sample N during the service phase: these are the packets that
		// occupy the system over this slot's interior.
		if measuring {
			nSum += float64(inSystem)
		}
		// Phase 2: every nonempty edge serves its head packet during this
		// slot; completions land at the next edge for service next slot.
		moved = moved[:0]
		for e := range queues {
			q := queues[e]
			if len(q) == 0 {
				continue
			}
			p := q[0]
			copy(q, q[1:])
			queues[e] = q[:len(q)-1]
			p.hop++
			if p.hop == len(p.route) {
				if p.measured && measuring {
					res.Delay.Add(float64(slot + 1 - p.genSlot))
					res.Delivered++
				}
				inSystem--
				free = append(free, p)
				continue
			}
			moved = append(moved, p)
		}
		// Phase 3: place moved packets after all services, so none is
		// served twice in one slot.
		for _, p := range moved {
			e := p.route[p.hop]
			queues[e] = append(queues[e], p)
		}
	}
	res.MeanDelay = res.Delay.Mean()
	res.MeanN = nSum / float64(cfg.Slots)
	return res, nil
}

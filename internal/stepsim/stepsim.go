// Package stepsim is the synchronous slotted-time engine: a second,
// independent implementation of the paper's §5.2 model in which time
// advances in unit slots, every source receives a Poisson(λτ) batch of new
// packets at the start of each slot, each edge serves exactly one queued
// packet per slot (FIFO), and a packet that completes a hop becomes
// eligible for service at its next edge in the following slot.
//
// It serves two purposes. First, cross-validation: the event-driven engine
// in internal/sim, configured with SlotTau = 1 and deterministic unit
// service, simulates the same stochastic system through an entirely
// different mechanism (event tree vs. synchronous phases); the two share no
// simulation code, so statistical agreement between them is strong evidence
// that neither misimplements the model (asserted in tests and reported by
// the `xval` experiment). Second, scale: the slotted model is the paper's
// own, and the asymptotic bounds bite only on large arrays, so this engine
// is built to push 256×256 and beyond — with Config.Shards, a single
// 1024×1024 run spreads across cores — through in seconds to minutes.
//
// # Engine architecture
//
// The engine is a structure-of-arrays cycle machine with an allocation-free
// steady state. Its central trick is that a queued packet's position is
// implicit: a packet waiting at edge e stands at EdgeTo(e), so packets
// carry no current-node field at all. Each in-flight packet is one 64-bit
// ring entry — the destination key in the high word, and the generation
// slot (24 bits, modular), the stepper choice and the measured bit in the
// low word:
//
//   - routing is implicit via routing.Stepper: the destination key plus the
//     popped edge's endpoint determine the next edge, so routes are never
//     materialized (the pre-rewrite pointer engine survives as the
//     test-only oracle in oracle_test.go);
//   - on 2-D arrays with greedy row/column routers (the paper's core
//     model) the key packs the destination coordinates, precomputed
//     endpoint/coordinate tables replace every division, and the next edge
//     comes from the closed-form edge-id arithmetic — a few ALU ops per
//     hop, no interface calls;
//   - per-edge FIFO queues are power-of-two ring slices carved from one
//     slab — O(1) dequeue with a mask, no head-of-line memmove;
//   - the three phases (arrivals, service, placement) are tight flat
//     loops; packets that completed a hop park in a reusable `moved`
//     scratch array so no packet is served twice in one slot;
//   - execution is SPARSE by default (sparse.go): sources skip ahead to
//     their next nonzero arrival slot (xrand.PoissonSkip + PoissonPositive
//     on a timing wheel) and the service phase walks a two-level bitmap of
//     nonempty queues, so a slot costs O(traffic), not O(nodes + edges).
//     Config.Dense selects the dense per-slot body instead, whose Poisson
//     batch draws hoist exp(−λ) out of the per-source loop
//     (xrand.PoissonExp), with Hörmann's PTRS taking over at large means.
//
// # Random-number regime
//
// Randomness is consumed only at generation time (Poisson batch size, then
// per packet destination and routing coin); service is deterministic FIFO.
// The default regime gives every source node its own keyed stream,
// xrand.ReseedSplit(Seed, nodeID), and draws each node's variates from its
// own stream in a canonical order. Because a node's draws then depend on
// nothing but (Seed, nodeID, its own draw history), the run's results are
// a pure function of the configuration — independent of source iteration
// order and, crucially, of how nodes are grouped into worker tiles, which
// is what makes sharded runs bit-identical to serial ones (see
// ShardedEngine in shard.go). Config.PerEngineStream selects the
// pre-sharding regime instead — one engine-wide stream consumed in node
// order — kept so the bit-for-bit oracle cross-checks against the
// seed-era pointer engine remain exact.
//
// An Engine's state survives across runs: Run resets bookkeeping but keeps
// the ring slab, tables and scratch, so a sweep that reuses one Engine per
// worker (see StreamSweep) amortizes setup to ~0 allocations per point.
// The zero Engine value is ready to use.
package stepsim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Config describes one slotted run. All fields mirror internal/sim's Config
// where they overlap; times are measured in slots.
type Config struct {
	// Net is the network topology.
	Net topology.Network
	// Router generates packet routes. It must expose an incremental form
	// (routing.Stepper or routing.ChoiceRouter — all routers in
	// internal/routing do); materialized AppendRoute-only routers are
	// rejected.
	Router routing.Router
	// Dest samples packet destinations. Samplers must be pure given (src,
	// rng) — every sampler in internal/routing and internal/workload is —
	// because sharded runs call Sample concurrently with per-node streams.
	Dest routing.DestSampler
	// NodeRate is λ: each source receives a Poisson(NodeRate) batch per slot.
	NodeRate float64
	// WarmupSlots are discarded before measurement.
	WarmupSlots int
	// Slots is the number of measured slots.
	Slots int
	// Seed drives all randomness.
	Seed uint64
	// Shards is the intra-run tile parallelism: the node set is split into
	// this many contiguous tiles (row bands on 2-D arrays and tori, index
	// ranges elsewhere), each simulated by its own goroutine with one
	// synchronization barrier per slot. 0 and 1 both mean serial. Results
	// are bit-identical for every value — per-node keyed RNG streams plus
	// a canonical per-slot placement order make the shard count a pure
	// performance knob — so sweeps may pick it freely per run.
	// Incompatible with PerEngineStream.
	Shards int
	// Lookahead is the batched-barrier depth k: a sharded run takes its
	// global sense-reversing barrier once per k slots instead of every
	// slot, with per-tile published-slot gates providing the only per-slot
	// ordering (a tile waits just for the tiles that hand packets TO it,
	// and only until their service phase — not for the whole fleet), and
	// handoff buffers widened to 2k-deep rings so tiles inside a batch may
	// skew. 0 and 1 both mean one barrier per slot (the pre-lookahead
	// cadence). Lookahead is RESULT-INERT: like Shards it changes only how
	// a run synchronizes, never what it computes — results stay
	// Float64bits-identical for every k at every shard count, pinned by
	// TestShardInvariance — so sweeps and caches may treat it as a pure
	// performance knob. Values past the plan's useful depth (every node
	// within k hops of a tile boundary) are clamped, not errors; the
	// effective depth is reported as Result.Lookahead, and the amortization
	// as Result.BarrierWaits.
	Lookahead int
	// PerEngineStream selects the pre-sharding random-number regime: one
	// engine-wide stream consumed in source-node order, as the seed-era
	// pointer engine did. It exists for the bit-for-bit oracle
	// cross-checks in oracle_test.go; results are NOT comparable between
	// the two regimes (the variate streams differ), and sharding is
	// unavailable because the single stream serializes generation.
	// PerEngineStream runs are always dense (see Dense).
	PerEngineStream bool
	// Dense selects the dense per-slot execution the engine used before
	// the sparse rework: every source draws a Poisson batch every slot
	// and phase 2 scans every edge's queue length. The default (false) is
	// the sparse path — skip-ahead arrival sampling (xrand.PoissonSkip /
	// PoissonPositive on a per-tile timing wheel) and active-edge
	// worklists (sparse.go) — whose per-slot cost is proportional to
	// traffic instead of topology size. The two paths simulate the
	// identical stochastic model but consume different variate sequences
	// from the same per-node streams, so their seeded results differ
	// bit-wise while agreeing statistically (pinned by
	// TestSparseDenseStatisticalEquivalence); each path is individually
	// deterministic and shard-count invariant. Dense still wins on small
	// near-saturation arrays, where almost every source and edge is
	// active every slot and the worklist bookkeeping is pure overhead.
	Dense bool
	// Resume, if non-nil, starts the run from a captured steady-state
	// checkpoint instead of an empty network: ring queues, per-node RNG
	// streams and (on the sparse path) pending arrival slots are restored,
	// and WarmupSlots becomes the RE-warm budget on top of the inherited
	// state. Seed is ignored on resume — the restored streams continue
	// where they left off. The snapshot's topology, key format and
	// sparse/dense mode must match the config; a NodeRate differing from
	// the captured one is allowed (warm-starting the next point of a
	// ρ-ladder) and redraws each source's next arrival at the new rate,
	// which the Poisson process's memorylessness makes statistically
	// exact. Same-rate resume is bit-exact: restore-and-continue equals an
	// uninterrupted longer run (see snapshot.go). Incompatible with
	// PerEngineStream.
	Resume *Snapshot
	// Capture asks the run to export its end-of-run state as
	// Result.Snapshot, for a later Resume. Incompatible with
	// PerEngineStream.
	Capture bool
	// Ctx, when non-nil, lets a long run be aborted mid-flight: the slot
	// loop polls it (every slot serially; via tile 0 on sharded runs, with
	// the per-slot barrier publishing the stop decision to every tile, so
	// all tiles leave at the same slot and no goroutine leaks) and Run
	// returns the context's cause as its error. Cancellation is control
	// flow only — it never touches the variate streams — so an uncanceled
	// run with a Ctx is bit-identical to one without. Sweep pools thread
	// their own context into every config that leaves Ctx nil.
	Ctx context.Context
	// Faults, when non-nil, degrades the run under the bound fault plan
	// (fault.Spec.Bind against this same network): link/node up–down
	// Markov processes, scheduled regional outages, and misbehaving
	// routers, with greedy-with-recovery routing around down entities (see
	// fault.go). nil leaves every fault hook off and the run bit-identical
	// to a build without the fault layer. The fault streams are keyed by
	// (fault seed, entity id), disjoint from the arrival streams, so
	// fault-enabled runs remain bit-identical at every shard count.
	// Incompatible with PerEngineStream, Resume and Capture.
	Faults *fault.Plan
	// PerDestStats asks the run to accumulate exact per-destination
	// delivered counts and delay sums (Result.DestCount / DestDelaySum) —
	// the raw material of the lying-node detection experiment
	// (internal/verify), which compares each source→destination path's
	// mean delay against its hop count. Works with or without Faults; the
	// fault-free variate streams are untouched either way.
	PerDestStats bool
}

// Result holds the measurements of one slotted run.
type Result struct {
	// MeanDelay is the mean packet delay in slots (zero-hop packets count
	// with delay 0, as in the paper's model).
	MeanDelay float64
	// Delay holds full per-packet statistics.
	Delay stats.Welford
	// MeanN is the per-slot average number of packets in the system,
	// sampled during the service phase (after arrivals, before
	// departures), which matches the continuous-time time average: a
	// packet with delay d slots is present in exactly d samples, so
	// MeanN = Λ·MeanDelay as Little's law requires.
	MeanN float64
	// Delivered counts measured packets.
	Delivered int64
	// MeanActiveEdges is the per-slot average number of nonempty edge
	// queues at the service phase — the unit of phase-2 work, and what
	// the sparse engine's cost is proportional to. Accumulated as an
	// exact integer count per measured slot (merged across tiles like
	// the delay moments) and divided once at collect time.
	MeanActiveEdges float64
	// ArrivalSlotFraction is the fraction of (source, measured-slot)
	// pairs that received a nonzero arrival batch — the unit of phase-1
	// work on the sparse path, whose skip-ahead sampler touches a source
	// only on those slots. Exact-integer accumulation, like
	// MeanActiveEdges.
	ArrivalSlotFraction float64
	// Generated counts packets generated during measured slots (including
	// zero-hop ones). Its exact expectation — NodeRate × sources × Slots —
	// is known analytically, which makes it the control variable the
	// variance-reduction layer (stats.ControlVariate) regresses out of the
	// delay estimate.
	Generated int64
	// Snapshot is the end-of-run engine checkpoint, present only when the
	// run was configured with Capture. It feeds Config.Resume.
	Snapshot *Snapshot

	// BarrierWaits counts entries into the global sense-reversing barrier,
	// summed over tiles — the synchronization bill of a sharded run, and
	// what Config.Lookahead amortizes (≈ shards × slots / k; zero on
	// serial runs, which have no barrier). Deterministic, unlike wall
	// clock, so the ~k× reduction is measurable even on one vCPU.
	BarrierWaits int64
	// Lookahead is the effective batch depth the run executed with after
	// clamping Config.Lookahead to the tile plan's useful depth (1 on
	// serial and legacy runs, where there is nothing to amortize).
	Lookahead int

	// Fault-layer counters, all zero on fault-free runs. Dropped counts
	// measured packets that left the system undelivered: generated at a
	// down source, discarded by a drop liar, or dead-ended with no live
	// improving neighbor (Generated − Delivered − Dropped is the measured
	// traffic still in flight at the horizon). DeadEnds is the dead-end
	// subset of Dropped. DetourHops counts recovery detours taken by
	// measured packets; Misrouted counts adversarial misroutes applied to
	// them. All are exact integers merged across tiles like the delay
	// moments.
	Dropped    int64
	DeadEnds   int64
	DetourHops int64
	Misrouted  int64
	// LinkDownFrac / NodeDownFrac are the fractions of (entity, measured
	// slot) pairs the entity spent down, over ALL links/nodes of the
	// topology (so a plan failing 1% of links at 2% steady-state downtime
	// reads ≈ 0.0002). Exact-integer down-entity-slot counts divided once
	// at collect time.
	LinkDownFrac float64
	NodeDownFrac float64

	// DestCount / DestDelaySum are per-destination delivered counts and
	// delay sums (indexed by node id), present only when
	// Config.PerDestStats is set.
	DestCount    []int64
	DestDelaySum []uint64
}

// Ring-entry layout. The low word is the packet: generation slot modulo
// 2²⁴ (delays are computed with modular subtraction, so per-packet sojourn
// times up to 2²⁴−1 slots are exact at any run length — far beyond any
// stable configuration), stepper choice (7 bits) and the measured flag.
// The high word is the destination key: the node id on the generic path,
// or 13-bit packed (row, col) coordinates on the array fast path.
const (
	entSlotBits   = 24
	entSlotMask   = 1<<entSlotBits - 1
	entChoiceMask = 0x7f
	entMeasured   = 1 << 31
	entKeyShift   = 32

	coordBits = 13 // fast path handles n up to 8191 per side
	coordMask = 1<<coordBits - 1
)

// ringCap is each edge queue's initial ring capacity (a power of two).
// Stable loads keep per-edge queues around ρ/(1−ρ), so 4 covers the common
// case; hot edges grow their ring privately by doubling.
const ringCap = 4

// movedRec parks one packet between the service and placement phases.
// src is the edge the packet was served at this slot; the sharded engine
// merges boundary-crossing packets back into ascending src order, which is
// exactly the order a serial service scan would have placed them in.
type movedRec struct {
	ent  uint64
	edge int32
	src  int32
}

// resolveConfig validates cfg and resolves the router's incremental form.
func resolveConfig(cfg Config) (steppers []routing.Stepper, choose func(*xrand.RNG) int, err error) {
	if cfg.Net == nil || cfg.Router == nil || cfg.Dest == nil {
		return nil, nil, fmt.Errorf("stepsim: Net, Router and Dest are required")
	}
	if cfg.Slots <= 0 || cfg.WarmupSlots < 0 || cfg.NodeRate < 0 {
		return nil, nil, fmt.Errorf("stepsim: invalid slot counts or rate")
	}
	if cfg.Lookahead < 0 {
		return nil, nil, fmt.Errorf("stepsim: negative Lookahead %d", cfg.Lookahead)
	}
	steppers, choose, ok := routing.Steppers(cfg.Router)
	if !ok {
		return nil, nil, fmt.Errorf("stepsim: router %T does not implement routing.Stepper; the slotted engine routes implicitly (the materialized-route implementation survives only as the test oracle)", cfg.Router)
	}
	if len(steppers) > entChoiceMask+1 {
		return nil, nil, fmt.Errorf("stepsim: router %T exposes %d steppers, more than the %d a ring entry can index", cfg.Router, len(steppers), entChoiceMask+1)
	}
	if cfg.Net.NumNodes() > math.MaxInt32 {
		return nil, nil, fmt.Errorf("stepsim: %s exceeds the int32 node-id limit", cfg.Net.Name())
	}
	return steppers, choose, nil
}

// poissonExpOf returns exp(−mean) when the mean sits in the hoisted-Knuth
// regime, else 0 (meaning: draw through xrand.Poisson / PTRS).
func poissonExpOf(mean float64) float64 {
	if mean > 0 && mean < 10 {
		return math.Exp(-mean)
	}
	return 0
}

// routeTables is the per-run routing state shared by the serial and
// sharded engine bodies: the resolved steppers, the key tables, and the
// closed-form 2-D-array fast path. All methods are read-only after init,
// so one routeTables value serves every tile of a sharded run.
type routeTables struct {
	steppers []routing.Stepper
	choose   func(*xrand.RNG) int

	// fast selects the 2-D-array closed-form path; n/n1/h are its edge-id
	// arithmetic constants and colFirstTab maps a stepper choice to
	// column-first routing.
	fast        bool
	n, n1, h    int
	colFirstTab [2]uint32

	// edgeKey[e] identifies EdgeTo(e): packed coordinates (fast) or the
	// node id (generic). nodeKey[v] is the per-node key in the same format.
	edgeKey []int32
	nodeKey []int32
}

// init refills the tables for cfg, reusing prior capacity.
func (t *routeTables) init(cfg Config, steppers []routing.Stepper, choose func(*xrand.RNG) int) {
	t.steppers, t.choose = steppers, choose
	t.setupFastPath(cfg.Net)
	if cfg.Faults != nil {
		// Fault mode keys positions by node id: the liar tables, the CSR
		// recovery scan and the misroute pick all index nodes directly.
		// Fault-enabled runs have no fast-path goldens, so nothing
		// observable depends on this switch.
		t.fast = false
	}
	numNodes, numEdges := cfg.Net.NumNodes(), cfg.Net.NumEdges()
	t.edgeKey = grow(t.edgeKey, numEdges)
	t.nodeKey = grow(t.nodeKey, numNodes)
	if t.fast {
		a := cfg.Net.(*topology.Array2D)
		for v := 0; v < numNodes; v++ {
			r, c := a.Coords(v)
			t.nodeKey[v] = int32(r<<coordBits | c)
		}
	} else {
		for v := 0; v < numNodes; v++ {
			t.nodeKey[v] = int32(v)
		}
	}
	for ed := 0; ed < numEdges; ed++ {
		t.edgeKey[ed] = t.nodeKey[cfg.Net.EdgeTo(ed)]
	}
}

// setupFastPath enables the closed-form array path when the topology is a
// 2-D array small enough for packed coordinates and every stepper is a
// greedy row/column router on that same array.
func (t *routeTables) setupFastPath(net topology.Network) {
	t.fast = false
	a, isArray := net.(*topology.Array2D)
	if !isArray || a.N() > coordMask || len(t.steppers) > 2 {
		return
	}
	for i, st := range t.steppers {
		switch g := st.(type) {
		case routing.GreedyXY:
			if g.A != a {
				return
			}
			t.colFirstTab[i] = 0
		case routing.GreedyYX:
			if g.A != a {
				return
			}
			t.colFirstTab[i] = 1
		default:
			return
		}
	}
	t.fast = true
	t.n = a.N()
	t.n1 = t.n - 1
	t.h = t.n * t.n1
}

// nextArrayEdge is the closed-form greedy step on the n×n array: from
// packed position pos toward packed destination key, taking row edges
// before column edges unless colFirst. The caller guarantees pos != key.
func (t *routeTables) nextArrayEdge(pos, key int32, colFirst uint32) int32 {
	r, c := int(pos>>coordBits), int(pos&coordMask)
	dr, dc := int(key>>coordBits), int(key&coordMask)
	if c != dc && (colFirst == 0 || r == dr) {
		if c < dc {
			return int32(r*t.n1 + c) // Right
		}
		return int32(t.h + r*t.n1 + c - 1) // Left
	}
	if r < dr {
		return int32(2*t.h + c*t.n1 + r) // Down
	}
	return int32(3*t.h + c*t.n1 + r - 1) // Up
}

// nodeOf decodes a position/destination key back to its node id: packed
// (row, col) coordinates on the fast path, the id itself otherwise. Used
// by the per-destination delivery accumulators.
func (t *routeTables) nodeOf(key int32) int32 {
	if t.fast {
		return (key>>coordBits)*int32(t.n) + (key & coordMask)
	}
	return key
}

// nextEdge returns the next edge for a packet at position pos (in key
// format) heading for key, on either path.
func (t *routeTables) nextEdge(pos, key int32, choice uint32) int32 {
	if t.fast {
		return t.nextArrayEdge(pos, key, t.colFirstTab[choice])
	}
	edge, _ := t.steppers[choice].NextEdge(int(pos), int(key))
	return int32(edge)
}

// ringSet is the per-edge FIFO queue state: qbuf[e] is a power-of-two
// ring slice (initially carved from one slab), qhead[e]/qsize[e] its head
// index and length. In a sharded run each tile touches only the entries of
// the edges it owns, so the arrays are shared without locks.
type ringSet struct {
	qbuf  [][]uint64
	qhead []int32
	qsize []int32
}

// reset prepares rings for numEdges edges, reusing grown buffers when the
// edge count matches, else carving a fresh power-of-two ring per edge from
// one slab.
func (r *ringSet) reset(numEdges int) {
	if len(r.qbuf) == numEdges {
		for i := range r.qhead {
			r.qhead[i], r.qsize[i] = 0, 0
		}
		return
	}
	r.qbuf = make([][]uint64, numEdges)
	r.qhead = make([]int32, numEdges)
	r.qsize = make([]int32, numEdges)
	slab := make([]uint64, numEdges*ringCap)
	for i := range r.qbuf {
		r.qbuf[i] = slab[i*ringCap : (i+1)*ringCap : (i+1)*ringCap]
	}
}

// push appends entry ent to edge's ring, doubling the ring (privately,
// detached from the slab) when full.
func (r *ringSet) push(edge int32, ent uint64) {
	buf := r.qbuf[edge]
	size := r.qsize[edge]
	if int(size) == len(buf) {
		grown := make([]uint64, 2*len(buf))
		head := r.qhead[edge]
		mask := int32(len(buf) - 1)
		for i := int32(0); i < size; i++ {
			grown[i] = buf[(head+i)&mask]
		}
		buf = grown
		r.qbuf[edge] = buf
		r.qhead[edge] = 0
	}
	buf[(r.qhead[edge]+size)&int32(len(buf)-1)] = ent
	r.qsize[edge] = size + 1
}

// grow returns buf resized to n elements, reusing its capacity. Contents
// are unspecified: callers either overwrite every element or explicitly
// clear.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// Engine is a reusable slotted simulator. The zero value is ready; Run
// resets all bookkeeping while keeping the ring slab, lookup tables and
// scratch, so reusing one Engine across the points of a sweep makes the
// steady state allocation-free after the first run. An Engine is not safe
// for concurrent use; the sweep pool gives each worker its own. Runs with
// Shards > 1 execute on the engine's embedded ShardedEngine, whose worker
// goroutines live only for the duration of the call.
type Engine struct {
	sh     ShardedEngine
	legacy legacyEngine
}

// Run executes one synchronous simulation, reusing the engine's storage.
func (e *Engine) Run(cfg Config) (Result, error) {
	if cfg.PerEngineStream {
		if cfg.Shards > 1 {
			return Result{}, fmt.Errorf("stepsim: PerEngineStream is serial by construction (one stream consumed in node order); it cannot run with Shards = %d", cfg.Shards)
		}
		if cfg.Resume != nil || cfg.Capture {
			return Result{}, fmt.Errorf("stepsim: snapshots require per-node keyed streams; PerEngineStream cannot Capture or Resume")
		}
		if cfg.Faults != nil || cfg.PerDestStats {
			return Result{}, fmt.Errorf("stepsim: the fault layer and per-destination stats live on the sharded engine; PerEngineStream supports neither")
		}
		if err := e.legacy.reset(cfg); err != nil {
			return Result{}, err
		}
		res, finished := e.legacy.run()
		if !finished {
			return Result{}, context.Cause(cfg.Ctx)
		}
		return res, nil
	}
	return e.sh.Run(cfg)
}

// Run executes one synchronous simulation on a throwaway engine. Sweeps
// should reuse an Engine (or go through RunReplicas/StreamSweep, which do).
func Run(cfg Config) (Result, error) {
	var e Engine
	return e.Run(cfg)
}

// legacyEngine is the pre-sharding engine body: one engine-wide RNG stream
// consumed in source-node order, sequential Welford accumulation. It is
// reachable only through Config.PerEngineStream and exists so the
// bit-for-bit oracle cross-checks against the seed-era pointer engine
// (oracle_test.go) keep their exact variate stream.
type legacyEngine struct {
	cfg     Config
	rng     *xrand.RNG
	tab     routeTables
	rings   ringSet
	sources []int

	// poissonL is exp(−NodeRate), hoisted for the per-source Knuth draws;
	// zero means the mean is large enough that PTRS is used instead.
	poissonL float64

	// moved parks packets that completed a hop this slot until every edge
	// has served (phase 3 placement).
	moved []movedRec
}

// reset validates cfg and prepares the engine, reusing prior storage when
// capacities allow.
func (e *legacyEngine) reset(cfg Config) error {
	steppers, choose, err := resolveConfig(cfg)
	if err != nil {
		return err
	}
	e.cfg = cfg
	if e.rng == nil {
		e.rng = xrand.New(cfg.Seed)
	} else {
		e.rng.Reseed(cfg.Seed)
	}
	e.poissonL = poissonExpOf(cfg.NodeRate)

	// Source set, rebuilt into the engine-owned buffer. SourceSet
	// topologies' slices are COPIED, never aliased: a reused engine
	// truncates and refills e.sources on every reset, which would
	// otherwise scribble over the topology's own node list.
	e.sources = e.sources[:0]
	if ss, isRestricted := cfg.Net.(topology.SourceSet); isRestricted {
		e.sources = append(e.sources, ss.SourceNodes()...)
	} else {
		for i := 0; i < cfg.Net.NumNodes(); i++ {
			e.sources = append(e.sources, i)
		}
	}

	e.tab.init(cfg, steppers, choose)
	e.rings.reset(cfg.Net.NumEdges())
	// Cap retained scratch on reuse: each edge serves at most one packet
	// per slot, so `moved` never needs more than one record per edge of
	// the CURRENT topology — but a near-saturation burst on a big array
	// would otherwise pin that worst case across every later point of a
	// sweep. Mirror the ring-slab policy: keep grown capacity while the
	// shape still justifies it, release it when it no longer can.
	if cap(e.moved) > 2*cfg.Net.NumEdges() {
		e.moved = nil
	}
	e.moved = e.moved[:0]
	return nil
}

// run is the three-phase cycle loop. The second return is false iff the
// run was aborted by cfg.Ctx before the horizon was reached, in which case
// the partial Result must be discarded.
func (e *legacyEngine) run() (Result, bool) {
	var res Result
	var nSum float64
	var busySum, arrivalHits int64
	live := 0
	rng := e.rng
	mean := e.cfg.NodeRate
	poissonL := e.poissonL
	dest := e.cfg.Dest
	ctx := e.cfg.Ctx
	// Hoist the hot slices out of the receiver so the loop body keeps them
	// in registers instead of reloading headers through e.
	qbuf, qhead, qsize := e.rings.qbuf, e.rings.qhead, e.rings.qsize
	edgeKey, nodeKey := e.tab.edgeKey, e.tab.nodeKey
	total := e.cfg.WarmupSlots + e.cfg.Slots
	for slot := 0; slot < total; slot++ {
		if ctx != nil && slot&63 == 0 && ctx.Err() != nil {
			return Result{}, false
		}
		measuring := slot >= e.cfg.WarmupSlots
		// Phase 1: batch arrivals at every source. The RNG call order
		// (Poisson count, then per packet destination and stepper choice)
		// matches the oracle's (destination, then AppendRoute's coin), so
		// seeded runs are bit-identical to the pre-rewrite engine.
		for _, src := range e.sources {
			var k int
			switch {
			case poissonL > 0:
				// First Knuth iteration inlined (most sources draw a zero
				// batch): identical variate stream to xrand.PoissonExp.
				if p := rng.Float64Open(); p > poissonL {
					k = 1
					for {
						p *= rng.Float64Open()
						if p <= poissonL {
							break
						}
						k++
					}
				}
			case mean > 0:
				k = rng.Poisson(mean)
			}
			if k > 0 && measuring {
				arrivalHits++
				res.Generated += int64(k)
			}
			for ; k > 0; k-- {
				dst := dest.Sample(src, rng)
				var choice uint32
				if e.tab.choose != nil {
					choice = uint32(e.tab.choose(rng))
				}
				if dst == src {
					// Zero-hop packet: delivered instantly with delay 0,
					// never entering any queue (the paper allows these).
					if measuring {
						res.Delay.Add(0)
						res.Delivered++
					}
					continue
				}
				ent := uint64(nodeKey[dst])<<entKeyShift | uint64(choice)<<entSlotBits | uint64(slot&entSlotMask)
				if measuring {
					ent |= entMeasured
				}
				e.rings.push(e.tab.nextEdge(nodeKey[src], nodeKey[dst], choice), ent)
				live++
			}
		}
		// Sample N during the service phase: these are the packets that
		// occupy the system over this slot's interior.
		if measuring {
			nSum += float64(live)
		}
		// Phase 2: every nonempty edge serves its head packet during this
		// slot; completions land at the next edge for service next slot. A
		// served packet's new position is implicit — the popped edge's
		// endpoint — so the only per-packet state consulted here is its
		// ring entry.
		moved := e.moved[:0]
		var busy int64
		for edge, size := range qsize {
			if size == 0 {
				continue
			}
			busy++
			buf := qbuf[edge]
			head := qhead[edge]
			ent := buf[head]
			qhead[edge] = (head + 1) & int32(len(buf)-1)
			qsize[edge] = size - 1
			pos := edgeKey[edge]
			key := int32(ent >> entKeyShift)
			if pos == key {
				if ent&entMeasured != 0 && measuring {
					d := (uint32(slot+1) - uint32(ent)) & entSlotMask
					res.Delay.Add(float64(d))
					res.Delivered++
				}
				live--
				continue
			}
			choice := uint32(ent>>entSlotBits) & entChoiceMask
			moved = append(moved, movedRec{ent: ent, edge: e.tab.nextEdge(pos, key, choice)})
		}
		// Phase 3: place moved packets after all services, so none is
		// served twice in one slot.
		if measuring {
			busySum += busy
		}
		for _, m := range moved {
			e.rings.push(m.edge, m.ent)
		}
		e.moved = moved[:0]
	}
	res.MeanDelay = res.Delay.Mean()
	res.MeanN = nSum / float64(e.cfg.Slots)
	res.MeanActiveEdges = float64(busySum) / float64(e.cfg.Slots)
	if denom := float64(len(e.sources)) * float64(e.cfg.Slots); denom > 0 {
		res.ArrivalSlotFraction = float64(arrivalHits) / denom
	}
	res.Lookahead = 1
	return res, true
}

package stepsim

import (
	"context"
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/stats"
)

// smallCfg is a fast adaptive-test configuration: big enough to have real
// queueing variance, small enough that dozens of replicas stay cheap.
func smallCfg(n int, rho float64, seed uint64) Config {
	c := arrayCfg(n, rho, seed)
	c.WarmupSlots, c.Slots = 500, 4000
	return c
}

// TestAdaptiveMatchesFixed pins that zero-valued adaptive options
// reproduce the fixed sweep bit-for-bit — the default path is untouched.
func TestAdaptiveMatchesFixed(t *testing.T) {
	cfgs := []Config{smallCfg(6, 0.5, 71), smallCfg(6, 0.7, 71)}
	want, err := RunSweep(context.Background(), cfgs, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSweepAdaptive(context.Background(), cfgs, SweepOpts{Replicas: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i].MeanDelay) != math.Float64bits(want[i].MeanDelay) ||
			math.Float64bits(got[i].DelayCI) != math.Float64bits(want[i].DelayCI) ||
			math.Float64bits(got[i].MeanN) != math.Float64bits(want[i].MeanN) {
			t.Errorf("point %d: adaptive fixed-mode result differs from RunSweep", i)
		}
		if got[i].ReplicasUsed != 3 {
			t.Errorf("point %d: ReplicasUsed %d, want 3", i, got[i].ReplicasUsed)
		}
	}
}

// TestAdaptiveStopsAtTarget checks sequential stopping on the slotted
// engine: loose targets stop at MinReps, and any early stop's reported
// half-width really is under the target.
func TestAdaptiveStopsAtTarget(t *testing.T) {
	cfg := smallCfg(6, 0.6, 17)
	loose, err := RunSweepAdaptive(context.Background(), []Config{cfg}, SweepOpts{TargetCI: 50, MinReps: 3, MaxReps: 24, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if loose[0].ReplicasUsed != 3 {
		t.Errorf("loose target used %d replicas, want MinReps=3", loose[0].ReplicasUsed)
	}
	tight, err := RunSweepAdaptive(context.Background(), []Config{cfg}, SweepOpts{TargetCI: 0.01, MinReps: 3, MaxReps: 24, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tight[0].ReplicasUsed < 24 && tight[0].DelayCI > 0.01 {
		t.Errorf("stopped at %d replicas but half-width %v exceeds target", tight[0].ReplicasUsed, tight[0].DelayCI)
	}
	if tight[0].ReplicasUsed <= loose[0].ReplicasUsed && tight[0].DelayCI > loose[0].DelayCI {
		t.Errorf("tighter target did not spend more replicas: %d vs %d", tight[0].ReplicasUsed, loose[0].ReplicasUsed)
	}
}

// TestControlVariateConsistency: the CV estimator of record must agree
// with the plain estimate well within its interval, and its half-width
// must be finite for a positively correlated control.
func TestControlVariateConsistency(t *testing.T) {
	cfg := smallCfg(8, 0.8, 29)
	plain, err := RunSweepAdaptive(context.Background(), []Config{cfg}, SweepOpts{Replicas: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := RunSweepAdaptive(context.Background(), []Config{cfg}, SweepOpts{Replicas: 8, Workers: 4, ControlVariates: true})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(cv[0].MeanDelay - plain[0].MeanDelay); diff > 3*plain[0].DelayCI {
		t.Errorf("CV estimate %v vs plain %v: difference %v outside 3 half-widths (%v)",
			cv[0].MeanDelay, plain[0].MeanDelay, diff, plain[0].DelayCI)
	}
	if cv[0].DelayCI <= 0 || math.IsInf(cv[0].DelayCI, 0) {
		t.Errorf("CV half-width %v not finite positive", cv[0].DelayCI)
	}
	t.Logf("plain hw %.5f, CV hw %.5f", plain[0].DelayCI, cv[0].DelayCI)
}

// TestWarmStartLadderAgreement runs a ρ-ladder cold and warm-started; the
// chained version must agree statistically at every point and be
// bit-identical at the ladder head (which has no predecessor to resume).
func TestWarmStartLadderAgreement(t *testing.T) {
	n := 6
	mk := func(rho float64) Config {
		c := smallCfg(n, rho, 404)
		c.NodeRate = bounds.LambdaTable(n, rho)
		return c
	}
	cfgs := []Config{mk(0.5), mk(0.6), mk(0.7)}
	cold, err := RunSweepAdaptive(context.Background(), cfgs, SweepOpts{Replicas: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunSweepAdaptive(context.Background(), cfgs, SweepOpts{Replicas: 5, Workers: 4, WarmStart: true, RewarmSlots: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(warm[0].MeanDelay) != math.Float64bits(cold[0].MeanDelay) {
		t.Errorf("ladder head: warm %v != cold %v", warm[0].MeanDelay, cold[0].MeanDelay)
	}
	for i := range cfgs {
		tol := 4*(cold[i].DelayCI+warm[i].DelayCI) + 0.05*cold[i].MeanDelay
		if diff := math.Abs(warm[i].MeanDelay - cold[i].MeanDelay); diff > tol {
			t.Errorf("point %d: warm %v vs cold %v differ by %v (tol %v)",
				i, warm[i].MeanDelay, cold[i].MeanDelay, diff, tol)
		}
	}
}

// TestCRNPairedDifference demonstrates the common-random-numbers design:
// replica r runs the stream Split(seed, r) at every sweep point, so
// per-replica delays at adjacent ρ are positively correlated and the
// paired-difference interval (stats.PairedDiff) is far tighter than the
// unpaired one. This is the estimator cmd/sweep's ladder deltas rely on.
func TestCRNPairedDifference(t *testing.T) {
	n := 6
	const reps = 8
	lo, hi := smallCfg(n, 0.60, 777), smallCfg(n, 0.65, 777) // shared base seed = CRN
	sets, err := RunSweep(context.Background(), []Config{lo, hi}, reps, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, reps)
	y := make([]float64, reps)
	var wx, wy stats.Welford
	for r := 0; r < reps; r++ {
		x[r] = sets[1].Replicas[r].MeanDelay
		y[r] = sets[0].Replicas[r].MeanDelay
		wx.Add(x[r])
		wy.Add(y[r])
	}
	diff, pairedHW := stats.PairedDiff(x, y)
	unpairedHW := 1.96 * math.Sqrt(wx.Variance()/reps+wy.Variance()/reps)
	if diff <= 0 {
		t.Errorf("delay did not increase with ρ: paired diff %v", diff)
	}
	if pairedHW >= unpairedHW {
		t.Errorf("CRN pairing did not tighten the contrast: paired %v vs unpaired %v", pairedHW, unpairedHW)
	}
	t.Logf("Δdelay %.4f, paired hw %.4f, unpaired hw %.4f (%.1fx tighter)",
		diff, pairedHW, unpairedHW, unpairedHW/pairedHW)
}

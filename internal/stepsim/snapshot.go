package stepsim

// Steady-state checkpoints for the slotted engine.
//
// A Snapshot captures everything the next run's DYNAMICS depend on — ring
// queue contents, each source's keyed RNG stream mid-sequence, and (on the
// sparse path) each source's pending arrival slot — and nothing the next
// run's MEASUREMENTS depend on: accumulators are excluded, and each stored
// ring entry is canonicalized by zeroing its generation-slot bits and
// measured flag. Neither is ever read for dynamics (the slot bits feed only
// the modular delay subtraction of measured packets, and restored packets
// are unmeasured by construction), so a resumed run may restart its slot
// counter at zero and still replay, bit for bit, the future of the captured
// run:
//
//	X = Run{WarmupSlots: W, Slots: S₁, Capture: true}
//	Y = Run{Resume: X.Snapshot, WarmupSlots: W₂, Slots: S₂}
//	U = Run{WarmupSlots: W + S₁ + W₂, Slots: S₂}
//
// Y and U produce math.Float64bits-identical Results at every shard count
// (TestSnapshotBitExactContinuation). The equivalence holds because the
// per-node streams continue exactly where they stopped, queue contents and
// order are preserved, and packets in flight at capture time are exactly
// the packets U would still treat as warmup traffic. Resuming at a
// DIFFERENT NodeRate (warm-starting the next point of a ρ-ladder) is not
// bit-exact but is statistically exact: the Poisson arrival process is
// memoryless, so redrawing each source's next arrival from its restored
// stream at the new rate samples the correct conditional law.
//
// The wire format (MarshalBinary / UnmarshalSnapshot) is a little-endian
// binary layout with a magic header and a CRC32 trailer, fit for on-disk
// persistence between sweep processes.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"slices"
)

// Snapshot is a serializable steady-state checkpoint of a slotted run,
// produced by Config.Capture and consumed by Config.Resume. It is
// engine-shape canonical: the same captured state restores onto any shard
// count.
type Snapshot struct {
	// NodeRate, Sparse and Fast record the captured run's arrival rate,
	// execution path and key format; TopoName/NumNodes/NumEdges identify
	// the topology. Resume requires Sparse, Fast and the topology to
	// match; NodeRate may differ (see the package comment).
	NodeRate float64
	Sparse   bool
	Fast     bool
	TopoName string
	NumNodes int
	NumEdges int

	// Nodes lists the source node ids, ascending. RNG[i] is Nodes[i]'s
	// keyed stream state, mid-sequence. NextDelta[i] (sparse captures
	// only) is the number of slots from the capture point to Nodes[i]'s
	// next nonzero arrival batch (≥ 0; neverSlot for parked zero-rate
	// sources).
	Nodes     []int32
	RNG       [][4]uint64
	NextDelta []int64

	// QueueLen[e] is edge e's queue length; Entries holds all queued ring
	// entries edge-major in FIFO order, canonicalized (slot bits and
	// measured flag zeroed).
	QueueLen []int32
	Entries  []uint64
}

// capture exports the engine's end-of-run state. Tiles hold disjoint
// source sets, so concatenating and sorting by node id yields the
// canonical shard-independent layout.
func (s *ShardedEngine) capture() *Snapshot {
	cfg := s.cfg
	total := int64(cfg.WarmupSlots) + int64(cfg.Slots)
	snap := &Snapshot{
		NodeRate: cfg.NodeRate,
		Sparse:   s.sparse,
		Fast:     s.tab.fast,
		TopoName: cfg.Net.Name(),
		NumNodes: cfg.Net.NumNodes(),
		NumEdges: cfg.Net.NumEdges(),
	}

	type srcState struct {
		node  int32
		rng   [4]uint64
		delta int64
	}
	var all []srcState
	for i := range s.tiles {
		t := &s.tiles[i]
		for j, src := range t.sources {
			st := srcState{node: src, rng: t.rngs[j].State()}
			if s.sparse {
				// All pending arrival slots sit at or past the horizon:
				// the wheel only ever holds future slots, and the last
				// processed slot was total−1.
				if t.next[j] >= neverSlot {
					st.delta = neverSlot
				} else {
					st.delta = t.next[j] - total
				}
			}
			all = append(all, st)
		}
	}
	slices.SortFunc(all, func(a, b srcState) int { return int(a.node) - int(b.node) })
	snap.Nodes = make([]int32, len(all))
	snap.RNG = make([][4]uint64, len(all))
	if s.sparse {
		snap.NextDelta = make([]int64, len(all))
	}
	for i, st := range all {
		snap.Nodes[i] = st.node
		snap.RNG[i] = st.rng
		if s.sparse {
			snap.NextDelta[i] = st.delta
		}
	}

	snap.QueueLen = make([]int32, snap.NumEdges)
	for e := range snap.QueueLen {
		snap.QueueLen[e] = s.rings.qsize[e]
	}
	for e := 0; e < snap.NumEdges; e++ {
		buf := s.rings.qbuf[e]
		head := s.rings.qhead[e]
		mask := int32(len(buf) - 1)
		for i := int32(0); i < s.rings.qsize[e]; i++ {
			ent := buf[(head+i)&mask]
			snap.Entries = append(snap.Entries, ent&^uint64(entMeasured|entSlotMask))
		}
	}
	return snap
}

// restore fills a freshly reset engine from snap. It runs at the end of
// reset: the tile plan, ownership tables and (sparse) wheel state exist,
// rings and streams are empty, and the workers have not started.
func (s *ShardedEngine) restore(snap *Snapshot) error {
	cfg := s.cfg
	if snap.TopoName != cfg.Net.Name() || snap.NumNodes != cfg.Net.NumNodes() || snap.NumEdges != cfg.Net.NumEdges() {
		return fmt.Errorf("stepsim: snapshot of %s (%d nodes, %d edges) cannot resume on %s (%d nodes, %d edges)",
			snap.TopoName, snap.NumNodes, snap.NumEdges, cfg.Net.Name(), cfg.Net.NumNodes(), cfg.Net.NumEdges())
	}
	if snap.Fast != s.tab.fast {
		return fmt.Errorf("stepsim: snapshot key format (fast=%v) does not match the run's (fast=%v); destination keys are not translatable", snap.Fast, s.tab.fast)
	}
	if snap.Sparse != s.sparse {
		return fmt.Errorf("stepsim: snapshot captured on the sparse=%v path cannot resume on sparse=%v (the paths consume different variate sequences)", snap.Sparse, s.sparse)
	}
	if len(snap.QueueLen) != snap.NumEdges {
		return fmt.Errorf("stepsim: snapshot has %d queue lengths for %d edges", len(snap.QueueLen), snap.NumEdges)
	}
	if len(snap.RNG) != len(snap.Nodes) || (snap.Sparse && len(snap.NextDelta) != len(snap.Nodes)) {
		return fmt.Errorf("stepsim: snapshot per-source arrays are misaligned")
	}
	var nSources int
	for i := range s.tiles {
		nSources += len(s.tiles[i].sources)
	}
	if nSources != len(snap.Nodes) {
		return fmt.Errorf("stepsim: snapshot has %d sources, run has %d", len(snap.Nodes), nSources)
	}

	// Refill the rings edge-major in FIFO order and rebuild the sparse
	// busy-edge bitmaps from the nonempty queues. The restored in-system
	// count all lands on tile 0: per-slot MeanN sampling sums every
	// tile's counter, so only the total matters — at any shard count.
	var entTotal int
	for _, n := range snap.QueueLen {
		if n < 0 {
			return fmt.Errorf("stepsim: snapshot has a negative queue length")
		}
		entTotal += int(n)
	}
	if entTotal != len(snap.Entries) {
		return fmt.Errorf("stepsim: snapshot queue lengths sum to %d entries but %d are stored", entTotal, len(snap.Entries))
	}
	k := 0
	var live int64
	for e := 0; e < snap.NumEdges; e++ {
		n := snap.QueueLen[e]
		if n == 0 {
			continue
		}
		for i := int32(0); i < n; i++ {
			s.rings.push(int32(e), snap.Entries[k])
			k++
		}
		live += int64(n)
		if s.sparse {
			t := &s.tiles[0]
			if s.shards > 1 {
				t = &s.tiles[s.nodeOwner[cfg.Net.EdgeFrom(e)]]
			}
			t.act.add(int32(e))
		}
	}
	s.tiles[0].live = live

	// Per-source streams (and, sparse, the next-arrival wheel). A rate
	// change redraws the next arrival from the restored stream — the
	// geometric gap to the next nonzero batch is memoryless, so a fresh
	// draw at the new rate is the exact conditional law.
	total := int64(cfg.WarmupSlots) + int64(cfg.Slots)
	sameRate := cfg.NodeRate == snap.NodeRate
	for ti := range s.tiles {
		t := &s.tiles[ti]
		for i, src := range t.sources {
			j, found := slices.BinarySearch(snap.Nodes, src)
			if !found {
				return fmt.Errorf("stepsim: snapshot has no state for source node %d", src)
			}
			t.rngs[i].Restore(snap.RNG[j])
			if !s.sparse {
				continue
			}
			var nxt int64
			switch {
			case sameRate:
				nxt = snap.NextDelta[j]
				if nxt < 0 {
					return fmt.Errorf("stepsim: snapshot has a negative arrival delta for node %d", src)
				}
			case cfg.NodeRate <= 0:
				nxt = neverSlot
			default:
				nxt = int64(t.rngs[i].PoissonSkip(cfg.NodeRate))
			}
			t.next[i] = nxt
			if nxt < total {
				t.file(int32(i), nxt)
			}
		}
	}
	return nil
}

// Wire format: magic, little-endian fields in struct order, CRC32
// (IEEE) trailer over everything before it.
const snapMagic = "SLOTSNP1"

// MarshalBinary encodes the snapshot for on-disk persistence.
func (sn *Snapshot) MarshalBinary() ([]byte, error) {
	size := len(snapMagic) + 1 + 8 + 4 + len(sn.TopoName) + 4 + 4 +
		4 + len(sn.Nodes)*4 + len(sn.RNG)*32 + len(sn.NextDelta)*8 +
		len(sn.QueueLen)*4 + 4 + len(sn.Entries)*8 + 4
	buf := make([]byte, 0, size)
	buf = append(buf, snapMagic...)
	var flags byte
	if sn.Sparse {
		flags |= 1
	}
	if sn.Fast {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(sn.NodeRate))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.TopoName)))
	buf = append(buf, sn.TopoName...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(sn.NumNodes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(sn.NumEdges))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.Nodes)))
	for _, v := range sn.Nodes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, st := range sn.RNG {
		for _, w := range st {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	if sn.Sparse {
		if len(sn.NextDelta) != len(sn.Nodes) {
			return nil, fmt.Errorf("stepsim: sparse snapshot with %d deltas for %d sources", len(sn.NextDelta), len(sn.Nodes))
		}
		for _, d := range sn.NextDelta {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(d))
		}
	}
	if len(sn.QueueLen) != sn.NumEdges {
		return nil, fmt.Errorf("stepsim: snapshot with %d queue lengths for %d edges", len(sn.QueueLen), sn.NumEdges)
	}
	for _, n := range sn.QueueLen {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sn.Entries)))
	for _, e := range sn.Entries {
		buf = binary.LittleEndian.AppendUint64(buf, e)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// UnmarshalSnapshot decodes a snapshot produced by MarshalBinary,
// rejecting truncated, oversized or corrupted input.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic)+4 {
		return nil, fmt.Errorf("stepsim: snapshot truncated (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("stepsim: not a slotted-engine snapshot (bad magic)")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("stepsim: snapshot checksum mismatch (corrupted)")
	}
	d := snapDecoder{buf: body, off: len(snapMagic)}
	sn := &Snapshot{}
	flags := d.u8()
	sn.Sparse = flags&1 != 0
	sn.Fast = flags&2 != 0
	sn.NodeRate = math.Float64frombits(d.u64())
	nameLen := int(d.u32())
	if d.err == nil && (nameLen < 0 || nameLen > len(d.buf)-d.off) {
		return nil, fmt.Errorf("stepsim: snapshot topology name overruns the payload")
	}
	sn.TopoName = string(d.bytes(nameLen))
	sn.NumNodes = int(d.u32())
	sn.NumEdges = int(d.u32())
	nSrc := int(d.u32())
	if d.err == nil {
		// Bound the per-source and per-edge counts by the remaining
		// payload before allocating.
		if nSrc < 0 || nSrc > (len(d.buf)-d.off)/36 {
			return nil, fmt.Errorf("stepsim: snapshot source count %d overruns the payload", nSrc)
		}
		if sn.NumEdges < 0 || sn.NumEdges > len(d.buf) {
			return nil, fmt.Errorf("stepsim: snapshot edge count %d overruns the payload", sn.NumEdges)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	sn.Nodes = make([]int32, nSrc)
	for i := range sn.Nodes {
		sn.Nodes[i] = int32(d.u32())
	}
	sn.RNG = make([][4]uint64, nSrc)
	for i := range sn.RNG {
		for w := 0; w < 4; w++ {
			sn.RNG[i][w] = d.u64()
		}
	}
	if sn.Sparse {
		sn.NextDelta = make([]int64, nSrc)
		for i := range sn.NextDelta {
			sn.NextDelta[i] = int64(d.u64())
		}
	}
	sn.QueueLen = make([]int32, sn.NumEdges)
	for i := range sn.QueueLen {
		sn.QueueLen[i] = int32(d.u32())
	}
	nEnt := int(d.u32())
	if d.err == nil && (nEnt < 0 || nEnt > (len(d.buf)-d.off)/8) {
		return nil, fmt.Errorf("stepsim: snapshot entry count %d overruns the payload", nEnt)
	}
	if d.err != nil {
		return nil, d.err
	}
	sn.Entries = make([]uint64, nEnt)
	for i := range sn.Entries {
		sn.Entries[i] = d.u64()
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("stepsim: snapshot has %d trailing bytes", len(d.buf)-d.off)
	}
	return sn, nil
}

// snapDecoder reads little-endian fields with sticky short-read errors.
type snapDecoder struct {
	buf []byte
	off int
	err error
}

func (d *snapDecoder) short() {
	if d.err == nil {
		d.err = fmt.Errorf("stepsim: snapshot truncated at byte %d", d.off)
	}
}

func (d *snapDecoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.short()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *snapDecoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.short()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *snapDecoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.short()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *snapDecoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.short()
		return nil
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v
}

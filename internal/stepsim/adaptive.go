package stepsim

import (
	"context"
	"math"
	"sync"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// Adaptive-precision sweeps for the slotted engine, mirroring
// internal/sim/sweep_adaptive.go: sequential replica stopping at a target
// half-width, control variates against the exactly known arrival count,
// and snapshot warm-starts along a ρ-ladder. The pool core
// (sim.StreamCellsAdaptive) and the stopping ladder are shared with the
// event engine, so the two surfaces cannot drift.

// SweepOpts configures an adaptive slotted sweep; see sim.SweepOpts for
// the shared semantics. The zero value reproduces a plain 1-replica fixed
// sweep.
type SweepOpts struct {
	// Replicas is the fixed replica count used when TargetCI is zero.
	Replicas int
	// Workers bounds the pool's goroutines (0 means GOMAXPROCS).
	Workers int
	// TargetCI, when positive, stops each point as soon as the 95%
	// half-width of its delay estimator of record is ≤ TargetCI, between
	// MinReps and MaxReps replicas.
	TargetCI float64
	// MinReps and MaxReps bound the adaptive replica count (defaults 4
	// and 64; MinReps is raised to 3 under ControlVariates).
	MinReps, MaxReps int
	// ControlVariates regresses Result.Generated — whose expectation is
	// exactly NodeRate·sources·Slots — out of the delay estimate via
	// stats.ControlVariate. Valid for every slotted configuration: the
	// arrival model is always per-source per-slot Poisson.
	ControlVariates bool
	// DelayControl and DelayControlMean add a second control observation
	// per replica under ControlVariates, switching the estimator of record
	// to the two-control stats.ControlVariateMulti regression; both hooks
	// receive the point's configuration because the control's exact mean
	// is per-cell. See sim.SweepOpts.DelayControl for the exact-mean
	// honesty contract.
	DelayControl     func(Config, Result) float64
	DelayControlMean func(Config) float64
	// WarmStart chains engine snapshots across sweep points (replica r of
	// point i resumes replica r's state from point i−1, with RewarmSlots
	// of re-warm); points run sequentially, replicas in parallel. Cold
	// replicas (beyond the previous point's count, or after a broken
	// chain) use the full WarmupSlots. Incompatible with PerEngineStream
	// configurations, which cannot snapshot.
	WarmStart bool
	// RewarmSlots is the warm-started replicas' warmup budget. Zero is
	// exact for same-rate continuation; rate-changing ladders should
	// re-warm long enough to reach the new operating point.
	RewarmSlots int
}

func (o SweepOpts) normalized() SweepOpts {
	if o.Replicas < 1 {
		o.Replicas = 1
	}
	if o.MinReps <= 0 {
		o.MinReps = 4
	}
	if o.ControlVariates && o.MinReps < 3 {
		o.MinReps = 3
	}
	if o.MaxReps <= 0 {
		o.MaxReps = 64
	}
	if o.MaxReps < o.MinReps {
		o.MaxReps = o.MinReps
	}
	if o.TargetCI <= 0 {
		o.MinReps, o.MaxReps = o.Replicas, o.Replicas
	}
	return o
}

// cvMean is the exact expectation of Result.Generated for cfg.
func cvMean(cfg Config) float64 {
	return cfg.NodeRate * float64(len(topology.Sources(cfg.Net))) * float64(cfg.Slots)
}

// cellEstimate computes the delay estimator of record for a complete
// replica prefix (control-variate jackknife when enabled, else the plain
// across-replica mean with its 95% half-width, matching aggregate).
func cellEstimate(prefix []Result, useCV bool, cMean float64, extra func(Result) float64, extraMean float64) (est, hw float64) {
	if useCV {
		y := make([]float64, len(prefix))
		c := make([]float64, len(prefix))
		for i, r := range prefix {
			y[i] = r.MeanDelay
			c[i] = float64(r.Generated)
		}
		if extra == nil {
			e := stats.ControlVariate(y, c, cMean)
			return e.Est, e.HalfWidth
		}
		c2 := make([]float64, len(prefix))
		for i, r := range prefix {
			c2[i] = extra(r)
		}
		e := stats.ControlVariateMulti(y, [][]float64{c, c2}, []float64{cMean, extraMean})
		return e.Est, e.HalfWidth
	}
	var w stats.Welford
	for _, r := range prefix {
		w.Add(r.MeanDelay)
	}
	if w.Count() < 2 {
		return w.Mean(), math.Inf(1)
	}
	return w.Mean(), 1.96 * w.StdDev() / math.Sqrt(float64(w.Count()))
}

// bindControl closes the per-cell DelayControl hooks over one
// configuration (nil observable when no second control is configured).
func bindControl(cfg Config, opts SweepOpts) (func(Result) float64, float64) {
	if opts.DelayControl == nil {
		return nil, 0
	}
	mean := 0.0
	if opts.DelayControlMean != nil {
		mean = opts.DelayControlMean(cfg)
	}
	return func(r Result) float64 { return opts.DelayControl(cfg, r) }, mean
}

// finishCell aggregates a completed cell and installs the estimator of
// record; aggregate() is reused verbatim so every other field matches a
// fixed sweep's.
func finishCell(cfg Config, results []Result, opts SweepOpts) ReplicaSet {
	rs := aggregate(results)
	if opts.ControlVariates {
		extra, extraMean := bindControl(cfg, opts)
		rs.MeanDelay, rs.DelayCI = cellEstimate(results, true, cvMean(cfg), extra, extraMean)
	}
	return rs
}

// StreamSweepAdaptive runs every configuration with the adaptive replica
// policy in opts, emitting cells in input order as they converge. Replica
// r of any point runs the stream Split(point seed, r), so a shared base
// seed across points gives common random numbers — per-replica delays at
// adjacent ρ points are positively correlated and stats.PairedDiff yields
// tight point-to-point contrasts (pinned by TestCRNPairedDifference).
func StreamSweepAdaptive(ctx context.Context, cfgs []Config, opts SweepOpts, emit func(i int, rs ReplicaSet, err error)) {
	opts = opts.normalized()
	if opts.WarmStart {
		warmStartSweep(ctx, cfgs, opts, emit)
		return
	}
	spare := min(sim.SpareFactor(len(cfgs), opts.MinReps, opts.Workers), maxShards)
	sim.StreamCellsAdaptive(ctx, len(cfgs), opts.MinReps, opts.MaxReps, opts.Workers,
		func() func(cell, rep int) (Result, error) {
			var eng Engine
			return func(cell, rep int) (Result, error) {
				rcfg := cfgs[cell]
				rcfg.Seed = xrand.Split(rcfg.Seed, uint64(rep)).Uint64()
				if rcfg.Shards == 0 && !rcfg.PerEngineStream {
					rcfg.Shards = spare
				}
				if rcfg.Ctx == nil {
					rcfg.Ctx = ctx
				}
				return eng.Run(rcfg)
			}
		},
		func(cell int, prefix []Result) bool {
			cMean := cvMean(cfgs[cell])
			extra, extraMean := bindControl(cfgs[cell], opts)
			_, hw := cellEstimate(prefix, opts.ControlVariates, cMean, extra, extraMean)
			return hw <= opts.TargetCI
		},
		func(i int, rs []Result, err error) {
			if err != nil {
				emit(i, ReplicaSet{}, err)
				return
			}
			emit(i, finishCell(cfgs[i], rs, opts), nil)
		})
}

// warmStartSweep is the sequential-chain form: point i's replicas resume
// from point i−1's captured snapshots. An errored point breaks the chain
// (later points run cold) but the sweep continues.
func warmStartSweep(ctx context.Context, cfgs []Config, opts SweepOpts, emit func(i int, rs ReplicaSet, err error)) {
	var prevSnaps []*Snapshot
	for i := range cfgs {
		cellRS, snaps, cellErr := RunCellAdaptive(ctx, cfgs[i], opts, prevSnaps, true)
		emit(i, cellRS, cellErr)
		if cellErr != nil {
			prevSnaps = nil
			continue
		}
		prevSnaps = snaps
	}
}

// RunCellAdaptive runs a single sweep point under opts: the same batch
// ladder, stopping rule and Split(seed, r) replica streams as one cell of
// StreamSweepAdaptive, so its ReplicaSet is bit-identical to that cell's
// (shard counts chosen here differ from a pooled sweep's spare factor,
// which is safe because sharding is result-inert). prevSnaps, when
// non-empty, resumes replica r from prevSnaps[r] with opts.RewarmSlots of
// warmup — one link of the warm-start chain; capture asks every replica
// for its end-of-run snapshot, returned alongside the cell for the next
// link (all-nil when capture is false).
//
// Because replica streams derive from the point's seed alone and the
// stopping decision is a pure function of the results, a caller that
// persists each point's results (and, for warm-start chains, snapshots)
// can be killed between points and resumed by a fresh process, and the
// completed ladder is identical to an uninterrupted run — the property
// internal/serve's crash-safe sweep jobs checkpoint on.
func RunCellAdaptive(ctx context.Context, cfg Config, opts SweepOpts, prevSnaps []*Snapshot, capture bool) (ReplicaSet, []*Snapshot, error) {
	opts = opts.normalized()
	engines := sync.Pool{New: func() any { return new(Engine) }}
	spare := min(sim.SpareFactor(1, opts.MinReps, opts.Workers), maxShards)
	var (
		cellRS  ReplicaSet
		cellErr error
		snaps   []*Snapshot
	)
	sim.StreamCellsAdaptive(ctx, 1, opts.MinReps, opts.MaxReps, opts.Workers,
		func() func(cell, rep int) (Result, error) {
			return func(_, rep int) (Result, error) {
				rcfg := cfg
				rcfg.Seed = xrand.Split(cfg.Seed, uint64(rep)).Uint64()
				rcfg.Capture = capture
				if rcfg.Shards == 0 && !rcfg.PerEngineStream {
					rcfg.Shards = spare
				}
				if rcfg.Ctx == nil {
					rcfg.Ctx = ctx
				}
				if rep < len(prevSnaps) && prevSnaps[rep] != nil {
					rcfg.Resume = prevSnaps[rep]
					rcfg.WarmupSlots = opts.RewarmSlots
				}
				eng := engines.Get().(*Engine)
				res, err := eng.Run(rcfg)
				engines.Put(eng)
				return res, err
			}
		},
		func(_ int, prefix []Result) bool {
			extra, extraMean := bindControl(cfg, opts)
			_, hw := cellEstimate(prefix, opts.ControlVariates, cvMean(cfg), extra, extraMean)
			return hw <= opts.TargetCI
		},
		func(_ int, rs []Result, err error) {
			if err != nil {
				cellErr = err
				return
			}
			snaps = make([]*Snapshot, len(rs))
			for j := range rs {
				snaps[j] = rs[j].Snapshot
				rs[j].Snapshot = nil
			}
			cellRS = finishCell(cfg, rs, opts)
		})
	return cellRS, snaps, cellErr
}

// RunSweepAdaptive executes every configuration under opts and returns the
// aggregated cells in input order; the error is the first cell error.
func RunSweepAdaptive(ctx context.Context, cfgs []Config, opts SweepOpts) ([]ReplicaSet, error) {
	sets := make([]ReplicaSet, len(cfgs))
	var first error
	StreamSweepAdaptive(ctx, cfgs, opts, func(i int, rs ReplicaSet, err error) {
		sets[i] = rs
		if err != nil && first == nil {
			first = err
		}
	})
	return sets, first
}

package stepsim

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bounds"
	"repro/internal/routing"
	"repro/internal/topology"
)

// requireSameBits asserts two Results are math.Float64bits-identical in
// every measured quantity, including the per-packet Welford moments.
func requireSameBits(t *testing.T, label string, got, want Result) {
	t.Helper()
	if math.Float64bits(got.MeanDelay) != math.Float64bits(want.MeanDelay) {
		t.Errorf("%s: MeanDelay %v != %v", label, got.MeanDelay, want.MeanDelay)
	}
	if math.Float64bits(got.MeanN) != math.Float64bits(want.MeanN) {
		t.Errorf("%s: MeanN %v != %v", label, got.MeanN, want.MeanN)
	}
	if got.Delivered != want.Delivered {
		t.Errorf("%s: Delivered %d != %d", label, got.Delivered, want.Delivered)
	}
	if got.Generated != want.Generated {
		t.Errorf("%s: Generated %d != %d", label, got.Generated, want.Generated)
	}
	if math.Float64bits(got.MeanActiveEdges) != math.Float64bits(want.MeanActiveEdges) {
		t.Errorf("%s: MeanActiveEdges %v != %v", label, got.MeanActiveEdges, want.MeanActiveEdges)
	}
	if math.Float64bits(got.ArrivalSlotFraction) != math.Float64bits(want.ArrivalSlotFraction) {
		t.Errorf("%s: ArrivalSlotFraction %v != %v", label, got.ArrivalSlotFraction, want.ArrivalSlotFraction)
	}
	if got.Delay.Count() != want.Delay.Count() ||
		math.Float64bits(got.Delay.Mean()) != math.Float64bits(want.Delay.Mean()) ||
		math.Float64bits(got.Delay.Variance()) != math.Float64bits(want.Delay.Variance()) ||
		got.Delay.Min() != want.Delay.Min() || got.Delay.Max() != want.Delay.Max() {
		t.Errorf("%s: per-packet Welford statistics diverge", label)
	}
}

// TestShardInvariance is the determinism contract of the tentpole: one
// hostile set of configurations — a randomized router near saturation, odd
// array sizes that do not tile evenly, a torus with wraparound boundary
// crossings, a hypercube whose single hops jump across every tile — must
// produce Float64bits-identical Results at shards ∈ {1, 2, 3, 8} and on
// the serial Engine path.
func TestShardInvariance(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{}
	{
		// Odd-sized array, randomized router, load close to λ*: the
		// boundary handoff order and the per-packet coins both matter.
		a := topology.NewArray2D(13)
		cases = append(cases, struct {
			name string
			cfg  Config
		}{"array13-randgreedy-hot", Config{
			Net: a, Router: routing.RandGreedy{A: a},
			Dest:        routing.UniformDest{NumNodes: a.NumNodes()},
			NodeRate:    bounds.LambdaTable(13, 0.92),
			WarmupSlots: 400, Slots: 3000, Seed: 101,
		}})
	}
	{
		// 7×13 k-d array: 91 nodes split into index ranges that align with
		// nothing; 8 shards force sub-row tiles.
		a := topology.NewArrayKD(7, 13)
		cases = append(cases, struct {
			name string
			cfg  Config
		}{"kd7x13-greedy", Config{
			Net: a, Router: routing.GreedyKD{A: a},
			Dest:        routing.UniformDest{NumNodes: a.NumNodes()},
			NodeRate:    0.12,
			WarmupSlots: 300, Slots: 2500, Seed: 103,
		}})
	}
	{
		// Torus: band 0 and the last band are neighbors through wraparound.
		tor := topology.NewTorus2D(5)
		cases = append(cases, struct {
			name string
			cfg  Config
		}{"torus5-greedy", Config{
			Net: tor, Router: routing.TorusGreedy{T: tor},
			Dest:        routing.UniformDest{NumNodes: tor.NumNodes()},
			NodeRate:    0.15,
			WarmupSlots: 300, Slots: 2500, Seed: 107,
		}})
	}
	{
		// Hypercube: one hop can cross from any tile to any other, so all
		// handoff pairs are live.
		h := topology.NewHypercube(5)
		cases = append(cases, struct {
			name string
			cfg  Config
		}{"cube5-bernoulli", Config{
			Net: h, Router: routing.CubeGreedy{H: h},
			Dest:        routing.BernoulliCubeDest{H: h, P: 0.4},
			NodeRate:    0.1,
			WarmupSlots: 300, Slots: 2500, Seed: 109,
		}})
	}
	// Both execution paths must honor the contract independently: the
	// sparse default (skip-ahead arrivals + active-edge worklists) and the
	// dense per-slot body behind Config.Dense. Their results differ from
	// each other (different variate sequences by design), so each mode is
	// compared against its own serial reference.
	for _, mode := range []struct {
		name  string
		dense bool
	}{{"sparse", false}, {"dense", true}} {
		for _, tc := range cases {
			t.Run(tc.name+"/"+mode.name, func(t *testing.T) {
				cfg := tc.cfg
				cfg.Dense = mode.dense
				if testing.Short() {
					// Keep the invariance coverage under -race -short; the
					// full-length versions run in the GOMAXPROCS=4 CI job.
					cfg.WarmupSlots /= 10
					cfg.Slots /= 10
				}
				var eng Engine
				ref, err := eng.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				var sh ShardedEngine // shared across shard counts: reuse must not leak
				for _, shards := range []int{1, 2, 3, 8} {
					scfg := cfg
					scfg.Shards = shards
					got, err := sh.Run(scfg)
					if err != nil {
						t.Fatal(err)
					}
					requireSameBits(t, tc.name, got, ref)
				}
			})
		}
	}
}

// TestShardInvarianceMoreShardsThanRows pins the degenerate plans: shard
// counts past the row count leave trailing tiles empty, which must idle at
// the barrier without perturbing results.
func TestShardInvarianceMoreShardsThanRows(t *testing.T) {
	a := topology.NewArray2D(5)
	cfg := Config{
		Net: a, Router: routing.GreedyXY{A: a},
		Dest:        routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate:    bounds.LambdaTable(5, 0.7),
		WarmupSlots: 200, Slots: 1500, Seed: 5,
	}
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 8 // 3 empty tiles
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameBits(t, "shards=8 over 5 rows", got, ref)
}

// TestShardInvarianceRestrictedSources exercises the SourceSet split: only
// two nodes generate, and one tile may end up with no sources at all.
func TestShardInvarianceRestrictedSources(t *testing.T) {
	lin := topology.NewLinear(9)
	cfg := Config{
		Net:         topology.Restrict{Network: lin, Nodes: []int{1, 7}},
		Router:      routing.LinearRoute{L: lin},
		Dest:        routing.UniformDest{NumNodes: lin.NumNodes()},
		NodeRate:    0.3,
		WarmupSlots: 100, Slots: 2000, Seed: 11,
	}
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3} {
		c := cfg
		c.Shards = shards
		got, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		requireSameBits(t, "restricted sources", got, ref)
	}
}

// TestShardedRejectsPerEngineStream pins the regime split: the single
// compatibility stream serializes generation, so sharding it is an error,
// not a silent fallback.
func TestShardedRejectsPerEngineStream(t *testing.T) {
	cfg := arrayCfg(4, 0.5, 1)
	cfg.PerEngineStream = true
	cfg.Shards = 2
	if _, err := Run(cfg); err == nil {
		t.Error("PerEngineStream with Shards > 1 accepted")
	}
	var sh ShardedEngine
	cfg.Shards = 1
	if _, err := sh.Run(cfg); err == nil {
		t.Error("ShardedEngine accepted PerEngineStream")
	}
}

// TestShardedEngineReuseSteadyStateAllocs extends the serial reuse
// contract to sharded runs: after a warm first run, a 2-shard run costs
// only its per-run goroutine and bookkeeping setup — a handful of
// allocations, not per-packet or per-slot ones.
func TestShardedEngineReuseSteadyStateAllocs(t *testing.T) {
	cfg := arrayCfg(6, 0.8, 5)
	cfg.WarmupSlots, cfg.Slots = 200, 2000
	cfg.Shards = 2
	var sh ShardedEngine
	if _, err := sh.Run(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		cfg.Seed++
		if _, err := sh.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// Two worker goroutines plus late ring doublings on unlucky seeds.
	if allocs > 16 {
		t.Errorf("reused sharded engine allocates %.0f times per run, want a handful", allocs)
	}
}

// TestStreamSweepAutoShardsDeterministic pins the pool's spare-core
// trade: a sweep with fewer tasks than workers auto-shards its runs
// (sim.SpareFactor), and because sharded results are bit-identical the
// sweep output must not depend on the worker count that triggered it —
// nor differ from an explicitly sharded or explicitly serial sweep.
func TestStreamSweepAutoShardsDeterministic(t *testing.T) {
	cfg := arrayCfg(6, 0.8, 77)
	cfg.WarmupSlots, cfg.Slots = 200, 1500
	serial, err := RunSweep(context.Background(), []Config{cfg}, 1, 1) // 1 task, 1 worker: spare=1
	if err != nil {
		t.Fatal(err)
	}
	auto, err := RunSweep(context.Background(), []Config{cfg}, 1, 6) // 1 task, 6 workers: spare=6
	if err != nil {
		t.Fatal(err)
	}
	explicit := cfg
	explicit.Shards = 3
	pinned, err := RunSweep(context.Background(), []Config{explicit}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range [][]ReplicaSet{auto, pinned} {
		if math.Float64bits(rs[0].MeanDelay) != math.Float64bits(serial[0].MeanDelay) ||
			rs[0].Delivered != serial[0].Delivered {
			t.Fatalf("sweep results depend on sharding: %v vs %v", rs[0].MeanDelay, serial[0].MeanDelay)
		}
	}
}

// TestStreamSweepAutoShardsClamped pins the runnability contract of
// auto-sharding: a worker count past the engine's tile limit (or a
// >1024-core machine) must clamp, not error every run.
func TestStreamSweepAutoShardsClamped(t *testing.T) {
	cfg := arrayCfg(4, 0.5, 9)
	cfg.WarmupSlots, cfg.Slots = 50, 300
	ref, err := RunSweep(context.Background(), []Config{cfg}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	huge, err := RunSweep(context.Background(), []Config{cfg}, 1, 5000) // spare factor 5000 > maxShards
	if err != nil {
		t.Fatalf("auto-sharding made the sweep unrunnable: %v", err)
	}
	if math.Float64bits(huge[0].MeanDelay) != math.Float64bits(ref[0].MeanDelay) {
		t.Error("clamped auto-sharded sweep diverged from serial")
	}
}

// TestBarrierLockstep hammers the sense-reversing barrier: n goroutines
// each perform many phased increments of a shared counter, and after every
// barrier the counter must be an exact multiple of n — any missed or
// double release shows up as a torn phase (run under -race in CI, which
// also verifies the barrier's happens-before edges).
func TestBarrierLockstep(t *testing.T) {
	const n, rounds = 4, 5000
	var b barrier
	b.init(n)
	var counter atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	fail := make(chan int64, n*4)
	for g := 0; g < n; g++ {
		go func() {
			defer wg.Done()
			var sense int32
			for r := 0; r < rounds; r++ {
				counter.Add(1)
				b.wait(&sense)
				if v := counter.Load(); v != int64(n*(r+1)) {
					select {
					case fail <- v:
					default:
					}
				}
				b.wait(&sense)
			}
		}()
	}
	wg.Wait()
	close(fail)
	for v := range fail {
		t.Fatalf("barrier released a phase early: counter %d not a full multiple", v)
	}
}

// TestShardedHandoffUnderRace drives a config where every slot crosses
// tile boundaries both ways, sized for the race detector (CI runs this
// package with -race): torus wraparound plus hot load keeps all handoff
// pairs and the barrier busy.
func TestShardedHandoffUnderRace(t *testing.T) {
	tor := topology.NewTorus2D(6)
	cfg := Config{
		Net: tor, Router: routing.TorusGreedy{T: tor},
		Dest:        routing.UniformDest{NumNodes: tor.NumNodes()},
		NodeRate:    0.2,
		WarmupSlots: 50, Slots: 400, Seed: 21,
		Shards: 3,
	}
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireSameBits(t, "race rep", got, ref)
	}
}

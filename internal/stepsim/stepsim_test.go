package stepsim

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func rel(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func arrayCfg(n int, rho float64, seed uint64) Config {
	a := topology.NewArray2D(n)
	return Config{
		Net:         a,
		Router:      routing.GreedyXY{A: a},
		Dest:        routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate:    bounds.LambdaTable(n, rho),
		WarmupSlots: 2000,
		Slots:       20000,
		Seed:        seed,
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(arrayCfg(5, 0.6, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(arrayCfg(5, 0.6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanDelay != b.MeanDelay || a.Delivered != b.Delivered {
		t.Error("same seed diverged")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := arrayCfg(4, 0.5, 1)
	cfg.Slots = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero slots accepted")
	}
}

// TestCrossValidationAgainstEventEngine is the point of this package: the
// synchronous simulator and the event-driven engine (in slotted mode) are
// independent implementations of the same model and must agree
// statistically on both the mean delay and the mean number in system.
func TestCrossValidationAgainstEventEngine(t *testing.T) {
	for _, tc := range []struct {
		n   int
		rho float64
	}{{5, 0.5}, {6, 0.8}} {
		step, err := Run(arrayCfg(tc.n, tc.rho, 5))
		if err != nil {
			t.Fatal(err)
		}
		a := topology.NewArray2D(tc.n)
		evCfg := sim.Config{
			Net:      a,
			Router:   routing.GreedyXY{A: a},
			Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
			NodeRate: bounds.LambdaTable(tc.n, tc.rho),
			Warmup:   2000,
			Horizon:  20000,
			Seed:     6,
			SlotTau:  1,
		}
		event, err := sim.Run(evCfg)
		if err != nil {
			t.Fatal(err)
		}
		if rel(step.MeanDelay, event.MeanDelay) > 0.05 {
			t.Errorf("n=%d rho=%v: delay %v (step) vs %v (event)", tc.n, tc.rho, step.MeanDelay, event.MeanDelay)
		}
		if rel(step.MeanN, event.MeanN) > 0.07 {
			t.Errorf("n=%d rho=%v: N %v (step) vs %v (event)", tc.n, tc.rho, step.MeanN, event.MeanN)
		}
	}
}

// TestSlottedNearContinuous reproduces §5.2's claim from the synchronous
// side: the slotted delay is within one slot of the continuous-time delay.
func TestSlottedNearContinuous(t *testing.T) {
	n, rho := 5, 0.7
	step, err := Run(arrayCfg(n, rho, 7))
	if err != nil {
		t.Fatal(err)
	}
	a := topology.NewArray2D(n)
	cont, err := sim.Run(sim.Config{
		Net:      a,
		Router:   routing.GreedyXY{A: a},
		Dest:     routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate: bounds.LambdaTable(n, rho),
		Warmup:   2000,
		Horizon:  20000,
		Seed:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(step.MeanDelay - cont.MeanDelay); diff > 1.1 {
		t.Errorf("slotted %v vs continuous %v differ by %v > 1 slot", step.MeanDelay, cont.MeanDelay, diff)
	}
}

func TestZeroHopPacketsCounted(t *testing.T) {
	// A 2×2 array with uniform destinations: a quarter of packets are
	// zero-hop and must appear with delay 0.
	a := topology.NewArray2D(2)
	res, err := Run(Config{
		Net:      a,
		Router:   routing.GreedyXY{A: a},
		Dest:     routing.UniformDest{NumNodes: 4},
		NodeRate: 0.2,
		Slots:    5000,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay.Min() != 0 {
		t.Errorf("expected zero-delay packets, min = %v", res.Delay.Min())
	}
	if res.MeanDelay <= 0 || res.Delivered == 0 {
		t.Error("no traffic simulated")
	}
}

// TestEngineReuseDoesNotCorruptSourceSet pins the reset contract that a
// reused engine copies — never aliases — a SourceSet topology's node list:
// a later reset on a dense topology truncates and refills the engine's
// source buffer, which must not scribble over the restricted topology's
// own slice.
func TestEngineReuseDoesNotCorruptSourceSet(t *testing.T) {
	lin := topology.NewLinear(6)
	nodes := []int{0, 2}
	restricted := topology.Restrict{Network: lin, Nodes: nodes}
	rcfg := Config{
		Net:      restricted,
		Router:   routing.LinearRoute{L: lin},
		Dest:     routing.UniformDest{NumNodes: lin.NumNodes()},
		NodeRate: 0.1,
		Slots:    200,
		Seed:     1,
	}
	var eng Engine
	if _, err := eng.Run(rcfg); err != nil {
		t.Fatal(err)
	}
	// A dense-topology reset refills the source buffer in place.
	if _, err := eng.Run(arrayCfg(4, 0.3, 2)); err != nil {
		t.Fatal(err)
	}
	if nodes[0] != 0 || nodes[1] != 2 {
		t.Fatalf("engine reuse corrupted the Restrict source list: %v", nodes)
	}
	// And the restricted config must still run correctly afterwards.
	res, err := eng.Run(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Error("restricted rerun generated no traffic")
	}
}

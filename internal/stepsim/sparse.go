package stepsim

// Sparse slotted execution: per-slot cost proportional to traffic, not
// topology size.
//
// The dense engine body pays full price for an idle array: phase 1 draws
// one Poisson batch per source per slot (O(N) RNG calls, almost all
// returning zero below saturation) and phase 2 ranges over every edge's
// queue length (O(E) loads, almost all zero at low load — ~4.2 M per slot
// on a 1024×1024 array). The sparse path, the engine default since this
// rework, removes both topology-sized terms:
//
//   - Skip-ahead arrivals. A source's per-slot batch sequence is i.i.d.
//     Poisson(λ), so the gap to its next NONZERO batch is geometric with
//     success probability 1−e^(−λ), sampled in one uniform
//     (xrand.PoissonSkip), and the batch on that slot is zero-truncated
//     Poisson (xrand.PoissonPositive). Each source therefore draws only
//     on its arrival slots: [initial skip], then per arrival slot
//     [batch, per-packet (dst, coin), next skip] — a canonical per-node
//     order on the same keyed stream xrand.ReseedSplit(Seed, nodeID) the
//     dense default uses, so a node's variates still depend only on
//     (Seed, nodeID, its own history) and shard-count invariance holds by
//     construction. Due sources are found without scanning the node set
//     via a per-tile timing wheel: each source sits in the bucket chain
//     for (nextSlot & wheelMask) — an intrusive linked list (one bucket
//     head per wheel slot, one link word per source), so filing and
//     refiling never allocate. A slot detaches one chain, processes the
//     entries whose nextSlot matches, and refiles the rest into the same
//     bucket (entries a full wheel revolution away are touched once per
//     revolution — N/wheelSlots spurious touches per slot, vanishing
//     against the dense path's N draws). Processing order within a slot
//     is immaterial: a first hop always leaves its own source, so no two
//     sources push onto the same queue in phase 1, and all accumulators
//     are associative integers.
//
//   - Active-edge worklists. Each tile tracks its nonempty owned edges in
//     a two-level bitmap (activeSet): bit e of l1 set iff queue e is
//     nonempty, bit w of l2 set iff l1 word w is nonzero. Phase 2
//     iterates set bits in ascending order — exactly the busy edges, in
//     exactly the ascending-edge order the determinism contract's
//     canonical placement merge requires — at O(E/4096 + busy) word
//     reads per slot, so an idle megabyte of queue lengths costs a few
//     hundred summary words instead of a million loads. Membership is
//     maintained at the only transitions that change it: a push onto an
//     empty queue sets the bit, a pop that empties one clears it. Every
//     push and pop of an edge happens on its owning tile (arrivals leave
//     the tile's own sources; placement records are routed to the next
//     edge's owner), so the per-tile bitmaps need no synchronization
//     beyond the existing slot barrier.
//
// The worklists change no variate stream — given identical arrivals, the
// sparse and dense service phases visit the same queues in the same
// order. Skip-ahead does change the variate stream (that is its point),
// so sparse and dense results differ bit-wise while simulating the
// identical stochastic law; Config.Dense keeps the dense body selectable
// for A/B measurement and for the goldens that pin it, and
// Config.PerEngineStream remains the oracle's dense single-stream regime.

import "math/bits"

const (
	// wheelSlots is the arrival timing wheel size (a power of two).
	// Sources whose next arrival lies a revolution or more ahead are
	// touched once per revolution, so the spurious-touch rate is
	// N/wheelSlots per slot — 0.1% of the dense path's per-slot draws.
	wheelSlots = 1024
	wheelMask  = wheelSlots - 1

	// neverSlot parks a zero-rate source: past any horizon, and far
	// enough from int64 overflow that slot arithmetic stays safe.
	neverSlot = int64(1) << 62
)

// activeSet tracks the nonempty edges a tile owns as a two-level bitmap.
// Iterating set bits ascending visits exactly the busy edges in ascending
// edge order — the canonical service order — and the l2 summary makes an
// idle region cost one word test per 4096 edges. A tile's set holds only
// the edges it owns, so tiles iterate their full [0, numEdges) range
// without masking and never observe each other's bits.
type activeSet struct {
	l1 []uint64 // bit e&63 of word e>>6: queue e nonempty
	l2 []uint64 // bit w&63 of word w>>6: l1[w] nonzero
}

// reset sizes and clears the bitmap for numEdges edges, reusing capacity.
func (a *activeSet) reset(numEdges int) {
	w1 := (numEdges + 63) >> 6
	a.l1 = grow(a.l1, w1)
	a.l2 = grow(a.l2, (w1+63)>>6)
	clear(a.l1)
	clear(a.l2)
}

// add marks edge e busy. Callers invoke it only on the empty→nonempty
// transition, but it is idempotent regardless.
func (a *activeSet) add(e int32) {
	w := e >> 6
	a.l1[w] |= 1 << (uint32(e) & 63)
	a.l2[w>>6] |= 1 << (uint32(w) & 63)
}

// remove marks edge e idle (on the nonempty→empty transition).
func (a *activeSet) remove(e int32) {
	w := e >> 6
	if a.l1[w] &^= 1 << (uint32(e) & 63); a.l1[w] == 0 {
		a.l2[w>>6] &^= 1 << (uint32(w) & 63)
	}
}

// resetSparse prepares one tile's sparse-path state: the active-edge
// bitmap and the arrival wheel, both reused across runs.
func (t *tile) resetSparse(numEdges int) {
	t.act.reset(numEdges)
	t.wheelHead = grow(t.wheelHead, wheelSlots)
	for i := range t.wheelHead {
		t.wheelHead[i] = -1
	}
	t.wheelLink = grow(t.wheelLink, len(t.sources))
	t.next = grow(t.next, len(t.sources))
}

// file inserts source index i into the wheel chain for slot nxt.
func (t *tile) file(i int32, nxt int64) {
	b := nxt & wheelMask
	t.wheelLink[i] = t.wheelHead[b]
	t.wheelHead[b] = i
}

// seedSparse seeds the tile's per-node streams and draws each source's
// first arrival slot, filing it into the wheel. Sources whose first
// arrival falls past the horizon (and zero-rate sources) are parked
// outside the wheel entirely.
func (s *ShardedEngine) seedSparse(t *tile, total int) {
	mean := s.cfg.NodeRate
	for i := range t.sources {
		rng := &t.rngs[i]
		rng.ReseedSplit(s.cfg.Seed, uint64(t.sources[i]))
		if mean <= 0 {
			t.next[i] = neverSlot
			continue
		}
		nxt := int64(rng.PoissonSkip(mean))
		t.next[i] = nxt
		if nxt < int64(total) {
			t.file(int32(i), nxt)
		}
	}
}

// arrivalsSparse is phase 1 on the sparse path: detach this slot's wheel
// chain, generate for the sources whose arrival slot is now, and refile
// each by its freshly drawn skip (early entries — a wheel revolution or
// more ahead — go straight back into the same bucket). The batch is
// PoissonPositive (the slot was selected BECAUSE it is nonzero);
// everything after the batch draw — destination, coin, zero-hop
// delivery, ring push — matches the dense body, except that a push onto
// an empty queue also flips the edge's worklist bit.
func (s *ShardedEngine) arrivalsSparse(t *tile, slot int, measuring bool, total int) {
	mean := s.cfg.NodeRate
	poissonL := s.poissonL
	dest := s.cfg.Dest
	choose := s.tab.choose
	nodeKey := s.tab.nodeKey
	qsize := s.rings.qsize
	flt := s.flt
	idx := slot & wheelMask
	i := t.wheelHead[idx]
	t.wheelHead[idx] = -1
	for i >= 0 {
		chain := t.wheelLink[i]
		if t.next[i] != int64(slot) {
			t.file(i, int64(idx))
			i = chain
			continue
		}
		src := int(t.sources[i])
		rng := &t.rngs[i]
		var k int
		if poissonL > 0 {
			k = rng.PoissonPositiveExp(mean, poissonL)
		} else {
			k = rng.PoissonPositive(mean)
		}
		if measuring {
			t.arrivalHits++
			t.genCount += int64(k)
		}
		// A down source offers its batch into the void (see the dense
		// body): draws proceed so the stream stays aligned, packets don't.
		srcDown := flt != nil && t.fltNodeDown[src] != 0
		for ; k > 0; k-- {
			dst := dest.Sample(src, rng)
			var choice uint32
			if choose != nil {
				choice = uint32(choose(rng))
			}
			if srcDown {
				if measuring {
					t.dropped++
				}
				continue
			}
			if dst == src {
				// Zero-hop packet: delivered instantly with delay 0,
				// never entering any queue (the paper allows these).
				if measuring {
					t.addDelay(0)
					if t.destCount != nil {
						t.destCount[src]++
					}
				}
				continue
			}
			ent := uint64(nodeKey[dst])<<entKeyShift | uint64(choice)<<entSlotBits | uint64(slot&entSlotMask)
			if measuring {
				ent |= entMeasured
			}
			edge := s.tab.nextEdge(nodeKey[src], nodeKey[dst], choice)
			if qsize[edge] == 0 {
				t.act.add(edge)
			}
			s.rings.push(edge, ent)
			t.live++
		}
		nxt := int64(slot) + 1 + int64(rng.PoissonSkip(mean))
		t.next[i] = nxt
		if nxt < int64(total) {
			t.file(i, nxt)
		}
		i = chain
	}
	if measuring {
		t.liveSum += t.live
	}
}

// serviceSparse is phase 2 on the sparse path: serve the head packet of
// every busy owned edge, found by walking the two-level bitmap in
// ascending edge order. The pop/route/deliver body is the dense scan's;
// the worklist supplies the edges (clearing a bit when a queue drains)
// instead of a full qsize sweep. Iteration reads snapshots of each word,
// so the in-loop remove of the edge being served never disturbs it; adds
// happen only in phases 1 and 3.
func (s *ShardedEngine) serviceSparse(t *tile, slot int, measuring bool, ring int) {
	moved := t.moved[:0]
	movedB := t.movedB[:0]
	multi := s.shards > 1
	myBase := (int(t.id) * s.shards) * s.ringDepth
	if multi {
		for u := 0; u < s.shards; u++ {
			if u != int(t.id) {
				cell := myBase + u*s.ringDepth + ring
				s.handoff[cell] = s.handoff[cell][:0]
			}
		}
	}
	qbuf, qhead, qsize := s.rings.qbuf, s.rings.qhead, s.rings.qsize
	edgeKey := s.tab.edgeKey
	fast := s.tab.fast
	rowOwner, nodeOwner := s.rowOwner, s.nodeOwner
	boundaryRow, boundaryNode := s.boundaryRow, s.boundaryNode
	flt := s.flt
	l1 := t.act.l1
	var busy int64
	for w2i, w2 := range t.act.l2 {
		for w2 != 0 {
			w1i := w2i<<6 + bits.TrailingZeros64(w2)
			w2 &= w2 - 1
			for word := l1[w1i]; word != 0; word &= word - 1 {
				low := bits.TrailingZeros64(word)
				edge := int32(w1i<<6 + low)
				if flt != nil && !s.canServe(t, edge, slot) {
					// Blocked or held edge: the queue stays nonempty, so
					// its worklist bit stays set for next slot.
					continue
				}
				busy++
				buf := qbuf[edge]
				head := qhead[edge]
				ent := buf[head]
				qhead[edge] = (head + 1) & int32(len(buf)-1)
				size := qsize[edge] - 1
				qsize[edge] = size
				if size == 0 {
					// Inline activeSet.remove with the word coordinates
					// already in registers.
					if l1[w1i] &^= 1 << uint(low); l1[w1i] == 0 {
						t.act.l2[w2i] &^= 1 << (uint32(w1i) & 63)
					}
				}
				pos := edgeKey[edge]
				key := int32(ent >> entKeyShift)
				if pos == key {
					if ent&entMeasured != 0 && measuring {
						d := int32((uint32(slot+1) - uint32(ent)) & entSlotMask)
						t.addDelay(d)
						if t.destCount != nil {
							v := s.tab.nodeOf(key)
							t.destCount[v]++
							t.destDelay[v] += uint64(d)
						}
					}
					t.live--
					continue
				}
				choice := uint32(ent>>entSlotBits) & entChoiceMask
				var next int32
				if flt != nil {
					var gone bool
					if next, gone = s.fltAdvance(t, edge, slot, pos, key, choice, ent, measuring); gone {
						continue
					}
				} else {
					next = s.tab.nextEdge(pos, key, choice)
				}
				rec := movedRec{ent: ent, edge: next, src: edge}
				if multi {
					var owner int32
					var bnd bool
					if fast {
						owner = rowOwner[pos>>coordBits]
						bnd = boundaryRow[pos>>coordBits]
					} else {
						owner = nodeOwner[pos]
						bnd = boundaryNode[pos]
					}
					if owner != t.id {
						h := &s.handoff[myBase+int(owner)*s.ringDepth+ring]
						*h = append(*h, rec)
						continue
					}
					if bnd {
						movedB = append(movedB, rec)
						continue
					}
				}
				moved = append(moved, rec)
			}
		}
	}
	if measuring {
		t.busySum += busy
	}
	t.moved = moved
	t.movedB = movedB
}

package stepsim

// The pre-rewrite slotted engine — heap-allocated *packet records carrying
// materialized AppendRoute slices, copy(q, q[1:]) head-of-line dequeues —
// survives here as the test oracle. It consumes the identical RNG variate
// sequence as the SoA engine (Poisson count, then per packet destination
// and routing coin), so for every router the two must agree BIT FOR BIT on
// the same seed, which is a far stronger check than statistical agreement;
// the statistical test below additionally compares independent seeds with
// matched confidence intervals, guarding the semantics rather than the
// draw order.

import (
	"context"
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/bounds"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/xrand"
)

type oraclePacket struct {
	genSlot  int
	hop      int
	route    []int
	measured bool
}

// runOracle is the seed-era stepsim.Run, verbatim apart from the rename.
func runOracle(cfg Config) (Result, error) {
	if cfg.Net == nil || cfg.Router == nil || cfg.Dest == nil {
		return Result{}, fmt.Errorf("stepsim oracle: Net, Router and Dest are required")
	}
	if cfg.Slots <= 0 || cfg.WarmupSlots < 0 || cfg.NodeRate < 0 {
		return Result{}, fmt.Errorf("stepsim oracle: invalid slot counts or rate")
	}
	rng := xrand.New(cfg.Seed)
	sources := topology.Sources(cfg.Net)
	queues := make([][]*oraclePacket, cfg.Net.NumEdges())
	var free []*oraclePacket

	getPacket := func() *oraclePacket {
		if n := len(free); n > 0 {
			p := free[n-1]
			free = free[:n-1]
			p.hop = 0
			p.route = p.route[:0]
			return p
		}
		return &oraclePacket{}
	}

	var res Result
	var nSum float64
	inSystem := 0
	total := cfg.WarmupSlots + cfg.Slots
	moved := make([]*oraclePacket, 0, 256)
	for slot := 0; slot < total; slot++ {
		measuring := slot >= cfg.WarmupSlots
		for _, src := range sources {
			for k := rng.Poisson(cfg.NodeRate); k > 0; k-- {
				p := getPacket()
				p.genSlot = slot
				p.measured = measuring
				dst := cfg.Dest.Sample(src, rng)
				p.route = cfg.Router.AppendRoute(p.route, src, dst, rng)
				if len(p.route) == 0 {
					if measuring {
						res.Delay.Add(0)
						res.Delivered++
					}
					free = append(free, p)
					continue
				}
				queues[p.route[0]] = append(queues[p.route[0]], p)
				inSystem++
			}
		}
		if measuring {
			nSum += float64(inSystem)
		}
		moved = moved[:0]
		for e := range queues {
			q := queues[e]
			if len(q) == 0 {
				continue
			}
			p := q[0]
			copy(q, q[1:])
			queues[e] = q[:len(q)-1]
			p.hop++
			if p.hop == len(p.route) {
				if p.measured && measuring {
					res.Delay.Add(float64(slot + 1 - p.genSlot))
					res.Delivered++
				}
				inSystem--
				free = append(free, p)
				continue
			}
			moved = append(moved, p)
		}
		for _, p := range moved {
			e := p.route[p.hop]
			queues[e] = append(queues[e], p)
		}
	}
	res.MeanDelay = res.Delay.Mean()
	res.MeanN = nSum / float64(cfg.Slots)
	return res, nil
}

// TestEngineMatchesOracleBitForBit runs the SoA engine and the pointer
// oracle on the same seeds and requires bit-identical results, across
// deterministic and randomized routers and several topologies. The oracle
// consumes one engine-wide stream in source order, so the comparison runs
// the SoA engine in its PerEngineStream compatibility regime — the default
// per-node keyed streams draw different variates by design (their exactness
// is pinned by the shard-invariance tests and the statistical test below).
func TestEngineMatchesOracleBitForBit(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"array-greedy-xy", arrayCfg(6, 0.8, 11)},
		{"array-greedy-xy-light", arrayCfg(4, 0.3, 13)},
	}
	{
		a := topology.NewArray2D(6)
		cfg := arrayCfg(6, 0.7, 17)
		cfg.Router = routing.RandGreedy{A: a}
		cfg.Net = cfg.Router.(routing.RandGreedy).A
		cases = append(cases, struct {
			name string
			cfg  Config
		}{"array-rand-greedy", cfg})
	}
	{
		tor := topology.NewTorus2D(5)
		cases = append(cases, struct {
			name string
			cfg  Config
		}{"torus-greedy", Config{
			Net: tor, Router: routing.TorusGreedy{T: tor},
			Dest:     routing.UniformDest{NumNodes: tor.NumNodes()},
			NodeRate: 0.15, WarmupSlots: 500, Slots: 4000, Seed: 19,
		}})
	}
	{
		h := topology.NewHypercube(4)
		cases = append(cases, struct {
			name string
			cfg  Config
		}{"hypercube", Config{
			Net: h, Router: routing.CubeGreedy{H: h},
			Dest:     routing.UniformDest{NumNodes: h.NumNodes()},
			NodeRate: 0.1, WarmupSlots: 500, Slots: 4000, Seed: 23,
		}})
	}
	var eng Engine // deliberately shared across cases: reuse must not leak state
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.PerEngineStream = true
			got, err := eng.Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := runOracle(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got.MeanDelay) != math.Float64bits(want.MeanDelay) {
				t.Errorf("MeanDelay: engine %v != oracle %v", got.MeanDelay, want.MeanDelay)
			}
			if math.Float64bits(got.MeanN) != math.Float64bits(want.MeanN) {
				t.Errorf("MeanN: engine %v != oracle %v", got.MeanN, want.MeanN)
			}
			if got.Delivered != want.Delivered {
				t.Errorf("Delivered: engine %d != oracle %d", got.Delivered, want.Delivered)
			}
			if got.Delay.Count() != want.Delay.Count() ||
				math.Float64bits(got.Delay.Variance()) != math.Float64bits(want.Delay.Variance()) ||
				got.Delay.Min() != want.Delay.Min() || got.Delay.Max() != want.Delay.Max() {
				t.Error("per-packet Welford statistics diverge")
			}
		})
	}
}

// TestEngineOracleStatisticalEquivalence compares the two implementations
// on independent seeds with matched confidence intervals: the across-
// replica mean delays must agree within the root-sum-square of the two 95%
// half-widths (plus a small floor for CI noise at this replica count).
func TestEngineOracleStatisticalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated statistical sweep; skipped with -short")
	}
	cfg := arrayCfg(6, 0.8, 100)
	const replicas = 8
	newRS, err := RunReplicas(context.Background(), cfg, replicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	var oracleMeans []float64
	sum := 0.0
	for rep := 0; rep < replicas; rep++ {
		rcfg := cfg
		rcfg.Seed = xrand.Split(cfg.Seed+1, uint64(rep)).Uint64()
		res, err := runOracle(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		oracleMeans = append(oracleMeans, res.MeanDelay)
		sum += res.MeanDelay
	}
	oracleMean := sum / replicas
	varSum := 0.0
	for _, m := range oracleMeans {
		varSum += (m - oracleMean) * (m - oracleMean)
	}
	oracleCI := 1.96 * math.Sqrt(varSum/(replicas-1)) / math.Sqrt(replicas)
	diff := math.Abs(newRS.MeanDelay - oracleMean)
	limit := math.Sqrt(newRS.DelayCI*newRS.DelayCI+oracleCI*oracleCI) + 0.05
	if diff > limit {
		t.Errorf("engines disagree: new %.4f±%.4f vs oracle %.4f±%.4f (|Δ|=%.4f > %.4f)",
			newRS.MeanDelay, newRS.DelayCI, oracleMean, oracleCI, diff, limit)
	}
}

// TestSlottedGoldenDeterminism pins the SoA engine to math.Float64bits
// golden values, locking the RNG call order and phase semantics of all
// three regimes: the per-engine compatibility stream (values recorded
// from the pre-rewrite pointer engine, which the oracle above
// reproduces), the dense per-node keyed streams (values recorded when
// that regime was introduced along with sharding — unchanged by the
// sparse rework, which left the dense body's variate order intact behind
// Config.Dense), and the sparse default (skip-ahead arrivals; values
// recorded when the sparse path became the default; the shard-invariance
// tests additionally pin every shard count to these same bits).
// Regenerate with SIM_GOLDEN_PRINT=1 go test ./internal/stepsim -run Golden -v.
func TestSlottedGoldenDeterminism(t *testing.T) {
	print := os.Getenv("SIM_GOLDEN_PRINT") != ""
	legacy := func(cfg Config) Config { cfg.PerEngineStream = true; return cfg }
	dense := func(cfg Config) Config { cfg.Dense = true; return cfg }
	cases := []struct {
		name             string
		cfg              Config
		meanDelay, meanN uint64
		delivered        int64
	}{
		{
			name: "array-6-rho08-perengine", cfg: legacy(arrayCfg(6, 0.8, 42)),
			meanDelay: 0x401c2f19dc2c23ce, meanN: 0x4060e730be0ded29, delivered: 383633,
		},
		{
			name: "array-5-rho05-perengine", cfg: legacy(arrayCfg(5, 0.5, 7)),
			meanDelay: 0x40100098000d1a0a, meanN: 0x4044036fd21ff2e5, delivered: 200057,
		},
		{
			name: "array-6-rho08-pernode-dense", cfg: dense(arrayCfg(6, 0.8, 42)),
			meanDelay: 0x401c129bf247c8af, meanN: 0x4060db5e353f7cee, delivered: 384086,
		},
		{
			name: "array-5-rho05-pernode-dense", cfg: dense(arrayCfg(5, 0.5, 7)),
			meanDelay: 0x40100175700466dd, meanN: 0x40440468db8bac71, delivered: 200063,
		},
		{
			name: "array-6-rho08-sparse", cfg: arrayCfg(6, 0.8, 42),
			meanDelay: 0x401bff3f7d0e6c5d, meanN: 0x4060ce5aee631f8a, delivered: 384001,
		},
		{
			name: "array-5-rho05-sparse", cfg: arrayCfg(5, 0.5, 7),
			meanDelay: 0x40100624f75bb043, meanN: 0x404408816f0068dc, delivered: 199987,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if print {
				fmt.Printf("%s: meanDelay: %#x, meanN: %#x, delivered: %d,\n",
					tc.name, math.Float64bits(res.MeanDelay), math.Float64bits(res.MeanN), res.Delivered)
				return
			}
			if got := math.Float64bits(res.MeanDelay); got != tc.meanDelay {
				t.Errorf("MeanDelay bits %#x, want %#x (value %v)", got, tc.meanDelay, res.MeanDelay)
			}
			if got := math.Float64bits(res.MeanN); got != tc.meanN {
				t.Errorf("MeanN bits %#x, want %#x (value %v)", got, tc.meanN, res.MeanN)
			}
			if res.Delivered != tc.delivered {
				t.Errorf("Delivered %d, want %d", res.Delivered, tc.delivered)
			}
		})
	}
}

// TestEngineReuseSteadyStateAllocs verifies the tentpole's allocation
// contract: after a first run warms an Engine, further runs of the same
// shape allocate (next to) nothing.
func TestEngineReuseSteadyStateAllocs(t *testing.T) {
	cfg := arrayCfg(6, 0.8, 5)
	cfg.WarmupSlots, cfg.Slots = 200, 2000
	var eng Engine
	if _, err := eng.Run(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		cfg.Seed++
		if _, err := eng.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// A handful of late ring/arena doublings can still happen on unlucky
	// seeds; the seed-era engine spent thousands per run.
	if allocs > 10 {
		t.Errorf("reused engine allocates %.0f times per run, want ~0", allocs)
	}
}

// TestStreamSweepDeterministicAcrossWorkers mirrors the event engine's
// pool guarantee on the slotted side.
func TestStreamSweepDeterministicAcrossWorkers(t *testing.T) {
	cfgs := []Config{arrayCfg(5, 0.5, 3), arrayCfg(5, 0.7, 3), arrayCfg(4, 0.6, 9)}
	for i := range cfgs {
		cfgs[i].WarmupSlots, cfgs[i].Slots = 200, 2000
	}
	one, err := RunSweep(context.Background(), cfgs, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunSweep(context.Background(), cfgs, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one {
		if math.Float64bits(one[i].MeanDelay) != math.Float64bits(many[i].MeanDelay) ||
			one[i].Delivered != many[i].Delivered {
			t.Errorf("cell %d differs across worker counts", i)
		}
	}
}

// BenchmarkStepSlotsOracle is the pre-rewrite engine on the headline 8×8
// configuration, kept runnable so the BENCH.md before/after table can be
// regenerated on any machine (compare with BenchmarkStepSlots/8x8 at the
// repo root).
func BenchmarkStepSlotsOracle(b *testing.B) {
	a := topology.NewArray2D(8)
	cfg := Config{
		Net:         a,
		Router:      routing.GreedyXY{A: a},
		Dest:        routing.UniformDest{NumNodes: a.NumNodes()},
		NodeRate:    bounds.LambdaTable(8, 0.8),
		WarmupSlots: 500,
		Slots:       2000,
	}
	var delivered int64
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := runOracle(cfg)
		if err != nil {
			b.Fatal(err)
		}
		delivered += res.Delivered
	}
	b.ReportMetric(float64(delivered)/float64(b.N), "packets/op")
}

package stepsim

// Tile-sharded execution of a single slotted run.
//
// The node set is partitioned into contiguous tiles (topology.Partition:
// row bands on 2-D arrays and tori, index ranges elsewhere) and each tile
// runs on its own goroutine, owning everything its nodes touch: the ring
// queues of the edges leaving its nodes, the keyed RNG streams of its
// source nodes, and its measurement accumulators. A slot is the same three
// phases as the serial loop — arrivals, service, placement — with exactly
// one synchronization point:
//
//	arrivals(slot)   tile-local: sources push onto their own out-edges
//	service(slot)    tile-local pops; boundary-crossing packets go to a
//	                 per-(tile,tile) handoff list instead of a queue
//	BARRIER          all handoff lists for this slot are now complete
//	placement(slot)  each tile merges its own moved packets with the
//	                 handoffs addressed to it and pushes, in ascending
//	                 served-edge order
//
// Handoff lists are double-buffered by slot parity: a tile writing slot
// s+1's handoffs can therefore overlap a neighbor still placing slot s,
// and the single barrier per slot is enough — a tile reuses a buffer only
// two barriers after its reader consumed it.
//
// # Why results cannot depend on the shard count
//
// Three invariants make shards ∈ {1, 2, …} produce math.Float64bits-equal
// Results, pinned by TestShardInvariance and golden tests:
//
//  1. Randomness is per node, not per engine: source v draws from the
//     keyed stream xrand.ReseedSplit(Seed, v) in a canonical order, so the
//     variates a node consumes are independent of which tile simulates it.
//  2. Queue contents are order-canonical: within a slot, a queue receives
//     its arrivals (only its own source generates them, in that source's
//     draw order) followed by moved packets in ascending served-edge
//     order. Each edge serves at most one packet per slot, so served-edge
//     ids are unique keys and the k-way merge of sorted handoff lists
//     reconstructs exactly the order a serial scan over all edges yields.
//  3. Accumulation is exact-integer: delays are whole slots, so each tile
//     keeps (count, Σd, Σd², min, max) in integers and the cross-tile
//     merge is associative addition; MeanN sums per-tile live counters the
//     same way. The only floating-point operations happen once, at
//     collect time (stats.WelfordFromInts).
//
// The barrier is a sense-reversing barrier whose fast path is a bounded
// atomic spin (no locks or syscalls when every tile has its own core),
// parking in the scheduler when the window expires; handoff lists are
// plain slices because the barrier already provides the happens-before
// edge between writer and reader.

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// maxShards bounds the tile count: handoff buffers are O(shards²) slice
// headers, and no machine this engine targets has more cores.
const maxShards = 1024

// edgeRun is a contiguous block [lo, hi) of owned edge ids.
type edgeRun struct {
	lo, hi int32
}

// tile is one worker's share of a sharded run: a contiguous node range,
// the sources and out-edges inside it, their RNG streams, and the tile's
// private accumulators and scratch. Only its own goroutine writes any of
// it during a run.
type tile struct {
	id    int32
	sense int32 // barrier sense, flipped every wait

	// sources are the generating nodes in the tile's range, ascending;
	// rngs[i] is sources[i]'s keyed stream.
	sources []int32
	rngs    []xrand.RNG

	// edgeRuns are the owned edge ids (EdgeFrom inside the range) as
	// ascending coalesced [lo, hi) runs: contiguous node ranges own large
	// contiguous edge-id blocks (a row band owns whole slices of the
	// Right/Left direction blocks and per-column runs of Down/Up), so the
	// service scan iterates a few thousand runs instead of indexing
	// through millions of edge ids. A single-tile plan leaves it empty
	// and scans all edges directly.
	edgeRuns []edgeRun

	// moved parks own-tile placements, bnd merges incoming handoffs.
	moved []movedRec
	bnd   []movedRec

	// Sparse-path state (sparse.go): the busy-edge bitmap over the tile's
	// owned edges, the arrival timing wheel (intrusive chains: bucket
	// heads plus one link per source, so filing never allocates), and
	// each source's next arrival slot (aligned with sources). Unused on
	// the dense path.
	act       activeSet
	wheelHead []int32
	wheelLink []int32
	next      []int64

	// Measurement accumulators; exact integers so cross-tile merging is
	// associative (see the package comment on determinism). busySum and
	// arrivalHits feed Result.MeanActiveEdges / ArrivalSlotFraction.
	live        int64
	liveSum     int64
	count       int64
	sumDelay    uint64
	sumSq       uint64
	busySum     int64
	arrivalHits int64
	genCount    int64
	minD        int32
	maxD        int32

	// Fault-layer state (fault.go): the tile's owned Markov entities with
	// their keyed dwell streams and next-transition slots, its share of
	// each scheduled outage, running down-entity counts with their
	// measured-slot integrals, and the fault outcome counters. Empty/zero
	// on fault-free runs.
	fltLinks    []int32
	fltLinkRng  []xrand.RNG
	fltLinkNext []int64
	fltNodes    []int32
	fltNodeRng  []xrand.RNG
	fltNodeNext []int64
	fltOutages  []outageEvt
	downLinks   int64
	downNodes   int64

	linkDownSlots int64
	nodeDownSlots int64
	dropped       int64
	deadEnds      int64
	detourHops    int64
	misrouted     int64

	// Per-destination delivery accumulators (Config.PerDestStats), indexed
	// by destination node id; nil when disabled.
	destCount []int64
	destDelay []uint64

	_ [64]byte // keep neighboring tiles' hot counters off this cache line
}

// addDelay records one delivered packet's delay.
func (t *tile) addDelay(d int32) {
	if t.count == 0 {
		t.minD, t.maxD = d, d
	} else {
		if d < t.minD {
			t.minD = d
		}
		if d > t.maxD {
			t.maxD = d
		}
	}
	t.count++
	t.sumDelay += uint64(d)
	t.sumSq += uint64(d) * uint64(d)
}

// barrier is a reusable sense-reversing barrier with a two-stage wait:
// waiters first spin on an atomic sense word — on a machine with a core
// per tile the release lands within the spin window and a slot's
// synchronization costs no lock, no syscall and no allocation — and only
// if the window expires do they park on a condition variable. Parking is
// what keeps oversubscribed configurations (more tiles than cores, or a
// loaded machine) graceful: an unbounded spinner would burn its whole OS
// quantum while the tile it waits for cannot run.
type barrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Int32

	mu     sync.Mutex
	cond   sync.Cond
	parked int32 // under mu
}

// barrierSpin bounds the fast-path spin; a release that takes longer than
// this is waited out in the scheduler instead.
const barrierSpin = 4096

// init prepares the barrier for n participants.
func (b *barrier) init(n int) {
	b.n = int32(n)
	b.count.Store(0)
	b.sense.Store(0)
	b.cond.L = &b.mu
}

// wait blocks until all n participants have called it. local is the
// caller's sense word (one per participant, flipped on every wait).
func (b *barrier) wait(local *int32) {
	s := *local ^ 1
	*local = s
	if b.count.Add(1) == b.n {
		// Last arriver: reset the count BEFORE releasing the sense, so a
		// released waiter re-entering the next barrier cannot race the
		// reset. The sense flip is published under the lock so a waiter
		// cannot park after missing it.
		b.count.Store(0)
		b.mu.Lock()
		b.sense.Store(s)
		parked := b.parked
		b.mu.Unlock()
		if parked > 0 {
			b.cond.Broadcast()
		}
		return
	}
	for spins := 0; spins < barrierSpin; spins++ {
		if b.sense.Load() == s {
			return
		}
	}
	b.mu.Lock()
	b.parked++
	for b.sense.Load() != s {
		b.cond.Wait()
	}
	b.parked--
	b.mu.Unlock()
}

// ShardedEngine is a reusable tile-parallel slotted simulator. The zero
// value is ready; Run honors cfg.Shards (0 and 1 mean a single tile run
// inline on the calling goroutine) and keeps tables, rings, tile scratch
// and handoff buffers across runs, so sweeps that reuse one ShardedEngine
// stay allocation-free in steady state. A ShardedEngine is not safe for
// concurrent use: its worker goroutines exist only inside Run.
//
// Results are bit-identical for every shard count, and to Engine's
// default serial path — see the determinism notes at the top of this
// file. PerEngineStream configs are rejected; that regime lives on
// Engine only.
type ShardedEngine struct {
	cfg      Config
	shards   int
	sparse   bool // !cfg.Dense: skip-ahead arrivals + active-edge worklists
	resumed  bool // cfg.Resume != nil: reset restored state, workers skip seeding
	tab      routeTables
	rings    ringSet
	poissonL float64

	// Ownership tables (shards > 1 only). A served packet's next edge
	// always leaves the node it stands at — pos, already decoded from the
	// popped edge — so ownership is looked up by position key, not by edge
	// id: rowOwner (n entries, L1-resident) on the packed-coordinate fast
	// path, nodeOwner (node-id indexed) on the generic path. nodeOwner
	// doubles as the plan-time edge-owner lookup via EdgeFrom.
	nodeOwner []int32
	rowOwner  []int32

	tiles []tile

	// handoff[src*shards+dst][parity] carries the packets tile src served
	// this slot whose next edge belongs to tile dst, in ascending
	// served-edge order; parity double-buffers across slots.
	handoff [][2][]movedRec

	bar barrier

	// flt is the run's fault state (fault.go); nil on fault-free runs, in
	// which case every fault hook in the slot loop is one predictable
	// nil-check.
	flt *stepFaults

	// stopAt is the cancellation consensus: on multi-tile runs only tile 0
	// polls cfg.Ctx, and on cancellation it stores its current slot + 1
	// here before its barrier wait. Every tile compares the value against
	// its own slot AFTER the barrier and leaves only on an exact match —
	// the slot tag is what makes the protocol safe, because a slow tile's
	// post-barrier load at round k can observe a store tile 0 makes during
	// round k+1 (the loads of round k are not ordered before the stores of
	// round k+1); a boolean would make that tile leave a round early and
	// deadlock the barrier on a missing participant. With the tag it just
	// sees a future slot, continues, and exits in lockstep one round later.
	// Zero means "not canceled"; nonzero also tells Run the result is void.
	stopAt atomic.Int64
}

// Run executes one synchronous simulation, reusing the engine's storage.
func (s *ShardedEngine) Run(cfg Config) (Result, error) {
	if err := s.reset(cfg); err != nil {
		return Result{}, err
	}
	if s.shards == 1 {
		s.worker(&s.tiles[0])
	} else {
		var wg sync.WaitGroup
		wg.Add(s.shards)
		for i := range s.tiles {
			t := &s.tiles[i]
			go func() {
				defer wg.Done()
				s.worker(t)
			}()
		}
		wg.Wait()
	}
	if s.stopAt.Load() != 0 {
		// Canceled mid-run: partial tile accumulators are not a valid
		// Result (the horizon was not reached), so only the cause escapes.
		return Result{}, context.Cause(cfg.Ctx)
	}
	res := s.collect()
	if cfg.Capture {
		res.Snapshot = s.capture()
	}
	return res, nil
}

// reset validates cfg and builds the tile plan, reusing prior storage when
// capacities allow.
func (s *ShardedEngine) reset(cfg Config) error {
	steppers, choose, err := resolveConfig(cfg)
	if err != nil {
		return err
	}
	if cfg.PerEngineStream {
		return fmt.Errorf("stepsim: PerEngineStream is not available on ShardedEngine; use Engine")
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	if shards > maxShards {
		return fmt.Errorf("stepsim: Shards = %d exceeds the %d-tile limit", shards, maxShards)
	}
	s.cfg = cfg
	s.shards = shards
	s.sparse = !cfg.Dense
	s.stopAt.Store(0)
	s.poissonL = poissonExpOf(cfg.NodeRate)
	s.tab.init(cfg, steppers, choose)
	s.rings.reset(cfg.Net.NumEdges())

	ranges := topology.Partition(cfg.Net, shards)
	if cap(s.tiles) >= shards {
		s.tiles = s.tiles[:shards]
	} else {
		s.tiles = make([]tile, shards)
	}
	for i := range s.tiles {
		t := &s.tiles[i]
		t.id = int32(i)
		t.sense = 0
		t.sources = t.sources[:0]
		t.edgeRuns = t.edgeRuns[:0]
		// Scratch capacity is bounded by one record per CURRENT edge (each
		// edge serves at most one packet per slot); release what a bigger
		// previous topology grew, as the legacy engine's reset does.
		if cap(t.moved) > 2*cfg.Net.NumEdges() {
			t.moved = nil
		}
		if cap(t.bnd) > 2*cfg.Net.NumEdges() {
			t.bnd = nil
		}
		t.moved = t.moved[:0]
		t.bnd = t.bnd[:0]
		t.live, t.liveSum = 0, 0
		t.count, t.sumDelay, t.sumSq = 0, 0, 0
		t.busySum, t.arrivalHits, t.genCount = 0, 0, 0
		t.minD, t.maxD = 0, 0
	}

	// Source sets are COPIED into tile-owned buffers (as the serial reset
	// does) and split by node range; within a tile they stay ascending,
	// though per-node streams make the order immaterial.
	if ss, isRestricted := cfg.Net.(topology.SourceSet); isRestricted {
		for _, v := range ss.SourceNodes() {
			t := &s.tiles[topology.RangeOf(ranges, v)]
			t.sources = append(t.sources, int32(v))
		}
	} else {
		for i, r := range ranges {
			t := &s.tiles[i]
			for v := r.Lo; v < r.Hi; v++ {
				t.sources = append(t.sources, int32(v))
			}
		}
	}
	for i := range s.tiles {
		t := &s.tiles[i]
		if cap(t.rngs) >= len(t.sources) {
			t.rngs = t.rngs[:len(t.sources)]
		} else {
			t.rngs = make([]xrand.RNG, len(t.sources))
		}
		if s.sparse {
			t.resetSparse(cfg.Net.NumEdges())
		}
	}

	if shards > 1 {
		numNodes, numEdges := cfg.Net.NumNodes(), cfg.Net.NumEdges()
		s.nodeOwner = grow(s.nodeOwner, numNodes)
		for i, r := range ranges {
			for v := r.Lo; v < r.Hi; v++ {
				s.nodeOwner[v] = int32(i)
			}
		}
		if s.tab.fast {
			// Row-band plans on the array fast path: position keys are
			// packed (row, col), so ownership reduces to a row lookup.
			s.rowOwner = grow(s.rowOwner, s.tab.n)
			for r := 0; r < s.tab.n; r++ {
				s.rowOwner[r] = s.nodeOwner[r*s.tab.n]
			}
		}
		for e := 0; e < numEdges; e++ {
			t := &s.tiles[s.nodeOwner[cfg.Net.EdgeFrom(e)]]
			if n := len(t.edgeRuns); n > 0 && t.edgeRuns[n-1].hi == int32(e) {
				t.edgeRuns[n-1].hi = int32(e) + 1
			} else {
				t.edgeRuns = append(t.edgeRuns, edgeRun{lo: int32(e), hi: int32(e) + 1})
			}
		}
		if cap(s.handoff) >= shards*shards {
			s.handoff = s.handoff[:shards*shards]
			for i := range s.handoff {
				s.handoff[i][0] = s.handoff[i][0][:0]
				s.handoff[i][1] = s.handoff[i][1][:0]
			}
		} else {
			s.handoff = make([][2][]movedRec, shards*shards)
		}
		s.bar.init(shards)
	}

	// Fault state needs the ownership tables to distribute entities, so it
	// is built after the tile plan.
	if err := s.resetFaults(cfg); err != nil {
		return err
	}

	// A resume fills the freshly reset rings, streams and (sparse) wheel
	// from the checkpoint; it must run last, after the tile plan and
	// ownership tables exist. workers then skip their own seeding.
	s.resumed = cfg.Resume != nil
	if s.resumed {
		if err := s.restore(cfg.Resume); err != nil {
			return err
		}
	}
	return nil
}

// worker runs one tile through every slot. It is the per-slot body of the
// serial engine, restated per tile; a single-tile plan runs it inline
// with no barrier, which IS the serial reference path. The sparse and
// dense bodies share phase 3 (and the barrier); phases 1 and 2 dispatch
// once per slot on the engine-wide mode.
func (s *ShardedEngine) worker(t *tile) {
	total := s.cfg.WarmupSlots + s.cfg.Slots
	// Seed this tile's per-node streams in parallel with the other tiles
	// (each touches only its own). The sparse path also draws each
	// source's first arrival slot here. A resumed run skips seeding
	// entirely: reset restored the mid-sequence streams (and refiled the
	// wheel), and reseeding would discard them.
	if s.resumed {
		// streams, wheel and rings restored by reset
	} else if s.sparse {
		s.seedSparse(t, total)
	} else {
		for i, src := range t.sources {
			t.rngs[i].ReseedSplit(s.cfg.Seed, uint64(src))
		}
	}
	if s.flt != nil {
		s.seedFaults(t)
	}
	multi := s.shards > 1
	// Plans with Markov or outage processes mutate the shared up/down
	// arrays in phase 0, so multi-tile runs insert a second barrier between
	// phase 0 and arrivals; liar-only plans keep the single barrier.
	fltBarrier := multi && s.flt != nil && s.flt.needBarrier
	ctx := s.cfg.Ctx
	parity := 0
	for slot := 0; slot < total; slot++ {
		measuring := slot >= s.cfg.WarmupSlots
		if s.flt != nil {
			s.faultPhase(t, slot, measuring)
			if fltBarrier {
				s.bar.wait(&t.sense)
			}
		}
		if s.sparse {
			s.arrivalsSparse(t, slot, measuring, total)
			s.serviceSparse(t, slot, measuring, parity)
		} else {
			s.arrivals(t, slot, measuring)
			s.service(t, slot, measuring, parity)
		}
		if multi {
			// Cancellation consensus: only tile 0 polls the context, and it
			// publishes the slot it is about to leave at before the barrier
			// every other tile is about to cross; a tile exits only when the
			// published slot is its own (see stopAt for why the slot tag,
			// not a boolean, is what prevents a barrier deadlock).
			if t.id == 0 && ctx != nil && ctx.Err() != nil && s.stopAt.Load() == 0 {
				s.stopAt.Store(int64(slot) + 1)
			}
			s.bar.wait(&t.sense)
			if s.stopAt.Load() == int64(slot)+1 {
				return
			}
		} else if ctx != nil && slot&63 == 0 && ctx.Err() != nil {
			s.stopAt.Store(int64(slot) + 1)
			return
		}
		s.place(t, parity)
		parity ^= 1
	}
}

// arrivals is phase 1 for one tile: every source draws its Poisson batch
// and per-packet destination and coin from its own keyed stream, and
// pushes onto its own out-edges (a first hop always leaves the source, so
// arrivals never cross tiles). It ends with the slot's N sample: summed
// over tiles, generated-minus-delivered counters reproduce the global
// in-system count at the canonical sample point.
func (s *ShardedEngine) arrivals(t *tile, slot int, measuring bool) {
	mean := s.cfg.NodeRate
	poissonL := s.poissonL
	dest := s.cfg.Dest
	choose := s.tab.choose
	nodeKey := s.tab.nodeKey
	flt := s.flt
	for i := range t.sources {
		src := int(t.sources[i])
		rng := &t.rngs[i]
		var k int
		switch {
		case poissonL > 0:
			// First Knuth iteration inlined (most sources draw a zero
			// batch): identical variate stream to xrand.PoissonExp.
			if p := rng.Float64Open(); p > poissonL {
				k = 1
				for {
					p *= rng.Float64Open()
					if p <= poissonL {
						break
					}
					k++
				}
			}
		case mean > 0:
			k = rng.Poisson(mean)
		}
		if k > 0 && measuring {
			t.arrivalHits++
			t.genCount += int64(k)
		}
		// A down source offers its batch into the void: every packet is
		// dropped at generation, but the destination and coin draws still
		// happen so the node's variate stream stays aligned with the
		// fault-free sequence.
		srcDown := flt != nil && flt.nodeDown[src] != 0
		for ; k > 0; k-- {
			dst := dest.Sample(src, rng)
			var choice uint32
			if choose != nil {
				choice = uint32(choose(rng))
			}
			if srcDown {
				if measuring {
					t.dropped++
				}
				continue
			}
			if dst == src {
				// Zero-hop packet: delivered instantly with delay 0,
				// never entering any queue (the paper allows these).
				if measuring {
					t.addDelay(0)
					if t.destCount != nil {
						t.destCount[src]++
					}
				}
				continue
			}
			ent := uint64(nodeKey[dst])<<entKeyShift | uint64(choice)<<entSlotBits | uint64(slot&entSlotMask)
			if measuring {
				ent |= entMeasured
			}
			s.rings.push(s.tab.nextEdge(nodeKey[src], nodeKey[dst], choice), ent)
			t.live++
		}
	}
	if measuring {
		t.liveSum += t.live
	}
}

// service is phase 2 for one tile: every owned nonempty edge serves its
// head packet. Deliveries accumulate locally; survivors go to the local
// moved list or, when the next edge belongs to another tile, to that
// pair's handoff list — both in ascending served-edge order, because the
// owned-edge scan is ascending.
func (s *ShardedEngine) service(t *tile, slot int, measuring bool, parity int) {
	moved := t.moved[:0]
	multi := s.shards > 1
	if multi {
		base := int(t.id) * s.shards
		for u := 0; u < s.shards; u++ {
			if u != int(t.id) {
				s.handoff[base+u][parity] = s.handoff[base+u][parity][:0]
			}
		}
	}
	qbuf, qhead, qsize := s.rings.qbuf, s.rings.qhead, s.rings.qsize
	edgeKey := s.tab.edgeKey
	flt := s.flt
	var busy int64
	// The two scans below share their pop/route/deliver body; it is spelled
	// out twice (rather than through a per-edge function) because a call
	// per busy edge is measurable on large arrays, and the single-tile scan
	// is the engine's serial reference path.
	if !multi {
		// Single tile owns everything: scan the dense size array directly,
		// exactly like the serial loop.
		for e, size := range qsize {
			if size == 0 {
				continue
			}
			edge := int32(e)
			if flt != nil && !s.canServe(edge, slot) {
				continue
			}
			busy++
			buf := qbuf[edge]
			head := qhead[edge]
			ent := buf[head]
			qhead[edge] = (head + 1) & int32(len(buf)-1)
			qsize[edge] = size - 1
			pos := edgeKey[edge]
			key := int32(ent >> entKeyShift)
			if pos == key {
				if ent&entMeasured != 0 && measuring {
					d := int32((uint32(slot+1) - uint32(ent)) & entSlotMask)
					t.addDelay(d)
					if t.destCount != nil {
						v := s.tab.nodeOf(key)
						t.destCount[v]++
						t.destDelay[v] += uint64(d)
					}
				}
				t.live--
				continue
			}
			choice := uint32(ent>>entSlotBits) & entChoiceMask
			var next int32
			if flt != nil {
				var gone bool
				if next, gone = s.fltAdvance(t, edge, slot, pos, key, choice, ent, measuring); gone {
					continue
				}
			} else {
				next = s.tab.nextEdge(pos, key, choice)
			}
			moved = append(moved, movedRec{ent: ent, edge: next, src: edge})
		}
	} else {
		myBase := int(t.id) * s.shards
		// The next edge always leaves pos, so its owner is pos's tile:
		// a tiny row table on the fast path, the node table otherwise.
		// (Fault-mode detours and misroutes also leave pos — every
		// candidate is an out-edge of pos — so the ownership lookup is
		// unchanged.)
		fast := s.tab.fast
		rowOwner, nodeOwner := s.rowOwner, s.nodeOwner
		for _, run := range t.edgeRuns {
			for edge := run.lo; edge < run.hi; edge++ {
				size := qsize[edge]
				if size == 0 {
					continue
				}
				if flt != nil && !s.canServe(edge, slot) {
					continue
				}
				busy++
				buf := qbuf[edge]
				head := qhead[edge]
				ent := buf[head]
				qhead[edge] = (head + 1) & int32(len(buf)-1)
				qsize[edge] = size - 1
				pos := edgeKey[edge]
				key := int32(ent >> entKeyShift)
				if pos == key {
					if ent&entMeasured != 0 && measuring {
						d := int32((uint32(slot+1) - uint32(ent)) & entSlotMask)
						t.addDelay(d)
						if t.destCount != nil {
							v := s.tab.nodeOf(key)
							t.destCount[v]++
							t.destDelay[v] += uint64(d)
						}
					}
					t.live--
					continue
				}
				choice := uint32(ent>>entSlotBits) & entChoiceMask
				var next int32
				if flt != nil {
					var gone bool
					if next, gone = s.fltAdvance(t, edge, slot, pos, key, choice, ent, measuring); gone {
						continue
					}
				} else {
					next = s.tab.nextEdge(pos, key, choice)
				}
				rec := movedRec{ent: ent, edge: next, src: edge}
				var owner int32
				if fast {
					owner = rowOwner[pos>>coordBits]
				} else {
					owner = nodeOwner[pos]
				}
				if owner != t.id {
					h := &s.handoff[myBase+int(owner)][parity]
					*h = append(*h, rec)
				} else {
					moved = append(moved, rec)
				}
			}
		}
	}
	if measuring {
		t.busySum += busy
	}
	t.moved = moved
}

// pushPlaced pushes one placed packet, maintaining the tile's busy-edge
// worklist on the sparse path (the next edge always belongs to this tile,
// so the bit flip is tile-local). The non-growing push is spelled out
// here rather than through ringSet.push: placement is one of the two
// per-hop hot paths, and the method call plus re-derived slice loads are
// measurable at 10⁹ hop-services per large run.
func (s *ShardedEngine) pushPlaced(t *tile, edge int32, ent uint64) {
	size := s.rings.qsize[edge]
	if s.sparse && size == 0 {
		t.act.add(edge)
	}
	buf := s.rings.qbuf[edge]
	if int(size) == len(buf) {
		s.rings.push(edge, ent)
		return
	}
	buf[(s.rings.qhead[edge]+size)&int32(len(buf)-1)] = ent
	s.rings.qsize[edge] = size + 1
}

// place is phase 3 for one tile: push this slot's survivors onto their
// next edges in ascending served-edge order. Own-tile packets are already
// sorted (ascending edge scan); incoming handoffs are each sorted for the
// same reason, so a sort of the (typically tiny) boundary set plus one
// two-way merge reconstructs the canonical serial order. Served-edge ids
// are unique within a slot, so the order is total.
func (s *ShardedEngine) place(t *tile, parity int) {
	bnd := t.bnd[:0]
	if s.shards > 1 {
		for u := 0; u < s.shards; u++ {
			if u == int(t.id) {
				continue
			}
			bnd = append(bnd, s.handoff[u*s.shards+int(t.id)][parity]...)
		}
		if len(bnd) > 1 {
			slices.SortFunc(bnd, func(a, b movedRec) int { return int(a.src) - int(b.src) })
		}
	}
	moved := t.moved
	i, j := 0, 0
	for i < len(moved) && j < len(bnd) {
		if moved[i].src < bnd[j].src {
			s.pushPlaced(t, moved[i].edge, moved[i].ent)
			i++
		} else {
			s.pushPlaced(t, bnd[j].edge, bnd[j].ent)
			j++
		}
	}
	for ; i < len(moved); i++ {
		s.pushPlaced(t, moved[i].edge, moved[i].ent)
	}
	for ; j < len(bnd); j++ {
		s.pushPlaced(t, bnd[j].edge, bnd[j].ent)
	}
	t.moved = moved[:0]
	t.bnd = bnd[:0]
}

// collect merges the tiles' integer accumulators into a Result. Addition
// and min/max are associative, so the outcome is independent of tiling.
func (s *ShardedEngine) collect() Result {
	var count, liveSum, busySum, arrivalHits, generated, sources int64
	var sum, sumSq uint64
	var minD, maxD int32
	for i := range s.tiles {
		t := &s.tiles[i]
		if t.count > 0 {
			if count == 0 {
				minD, maxD = t.minD, t.maxD
			} else {
				if t.minD < minD {
					minD = t.minD
				}
				if t.maxD > maxD {
					maxD = t.maxD
				}
			}
			count += t.count
			sum += t.sumDelay
			sumSq += t.sumSq
		}
		liveSum += t.liveSum
		busySum += t.busySum
		arrivalHits += t.arrivalHits
		generated += t.genCount
		sources += int64(len(t.sources))
	}
	var res Result
	res.Delay = stats.WelfordFromInts(count, sum, sumSq, float64(minD), float64(maxD))
	res.MeanDelay = res.Delay.Mean()
	res.MeanN = float64(liveSum) / float64(s.cfg.Slots)
	res.Delivered = count
	res.Generated = generated
	res.MeanActiveEdges = float64(busySum) / float64(s.cfg.Slots)
	if denom := float64(sources) * float64(s.cfg.Slots); denom > 0 {
		res.ArrivalSlotFraction = float64(arrivalHits) / denom
	}
	if s.flt != nil {
		var linkDownSlots, nodeDownSlots int64
		for i := range s.tiles {
			t := &s.tiles[i]
			res.Dropped += t.dropped
			res.DeadEnds += t.deadEnds
			res.DetourHops += t.detourHops
			res.Misrouted += t.misrouted
			linkDownSlots += t.linkDownSlots
			nodeDownSlots += t.nodeDownSlots
		}
		slots := float64(s.cfg.Slots)
		if ne := float64(s.cfg.Net.NumEdges()); ne > 0 {
			res.LinkDownFrac = float64(linkDownSlots) / (ne * slots)
		}
		if nn := float64(s.cfg.Net.NumNodes()); nn > 0 {
			res.NodeDownFrac = float64(nodeDownSlots) / (nn * slots)
		}
	}
	if s.cfg.PerDestStats {
		n := s.cfg.Net.NumNodes()
		res.DestCount = make([]int64, n)
		res.DestDelaySum = make([]uint64, n)
		for i := range s.tiles {
			t := &s.tiles[i]
			for v, c := range t.destCount {
				if c != 0 {
					res.DestCount[v] += c
					res.DestDelaySum[v] += t.destDelay[v]
				}
			}
		}
	}
	return res
}

package stepsim

// Tile-sharded execution of a single slotted run.
//
// The node set is partitioned into contiguous tiles (topology.Partition:
// row bands on 2-D arrays and tori, index ranges elsewhere) and each tile
// runs on its own goroutine, owning everything its nodes touch: the ring
// queues of the edges leaving its nodes, the keyed RNG streams of its
// source nodes, and its measurement accumulators. A slot is the same three
// phases as the serial loop — arrivals, service, placement — but since the
// lookahead rework the fleet no longer rendezvous every slot. Per-slot
// ordering comes from per-tile GATES, and the global barrier fires once
// per k-slot batch (Config.Lookahead):
//
//	arrivals(slot)     tile-local: sources push onto their own out-edges
//	service(slot)      tile-local pops; boundary-crossing packets go to the
//	                   per-(tile,tile) handoff ring for slot%2k
//	publish(slot+1)    this tile's handoffs for the slot are complete
//	place-eager(slot)  own survivors bound for INTERIOR nodes (boundary
//	                   distance ≥ 1 — no handoff can ever target their
//	                   queues) are pushed without waiting for anyone
//	GATE               wait, per SENDING tile only, until it has published
//	                   this slot — a one-way producer→consumer wait on the
//	                   1–2 tiles that actually feed this one, not a global
//	                   rendezvous, and only up to their service phase
//	place-bnd(slot)    own boundary-bound survivors merge with the
//	                   handoffs addressed to this tile, in ascending
//	                   served-edge order
//	BARRIER            only when the slot ends a k-slot batch
//
// Handoff lists are 2k-deep rings indexed by slot modulo 2k: tiles inside
// one batch may skew freely (the gates bound the skew wherever traffic
// actually flows), and the batch barrier keeps any writer two full
// batches behind the reuse of a ring slot, generalizing the old parity
// double-buffer (which this degenerates to at k = 1). The interior/
// boundary split is planned by topology.BoundaryDistance: a node at
// distance d from the nearest cross edge cannot exchange packets with
// another tile for d slots, so only distance-0 nodes' queues ever receive
// handoffs and everything deeper places eagerly, ahead of the gate.
//
// The barrier amortization is the measurable win (Result.BarrierWaits
// drops ≈ k×, deterministically, even on one vCPU); the gates are what
// keep it correct — and they are cheaper than the barrier they replace,
// because a tile waits only for its actual upstream, one atomic load on
// the fast path, instead of for the slowest tile in the fleet.
//
// # Why results cannot depend on the shard count
//
// Three invariants make shards ∈ {1, 2, …} produce math.Float64bits-equal
// Results, pinned by TestShardInvariance and golden tests:
//
//  1. Randomness is per node, not per engine: source v draws from the
//     keyed stream xrand.ReseedSplit(Seed, v) in a canonical order, so the
//     variates a node consumes are independent of which tile simulates it.
//  2. Queue contents are order-canonical: within a slot, a queue receives
//     its arrivals (only its own source generates them, in that source's
//     draw order) followed by moved packets in ascending served-edge
//     order. Each edge serves at most one packet per slot, so served-edge
//     ids are unique keys and the k-way merge of sorted handoff lists
//     reconstructs exactly the order a serial scan over all edges yields.
//  3. Accumulation is exact-integer: delays are whole slots, so each tile
//     keeps (count, Σd, Σd², min, max) in integers and the cross-tile
//     merge is associative addition; MeanN sums per-tile live counters the
//     same way. The only floating-point operations happen once, at
//     collect time (stats.WelfordFromInts).
//
// The barrier is a sense-reversing barrier whose fast path is a bounded
// atomic spin (no locks or syscalls when every tile has its own core),
// parking in the scheduler when the window expires; the gates follow the
// same spin-then-park discipline. Handoff lists are plain slices because
// the writer's gate publish happens-before the reader's gate pass (and
// ring-slot reuse is ordered by the batch barrier), so neither needs
// locks.
//
// Fault-layer runs replicate the cheap shared state instead of adding
// synchronization: every tile advances ALL Markov and outage processes on
// a private copy of the up/down arrays (the dwell streams are keyed per
// entity, so every copy computes identical values), charging the downtime
// integrals only for the entities it owns. What was a second, fault-only
// barrier per slot in the pre-lookahead engine is now zero barriers, and
// degraded runs batch exactly like fault-free ones.

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// maxShards bounds the tile count: handoff buffers are O(shards²) slice
// headers, and no machine this engine targets has more cores.
const maxShards = 1024

// maxLookahead bounds Config.Lookahead before the plan-derived clamp:
// handoff rings are O(shards² · 2k) slice headers, and a batch deeper than
// this amortizes nothing a shallower one does not already.
const maxLookahead = 64

// edgeRun is a contiguous block [lo, hi) of owned edge ids.
type edgeRun struct {
	lo, hi int32
}

// tile is one worker's share of a sharded run: a contiguous node range,
// the sources and out-edges inside it, their RNG streams, and the tile's
// private accumulators and scratch. Only its own goroutine writes any of
// it during a run.
type tile struct {
	id    int32
	sense int32 // barrier sense, flipped every wait

	// sources are the generating nodes in the tile's range, ascending;
	// rngs[i] is sources[i]'s keyed stream.
	sources []int32
	rngs    []xrand.RNG

	// edgeRuns are the owned edge ids (EdgeFrom inside the range) as
	// ascending coalesced [lo, hi) runs: contiguous node ranges own large
	// contiguous edge-id blocks (a row band owns whole slices of the
	// Right/Left direction blocks and per-column runs of Down/Up), so the
	// service scan iterates a few thousand runs instead of indexing
	// through millions of edge ids. A single-tile plan leaves it empty
	// and scans all edges directly.
	edgeRuns []edgeRun

	// moved parks own-tile placements bound for interior nodes (placed
	// eagerly, before the gate); movedB parks those bound for boundary
	// nodes, which must merge with incoming handoffs; bnd is the merge
	// scratch. Single-tile plans use only moved.
	moved  []movedRec
	movedB []movedRec
	bnd    []movedRec

	// Sparse-path state (sparse.go): the busy-edge bitmap over the tile's
	// owned edges, the arrival timing wheel (intrusive chains: bucket
	// heads plus one link per source, so filing never allocates), and
	// each source's next arrival slot (aligned with sources). Unused on
	// the dense path.
	act       activeSet
	wheelHead []int32
	wheelLink []int32
	next      []int64

	// Measurement accumulators; exact integers so cross-tile merging is
	// associative (see the package comment on determinism). busySum and
	// arrivalHits feed Result.MeanActiveEdges / ArrivalSlotFraction.
	live        int64
	liveSum     int64
	count       int64
	sumDelay    uint64
	sumSq       uint64
	busySum     int64
	arrivalHits int64
	genCount    int64
	minD        int32
	maxD        int32

	// Fault-layer state (fault.go): the tile's REPLICA of every Markov
	// entity's keyed dwell stream, next-transition slot and up/down state
	// (aligned with the plan's FaultEdges/FaultNodes lists; identical
	// values on every tile, advanced without synchronization), plus the
	// running counts of OWNED down entities feeding the measured-slot
	// integrals, and the fault outcome counters. Empty/zero on fault-free
	// runs.
	fltLinkRng  []xrand.RNG
	fltLinkNext []int64
	fltNodeRng  []xrand.RNG
	fltNodeNext []int64
	fltLinkDown []bool
	fltNodeDown []uint8
	downLinks   int64
	downNodes   int64
	barWaits    int64

	linkDownSlots int64
	nodeDownSlots int64
	dropped       int64
	deadEnds      int64
	detourHops    int64
	misrouted     int64

	// Per-destination delivery accumulators (Config.PerDestStats), indexed
	// by destination node id; nil when disabled.
	destCount []int64
	destDelay []uint64

	_ [64]byte // keep neighboring tiles' hot counters off this cache line
}

// addDelay records one delivered packet's delay.
func (t *tile) addDelay(d int32) {
	if t.count == 0 {
		t.minD, t.maxD = d, d
	} else {
		if d < t.minD {
			t.minD = d
		}
		if d > t.maxD {
			t.maxD = d
		}
	}
	t.count++
	t.sumDelay += uint64(d)
	t.sumSq += uint64(d) * uint64(d)
}

// barrier is a reusable sense-reversing barrier with a two-stage wait:
// waiters first spin on an atomic sense word — on a machine with a core
// per tile the release lands within the spin window and a slot's
// synchronization costs no lock, no syscall and no allocation — and only
// if the window expires do they park on a condition variable. Parking is
// what keeps oversubscribed configurations (more tiles than cores, or a
// loaded machine) graceful: an unbounded spinner would burn its whole OS
// quantum while the tile it waits for cannot run.
type barrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Int32

	mu     sync.Mutex
	cond   sync.Cond
	parked int32 // under mu
}

// barrierSpin bounds the fast-path spin; a release that takes longer than
// this is waited out in the scheduler instead.
const barrierSpin = 4096

// init prepares the barrier for n participants.
func (b *barrier) init(n int) {
	b.n = int32(n)
	b.count.Store(0)
	b.sense.Store(0)
	b.cond.L = &b.mu
}

// wait blocks until all n participants have called it. local is the
// caller's sense word (one per participant, flipped on every wait).
func (b *barrier) wait(local *int32) {
	s := *local ^ 1
	*local = s
	if b.count.Add(1) == b.n {
		// Last arriver: reset the count BEFORE releasing the sense, so a
		// released waiter re-entering the next barrier cannot race the
		// reset. The sense flip is published under the lock so a waiter
		// cannot park after missing it.
		b.count.Store(0)
		b.mu.Lock()
		b.sense.Store(s)
		parked := b.parked
		b.mu.Unlock()
		if parked > 0 {
			b.cond.Broadcast()
		}
		return
	}
	for spins := 0; spins < barrierSpin; spins++ {
		if b.sense.Load() == s {
			return
		}
	}
	b.mu.Lock()
	b.parked++
	for b.sense.Load() != s {
		b.cond.Wait()
	}
	b.parked--
	b.mu.Unlock()
}

// gate is one tile's published-slot word: the producer stores slot+1 after
// its service phase writes every handoff for that slot, and a consumer
// about to merge handoffs for the slot waits until the word passes it.
// Like the barrier it spins first and parks only when the producer is
// genuinely behind — but unlike the barrier it is pairwise and one-way:
// nobody waits on a tile that sends them nothing, and a fast producer
// never waits at all. The padding keeps each tile's hot word on its own
// cache line so the per-slot publishes of neighboring tiles do not
// false-share.
type gate struct {
	slot   atomic.Int64
	parked atomic.Int32

	mu   sync.Mutex
	cond sync.Cond

	_ [64]byte
}

// init prepares the gate for a run starting at slot 0.
func (g *gate) init() {
	g.slot.Store(0)
	g.parked.Store(0)
	g.cond.L = &g.mu
}

// publish announces that every slot below v is fully serviced. The parked
// check is ordered after the store (both are seq-cst), so a waiter that
// registered before the check is woken and one that registers after it
// re-reads the slot word first and never sleeps on a published value.
func (g *gate) publish(v int64) {
	g.slot.Store(v)
	if g.parked.Load() != 0 {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	}
}

// await blocks until the gate has published v or beyond.
func (g *gate) await(v int64) {
	for spins := 0; spins < barrierSpin; spins++ {
		if g.slot.Load() >= v {
			return
		}
	}
	g.mu.Lock()
	g.parked.Add(1)
	for g.slot.Load() < v {
		g.cond.Wait()
	}
	g.parked.Add(-1)
	g.mu.Unlock()
}

// ShardedEngine is a reusable tile-parallel slotted simulator. The zero
// value is ready; Run honors cfg.Shards (0 and 1 mean a single tile run
// inline on the calling goroutine) and keeps tables, rings, tile scratch
// and handoff buffers across runs, so sweeps that reuse one ShardedEngine
// stay allocation-free in steady state. A ShardedEngine is not safe for
// concurrent use: its worker goroutines exist only inside Run.
//
// Results are bit-identical for every shard count, and to Engine's
// default serial path — see the determinism notes at the top of this
// file. PerEngineStream configs are rejected; that regime lives on
// Engine only.
type ShardedEngine struct {
	cfg      Config
	shards   int
	sparse   bool // !cfg.Dense: skip-ahead arrivals + active-edge worklists
	resumed  bool // cfg.Resume != nil: reset restored state, workers skip seeding
	tab      routeTables
	rings    ringSet
	poissonL float64

	// Ownership tables (shards > 1 only). A served packet's next edge
	// always leaves the node it stands at — pos, already decoded from the
	// popped edge — so ownership is looked up by position key, not by edge
	// id: rowOwner (n entries, L1-resident) on the packed-coordinate fast
	// path, nodeOwner (node-id indexed) on the generic path. nodeOwner
	// doubles as the plan-time edge-owner lookup via EdgeFrom.
	nodeOwner []int32
	rowOwner  []int32

	tiles []tile

	// lookahead is the effective batch depth k (Config.Lookahead clamped
	// to the plan's useful depth); ringDepth = 2k is the handoff ring
	// depth. Serial plans pin both to 1 resp. 2.
	lookahead int
	ringDepth int

	// handoff[(src*shards+dst)*ringDepth + slot%ringDepth] carries the
	// packets tile src served that slot whose next edge belongs to tile
	// dst, in ascending served-edge order. The ring generalizes the old
	// per-slot parity double-buffer to k-slot batches.
	handoff [][]movedRec

	// gates[t] is tile t's published-slot word; senders[t] lists the tiles
	// with at least one cross edge INTO tile t — the only gates t ever
	// awaits — ascending. boundaryRow / boundaryNode mark the distance-0
	// nodes of the plan (whole rows on the packed-coordinate fast path),
	// whose queues are the only possible handoff targets: survivors headed
	// anywhere deeper place eagerly, before the gate.
	gates        []gate
	senders      [][]int32
	senderMark   []bool
	boundaryRow  []bool
	boundaryNode []bool

	bar barrier

	// flt is the run's fault state (fault.go); nil on fault-free runs, in
	// which case every fault hook in the slot loop is one predictable
	// nil-check.
	flt *stepFaults

	// stopAt is the cancellation consensus: on multi-tile runs only tile 0
	// polls cfg.Ctx, and on cancellation it stores its current slot + 1
	// here before its barrier wait. Every tile compares the value against
	// its own slot AFTER the barrier and leaves only on an exact match —
	// the slot tag is what makes the protocol safe, because a slow tile's
	// post-barrier load at round k can observe a store tile 0 makes during
	// round k+1 (the loads of round k are not ordered before the stores of
	// round k+1); a boolean would make that tile leave a round early and
	// deadlock the barrier on a missing participant. With the tag it just
	// sees a future slot, continues, and exits in lockstep one round later.
	// Zero means "not canceled"; nonzero also tells Run the result is void.
	stopAt atomic.Int64
}

// Run executes one synchronous simulation, reusing the engine's storage.
func (s *ShardedEngine) Run(cfg Config) (Result, error) {
	if err := s.reset(cfg); err != nil {
		return Result{}, err
	}
	if s.shards == 1 {
		s.worker(&s.tiles[0])
	} else {
		var wg sync.WaitGroup
		wg.Add(s.shards)
		for i := range s.tiles {
			t := &s.tiles[i]
			go func() {
				defer wg.Done()
				s.worker(t)
			}()
		}
		wg.Wait()
	}
	if s.stopAt.Load() != 0 {
		// Canceled mid-run: partial tile accumulators are not a valid
		// Result (the horizon was not reached), so only the cause escapes.
		return Result{}, context.Cause(cfg.Ctx)
	}
	res := s.collect()
	if cfg.Capture {
		res.Snapshot = s.capture()
	}
	return res, nil
}

// reset validates cfg and builds the tile plan, reusing prior storage when
// capacities allow.
func (s *ShardedEngine) reset(cfg Config) error {
	steppers, choose, err := resolveConfig(cfg)
	if err != nil {
		return err
	}
	if cfg.PerEngineStream {
		return fmt.Errorf("stepsim: PerEngineStream is not available on ShardedEngine; use Engine")
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	if shards > maxShards {
		return fmt.Errorf("stepsim: Shards = %d exceeds the %d-tile limit", shards, maxShards)
	}
	s.cfg = cfg
	s.shards = shards
	s.sparse = !cfg.Dense
	s.stopAt.Store(0)
	s.poissonL = poissonExpOf(cfg.NodeRate)
	s.tab.init(cfg, steppers, choose)
	s.rings.reset(cfg.Net.NumEdges())

	ranges := topology.Partition(cfg.Net, shards)
	if cap(s.tiles) >= shards {
		s.tiles = s.tiles[:shards]
	} else {
		s.tiles = make([]tile, shards)
	}
	for i := range s.tiles {
		t := &s.tiles[i]
		t.id = int32(i)
		t.sense = 0
		t.sources = t.sources[:0]
		t.edgeRuns = t.edgeRuns[:0]
		// Scratch capacity is bounded by one record per CURRENT edge (each
		// edge serves at most one packet per slot); release what a bigger
		// previous topology grew, as the legacy engine's reset does.
		if cap(t.moved) > 2*cfg.Net.NumEdges() {
			t.moved = nil
		}
		if cap(t.movedB) > 2*cfg.Net.NumEdges() {
			t.movedB = nil
		}
		if cap(t.bnd) > 2*cfg.Net.NumEdges() {
			t.bnd = nil
		}
		t.moved = t.moved[:0]
		t.movedB = t.movedB[:0]
		t.bnd = t.bnd[:0]
		t.live, t.liveSum = 0, 0
		t.count, t.sumDelay, t.sumSq = 0, 0, 0
		t.busySum, t.arrivalHits, t.genCount = 0, 0, 0
		t.minD, t.maxD = 0, 0
		t.barWaits = 0
	}

	// Source sets are COPIED into tile-owned buffers (as the serial reset
	// does) and split by node range; within a tile they stay ascending,
	// though per-node streams make the order immaterial.
	if ss, isRestricted := cfg.Net.(topology.SourceSet); isRestricted {
		for _, v := range ss.SourceNodes() {
			t := &s.tiles[topology.RangeOf(ranges, v)]
			t.sources = append(t.sources, int32(v))
		}
	} else {
		for i, r := range ranges {
			t := &s.tiles[i]
			for v := r.Lo; v < r.Hi; v++ {
				t.sources = append(t.sources, int32(v))
			}
		}
	}
	for i := range s.tiles {
		t := &s.tiles[i]
		if cap(t.rngs) >= len(t.sources) {
			t.rngs = t.rngs[:len(t.sources)]
		} else {
			t.rngs = make([]xrand.RNG, len(t.sources))
		}
		if s.sparse {
			t.resetSparse(cfg.Net.NumEdges())
		}
	}

	s.lookahead, s.ringDepth = 1, 2
	if shards > 1 {
		numNodes, numEdges := cfg.Net.NumNodes(), cfg.Net.NumEdges()
		s.nodeOwner = grow(s.nodeOwner, numNodes)
		for i, r := range ranges {
			for v := r.Lo; v < r.Hi; v++ {
				s.nodeOwner[v] = int32(i)
			}
		}
		if s.tab.fast {
			// Row-band plans on the array fast path: position keys are
			// packed (row, col), so ownership reduces to a row lookup.
			s.rowOwner = grow(s.rowOwner, s.tab.n)
			for r := 0; r < s.tab.n; r++ {
				s.rowOwner[r] = s.nodeOwner[r*s.tab.n]
			}
		}
		// One edge scan builds both the owned-edge runs and the sender
		// adjacency (which tiles hand off INTO which).
		mark := grow(s.senderMark, shards*shards)
		clear(mark)
		s.senderMark = mark
		for e := 0; e < numEdges; e++ {
			fo := s.nodeOwner[cfg.Net.EdgeFrom(e)]
			t := &s.tiles[fo]
			if n := len(t.edgeRuns); n > 0 && t.edgeRuns[n-1].hi == int32(e) {
				t.edgeRuns[n-1].hi = int32(e) + 1
			} else {
				t.edgeRuns = append(t.edgeRuns, edgeRun{lo: int32(e), hi: int32(e) + 1})
			}
			if to := s.nodeOwner[cfg.Net.EdgeTo(e)]; to != fo {
				mark[int(fo)*shards+int(to)] = true
			}
		}
		if cap(s.senders) >= shards {
			s.senders = s.senders[:shards]
		} else {
			s.senders = make([][]int32, shards)
		}
		for dst := 0; dst < shards; dst++ {
			lst := s.senders[dst][:0]
			for src := 0; src < shards; src++ {
				if mark[src*shards+dst] {
					lst = append(lst, int32(src))
				}
			}
			s.senders[dst] = lst
		}

		// Lookahead plan: classify every node by its distance to the
		// nearest cross edge. Distance-0 nodes are the only possible
		// handoff targets (the boundary band); the requested batch depth
		// is clamped to the deepest interior plus one — past that every
		// queue push is gate-side and deeper batches only hold memory.
		bd := topology.BoundaryDistance(cfg.Net, ranges)
		k := cfg.Lookahead
		if k <= 0 {
			k = 1
		}
		if k > maxLookahead {
			k = maxLookahead
		}
		maxBD := int32(0)
		for _, d := range bd {
			if d > maxBD && d < topology.BoundaryInf {
				maxBD = d
			}
		}
		if k > int(maxBD)+1 {
			k = int(maxBD) + 1
		}
		s.lookahead, s.ringDepth = k, 2*k
		if s.tab.fast {
			s.boundaryRow = grow(s.boundaryRow, s.tab.n)
			for r := 0; r < s.tab.n; r++ {
				s.boundaryRow[r] = bd[r*s.tab.n] == 0
			}
		} else {
			s.boundaryNode = grow(s.boundaryNode, numNodes)
			for v := 0; v < numNodes; v++ {
				s.boundaryNode[v] = bd[v] == 0
			}
		}

		cells := shards * shards * s.ringDepth
		if cap(s.handoff) >= cells {
			s.handoff = s.handoff[:cells]
			for i := range s.handoff {
				s.handoff[i] = s.handoff[i][:0]
			}
		} else {
			s.handoff = make([][]movedRec, cells)
		}
		if cap(s.gates) >= shards {
			s.gates = s.gates[:shards]
		} else {
			s.gates = make([]gate, shards)
		}
		for i := range s.gates {
			s.gates[i].init()
		}
		s.bar.init(shards)
	}

	// Fault state needs the ownership tables to distribute entities, so it
	// is built after the tile plan.
	if err := s.resetFaults(cfg); err != nil {
		return err
	}

	// A resume fills the freshly reset rings, streams and (sparse) wheel
	// from the checkpoint; it must run last, after the tile plan and
	// ownership tables exist. workers then skip their own seeding.
	s.resumed = cfg.Resume != nil
	if s.resumed {
		if err := s.restore(cfg.Resume); err != nil {
			return err
		}
	}
	return nil
}

// worker runs one tile through every slot. It is the per-slot body of the
// serial engine, restated per tile; a single-tile plan runs it inline
// with no barrier, which IS the serial reference path. The sparse and
// dense bodies share phase 3 (and the barrier); phases 1 and 2 dispatch
// once per slot on the engine-wide mode.
func (s *ShardedEngine) worker(t *tile) {
	total := s.cfg.WarmupSlots + s.cfg.Slots
	// Seed this tile's per-node streams in parallel with the other tiles
	// (each touches only its own). The sparse path also draws each
	// source's first arrival slot here. A resumed run skips seeding
	// entirely: reset restored the mid-sequence streams (and refiled the
	// wheel), and reseeding would discard them.
	if s.resumed {
		// streams, wheel and rings restored by reset
	} else if s.sparse {
		s.seedSparse(t, total)
	} else {
		for i, src := range t.sources {
			t.rngs[i].ReseedSplit(s.cfg.Seed, uint64(src))
		}
	}
	if s.flt != nil {
		s.seedFaults(t)
	}
	multi := s.shards > 1
	ctx := s.cfg.Ctx
	k := s.lookahead
	ring := 0
	for slot := 0; slot < total; slot++ {
		measuring := slot >= s.cfg.WarmupSlots
		if s.flt != nil {
			// Phase 0 on the tile's PRIVATE replica of the fault state:
			// every tile computes the same up/down values from the same
			// keyed dwell streams, so no barrier publishes them.
			s.faultPhase(t, slot, measuring)
		}
		if s.sparse {
			s.arrivalsSparse(t, slot, measuring, total)
			s.serviceSparse(t, slot, measuring, ring)
		} else {
			s.arrivals(t, slot, measuring)
			s.service(t, slot, measuring, ring)
		}
		if multi {
			// This slot's handoffs are complete: publish, then place the
			// interior-bound survivors while upstream tiles may still be
			// serving, and gate only on the tiles that actually feed this
			// one before merging the boundary band.
			s.gates[t.id].publish(int64(slot) + 1)
			s.placeEager(t)
			for _, u := range s.senders[t.id] {
				s.gates[u].await(int64(slot) + 1)
			}
			s.placeBoundary(t, ring)
			if (slot+1)%k == 0 || slot == total-1 {
				// Batch boundary: the only global rendezvous. Cancellation
				// consensus rides it — only tile 0 polls the context, and
				// it publishes the slot it is about to leave at before the
				// barrier every other tile is about to cross; a tile exits
				// only when the published slot is its own (see stopAt for
				// why the slot tag, not a boolean, is what prevents a
				// barrier deadlock). All tiles share k and the horizon, so
				// batch ends — and therefore barrier rounds — line up.
				if t.id == 0 && ctx != nil && ctx.Err() != nil && s.stopAt.Load() == 0 {
					s.stopAt.Store(int64(slot) + 1)
				}
				t.barWaits++
				s.bar.wait(&t.sense)
				if s.stopAt.Load() == int64(slot)+1 {
					return
				}
			}
		} else {
			if ctx != nil && slot&63 == 0 && ctx.Err() != nil {
				s.stopAt.Store(int64(slot) + 1)
				return
			}
			s.place(t, ring)
		}
		if ring++; ring == s.ringDepth {
			ring = 0
		}
	}
}

// arrivals is phase 1 for one tile: every source draws its Poisson batch
// and per-packet destination and coin from its own keyed stream, and
// pushes onto its own out-edges (a first hop always leaves the source, so
// arrivals never cross tiles). It ends with the slot's N sample: summed
// over tiles, generated-minus-delivered counters reproduce the global
// in-system count at the canonical sample point.
func (s *ShardedEngine) arrivals(t *tile, slot int, measuring bool) {
	mean := s.cfg.NodeRate
	poissonL := s.poissonL
	dest := s.cfg.Dest
	choose := s.tab.choose
	nodeKey := s.tab.nodeKey
	flt := s.flt
	for i := range t.sources {
		src := int(t.sources[i])
		rng := &t.rngs[i]
		var k int
		switch {
		case poissonL > 0:
			// First Knuth iteration inlined (most sources draw a zero
			// batch): identical variate stream to xrand.PoissonExp.
			if p := rng.Float64Open(); p > poissonL {
				k = 1
				for {
					p *= rng.Float64Open()
					if p <= poissonL {
						break
					}
					k++
				}
			}
		case mean > 0:
			k = rng.Poisson(mean)
		}
		if k > 0 && measuring {
			t.arrivalHits++
			t.genCount += int64(k)
		}
		// A down source offers its batch into the void: every packet is
		// dropped at generation, but the destination and coin draws still
		// happen so the node's variate stream stays aligned with the
		// fault-free sequence.
		srcDown := flt != nil && t.fltNodeDown[src] != 0
		for ; k > 0; k-- {
			dst := dest.Sample(src, rng)
			var choice uint32
			if choose != nil {
				choice = uint32(choose(rng))
			}
			if srcDown {
				if measuring {
					t.dropped++
				}
				continue
			}
			if dst == src {
				// Zero-hop packet: delivered instantly with delay 0,
				// never entering any queue (the paper allows these).
				if measuring {
					t.addDelay(0)
					if t.destCount != nil {
						t.destCount[src]++
					}
				}
				continue
			}
			ent := uint64(nodeKey[dst])<<entKeyShift | uint64(choice)<<entSlotBits | uint64(slot&entSlotMask)
			if measuring {
				ent |= entMeasured
			}
			s.rings.push(s.tab.nextEdge(nodeKey[src], nodeKey[dst], choice), ent)
			t.live++
		}
	}
	if measuring {
		t.liveSum += t.live
	}
}

// service is phase 2 for one tile: every owned nonempty edge serves its
// head packet. Deliveries accumulate locally; survivors go to the local
// moved list (interior-bound: placed before the gate), the movedB list
// (boundary-bound: merged with handoffs after it) or, when the next edge
// belongs to another tile, to that pair's handoff ring slot — all in
// ascending served-edge order, because the owned-edge scan is ascending.
func (s *ShardedEngine) service(t *tile, slot int, measuring bool, ring int) {
	moved := t.moved[:0]
	movedB := t.movedB[:0]
	multi := s.shards > 1
	if multi {
		base := (int(t.id)*s.shards)*s.ringDepth + ring
		for u := 0; u < s.shards; u++ {
			if u != int(t.id) {
				cell := base + u*s.ringDepth
				s.handoff[cell] = s.handoff[cell][:0]
			}
		}
	}
	qbuf, qhead, qsize := s.rings.qbuf, s.rings.qhead, s.rings.qsize
	edgeKey := s.tab.edgeKey
	flt := s.flt
	var busy int64
	// The two scans below share their pop/route/deliver body; it is spelled
	// out twice (rather than through a per-edge function) because a call
	// per busy edge is measurable on large arrays, and the single-tile scan
	// is the engine's serial reference path.
	if !multi {
		// Single tile owns everything: scan the dense size array directly,
		// exactly like the serial loop.
		for e, size := range qsize {
			if size == 0 {
				continue
			}
			edge := int32(e)
			if flt != nil && !s.canServe(t, edge, slot) {
				continue
			}
			busy++
			buf := qbuf[edge]
			head := qhead[edge]
			ent := buf[head]
			qhead[edge] = (head + 1) & int32(len(buf)-1)
			qsize[edge] = size - 1
			pos := edgeKey[edge]
			key := int32(ent >> entKeyShift)
			if pos == key {
				if ent&entMeasured != 0 && measuring {
					d := int32((uint32(slot+1) - uint32(ent)) & entSlotMask)
					t.addDelay(d)
					if t.destCount != nil {
						v := s.tab.nodeOf(key)
						t.destCount[v]++
						t.destDelay[v] += uint64(d)
					}
				}
				t.live--
				continue
			}
			choice := uint32(ent>>entSlotBits) & entChoiceMask
			var next int32
			if flt != nil {
				var gone bool
				if next, gone = s.fltAdvance(t, edge, slot, pos, key, choice, ent, measuring); gone {
					continue
				}
			} else {
				next = s.tab.nextEdge(pos, key, choice)
			}
			moved = append(moved, movedRec{ent: ent, edge: next, src: edge})
		}
	} else {
		myBase := (int(t.id) * s.shards) * s.ringDepth
		// The next edge always leaves pos, so its owner is pos's tile:
		// a tiny row table on the fast path, the node table otherwise.
		// (Fault-mode detours and misroutes also leave pos — every
		// candidate is an out-edge of pos — so the ownership lookup is
		// unchanged.) The same key picks the eager-vs-boundary list for
		// own-tile survivors.
		fast := s.tab.fast
		rowOwner, nodeOwner := s.rowOwner, s.nodeOwner
		boundaryRow, boundaryNode := s.boundaryRow, s.boundaryNode
		for _, run := range t.edgeRuns {
			for edge := run.lo; edge < run.hi; edge++ {
				size := qsize[edge]
				if size == 0 {
					continue
				}
				if flt != nil && !s.canServe(t, edge, slot) {
					continue
				}
				busy++
				buf := qbuf[edge]
				head := qhead[edge]
				ent := buf[head]
				qhead[edge] = (head + 1) & int32(len(buf)-1)
				qsize[edge] = size - 1
				pos := edgeKey[edge]
				key := int32(ent >> entKeyShift)
				if pos == key {
					if ent&entMeasured != 0 && measuring {
						d := int32((uint32(slot+1) - uint32(ent)) & entSlotMask)
						t.addDelay(d)
						if t.destCount != nil {
							v := s.tab.nodeOf(key)
							t.destCount[v]++
							t.destDelay[v] += uint64(d)
						}
					}
					t.live--
					continue
				}
				choice := uint32(ent>>entSlotBits) & entChoiceMask
				var next int32
				if flt != nil {
					var gone bool
					if next, gone = s.fltAdvance(t, edge, slot, pos, key, choice, ent, measuring); gone {
						continue
					}
				} else {
					next = s.tab.nextEdge(pos, key, choice)
				}
				rec := movedRec{ent: ent, edge: next, src: edge}
				var owner int32
				var bnd bool
				if fast {
					owner = rowOwner[pos>>coordBits]
					bnd = boundaryRow[pos>>coordBits]
				} else {
					owner = nodeOwner[pos]
					bnd = boundaryNode[pos]
				}
				switch {
				case owner != t.id:
					h := &s.handoff[myBase+int(owner)*s.ringDepth+ring]
					*h = append(*h, rec)
				case bnd:
					movedB = append(movedB, rec)
				default:
					moved = append(moved, rec)
				}
			}
		}
	}
	if measuring {
		t.busySum += busy
	}
	t.moved = moved
	t.movedB = movedB
}

// pushPlaced pushes one placed packet, maintaining the tile's busy-edge
// worklist on the sparse path (the next edge always belongs to this tile,
// so the bit flip is tile-local). The non-growing push is spelled out
// here rather than through ringSet.push: placement is one of the two
// per-hop hot paths, and the method call plus re-derived slice loads are
// measurable at 10⁹ hop-services per large run.
func (s *ShardedEngine) pushPlaced(t *tile, edge int32, ent uint64) {
	size := s.rings.qsize[edge]
	if s.sparse && size == 0 {
		t.act.add(edge)
	}
	buf := s.rings.qbuf[edge]
	if int(size) == len(buf) {
		s.rings.push(edge, ent)
		return
	}
	buf[(s.rings.qhead[edge]+size)&int32(len(buf)-1)] = ent
	s.rings.qsize[edge] = size + 1
}

// place is phase 3 on a single-tile plan: push this slot's survivors onto
// their next edges. The ascending edge scan already ordered them, and
// there is nothing to merge — this IS the serial reference order.
func (s *ShardedEngine) place(t *tile, _ int) {
	for _, m := range t.moved {
		s.pushPlaced(t, m.edge, m.ent)
	}
	t.moved = t.moved[:0]
}

// placeEager is the first half of phase 3 on a multi-tile plan: survivors
// whose next edge leaves an interior node (boundary distance ≥ 1) can
// never share a queue with a handoff — only distance-0 nodes receive
// cross-tile traffic — so they are placed before this tile waits on
// anyone. Within any one queue the eager list is already in ascending
// served-edge order, and the gated boundary merge below never touches an
// interior queue, so the canonical per-queue order is preserved.
func (s *ShardedEngine) placeEager(t *tile) {
	for _, m := range t.moved {
		s.pushPlaced(t, m.edge, m.ent)
	}
	t.moved = t.moved[:0]
}

// placeBoundary is the gated half of phase 3: merge this tile's own
// boundary-bound survivors with the handoffs addressed to it, in
// ascending served-edge order. Both inputs are sorted for the same reason
// (ascending owned-edge scans), so a sort of the (typically tiny) incoming
// set plus one two-way merge reconstructs exactly the order a serial scan
// over all edges yields. Served-edge ids are unique within a slot, so the
// order is total. The caller has already awaited every sender's gate for
// this slot.
func (s *ShardedEngine) placeBoundary(t *tile, ring int) {
	bnd := t.bnd[:0]
	for _, u := range s.senders[t.id] {
		bnd = append(bnd, s.handoff[(int(u)*s.shards+int(t.id))*s.ringDepth+ring]...)
	}
	if len(bnd) > 1 {
		slices.SortFunc(bnd, func(a, b movedRec) int { return int(a.src) - int(b.src) })
	}
	moved := t.movedB
	i, j := 0, 0
	for i < len(moved) && j < len(bnd) {
		if moved[i].src < bnd[j].src {
			s.pushPlaced(t, moved[i].edge, moved[i].ent)
			i++
		} else {
			s.pushPlaced(t, bnd[j].edge, bnd[j].ent)
			j++
		}
	}
	for ; i < len(moved); i++ {
		s.pushPlaced(t, moved[i].edge, moved[i].ent)
	}
	for ; j < len(bnd); j++ {
		s.pushPlaced(t, bnd[j].edge, bnd[j].ent)
	}
	t.movedB = moved[:0]
	t.bnd = bnd[:0]
}

// collect merges the tiles' integer accumulators into a Result. Addition
// and min/max are associative, so the outcome is independent of tiling.
func (s *ShardedEngine) collect() Result {
	var count, liveSum, busySum, arrivalHits, generated, sources int64
	var sum, sumSq uint64
	var minD, maxD int32
	for i := range s.tiles {
		t := &s.tiles[i]
		if t.count > 0 {
			if count == 0 {
				minD, maxD = t.minD, t.maxD
			} else {
				if t.minD < minD {
					minD = t.minD
				}
				if t.maxD > maxD {
					maxD = t.maxD
				}
			}
			count += t.count
			sum += t.sumDelay
			sumSq += t.sumSq
		}
		liveSum += t.liveSum
		busySum += t.busySum
		arrivalHits += t.arrivalHits
		generated += t.genCount
		sources += int64(len(t.sources))
	}
	var res Result
	res.Lookahead = s.lookahead
	for i := range s.tiles {
		res.BarrierWaits += s.tiles[i].barWaits
	}
	res.Delay = stats.WelfordFromInts(count, sum, sumSq, float64(minD), float64(maxD))
	res.MeanDelay = res.Delay.Mean()
	res.MeanN = float64(liveSum) / float64(s.cfg.Slots)
	res.Delivered = count
	res.Generated = generated
	res.MeanActiveEdges = float64(busySum) / float64(s.cfg.Slots)
	if denom := float64(sources) * float64(s.cfg.Slots); denom > 0 {
		res.ArrivalSlotFraction = float64(arrivalHits) / denom
	}
	if s.flt != nil {
		var linkDownSlots, nodeDownSlots int64
		for i := range s.tiles {
			t := &s.tiles[i]
			res.Dropped += t.dropped
			res.DeadEnds += t.deadEnds
			res.DetourHops += t.detourHops
			res.Misrouted += t.misrouted
			linkDownSlots += t.linkDownSlots
			nodeDownSlots += t.nodeDownSlots
		}
		slots := float64(s.cfg.Slots)
		if ne := float64(s.cfg.Net.NumEdges()); ne > 0 {
			res.LinkDownFrac = float64(linkDownSlots) / (ne * slots)
		}
		if nn := float64(s.cfg.Net.NumNodes()); nn > 0 {
			res.NodeDownFrac = float64(nodeDownSlots) / (nn * slots)
		}
	}
	if s.cfg.PerDestStats {
		n := s.cfg.Net.NumNodes()
		res.DestCount = make([]int64, n)
		res.DestDelaySum = make([]uint64, n)
		for i := range s.tiles {
			t := &s.tiles[i]
			for v, c := range t.destCount {
				if c != 0 {
					res.DestCount[v] += c
					res.DestDelaySum[v] += t.destDelay[v]
				}
			}
		}
	}
	return res
}
